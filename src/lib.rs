//! # hlsrg-suite
//!
//! Umbrella crate for the reproduction of *"A Region-based Hierarchical Location
//! Service with Road-adapted Grids for Vehicular Networks"* (Chang, Chen, Sheu —
//! ICPP Workshops 2010).
//!
//! This crate re-exports every layer of the stack so examples and downstream users
//! can depend on a single crate:
//!
//! * [`des`] — deterministic discrete-event simulation kernel (ns-2 substitute core).
//! * [`geo`] — geometry primitives and spatial hashing.
//! * [`roadnet`] — road graphs, synthetic map generators, and the paper's
//!   road-adapted L1/L2/L3 grid partition.
//! * [`mobility`] — vehicular mobility (VanetMobiSim substitute): traffic lights,
//!   kinematics, artery-biased route choice.
//! * [`net`] — wireless/wired network simulation: unit-disk radio, bit-time MAC
//!   backoff, GPSR, directional geo-broadcast, RSU backbone.
//! * [`protocol`] — the HLSRG location service itself (the paper's contribution).
//! * [`baseline`] — the RLSMP baseline protocol the paper compares against.
//! * [`scenario`] — experiment harness, metrics, and generators for every figure in
//!   the paper's evaluation.
//! * [`trace`] — structured event trace (JSONL), per-node/per-level metrics
//!   registry, and feature-gated timing spans around the DES hot phases.
//!
//! ## Quickstart
//!
//! ```
//! use hlsrg_suite::scenario::{SimConfig, Protocol, run_simulation};
//!
//! let cfg = SimConfig::quick_demo(42);
//! let report = run_simulation(&cfg, Protocol::Hlsrg);
//! assert!(report.queries_launched > 0);
//! ```

#![warn(missing_docs)]

pub use vanet_des as des;
pub use vanet_geo as geo;
pub use vanet_mobility as mobility;
pub use vanet_net as net;
pub use vanet_roadnet as roadnet;

pub use hlsrg as protocol;
pub use rlsmp as baseline;
pub use vanet_scenario as scenario;
pub use vanet_trace as trace;

/// Runtime invariant oracle + fuzz-case model (only with the `check` feature).
#[cfg(feature = "check")]
pub use vanet_check as check;
