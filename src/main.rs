//! `hlsrg` — command-line front end for the reproduction suite.
//!
//! ```text
//! hlsrg run      [--protocol hlsrg|rlsmp] [--vehicles N] [--map-size M] [--seed S]
//!                [--duration SECS] [--shards N] [--threads N] [--csv] [--trace-out FILE]
//!                [--telemetry-out FILE] [--telemetry-interval SECS]
//! hlsrg figures  [--paper] [--csv]
//! hlsrg compare  [--vehicles N] [--seed S] [--reps R]
//! hlsrg map      [--size M] [--jitter J] [--seed S] [--out FILE]
//! hlsrg inspect  FILE [--top N] [--query ID]
//! hlsrg report   [--telemetry FILE] [--bench FILE] [--figures none|smoke|paper]
//!                [--title T] [--out FILE]
//! hlsrg bench    [--compare LABEL] [--threshold PCT]
//! ```

use hlsrg_suite::des::{SimDuration, SimTime};
use hlsrg_suite::mobility::{LightConfig, MobilityConfig, MobilityModel, Ns2Trace, TrafficLights};
use hlsrg_suite::roadnet::{generate_grid, to_map_text, GridMapSpec};
use hlsrg_suite::scenario::{
    fig3_2, fig3_345, replicate_averaged, run_simulation, run_simulation_instrumented,
    BenchOptions, BenchScale, FigureScale, Protocol, RunReport, SimConfig,
};
use hlsrg_suite::trace::{cause_name, registry_from_events, TraceEvent};
use rand::rngs::SmallRng;
use rand::SeedableRng;
use std::collections::HashMap;
use std::process::ExitCode;

/// A pass-through global allocator that counts every allocation, feeding the
/// `bench` subcommand's allocations-per-event estimate. Only installed in
/// `bench-alloc` builds — the per-allocation atomic skews wall-clock numbers.
#[cfg(feature = "bench-alloc")]
mod counting_alloc {
    use std::alloc::{GlobalAlloc, Layout, System};
    use std::sync::atomic::{AtomicU64, Ordering};

    pub static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);

    pub struct CountingAlloc;

    // SAFETY: defers every operation to `System`; only bookkeeping is added.
    unsafe impl GlobalAlloc for CountingAlloc {
        unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
            ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
            System.alloc(layout)
        }

        unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
            System.dealloc(ptr, layout)
        }

        unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
            ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
            System.realloc(ptr, layout, new_size)
        }
    }

    #[global_allocator]
    static GLOBAL: CountingAlloc = CountingAlloc;

    pub fn count() -> u64 {
        ALLOCATIONS.load(Ordering::Relaxed)
    }
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some((cmd, rest)) = args.split_first() else {
        usage();
        return ExitCode::FAILURE;
    };
    if cmd == "inspect" {
        // `inspect` takes a positional file argument before its flags.
        return cmd_inspect(rest);
    }
    let flags = match parse_flags(rest) {
        Ok(f) => f,
        Err(e) => {
            eprintln!("error: {e}");
            usage();
            return ExitCode::FAILURE;
        }
    };
    match cmd.as_str() {
        "run" => cmd_run(&flags),
        "figures" => cmd_figures(&flags),
        "compare" => cmd_compare(&flags),
        "map" => cmd_map(&flags),
        "trace" => cmd_trace(&flags),
        "fuzz" => cmd_fuzz(&flags),
        "bench" => cmd_bench(&flags),
        "report" => cmd_report(&flags),
        "help" | "--help" | "-h" => {
            usage();
            ExitCode::SUCCESS
        }
        other => {
            eprintln!("error: unknown command {other:?}");
            usage();
            ExitCode::FAILURE
        }
    }
}

fn usage() {
    eprintln!(
        "hlsrg — HLSRG location-service reproduction (ICPP Workshops 2010)

commands:
  run      one simulation            --protocol hlsrg|rlsmp  --vehicles N
                                     --map-size M  --seed S  --duration SECS  --csv
                                     --shards N (region-sharded event queues;
                                     results are byte-identical for any N)
                                     --threads N (worker threads driving the
                                     shards; default N = shards, also
                                     byte-identical for any count)
                                     --trace-out FILE (JSONL event trace)
                                     --telemetry-out FILE (JSONL time series)
                                     --telemetry-interval SECS (default 5)
  figures  regenerate the paper's    --paper (full sweep)  --csv
           evaluation figures
  compare  HLSRG vs RLSMP summary    --vehicles N  --seed S  --reps R
  map      emit a map in text form   --size M  --jitter J  --seed S
  trace    emit an ns-2 movement     --size M  --vehicles N  --duration SECS
           trace (VanetMobiSim       --seed S  --out FILE
           interchange format)
  inspect  summarize a JSONL trace   FILE  --top N (busiest nodes / drop causes)
           from `run --trace-out`    --query ID (one query's timeline)
  fuzz     seeded scenario fuzzing   --runs N  --seed S  --out FILE (corpus)
           with the invariant        --replay FILE (re-run a corpus)
           oracle armed (needs the   --corrupt (arm the table-corruption
           `check` cargo feature)    self-test mutation)
                                     --pool N|auto (fan cases over the job pool)
  bench    time the canonical        --scale smoke|paper|large (or
           scenarios and append to   HLSRG_BENCH_SCALE); large = 10k vehicles,
           the perf trajectory       shard-scaling rows only
                                     --reps N  --threads N  --label NAME
                                     --only SCENARIO (one row, e.g. hlsrg_shards1)
                                     --out FILE (default BENCH_sim.json)
                                     --check FILE (validate a trajectory, no runs)
                                     --compare LABEL (diff newest rows vs that
                                     baseline; nonzero exit past --threshold PCT,
                                     default 20)
  report   render one self-contained --telemetry FILE (from run --telemetry-out)
           HTML dashboard            --bench FILE (perf trajectory)
                                     --figures none|smoke|paper (sweep curves)
                                     --title T  --out FILE (default report.html)
  help     this message"
    );
}

type Flags = HashMap<String, String>;

fn parse_flags(args: &[String]) -> Result<Flags, String> {
    let mut flags = Flags::new();
    let mut it = args.iter();
    while let Some(a) = it.next() {
        let Some(name) = a.strip_prefix("--") else {
            return Err(format!("unexpected argument {a:?}"));
        };
        // Boolean flags take no value.
        if matches!(name, "csv" | "paper" | "corrupt") {
            flags.insert(name.into(), "true".into());
            continue;
        }
        let Some(v) = it.next() else {
            return Err(format!("--{name} needs a value"));
        };
        flags.insert(name.into(), v.clone());
    }
    Ok(flags)
}

fn get<T: std::str::FromStr>(flags: &Flags, name: &str, default: T) -> T {
    flags
        .get(name)
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

fn protocol_of(flags: &Flags) -> Protocol {
    match flags.get("protocol").map(String::as_str) {
        Some("rlsmp") | Some("RLSMP") => Protocol::Rlsmp,
        _ => Protocol::Hlsrg,
    }
}

fn config_of(flags: &Flags) -> SimConfig {
    let vehicles = get(flags, "vehicles", 500usize);
    let map_size = get(flags, "map-size", 2000.0f64);
    let seed = get(flags, "seed", 42u64);
    let mut cfg = SimConfig::paper_fig3_2(map_size, vehicles, seed);
    let duration = get(flags, "duration", cfg.duration.as_secs_f64());
    cfg.duration = SimDuration::from_secs_f64(duration);
    if cfg.warmup + SimDuration::from_secs(10) > cfg.duration {
        cfg.warmup = cfg.duration.mul_f64(0.3);
    }
    cfg.shards = get(flags, "shards", 1usize).max(1);
    cfg.threads = get(flags, "threads", cfg.shards).max(1);
    cfg
}

fn print_report(r: &RunReport, csv: bool) {
    if csv {
        println!(
            "protocol,seed,vehicles,map_size,update_packets,query_radio_tx,queries,succeeded,success_rate,mean_latency_s"
        );
        println!(
            "{},{},{},{},{},{},{},{},{:.4},{:.4}",
            r.protocol,
            r.seed,
            r.vehicles,
            r.map_size,
            r.update_packets,
            r.query_radio_tx,
            r.queries_launched,
            r.queries_succeeded,
            r.success_rate,
            r.mean_latency().unwrap_or(f64::NAN)
        );
        return;
    }
    println!(
        "== {} (seed {}, {} vehicles, {:.0} m map) ==",
        r.protocol, r.seed, r.vehicles, r.map_size
    );
    println!("  update packets        {:>8}", r.update_packets);
    println!("  collection radio tx   {:>8}", r.collection_radio_tx);
    println!("  collection wired tx   {:>8}", r.collection_wired_tx);
    println!("  query radio tx        {:>8}", r.query_radio_tx);
    println!("  query wired tx        {:>8}", r.query_wired_tx);
    println!("  queries               {:>8}", r.queries_launched);
    println!("  success rate          {:>8.2}", r.success_rate);
    match r.mean_latency() {
        Some(l) => println!("  mean latency          {:>7.3}s", l),
        None => println!("  mean latency               n/a"),
    }
    println!(
        "  airtime (upd/coll/qry){:>5.1}/{:.1}/{:.1} ms",
        r.airtime_us[0] as f64 / 1000.0,
        r.airtime_us[1] as f64 / 1000.0,
        r.airtime_us[2] as f64 / 1000.0
    );
}

fn cmd_run(flags: &Flags) -> ExitCode {
    use std::io::Write;

    let mut cfg = config_of(flags);
    let protocol = protocol_of(flags);
    let trace_path = flags.get("trace-out");
    let telemetry_path = flags.get("telemetry-out");
    if telemetry_path.is_some() || flags.contains_key("telemetry-interval") {
        let secs = get(flags, "telemetry-interval", 5.0f64);
        // NaN from a malformed value falls to the default, so <= 0 is the bad case.
        if secs <= 0.0 {
            eprintln!("error: --telemetry-interval wants a positive number of seconds");
            return ExitCode::FAILURE;
        }
        cfg.telemetry_interval = Some(SimDuration::from_secs_f64(secs));
    }
    if trace_path.is_none() && cfg.telemetry_interval.is_none() {
        let r = run_simulation(&cfg, protocol);
        print_report(&r, flags.contains_key("csv"));
        return ExitCode::SUCCESS;
    }
    // Open the outputs before the (potentially long) run so a bad path fails fast.
    let open = |path: &String| match std::fs::File::create(path) {
        Ok(f) => Ok(std::io::BufWriter::new(f)),
        Err(e) => {
            eprintln!("error: cannot create {path}: {e}");
            Err(ExitCode::FAILURE)
        }
    };
    let mut trace_file = match trace_path.map(open).transpose() {
        Ok(f) => f,
        Err(code) => return code,
    };
    let mut telemetry_file = match telemetry_path.map(open).transpose() {
        Ok(f) => f,
        Err(code) => return code,
    };
    let (r, tracer, samples) = run_simulation_instrumented(&cfg, protocol, trace_path.is_some());
    if let (Some(path), Some(tracer), Some(file)) = (trace_path, &tracer, trace_file.as_mut()) {
        let write = tracer.write_jsonl(file).and_then(|()| {
            if tracer.overwritten() > 0 {
                // A trailer marks the export incomplete, so `inspect` can say
                // so instead of silently summarizing the surviving suffix.
                writeln!(
                    file,
                    "{}",
                    hlsrg_suite::trace::truncation_line(tracer.overwritten())
                )
            } else {
                Ok(())
            }
        });
        if let Err(e) = write {
            eprintln!("error: cannot write {path}: {e}");
            return ExitCode::FAILURE;
        }
    }
    if let (Some(path), Some(file)) = (telemetry_path, telemetry_file.as_mut()) {
        if let Err(e) = file.write_all(hlsrg_suite::trace::telemetry_to_jsonl(&samples).as_bytes())
        {
            eprintln!("error: cannot write {path}: {e}");
            return ExitCode::FAILURE;
        }
        eprintln!("wrote {} telemetry samples to {path}", samples.len());
    }
    print_report(&r, flags.contains_key("csv"));
    if let (Some(path), Some(tracer)) = (trace_path, &tracer) {
        let dropped = if tracer.overwritten() > 0 {
            format!(
                " ({} oldest overwritten by ring wrap)",
                tracer.overwritten()
            )
        } else {
            String::new()
        };
        eprintln!("wrote {} trace events to {path}{dropped}", tracer.len());
    }
    for p in &r.phase_timings {
        eprintln!(
            "  phase {:<14} {:>9} calls  mean {:>8.0} ns  total {:>8.1} ms",
            p.phase, p.count, p.mean_ns, p.total_ms
        );
    }
    ExitCode::SUCCESS
}

fn cmd_inspect(args: &[String]) -> ExitCode {
    let Some((file, rest)) = args.split_first().filter(|(f, _)| !f.starts_with("--")) else {
        eprintln!("error: inspect needs a trace file (hlsrg inspect FILE)");
        usage();
        return ExitCode::FAILURE;
    };
    let flags = match parse_flags(rest) {
        Ok(f) => f,
        Err(e) => {
            eprintln!("error: {e}");
            usage();
            return ExitCode::FAILURE;
        }
    };
    let text = match std::fs::read_to_string(file) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("error: cannot read {file}: {e}");
            return ExitCode::FAILURE;
        }
    };
    // Parse line by line so a truncated or corrupt record names its exact
    // location instead of failing the whole file with an aggregate count.
    let mut events = Vec::new();
    let mut lost: u64 = 0;
    let mut bad: u64 = 0;
    for (ix, raw) in text.lines().enumerate() {
        let line = raw.trim();
        if line.is_empty() {
            continue;
        }
        if let Some(ev) = TraceEvent::parse_line(line) {
            events.push(ev);
        } else if let Some(n) = hlsrg_suite::trace::parse_truncation_line(line) {
            lost += n;
        } else {
            bad += 1;
            if bad <= 5 {
                let snippet: String = line.chars().take(72).collect();
                let cut = if snippet.len() < line.len() {
                    "…"
                } else {
                    ""
                };
                eprintln!(
                    "error: {file}:{}: not a valid trace record: {snippet:?}{cut}",
                    ix + 1
                );
            }
        }
    }
    if bad > 5 {
        eprintln!("error: …and {} more invalid lines", bad - 5);
    }
    if bad > 0 {
        return ExitCode::FAILURE;
    }
    if events.is_empty() {
        eprintln!("error: no trace events in {file}");
        return ExitCode::FAILURE;
    }
    if lost > 0 {
        eprintln!(
            "warning: trace truncated, {lost} events lost to ring overflow; \
             summaries cover only the surviving suffix"
        );
    }
    if let Some(q) = flags.get("query").and_then(|v| v.parse::<u64>().ok()) {
        return print_query_timeline(&events, q);
    }
    let top = get(&flags, "top", 5usize);
    let reg = registry_from_events(&events);
    let span = events
        .last()
        .unwrap()
        .time()
        .saturating_since(events[0].time());
    println!(
        "== {} events over {:.1} s ==",
        events.len(),
        span.as_secs_f64()
    );
    println!(
        "{:>12} {:>10} {:>10} {:>10} {:>10} {:>8}",
        "class", "originated", "radio tx", "wired tx", "delivered", "drops"
    );
    for (c, name) in hlsrg_suite::trace::CLASS_NAMES.iter().enumerate() {
        let c = c as u8;
        println!(
            "{:>12} {:>10} {:>10} {:>10} {:>10} {:>8}",
            name,
            reg.originated(c),
            reg.radio(c),
            reg.wired(c),
            reg.delivered(c),
            reg.drops(c)
        );
    }
    let (launched, answered, retried) = reg.query_counts();
    let (up, down) = reg.route_counts();
    println!("\nqueries: {launched} launched, {answered} answered, {retried} retried; routed up {up} / down {down}");
    let (art, norm) = reg.updates_by_road_class();
    let (dir, region) = reg.notify_counts();
    println!("updates: {art} artery, {norm} normal; notifies: {dir} directional, {region} region");

    let mut causes: Vec<(usize, u64)> = reg
        .drops_by_cause()
        .into_iter()
        .enumerate()
        .filter(|&(_, n)| n > 0)
        .collect();
    causes.sort_by_key(|&(i, n)| (std::cmp::Reverse(n), i));
    println!("\ntop drop causes:");
    if causes.is_empty() {
        println!("  (no drops)");
    }
    for (i, n) in causes.into_iter().take(top) {
        println!("  {:<12} {n}", cause_name(i as u8));
    }

    println!("\nper-level latency (deepest level visited):");
    for l in reg.level_summaries() {
        let pct = |v: Option<f64>| match v {
            Some(s) => format!("{s:>7.3}s"),
            None => "     n/a".into(),
        };
        println!(
            "  L{}  hits {:>6}  misses {:>6}  p50 {}  p95 {}  p99 {}",
            l.level,
            l.hits,
            l.misses,
            pct(l.p50),
            pct(l.p95),
            pct(l.p99)
        );
    }

    println!("\nbusiest nodes (radio tx):");
    let busiest = reg.busiest_nodes(top);
    if busiest.is_empty() {
        println!("  (no radio activity)");
    }
    for (id, m) in busiest {
        println!(
            "  node {id:<6} {:>8} tx  {:>6} originated  {:>6} delivered  {:>4} drops",
            m.radio_tx.get(),
            m.originated.get(),
            m.delivered.get(),
            m.drops.get()
        );
    }
    ExitCode::SUCCESS
}

/// Prints every lifecycle record of one query, with times relative to launch.
fn print_query_timeline(events: &[TraceEvent], q: u64) -> ExitCode {
    let of_query: Vec<&TraceEvent> = events.iter().filter(|e| e.query_id() == Some(q)).collect();
    let Some(first) = of_query.first() else {
        eprintln!("error: query {q} does not appear in the trace");
        return ExitCode::FAILURE;
    };
    let t0 = first.time();
    println!("== query {q}: {} events ==", of_query.len());
    for e in of_query {
        println!(
            "  +{:>9.6}s  {}",
            e.time().saturating_since(t0).as_secs_f64(),
            e.to_jsonl()
        );
    }
    ExitCode::SUCCESS
}

fn cmd_figures(flags: &Flags) -> ExitCode {
    let scale = if flags.contains_key("paper") {
        FigureScale::Paper
    } else {
        FigureScale::Smoke
    };
    let csv = flags.contains_key("csv");
    let f2 = fig3_2(scale);
    let (f3, f4, f5) = fig3_345(scale);
    for fig in [&f2, &f3, &f4, &f5] {
        if csv {
            println!("# Figure {}", fig.id);
            print!("{}", fig.to_csv());
        } else {
            println!("{fig}");
        }
    }
    ExitCode::SUCCESS
}

fn cmd_compare(flags: &Flags) -> ExitCode {
    let cfg = config_of(flags);
    let reps = get(flags, "reps", 5usize);
    println!(
        "{} vehicles, {:.0} m map, {} seeds\n",
        cfg.vehicles, cfg.map.width, reps
    );
    println!(
        "{:>9} {:>14} {:>14} {:>12} {:>12}",
        "protocol", "updates", "query tx", "success", "latency(s)"
    );
    for protocol in Protocol::ALL {
        let a = replicate_averaged(&cfg, protocol, reps);
        println!(
            "{:>9} {:>14.0} {:>14.0} {:>12.2} {:>12.3}",
            a.protocol, a.update_packets, a.query_radio_tx, a.success_rate, a.mean_latency
        );
    }
    ExitCode::SUCCESS
}

fn cmd_trace(flags: &Flags) -> ExitCode {
    let size = get(flags, "size", 2000.0f64);
    let vehicles = get(flags, "vehicles", 500usize);
    let duration = get(flags, "duration", 300.0f64);
    let seed = get(flags, "seed", 0u64);
    let net = generate_grid(
        &GridMapSpec::paper(size),
        &mut SmallRng::seed_from_u64(seed),
    );
    let lights = TrafficLights::new(&net, LightConfig::default());
    let mut rng = SmallRng::seed_from_u64(seed.wrapping_add(1));
    let mut model = MobilityModel::new(&net, MobilityConfig::default(), vehicles, &mut rng);
    let ticks =
        (SimTime::from_secs_f64(duration).as_micros() / model.config().tick.as_micros()) as usize;
    let trace = Ns2Trace::record(&net, &lights, &mut model, ticks);
    let text = trace.to_ns2_text();
    match flags.get("out") {
        Some(path) => {
            if let Err(e) = std::fs::write(path, &text) {
                eprintln!("error: cannot write {path}: {e}");
                return ExitCode::FAILURE;
            }
            eprintln!(
                "wrote {} ({} vehicles, {} setdest commands, horizon {})",
                path,
                trace.initial.len(),
                trace.commands.len(),
                trace.horizon()
            );
        }
        None => print!("{text}"),
    }
    ExitCode::SUCCESS
}

/// `fuzz` — seeded scenario fuzzing with the invariant oracle armed.
///
/// Each case is a random-but-reproducible scenario config drawn from
/// `--seed`; failures are shrunk to minimal reproducers and written (with
/// the original case) to a `--out` JSONL corpus that `--replay` re-runs.
#[cfg(feature = "check")]
fn cmd_fuzz(flags: &Flags) -> ExitCode {
    use hlsrg_suite::scenario::fuzz::{corpus_of, fuzz_campaign, fuzz_campaign_pooled, replay};

    if let Some(path) = flags.get("replay") {
        let text = match std::fs::read_to_string(path) {
            Ok(t) => t,
            Err(e) => {
                eprintln!("error: cannot read {path}: {e}");
                return ExitCode::FAILURE;
            }
        };
        let results = replay(&text);
        if results.is_empty() {
            eprintln!("error: no fuzz cases in {path}");
            return ExitCode::FAILURE;
        }
        let mut failed = 0u64;
        for (case, outcome) in &results {
            match outcome {
                Some((invariant, detail)) => {
                    failed += 1;
                    println!("FAIL {invariant}: {detail}\n  {}", case.to_jsonl());
                }
                None => println!("ok   {}", case.to_jsonl()),
            }
        }
        println!("replayed {} cases, {failed} failing", results.len());
        return if failed == 0 {
            ExitCode::SUCCESS
        } else {
            ExitCode::FAILURE
        };
    }

    let runs = get(flags, "runs", 50u64);
    let seed = get(flags, "seed", 0u64);
    let corrupt = flags.contains_key("corrupt");
    // `--pool N` fans cases out over the shared job pool (`auto` = one worker
    // per core); results are index-ordered either way, so the corpus and exit
    // code cannot depend on the pool width.
    let failures = match flags.get("pool") {
        Some(v) => {
            let threads = if v == "auto" {
                hlsrg_suite::scenario::JobPool::available().threads()
            } else {
                match v.parse() {
                    Ok(n) if n > 0 => n,
                    _ => {
                        eprintln!(
                            "error: --pool wants a positive thread count or `auto`, got {v:?}"
                        );
                        return ExitCode::FAILURE;
                    }
                }
            };
            fuzz_campaign_pooled(seed, runs, corrupt, threads)
        }
        None => fuzz_campaign(seed, runs, corrupt, |ix, case, failed| {
            if failed {
                eprintln!("case {ix} FAILED: {}", case.to_jsonl());
            }
        }),
    };
    println!(
        "fuzz: {runs} runs from seed {seed}{}, {} failing",
        if corrupt { " (corruption armed)" } else { "" },
        failures.len()
    );
    for f in &failures {
        println!("  case {}: {}: {}", f.ix, f.invariant, f.detail);
        println!("    shrunk: {}", f.shrunk.to_jsonl());
    }
    if let Some(path) = flags.get("out") {
        if failures.is_empty() {
            eprintln!("no failures; nothing written to {path}");
        } else if let Err(e) = std::fs::write(path, corpus_of(&failures)) {
            eprintln!("error: cannot write {path}: {e}");
            return ExitCode::FAILURE;
        } else {
            eprintln!("wrote corpus of {} failures to {path}", failures.len());
        }
    }
    // The corruption self-test is *supposed* to fail; everything else is not.
    if failures.is_empty() == corrupt {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}

#[cfg(not(feature = "check"))]
fn cmd_fuzz(_flags: &Flags) -> ExitCode {
    eprintln!(
        "error: `fuzz` needs the invariant oracle, which is compiled out by default.\n\
         Rebuild with:  cargo build --release --features check"
    );
    ExitCode::FAILURE
}

/// `bench` — time the canonical scenarios and append to the perf trajectory.
///
/// The scale comes from `--scale`, falling back to the `HLSRG_BENCH_SCALE`
/// environment variable (the CI hook), then to `smoke`. `--check FILE`
/// validates an existing trajectory without running anything.
/// `report` — render telemetry, figure sweeps, and the bench trajectory into
/// one self-contained HTML file (inline SVG/CSS only; no external assets).
fn cmd_report(flags: &Flags) -> ExitCode {
    use hlsrg_suite::scenario::{parse_trajectory, render_report, ReportInputs};
    use hlsrg_suite::trace::parse_telemetry_jsonl;

    let out = flags
        .get("out")
        .cloned()
        .unwrap_or_else(|| "report.html".into());
    let title = flags
        .get("title")
        .cloned()
        .unwrap_or_else(|| "HLSRG run report".into());

    let telemetry = match flags.get("telemetry") {
        Some(path) => match std::fs::read_to_string(path) {
            Ok(text) => {
                let samples = parse_telemetry_jsonl(&text);
                if samples.is_empty() {
                    eprintln!("error: no telemetry samples in {path}");
                    return ExitCode::FAILURE;
                }
                samples
            }
            Err(e) => {
                eprintln!("error: cannot read {path}: {e}");
                return ExitCode::FAILURE;
            }
        },
        None => Vec::new(),
    };
    let bench = match flags.get("bench") {
        Some(path) => {
            let text = match std::fs::read_to_string(path) {
                Ok(t) => t,
                Err(e) => {
                    eprintln!("error: cannot read {path}: {e}");
                    return ExitCode::FAILURE;
                }
            };
            match parse_trajectory(&text) {
                Ok(records) => records,
                Err(e) => {
                    eprintln!("error: {path}: {e}");
                    return ExitCode::FAILURE;
                }
            }
        }
        None => Vec::new(),
    };
    let figures = match flags.get("figures").map(String::as_str) {
        None | Some("none") => Vec::new(),
        Some(scale) => {
            let scale = match scale {
                "smoke" => FigureScale::Smoke,
                "paper" => FigureScale::Paper,
                other => {
                    eprintln!("error: unknown figure scale {other:?} (use none, smoke, or paper)");
                    return ExitCode::FAILURE;
                }
            };
            eprintln!("running {scale:?}-scale figure sweeps…");
            let f2 = fig3_2(scale);
            let (f3, f4, f5) = fig3_345(scale);
            vec![f2, f3, f4, f5]
        }
    };

    let html = render_report(&ReportInputs {
        title: &title,
        telemetry: &telemetry,
        figures: &figures,
        bench: &bench,
    });
    if let Err(e) = std::fs::write(&out, &html) {
        eprintln!("error: cannot write {out}: {e}");
        return ExitCode::FAILURE;
    }
    eprintln!(
        "wrote {out} ({} telemetry samples, {} figures, {} bench records)",
        telemetry.len(),
        figures.len(),
        bench.len()
    );
    ExitCode::SUCCESS
}

fn cmd_bench(flags: &Flags) -> ExitCode {
    use hlsrg_suite::scenario::{
        append_trajectory, compare_trajectory, parse_trajectory, run_bench,
    };

    if let Some(baseline) = flags.get("compare") {
        let out = flags
            .get("out")
            .cloned()
            .unwrap_or_else(|| "BENCH_sim.json".into());
        let threshold = get(flags, "threshold", 20.0f64);
        let text = match std::fs::read_to_string(&out) {
            Ok(t) => t,
            Err(e) => {
                eprintln!("error: cannot read {out}: {e}");
                return ExitCode::FAILURE;
            }
        };
        let records = match parse_trajectory(&text) {
            Ok(r) => r,
            Err(e) => {
                eprintln!("error: {out}: {e}");
                return ExitCode::FAILURE;
            }
        };
        let rows = match compare_trajectory(&records, baseline, threshold) {
            Ok(r) => r,
            Err(e) => {
                eprintln!("error: {e}");
                return ExitCode::FAILURE;
            }
        };
        if rows.is_empty() {
            eprintln!(
                "error: no scenario in {out} has both a {baseline:?} baseline and a newer row"
            );
            return ExitCode::FAILURE;
        }
        let mut regressed = false;
        println!(
            "{:<8} {:<14} {:>14} {:>14} {:>9}",
            "scale", "scenario", "baseline ev/s", "current ev/s", "delta"
        );
        for row in &rows {
            regressed |= row.regressed;
            println!(
                "{:<8} {:<14} {:>14.0} {:>14.0} {:>+8.1}%{}",
                row.scale,
                row.scenario,
                row.baseline_eps,
                row.current_eps,
                row.delta_pct,
                if row.regressed { "  REGRESSED" } else { "" }
            );
        }
        return if regressed {
            eprintln!(
                "error: events/sec regressed more than {threshold}% vs baseline {baseline:?}"
            );
            ExitCode::FAILURE
        } else {
            ExitCode::SUCCESS
        };
    }

    if let Some(path) = flags.get("check") {
        let text = match std::fs::read_to_string(path) {
            Ok(t) => t,
            Err(e) => {
                eprintln!("error: cannot read {path}: {e}");
                return ExitCode::FAILURE;
            }
        };
        return match parse_trajectory(&text) {
            Ok(records) => {
                println!("{path}: {} valid bench records", records.len());
                ExitCode::SUCCESS
            }
            Err(e) => {
                eprintln!("error: {path}: {e}");
                ExitCode::FAILURE
            }
        };
    }

    let scale_name = flags
        .get("scale")
        .cloned()
        .or_else(|| std::env::var("HLSRG_BENCH_SCALE").ok())
        .unwrap_or_else(|| "smoke".into());
    let Some(scale) = BenchScale::parse(&scale_name) else {
        eprintln!("error: unknown bench scale {scale_name:?} (use smoke, paper, or large)");
        return ExitCode::FAILURE;
    };
    let mut opts = BenchOptions {
        scale,
        ..BenchOptions::default()
    };
    opts.reps = get(flags, "reps", opts.reps).max(1);
    opts.threads = get(flags, "threads", opts.threads).max(1);
    opts.only = flags.get("only").cloned();
    #[cfg(feature = "bench-alloc")]
    {
        opts.alloc_count = Some(counting_alloc::count);
    }
    let label = flags.get("label").cloned().unwrap_or_else(|| "dev".into());
    let out = flags
        .get("out")
        .cloned()
        .unwrap_or_else(|| "BENCH_sim.json".into());

    let records = run_bench(&opts, &label);
    for r in &records {
        println!(
            "{:<14} {:>10.1} ms  {:>9} events  {:>11.0} events/s  peak queue {:>6}{}{}{}",
            r.scenario,
            r.wall_ms,
            r.events,
            r.events_per_sec,
            r.peak_queue_depth,
            match (r.queue_resizes, r.max_bucket_scan) {
                (Some(rs), Some(scan)) => format!("  {rs} resizes  max scan {scan}"),
                _ => String::new(),
            },
            match r.allocs_per_event {
                Some(a) => format!("  {a:.1} allocs/event"),
                None => String::new(),
            },
            match (r.shards, r.threads) {
                (Some(s), Some(t)) => format!("  {s} shard(s) / {t} thread(s)"),
                (Some(s), None) => format!("  {s} shard(s)"),
                _ => String::new(),
            }
        );
    }
    match append_trajectory(std::path::Path::new(&out), &records) {
        Ok(all) => {
            eprintln!(
                "appended {} records to {out} ({} total)",
                records.len(),
                all.len()
            );
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}

fn cmd_map(flags: &Flags) -> ExitCode {
    let size = get(flags, "size", 2000.0f64);
    let jitter = get(flags, "jitter", 0.0f64);
    let seed = get(flags, "seed", 0u64);
    let spec = if jitter > 0.0 {
        GridMapSpec::jittered(size, jitter)
    } else {
        GridMapSpec::paper(size)
    };
    let net = generate_grid(&spec, &mut SmallRng::seed_from_u64(seed));
    let text = to_map_text(&net);
    match flags.get("out") {
        Some(path) => {
            if let Err(e) = std::fs::write(path, &text) {
                eprintln!("error: cannot write {path}: {e}");
                return ExitCode::FAILURE;
            }
            eprintln!(
                "wrote {} ({} intersections, {} roads)",
                path,
                net.intersection_count(),
                net.road_count()
            );
        }
        None => print!("{text}"),
    }
    ExitCode::SUCCESS
}
