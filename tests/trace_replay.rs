//! The paper's actual workflow, end to end: mobility produced by one tool, fed
//! into the network simulation through an ns-2 trace file.

use hlsrg_suite::des::{SimDuration, SimTime};
use hlsrg_suite::mobility::{LightConfig, MobilityConfig, MobilityModel, Ns2Trace, TrafficLights};
use hlsrg_suite::roadnet::{generate_grid, GridMapSpec};
use hlsrg_suite::scenario::{run_simulation, Protocol, SimConfig};
use rand::rngs::SmallRng;
use rand::SeedableRng;

/// Records a trace of the native mobility model over `secs` simulated seconds.
fn record_trace(size: f64, vehicles: usize, secs: u64, seed: u64) -> String {
    let net = generate_grid(&GridMapSpec::paper(size), &mut SmallRng::seed_from_u64(0));
    let lights = TrafficLights::new(&net, LightConfig::default());
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut model = MobilityModel::new(&net, MobilityConfig::default(), vehicles, &mut rng);
    let ticks = (SimTime::from_secs(secs).as_micros() / model.config().tick.as_micros()) as usize;
    Ns2Trace::record(&net, &lights, &mut model, ticks).to_ns2_text()
}

#[test]
fn hlsrg_runs_on_a_replayed_trace() {
    let trace = record_trace(1000.0, 100, 120, 3);
    let mut cfg = SimConfig::paper_fig3_2(1000.0, 1, 3); // vehicle count overridden
    cfg.duration = SimDuration::from_secs(120);
    cfg.warmup = SimDuration::from_secs(40);
    cfg.trace_ns2 = Some(trace);
    let r = run_simulation(&cfg, Protocol::Hlsrg);
    assert_eq!(r.vehicles, 100, "fleet size must come from the trace");
    assert!(r.queries_launched == 10, "10% of the trace fleet queries");
    assert!(r.update_packets >= 100, "at least the registrations");
    assert!(
        r.success_rate >= 0.5,
        "trace-driven success only {:.2}",
        r.success_rate
    );
}

#[test]
fn trace_and_native_runs_are_macroscopically_similar() {
    // The same world, once native and once through the trace bottleneck: packet
    // counts won't be identical (the trace quantizes kinematics into waypoint
    // commands) but must be the same order of magnitude.
    let mut native = SimConfig::paper_fig3_2(1000.0, 100, 4);
    native.duration = SimDuration::from_secs(120);
    native.warmup = SimDuration::from_secs(40);
    let a = run_simulation(&native, Protocol::Hlsrg);

    let mut traced = native.clone();
    traced.trace_ns2 = Some(record_trace(1000.0, 100, 120, 4));
    let b = run_simulation(&traced, Protocol::Hlsrg);

    let ratio = b.update_packets as f64 / a.update_packets as f64;
    assert!(
        (0.3..3.0).contains(&ratio),
        "native {} vs traced {} updates",
        a.update_packets,
        b.update_packets
    );
}

#[test]
fn rlsmp_also_replays_traces() {
    let trace = record_trace(1000.0, 80, 100, 5);
    let mut cfg = SimConfig::paper_fig3_2(1000.0, 1, 5);
    cfg.duration = SimDuration::from_secs(100);
    cfg.warmup = SimDuration::from_secs(40);
    cfg.trace_ns2 = Some(trace);
    let r = run_simulation(&cfg, Protocol::Rlsmp);
    assert_eq!(r.vehicles, 80);
    assert!(r.update_packets >= 80);
}
