//! The payoff test: after the location service answers, application data must
//! actually flow over GPSR — the purpose the paper builds the whole system for.

use hlsrg_suite::des::SimDuration;
use hlsrg_suite::scenario::{run_simulation, Protocol, SimConfig};

fn cfg(seed: u64) -> SimConfig {
    let mut cfg = SimConfig::paper_2km(400, seed);
    cfg.duration = SimDuration::from_secs(180);
    cfg.warmup = SimDuration::from_secs(60);
    cfg
}

#[test]
fn data_flows_after_discovery() {
    let r = run_simulation(&cfg(1), Protocol::Hlsrg);
    // 8 packets per successful session.
    assert_eq!(r.data_sent, 8 * r.queries_succeeded as u64);
    let ratio = r.data_delivery_ratio().expect("sessions ran");
    assert!(ratio > 0.85, "data delivery ratio only {ratio:.2}");
}

#[test]
fn data_sessions_can_be_disabled() {
    let mut c = cfg(2);
    c.hlsrg.data_packets_per_session = 0;
    c.rlsmp.data_packets_per_session = 0;
    for protocol in Protocol::ALL {
        let r = run_simulation(&c, protocol);
        assert_eq!(r.data_sent, 0);
        assert_eq!(r.data_delivered, 0);
        assert!(r.data_delivery_ratio().is_none());
    }
}

#[test]
fn both_protocols_enable_comparable_data_delivery_per_session() {
    // Once a session exists, the data plane is plain GPSR for both protocols —
    // the *number* of sessions differs (success rates), not per-session quality.
    let h = run_simulation(&cfg(3), Protocol::Hlsrg);
    let r = run_simulation(&cfg(3), Protocol::Rlsmp);
    let hr = h.data_delivery_ratio().unwrap();
    let rr = r.data_delivery_ratio().unwrap();
    assert!(
        (hr - rr).abs() < 0.25,
        "per-session quality diverged: {hr:.2} vs {rr:.2}"
    );
    // But HLSRG enables more total delivered data (more sessions).
    assert!(h.data_delivered > r.data_delivered);
}
