//! Reproducibility: a run is a pure function of (config, seed).

use hlsrg_suite::des::SimDuration;
use hlsrg_suite::scenario::{replicate, run_simulation, Protocol, SimConfig};

fn quick(seed: u64) -> SimConfig {
    SimConfig::quick_demo(seed)
}

#[test]
fn identical_seed_identical_everything() {
    for protocol in Protocol::ALL {
        let a = run_simulation(&quick(9), protocol);
        let b = run_simulation(&quick(9), protocol);
        assert_eq!(a.update_packets, b.update_packets);
        assert_eq!(a.update_radio_tx, b.update_radio_tx);
        assert_eq!(a.collection_radio_tx, b.collection_radio_tx);
        assert_eq!(a.collection_wired_tx, b.collection_wired_tx);
        assert_eq!(a.query_radio_tx, b.query_radio_tx);
        assert_eq!(a.query_wired_tx, b.query_wired_tx);
        assert_eq!(a.queries_launched, b.queries_launched);
        assert_eq!(a.queries_succeeded, b.queries_succeeded);
        assert_eq!(a.drops, b.drops);
        assert_eq!(a.latency.count(), b.latency.count());
        assert_eq!(a.latency.mean(), b.latency.mean());
    }
}

#[test]
fn different_seeds_change_outcomes() {
    let a = run_simulation(&quick(1), Protocol::Hlsrg);
    let b = run_simulation(&quick(2), Protocol::Hlsrg);
    assert_ne!(
        (a.update_packets, a.query_radio_tx, a.queries_succeeded),
        (b.update_packets, b.query_radio_tx, b.queries_succeeded)
    );
}

#[test]
fn parallel_replication_matches_serial() {
    let cfg = quick(50);
    let parallel = replicate(&cfg, Protocol::Hlsrg, 3);
    for (i, run) in parallel.iter().enumerate() {
        let mut serial_cfg = cfg.clone();
        serial_cfg.seed = cfg.seed + i as u64;
        let serial = run_simulation(&serial_cfg, Protocol::Hlsrg);
        assert_eq!(run.update_packets, serial.update_packets, "seed {i}");
        assert_eq!(run.queries_succeeded, serial.queries_succeeded, "seed {i}");
    }
}

#[test]
fn protocols_share_identical_workloads() {
    // Same seed ⇒ same map, same fleet, same query schedule for both protocols.
    let cfg = quick(77);
    let h = run_simulation(&cfg, Protocol::Hlsrg);
    let r = run_simulation(&cfg, Protocol::Rlsmp);
    assert_eq!(h.queries_launched, r.queries_launched);
    assert_eq!(h.vehicles, r.vehicles);
    // Mobility is protocol-independent: same artery share.
    assert_eq!(h.artery_share, r.artery_share);
}

#[test]
fn duration_extension_only_adds_events() {
    // A longer run must see at least as many updates (monotone accumulation).
    let mut short = quick(33);
    short.duration = SimDuration::from_secs(80);
    short.warmup = SimDuration::from_secs(30);
    let mut long = short.clone();
    long.duration = SimDuration::from_secs(120);
    let a = run_simulation(&short, Protocol::Hlsrg);
    let b = run_simulation(&long, Protocol::Hlsrg);
    assert!(b.update_packets >= a.update_packets);
}
