//! End-to-end coverage of multi-L3 topologies: a 4 km map has a 2×2 L3 mesh, so
//! the L3→L3 wired forwarding path (paper §2.3.2 case 1) actually runs, and
//! RLSMP's spiral search has real clusters to visit.

use hlsrg_suite::des::SimDuration;
use hlsrg_suite::scenario::{run_simulation, Protocol, SimConfig};

/// A 4 km scenario sized for test time: the same density as the paper's 2 km/500.
fn cfg_4km(seed: u64) -> SimConfig {
    let mut cfg = SimConfig::paper_fig3_2(4000.0, 700, seed);
    cfg.duration = SimDuration::from_secs(200);
    cfg.warmup = SimDuration::from_secs(70);
    cfg
}

#[test]
fn hlsrg_resolves_across_l3_grids() {
    let r = run_simulation(&cfg_4km(1), Protocol::Hlsrg);
    assert!(r.queries_launched >= 60);
    // Cross-L3 queries must work: the map is 4 L3 grids, so most pairs span them.
    // Shorter warm-up than the paper's 300 s run and 4× the area: the bar is
    // "most cross-L3 queries resolve", not the 2 km figure's near-100 %.
    assert!(
        r.success_rate >= 0.60,
        "multi-L3 success only {:.2}",
        r.success_rate
    );
    // The L3 mesh was actually used (query traffic on the wires).
    assert!(
        r.query_wired_tx > 0,
        "no wired query forwarding on a 2×2 L3 mesh"
    );
}

#[test]
fn rlsmp_spiral_operates_across_clusters() {
    let r = run_simulation(&cfg_4km(2), Protocol::Rlsmp);
    assert!(r.queries_launched >= 60);
    // With 16×16 cells in 4×4-cell clusters there are 16 LSCs; the spiral gives
    // RLSMP *some* cross-cluster resolution ability.
    assert!(
        r.success_rate > 0.15,
        "spiral search resolved almost nothing: {:.2}",
        r.success_rate
    );
    // And it stays behind HLSRG.
    let h = run_simulation(&cfg_4km(2), Protocol::Hlsrg);
    assert!(h.success_rate > r.success_rate);
}

#[test]
fn update_suppression_holds_at_4km() {
    let h = run_simulation(&cfg_4km(3), Protocol::Hlsrg);
    let r = run_simulation(&cfg_4km(3), Protocol::Rlsmp);
    let ratio = h.update_packets as f64 / r.update_packets as f64;
    assert!(ratio < 0.75, "ratio {ratio:.2} at 4 km");
    // At 4 km the artery L3-crossing rule finally fires (4 L3 grids exist).
    let l3_crossings = h
        .diagnostics
        .iter()
        .find(|(k, _)| *k == "updates_artery_l3")
        .map(|&(_, v)| v)
        .unwrap_or(0.0);
    assert!(
        l3_crossings > 0.0,
        "no artery L3-crossing updates on a multi-L3 map"
    );
}
