//! Differential determinism suite for region-sharded runs.
//!
//! The sharded executor's contract is *byte identity*: a run split across any
//! number of L3-region shards must produce exactly the same reports, traces,
//! and telemetry as the classic single-shard run of the same config. These
//! tests pin that contract by running every scenario at shards ∈ {1, 2, 4, 8}
//! and comparing the complete observable surface, with only the fields that
//! are shard-local by construction (per-shard counters, kernel
//! self-diagnostics, wall-clock timings) excluded.

use hlsrg_suite::scenario::{
    run_simulation, run_simulation_instrumented, run_simulation_traced, Protocol, RunReport,
    SimConfig,
};
use vanet_des::SimDuration;

const SHARD_COUNTS: [usize; 3] = [2, 4, 8];

/// A 4 km map is a 2×2 L3 mesh — the smallest topology where region sharding
/// is non-trivial (cross-shard deliveries, L3 boundary migrations, wired
/// L3→L3 forwarding). Sized well below the paper density to keep the
/// 8-run-per-test differential suite fast.
fn multi_l3_cfg(seed: u64) -> SimConfig {
    let mut cfg = SimConfig::paper_fig3_2(4000.0, 220, seed);
    cfg.duration = SimDuration::from_secs(120);
    cfg.warmup = SimDuration::from_secs(40);
    cfg
}

fn sharded(cfg: &SimConfig, shards: usize) -> SimConfig {
    SimConfig {
        shards,
        ..cfg.clone()
    }
}

fn threaded(cfg: &SimConfig, shards: usize, threads: usize) -> SimConfig {
    SimConfig {
        shards,
        threads,
        ..cfg.clone()
    }
}

const THREAD_COUNTS: [usize; 3] = [1, 2, 4];

/// Every report field that must be identical across shard counts, rendered to
/// one comparable string. Excluded as shard-count-dependent by construction:
/// `shard_counts` (one row per shard) and `boundary_events` (counts handoffs
/// that do not exist at one shard). Excluded as kernel self-diagnostics that
/// depend on how events spread over bucket arrays: `queue_resizes`,
/// `queue_max_scan`. Excluded as wall-clock: `phase_timings`.
fn fingerprint(r: &RunReport) -> String {
    format!(
        "protocol={} seed={} vehicles={} map={:?} updates={} update_radio={} \
         coll_radio={} coll_wired={} query_radio={} query_wired={} launched={} \
         succeeded={} data_sent={} data_delivered={} rate={:?} lat_n={} \
         lat_mean={:?} lat_p95={:?} drops={:?} breakdown={:?} matrix={:?} \
         airtime={:?} artery={:?} diag={:?} timeline={} events={} peak={} \
         migrations={} violations={} epochs={}",
        r.protocol,
        r.seed,
        r.vehicles,
        r.map_size,
        r.update_packets,
        r.update_radio_tx,
        r.collection_radio_tx,
        r.collection_wired_tx,
        r.query_radio_tx,
        r.query_wired_tx,
        r.queries_launched,
        r.queries_succeeded,
        r.data_sent,
        r.data_delivered,
        r.success_rate,
        r.latency.count(),
        r.latency.mean(),
        r.latency_p95,
        r.drops,
        r.drop_breakdown,
        r.drop_matrix,
        r.airtime_us,
        r.artery_share,
        r.diagnostics,
        r.timeline.len(),
        r.events_processed,
        r.peak_queue_depth,
        r.shard_migrations,
        r.lookahead_violations,
        r.barrier_epochs,
    )
}

#[test]
fn sharded_reports_are_byte_identical_to_single_shard() {
    for protocol in [Protocol::Hlsrg, Protocol::Rlsmp] {
        let base_cfg = multi_l3_cfg(42);
        let base = run_simulation(&base_cfg, protocol);
        assert_eq!(base.shard_counts.len(), 1);
        assert_eq!(base.boundary_events, 0, "one shard has no boundaries");
        assert_eq!(base.lookahead_violations, 0);
        assert!(base.barrier_epochs > 0, "lookahead epochs were counted");
        let want = fingerprint(&base);
        for shards in SHARD_COUNTS {
            let got = run_simulation(&sharded(&base_cfg, shards), protocol);
            assert_eq!(got.shard_counts.len(), shards);
            assert_eq!(got.lookahead_violations, 0, "sync contract violated");
            assert_eq!(
                fingerprint(&got),
                want,
                "{protocol:?} report drifted at {shards} shards"
            );
            // The per-shard split must still conserve the event totals.
            let scheduled: u64 = got.shard_counts.iter().map(|&(s, _)| s).sum();
            let base_scheduled: u64 = base.shard_counts.iter().map(|&(s, _)| s).sum();
            assert_eq!(scheduled, base_scheduled, "scheduled totals diverged");
        }
    }
}

#[test]
fn sharded_traces_are_byte_identical() {
    for protocol in [Protocol::Hlsrg, Protocol::Rlsmp] {
        let base_cfg = multi_l3_cfg(7);
        let (_, tracer) = run_simulation_traced(&base_cfg, protocol);
        let want = tracer.to_jsonl();
        for shards in SHARD_COUNTS {
            let (_, tracer) = run_simulation_traced(&sharded(&base_cfg, shards), protocol);
            assert_eq!(
                tracer.to_jsonl(),
                want,
                "{protocol:?} trace drifted at {shards} shards"
            );
        }
    }
}

#[test]
fn sharded_telemetry_is_byte_identical() {
    for protocol in [Protocol::Hlsrg, Protocol::Rlsmp] {
        let base_cfg = SimConfig {
            telemetry_interval: Some(SimDuration::from_secs(10)),
            ..multi_l3_cfg(7)
        };
        let (_, _, samples) = run_simulation_instrumented(&base_cfg, protocol, false);
        let want = vanet_trace::telemetry_to_jsonl(&samples);
        assert!(samples.iter().any(|s| s.barriers > 0));
        for shards in SHARD_COUNTS {
            let (_, _, samples) =
                run_simulation_instrumented(&sharded(&base_cfg, shards), protocol, false);
            assert_eq!(
                vanet_trace::telemetry_to_jsonl(&samples),
                want,
                "{protocol:?} telemetry drifted at {shards} shards"
            );
        }
    }
}

/// The thread matrix: at a fixed shard count the worker-thread count is pure
/// mechanism — per-shard queue mechanics move onto a pool while every handler
/// still runs on the commit thread in global `(time, seq)` order — so reports
/// must be byte-identical to the single-shard run at every thread count.
#[test]
fn threaded_reports_are_byte_identical_across_thread_counts() {
    for protocol in [Protocol::Hlsrg, Protocol::Rlsmp] {
        let base_cfg = multi_l3_cfg(42);
        let want = fingerprint(&run_simulation(&base_cfg, protocol));
        for threads in THREAD_COUNTS {
            let got = run_simulation(&threaded(&base_cfg, 4, threads), protocol);
            assert_eq!(got.lookahead_violations, 0, "sync contract violated");
            assert_eq!(
                fingerprint(&got),
                want,
                "{protocol:?} report drifted at 4 shards / {threads} threads"
            );
        }
    }
}

/// Traces and telemetry streams — the full serialized observable surface —
/// stay byte-identical across worker-thread counts.
#[test]
fn threaded_traces_and_telemetry_are_byte_identical() {
    let base_cfg = SimConfig {
        telemetry_interval: Some(SimDuration::from_secs(10)),
        ..multi_l3_cfg(7)
    };
    let (_, trace_want) = run_simulation_traced(&base_cfg, Protocol::Hlsrg);
    let trace_want = trace_want.to_jsonl();
    let (_, _, samples) = run_simulation_instrumented(&base_cfg, Protocol::Hlsrg, false);
    let tele_want = vanet_trace::telemetry_to_jsonl(&samples);
    for threads in THREAD_COUNTS {
        let cfg = threaded(&base_cfg, 4, threads);
        let (_, tracer) = run_simulation_traced(&cfg, Protocol::Hlsrg);
        assert_eq!(
            tracer.to_jsonl(),
            trace_want,
            "trace drifted at 4 shards / {threads} threads"
        );
        let (_, _, samples) = run_simulation_instrumented(&cfg, Protocol::Hlsrg, false);
        assert_eq!(
            vanet_trace::telemetry_to_jsonl(&samples),
            tele_want,
            "telemetry drifted at 4 shards / {threads} threads"
        );
    }
}

/// A thread count above the shard count clamps down to one worker per shard
/// instead of failing; output bytes are unchanged.
#[test]
fn oversubscribed_thread_count_clamps_to_shards() {
    let base_cfg = multi_l3_cfg(42);
    let want = fingerprint(&run_simulation(&sharded(&base_cfg, 2), Protocol::Hlsrg));
    let got = run_simulation(&threaded(&base_cfg, 2, 16), Protocol::Hlsrg);
    assert_eq!(fingerprint(&got), want, "clamped thread count drifted");
}

/// Vehicles migrate between L3 regions in any healthy scenario; the migration
/// count is part of the determinism surface (compared in `fingerprint`), and
/// a quick_demo run must actually exercise the boundary-crossing machinery.
#[test]
fn migrations_and_boundary_handoffs_actually_happen() {
    let cfg = sharded(&multi_l3_cfg(42), 4);
    let r = run_simulation(&cfg, Protocol::Hlsrg);
    assert!(r.shard_migrations > 0, "no vehicle ever changed L3 region");
    assert!(r.boundary_events > 0, "no delivery ever crossed a shard");
    // Work actually lands on more than one shard.
    let busy = r.shard_counts.iter().filter(|&&(_, p)| p > 0).count();
    assert!(
        busy > 1,
        "all events popped from one shard: {:?}",
        r.shard_counts
    );
}

/// A degenerate config that admits no positive lookahead must fail fast with
/// a clear message when sharded — never deadlock or run unsynchronized.
#[test]
fn zero_lookahead_config_fails_fast_when_sharded() {
    let mut cfg = sharded(&SimConfig::quick_demo(3), 2);
    cfg.radio.per_hop_overhead = SimDuration::ZERO;
    let err = std::panic::catch_unwind(|| run_simulation(&cfg, Protocol::Hlsrg))
        .expect_err("sharded run with zero lookahead must be rejected");
    let msg = err
        .downcast_ref::<String>()
        .cloned()
        .or_else(|| err.downcast_ref::<&str>().map(|s| s.to_string()))
        .unwrap_or_default();
    assert!(
        msg.contains("cannot shard this run"),
        "unexpected panic message: {msg}"
    );
    // The same degenerate radio config is fine unsharded.
    let mut cfg = SimConfig::quick_demo(3);
    cfg.radio.per_hop_overhead = SimDuration::ZERO;
    run_simulation(&cfg, Protocol::Hlsrg);
}

/// With the oracle armed, sharded runs stay violation-free (including the
/// shard-handoff conservation audit) and report identical counters.
#[cfg(feature = "check")]
#[test]
fn checked_sharded_runs_are_clean_and_identical() {
    use hlsrg_suite::scenario::{run_simulation_checked, CheckSetup};
    for protocol in [Protocol::Hlsrg, Protocol::Rlsmp] {
        let base_cfg = multi_l3_cfg(42);
        let (base, v) = run_simulation_checked(&base_cfg, protocol, &CheckSetup::default());
        assert!(v.is_none(), "oracle flagged the single-shard run: {v:?}");
        let want = fingerprint(&base);
        for shards in SHARD_COUNTS {
            let (got, v) = run_simulation_checked(
                &sharded(&base_cfg, shards),
                protocol,
                &CheckSetup::default(),
            );
            assert!(v.is_none(), "oracle flagged {shards} shards: {v:?}");
            assert_eq!(
                fingerprint(&got),
                want,
                "{protocol:?} checked report drifted at {shards} shards"
            );
        }
    }
}

/// The invariant oracle also stays silent under the thread matrix, and the
/// checked counters match the single-shard run byte for byte.
#[cfg(feature = "check")]
#[test]
fn checked_threaded_runs_are_clean_and_identical() {
    use hlsrg_suite::scenario::{run_simulation_checked, CheckSetup};
    let base_cfg = multi_l3_cfg(42);
    let (base, v) = run_simulation_checked(&base_cfg, Protocol::Hlsrg, &CheckSetup::default());
    assert!(v.is_none(), "oracle flagged the single-shard run: {v:?}");
    let want = fingerprint(&base);
    for threads in THREAD_COUNTS {
        let (got, v) = run_simulation_checked(
            &threaded(&base_cfg, 4, threads),
            Protocol::Hlsrg,
            &CheckSetup::default(),
        );
        assert!(
            v.is_none(),
            "oracle flagged 4 shards / {threads} threads: {v:?}"
        );
        assert_eq!(
            fingerprint(&got),
            want,
            "checked report drifted at 4 shards / {threads} threads"
        );
    }
}
