//! Cross-crate structural invariants: map ↔ partition ↔ wired backbone.

use hlsrg_suite::geo::Point;
use hlsrg_suite::net::WiredNetwork;
use hlsrg_suite::roadnet::{generate_grid, GridMapSpec, L1Id, Partition, RsuId, RsuLevel};
use rand::rngs::SmallRng;
use rand::SeedableRng;

fn build(size: f64, jitter: f64, seed: u64) -> (GridMapSpec, Partition) {
    let spec = if jitter > 0.0 {
        GridMapSpec::jittered(size, jitter)
    } else {
        GridMapSpec::paper(size)
    };
    let net = generate_grid(&spec, &mut SmallRng::seed_from_u64(seed));
    let p = Partition::build(&net, 500.0);
    (spec, p)
}

#[test]
fn hierarchy_counts_nest_exactly() {
    for &size in &[500.0, 1000.0, 2000.0, 4000.0] {
        let (_, p) = build(size, 0.0, 0);
        // Each L2 contains at most 4 L1s; each L3 at most 4 L2s — and all of them.
        let mut l2_children = vec![0u32; p.l2_count()];
        for i in 0..p.l1_count() as u32 {
            l2_children[p.l1_to_l2(L1Id(i)).0 as usize] += 1;
        }
        assert_eq!(l2_children.iter().sum::<u32>() as usize, p.l1_count());
        assert!(
            l2_children.iter().all(|&c| (1..=4).contains(&c)),
            "{size}: {l2_children:?}"
        );
    }
}

#[test]
fn every_rsu_reaches_every_rsu_over_wires() {
    for &size in &[2000.0, 4000.0, 8000.0] {
        let (_, p) = build(size, 0.0, 0);
        let w = WiredNetwork::from_partition(&p, hlsrg_suite::des::SimDuration::from_millis(2));
        let n = p.rsus().len() as u32;
        for a in 0..n {
            for b in 0..n {
                assert!(
                    w.hops(RsuId(a), RsuId(b)).is_some(),
                    "{size}: RSU {a} cannot reach {b}"
                );
            }
        }
    }
}

#[test]
fn l2_rsus_one_wired_hop_from_their_l3() {
    let (_, p) = build(4000.0, 0.0, 0);
    let w = WiredNetwork::from_partition(&p, hlsrg_suite::des::SimDuration::from_millis(2));
    for site in p.rsus() {
        if site.level == RsuLevel::L2 {
            let l3_rsu = p.rsu_of_l3(site.l3);
            assert_eq!(w.hops(site.id, l3_rsu), Some(1));
        }
    }
}

#[test]
fn grid_centers_are_real_intersections_near_their_cells() {
    for seed in 0..5 {
        let spec = GridMapSpec::jittered(2000.0, 35.0);
        let net = generate_grid(&spec, &mut SmallRng::seed_from_u64(seed));
        let p = Partition::build(&net, 500.0);
        for i in 0..p.l1_count() as u32 {
            let c = net.pos(p.l1_center(L1Id(i)));
            let bbox = p.l1_bbox(L1Id(i));
            assert!(
                bbox.inflate(130.0).contains_closed(c),
                "seed {seed}: center {c} far from cell {bbox:?}"
            );
        }
    }
}

#[test]
fn rsus_stand_at_level_centers() {
    let (_, p) = build(2000.0, 0.0, 0);
    // On the exact paper map the L2 centers are the shared corners of 4 L1 grids.
    let expected = [
        Point::new(500.0, 500.0),
        Point::new(1500.0, 500.0),
        Point::new(500.0, 1500.0),
        Point::new(1500.0, 1500.0),
    ];
    let l2_positions: Vec<Point> = p
        .rsus()
        .iter()
        .filter(|s| s.level == RsuLevel::L2)
        .map(|s| s.pos)
        .collect();
    assert_eq!(l2_positions, expected);
    // The single L3 RSU is at the map center.
    let l3: Vec<Point> = p
        .rsus()
        .iter()
        .filter(|s| s.level == RsuLevel::L3)
        .map(|s| s.pos)
        .collect();
    assert_eq!(l3, vec![Point::new(1000.0, 1000.0)]);
}

#[test]
fn partition_covers_every_intersection() {
    let (_, p) = build(2000.0, 0.0, 0);
    let net = generate_grid(&GridMapSpec::paper(2000.0), &mut SmallRng::seed_from_u64(0));
    for node in net.intersections() {
        let l1 = p.l1_of(node.pos);
        assert!(p.l1_bbox(l1).contains_closed(node.pos));
    }
}
