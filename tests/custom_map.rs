//! End-to-end runs on a user-supplied digital map (the text format of
//! `vanet_roadnet::io`), plus the timeline instrumentation.

use hlsrg_suite::des::SimDuration;
use hlsrg_suite::roadnet::{from_map_text, generate_grid, to_map_text, GridMapSpec};
use hlsrg_suite::scenario::{run_simulation, Protocol, SimConfig};
use rand::rngs::SmallRng;
use rand::SeedableRng;

#[test]
fn simulation_runs_on_a_text_map() {
    // Serialize a 1 km paper map and feed the *text* to the runner.
    let net = generate_grid(&GridMapSpec::paper(1000.0), &mut SmallRng::seed_from_u64(0));
    let text = to_map_text(&net);

    let mut cfg = SimConfig::quick_demo(5);
    cfg.map_text = Some(text);
    let r = run_simulation(&cfg, Protocol::Hlsrg);
    assert_eq!(r.map_size, 1000.0);
    assert!(r.update_packets > 0);
    assert!(r.queries_launched > 0);
}

#[test]
fn text_map_matches_generated_map_exactly() {
    // The same map via generator or text must give bit-identical runs.
    let cfg_gen = SimConfig::quick_demo(6);
    let net = generate_grid(&cfg_gen.map, &mut SmallRng::seed_from_u64(0)); // jitter=0: rng unused
    let mut cfg_text = cfg_gen.clone();
    cfg_text.map_text = Some(to_map_text(&net));

    let a = run_simulation(&cfg_gen, Protocol::Hlsrg);
    let b = run_simulation(&cfg_text, Protocol::Hlsrg);
    assert_eq!(a.update_packets, b.update_packets);
    assert_eq!(a.query_radio_tx, b.query_radio_tx);
    assert_eq!(a.queries_succeeded, b.queries_succeeded);
}

#[test]
fn roundtrip_through_text_preserves_partition_semantics() {
    let net = generate_grid(
        &GridMapSpec::jittered(2000.0, 25.0),
        &mut SmallRng::seed_from_u64(3),
    );
    let back = from_map_text(&to_map_text(&net)).unwrap();
    let pa = hlsrg_suite::roadnet::Partition::build(&net, 500.0);
    let pb = hlsrg_suite::roadnet::Partition::build(&back, 500.0);
    assert_eq!(pa.l1_dims(), pb.l1_dims());
    for i in 0..pa.l1_count() as u32 {
        let id = hlsrg_suite::roadnet::L1Id(i);
        assert_eq!(pa.l1_center(id), pb.l1_center(id));
    }
}

#[test]
fn timeline_sampling_is_monotone() {
    let mut cfg = SimConfig::quick_demo(7);
    cfg.timeline_period = Some(SimDuration::from_secs(10));
    let r = run_simulation(&cfg, Protocol::Hlsrg);
    assert!(!r.timeline.is_empty());
    for w in r.timeline.windows(2) {
        assert!(w[1].t > w[0].t);
        assert!(
            w[1].update_packets >= w[0].update_packets,
            "counters are cumulative"
        );
        assert!(w[1].queries_completed >= w[0].queries_completed);
    }
    // The last sample's counters are bounded by the final report.
    let last = r.timeline.last().unwrap();
    assert!(last.update_packets <= r.update_packets);
}

#[test]
fn no_timeline_by_default() {
    let r = run_simulation(&SimConfig::quick_demo(8), Protocol::Hlsrg);
    assert!(r.timeline.is_empty());
}
