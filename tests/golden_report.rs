//! Golden-report regression tests.
//!
//! A full `RunReport` for a fixed `quick_demo` scenario is rendered to a
//! stable line-per-field text form and compared against a committed golden
//! file, for both protocols. Any behavioural drift in the stack — partition,
//! mobility, MAC, GPSR, protocol logic, metrics — shows up as a precise
//! field-level diff here, not as a silent change.
//!
//! Intentional changes are blessed by regenerating the files:
//!
//! ```text
//! HLSRG_REGEN_GOLDEN=1 cargo test --test golden_report
//! ```

use hlsrg_suite::scenario::{run_simulation, Protocol, RunReport, SimConfig};

/// The scenario every golden file pins: small enough to run in well under a
/// second, busy enough to exercise queries, drops, and the wired backbone.
fn golden_config() -> SimConfig {
    SimConfig::quick_demo(42)
}

/// Renders a report as one `key: value` line per field, in a fixed order.
/// Floats go through `{:?}` so the text round-trips every bit of the value.
fn render(r: &RunReport) -> String {
    let mut out = String::new();
    let mut line = |k: &str, v: String| out.push_str(&format!("{k}: {v}\n"));
    line("protocol", r.protocol.to_string());
    line("seed", r.seed.to_string());
    line("vehicles", r.vehicles.to_string());
    line("map_size", format!("{:?}", r.map_size));
    line("update_packets", r.update_packets.to_string());
    line("update_radio_tx", r.update_radio_tx.to_string());
    line("collection_radio_tx", r.collection_radio_tx.to_string());
    line("collection_wired_tx", r.collection_wired_tx.to_string());
    line("query_radio_tx", r.query_radio_tx.to_string());
    line("query_wired_tx", r.query_wired_tx.to_string());
    line("queries_launched", r.queries_launched.to_string());
    line("queries_succeeded", r.queries_succeeded.to_string());
    line("data_sent", r.data_sent.to_string());
    line("data_delivered", r.data_delivered.to_string());
    line("success_rate", format!("{:?}", r.success_rate));
    line("latency_count", r.latency.count().to_string());
    line("latency_mean", format!("{:?}", r.latency.mean()));
    line("latency_p95", format!("{:?}", r.latency_p95));
    line("drops", format!("{:?}", r.drops));
    line("drop_breakdown", format!("{:?}", r.drop_breakdown));
    line("drop_matrix", format!("{:?}", r.drop_matrix));
    line("airtime_us", format!("{:?}", r.airtime_us));
    line("artery_share", format!("{:?}", r.artery_share));
    for (k, v) in &r.diagnostics {
        line(&format!("diagnostic.{k}"), format!("{v:?}"));
    }
    line("timeline_points", r.timeline.len().to_string());
    out
}

fn golden_path(name: &str) -> std::path::PathBuf {
    std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests/golden")
        .join(name)
}

fn check_golden(protocol: Protocol, file: &str) {
    check_golden_sharded(protocol, file, 1);
}

/// Compares a run at `shards` against the same single-shard golden file: the
/// region-sharded executor's determinism contract means the committed goldens
/// also pin every sharded configuration. Regeneration always renders the
/// single-shard run.
fn check_golden_sharded(protocol: Protocol, file: &str, shards: usize) {
    let cfg = SimConfig {
        shards,
        ..golden_config()
    };
    let report = run_simulation(&cfg, protocol);
    let actual = render(&report);
    let path = golden_path(file);
    if shards == 1 && std::env::var_os("HLSRG_REGEN_GOLDEN").is_some() {
        std::fs::write(&path, &actual).expect("write golden file");
        eprintln!("regenerated {}", path.display());
        return;
    }
    let expected = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!(
            "cannot read {}: {e}\n(regenerate with HLSRG_REGEN_GOLDEN=1 cargo test --test golden_report)",
            path.display()
        )
    });
    // Field-by-field: a drift report names exactly which metrics moved.
    let mut diffs = Vec::new();
    let mut exp_lines = expected.lines();
    for got in actual.lines() {
        match exp_lines.next() {
            Some(want) if want == got => {}
            Some(want) => diffs.push(format!("  expected `{want}`\n  actual   `{got}`")),
            None => diffs.push(format!("  extra line `{got}`")),
        }
    }
    for want in exp_lines {
        diffs.push(format!("  missing line `{want}`"));
    }
    assert!(
        diffs.is_empty(),
        "{} drifted from {} ({} field(s)):\n{}\nIf intentional: HLSRG_REGEN_GOLDEN=1 cargo test --test golden_report",
        report.protocol,
        path.display(),
        diffs.len(),
        diffs.join("\n")
    );
}

#[test]
fn hlsrg_report_matches_golden() {
    check_golden(Protocol::Hlsrg, "hlsrg.txt");
}

#[test]
fn rlsmp_report_matches_golden() {
    check_golden(Protocol::Rlsmp, "rlsmp.txt");
}

#[test]
fn sharded_runs_match_the_single_shard_goldens() {
    for shards in [2, 4] {
        check_golden_sharded(Protocol::Hlsrg, "hlsrg.txt", shards);
        check_golden_sharded(Protocol::Rlsmp, "rlsmp.txt", shards);
    }
}
