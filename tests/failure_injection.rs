//! Failure injection: the stack must degrade gracefully — never panic, always
//! produce a consistent report — under hostile radio conditions and degenerate
//! configurations.

use hlsrg_suite::des::SimDuration;
use hlsrg_suite::scenario::{run_simulation, Protocol, SimConfig};

fn short(mut cfg: SimConfig) -> SimConfig {
    cfg.duration = SimDuration::from_secs(100);
    cfg.warmup = SimDuration::from_secs(40);
    cfg
}

#[test]
fn survives_a_near_dead_radio() {
    // 10 % reliable region, 1 % edge delivery: almost every marginal link fails.
    let mut cfg = short(SimConfig::paper_2km(200, 1));
    cfg.radio.reliable_fraction = 0.10;
    cfg.radio.edge_delivery = 0.01;
    for protocol in Protocol::ALL {
        let r = run_simulation(&cfg, protocol);
        assert!(r.success_rate <= 1.0);
        // Heavy loss must show up as drops or retries, not silence.
        assert!(
            r.drops.iter().sum::<u64>() > 0 || r.success_rate > 0.0,
            "{}: no drops and no successes — lost packets vanished",
            r.protocol
        );
    }
}

#[test]
fn survives_a_tiny_radio_range() {
    // 100 m range on 125 m blocks: the network is mostly disconnected.
    let mut cfg = short(SimConfig::paper_2km(150, 2));
    cfg.radio.range = 100.0;
    let r = run_simulation(&cfg, Protocol::Hlsrg);
    // Whatever succeeds, the report stays consistent.
    assert!(r.queries_succeeded <= r.queries_launched);
    assert_eq!(r.update_packets, r.update_radio_tx);
}

#[test]
fn survives_extreme_shadowing_and_contention() {
    let mut cfg = short(SimConfig::paper_2km(200, 3));
    cfg.radio.nlos_penalty = 0.05;
    cfg.radio.contention_per_neighbor = SimDuration::from_micros(200);
    let r = run_simulation(&cfg, Protocol::Hlsrg);
    assert!(r.queries_succeeded <= r.queries_launched);
    // Contention slows answers down but must not corrupt latency accounting.
    if let Some(l) = r.mean_latency() {
        assert!((0.0..=30.0).contains(&l));
    }
}

#[test]
fn single_vehicle_world() {
    // One vehicle, nobody to query: nothing to do, nothing to break.
    let mut cfg = short(SimConfig::paper_fig3_2(500.0, 1, 4));
    cfg.query_fraction = 0.0;
    for protocol in Protocol::ALL {
        let r = run_simulation(&cfg, protocol);
        assert_eq!(r.queries_launched, 0);
        assert!(r.update_packets >= 1); // its own registration
    }
}

#[test]
fn everyone_queries_everyone_at_once() {
    // 100 % query fraction, all launched within the window: a burst workload.
    let mut cfg = short(SimConfig::paper_fig3_2(1000.0, 80, 5));
    cfg.query_fraction = 1.0;
    let r = run_simulation(&cfg, Protocol::Hlsrg);
    assert_eq!(r.queries_launched, 80);
    assert!(
        r.success_rate > 0.3,
        "burst success only {:.2}",
        r.success_rate
    );
}

#[test]
fn cut_backbone_under_loss_is_stable() {
    let mut cfg = short(SimConfig::paper_2km(250, 6));
    cfg.wired_backbone = false;
    cfg.radio.edge_delivery = 0.05;
    let r = run_simulation(&cfg, Protocol::Hlsrg);
    assert_eq!(r.collection_wired_tx, 0);
    assert_eq!(r.query_wired_tx, 0);
    assert!(r.queries_succeeded <= r.queries_launched);
}
