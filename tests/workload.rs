//! Workload semantics: the paper's 10 %-querying population and explicit
//! application workloads.

use hlsrg_suite::des::{SimDuration, SimTime};
use hlsrg_suite::mobility::VehicleId;
use hlsrg_suite::scenario::{run_simulation, Protocol, SimConfig};

#[test]
fn ten_percent_of_vehicles_query() {
    let mut cfg = SimConfig::quick_demo(3);
    cfg.vehicles = 120;
    let r = run_simulation(&cfg, Protocol::Hlsrg);
    assert_eq!(r.queries_launched, 12);
}

#[test]
fn explicit_workload_overrides_random() {
    let mut cfg = SimConfig::quick_demo(4);
    cfg.explicit_queries = Some(vec![
        (SimTime::from_secs(40), VehicleId(0), VehicleId(5)),
        (SimTime::from_secs(50), VehicleId(1), VehicleId(6)),
        (SimTime::from_secs(60), VehicleId(2), VehicleId(7)),
    ]);
    let r = run_simulation(&cfg, Protocol::Hlsrg);
    assert_eq!(r.queries_launched, 3);
}

#[test]
#[should_panic(expected = "self-queries")]
fn self_queries_rejected() {
    let mut cfg = SimConfig::quick_demo(5);
    cfg.explicit_queries = Some(vec![(SimTime::from_secs(40), VehicleId(1), VehicleId(1))]);
    cfg.validate();
}

#[test]
#[should_panic(expected = "out of range")]
fn out_of_range_query_target_rejected() {
    let mut cfg = SimConfig::quick_demo(6);
    cfg.explicit_queries = Some(vec![(
        SimTime::from_secs(40),
        VehicleId(0),
        VehicleId(9999),
    )]);
    cfg.validate();
}

#[test]
fn zero_query_fraction_runs_clean() {
    let mut cfg = SimConfig::quick_demo(7);
    cfg.query_fraction = 0.0;
    let r = run_simulation(&cfg, Protocol::Hlsrg);
    assert_eq!(r.queries_launched, 0);
    assert_eq!(r.success_rate, 1.0); // vacuous success
                                     // Updates still flow.
    assert!(r.update_packets > 0);
}

#[test]
fn ablation_knobs_have_visible_effects() {
    // Naive updates send more packets than road-adapted updates. (This needs the
    // full 2 km map: on tiny maps border turns dominate and the comparison
    // inverts, just as Fig 3.2's gap grows with map size.)
    let mut cfg = SimConfig::paper_2km(200, 8);
    cfg.duration = SimDuration::from_secs(150);
    cfg.warmup = SimDuration::from_secs(50);
    let road_adapted = run_simulation(&cfg, Protocol::Hlsrg);
    let mut naive_cfg = cfg.clone();
    naive_cfg.hlsrg.update_policy = hlsrg_suite::protocol::UpdatePolicy::EveryL1Crossing;
    let naive = run_simulation(&naive_cfg, Protocol::Hlsrg);
    // The road-adapted rules never cost more packets than naive per-grid updates,
    // and they answer queries better (they refresh the heading exactly when it
    // changes, which is what the directional search needs).
    assert!(
        road_adapted.update_packets as f64 <= naive.update_packets as f64 * 1.10,
        "suppression off: {} vs {}",
        road_adapted.update_packets,
        naive.update_packets
    );
    assert!(
        road_adapted.success_rate >= naive.success_rate,
        "road-adapted {:.2} vs naive {:.2} success",
        road_adapted.success_rate,
        naive.success_rate
    );

    // Cutting the backbone removes all wired traffic.
    let mut unwired_cfg = cfg.clone();
    unwired_cfg.wired_backbone = false;
    let unwired = run_simulation(&unwired_cfg, Protocol::Hlsrg);
    assert_eq!(unwired.collection_wired_tx, 0);
    assert_eq!(unwired.query_wired_tx, 0);
}
