//! End-to-end tests for the observability surface of the `hlsrg` binary:
//! `inspect` diagnostics on damaged traces, `run --telemetry-out` determinism,
//! the `report` dashboard, and the `bench --compare` regression gate.

use hlsrg_suite::scenario::{
    append_trajectory, run_simulation_instrumented, run_simulation_traced, BenchRecord, Protocol,
    SimConfig,
};
use hlsrg_suite::trace::{parse_telemetry_jsonl, telemetry_to_jsonl, truncation_line};
use std::path::PathBuf;
use std::process::{Command, Output};

const BIN: &str = env!("CARGO_BIN_EXE_hlsrg-suite");

fn tmp(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("hlsrg-cli-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("create temp dir");
    dir.join(name)
}

fn run(args: &[&str]) -> Output {
    Command::new(BIN).args(args).output().expect("spawn hlsrg")
}

fn stderr_of(out: &Output) -> String {
    String::from_utf8_lossy(&out.stderr).into_owned()
}

/// A small but real trace, produced through the library so the lines match
/// whatever the current `TraceEvent` wire format is.
fn demo_trace_jsonl() -> String {
    let (_, tracer) = run_simulation_traced(&SimConfig::quick_demo(3), Protocol::Hlsrg);
    let text = tracer.to_jsonl();
    assert!(!text.is_empty(), "demo run produced no trace events");
    text
}

#[test]
fn inspect_names_the_corrupt_line_and_fails() {
    let mut text = demo_trace_jsonl();
    // Chop the final record in half — the classic partially-flushed tail.
    let keep = text.trim_end().rfind('\n').unwrap() + 1 + 10;
    text.truncate(keep);
    let line_no = text.lines().count();
    let path = tmp("corrupt.jsonl");
    std::fs::write(&path, &text).unwrap();

    let out = run(&["inspect", path.to_str().unwrap()]);
    assert!(!out.status.success(), "inspect must fail on a corrupt line");
    let err = stderr_of(&out);
    assert!(
        err.contains("not a valid trace record"),
        "stderr should explain the bad record, got:\n{err}"
    );
    assert!(
        err.contains(&format!(":{line_no}:")),
        "stderr should name line {line_no}, got:\n{err}"
    );
}

#[test]
fn inspect_warns_about_ring_overflow_trailer() {
    let mut text = demo_trace_jsonl();
    text.push_str(&truncation_line(42));
    text.push('\n');
    let path = tmp("truncated.jsonl");
    std::fs::write(&path, &text).unwrap();

    let out = run(&["inspect", path.to_str().unwrap()]);
    assert!(
        out.status.success(),
        "a truncated-but-valid trace still summarizes: {}",
        stderr_of(&out)
    );
    let err = stderr_of(&out);
    assert!(
        err.contains("trace truncated, 42 events lost"),
        "stderr should warn about the lost events, got:\n{err}"
    );
}

#[test]
fn run_telemetry_stream_is_seed_reproducible() {
    fn args(path: &str) -> Vec<&str> {
        vec![
            "run",
            "--vehicles",
            "40",
            "--map-size",
            "500",
            "--duration",
            "40",
            "--seed",
            "7",
            "--telemetry-interval",
            "10",
            "--telemetry-out",
            path,
        ]
    }
    let a = tmp("telemetry-a.jsonl");
    let b = tmp("telemetry-b.jsonl");
    assert!(run(&args(a.to_str().unwrap())).status.success());
    assert!(run(&args(b.to_str().unwrap())).status.success());
    let (ta, tb) = (
        std::fs::read_to_string(&a).unwrap(),
        std::fs::read_to_string(&b).unwrap(),
    );
    assert_eq!(ta, tb, "same seed must give byte-identical telemetry");
    let samples = parse_telemetry_jsonl(&ta);
    assert!(!samples.is_empty(), "telemetry stream should have samples");
    assert_eq!(samples.last().unwrap().t.as_micros(), 40_000_000);
}

#[test]
fn report_renders_a_self_contained_dashboard() {
    use hlsrg_suite::des::SimDuration;

    // Telemetry from a real instrumented run, written the way `run` writes it.
    let mut cfg = SimConfig::quick_demo(5);
    cfg.telemetry_interval = Some(SimDuration::from_secs(15));
    let (_, _, samples) = run_simulation_instrumented(&cfg, Protocol::Hlsrg, false);
    let telemetry_path = tmp("report-telemetry.jsonl");
    std::fs::write(&telemetry_path, telemetry_to_jsonl(&samples)).unwrap();

    // A tiny bench trajectory alongside it.
    let bench_path = tmp("report-bench.json");
    let _ = std::fs::remove_file(&bench_path);
    append_trajectory(&bench_path, &[bench_rec("base", 1000.0)]).unwrap();

    let html_path = tmp("report.html");
    let out = run(&[
        "report",
        "--telemetry",
        telemetry_path.to_str().unwrap(),
        "--bench",
        bench_path.to_str().unwrap(),
        "--title",
        "cli smoke",
        "--out",
        html_path.to_str().unwrap(),
    ]);
    assert!(out.status.success(), "report failed: {}", stderr_of(&out));
    let html = std::fs::read_to_string(&html_path).unwrap();
    assert!(html.contains("<!doctype html>") || html.contains("<html"));
    assert!(html.contains("<svg "), "dashboard should embed SVG charts");
    assert!(html.contains("cli smoke"));
    for forbidden in ["<script", "<link", "src=", "@import", "url(", "<iframe"] {
        assert!(
            !html.contains(forbidden),
            "report must be self-contained, found {forbidden:?}"
        );
    }
}

fn bench_rec(label: &str, eps: f64) -> BenchRecord {
    BenchRecord {
        label: label.into(),
        scale: "smoke".into(),
        scenario: "hlsrg_single".into(),
        wall_ms: 10.0,
        events: (eps / 100.0) as u64,
        events_per_sec: eps,
        peak_queue_depth: 10,
        allocs_per_event: None,
        queue_resizes: None,
        max_bucket_scan: None,
        shards: None,
        threads: None,
    }
}

#[test]
fn bench_compare_gates_on_injected_regression() {
    let path = tmp("compare.json");
    let _ = std::fs::remove_file(&path);
    append_trajectory(&path, &[bench_rec("pr6-baseline", 1000.0)]).unwrap();
    append_trajectory(&path, &[bench_rec("dev", 700.0)]).unwrap();

    // 30% below baseline trips the default 20% threshold.
    let out = run(&[
        "bench",
        "--compare",
        "pr6-baseline",
        "--out",
        path.to_str().unwrap(),
    ]);
    assert!(!out.status.success(), "a 30% drop must exit nonzero");
    assert!(String::from_utf8_lossy(&out.stdout).contains("REGRESSED"));

    // A looser threshold lets the same trajectory pass.
    let out = run(&[
        "bench",
        "--compare",
        "pr6-baseline",
        "--threshold",
        "50",
        "--out",
        path.to_str().unwrap(),
    ]);
    assert!(
        out.status.success(),
        "30% drop is within a 50% threshold: {}",
        stderr_of(&out)
    );
}
