//! Full-stack integration tests: the paper's headline claims must hold on real
//! (moderately sized) simulations spanning every crate.

use hlsrg_suite::des::SimDuration;
use hlsrg_suite::scenario::{run_simulation, Protocol, SimConfig};

/// A 2 km scenario trimmed for debug-build test time.
fn test_cfg(vehicles: usize, seed: u64) -> SimConfig {
    let mut cfg = SimConfig::paper_2km(vehicles, seed);
    cfg.duration = SimDuration::from_secs(180);
    cfg.warmup = SimDuration::from_secs(60);
    cfg
}

#[test]
fn hlsrg_halves_update_overhead() {
    // Paper Fig 3.2: "our protocol ... reduces location update packets about 50%".
    let cfg = test_cfg(300, 1);
    let h = run_simulation(&cfg, Protocol::Hlsrg);
    let r = run_simulation(&cfg, Protocol::Rlsmp);
    let ratio = h.update_packets as f64 / r.update_packets as f64;
    assert!(
        ratio < 0.75,
        "HLSRG/RLSMP update ratio {ratio:.2} ({} vs {})",
        h.update_packets,
        r.update_packets
    );
    assert!(
        ratio > 0.25,
        "implausibly low ratio {ratio:.2} — check RLSMP triggers"
    );
}

#[test]
fn hlsrg_wins_on_query_overhead() {
    // Paper Fig 3.3: HLSRG's query overhead is below RLSMP's.
    let cfg = test_cfg(300, 2);
    let h = run_simulation(&cfg, Protocol::Hlsrg);
    let r = run_simulation(&cfg, Protocol::Rlsmp);
    assert!(
        h.query_radio_tx < r.query_radio_tx,
        "HLSRG {} vs RLSMP {} query radio tx",
        h.query_radio_tx,
        r.query_radio_tx
    );
}

#[test]
fn hlsrg_success_rate_is_high_and_above_rlsmp() {
    // Paper Fig 3.4: HLSRG near 100%, above RLSMP.
    let cfg = test_cfg(400, 3);
    let h = run_simulation(&cfg, Protocol::Hlsrg);
    let r = run_simulation(&cfg, Protocol::Rlsmp);
    assert!(
        h.success_rate >= 0.80,
        "HLSRG success only {:.2}",
        h.success_rate
    );
    assert!(
        h.success_rate > r.success_rate,
        "HLSRG {:.2} vs RLSMP {:.2}",
        h.success_rate,
        r.success_rate
    );
}

#[test]
fn hlsrg_answers_faster() {
    // Paper Fig 3.5: HLSRG's mean query latency is below RLSMP's.
    let cfg = test_cfg(400, 4);
    let h = run_simulation(&cfg, Protocol::Hlsrg);
    let r = run_simulation(&cfg, Protocol::Rlsmp);
    let (hl, rl) = (h.mean_latency().unwrap(), r.mean_latency().unwrap());
    assert!(hl < rl, "HLSRG {hl:.3}s vs RLSMP {rl:.3}s");
}

#[test]
fn update_gap_grows_with_map_size() {
    // Paper Fig 3.2's shape: the absolute update gap widens as the map grows.
    let mut gaps = Vec::new();
    for &(size, n) in &[(1000.0, 125usize), (2000.0, 500)] {
        let mut cfg = SimConfig::paper_fig3_2(size, n, 5);
        cfg.duration = SimDuration::from_secs(180);
        cfg.warmup = SimDuration::from_secs(60);
        let h = run_simulation(&cfg, Protocol::Hlsrg);
        let r = run_simulation(&cfg, Protocol::Rlsmp);
        gaps.push(r.update_packets as i64 - h.update_packets as i64);
    }
    assert!(gaps[1] > gaps[0], "gap shrank with map size: {gaps:?}");
}

#[test]
fn rsus_never_send_location_updates() {
    // Updates originate from vehicles only; RSU traffic is Collection/Query class.
    let cfg = test_cfg(200, 6);
    let h = run_simulation(&cfg, Protocol::Hlsrg);
    // Every update is a single one-hop broadcast: originations == radio tx.
    assert_eq!(h.update_packets, h.update_radio_tx);
}

#[test]
fn wired_backbone_carries_collection_and_queries() {
    let cfg = test_cfg(300, 7);
    let h = run_simulation(&cfg, Protocol::Hlsrg);
    assert!(
        h.collection_wired_tx > 0,
        "L2→L3 pushes never used the backbone"
    );
    let r = run_simulation(&cfg, Protocol::Rlsmp);
    assert_eq!(r.collection_wired_tx, 0, "RLSMP has no wires to use");
    assert_eq!(r.query_wired_tx, 0);
}
