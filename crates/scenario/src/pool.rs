//! A shared work-claiming job pool for sweep-level parallelism.
//!
//! The old fan-out pre-chunked seeds per thread (`thread::scope` with one
//! spawn per chunk), so one slow replication serialized everything behind it
//! in its chunk while other workers sat idle. Here workers claim the next
//! unstarted job from a shared atomic cursor, one at a time, so the pool
//! stays busy until the whole job list drains — and a single pool can
//! schedule every (sweep point × protocol × seed) unit of a whole figure.
//!
//! Results land in a slot vector indexed by job, making the output a pure
//! function of the job list: which worker ran what never shows in the result.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// A fixed-width pool that fans a list of independent jobs out over scoped
/// worker threads.
#[derive(Debug, Clone, Copy)]
pub struct JobPool {
    threads: usize,
}

impl JobPool {
    /// A pool of exactly `threads` workers.
    pub fn new(threads: usize) -> Self {
        assert!(threads > 0, "need at least one worker thread");
        JobPool { threads }
    }

    /// A pool as wide as the machine (one worker per available core).
    pub fn available() -> Self {
        Self::new(
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(4),
        )
    }

    /// The worker-thread count.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Runs `job(ix)` for every `ix in 0..jobs` across the pool, returning the
    /// results in job order. Workers claim indices from a shared cursor, so
    /// scheduling adapts to uneven job lengths; the result vector depends only
    /// on `job` itself, never on the claim order or the thread count.
    pub fn run<T, F>(&self, jobs: usize, job: F) -> Vec<T>
    where
        T: Send,
        F: Fn(usize) -> T + Sync,
    {
        if jobs == 0 {
            return Vec::new();
        }
        let cursor = AtomicUsize::new(0);
        let slots: Vec<Mutex<Option<T>>> = (0..jobs).map(|_| Mutex::new(None)).collect();
        let workers = self.threads.min(jobs);
        std::thread::scope(|s| {
            for _ in 0..workers {
                s.spawn(|| loop {
                    let ix = cursor.fetch_add(1, Ordering::Relaxed);
                    if ix >= jobs {
                        break;
                    }
                    let out = job(ix);
                    *slots[ix].lock().expect("result slot poisoned") = Some(out);
                });
            }
        });
        slots
            .into_iter()
            .map(|slot| {
                slot.into_inner()
                    .expect("result slot poisoned")
                    .expect("claimed job left no result")
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn results_are_in_job_order_for_any_width() {
        for threads in [1, 2, 7, 64] {
            let pool = JobPool::new(threads);
            let out = pool.run(23, |ix| ix * ix);
            assert_eq!(out, (0..23).map(|i| i * i).collect::<Vec<_>>());
        }
    }

    #[test]
    fn every_job_runs_exactly_once() {
        let ran = AtomicUsize::new(0);
        let out = JobPool::new(4).run(100, |ix| {
            ran.fetch_add(1, Ordering::Relaxed);
            ix
        });
        assert_eq!(ran.load(Ordering::Relaxed), 100);
        assert_eq!(out.len(), 100);
    }

    #[test]
    fn zero_jobs_is_a_no_op() {
        let out: Vec<usize> = JobPool::new(8).run(0, |ix| ix);
        assert!(out.is_empty());
    }

    #[test]
    fn uneven_job_lengths_do_not_reorder_results() {
        // Early jobs sleep; a chunked scheduler would let late jobs finish
        // first, but the slot vector must still come back in job order.
        let out = JobPool::new(4).run(12, |ix| {
            if ix < 3 {
                std::thread::sleep(std::time::Duration::from_millis(20));
            }
            ix + 1
        });
        assert_eq!(out, (1..=12).collect::<Vec<_>>());
    }
}
