//! # vanet-scenario — experiment harness and paper-figure generators
//!
//! Assembles the whole stack (map → partition → mobility → radio → protocol) into
//! one deterministic discrete-event run, measures it, replicates it across seeds in
//! parallel, and regenerates every figure of the paper's evaluation:
//!
//! * [`run_simulation`] — one run, one protocol, one [`RunReport`].
//! * [`replicate()`] / [`replicate_averaged`] — seed fan-out over threads.
//! * [`figures`] — `fig3_2` … `fig3_5`, the published sweeps.
//!
//! ```
//! use vanet_scenario::{run_simulation, Protocol, SimConfig};
//!
//! let cfg = SimConfig::quick_demo(42);
//! let report = run_simulation(&cfg, Protocol::Hlsrg);
//! assert!(report.queries_launched > 0);
//! ```

#![warn(missing_docs)]

pub mod bench;
pub mod config;
pub mod figures;
#[cfg(feature = "check")]
pub mod fuzz;
pub mod metrics;
pub mod plot;
pub mod pool;
pub mod replicate;
pub mod report;
pub mod runner;

pub use bench::{
    append_trajectory, compare_trajectory, parse_trajectory, run_bench, BenchOptions, BenchRecord,
    BenchScale, CompareRow, BENCH_SHARD_COUNTS,
};
pub use config::{Protocol, SimConfig};
pub use figures::{fig3_2, fig3_3, fig3_345, fig3_4, fig3_5, ComparisonPoint, Figure, FigureScale};
pub use metrics::{AveragedReport, PhaseTimingRow, RunReport, TimelinePoint};
pub use plot::{ascii_chart, svg_chart};
pub use pool::JobPool;
pub use replicate::{replicate, replicate_averaged, replicate_batch, replicate_with_threads};
pub use report::{render_report, ReportInputs};
pub use runner::{run_simulation, run_simulation_instrumented, run_simulation_traced};
#[cfg(feature = "check")]
pub use runner::{run_simulation_checked, CheckSetup, Violation};
