//! Generators for every figure in the paper's evaluation (§III).
//!
//! Each `figN_M` function runs the paper's sweep and returns the series the figure
//! plots, plus a `Display` impl that prints the table. The benches in
//! `crates/bench` and the `paper_figures` example call these.
//!
//! A `FigureScale` knob shrinks the workload proportionally for CI-speed smoke
//! runs; `FigureScale::Paper` reproduces the full published sweep.

use crate::config::{Protocol, SimConfig};
use crate::metrics::AveragedReport;
use crate::pool::JobPool;
use crate::replicate::replicate_batch;
use serde::{Deserialize, Serialize};
use std::fmt;
use vanet_des::SimDuration;

/// How big a sweep to run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum FigureScale {
    /// The paper's full parameters (maps up to 2 km, up to 600 vehicles, 300 s,
    /// averaged over several seeds). Minutes of wall time.
    Paper,
    /// A proportionally shrunk sweep for smoke tests and Criterion benches.
    Smoke,
}

impl FigureScale {
    fn replications(self) -> usize {
        match self {
            FigureScale::Paper => 10,
            FigureScale::Smoke => 2,
        }
    }

    fn shrink(self, cfg: &mut SimConfig) {
        if self == FigureScale::Smoke {
            cfg.duration = SimDuration::from_secs(120);
            cfg.warmup = SimDuration::from_secs(40);
            cfg.vehicles = (cfg.vehicles / 4).max(20);
        }
    }
}

/// One protocol-pair measurement at one sweep point.
#[derive(Debug, Clone, Serialize)]
pub struct ComparisonPoint {
    /// The x-axis value (map meters for Fig 3.2, vehicle count for 3.3–3.5).
    pub x: f64,
    /// HLSRG's averaged result.
    pub hlsrg: AveragedReport,
    /// RLSMP's averaged result.
    pub rlsmp: AveragedReport,
}

/// A complete figure: labeled series of comparison points.
#[derive(Debug, Clone, Serialize)]
pub struct Figure {
    /// Figure id, e.g. "3.2".
    pub id: &'static str,
    /// Title from the paper.
    pub title: &'static str,
    /// X-axis label.
    pub x_label: &'static str,
    /// Y-axis label.
    pub y_label: &'static str,
    /// Sweep points.
    pub points: Vec<ComparisonPoint>,
}

impl Figure {
    /// The plotted y value for a point, by figure id.
    fn y(&self, r: &AveragedReport) -> f64 {
        match self.id {
            "3.2" => r.update_packets,
            "3.3" => r.query_radio_tx,
            "3.4" => r.success_rate,
            "3.5" => r.mean_latency,
            other => panic!("unknown figure {other}"),
        }
    }

    /// The across-seed standard deviation of the plotted metric (0 when the
    /// figure's metric has no recorded spread).
    fn y_sd(&self, r: &AveragedReport) -> f64 {
        match self.id {
            "3.2" => r.update_packets_sd,
            "3.3" => r.query_radio_tx_sd,
            "3.4" => r.success_rate_sd,
            _ => 0.0,
        }
    }

    /// HLSRG's mean advantage over RLSMP across the sweep: the ratio
    /// `hlsrg / rlsmp` of the plotted metric (so < 1 means HLSRG is lower).
    pub fn mean_ratio(&self) -> f64 {
        let mut sum = 0.0;
        for p in &self.points {
            sum += self.y(&p.hlsrg) / self.y(&p.rlsmp);
        }
        sum / self.points.len() as f64
    }

    /// The figure's two labeled series (HLSRG, RLSMP) in plot form, shared by
    /// the ASCII and SVG chart backends.
    pub fn series(&self) -> [(&'static str, Vec<(f64, f64)>); 2] {
        let h = self
            .points
            .iter()
            .map(|p| (p.x, self.y(&p.hlsrg)))
            .collect();
        let r = self
            .points
            .iter()
            .map(|p| (p.x, self.y(&p.rlsmp)))
            .collect();
        [("HLSRG", h), ("RLSMP", r)]
    }

    /// The figure's two series as a terminal chart.
    pub fn to_ascii_chart(&self) -> String {
        crate::plot::ascii_chart(&self.series(), 52, 12)
    }

    /// The figure's series as CSV (header + one row per sweep point), ready for
    /// external plotting.
    pub fn to_csv(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "{},hlsrg,rlsmp,ratio\n",
            self.x_label.replace(' ', "_")
        ));
        for p in &self.points {
            let (h, r) = (self.y(&p.hlsrg), self.y(&p.rlsmp));
            out.push_str(&format!("{},{h},{r},{}\n", p.x, h / r));
        }
        out
    }
}

impl fmt::Display for Figure {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "Figure {} — {}", self.id, self.title)?;
        writeln!(
            f,
            "{:>12} {:>20} {:>20} {:>10}",
            self.x_label, "HLSRG", "RLSMP", "ratio"
        )?;
        for p in &self.points {
            let (h, r) = (self.y(&p.hlsrg), self.y(&p.rlsmp));
            let (hs, rs) = (self.y_sd(&p.hlsrg), self.y_sd(&p.rlsmp));
            writeln!(
                f,
                "{:>12} {:>13.2} ±{:>5.2} {:>13.2} ±{:>5.2} {:>10.3}",
                p.x,
                h,
                hs,
                r,
                rs,
                h / r
            )?;
        }
        writeln!(
            f,
            "(y = {}; ratio < 1 favors HLSRG for 3.2/3.3/3.5, > 1 for 3.4)",
            self.y_label
        )
    }
}

/// Runs a whole sweep — every (sweep point × protocol × seed) unit — through
/// one shared job pool, then folds the reports back into per-point averages.
/// A slow sweep point no longer serializes the points after it, and results
/// are a pure function of the point list (see [`replicate_batch`]).
fn compare_sweep(points: Vec<(f64, SimConfig)>, replications: usize) -> Vec<ComparisonPoint> {
    let jobs: Vec<(SimConfig, Protocol)> = points
        .iter()
        .flat_map(|(_, cfg)| {
            [
                (cfg.clone(), Protocol::Hlsrg),
                (cfg.clone(), Protocol::Rlsmp),
            ]
        })
        .collect();
    let mut grouped =
        replicate_batch(&jobs, replications, JobPool::available().threads()).into_iter();
    points
        .into_iter()
        .map(|(x, _)| ComparisonPoint {
            x,
            hlsrg: AveragedReport::from_runs(&grouped.next().expect("hlsrg group")),
            rlsmp: AveragedReport::from_runs(&grouped.next().expect("rlsmp group")),
        })
        .collect()
}

/// **Fig 3.2 — location update overhead** over map sizes 500/1000/2000 m with the
/// paper's proportional vehicle counts (31/125/500).
pub fn fig3_2(scale: FigureScale) -> Figure {
    let sweep: &[(f64, usize)] = &[(500.0, 31), (1000.0, 125), (2000.0, 500)];
    let mut point_cfgs = Vec::new();
    for &(size, vehicles) in sweep {
        let mut cfg = SimConfig::paper_fig3_2(size, vehicles, 1000);
        scale.shrink(&mut cfg);
        point_cfgs.push((size, cfg));
    }
    let points = compare_sweep(point_cfgs, scale.replications());
    Figure {
        id: "3.2",
        title: "Location update overhead",
        x_label: "map (m)",
        y_label: "location update packets",
        points,
    }
}

fn vehicle_sweep(scale: FigureScale) -> Vec<usize> {
    match scale {
        FigureScale::Paper => vec![300, 400, 500, 600],
        FigureScale::Smoke => vec![80, 120],
    }
}

fn sweep_2km(
    scale: FigureScale,
    id: &'static str,
    title: &'static str,
    y_label: &'static str,
) -> Figure {
    let mut point_cfgs = Vec::new();
    for vehicles in vehicle_sweep(scale) {
        let mut cfg = SimConfig::paper_2km(vehicles, 2000);
        if scale == FigureScale::Smoke {
            cfg.duration = SimDuration::from_secs(120);
            cfg.warmup = SimDuration::from_secs(40);
        }
        point_cfgs.push((vehicles as f64, cfg));
    }
    let points = compare_sweep(point_cfgs, scale.replications());
    Figure {
        id,
        title,
        x_label: "vehicles",
        y_label,
        points,
    }
}

/// **Fig 3.3 — location query overhead** (query-class radio transmissions) over
/// 300–600 vehicles on the 2 km map.
pub fn fig3_3(scale: FigureScale) -> Figure {
    sweep_2km(
        scale,
        "3.3",
        "Location query overhead",
        "query packets (radio tx)",
    )
}

/// **Fig 3.4 — query success rate** over the same sweep.
pub fn fig3_4(scale: FigureScale) -> Figure {
    sweep_2km(scale, "3.4", "Query success rate", "success rate")
}

/// **Fig 3.5 — average time cost for a query** over the same sweep (the paper
/// averages 10 runs).
pub fn fig3_5(scale: FigureScale) -> Figure {
    sweep_2km(
        scale,
        "3.5",
        "Average time cost for a query",
        "mean latency (s)",
    )
}

/// One shared sweep computing figures 3.3, 3.4, and 3.5 from the same runs
/// (cheaper than calling each separately).
pub fn fig3_345(scale: FigureScale) -> (Figure, Figure, Figure) {
    let base = sweep_2km(
        scale,
        "3.3",
        "Location query overhead",
        "query packets (radio tx)",
    );
    let f4 = Figure {
        id: "3.4",
        title: "Query success rate",
        x_label: "vehicles",
        y_label: "success rate",
        points: base.points.clone(),
    };
    let f5 = Figure {
        id: "3.5",
        title: "Average time cost for a query",
        x_label: "vehicles",
        y_label: "mean latency (s)",
        points: base.points.clone(),
    };
    (base, f4, f5)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::RunReport;
    use vanet_net::NetCounters;

    fn avg(update: f64, qtx: f64, rate: f64, lat: f64) -> AveragedReport {
        let mut r = RunReport::from_counters("X", 0, 1, 1.0, &NetCounters::new());
        r.update_packets = update as u64;
        r.query_radio_tx = qtx as u64;
        r.success_rate = rate;
        r.latency.record(lat);
        AveragedReport::from_runs(&[r])
    }

    #[test]
    fn figure_y_selection_and_ratio() {
        let fig = Figure {
            id: "3.2",
            title: "t",
            x_label: "x",
            y_label: "y",
            points: vec![ComparisonPoint {
                x: 1.0,
                hlsrg: avg(50.0, 0.0, 0.0, 0.0),
                rlsmp: avg(100.0, 0.0, 0.0, 0.0),
            }],
        };
        assert!((fig.mean_ratio() - 0.5).abs() < 1e-12);
        let shown = fig.to_string();
        assert!(shown.contains("Figure 3.2"));
        assert!(shown.contains("0.500"));
    }

    #[test]
    fn csv_export_has_header_and_rows() {
        let fig = Figure {
            id: "3.2",
            title: "t",
            x_label: "map (m)",
            y_label: "y",
            points: vec![ComparisonPoint {
                x: 500.0,
                hlsrg: avg(50.0, 0.0, 0.0, 0.0),
                rlsmp: avg(100.0, 0.0, 0.0, 0.0),
            }],
        };
        let csv = fig.to_csv();
        let mut lines = csv.lines();
        assert_eq!(lines.next(), Some("map_(m),hlsrg,rlsmp,ratio"));
        assert_eq!(lines.next(), Some("500,50,100,0.5"));
        assert_eq!(lines.next(), None);
    }

    #[test]
    fn success_rate_figure_reads_rate() {
        let fig = Figure {
            id: "3.4",
            title: "t",
            x_label: "x",
            y_label: "y",
            points: vec![ComparisonPoint {
                x: 1.0,
                hlsrg: avg(0.0, 0.0, 1.0, 0.0),
                rlsmp: avg(0.0, 0.0, 0.8, 0.0),
            }],
        };
        assert!((fig.mean_ratio() - 1.25).abs() < 1e-12);
    }
}
