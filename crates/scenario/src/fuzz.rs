//! The deterministic scenario fuzzer (`check` feature).
//!
//! Drives [`FuzzCase`]s — seeded random scenario knobs from
//! `StreamId::Custom` streams — through [`run_simulation_checked`] with the
//! invariant oracle armed. A failing case (violation **or** panic) is greedily
//! shrunk to a minimal reproducer; both the original and the shrunk case are
//! written to a JSONL corpus that `fuzz --replay FILE` re-runs verbatim.

use crate::config::{Protocol, SimConfig};
use crate::runner::{run_simulation_checked, CheckSetup};
use vanet_check::FuzzCase;
use vanet_des::{SimDuration, SimTime};

/// One fuzzer failure: the case as generated, its shrunk minimal form, and what
/// the oracle (or panic) said.
#[derive(Debug)]
pub struct FuzzFailure {
    /// Campaign index of the failing case.
    pub ix: u64,
    /// The case exactly as generated.
    pub case: FuzzCase,
    /// The greedily shrunk minimal reproducer.
    pub shrunk: FuzzCase,
    /// Violated invariant name (or `"panic"`).
    pub invariant: String,
    /// Violation detail / panic message.
    pub detail: String,
}

/// Builds the full simulation config a case stands for.
pub fn config_of_case(case: &FuzzCase) -> SimConfig {
    let mut cfg = SimConfig::paper_fig3_2(case.map_size, case.vehicles, case.seed);
    cfg.duration = SimDuration::from_secs(case.duration_s);
    cfg.warmup = SimDuration::from_secs(case.warmup_s);
    cfg.query_fraction = case.query_fraction;
    cfg.l1_size = case.l1_size;
    cfg.radio.reliable_fraction = case.reliable_fraction;
    cfg.wired_backbone = case.wired_backbone;
    cfg
}

/// The protocol a case runs.
pub fn protocol_of_case(case: &FuzzCase) -> Protocol {
    if case.rlsmp {
        Protocol::Rlsmp
    } else {
        Protocol::Hlsrg
    }
}

/// Runs one case with the oracle armed; `Some((invariant, detail))` on failure.
///
/// Panics (e.g. the network core's inline `check` assertions, or index bugs the
/// fuzzer exists to find) are caught and reported like violations so a fuzzing
/// campaign always finishes and can shrink what it found.
pub fn run_case(case: &FuzzCase) -> Option<(String, String)> {
    let cfg = config_of_case(case);
    let setup = CheckSetup {
        corrupt_at: case.corrupt.then(|| SimTime::ZERO + cfg.warmup),
        ..CheckSetup::default()
    };
    let protocol = protocol_of_case(case);
    let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        run_simulation_checked(&cfg, protocol, &setup)
    }));
    match outcome {
        Ok((_, None)) => None,
        Ok((_, Some(v))) => Some((v.invariant.to_string(), v.detail)),
        Err(payload) => {
            let msg = payload
                .downcast_ref::<String>()
                .map(String::as_str)
                .or_else(|| payload.downcast_ref::<&str>().copied())
                .unwrap_or("non-string panic payload");
            Some(("panic".to_string(), msg.to_string()))
        }
    }
}

/// Greedy shrink: repeatedly adopts the first candidate that still fails, until
/// no candidate does. Every candidate strictly reduces a knob, so this
/// terminates.
pub fn shrink(case: &FuzzCase) -> FuzzCase {
    let mut best = case.clone();
    loop {
        let mut improved = false;
        for candidate in best.shrink_candidates() {
            if run_case(&candidate).is_some() {
                best = candidate;
                improved = true;
                break;
            }
        }
        if !improved {
            return best;
        }
    }
}

/// Runs a whole campaign: `runs` cases drawn from `master_seed`, each reported
/// through `progress(ix, case, failed)`. Failing cases are shrunk before being
/// returned.
pub fn fuzz_campaign(
    master_seed: u64,
    runs: u64,
    corrupt: bool,
    mut progress: impl FnMut(u64, &FuzzCase, bool),
) -> Vec<FuzzFailure> {
    let mut failures = Vec::new();
    for ix in 0..runs {
        let mut case = FuzzCase::generate(master_seed, ix);
        case.corrupt = corrupt;
        let failed = run_case(&case);
        progress(ix, &case, failed.is_some());
        if let Some((invariant, detail)) = failed {
            let shrunk = shrink(&case);
            failures.push(FuzzFailure {
                ix,
                case,
                shrunk,
                invariant,
                detail,
            });
        }
    }
    failures
}

/// [`fuzz_campaign`] fanned out over the shared job pool: cases run in
/// parallel (each owns its whole simulated world), failures are shrunk
/// serially afterwards, and the returned list is in campaign-index order —
/// bit-identical to a 1-thread run no matter the pool width.
pub fn fuzz_campaign_pooled(
    master_seed: u64,
    runs: u64,
    corrupt: bool,
    threads: usize,
) -> Vec<FuzzFailure> {
    let pool = crate::pool::JobPool::new(threads);
    let outcomes = pool.run(runs as usize, |ix| {
        let mut case = FuzzCase::generate(master_seed, ix as u64);
        case.corrupt = corrupt;
        let failed = run_case(&case);
        (case, failed)
    });
    outcomes
        .into_iter()
        .enumerate()
        .filter_map(|(ix, (case, failed))| {
            failed.map(|(invariant, detail)| {
                let shrunk = shrink(&case);
                FuzzFailure {
                    ix: ix as u64,
                    case,
                    shrunk,
                    invariant,
                    detail,
                }
            })
        })
        .collect()
}

/// Serializes failures as a replayable corpus: the original case then its
/// shrunk form, one JSON line each.
pub fn corpus_of(failures: &[FuzzFailure]) -> String {
    let mut out = String::new();
    for f in failures {
        out.push_str(&format!(
            "# case {} failed: {}: {}\n{}\n# shrunk reproducer:\n{}\n",
            f.ix,
            f.invariant,
            f.detail,
            f.case.to_jsonl(),
            f.shrunk.to_jsonl()
        ));
    }
    out
}

/// Replays a corpus: every parseable line is re-run with the oracle armed.
/// Returns `(case, outcome)` per line, in file order.
#[allow(clippy::type_complexity)]
pub fn replay(text: &str) -> Vec<(FuzzCase, Option<(String, String)>)> {
    text.lines()
        .filter_map(FuzzCase::parse_line)
        .map(|case| {
            let outcome = run_case(&case);
            (case, outcome)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A quiet panic hook scope: the corruption self-test expects panics from
    /// deep inside the stack; the default hook would spam stderr.
    fn with_quiet_panics<R>(f: impl FnOnce() -> R) -> R {
        let hook = std::panic::take_hook();
        std::panic::set_hook(Box::new(|_| {}));
        let r = f();
        std::panic::set_hook(hook);
        r
    }

    #[test]
    fn clean_cases_pass_the_oracle() {
        // A handful of seeded cases with no corruption: the oracle must stay
        // silent (this is the fuzzer's steady-state smoke path).
        let failures = fuzz_campaign(0xFEED, 3, false, |_, _, _| {});
        assert!(
            failures.is_empty(),
            "oracle flagged a clean run: {:?}",
            failures
                .iter()
                .map(|f| (&f.invariant, &f.detail))
                .collect::<Vec<_>>()
        );
    }

    #[test]
    fn pooled_campaign_matches_serial_on_clean_cases() {
        // Same master seed, same cases; the pool width must not change what a
        // campaign reports (clean here, so both stay empty — the corrupt path
        // shares run_case/shrink with the serial campaign verbatim).
        let serial = fuzz_campaign(0xFEED, 4, false, |_, _, _| {});
        for threads in [1, 4] {
            let pooled = fuzz_campaign_pooled(0xFEED, 4, false, threads);
            assert_eq!(pooled.len(), serial.len());
        }
    }

    #[test]
    fn corrupted_tables_are_caught_and_shrunk_within_200_runs() {
        // The mutation demo: arm the deliberate location-table corruption and
        // require the campaign to catch it well within 200 seeded runs, then
        // shrink the case to a minimal config that still reproduces.
        with_quiet_panics(|| {
            let mut caught = None;
            for ix in 0..200 {
                let mut case = FuzzCase::generate(0xBAD_5EED, ix);
                case.corrupt = true;
                if let Some((invariant, detail)) = run_case(&case) {
                    caught = Some((ix, case, invariant, detail));
                    break;
                }
            }
            let (ix, case, invariant, detail) =
                caught.expect("corruption went undetected for 200 seeded runs");
            assert!(ix < 200);
            assert_eq!(
                invariant, "table-soundness",
                "wrong invariant caught the corruption: {invariant}: {detail}"
            );
            assert!(
                detail.contains("drifted") || detail.contains("maps to"),
                "unexpected detail: {detail}"
            );

            // Shrinking keeps the failure and never grows the case.
            let shrunk = shrink(&case);
            assert!(run_case(&shrunk).is_some(), "shrunk case no longer fails");
            assert!(shrunk.weight() <= case.weight());
            assert!(shrunk.vehicles <= case.vehicles);
            assert!(shrunk.duration_s <= case.duration_s);
            // A shrunk reproducer replays from its corpus line.
            let line = shrunk.to_jsonl();
            let replayed = replay(&line);
            assert_eq!(replayed.len(), 1);
            assert!(replayed[0].1.is_some(), "replay of the reproducer passed");
        });
    }

    #[test]
    fn corpus_round_trips_through_replay_parsing() {
        let mut a = FuzzCase::generate(5, 0);
        a.corrupt = true;
        let failure = FuzzFailure {
            ix: 0,
            case: a.clone(),
            shrunk: a.clone(),
            invariant: "table-soundness".into(),
            detail: "demo".into(),
        };
        let corpus = corpus_of(std::slice::from_ref(&failure));
        let cases: Vec<FuzzCase> = corpus.lines().filter_map(FuzzCase::parse_line).collect();
        assert_eq!(cases, vec![a.clone(), a]);
    }
}
