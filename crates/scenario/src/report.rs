//! The `hlsrg report` backend: a self-contained single-file HTML dashboard.
//!
//! One call to [`render_report`] turns whatever run artifacts exist — a
//! telemetry JSONL stream, figure-sweep curves, the `BENCH_sim.json`
//! trajectory — into one HTML file with inline SVG charts
//! ([`crate::plot::svg_chart`]) and inline CSS. No scripts, no external
//! assets, no network fetches: the file renders identically offline, can be
//! attached to a CI run as a single artifact, and diffs cleanly because every
//! byte is a pure function of its inputs.

use crate::bench::BenchRecord;
use crate::figures::Figure;
use crate::plot::{svg_chart, xml_escape};
use vanet_trace::TelemetrySample;

/// Everything the dashboard can draw. Any section may be empty; it is then
/// omitted (an all-empty input still yields a valid page saying so).
#[derive(Debug, Clone, Default)]
pub struct ReportInputs<'a> {
    /// Page title (e.g. the run or scenario name).
    pub title: &'a str,
    /// Telemetry time series from one run.
    pub telemetry: &'a [TelemetrySample],
    /// Figure-sweep curves.
    pub figures: &'a [Figure],
    /// Perf trajectory records.
    pub bench: &'a [BenchRecord],
}

/// Chart pixel size used throughout the dashboard.
const CHART_W: usize = 460;
const CHART_H: usize = 260;

fn section(out: &mut String, heading: &str, body: &str) {
    out.push_str(&format!("<h2>{}</h2>\n{}", xml_escape(heading), body));
}

fn chart(title: &str, series: &[(&str, Vec<(f64, f64)>)]) -> String {
    // Series can be empty (e.g. a latency window that never filled); render a
    // placeholder rather than panicking the whole report.
    let filtered: Vec<(&str, Vec<(f64, f64)>)> = series
        .iter()
        .filter(|(_, pts)| !pts.is_empty())
        .map(|(n, pts)| (*n, pts.clone()))
        .collect();
    let body = if filtered.is_empty() {
        "<p class=\"empty\">no data</p>".to_string()
    } else {
        svg_chart(&filtered, CHART_W, CHART_H)
    };
    format!(
        "<figure><figcaption>{}</figcaption>\n{}</figure>\n",
        xml_escape(title),
        body
    )
}

/// Renders the telemetry section: one chart per metric family.
fn telemetry_section(samples: &[TelemetrySample]) -> String {
    let t = |s: &TelemetrySample| s.t.as_secs_f64();
    let series_of = |f: &dyn Fn(&TelemetrySample) -> f64| -> Vec<(f64, f64)> {
        samples.iter().map(|s| (t(s), f(s))).collect()
    };
    let mut body = String::from("<div class=\"grid\">\n");
    body.push_str(&chart(
        "Event throughput (events per simulated second)",
        &[("events/sim-sec", series_of(&|s| s.events_per_sim_sec))],
    ));
    body.push_str(&chart(
        "Event-queue depth",
        &[("pending events", series_of(&|s| s.queue_depth as f64))],
    ));
    body.push_str(&chart(
        "Location-table entries per grid level",
        &[
            ("L1", series_of(&|s| s.table_entries[0] as f64)),
            ("L2", series_of(&|s| s.table_entries[1] as f64)),
            ("L3", series_of(&|s| s.table_entries[2] as f64)),
        ],
    ));
    body.push_str(&chart(
        "In-flight queries",
        &[("open queries", series_of(&|s| s.inflight_queries as f64))],
    ));
    let quantile_pts = |pick: &dyn Fn(&TelemetrySample) -> Option<f64>| -> Vec<(f64, f64)> {
        samples
            .iter()
            .filter_map(|s| pick(s).map(|v| (t(s), v)))
            .collect()
    };
    body.push_str(&chart(
        "Query latency, sliding window (s)",
        &[
            ("p50", quantile_pts(&|s| s.lat_p50)),
            ("p99", quantile_pts(&|s| s.lat_p99)),
        ],
    ));
    body.push_str(&chart(
        "Cumulative drops by packet class",
        &[
            (
                "update",
                series_of(&|s| s.drops[0].iter().sum::<u64>() as f64),
            ),
            (
                "collection",
                series_of(&|s| s.drops[1].iter().sum::<u64>() as f64),
            ),
            (
                "query",
                series_of(&|s| s.drops[2].iter().sum::<u64>() as f64),
            ),
            (
                "data",
                series_of(&|s| s.drops[3].iter().sum::<u64>() as f64),
            ),
        ],
    ));
    // Per-L3-region load at the final tick: the shard-balance view.
    if let Some(last) = samples.last() {
        if !last.regions.is_empty() {
            let veh: Vec<(f64, f64)> = last
                .regions
                .iter()
                .enumerate()
                .map(|(i, &(v, _, _))| (i as f64, v as f64))
                .collect();
            let ent: Vec<(f64, f64)> = last
                .regions
                .iter()
                .enumerate()
                .map(|(i, &(_, e, _))| (i as f64, e as f64))
                .collect();
            let evs: Vec<(f64, f64)> = last
                .regions
                .iter()
                .enumerate()
                .map(|(i, &(_, _, ev))| (i as f64, ev as f64))
                .collect();
            body.push_str(&chart(
                "Per-L3-region load at end of run (x = region id)",
                &[("vehicles", veh), ("table entries", ent), ("events", evs)],
            ));
        }
    }
    body.push_str("</div>\n");
    body
}

/// Renders the figure-sweep section: one chart per figure.
fn figures_section(figures: &[Figure]) -> String {
    let mut body = String::from("<div class=\"grid\">\n");
    for fig in figures {
        body.push_str(&chart(
            &format!("Figure {} — {} ({})", fig.id, fig.title, fig.y_label),
            &fig.series(),
        ));
    }
    body.push_str("</div>\n");
    body
}

/// Renders the bench section: the events/sec trajectory per scenario plus the
/// full record table.
fn bench_section(records: &[BenchRecord]) -> String {
    let mut scenarios: Vec<&str> = Vec::new();
    for r in records {
        if !scenarios.contains(&r.scenario.as_str()) {
            scenarios.push(&r.scenario);
        }
    }
    let series: Vec<(&str, Vec<(f64, f64)>)> = scenarios
        .iter()
        .map(|&name| {
            let pts = records
                .iter()
                .filter(|r| r.scenario == name)
                .enumerate()
                .map(|(i, r)| (i as f64, r.events_per_sec))
                .collect();
            (name, pts)
        })
        .collect();
    let mut body = chart(
        "Events/sec trajectory (x = record index per scenario)",
        &series,
    );
    body.push_str(
        "<table><tr><th>label</th><th>scale</th><th>scenario</th><th>wall ms</th>\
         <th>events</th><th>events/sec</th><th>peak queue</th></tr>\n",
    );
    for r in records {
        body.push_str(&format!(
            "<tr><td>{}</td><td>{}</td><td>{}</td><td>{:.1}</td><td>{}</td>\
             <td>{:.0}</td><td>{}</td></tr>\n",
            xml_escape(&r.label),
            xml_escape(&r.scale),
            xml_escape(&r.scenario),
            r.wall_ms,
            r.events,
            r.events_per_sec,
            r.peak_queue_depth,
        ));
    }
    body.push_str("</table>\n");
    body
}

/// Renders the dashboard: one self-contained HTML document with inline CSS and
/// inline SVG only — no scripts, stylesheets, images, or any other fetch.
pub fn render_report(inputs: &ReportInputs<'_>) -> String {
    let mut out =
        String::from("<!DOCTYPE html>\n<html lang=\"en\">\n<head>\n<meta charset=\"utf-8\"/>\n");
    out.push_str(&format!("<title>{}</title>\n", xml_escape(inputs.title)));
    out.push_str(
        "<style>\n\
         body{font-family:system-ui,sans-serif;margin:2em;color:#222;max-width:1080px}\n\
         h1{border-bottom:2px solid #0072b2}\n\
         h2{margin-top:1.6em}\n\
         figure{display:inline-block;margin:0.5em;vertical-align:top}\n\
         figcaption{font-size:0.85em;color:#555;margin-bottom:0.3em}\n\
         table{border-collapse:collapse;font-size:0.85em}\n\
         td,th{border:1px solid #ccc;padding:0.25em 0.6em;text-align:right}\n\
         th{background:#f0f4f8}\n\
         .empty{color:#999;font-style:italic}\n\
         </style>\n</head>\n<body>\n",
    );
    out.push_str(&format!("<h1>{}</h1>\n", xml_escape(inputs.title)));
    let mut any = false;
    if !inputs.telemetry.is_empty() {
        section(
            &mut out,
            "Telemetry time series",
            &telemetry_section(inputs.telemetry),
        );
        any = true;
    }
    if !inputs.figures.is_empty() {
        section(
            &mut out,
            "Paper-figure sweeps",
            &figures_section(inputs.figures),
        );
        any = true;
    }
    if !inputs.bench.is_empty() {
        section(&mut out, "Perf trajectory", &bench_section(inputs.bench));
        any = true;
    }
    if !any {
        out.push_str("<p class=\"empty\">no inputs: pass a telemetry stream, figures, or a bench trajectory</p>\n");
    }
    out.push_str("</body>\n</html>\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use vanet_des::SimTime;

    fn sample(t: u64, eps: f64) -> TelemetrySample {
        TelemetrySample {
            t: SimTime::from_secs(t),
            queue_depth: 10 + t,
            events: t * 100,
            events_delta: 100,
            events_per_sim_sec: eps,
            inflight_queries: 2,
            table_entries: [50, 12, 4],
            updates: t * 3,
            update_radio: t * 3,
            query_radio: t,
            query_wired: t / 2,
            lat_p50: (t > 0).then_some(0.8),
            lat_p99: (t > 0).then_some(2.4),
            lat_window: 6,
            drops: [[1, 0, 0, 0, 0], [0; 5], [0; 5], [0; 5]],
            barriers: t * 2,
            regions: vec![(30, 18, 200), (25, 40, 170)],
        }
    }

    fn bench_rec(label: &str, eps: f64) -> BenchRecord {
        BenchRecord {
            label: label.into(),
            scale: "smoke".into(),
            scenario: "figure_sweep".into(),
            wall_ms: 100.0,
            events: 1000,
            events_per_sec: eps,
            peak_queue_depth: 50,
            allocs_per_event: None,
            queue_resizes: None,
            max_bucket_scan: None,
            shards: None,
            threads: None,
        }
    }

    /// The acceptance property: the emitted page is one self-contained file —
    /// no scripts, stylesheets, fetches, or references to anything external.
    fn assert_self_contained(html: &str) {
        for forbidden in [
            "<script", "<link", "src=", "href=", "url(", "@import", "<iframe", "http://",
            "https://",
        ] {
            // The SVG xmlns attribute is the one allowed URL-shaped string: it
            // is a namespace identifier, never fetched.
            let hits = html
                .matches(forbidden)
                .count()
                .saturating_sub(if forbidden == "http://" {
                    html.matches("xmlns=\"http://www.w3.org/2000/svg\"").count()
                } else {
                    0
                });
            assert_eq!(hits, 0, "found {forbidden:?} in report");
        }
    }

    #[test]
    fn full_report_is_self_contained_and_has_all_sections() {
        let samples: Vec<TelemetrySample> = (0..6).map(|t| sample(t * 10, 120.0)).collect();
        let bench = vec![
            bench_rec("pr6-baseline", 90_000.0),
            bench_rec("dev", 95_000.0),
        ];
        let html = render_report(&ReportInputs {
            title: "quick_demo seed 42 <&>",
            telemetry: &samples,
            figures: &[],
            bench: &bench,
        });
        assert!(html.starts_with("<!DOCTYPE html>"));
        assert!(html.trim_end().ends_with("</html>"));
        assert!(html.contains("Telemetry time series"));
        assert!(html.contains("Perf trajectory"));
        assert!(
            html.contains("quick_demo seed 42 &lt;&amp;&gt;"),
            "title escaped"
        );
        assert!(
            html.matches("<svg ").count() >= 7,
            "every chart is inline SVG"
        );
        assert_self_contained(&html);
    }

    #[test]
    fn empty_inputs_still_render_a_valid_page() {
        let html = render_report(&ReportInputs {
            title: "empty",
            ..ReportInputs::default()
        });
        assert!(html.contains("no inputs"));
        assert_self_contained(&html);
    }

    #[test]
    fn report_is_deterministic() {
        let samples: Vec<TelemetrySample> = (0..4).map(|t| sample(t * 5, 80.0)).collect();
        let inputs = ReportInputs {
            title: "det",
            telemetry: &samples,
            figures: &[],
            bench: &[],
        };
        assert_eq!(render_report(&inputs), render_report(&inputs));
    }
}
