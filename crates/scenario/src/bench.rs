//! The `bench` harness: canonical scenarios timed end to end, recorded as a
//! machine-readable perf trajectory in `BENCH_sim.json`.
//!
//! Every record measures one scenario: wall-clock time, discrete events
//! processed, events per second, the peak event-queue depth, and (when the
//! binary is built with the `bench-alloc` feature) an allocations-per-event
//! estimate from a counting global allocator. Scenarios are a pure function of
//! their config, so the events/queue-depth figures are identical across
//! repetitions — only wall time varies, and the *best* repetition is recorded
//! (standard practice: the minimum is the least noisy estimator of the true
//! cost on a shared machine).
//!
//! The trajectory file is a JSON array with one flat record object per line,
//! so it can be parsed with the same line-splitting idiom as the fuzz corpus
//! and appended to without a full JSON parser.

use crate::config::{Protocol, SimConfig};
use crate::figures::FigureScale;
use crate::metrics::RunReport;
use crate::replicate::replicate_batch;
use std::time::Instant;

/// How big a bench run is. `Smoke` and `Paper` mirror [`FigureScale`] and run
/// the full canonical suite; `Large` is a 10k-vehicle stress tier that runs
/// only the shard-scaling scenarios (the figure sweep at that size would
/// dominate the wall-time budget without measuring anything new).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BenchScale {
    /// CI-speed suite on shrunk configs.
    Smoke,
    /// The paper's full parameters.
    Paper,
    /// 10k vehicles on a 12 km map (9 L3 regions), shard scaling only.
    Large,
}

impl BenchScale {
    /// Parses a `--scale` value.
    pub fn parse(name: &str) -> Option<BenchScale> {
        match name {
            "smoke" => Some(BenchScale::Smoke),
            "paper" => Some(BenchScale::Paper),
            "large" => Some(BenchScale::Large),
            _ => None,
        }
    }

    /// The name recorded in trajectory rows.
    pub fn name(self) -> &'static str {
        match self {
            BenchScale::Smoke => "smoke",
            BenchScale::Paper => "paper",
            BenchScale::Large => "large",
        }
    }
}

/// What one `bench` invocation should do.
#[derive(Debug, Clone)]
pub struct BenchOptions {
    /// Sweep scale for the figure-sweep scenario.
    pub scale: BenchScale,
    /// Wall-time repetitions per scenario (best is recorded).
    pub reps: usize,
    /// Worker threads for the sweep scenario (the job pool's width).
    pub threads: usize,
    /// Reads the process-wide allocation counter, when the binary compiled one
    /// in (`bench-alloc` feature). `None` leaves `allocs_per_event` unset.
    pub alloc_count: Option<fn() -> u64>,
    /// Run only the scenario with this exact name (e.g. `hlsrg_shards1`).
    /// `None` runs the full suite for the scale. Lets CI measure one large
    /// row without paying for the whole large tier.
    pub only: Option<String>,
}

impl Default for BenchOptions {
    fn default() -> Self {
        BenchOptions {
            scale: BenchScale::Smoke,
            reps: 3,
            threads: std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(4),
            alloc_count: None,
            only: None,
        }
    }
}

/// One measured scenario: a line of the trajectory file.
#[derive(Debug, Clone, PartialEq)]
pub struct BenchRecord {
    /// Trajectory label, e.g. `pr3-baseline`.
    pub label: String,
    /// Sweep scale the record was measured at (`smoke` / `paper`).
    pub scale: String,
    /// Scenario name.
    pub scenario: String,
    /// Best wall-clock time over the repetitions, milliseconds.
    pub wall_ms: f64,
    /// Discrete events processed by the scenario's event loops.
    pub events: u64,
    /// `events / wall_ms`, scaled to per-second.
    pub events_per_sec: f64,
    /// Largest pending-event count observed in any run's queue.
    pub peak_queue_depth: u64,
    /// Heap allocations per event (only from `bench-alloc` builds).
    pub allocs_per_event: Option<f64>,
    /// Calendar-queue bucket rebuilds summed across the scenario's runs
    /// (absent in rows recorded before the calendar-queue kernel).
    pub queue_resizes: Option<u64>,
    /// Worst single-pop bucket scan across the scenario's runs (absent in
    /// rows recorded before the calendar-queue kernel).
    pub max_bucket_scan: Option<u64>,
    /// Event-queue shard count for the shard-scaling scenarios (absent in
    /// single-queue rows and rows recorded before region sharding).
    pub shards: Option<u64>,
    /// Worker-thread count for the thread-scaling scenarios (absent in rows
    /// recorded before the epoch executor and in rows that use the default
    /// inline execution).
    pub threads: Option<u64>,
}

impl BenchRecord {
    /// Encodes the record as one flat JSON object (one trajectory line).
    pub fn to_json(&self) -> String {
        let allocs = match self.allocs_per_event {
            Some(a) => format!("{a:?}"),
            None => "null".to_string(),
        };
        let opt_u64 = |v: Option<u64>| match v {
            Some(n) => n.to_string(),
            None => "null".to_string(),
        };
        format!(
            "{{\"label\":\"{}\",\"scale\":\"{}\",\"scenario\":\"{}\",\"wall_ms\":{:?},\
             \"events\":{},\"events_per_sec\":{:?},\"peak_queue_depth\":{},\
             \"allocs_per_event\":{},\"queue_resizes\":{},\"max_bucket_scan\":{},\
             \"shards\":{},\"threads\":{}}}",
            self.label,
            self.scale,
            self.scenario,
            self.wall_ms,
            self.events,
            self.events_per_sec,
            self.peak_queue_depth,
            allocs,
            opt_u64(self.queue_resizes),
            opt_u64(self.max_bucket_scan),
            opt_u64(self.shards),
            opt_u64(self.threads),
        )
    }

    /// Parses one trajectory line; `None` for blanks, brackets, or malformed
    /// records (a validation failure, not a skip, for anything inside `[...]`).
    pub fn parse_line(line: &str) -> Option<BenchRecord> {
        let line = line.trim().trim_end_matches(',');
        let body = line.strip_prefix('{')?.strip_suffix('}')?;
        let mut rec = BenchRecord {
            label: String::new(),
            scale: String::new(),
            scenario: String::new(),
            wall_ms: f64::NAN,
            events: 0,
            events_per_sec: f64::NAN,
            peak_queue_depth: 0,
            allocs_per_event: None,
            queue_resizes: None,
            max_bucket_scan: None,
            shards: None,
            threads: None,
        };
        let mut required = 0u32;
        for field in body.split(',') {
            let (key, value) = field.split_once(':')?;
            let key = key.trim().strip_prefix('"')?.strip_suffix('"')?;
            let value = value.trim();
            let unquote = |v: &str| {
                v.strip_prefix('"')
                    .and_then(|v| v.strip_suffix('"'))
                    .map(str::to_string)
            };
            match key {
                "label" => rec.label = unquote(value)?,
                "scale" => rec.scale = unquote(value)?,
                "scenario" => rec.scenario = unquote(value)?,
                "wall_ms" => rec.wall_ms = value.parse().ok()?,
                "events" => rec.events = value.parse().ok()?,
                "events_per_sec" => rec.events_per_sec = value.parse().ok()?,
                "peak_queue_depth" => rec.peak_queue_depth = value.parse().ok()?,
                "allocs_per_event" => {
                    rec.allocs_per_event = if value == "null" {
                        None
                    } else {
                        Some(value.parse().ok()?)
                    };
                    continue; // optional: not counted toward `required`
                }
                "queue_resizes" => {
                    rec.queue_resizes = if value == "null" {
                        None
                    } else {
                        Some(value.parse().ok()?)
                    };
                    continue; // optional: not counted toward `required`
                }
                "max_bucket_scan" => {
                    rec.max_bucket_scan = if value == "null" {
                        None
                    } else {
                        Some(value.parse().ok()?)
                    };
                    continue; // optional: not counted toward `required`
                }
                "shards" => {
                    rec.shards = if value == "null" {
                        None
                    } else {
                        Some(value.parse().ok()?)
                    };
                    continue; // optional: not counted toward `required`
                }
                "threads" => {
                    rec.threads = if value == "null" {
                        None
                    } else {
                        Some(value.parse().ok()?)
                    };
                    continue; // optional: not counted toward `required`
                }
                _ => return None,
            }
            required += 1;
        }
        (required == 7).then_some(rec)
    }
}

/// The result of one scenario's timed executions before labeling.
struct Measured {
    scenario: &'static str,
    wall_ms: f64,
    events: u64,
    peak_queue_depth: u64,
    allocs_per_event: Option<f64>,
    queue_resizes: u64,
    max_bucket_scan: u64,
}

/// Runs one scenario `reps` times, keeping the best wall time. The
/// events/queue-depth figures are asserted identical across repetitions —
/// a cheap determinism check riding along with every bench run.
fn measure(
    opts: &BenchOptions,
    scenario: &'static str,
    mut run: impl FnMut() -> Vec<RunReport>,
) -> Measured {
    let mut best_ms = f64::INFINITY;
    let mut events = 0u64;
    let mut peak = 0u64;
    let mut allocs_per_event = None;
    let mut queue_resizes = 0u64;
    let mut max_bucket_scan = 0u64;
    for rep in 0..opts.reps.max(1) {
        let allocs_before = opts.alloc_count.map(|f| f());
        let start = Instant::now();
        let reports = run();
        let wall = start.elapsed().as_secs_f64() * 1e3;
        let ev: u64 = reports.iter().map(|r| r.events_processed).sum();
        let pk = reports
            .iter()
            .map(|r| r.peak_queue_depth as u64)
            .max()
            .unwrap_or(0);
        if rep == 0 {
            events = ev;
            peak = pk;
            queue_resizes = reports.iter().map(|r| r.queue_resizes).sum();
            max_bucket_scan = reports.iter().map(|r| r.queue_max_scan).max().unwrap_or(0);
            if let (Some(before), Some(f)) = (allocs_before, opts.alloc_count) {
                let delta = f().saturating_sub(before);
                allocs_per_event = Some(delta as f64 / ev.max(1) as f64);
            }
        } else {
            assert_eq!(events, ev, "{scenario}: event count drifted across reps");
            assert_eq!(peak, pk, "{scenario}: queue depth drifted across reps");
        }
        best_ms = best_ms.min(wall);
    }
    Measured {
        scenario,
        wall_ms: best_ms,
        events,
        peak_queue_depth: peak,
        allocs_per_event,
        queue_resizes,
        max_bucket_scan,
    }
}

/// The shard counts every shard-scaling scenario is measured at.
pub const BENCH_SHARD_COUNTS: [usize; 3] = [1, 2, 4];

/// The canonical benchmark suite: the figure sweep (the acceptance metric),
/// one single-run scenario per protocol, and the shard-scaling rows. At
/// [`BenchScale::Large`] only the shard rows run, on the 10k-vehicle config.
pub fn run_bench(opts: &BenchOptions, label: &str) -> Vec<BenchRecord> {
    let mut measured: Vec<(Measured, Option<u64>, Option<u64>)> = Vec::new();
    let want = |name: &str| opts.only.as_deref().is_none_or(|only| only == name);

    if let Some(fig_scale) = match opts.scale {
        BenchScale::Smoke => Some(FigureScale::Smoke),
        BenchScale::Paper => Some(FigureScale::Paper),
        BenchScale::Large => None,
    } {
        // The smoke/paper-scale figure sweep: every (map point × protocol ×
        // seed) replication of the Fig 3.3–3.5 vehicle sweep, via the job pool.
        if want("figure_sweep") {
            let sweep_cfgs = sweep_configs(fig_scale);
            let reps = match fig_scale {
                FigureScale::Paper => 10,
                FigureScale::Smoke => 2,
            };
            let sweep_jobs: Vec<(SimConfig, Protocol)> = sweep_cfgs
                .iter()
                .flat_map(|cfg| Protocol::ALL.map(|p| (cfg.clone(), p)))
                .collect();
            measured.push((
                measure(opts, "figure_sweep", || {
                    replicate_batch(&sweep_jobs, reps, opts.threads)
                        .into_iter()
                        .flatten()
                        .collect()
                }),
                None,
                None,
            ));
        }

        // Single paper-headline runs, one per protocol (no replication
        // fan-out, so these isolate the per-event hot path from the pool's
        // scheduling).
        let single = single_config(fig_scale);
        for (name, protocol) in [
            ("hlsrg_single", Protocol::Hlsrg),
            ("rlsmp_single", Protocol::Rlsmp),
        ] {
            if !want(name) {
                continue;
            }
            let cfg = single.clone();
            measured.push((
                measure(opts, name, move || {
                    vec![crate::runner::run_simulation(&cfg, protocol)]
                }),
                None,
                None,
            ));
        }
    }

    // Shard scaling: the same multi-L3 HLSRG run at 1/2/4 event-queue shards.
    // The determinism contract makes every row process identical events, so
    // the only thing these rows can differ in is wall time — the sharding
    // overhead (or, on a multi-core host, the speedup).
    let shard_base = shard_config(opts.scale);
    for (name, shards) in [
        ("hlsrg_shards1", 1usize),
        ("hlsrg_shards2", 2),
        ("hlsrg_shards4", 4),
    ] {
        if !want(name) {
            continue;
        }
        let cfg = SimConfig {
            shards,
            ..shard_base.clone()
        };
        measured.push((
            measure(opts, name, move || {
                vec![crate::runner::run_simulation(&cfg, Protocol::Hlsrg)]
            }),
            Some(shards as u64),
            None,
        ));
    }

    // Thread scaling: the 4-shard scenario with the epoch executor's worker
    // pool at 1/2/4 threads. The determinism contract holds across thread
    // counts too, so — like the shard rows — only wall time can move.
    for (name, threads) in [
        ("hlsrg_shards4_threads1", 1usize),
        ("hlsrg_shards4_threads2", 2),
        ("hlsrg_shards4_threads4", 4),
    ] {
        if !want(name) {
            continue;
        }
        let cfg = SimConfig {
            shards: 4,
            threads,
            ..shard_base.clone()
        };
        measured.push((
            measure(opts, name, move || {
                vec![crate::runner::run_simulation(&cfg, Protocol::Hlsrg)]
            }),
            Some(4),
            Some(threads as u64),
        ));
    }

    measured
        .into_iter()
        .map(|(m, shards, threads)| {
            let secs = m.wall_ms / 1e3;
            BenchRecord {
                label: label.to_string(),
                scale: opts.scale.name().to_string(),
                scenario: m.scenario.to_string(),
                wall_ms: m.wall_ms,
                events: m.events,
                events_per_sec: if secs > 0.0 {
                    m.events as f64 / secs
                } else {
                    f64::INFINITY
                },
                peak_queue_depth: m.peak_queue_depth,
                allocs_per_event: m.allocs_per_event,
                queue_resizes: Some(m.queue_resizes),
                max_bucket_scan: Some(m.max_bucket_scan),
                shards,
                threads,
            }
        })
        .collect()
}

/// The Fig 3.3–3.5 vehicle-sweep configs at the given scale (same shrink rule
/// as [`crate::figures`]).
fn sweep_configs(scale: FigureScale) -> Vec<SimConfig> {
    let vehicles: &[usize] = match scale {
        FigureScale::Paper => &[300, 400, 500, 600],
        FigureScale::Smoke => &[80, 120],
    };
    vehicles
        .iter()
        .map(|&v| {
            let mut cfg = SimConfig::paper_2km(v, 2000);
            if scale == FigureScale::Smoke {
                cfg.duration = vanet_des::SimDuration::from_secs(120);
                cfg.warmup = vanet_des::SimDuration::from_secs(40);
            }
            cfg
        })
        .collect()
}

/// The single-run scenario at the given scale.
fn single_config(scale: FigureScale) -> SimConfig {
    let mut cfg = SimConfig::paper_2km(300, 7);
    if scale == FigureScale::Smoke {
        cfg.duration = vanet_des::SimDuration::from_secs(120);
        cfg.warmup = vanet_des::SimDuration::from_secs(40);
    }
    cfg
}

/// The shard-scaling scenario at the given scale. Every tier uses a 4 km-or-
/// larger map so the L3 partition has multiple regions to shard over; the
/// large tier is the 10k-vehicle stress config on a 12 km map (3×3 L3 mesh,
/// paper-like density — the radio cost model is superlinear in density, so
/// scaling the fleet without the map would measure congestion collapse, not
/// the sharded executor).
fn shard_config(scale: BenchScale) -> SimConfig {
    let (size_m, vehicles, duration, warmup) = match scale {
        BenchScale::Smoke => (4000.0, 220, 120, 40),
        BenchScale::Paper => (4000.0, 700, 200, 70),
        BenchScale::Large => (12_000.0, 10_000, 60, 20),
    };
    let mut cfg = SimConfig::paper_fig3_2(size_m, vehicles, 42);
    cfg.duration = vanet_des::SimDuration::from_secs(duration);
    cfg.warmup = vanet_des::SimDuration::from_secs(warmup);
    cfg
}

/// Parses and validates a whole trajectory file: a JSON array, one record per
/// line. Returns the records, or a message naming the first offending line.
pub fn parse_trajectory(text: &str) -> Result<Vec<BenchRecord>, String> {
    let mut lines = text.lines().map(str::trim).filter(|l| !l.is_empty());
    if lines.next() != Some("[") {
        return Err("trajectory file must start with a '[' line".to_string());
    }
    let mut records = Vec::new();
    let mut closed = false;
    for line in lines {
        if closed {
            return Err(format!("content after closing ']': {line:?}"));
        }
        if line == "]" {
            closed = true;
            continue;
        }
        match BenchRecord::parse_line(line) {
            Some(r) => records.push(r),
            None => return Err(format!("invalid bench record line: {line:?}")),
        }
    }
    if !closed {
        return Err("trajectory file must end with a ']' line".to_string());
    }
    Ok(records)
}

/// Renders records back into the trajectory file format.
pub fn render_trajectory(records: &[BenchRecord]) -> String {
    let mut out = String::from("[\n");
    for (i, r) in records.iter().enumerate() {
        out.push_str(&r.to_json());
        if i + 1 < records.len() {
            out.push(',');
        }
        out.push('\n');
    }
    out.push_str("]\n");
    out
}

/// Appends `new` to the trajectory at `path` (validating any existing
/// content), creating the file if absent. Returns the full record set written.
pub fn append_trajectory(
    path: &std::path::Path,
    new: &[BenchRecord],
) -> Result<Vec<BenchRecord>, String> {
    let mut records = match std::fs::read_to_string(path) {
        Ok(text) => parse_trajectory(&text).map_err(|e| format!("{}: {e}", path.display()))?,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => Vec::new(),
        Err(e) => return Err(format!("cannot read {}: {e}", path.display())),
    };
    records.extend(new.iter().cloned());
    std::fs::write(path, render_trajectory(&records))
        .map_err(|e| format!("cannot write {}: {e}", path.display()))?;
    Ok(records)
}

/// One scenario's baseline-vs-current throughput comparison.
#[derive(Debug, Clone, PartialEq)]
pub struct CompareRow {
    /// Sweep scale the pair was measured at.
    pub scale: String,
    /// Scenario name.
    pub scenario: String,
    /// Baseline events/sec (newest row with the baseline label).
    pub baseline_eps: f64,
    /// Current events/sec (newest row overall).
    pub current_eps: f64,
    /// `(current − baseline) / baseline`, in percent; negative is slower.
    pub delta_pct: f64,
    /// True when the slowdown exceeds the threshold.
    pub regressed: bool,
}

/// Diffs the newest record of every `(scale, scenario)` pair against the
/// newest record carrying `baseline_label`, flagging any events/sec drop
/// beyond `threshold_pct` percent. Pairs measured only at the baseline (or
/// only currently) are skipped — a missing counterpart is not a regression.
/// Errors when the baseline label matches no record at all.
pub fn compare_trajectory(
    records: &[BenchRecord],
    baseline_label: &str,
    threshold_pct: f64,
) -> Result<Vec<CompareRow>, String> {
    if !records.iter().any(|r| r.label == baseline_label) {
        return Err(format!(
            "baseline label {baseline_label:?} matches no trajectory record"
        ));
    }
    let mut rows = Vec::new();
    let mut seen: Vec<(&str, &str)> = Vec::new();
    for r in records {
        let key = (r.scale.as_str(), r.scenario.as_str());
        if seen.contains(&key) {
            continue;
        }
        seen.push(key);
        // Newest-wins on both sides: the last baseline-labeled row is the
        // baseline, the last row of any label is the current measurement.
        let baseline = records
            .iter()
            .rev()
            .find(|b| b.label == baseline_label && (b.scale.as_str(), b.scenario.as_str()) == key);
        let current = records
            .iter()
            .rev()
            .find(|c| (c.scale.as_str(), c.scenario.as_str()) == key)
            .expect("key came from this record set");
        let Some(baseline) = baseline else { continue };
        if std::ptr::eq(baseline, current) {
            continue; // nothing measured since the baseline
        }
        let delta_pct =
            (current.events_per_sec - baseline.events_per_sec) / baseline.events_per_sec * 100.0;
        rows.push(CompareRow {
            scale: r.scale.clone(),
            scenario: r.scenario.clone(),
            baseline_eps: baseline.events_per_sec,
            current_eps: current.events_per_sec,
            delta_pct,
            regressed: delta_pct < -threshold_pct,
        });
    }
    Ok(rows)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(label: &str, scenario: &str, allocs: Option<f64>) -> BenchRecord {
        BenchRecord {
            label: label.into(),
            scale: "smoke".into(),
            scenario: scenario.into(),
            wall_ms: 123.456,
            events: 9876,
            events_per_sec: 80000.5,
            peak_queue_depth: 321,
            allocs_per_event: allocs,
            queue_resizes: None,
            max_bucket_scan: None,
            shards: None,
            threads: None,
        }
    }

    #[test]
    fn record_round_trips_through_json_line() {
        for allocs in [None, Some(12.5)] {
            let r = rec("pr3-baseline", "figure_sweep", allocs);
            assert_eq!(BenchRecord::parse_line(&r.to_json()), Some(r));
        }
        let mut r = rec("pr4-post", "figure_sweep", None);
        r.queue_resizes = Some(3);
        r.max_bucket_scan = Some(17);
        assert_eq!(BenchRecord::parse_line(&r.to_json()), Some(r));
        let mut r = rec("pr8-post", "hlsrg_shards4_threads2", None);
        r.shards = Some(4);
        r.threads = Some(2);
        assert_eq!(BenchRecord::parse_line(&r.to_json()), Some(r));
    }

    #[test]
    fn pre_calendar_rows_without_telemetry_keys_still_parse() {
        // Rows recorded before the calendar-queue kernel lack the telemetry
        // keys entirely; they must keep parsing (fields default to `None`).
        let line = "{\"label\":\"pr3-post\",\"scale\":\"smoke\",\"scenario\":\"figure_sweep\",\
                    \"wall_ms\":100.0,\"events\":10,\"events_per_sec\":100.0,\
                    \"peak_queue_depth\":5,\"allocs_per_event\":null}";
        let r = BenchRecord::parse_line(line).expect("legacy row parses");
        assert_eq!(r.queue_resizes, None);
        assert_eq!(r.max_bucket_scan, None);
    }

    #[test]
    fn malformed_lines_are_rejected() {
        assert_eq!(BenchRecord::parse_line(""), None);
        assert_eq!(BenchRecord::parse_line("{\"label\":\"x\"}"), None);
        assert_eq!(BenchRecord::parse_line("not json"), None);
        // An unknown key is a schema violation, not an extension point.
        let mut line = rec("a", "b", None).to_json();
        line = line.replace("\"events\"", "\"evnets\"");
        assert_eq!(BenchRecord::parse_line(&line), None);
    }

    #[test]
    fn trajectory_renders_and_parses() {
        let records = vec![
            rec("base", "figure_sweep", None),
            rec("post", "x", Some(1.0)),
        ];
        let text = render_trajectory(&records);
        assert_eq!(parse_trajectory(&text).unwrap(), records);
        assert!(parse_trajectory("[\ngarbage\n]\n").is_err());
        assert!(parse_trajectory("{}\n").is_err());
        assert!(parse_trajectory("[\n").is_err());
    }

    #[test]
    fn append_creates_then_extends() {
        let dir = std::env::temp_dir().join(format!("hlsrg-bench-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("BENCH_test.json");
        let _ = std::fs::remove_file(&path);
        append_trajectory(&path, &[rec("a", "s", None)]).unwrap();
        let all = append_trajectory(&path, &[rec("b", "s", None)]).unwrap();
        assert_eq!(all.len(), 2);
        let reparsed = parse_trajectory(&std::fs::read_to_string(&path).unwrap()).unwrap();
        assert_eq!(reparsed, all);
        std::fs::remove_file(&path).unwrap();
    }

    fn rec_eps(label: &str, scenario: &str, eps: f64) -> BenchRecord {
        BenchRecord {
            events_per_sec: eps,
            ..rec(label, scenario, None)
        }
    }

    #[test]
    fn compare_flags_injected_regression_past_threshold() {
        // The acceptance case: an injected >20% events/sec regression on one
        // scenario must trip the gate; a mild dip and an improvement must not.
        let records = vec![
            rec_eps("pr6-baseline", "figure_sweep", 100_000.0),
            rec_eps("pr6-baseline", "hlsrg_single", 50_000.0),
            rec_eps("pr6-baseline", "rlsmp_single", 40_000.0),
            rec_eps("dev", "figure_sweep", 70_000.0), // −30%: regression
            rec_eps("dev", "hlsrg_single", 45_000.0), // −10%: within threshold
            rec_eps("dev", "rlsmp_single", 48_000.0), // +20%: improvement
        ];
        let rows = compare_trajectory(&records, "pr6-baseline", 20.0).unwrap();
        assert_eq!(rows.len(), 3);
        let by_name = |n: &str| rows.iter().find(|r| r.scenario == n).unwrap();
        assert!(by_name("figure_sweep").regressed);
        assert!((by_name("figure_sweep").delta_pct - -30.0).abs() < 1e-9);
        assert!(!by_name("hlsrg_single").regressed);
        assert!(!by_name("rlsmp_single").regressed);
        assert!(by_name("rlsmp_single").delta_pct > 0.0);
    }

    #[test]
    fn compare_uses_newest_rows_on_both_sides() {
        let records = vec![
            rec_eps("base", "s", 10_000.0),  // stale baseline
            rec_eps("base", "s", 100_000.0), // newest baseline wins
            rec_eps("dev", "s", 60_000.0),   // stale current
            rec_eps("dev", "s", 90_000.0),   // newest current wins
        ];
        let rows = compare_trajectory(&records, "base", 20.0).unwrap();
        assert_eq!(rows.len(), 1);
        assert_eq!(rows[0].baseline_eps, 100_000.0);
        assert_eq!(rows[0].current_eps, 90_000.0);
        assert!(!rows[0].regressed, "−10% is within a 20% threshold");
    }

    #[test]
    fn compare_skips_unpaired_scenarios_and_rejects_unknown_labels() {
        let records = vec![
            rec_eps("base", "only_baseline", 10_000.0),
            rec_eps("dev", "only_current", 20_000.0),
        ];
        // `only_baseline`'s newest row IS the baseline row → skipped;
        // `only_current` has no baseline → skipped.
        let rows = compare_trajectory(&records, "base", 20.0).unwrap();
        assert!(rows.is_empty());
        assert!(compare_trajectory(&records, "no-such-label", 20.0).is_err());
    }

    #[test]
    fn smoke_bench_measures_something() {
        // A minimal real measurement: tiny configs, one rep, serial.
        let opts = BenchOptions {
            reps: 1,
            threads: 1,
            ..BenchOptions::default()
        };
        let mut records = Vec::new();
        let cfg = SimConfig::quick_demo(3);
        let m = measure(&opts, "quick", || {
            vec![crate::runner::run_simulation(&cfg, Protocol::Hlsrg)]
        });
        assert!(m.events > 0);
        assert!(m.peak_queue_depth > 0);
        assert!(m.wall_ms > 0.0);
        records.push(m);
    }
}
