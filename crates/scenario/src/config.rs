//! Scenario configuration.

use hlsrg::HlsrgConfig;
use rlsmp::RlsmpConfig;
use serde::{Deserialize, Serialize};
use vanet_des::SimDuration;
use vanet_des::SimTime;
use vanet_mobility::MobilityConfig;
use vanet_mobility::VehicleId;
use vanet_net::RadioConfig;
use vanet_roadnet::GridMapSpec;

/// Which location service a run exercises.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Protocol {
    /// The paper's contribution.
    Hlsrg,
    /// The RLSMP baseline.
    Rlsmp,
}

impl Protocol {
    /// Both protocols, in comparison order.
    pub const ALL: [Protocol; 2] = [Protocol::Hlsrg, Protocol::Rlsmp];

    /// Display name.
    pub fn name(self) -> &'static str {
        match self {
            Protocol::Hlsrg => "HLSRG",
            Protocol::Rlsmp => "RLSMP",
        }
    }
}

/// One simulation run's full parameter set.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SimConfig {
    /// Map generator parameters (used when `map_text` is `None`).
    pub map: GridMapSpec,
    /// A digital map in `vanet_roadnet::io` text format; overrides the generator.
    pub map_text: Option<String>,
    /// An ns-2 movement trace (`vanet_mobility::Ns2Trace` text format); when set,
    /// vehicles replay the trace instead of the native mobility model, and
    /// `vehicles` is overridden by the trace's fleet size.
    pub trace_ns2: Option<String>,
    /// L1 grid size (= communication range in the paper).
    pub l1_size: f64,
    /// Fleet size.
    pub vehicles: usize,
    /// Total simulated time.
    pub duration: SimDuration,
    /// Time before the first query (tables need to fill).
    pub warmup: SimDuration,
    /// Fraction of vehicles that launch one query each (paper: 10 %). Ignored when
    /// `explicit_queries` is set.
    pub query_fraction: f64,
    /// An explicit query workload `(time, source, destination)` that overrides the
    /// random one — for application scenarios like fleet tracking.
    pub explicit_queries: Option<Vec<(SimTime, VehicleId, VehicleId)>>,
    /// Master seed; every subsystem derives its own stream from it.
    pub seed: u64,
    /// Radio model.
    pub radio: RadioConfig,
    /// Mobility model.
    pub mobility: MobilityConfig,
    /// HLSRG tunables.
    pub hlsrg: HlsrgConfig,
    /// RLSMP tunables.
    pub rlsmp: RlsmpConfig,
    /// Whether HLSRG's RSUs get their wired backbone (ablation knob; RSUs still
    /// exist and have radios when false, but wired transfers fail).
    pub wired_backbone: bool,
    /// When set, the run arms the telemetry sampler at this interval: one
    /// [`vanet_trace::TelemetrySample`] per interval multiple (plus a final
    /// end-of-run sample), scheduled as ordinary DES events so the stream is
    /// byte-identical across same-seed runs.
    pub telemetry_interval: Option<SimDuration>,
    /// When set, the run samples protocol diagnostics and cumulative counters at
    /// this period into [`crate::metrics::RunReport::timeline`].
    pub timeline_period: Option<SimDuration>,
    /// Number of L3-region shards the event queue is split across. One shard
    /// is the classic sequential run; more shards exercise the conservative
    /// parallel executor, which must produce byte-identical results (the
    /// determinism contract tested in `tests/shard_determinism.rs`).
    pub shards: usize,
    /// Worker threads driving the shard queues (clamped to `1..=shards`).
    /// With one thread the epoch executor runs inline; more threads move
    /// per-shard queue mechanics onto a pool while handlers stay on the
    /// commit thread, so the thread count never changes any output byte.
    pub threads: usize,
}

impl SimConfig {
    /// The paper's headline scenario: a 2 km × 2 km map (Fig 3.1) with `vehicles`
    /// vehicles, 300 s of simulated time, and 10 % of vehicles querying.
    pub fn paper_2km(vehicles: usize, seed: u64) -> Self {
        SimConfig {
            map: GridMapSpec::paper(2000.0),
            map_text: None,
            trace_ns2: None,
            l1_size: 500.0,
            vehicles,
            duration: SimDuration::from_secs(300),
            warmup: SimDuration::from_secs(60),
            query_fraction: 0.10,
            explicit_queries: None,
            seed,
            radio: RadioConfig::default(),
            mobility: MobilityConfig::default(),
            hlsrg: HlsrgConfig::default(),
            rlsmp: RlsmpConfig::default(),
            wired_backbone: true,
            telemetry_interval: None,
            timeline_period: None,
            shards: 1,
            threads: 1,
        }
    }

    /// The Fig 3.2 sweep point: map side `size_m` with the paper's proportional
    /// vehicle counts (31 / 125 / 500 for 500 / 1000 / 2000 m).
    pub fn paper_fig3_2(size_m: f64, vehicles: usize, seed: u64) -> Self {
        SimConfig {
            map: GridMapSpec::paper(size_m),
            vehicles,
            ..Self::paper_2km(vehicles, seed)
        }
    }

    /// A small fast scenario for demos, doc examples, and smoke tests.
    pub fn quick_demo(seed: u64) -> Self {
        SimConfig {
            duration: SimDuration::from_secs(90),
            warmup: SimDuration::from_secs(30),
            ..Self::paper_fig3_2(1000.0, 80, seed)
        }
    }

    /// Sanity-checks the configuration, panicking on nonsense.
    pub fn validate(&self) {
        assert!(self.vehicles > 0, "need at least one vehicle");
        assert!(self.duration > self.warmup, "duration must exceed warmup");
        assert!(
            (0.0..=1.0).contains(&self.query_fraction),
            "query fraction must be a probability"
        );
        if let Some(qs) = &self.explicit_queries {
            for &(_, s, d) in qs {
                assert!((s.0 as usize) < self.vehicles, "query source out of range");
                assert!(
                    (d.0 as usize) < self.vehicles,
                    "query destination out of range"
                );
                assert_ne!(s, d, "self-queries are meaningless");
            }
        }
        assert!(self.l1_size > 0.0, "positive L1 size required");
        if let Some(iv) = self.telemetry_interval {
            assert!(!iv.is_zero(), "telemetry interval must be positive");
        }
        assert!(self.shards >= 1, "need at least one event-queue shard");
        assert!(self.threads >= 1, "need at least one executor thread");
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_configs_validate() {
        SimConfig::paper_2km(500, 0).validate();
        SimConfig::paper_fig3_2(500.0, 31, 1).validate();
        SimConfig::quick_demo(2).validate();
    }

    #[test]
    fn protocol_names() {
        assert_eq!(Protocol::Hlsrg.name(), "HLSRG");
        assert_eq!(Protocol::Rlsmp.name(), "RLSMP");
    }

    #[test]
    #[should_panic(expected = "duration must exceed warmup")]
    fn inverted_warmup_rejected() {
        let mut c = SimConfig::paper_2km(10, 0);
        c.warmup = c.duration + SimDuration::from_secs(1);
        c.validate();
    }
}
