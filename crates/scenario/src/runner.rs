//! The simulation runner: one discrete-event loop driving map, mobility, radio,
//! and a location-service protocol, producing a [`RunReport`].
//!
//! Both protocols run through the *same* loop, radio, mobility, and query
//! workload — the only difference between an HLSRG run and an RLSMP run is the
//! protocol object (and that RLSMP, having no infrastructure, gets no RSUs and an
//! empty wired backbone).

use crate::config::{Protocol, SimConfig};
use crate::metrics::{RunReport, TimelinePoint};
use hlsrg::HlsrgProtocol;
use rand::rngs::SmallRng;
use rand::seq::SliceRandom;
use rand::RngExt;
use rlsmp::RlsmpProtocol;
use std::sync::Arc;
use vanet_des::{stream_rng, EpochExecutor, ShardedQueue, SimDuration, SimTime, StreamId};
use vanet_mobility::{
    LightConfig, MapMatcher, MobilityModel, Ns2Trace, TraceReplay, TrafficLights, VehicleId,
};
use vanet_net::{
    conservative_lookahead, Effect, LocationService, NetworkCore, NodeId, NodeRegistry, Transport,
    WiredNetwork,
};
use vanet_roadnet::{generate_grid, Partition, RoadNetwork};
use vanet_trace::{
    Phase, TelemetrySample, TelemetrySampler, TelemetrySnapshot, Tracer, DEFAULT_RING_CAPACITY,
};

#[cfg(feature = "check")]
pub use vanet_check::Violation;

/// Options for a checked run (`check` feature): the location-table staleness
/// slack, the deliberate-corruption self-test, and the reconciliation tracer.
#[cfg(feature = "check")]
#[derive(Debug, Clone)]
pub struct CheckSetup {
    /// Extra slack (m) on the location-table ground-truth bound
    /// (`max_speed · age + pos_slack`), absorbing tick discretization.
    pub pos_slack: f64,
    /// When set, one protocol table entry is deliberately displaced at this
    /// time — the oracle self-test proving table corruption is detected.
    pub corrupt_at: Option<SimTime>,
    /// Ring capacity for a tracer riding along purely for trace/counter
    /// reconciliation (`None` disables that invariant).
    pub trace_ring: Option<usize>,
}

#[cfg(feature = "check")]
impl Default for CheckSetup {
    fn default() -> Self {
        CheckSetup {
            pos_slack: 15.0,
            corrupt_at: None,
            trace_ring: Some(1 << 18),
        }
    }
}

/// What the public entry points thread into the impl: the setup plus an
/// out-slot for the first violation. With the feature off this is `()`, so
/// every call site can pass `Default::default()` and compile either way.
#[cfg(feature = "check")]
type CheckArg<'a> = Option<(&'a CheckSetup, &'a mut Option<Violation>)>;
#[cfg(not(feature = "check"))]
type CheckArg<'a> = ();

/// Live oracle state carried through `drive`.
#[cfg(feature = "check")]
struct CheckState<'a> {
    setup: &'a CheckSetup,
    oracle: vanet_check::Oracle,
    out: &'a mut Option<Violation>,
    corrupted: bool,
}

#[cfg(feature = "check")]
type CheckStateArg<'a> = Option<CheckState<'a>>;
#[cfg(not(feature = "check"))]
type CheckStateArg<'a> = ();

/// Ledger hook: counts the `Deliver` effects about to be scheduled.
#[cfg(feature = "check")]
fn note_fx<P, T>(check: &mut CheckStateArg<'_>, fx: &[Effect<P, T>]) {
    if let Some(cs) = check.as_mut() {
        for f in fx {
            if let Effect::Deliver(e) = f {
                cs.oracle.note_emission(e);
            }
        }
    }
}

/// Master event type of a run.
enum Ev<P, T> {
    /// Advance the mobility model one tick.
    Tick,
    /// A packet delivery fires.
    Deliver(NodeId, Transport<P>),
    /// A protocol timer fires.
    Timer(T),
    /// Launch one location query.
    Query(VehicleId, VehicleId),
    /// Take a timeline sample.
    Sample,
    /// Take a telemetry sample.
    Telemetry,
}

/// The run's executor, picked by shard count: one shard keeps the classic
/// serial [`ShardedQueue`] (the untouched default path); real sharded runs go
/// through the [`EpochExecutor`], inline at one thread or on a worker pool at
/// more. Both produce the identical `(time, global seq)` pop stream, so the
/// choice — like the shard count and the thread count — is invisible in every
/// output byte (pinned by `tests/shard_determinism.rs`).
enum Q<E: Send + 'static> {
    Serial(ShardedQueue<E>),
    Epoch(Box<EpochExecutor<E>>),
}

impl<E: Send + 'static> Q<E> {
    fn schedule_at(&mut self, shard: usize, at: SimTime, event: E) {
        match self {
            Q::Serial(q) => q.schedule_at(shard, at, event),
            Q::Epoch(q) => q.schedule_at(shard, at, event),
        }
    }

    fn schedule_after(&mut self, shard: usize, delay: SimDuration, event: E) {
        match self {
            Q::Serial(q) => q.schedule_after(shard, delay, event),
            Q::Epoch(q) => q.schedule_after(shard, delay, event),
        }
    }

    fn schedule_periodic(
        &mut self,
        shard: usize,
        period: SimDuration,
        end: SimTime,
        inclusive: bool,
        make: impl FnMut() -> E,
    ) {
        match self {
            Q::Serial(q) => q.schedule_periodic(shard, period, end, inclusive, make),
            Q::Epoch(q) => q.schedule_periodic(shard, period, end, inclusive, make),
        }
    }

    fn set_origin(&mut self, origin: Option<usize>) {
        match self {
            Q::Serial(q) => q.set_origin(origin),
            Q::Epoch(q) => q.set_origin(origin),
        }
    }

    /// Only the check-mode end-of-run drain pops unbounded.
    #[cfg(feature = "check")]
    fn pop(&mut self) -> Option<(SimTime, usize, E)> {
        match self {
            Q::Serial(q) => q.pop(),
            Q::Epoch(q) => q.pop(),
        }
    }

    fn pop_if_at_or_before(&mut self, horizon: SimTime) -> Option<(SimTime, usize, E)> {
        match self {
            Q::Serial(q) => q.pop_if_at_or_before(horizon),
            Q::Epoch(q) => q.pop_if_at_or_before(horizon),
        }
    }

    fn len(&self) -> usize {
        match self {
            Q::Serial(q) => q.len(),
            Q::Epoch(q) => q.len(),
        }
    }

    fn epochs(&self) -> u64 {
        match self {
            Q::Serial(q) => q.epochs(),
            Q::Epoch(q) => q.epochs(),
        }
    }

    fn violations(&self) -> u64 {
        match self {
            Q::Serial(q) => q.violations(),
            Q::Epoch(q) => q.violations(),
        }
    }

    fn shard_stats(&self) -> &[vanet_des::ShardStats] {
        match self {
            Q::Serial(q) => q.shard_stats(),
            Q::Epoch(q) => q.shard_stats(),
        }
    }

    fn telemetry(&mut self) -> vanet_des::QueueTelemetry {
        match self {
            Q::Serial(q) => q.telemetry(),
            Q::Epoch(q) => q.telemetry(),
        }
    }
}

/// The run's vehicle source: the native kinematic model or an ns-2 trace replay.
enum MobilitySource {
    Model(MobilityModel),
    Replay(TraceReplay),
}

impl MobilitySource {
    fn snapshot(&mut self, net: &RoadNetwork) -> Vec<vanet_mobility::MoveSample> {
        match self {
            MobilitySource::Model(m) => m.snapshot(net),
            MobilitySource::Replay(r) => r.snapshot(net),
        }
    }

    fn step(
        &mut self,
        net: &RoadNetwork,
        lights: &TrafficLights,
        now: SimTime,
        threads: usize,
    ) -> &[vanet_mobility::MoveSample] {
        match self {
            MobilitySource::Model(m) => m.step_par(net, lights, now, threads),
            MobilitySource::Replay(r) => r.step(net, now),
        }
    }

    fn artery_share(&self, net: &RoadNetwork) -> f64 {
        match self {
            MobilitySource::Model(m) => m.artery_share(net),
            MobilitySource::Replay(r) => {
                if r.is_empty() {
                    return 0.0;
                }
                let matcher = MapMatcher::default();
                let on = (0..r.len() as u32)
                    .filter(|&i| {
                        let m = matcher.match_point(&*net, r.position(VehicleId(i)));
                        net.road(m.road).class == vanet_roadnet::RoadClass::Artery
                    })
                    .count();
                on as f64 / r.len() as f64
            }
        }
    }
}

/// Runs one simulation of `cfg` under the chosen protocol.
// `CheckArg` is `()` without the `check` feature, hence the unit-arg allow.
#[allow(clippy::unit_arg)]
pub fn run_simulation(cfg: &SimConfig, protocol: Protocol) -> RunReport {
    run_simulation_full(cfg, protocol, None, Default::default()).0
}

/// Runs one simulation with a structured event trace attached, returning the
/// report plus the tracer holding the event ring and derived metrics registry.
#[allow(clippy::unit_arg)]
pub fn run_simulation_traced(cfg: &SimConfig, protocol: Protocol) -> (RunReport, Tracer) {
    let tracer = Box::new(Tracer::new(DEFAULT_RING_CAPACITY));
    let (report, tracer, _) = run_simulation_full(cfg, protocol, Some(tracer), Default::default());
    (
        report,
        *tracer.expect("tracer installed before the run survives it"),
    )
}

/// Runs one simulation with the telemetry sampler armed (requires
/// `cfg.telemetry_interval`), optionally with an event trace riding along.
/// Returns the report, the tracer (when requested), and the telemetry time
/// series — one [`TelemetrySample`] per sampling tick plus a final end-of-run
/// sample at `cfg.duration` that reconciles exactly with the report counters.
#[allow(clippy::unit_arg)]
pub fn run_simulation_instrumented(
    cfg: &SimConfig,
    protocol: Protocol,
    with_trace: bool,
) -> (RunReport, Option<Tracer>, Vec<TelemetrySample>) {
    let tracer = with_trace.then(|| Box::new(Tracer::new(DEFAULT_RING_CAPACITY)));
    let (report, tracer, samples) = run_simulation_full(cfg, protocol, tracer, Default::default());
    (report, tracer.map(|t| *t), samples)
}

/// Runs one simulation with the invariant oracle armed (`check` feature),
/// returning the report plus the first violated invariant, if any. A violated
/// run still completes — the violation is surfaced, not panicked, so the
/// fuzzer can shrink the configuration that caused it.
#[cfg(feature = "check")]
pub fn run_simulation_checked(
    cfg: &SimConfig,
    protocol: Protocol,
    setup: &CheckSetup,
) -> (RunReport, Option<Violation>) {
    let tracer = setup.trace_ring.map(|cap| Box::new(Tracer::new(cap)));
    let mut violation = None;
    let (report, _, _) = run_simulation_full(cfg, protocol, tracer, Some((setup, &mut violation)));
    (report, violation)
}

fn run_simulation_full(
    cfg: &SimConfig,
    protocol: Protocol,
    tracer: Option<Box<Tracer>>,
    check: CheckArg<'_>,
) -> (RunReport, Option<Box<Tracer>>, Vec<TelemetrySample>) {
    let mut map_rng = stream_rng(cfg.seed, StreamId::MapGen);
    let net = match &cfg.map_text {
        Some(text) => vanet_roadnet::from_map_text(text).expect("invalid map_text"),
        None => generate_grid(&cfg.map, &mut map_rng),
    };
    let partition = Arc::new(Partition::build(&net, cfg.l1_size));

    let lights = TrafficLights::new(&net, LightConfig::default());
    let mut workload_rng = stream_rng(cfg.seed, StreamId::Workload);
    let (model, cfg_owned);
    let cfg: &SimConfig = match &cfg.trace_ns2 {
        Some(text) => {
            let trace = Ns2Trace::from_ns2_text(text).expect("invalid trace_ns2");
            let n = trace.initial.len();
            model = MobilitySource::Replay(TraceReplay::new(
                trace,
                MapMatcher::default(),
                cfg.mobility.tick,
            ));
            cfg_owned = SimConfig {
                vehicles: n,
                ..cfg.clone()
            };
            &cfg_owned
        }
        None => {
            model = MobilitySource::Model(MobilityModel::new(
                &net,
                cfg.mobility,
                cfg.vehicles,
                &mut workload_rng,
            ));
            cfg
        }
    };
    cfg.validate();
    let mut model = model;

    // Node registry: vehicles always; RSUs only for the protocol that uses them.
    // Pre-sized from the scenario config so registration never rehashes.
    let node_count = cfg.vehicles
        + match protocol {
            Protocol::Hlsrg => partition.rsus().len(),
            Protocol::Rlsmp => 0,
        };
    let mut registry = NodeRegistry::with_capacity(cfg.radio.range, node_count);
    for s in model.snapshot(&net) {
        registry.add_vehicle(s.id, s.new_pos);
    }
    let wired = match protocol {
        Protocol::Hlsrg => {
            for site in partition.rsus() {
                registry.add_rsu(site.id, site.pos);
            }
            if cfg.wired_backbone {
                WiredNetwork::from_partition(&partition, SimDuration::from_millis(2))
            } else {
                WiredNetwork::empty()
            }
        }
        Protocol::Rlsmp => WiredNetwork::empty(),
    };
    let mut core = NetworkCore::new(
        registry,
        cfg.radio,
        wired,
        stream_rng(cfg.seed, StreamId::Radio),
    );
    if let Some(t) = tracer {
        core.set_tracer(t);
    }

    // Static partition geometry is checked once, before any event fires; the
    // RSU registration cross-check only applies when RSUs exist as nodes.
    #[cfg(feature = "check")]
    let check: CheckStateArg<'_> = check.map(|(setup, out)| {
        let mut oracle = vanet_check::Oracle::new();
        let rsu_positions: Option<Vec<vanet_geo::Point>> = match protocol {
            Protocol::Hlsrg => Some(
                core.registry
                    .rsu_nodes()
                    .iter()
                    .map(|&n| core.registry.pos(n))
                    .collect(),
            ),
            Protocol::Rlsmp => None,
        };
        oracle.check_partition(&partition, rsu_positions.as_deref());
        CheckState {
            setup,
            oracle,
            out,
            corrupted: false,
        }
    });

    match protocol {
        Protocol::Hlsrg => {
            let mut proto = HlsrgProtocol::new(
                &net,
                Arc::clone(&partition),
                cfg.hlsrg,
                stream_rng(cfg.seed, StreamId::Protocol),
            );
            proto.reserve_vehicles(cfg.vehicles);
            let deadline = cfg.hlsrg.query_deadline;
            drive(
                cfg, protocol, net, &partition, lights, model, core, proto, deadline, check,
            )
        }
        Protocol::Rlsmp => {
            let mut proto = RlsmpProtocol::new(
                net.bbox(),
                cfg.rlsmp,
                stream_rng(cfg.seed, StreamId::Protocol),
            );
            proto.reserve_vehicles(cfg.vehicles);
            let deadline = cfg.rlsmp.query_deadline;
            drive(
                cfg, protocol, net, &partition, lights, model, core, proto, deadline, check,
            )
        }
    }
}

/// Draws the paper's query workload: `fraction` of vehicles each query one random
/// other vehicle, at a uniform time in the query window.
fn query_schedule(
    cfg: &SimConfig,
    deadline: SimDuration,
    rng: &mut SmallRng,
) -> Vec<(SimTime, VehicleId, VehicleId)> {
    if let Some(qs) = &cfg.explicit_queries {
        return qs.clone();
    }
    let n = cfg.vehicles;
    let k = ((n as f64 * cfg.query_fraction).round() as usize).min(n);
    let mut ids: Vec<u32> = (0..n as u32).collect();
    ids.shuffle(rng);
    let sources: Vec<u32> = ids[..k].to_vec();
    ids.shuffle(rng);
    let dsts: Vec<u32> = ids[..k].to_vec();
    let window_start = cfg.warmup;
    // Leave the deadline's worth of room so every query can still complete.
    let window_end_us = cfg
        .duration
        .as_micros()
        .saturating_sub(deadline.as_micros())
        .max(window_start.as_micros() + 1);
    let mut out = Vec::with_capacity(k);
    for (i, &s) in sources.iter().enumerate() {
        let mut d = dsts[i];
        if d == s {
            // Never query yourself; shift to any other vehicle.
            d = (d + 1) % n as u32;
        }
        let t = rng.random_range(window_start.as_micros()..window_end_us);
        out.push((SimTime::from_micros(t), VehicleId(s), VehicleId(d)));
    }
    out
}

/// The event loop shared by both protocols.
#[allow(clippy::too_many_arguments)]
fn drive<L: LocationService>(
    cfg: &SimConfig,
    protocol: Protocol,
    net: RoadNetwork,
    partition: &Partition,
    lights: TrafficLights,
    mut model: MobilitySource,
    mut core: NetworkCore,
    mut proto: L,
    deadline: SimDuration,
    check: CheckStateArg<'_>,
) -> (RunReport, Option<Box<Tracer>>, Vec<TelemetrySample>) {
    #[cfg(feature = "check")]
    let mut check = check;
    #[cfg(not(feature = "check"))]
    let () = check;
    // Conservative-sync lookahead, derived for *every* shard count so the
    // barrier-epoch telemetry is shard-invariant. A degenerate config only
    // matters when the run is actually sharded — a single shard needs no
    // cross-shard guarantee and falls back to zero.
    let shards = cfg.shards;
    let wired_delay = (!core.wired.is_empty()).then_some(core.wired.link_delay);
    let lookahead = match conservative_lookahead(&cfg.radio, wired_delay, cfg.mobility.max_speed) {
        Ok(la) => la,
        Err(e) => {
            assert!(shards == 1, "cannot shard this run: {e}");
            SimDuration::ZERO
        }
    };
    // Pre-size the queue from the config: every mobility tick is scheduled up
    // front, and in-flight radio traffic scales with the fleet (~32 pending
    // events per vehicle covers the observed peaks with headroom).
    let tick_count = (cfg.duration.as_micros() / cfg.mobility.tick.as_micros().max(1)) as usize;
    // Never run more epoch workers than the host has cores: the threaded
    // backend's barrier hand-off is pure overhead when workers time-share one
    // core (measured 2686 ms vs 1554 ms on the single-core large tier).
    // Determinism is unaffected — the pop stream is thread-count-invariant —
    // so clamping here changes wall clock only.
    let hw = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(usize::MAX);
    let threads = cfg.threads.clamp(1, shards).min(hw).max(1);
    let deliveries_cap = cfg.vehicles * 32;
    // Control-plane events (ticks, queries, samplers) all live on shard 0, on
    // top of its delivery share — size it for both so smoke-scale sharded
    // runs stop re-growing their queues mid-run.
    let control_cap = tick_count + cfg.vehicles / 8 + 64;
    let mut queue: Q<Ev<L::Payload, L::Timer>> = if shards == 1 && !lookahead.is_zero() {
        // One shard still routes through the *inline* epoch executor: its
        // drain-batched pops cost O(log k) per event under same-instant
        // bursts, where the serial queue's scan-per-pop path goes quadratic
        // (the 85 s large-tier hlsrg_shards1 pathology). The pop stream and
        // sync ledger are identical by construction, so every report,
        // golden, trace, and telemetry byte is unchanged. The classic serial
        // queue remains for zero-lookahead configs, which the epoch
        // machinery (lookahead-paced by design) rejects.
        Q::Epoch(Box::new(
            EpochExecutor::with_shard_capacities_and_horizon(
                1,
                lookahead,
                &[tick_count + deliveries_cap + 64],
                cfg.duration,
            )
            .unwrap_or_else(|e| panic!("cannot shard this run: {e}")),
        ))
    } else if shards == 1 {
        Q::Serial(
            ShardedQueue::with_capacity_and_horizon(
                1,
                lookahead,
                tick_count + deliveries_cap + 64,
                cfg.duration,
            )
            .unwrap_or_else(|e| panic!("cannot shard this run: {e}")),
        )
    } else {
        let mut caps = vec![(deliveries_cap / shards).max(16); shards];
        caps[0] += control_cap;
        Q::Epoch(Box::new(
            EpochExecutor::with_shard_capacities_and_horizon(
                threads,
                lookahead,
                &caps,
                cfg.duration,
            )
            .unwrap_or_else(|e| panic!("cannot shard this run: {e}")),
        ))
    };
    // Shard routing: a delivery belongs to the shard owning the recipient's
    // current L3 region. Control events (ticks, queries, sampling) live on
    // shard 0; protocol timers stay on the shard that armed them.
    let l3_count = partition.l3_count();
    let shard_of =
        |reg: &NodeRegistry, to: NodeId| partition.l3_of(reg.pos(to)).0 as usize % shards;
    let mut query_rng = stream_rng(cfg.seed, StreamId::Queries);

    // Mobility ticks across the whole run.
    let tick = cfg.mobility.tick;
    let mut t = tick;
    while t <= cfg.duration + SimDuration::ZERO {
        queue.schedule_at(0, SimTime::ZERO + t, Ev::Tick);
        t += tick;
    }
    // The query workload.
    for (at, src, dst) in query_schedule(cfg, deadline, &mut query_rng) {
        queue.schedule_at(0, at, Ev::Query(src, dst));
    }
    // Timeline sampling.
    if let Some(period) = cfg.timeline_period {
        let mut t = period;
        while t <= cfg.duration {
            queue.schedule_at(0, SimTime::ZERO + t, Ev::Sample);
            t += period;
        }
    }
    let mut timeline: Vec<TimelinePoint> = Vec::new();
    // Telemetry sampling: ordinary DES events at every interval multiple
    // strictly before the horizon (the final sample is taken after the loop, at
    // the horizon itself, so it sees the complete run). Sim-time scheduling is
    // what makes the stream seed-reproducible.
    let mut telemetry = cfg.telemetry_interval.map(TelemetrySampler::new);
    if let Some(sampler) = &telemetry {
        queue.schedule_periodic(
            0,
            sampler.interval(),
            SimTime::ZERO + cfg.duration,
            false,
            || Ev::Telemetry,
        );
    }
    // Completion cursor over the query log: which records have already been fed
    // into the sliding latency window.
    let mut lat_seen: Vec<bool> = Vec::new();
    // Protocol start-of-world timers, then initial registration of every vehicle.
    let fx = proto.on_start(&mut core);
    #[cfg(feature = "check")]
    note_fx(&mut check, &fx);
    apply(&mut queue, fx, &core.registry, &shard_of, 0);
    let joins = model.snapshot(&net);
    // Per-vehicle L3 region, tracked incrementally: the source of the
    // migration count and (under `check`) the conservation audit.
    let mut region_of: Vec<u32> = joins.iter().map(|s| partition.l3_of(s.new_pos).0).collect();
    let mut shard_migrations = 0u64;
    let mut boundary_events = 0u64;
    // Cumulative delivery events attributed to each L3 region (recipient's
    // region at pop time) — the telemetry shard-balance series.
    let mut region_events = vec![0u64; l3_count];
    let fx = proto.on_join(&mut core, &joins, SimTime::ZERO);
    #[cfg(feature = "check")]
    note_fx(&mut check, &fx);
    apply(&mut queue, fx, &core.registry, &shard_of, 0);

    // The explicit event loop (same stopping rule as `vanet_des::run_until`:
    // process while the head event's time is `<= horizon`), so the queue pop,
    // the mobility step, and radio delivery can each sit inside a timing span.
    let horizon = SimTime::ZERO + cfg.duration;
    let mut events_processed = 0u64;
    let mut peak_queue_depth = queue.len();
    loop {
        peak_queue_depth = peak_queue_depth.max(queue.len());
        let popped = core
            .timings
            .time(Phase::EventPop, || queue.pop_if_at_or_before(horizon));
        let Some((now, popped_shard, ev)) = popped else {
            break;
        };
        events_processed += 1;
        core.set_trace_now(now);
        match ev {
            Ev::Tick => {
                let samples = core.timings.time(Phase::MobilityStep, || {
                    model.step(&net, &lights, now, threads)
                });
                // One batched pass over the delta stream: only vehicles that
                // crossed a grid cell touch spatial-index buckets (identical
                // mutation order to the old per-sample set_pos loop).
                core.registry
                    .apply_vehicle_moves(samples.iter().map(|s| (s.id, s.new_pos)));
                for s in samples {
                    let r = partition.l3_of(s.new_pos).0;
                    let slot = &mut region_of[s.id.0 as usize];
                    if *slot != r {
                        *slot = r;
                        shard_migrations += 1;
                    }
                }
                let fx = proto.on_move(&mut core, samples, now);
                #[cfg(feature = "check")]
                note_fx(&mut check, &fx);
                apply(&mut queue, fx, &core.registry, &shard_of, 0);
                // Per-tick protocol audit: location-table soundness against the
                // registry's ground truth (plus the deliberate-corruption
                // self-test when armed).
                #[cfg(feature = "check")]
                if let Some(cs) = check.as_mut() {
                    if let Some(at) = cs.setup.corrupt_at {
                        if !cs.corrupted && now >= at {
                            cs.corrupted = true;
                            proto.corrupt_location_tables();
                        }
                    }
                    if let Err(detail) = proto.check_invariants(
                        &core,
                        now,
                        cfg.mobility.max_speed,
                        cs.setup.pos_slack,
                    ) {
                        cs.oracle.report("table-soundness", detail);
                    }
                    // Shard-handoff conservation: the incrementally-tracked
                    // region map must agree with ground truth and account for
                    // the whole fleet (no vehicle lost or duplicated at an
                    // L3 boundary crossing).
                    let mut fresh = vec![0u64; l3_count];
                    let mut drift = 0usize;
                    for (v, &r) in region_of.iter().enumerate() {
                        let node = core.registry.node_of_vehicle(VehicleId(v as u32));
                        let truth = partition.l3_of(core.registry.pos(node)).0;
                        if truth != r {
                            drift += 1;
                        }
                        if let Some(slot) = fresh.get_mut(r as usize) {
                            *slot += 1;
                        }
                    }
                    let total: u64 = fresh.iter().sum();
                    if drift > 0 || total != region_of.len() as u64 {
                        cs.oracle.report(
                            "shard-conservation",
                            format!(
                                "at {now}: {drift} vehicles with stale region \
                                 tracking, {total}/{} accounted for",
                                region_of.len()
                            ),
                        );
                    }
                }
            }
            Ev::Deliver(to, transport) => {
                // The recipient may have migrated since the event was routed:
                // its *current* shard is the conservative-sync origin of any
                // follow-up it emits (a popped-shard mismatch is a boundary
                // handoff, not a violation).
                let current = shard_of(&core.registry, to);
                if current != popped_shard {
                    boundary_events += 1;
                }
                let region = partition.l3_of(core.registry.pos(to)).0 as usize;
                if let Some(slot) = region_events.get_mut(region) {
                    *slot += 1;
                }
                queue.set_origin(Some(current));
                #[cfg(feature = "check")]
                let pending = check
                    .as_mut()
                    .map(|cs| cs.oracle.pre_deliver(&transport, &core.counters));
                // `handle_deliver_step` times itself under `Phase::RadioDelivery`;
                // the at-most-one follow-up keeps this arm allocation-free.
                let (arrived, more) = core.handle_deliver_step(to, transport);
                // `post_deliver` ledgers the followup emissions itself.
                #[cfg(feature = "check")]
                if let Some(cs) = check.as_mut() {
                    cs.oracle.post_deliver(
                        &core,
                        to,
                        pending.expect("pre_deliver snapshot exists"),
                        arrived.is_some(),
                        more.as_slice(),
                    );
                }
                if let Some(e) = more {
                    // Same routing rule as `apply`: zero-delay steps are local.
                    queue.schedule_after(
                        if e.delay.is_zero() {
                            current
                        } else {
                            shard_of(&core.registry, e.to)
                        },
                        e.delay,
                        Ev::Deliver(e.to, e.transport),
                    );
                }
                if let Some((class, payload)) = arrived {
                    let fx = proto.on_packet(&mut core, to, class, payload, now);
                    #[cfg(feature = "check")]
                    note_fx(&mut check, &fx);
                    apply(&mut queue, fx, &core.registry, &shard_of, current);
                }
                queue.set_origin(None);
            }
            Ev::Timer(key) => {
                // A timer is node-local state on whatever shard armed it, so
                // its effects originate from the shard it popped on.
                queue.set_origin(Some(popped_shard));
                let fx = proto.on_timer(&mut core, key, now);
                #[cfg(feature = "check")]
                note_fx(&mut check, &fx);
                apply(&mut queue, fx, &core.registry, &shard_of, popped_shard);
                queue.set_origin(None);
            }
            Ev::Query(src, dst) => {
                let fx = proto.launch_query(&mut core, src, dst, now);
                #[cfg(feature = "check")]
                note_fx(&mut check, &fx);
                apply(&mut queue, fx, &core.registry, &shard_of, 0);
            }
            Ev::Sample => {
                let completed = proto
                    .query_log()
                    .records()
                    .iter()
                    .filter(|r| r.completed.is_some())
                    .count();
                timeline.push(TimelinePoint {
                    t: now.as_secs_f64(),
                    update_packets: core
                        .counters
                        .origination_count(vanet_net::PacketClass::Update),
                    query_radio_tx: core.counters.radio(vanet_net::PacketClass::Query),
                    queries_completed: completed,
                    diagnostics: proto.diagnostics(),
                });
            }
            Ev::Telemetry => {
                if let Some(sampler) = telemetry.as_mut() {
                    telemetry_tick(
                        sampler,
                        &mut lat_seen,
                        now,
                        queue.len() as u64,
                        events_processed,
                        queue.epochs(),
                        &region_events,
                        &core,
                        &proto,
                        partition,
                        cfg.vehicles,
                    );
                }
            }
        }
    }
    // The final telemetry sample, at the horizon with the loop fully drained:
    // its cumulative counters equal the run's NetCounters exactly.
    if let Some(sampler) = telemetry.as_mut() {
        telemetry_tick(
            sampler,
            &mut lat_seen,
            horizon,
            queue.len() as u64,
            events_processed,
            queue.epochs(),
            &region_events,
            &core,
            &proto,
            partition,
            cfg.vehicles,
        );
    }

    // Queue self-telemetry and the shard bookkeeping, snapshotted before the
    // check-mode drain below can perturb the counters.
    let queue_stats = queue.telemetry();
    let shard_counts: Vec<(u64, u64)> = queue
        .shard_stats()
        .iter()
        .map(|s| (s.scheduled, s.popped))
        .collect();
    let lookahead_violations = queue.violations();
    let barrier_epochs = queue.epochs();
    // End of run: packet conservation over the drained queue, then
    // trace/counter reconciliation if a complete trace rode along.
    #[cfg(feature = "check")]
    if let Some(mut cs) = check.take() {
        let mut leftover = [0u64; 4];
        while let Some((_, _, ev)) = queue.pop() {
            if let Ev::Deliver(_, transport) = ev {
                leftover[vanet_check::class_ix(&transport)] += 1;
            }
        }
        cs.oracle.end_of_run(leftover);
        cs.oracle.check_counter_reconciliation(&core);
        *cs.out = cs.oracle.into_violation();
    }

    let mut report = RunReport::from_counters(
        protocol.name(),
        cfg.seed,
        cfg.vehicles,
        net.bbox().width(),
        &core.counters,
    );
    let log = proto.query_log();
    report.queries_launched = log.launched_count();
    report.queries_succeeded = log.success_count(deadline);
    report.success_rate = log.success_rate(deadline);
    report.latency = log.latency_stats(deadline);
    let hist = log.latency_histogram(deadline);
    if hist.count() > 0 {
        report.latency_p95 = hist.quantile(0.95);
    }
    report.artery_share = model.artery_share(&net);
    report.diagnostics = proto.diagnostics();
    report.data_delivered = report
        .diagnostics
        .iter()
        .find(|(k, _)| *k == "data_delivered")
        .map(|&(_, v)| v as u64)
        .unwrap_or(0);
    report.timeline = timeline;
    report.phase_timings = core.timings.summary().into_iter().map(Into::into).collect();
    report.events_processed = events_processed;
    report.peak_queue_depth = peak_queue_depth;
    report.queue_resizes = queue_stats.resizes;
    report.queue_max_scan = queue_stats.max_pop_scan;
    report.shard_counts = shard_counts;
    report.boundary_events = boundary_events;
    report.shard_migrations = shard_migrations;
    report.lookahead_violations = lookahead_violations;
    report.barrier_epochs = barrier_epochs;
    let samples = telemetry.map(|s| s.into_samples()).unwrap_or_default();
    (report, core.take_tracer(), samples)
}

/// One telemetry tick: feed newly completed queries into the sliding latency
/// window, assemble the instantaneous snapshot, and record the sample.
#[allow(clippy::too_many_arguments)]
fn telemetry_tick<L: LocationService>(
    sampler: &mut TelemetrySampler,
    lat_seen: &mut Vec<bool>,
    now: SimTime,
    queue_depth: u64,
    events: u64,
    barriers: u64,
    region_events: &[u64],
    core: &NetworkCore,
    proto: &L,
    partition: &Partition,
    vehicles: usize,
) {
    use vanet_net::PacketClass;
    let records = proto.query_log().records();
    lat_seen.resize(records.len(), false);
    let mut inflight = 0u64;
    // Queries complete in arbitrary record order between two ticks; the window
    // wants its observations time-sorted, so batch and sort before feeding.
    let mut fresh: Vec<(SimTime, f64)> = Vec::new();
    for (i, r) in records.iter().enumerate() {
        match r.completed {
            Some(done) => {
                if !lat_seen[i] {
                    lat_seen[i] = true;
                    fresh.push((done, done.saturating_since(r.launched).as_secs_f64()));
                }
            }
            None => inflight += 1,
        }
    }
    fresh.sort_by_key(|&(done, _)| done);
    for (done, latency) in fresh {
        sampler.note_latency(done, latency);
    }
    // Per-L3-region load: vehicles by current position, table entries by the
    // protocol's homing (zero for protocols without a region hierarchy), and
    // the cumulative delivery events the harness attributed to the region —
    // the series a dashboard folds by `region % shards` for shard balance.
    let mut regions = vec![(0u64, 0u64, 0u64); partition.l3_count()];
    for v in 0..vehicles {
        let node = core.registry.node_of_vehicle(VehicleId(v as u32));
        let r = partition.l3_of(core.registry.pos(node)).0 as usize;
        if let Some(slot) = regions.get_mut(r) {
            slot.0 += 1;
        }
    }
    let mut entries = vec![0u64; partition.l3_count()];
    proto.region_entries(&mut entries);
    for (slot, e) in regions.iter_mut().zip(&entries) {
        slot.1 = *e;
    }
    for (slot, ev) in regions.iter_mut().zip(region_events) {
        slot.2 = *ev;
    }
    let c = &core.counters;
    let snap = TelemetrySnapshot {
        queue_depth,
        events,
        inflight_queries: inflight,
        table_entries: proto.table_sizes(),
        updates: c.origination_count(PacketClass::Update),
        update_radio: c.radio(PacketClass::Update),
        query_radio: c.radio(PacketClass::Query),
        query_wired: c.wired(PacketClass::Query),
        drops: c.drop_matrix(),
        barriers,
        regions,
    };
    sampler.sample(now, &snap);
}

/// Schedules a batch of protocol effects: deliveries to the shard owning the
/// recipient's current region, timers to the shard that emitted them.
///
/// Zero-delay deliveries are the exception: they are synchronous local
/// computation steps (e.g. a GPSR packet arriving at its own origin), not
/// network hops, so they stay on the emitting shard. Routing them by recipient
/// region would violate the lookahead contract whenever the emitter's shard
/// went stale (a timer armed before its vehicle migrated), and the merge is
/// routing-invariant anyway (see the `shard` module's proptests).
fn apply<P: Send + 'static, T: Send + 'static>(
    queue: &mut Q<Ev<P, T>>,
    fx: Vec<Effect<P, T>>,
    registry: &NodeRegistry,
    shard_of: &impl Fn(&NodeRegistry, NodeId) -> usize,
    origin_shard: usize,
) {
    for f in fx {
        match f {
            Effect::Deliver(e) => queue.schedule_after(
                if e.delay.is_zero() {
                    origin_shard
                } else {
                    shard_of(registry, e.to)
                },
                e.delay,
                Ev::Deliver(e.to, e.transport),
            ),
            Effect::Timer { delay, key } => {
                queue.schedule_after(origin_shard, delay, Ev::Timer(key))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_demo_runs_both_protocols() {
        let cfg = SimConfig::quick_demo(7);
        let h = run_simulation(&cfg, Protocol::Hlsrg);
        let r = run_simulation(&cfg, Protocol::Rlsmp);
        assert_eq!(h.protocol, "HLSRG");
        assert_eq!(r.protocol, "RLSMP");
        assert!(h.queries_launched > 0);
        assert_eq!(h.queries_launched, r.queries_launched, "same workload");
        assert!(h.update_packets > 0);
        assert!(r.update_packets > 0);
    }

    #[test]
    fn identical_seeds_identical_reports() {
        let cfg = SimConfig::quick_demo(11);
        let a = run_simulation(&cfg, Protocol::Hlsrg);
        let b = run_simulation(&cfg, Protocol::Hlsrg);
        assert_eq!(a.update_packets, b.update_packets);
        assert_eq!(a.query_radio_tx, b.query_radio_tx);
        assert_eq!(a.queries_succeeded, b.queries_succeeded);
    }

    #[test]
    fn different_seeds_differ() {
        let a = run_simulation(&SimConfig::quick_demo(1), Protocol::Hlsrg);
        let b = run_simulation(&SimConfig::quick_demo(2), Protocol::Hlsrg);
        // Same config, different randomness: update counts should not coincide
        // exactly (they are sums of hundreds of Bernoulli-ish events).
        assert_ne!(
            (a.update_packets, a.query_radio_tx),
            (b.update_packets, b.query_radio_tx)
        );
    }

    #[test]
    fn query_schedule_respects_window_and_self_exclusion() {
        let cfg = SimConfig::paper_2km(100, 3);
        let mut rng = stream_rng(3, StreamId::Queries);
        let sched = query_schedule(&cfg, SimDuration::from_secs(30), &mut rng);
        assert_eq!(sched.len(), 10);
        for &(t, s, d) in &sched {
            assert!(t >= SimTime::ZERO + cfg.warmup);
            assert!(t <= SimTime::ZERO + cfg.duration);
            assert_ne!(s, d);
        }
    }

    #[test]
    fn traced_run_reconciles_jsonl_with_report_counters() {
        // The tentpole acceptance check, end to end: serialize the trace to
        // JSONL, parse it back, rebuild the metrics registry from the parsed
        // events, and require exact agreement with the RunReport counters.
        for protocol in [Protocol::Hlsrg, Protocol::Rlsmp] {
            let cfg = SimConfig::quick_demo(7);
            let (report, tracer) = run_simulation_traced(&cfg, protocol);
            assert_eq!(tracer.overwritten(), 0, "ring too small for quick_demo");
            let events = vanet_trace::parse_jsonl(&tracer.to_jsonl());
            assert_eq!(events.len(), tracer.len(), "JSONL round trip lost events");
            let reg = vanet_trace::registry_from_events(&events);
            assert_eq!(reg.originated(0), report.update_packets);
            assert_eq!(reg.radio(0), report.update_radio_tx);
            assert_eq!(reg.radio(1), report.collection_radio_tx);
            assert_eq!(reg.radio(2), report.query_radio_tx);
            assert_eq!(reg.wired(1), report.collection_wired_tx);
            assert_eq!(reg.wired(2), report.query_wired_tx);
            for c in 0..4u8 {
                assert_eq!(reg.drops(c), report.drops[c as usize], "class {c} drops");
            }
            assert_eq!(reg.drops_by_cause(), report.drop_breakdown);
            let (launched, answered, _) = reg.query_counts();
            assert_eq!(launched as usize, report.queries_launched);
            assert!(answered as usize <= report.queries_launched);
            // The untraced run of the same config is byte-identical in counters:
            // tracing must not perturb the simulation.
            let plain = run_simulation(&cfg, protocol);
            assert_eq!(plain.update_packets, report.update_packets);
            assert_eq!(plain.query_radio_tx, report.query_radio_tx);
            assert_eq!(plain.queries_succeeded, report.queries_succeeded);
        }
    }

    /// Armed oracle on a healthy scenario: no violation, and the oracle must
    /// not perturb the simulation (identical counters to a plain run).
    #[cfg(feature = "check")]
    #[test]
    fn checked_run_is_clean_and_matches_plain_counters() {
        for protocol in [Protocol::Hlsrg, Protocol::Rlsmp] {
            let cfg = SimConfig::quick_demo(7);
            let (report, violation) =
                run_simulation_checked(&cfg, protocol, &CheckSetup::default());
            assert!(violation.is_none(), "oracle flagged: {violation:?}");
            let plain = run_simulation(&cfg, protocol);
            assert_eq!(plain.update_packets, report.update_packets);
            assert_eq!(plain.update_radio_tx, report.update_radio_tx);
            assert_eq!(plain.query_radio_tx, report.query_radio_tx);
            assert_eq!(plain.queries_succeeded, report.queries_succeeded);
            assert_eq!(plain.drops, report.drops);
        }
    }

    /// The corruption hook flips exactly the invariant it is supposed to flip,
    /// at the runner seam (the full fuzzer-side demo lives in `fuzz::tests`).
    #[cfg(feature = "check")]
    #[test]
    fn corruption_hook_trips_table_soundness() {
        for protocol in [Protocol::Hlsrg, Protocol::Rlsmp] {
            let cfg = SimConfig::quick_demo(7);
            let setup = CheckSetup {
                corrupt_at: Some(SimTime::ZERO + cfg.warmup),
                ..CheckSetup::default()
            };
            let (_, violation) = run_simulation_checked(&cfg, protocol, &setup);
            let v = violation.expect("corruption went undetected");
            assert_eq!(v.invariant, "table-soundness", "{}", v.detail);
        }
    }

    #[test]
    fn telemetry_stream_is_seed_reproducible_and_reconciles() {
        for protocol in [Protocol::Hlsrg, Protocol::Rlsmp] {
            let cfg = SimConfig {
                telemetry_interval: Some(SimDuration::from_secs(10)),
                ..SimConfig::quick_demo(7)
            };
            let (report, _, samples) = run_simulation_instrumented(&cfg, protocol, false);
            // 90 s run, 10 s interval: ticks at 10..=80 plus the final sample.
            assert_eq!(samples.len(), 9, "{protocol:?}");
            let jsonl = vanet_trace::telemetry_to_jsonl(&samples);

            // Byte-identical across repeated same-seed runs.
            let (_, _, again) = run_simulation_instrumented(&cfg, protocol, false);
            assert_eq!(jsonl, vanet_trace::telemetry_to_jsonl(&again));
            // And the stream round-trips through its own parser.
            assert_eq!(vanet_trace::parse_telemetry_jsonl(&jsonl), samples);

            // The final tick reconciles exactly with the run's NetCounters as
            // surfaced in the report.
            let last = samples.last().unwrap();
            assert_eq!(last.t, SimTime::ZERO + cfg.duration);
            assert_eq!(last.updates, report.update_packets);
            assert_eq!(last.update_radio, report.update_radio_tx);
            assert_eq!(last.query_radio, report.query_radio_tx);
            assert_eq!(last.query_wired, report.query_wired_tx);
            let drop_totals: [u64; 4] = core::array::from_fn(|c| last.drops[c].iter().sum::<u64>());
            assert_eq!(drop_totals, report.drops);
            // Cumulative series never decrease.
            for pair in samples.windows(2) {
                assert!(pair[1].events >= pair[0].events);
                assert!(pair[1].updates >= pair[0].updates);
                assert!(pair[1].t > pair[0].t);
            }
            // Region breakdown: vehicle totals account for the whole fleet
            // (HLSRG also homes table entries; RLSMP has no region hierarchy).
            let fleet: u64 = last.regions.iter().map(|&(v, _, _)| v).sum();
            assert_eq!(fleet as usize, cfg.vehicles, "{protocol:?}");
            if protocol == Protocol::Hlsrg {
                let entries: u64 = last.regions.iter().map(|&(_, e, _)| e).sum();
                let tables: u64 = last.table_entries.iter().sum();
                assert_eq!(entries, tables, "region homing covers every table");
            }

            // Telemetry must not perturb the simulation: identical counters to
            // a plain run of the same config sans sampler.
            let plain_cfg = SimConfig {
                telemetry_interval: None,
                ..cfg.clone()
            };
            let plain = run_simulation(&plain_cfg, protocol);
            assert_eq!(plain.update_packets, report.update_packets);
            assert_eq!(plain.query_radio_tx, report.query_radio_tx);
            assert_eq!(plain.queries_succeeded, report.queries_succeeded);
            assert_eq!(plain.drops, report.drops);
        }
    }

    #[test]
    fn hlsrg_sends_fewer_updates_than_rlsmp() {
        // The headline claim, checked on a small scenario (full-size check lives
        // in the figure generators and integration tests).
        let cfg = SimConfig::quick_demo(5);
        let h = run_simulation(&cfg, Protocol::Hlsrg);
        let r = run_simulation(&cfg, Protocol::Rlsmp);
        assert!(
            (h.update_packets as f64) < 0.8 * r.update_packets as f64,
            "HLSRG {} vs RLSMP {}",
            h.update_packets,
            r.update_packets
        );
    }
}
