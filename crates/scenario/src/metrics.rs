//! Run-level metrics: everything the paper's four figures are computed from.

use serde::Serialize;
use vanet_des::Welford;
use vanet_net::{NetCounters, PacketClass};

/// The measured outcome of one simulation run.
#[derive(Debug, Clone, Serialize)]
pub struct RunReport {
    /// Protocol name ("HLSRG" / "RLSMP").
    pub protocol: &'static str,
    /// Master seed of the run.
    pub seed: u64,
    /// Fleet size.
    pub vehicles: usize,
    /// Map side length in meters.
    pub map_size: f64,
    /// **Fig 3.2**: location update packets originated by vehicles.
    pub update_packets: u64,
    /// Radio transmissions carrying updates (equals `update_packets` for one-hop
    /// broadcasts).
    pub update_radio_tx: u64,
    /// Collection/aggregation traffic: radio transmissions.
    pub collection_radio_tx: u64,
    /// Collection/aggregation traffic: wired link traversals.
    pub collection_wired_tx: u64,
    /// **Fig 3.3**: query-related radio transmissions (requests, notifications,
    /// ACKs — every hop). Wired traversals are *not* packets on the air, which is
    /// precisely the saving RSUs buy.
    pub query_radio_tx: u64,
    /// Query-related wired link traversals.
    pub query_wired_tx: u64,
    /// Queries launched.
    pub queries_launched: usize,
    /// Queries answered within the deadline.
    pub queries_succeeded: usize,
    /// Post-discovery data packets sent via GPSR (0 unless sessions are enabled).
    pub data_sent: u64,
    /// Post-discovery data packets that reached the destination.
    pub data_delivered: u64,
    /// **Fig 3.4**: success fraction.
    pub success_rate: f64,
    /// **Fig 3.5**: latency stats (seconds) over successful queries.
    pub latency: Welford,
    /// 95th-percentile latency in seconds (linearly interpolated within the
    /// histogram bucket), if any succeeded.
    pub latency_p95: Option<f64>,
    /// In-flight drops per class `[update, collection, query, data]`.
    pub drops: [u64; 4],
    /// Drop causes `[ttl, isolated, no_progress, loss, no_route]` (diagnostics).
    pub drop_breakdown: [u64; 5],
    /// Full drop matrix `[class][cause]`, classes `[update, collection, query,
    /// data]` × causes `[ttl, isolated, no_progress, loss, no_route]`.
    /// `drop_breakdown` is this matrix's column sums.
    pub drop_matrix: [[u64; 5]; 4],
    /// Cumulative channel airtime per class `[update, collection, query, data]`
    /// in microseconds of serialization time.
    pub airtime_us: [u64; 4],
    /// Fraction of vehicles on arteries at the end of the run.
    pub artery_share: f64,
    /// Protocol-specific end-of-run diagnostics.
    pub diagnostics: Vec<(&'static str, f64)>,
    /// Periodic samples over the run (empty unless `SimConfig::timeline_period`).
    pub timeline: Vec<TimelinePoint>,
    /// Wall-clock timings of the DES hot phases (empty unless the suite was
    /// built with the `trace` cargo feature).
    pub phase_timings: Vec<PhaseTimingRow>,
    /// Discrete events processed by the run's event loop (the denominator of the
    /// `bench` subcommand's events/sec figure).
    pub events_processed: u64,
    /// Largest number of pending events observed in the queue at any point.
    pub peak_queue_depth: usize,
    /// Calendar-queue bucket-array rebuilds triggered during the run (resize +
    /// width recalibration; 0 means the initial sizing was already right).
    pub queue_resizes: u64,
    /// Longest bucket-rotation scan any single pop performed (the calendar
    /// queue's worst case; ~1 when bucket width matches the event density).
    pub queue_max_scan: u64,
    /// Events popped per shard `(scheduled, popped)`, one row per shard. A
    /// single-shard run has one row; the split across rows depends on the
    /// shard count (only the totals are shard-invariant).
    pub shard_counts: Vec<(u64, u64)>,
    /// Delivery events whose recipient's region mapped to a different shard
    /// than the one the event was popped from (cross-shard handoffs).
    /// Shard-count-dependent by construction.
    pub boundary_events: u64,
    /// Vehicles observed crossing an L3-region boundary during mobility ticks
    /// (each crossing counts once). Identical across shard counts.
    pub shard_migrations: u64,
    /// Cross-shard events scheduled closer than the conservative lookahead —
    /// any nonzero value is a violated sync contract. Identical across shard
    /// counts (and always 0 in a correct run).
    pub lookahead_violations: u64,
    /// Lookahead-wide windows the event clock crossed (conservative barrier
    /// epochs). A pure function of the pop stream, so identical across shard
    /// counts.
    pub barrier_epochs: u64,
}

/// One DES hot phase's aggregated wall-clock cost.
#[derive(Debug, Clone, Serialize)]
pub struct PhaseTimingRow {
    /// Phase name (`event_pop`, `mobility_step`, `radio_delivery`,
    /// `gpsr_next_hop`).
    pub phase: &'static str,
    /// Number of timed calls.
    pub count: u64,
    /// Mean call duration in nanoseconds.
    pub mean_ns: f64,
    /// Total time in the phase, in milliseconds.
    pub total_ms: f64,
}

impl From<vanet_trace::PhaseSummary> for PhaseTimingRow {
    fn from(s: vanet_trace::PhaseSummary) -> Self {
        PhaseTimingRow {
            phase: s.phase,
            count: s.count,
            mean_ns: s.mean_ns,
            total_ms: s.total_ms,
        }
    }
}

/// One timeline sample: simulation time plus the state visible at that moment.
#[derive(Debug, Clone, Serialize)]
pub struct TimelinePoint {
    /// Sample time in seconds.
    pub t: f64,
    /// Location-update packets originated so far.
    pub update_packets: u64,
    /// Query radio transmissions so far.
    pub query_radio_tx: u64,
    /// Queries completed (ACKed) so far.
    pub queries_completed: usize,
    /// Protocol diagnostics at this instant (table occupancies, …).
    pub diagnostics: Vec<(&'static str, f64)>,
}

impl RunReport {
    /// Extracts the per-class counters into report fields.
    pub fn from_counters(
        protocol: &'static str,
        seed: u64,
        vehicles: usize,
        map_size: f64,
        counters: &NetCounters,
    ) -> RunReport {
        RunReport {
            protocol,
            seed,
            vehicles,
            map_size,
            update_packets: counters.origination_count(PacketClass::Update),
            update_radio_tx: counters.radio(PacketClass::Update),
            collection_radio_tx: counters.radio(PacketClass::Collection),
            collection_wired_tx: counters.wired(PacketClass::Collection),
            query_radio_tx: counters.radio(PacketClass::Query),
            query_wired_tx: counters.wired(PacketClass::Query),
            queries_launched: 0,
            queries_succeeded: 0,
            data_sent: counters.origination_count(PacketClass::Data),
            data_delivered: 0,
            success_rate: 0.0,
            latency: Welford::new(),
            latency_p95: None,
            drops: [
                counters.drop_count(PacketClass::Update),
                counters.drop_count(PacketClass::Collection),
                counters.drop_count(PacketClass::Query),
                counters.drop_count(PacketClass::Data),
            ],
            drop_breakdown: counters.drop_breakdown(),
            drop_matrix: counters.drop_matrix(),
            airtime_us: [
                counters.airtime(PacketClass::Update).as_micros(),
                counters.airtime(PacketClass::Collection).as_micros(),
                counters.airtime(PacketClass::Query).as_micros(),
                counters.airtime(PacketClass::Data).as_micros(),
            ],
            artery_share: 0.0,
            diagnostics: Vec::new(),
            timeline: Vec::new(),
            phase_timings: Vec::new(),
            events_processed: 0,
            peak_queue_depth: 0,
            queue_resizes: 0,
            queue_max_scan: 0,
            shard_counts: Vec::new(),
            boundary_events: 0,
            shard_migrations: 0,
            lookahead_violations: 0,
            barrier_epochs: 0,
        }
    }

    /// Mean query latency in seconds, if any query succeeded.
    pub fn mean_latency(&self) -> Option<f64> {
        self.latency.mean()
    }

    /// Fraction of post-discovery data packets delivered, if any were sent.
    pub fn data_delivery_ratio(&self) -> Option<f64> {
        (self.data_sent > 0).then(|| self.data_delivered as f64 / self.data_sent as f64)
    }
}

/// Seed-averaged statistics over a batch of runs of the same configuration.
#[derive(Debug, Clone, Serialize)]
pub struct AveragedReport {
    /// Protocol name.
    pub protocol: &'static str,
    /// Number of runs averaged.
    pub runs: usize,
    /// Mean update packets per run.
    pub update_packets: f64,
    /// Sample standard deviation of update packets across runs (0 for one run).
    pub update_packets_sd: f64,
    /// Mean query radio transmissions per run.
    pub query_radio_tx: f64,
    /// Sample standard deviation of query radio transmissions.
    pub query_radio_tx_sd: f64,
    /// Mean success rate.
    pub success_rate: f64,
    /// Sample standard deviation of the success rate.
    pub success_rate_sd: f64,
    /// Mean of per-run mean latencies (seconds), over runs that had successes.
    pub mean_latency: f64,
    /// Mean collection radio transmissions per run.
    pub collection_radio_tx: f64,
}

impl AveragedReport {
    /// Averages a non-empty batch.
    ///
    /// # Panics
    ///
    /// Panics on an empty batch.
    pub fn from_runs(runs: &[RunReport]) -> AveragedReport {
        assert!(!runs.is_empty(), "cannot average zero runs");
        let n = runs.len() as f64;
        let mut lat = Welford::new();
        let mut upd = Welford::new();
        let mut qtx = Welford::new();
        let mut succ = Welford::new();
        for r in runs {
            if let Some(m) = r.mean_latency() {
                lat.record(m);
            }
            upd.record(r.update_packets as f64);
            qtx.record(r.query_radio_tx as f64);
            succ.record(r.success_rate);
        }
        AveragedReport {
            protocol: runs[0].protocol,
            runs: runs.len(),
            update_packets: upd.mean().unwrap(),
            update_packets_sd: upd.std_dev().unwrap_or(0.0),
            query_radio_tx: qtx.mean().unwrap(),
            query_radio_tx_sd: qtx.std_dev().unwrap_or(0.0),
            success_rate: succ.mean().unwrap(),
            success_rate_sd: succ.std_dev().unwrap_or(0.0),
            mean_latency: lat.mean().unwrap_or(f64::NAN),
            collection_radio_tx: runs
                .iter()
                .map(|r| r.collection_radio_tx as f64)
                .sum::<f64>()
                / n,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn report(updates: u64, rate: f64, lat: f64) -> RunReport {
        let mut r = RunReport::from_counters("HLSRG", 0, 100, 2000.0, &NetCounters::new());
        r.update_packets = updates;
        r.success_rate = rate;
        r.latency.record(lat);
        r
    }

    #[test]
    fn averaging() {
        let a = report(100, 0.9, 1.0);
        let b = report(200, 1.0, 3.0);
        let avg = AveragedReport::from_runs(&[a, b]);
        assert_eq!(avg.runs, 2);
        assert_eq!(avg.update_packets, 150.0);
        assert!((avg.success_rate - 0.95).abs() < 1e-12);
        assert!((avg.mean_latency - 2.0).abs() < 1e-12);
        // Sample sd of {100, 200} is 70.71…
        assert!((avg.update_packets_sd - 70.710678).abs() < 1e-3);
        // A single run has zero spread.
        let one = AveragedReport::from_runs(&[report(5, 1.0, 1.0)]);
        assert_eq!(one.update_packets_sd, 0.0);
    }

    #[test]
    fn counters_map_to_fields() {
        let mut c = NetCounters::new();
        c.count_origination(PacketClass::Update);
        c.count_radio(PacketClass::Query, 7);
        c.count_wired(PacketClass::Query, 3);
        let r = RunReport::from_counters("RLSMP", 1, 50, 1000.0, &c);
        assert_eq!(r.update_packets, 1);
        assert_eq!(r.query_radio_tx, 7);
        assert_eq!(r.query_wired_tx, 3);
    }

    #[test]
    #[should_panic(expected = "zero runs")]
    fn empty_average_rejected() {
        AveragedReport::from_runs(&[]);
    }
}
