//! Multi-seed replication, fanned out across threads.
//!
//! The paper averages Fig 3.5 over 10 simulations; we do the same for every figure.
//! Runs are embarrassingly parallel (each owns its whole world), so we fan seeds
//! out over `std::thread::scope` and fold results back in seed order, keeping
//! the aggregate deterministic.

use crate::config::{Protocol, SimConfig};
use crate::metrics::{AveragedReport, RunReport};
use crate::runner::run_simulation;
use std::sync::Mutex;

/// Runs `cfg` under `protocol` for seeds `0..replications`, in parallel, returning
/// the per-seed reports in seed order.
pub fn replicate(cfg: &SimConfig, protocol: Protocol, replications: usize) -> Vec<RunReport> {
    assert!(replications > 0, "need at least one replication");
    let results: Mutex<Vec<Option<RunReport>>> = Mutex::new(vec![None; replications]);
    let threads = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(4);
    let chunk = replications.div_ceil(threads);
    std::thread::scope(|s| {
        for chunk_start in (0..replications).step_by(chunk.max(1)) {
            let results = &results;
            let cfg = cfg.clone();
            s.spawn(move || {
                for seed_ix in chunk_start..(chunk_start + chunk).min(replications) {
                    let mut run_cfg = cfg.clone();
                    // Each replication gets its own master seed, offset from the
                    // configured one.
                    run_cfg.seed = cfg.seed.wrapping_add(seed_ix as u64);
                    let report = run_simulation(&run_cfg, protocol);
                    results.lock().expect("results mutex poisoned")[seed_ix] = Some(report);
                }
            });
        }
    });
    results
        .into_inner()
        .expect("results mutex poisoned")
        .into_iter()
        .map(|r| r.expect("every seed produced a report"))
        .collect()
}

/// Replicates and averages in one call.
pub fn replicate_averaged(
    cfg: &SimConfig,
    protocol: Protocol,
    replications: usize,
) -> AveragedReport {
    AveragedReport::from_runs(&replicate(cfg, protocol, replications))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parallel_replication_is_deterministic_and_ordered() {
        let cfg = SimConfig::quick_demo(100);
        let runs_a = replicate(&cfg, Protocol::Hlsrg, 3);
        let runs_b = replicate(&cfg, Protocol::Hlsrg, 3);
        assert_eq!(runs_a.len(), 3);
        for (a, b) in runs_a.iter().zip(&runs_b) {
            assert_eq!(a.seed, b.seed);
            assert_eq!(a.update_packets, b.update_packets);
            assert_eq!(a.query_radio_tx, b.query_radio_tx);
        }
        // Seeds are sequential from the base seed.
        assert_eq!(runs_a[0].seed, 100);
        assert_eq!(runs_a[2].seed, 102);
    }

    #[test]
    fn averaged_report_covers_all_runs() {
        let cfg = SimConfig::quick_demo(7);
        let avg = replicate_averaged(&cfg, Protocol::Rlsmp, 2);
        assert_eq!(avg.runs, 2);
        assert!(avg.update_packets > 0.0);
    }
}
