//! Multi-seed replication over the shared job pool.
//!
//! The paper averages Fig 3.5 over 10 simulations; we do the same for every figure.
//! Runs are embarrassingly parallel (each owns its whole world), so every
//! (config × protocol × seed) unit goes through [`JobPool`] and results fold
//! back in seed order, keeping the aggregate deterministic regardless of
//! worker count or claim order.

use crate::config::{Protocol, SimConfig};
use crate::metrics::{AveragedReport, RunReport};
use crate::pool::JobPool;
use crate::runner::run_simulation;

/// Runs `cfg` under `protocol` for seeds `0..replications`, in parallel, returning
/// the per-seed reports in seed order. Uses one worker per available core.
pub fn replicate(cfg: &SimConfig, protocol: Protocol, replications: usize) -> Vec<RunReport> {
    let threads = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(4);
    replicate_with_threads(cfg, protocol, replications, threads)
}

/// [`replicate`] with an explicit worker-thread count. Reports are a pure
/// function of `(cfg, protocol, replications)` — the thread count only changes
/// wall-clock time, never results, which the test suite pins down by comparing
/// 1-thread and N-thread runs field by field.
pub fn replicate_with_threads(
    cfg: &SimConfig,
    protocol: Protocol,
    replications: usize,
    threads: usize,
) -> Vec<RunReport> {
    assert!(replications > 0, "need at least one replication");
    let jobs = [(cfg.clone(), protocol)];
    replicate_batch(&jobs, replications, threads)
        .pop()
        .expect("one job in, one group out")
}

/// Runs every `(config, protocol)` pair for seeds `0..replications` through one
/// shared [`JobPool`], returning the per-pair reports (in seed order) grouped
/// in input order. This is how a whole figure's sweep — every
/// (sweep point × protocol × seed) unit — shares a single pool instead of
/// fanning out once per sweep point: a slow point no longer serializes the
/// points after it.
pub fn replicate_batch(
    jobs: &[(SimConfig, Protocol)],
    replications: usize,
    threads: usize,
) -> Vec<Vec<RunReport>> {
    assert!(replications > 0, "need at least one replication");
    let pool = JobPool::new(threads);
    let reports = pool.run(jobs.len() * replications, |u| {
        let (cfg, protocol) = &jobs[u / replications];
        let mut run_cfg = cfg.clone();
        // Each replication gets its own master seed, offset from the
        // configured one.
        run_cfg.seed = cfg.seed.wrapping_add((u % replications) as u64);
        run_simulation(&run_cfg, *protocol)
    });
    let mut grouped = Vec::with_capacity(jobs.len());
    let mut it = reports.into_iter();
    for _ in 0..jobs.len() {
        grouped.push(it.by_ref().take(replications).collect());
    }
    grouped
}

/// Replicates and averages in one call.
pub fn replicate_averaged(
    cfg: &SimConfig,
    protocol: Protocol,
    replications: usize,
) -> AveragedReport {
    AveragedReport::from_runs(&replicate(cfg, protocol, replications))
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Field-by-field identity, with float fields compared bit-for-bit.
    fn assert_reports_identical(a: &RunReport, b: &RunReport) {
        assert_eq!(a.protocol, b.protocol);
        assert_eq!(a.seed, b.seed);
        assert_eq!(a.vehicles, b.vehicles);
        assert_eq!(a.map_size.to_bits(), b.map_size.to_bits());
        assert_eq!(a.update_packets, b.update_packets);
        assert_eq!(a.update_radio_tx, b.update_radio_tx);
        assert_eq!(a.collection_radio_tx, b.collection_radio_tx);
        assert_eq!(a.collection_wired_tx, b.collection_wired_tx);
        assert_eq!(a.query_radio_tx, b.query_radio_tx);
        assert_eq!(a.query_wired_tx, b.query_wired_tx);
        assert_eq!(a.queries_launched, b.queries_launched);
        assert_eq!(a.queries_succeeded, b.queries_succeeded);
        assert_eq!(a.data_sent, b.data_sent);
        assert_eq!(a.data_delivered, b.data_delivered);
        assert_eq!(a.success_rate.to_bits(), b.success_rate.to_bits());
        assert_eq!(a.latency.count(), b.latency.count());
        assert_eq!(
            a.latency.mean().map(f64::to_bits),
            b.latency.mean().map(f64::to_bits)
        );
        assert_eq!(
            a.latency_p95.map(f64::to_bits),
            b.latency_p95.map(f64::to_bits)
        );
        assert_eq!(a.drops, b.drops);
        assert_eq!(a.drop_breakdown, b.drop_breakdown);
        assert_eq!(a.drop_matrix, b.drop_matrix);
        assert_eq!(a.airtime_us, b.airtime_us);
        assert_eq!(a.artery_share.to_bits(), b.artery_share.to_bits());
        assert_eq!(a.diagnostics.len(), b.diagnostics.len());
        for ((ka, va), (kb, vb)) in a.diagnostics.iter().zip(&b.diagnostics) {
            assert_eq!(ka, kb);
            assert_eq!(va.to_bits(), vb.to_bits(), "diagnostic {ka} diverged");
        }
        assert_eq!(a.timeline.len(), b.timeline.len());
    }

    #[test]
    fn thread_count_override_is_bit_identical() {
        let mut cfg = SimConfig::quick_demo(13);
        cfg.vehicles = 40;
        let serial = replicate_with_threads(&cfg, Protocol::Hlsrg, 3, 1);
        let avail = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(4);
        let parallel = replicate_with_threads(&cfg, Protocol::Hlsrg, 3, avail);
        let default = replicate(&cfg, Protocol::Hlsrg, 3);
        assert_eq!(serial.len(), 3);
        for ((s, p), d) in serial.iter().zip(&parallel).zip(&default) {
            assert_reports_identical(s, p);
            assert_reports_identical(s, d);
        }
    }

    #[test]
    fn batched_sweep_is_bit_identical_across_pool_widths() {
        // The whole-figure batch — (config × protocol × seed) units through one
        // pool — must be a pure function of the job list: 1 worker and N
        // workers agree field by field, and the batch agrees with per-config
        // replication.
        let mut cfg_a = SimConfig::quick_demo(21);
        cfg_a.vehicles = 30;
        let mut cfg_b = cfg_a.clone();
        cfg_b.vehicles = 40;
        let jobs = vec![
            (cfg_a.clone(), Protocol::Hlsrg),
            (cfg_a.clone(), Protocol::Rlsmp),
            (cfg_b.clone(), Protocol::Hlsrg),
        ];
        let serial = replicate_batch(&jobs, 2, 1);
        let pooled = replicate_batch(&jobs, 2, 8);
        assert_eq!(serial.len(), 3);
        for (s_group, p_group) in serial.iter().zip(&pooled) {
            assert_eq!(s_group.len(), 2);
            for (s, p) in s_group.iter().zip(p_group) {
                assert_reports_identical(s, p);
            }
        }
        let direct = replicate_with_threads(&cfg_b, Protocol::Hlsrg, 2, 1);
        for (d, s) in direct.iter().zip(&serial[2]) {
            assert_reports_identical(d, s);
        }
    }

    #[test]
    fn seeds_near_u64_max_wrap_without_panicking() {
        let mut cfg = SimConfig::quick_demo(0);
        cfg.vehicles = 30;
        cfg.seed = u64::MAX - 1;
        // Replication seeds are MAX-1, MAX, 0, 1: the wrapping_add path.
        let runs = replicate_with_threads(&cfg, Protocol::Hlsrg, 4, 2);
        let seeds: Vec<u64> = runs.iter().map(|r| r.seed).collect();
        assert_eq!(seeds, vec![u64::MAX - 1, u64::MAX, 0, 1]);
        // Distinct seeds mean distinct randomness: the reports cannot all agree.
        assert!(
            runs.windows(2)
                .any(|w| w[0].update_packets != w[1].update_packets
                    || w[0].query_radio_tx != w[1].query_radio_tx),
            "4 distinct seeds produced identical traffic"
        );
    }

    #[test]
    fn parallel_replication_is_deterministic_and_ordered() {
        let cfg = SimConfig::quick_demo(100);
        let runs_a = replicate(&cfg, Protocol::Hlsrg, 3);
        let runs_b = replicate(&cfg, Protocol::Hlsrg, 3);
        assert_eq!(runs_a.len(), 3);
        for (a, b) in runs_a.iter().zip(&runs_b) {
            assert_eq!(a.seed, b.seed);
            assert_eq!(a.update_packets, b.update_packets);
            assert_eq!(a.query_radio_tx, b.query_radio_tx);
        }
        // Seeds are sequential from the base seed.
        assert_eq!(runs_a[0].seed, 100);
        assert_eq!(runs_a[2].seed, 102);
    }

    #[test]
    fn averaged_report_covers_all_runs() {
        let cfg = SimConfig::quick_demo(7);
        let avg = replicate_averaged(&cfg, Protocol::Rlsmp, 2);
        assert_eq!(avg.runs, 2);
        assert!(avg.update_packets > 0.0);
    }
}
