//! Terminal charts for the paper figures.
//!
//! `cargo run --example paper_figures` shouldn't require a plotting stack to show
//! the *shape* of a result — who is above whom, where curves cross, how fast they
//! grow. [`ascii_chart`] renders labeled series on a character grid, and
//! [`Figure::to_ascii_chart`](crate::figures::Figure::to_ascii_chart) applies it
//! to a figure's HLSRG/RLSMP series.

/// Renders `series` (name, points) as an ASCII chart of `width` × `height`
/// characters (plot area, excluding axes). Each series gets its own glyph, in
/// order: `o`, `x`, `+`, `*`.
///
/// # Panics
///
/// Panics if the plot area is degenerate or a series is empty.
pub fn ascii_chart(series: &[(&str, Vec<(f64, f64)>)], width: usize, height: usize) -> String {
    assert!(width >= 8 && height >= 4, "plot area too small");
    assert!(!series.is_empty() && series.iter().all(|(_, pts)| !pts.is_empty()));
    const GLYPHS: [char; 4] = ['o', 'x', '+', '*'];

    let all = series.iter().flat_map(|(_, pts)| pts.iter().copied());
    let (mut x_lo, mut x_hi) = (f64::INFINITY, f64::NEG_INFINITY);
    let (mut y_lo, mut y_hi) = (f64::INFINITY, f64::NEG_INFINITY);
    for (x, y) in all {
        x_lo = x_lo.min(x);
        x_hi = x_hi.max(x);
        y_lo = y_lo.min(y);
        y_hi = y_hi.max(y);
    }
    // Zero-baseline for magnitude metrics; pad degenerate ranges.
    y_lo = y_lo.min(0.0);
    if (y_hi - y_lo).abs() < 1e-12 {
        y_hi = y_lo + 1.0;
    }
    if (x_hi - x_lo).abs() < 1e-12 {
        x_hi = x_lo + 1.0;
    }

    let mut grid = vec![vec![' '; width]; height];
    let col = |x: f64| (((x - x_lo) / (x_hi - x_lo)) * (width - 1) as f64).round() as usize;
    let row = |y: f64| {
        let r = ((y - y_lo) / (y_hi - y_lo)) * (height - 1) as f64;
        height - 1 - r.round() as usize
    };
    for (si, (_, pts)) in series.iter().enumerate() {
        let glyph = GLYPHS[si % GLYPHS.len()];
        // Connect consecutive points with linear interpolation for a line feel.
        for pair in pts.windows(2) {
            let (x0, y0) = pair[0];
            let (x1, y1) = pair[1];
            let steps = (col(x1).abs_diff(col(x0))).max(1);
            for k in 0..=steps {
                let t = k as f64 / steps as f64;
                let (x, y) = (x0 + (x1 - x0) * t, y0 + (y1 - y0) * t);
                let (c, r) = (col(x), row(y));
                // Markers win over line dots.
                if grid[r][c] == ' ' {
                    grid[r][c] = '.';
                }
            }
        }
        for &(x, y) in pts {
            grid[row(y)][col(x)] = glyph;
        }
    }

    let mut out = String::new();
    for (ri, line) in grid.iter().enumerate() {
        let label = if ri == 0 {
            format!("{y_hi:>9.1}")
        } else if ri == height - 1 {
            format!("{y_lo:>9.1}")
        } else {
            " ".repeat(9)
        };
        out.push_str(&label);
        out.push('|');
        out.extend(line.iter());
        out.push('\n');
    }
    out.push_str(&" ".repeat(9));
    out.push('+');
    out.push_str(&"-".repeat(width));
    out.push('\n');
    out.push_str(&format!(
        "{:>10}{:<w$.0}{:>.0}\n",
        "",
        x_lo,
        x_hi,
        w = width - 4
    ));
    for (si, (name, _)) in series.iter().enumerate() {
        out.push_str(&format!(
            "{:>10}{} = {}\n",
            "",
            GLYPHS[si % GLYPHS.len()],
            name
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn chart_contains_markers_and_legend() {
        let s = ascii_chart(
            &[
                ("alpha", vec![(0.0, 0.0), (1.0, 10.0), (2.0, 20.0)]),
                ("beta", vec![(0.0, 20.0), (1.0, 10.0), (2.0, 0.0)]),
            ],
            40,
            10,
        );
        assert!(s.contains('o'));
        assert!(s.contains('x'));
        assert!(s.contains("o = alpha"));
        assert!(s.contains("x = beta"));
        // Y axis labels show the range.
        assert!(s.contains("20.0"));
        assert!(s.contains("0.0"));
    }

    #[test]
    fn increasing_series_slopes_up() {
        let s = ascii_chart(&[("up", vec![(0.0, 0.0), (10.0, 100.0)])], 30, 8);
        let lines: Vec<&str> = s.lines().collect();
        // The marker in the top line is to the right of the one in the bottom.
        let top = lines[0].find('o').unwrap();
        let bottom = lines[7].find('o').unwrap();
        assert!(top > bottom);
    }

    #[test]
    fn flat_series_renders() {
        let s = ascii_chart(&[("flat", vec![(0.0, 5.0), (1.0, 5.0)])], 20, 5);
        assert!(s.contains('o'));
    }

    #[test]
    #[should_panic(expected = "too small")]
    fn tiny_plot_rejected() {
        ascii_chart(&[("x", vec![(0.0, 0.0)])], 2, 2);
    }
}
