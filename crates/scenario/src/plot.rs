//! Charts for the paper figures and telemetry reports.
//!
//! `cargo run --example paper_figures` shouldn't require a plotting stack to show
//! the *shape* of a result — who is above whom, where curves cross, how fast they
//! grow. [`ascii_chart`] renders labeled series on a character grid, and
//! [`Figure::to_ascii_chart`](crate::figures::Figure::to_ascii_chart) applies it
//! to a figure's HLSRG/RLSMP series. [`svg_chart`] renders the same series as an
//! inline SVG fragment for the self-contained HTML dashboard (`hlsrg report`) —
//! both backends share one scaling model ([`Bounds`]), so a curve lands in the
//! same relative spot whichever way it is drawn.

/// The shared scaling model: data-space bounds with the conventions every
/// backend applies — a zero baseline on Y (magnitude metrics read from zero)
/// and degenerate ranges padded so flat series still render.
#[derive(Debug, Clone, Copy)]
pub struct Bounds {
    /// Leftmost data X.
    pub x_lo: f64,
    /// Rightmost data X.
    pub x_hi: f64,
    /// Bottom data Y (≤ 0-baseline).
    pub y_lo: f64,
    /// Top data Y.
    pub y_hi: f64,
}

impl Bounds {
    /// Computes bounds over every point of every series.
    ///
    /// # Panics
    ///
    /// Panics if `series` is empty or any series has no points.
    pub fn from_series(series: &[(&str, Vec<(f64, f64)>)]) -> Bounds {
        assert!(!series.is_empty() && series.iter().all(|(_, pts)| !pts.is_empty()));
        let all = series.iter().flat_map(|(_, pts)| pts.iter().copied());
        let (mut x_lo, mut x_hi) = (f64::INFINITY, f64::NEG_INFINITY);
        let (mut y_lo, mut y_hi) = (f64::INFINITY, f64::NEG_INFINITY);
        for (x, y) in all {
            x_lo = x_lo.min(x);
            x_hi = x_hi.max(x);
            y_lo = y_lo.min(y);
            y_hi = y_hi.max(y);
        }
        // Zero-baseline for magnitude metrics; pad degenerate ranges.
        y_lo = y_lo.min(0.0);
        if (y_hi - y_lo).abs() < 1e-12 {
            y_hi = y_lo + 1.0;
        }
        if (x_hi - x_lo).abs() < 1e-12 {
            x_hi = x_lo + 1.0;
        }
        Bounds {
            x_lo,
            x_hi,
            y_lo,
            y_hi,
        }
    }

    /// X mapped to `[0, 1]` across the plot width.
    pub fn fx(&self, x: f64) -> f64 {
        (x - self.x_lo) / (self.x_hi - self.x_lo)
    }

    /// Y mapped to `[0, 1]` from the bottom of the plot.
    pub fn fy(&self, y: f64) -> f64 {
        (y - self.y_lo) / (self.y_hi - self.y_lo)
    }
}

/// Renders `series` (name, points) as an ASCII chart of `width` × `height`
/// characters (plot area, excluding axes). Each series gets its own glyph, in
/// order: `o`, `x`, `+`, `*`.
///
/// # Panics
///
/// Panics if the plot area is degenerate or a series is empty.
pub fn ascii_chart(series: &[(&str, Vec<(f64, f64)>)], width: usize, height: usize) -> String {
    assert!(width >= 8 && height >= 4, "plot area too small");
    const GLYPHS: [char; 4] = ['o', 'x', '+', '*'];
    let b = Bounds::from_series(series);

    let mut grid = vec![vec![' '; width]; height];
    let col = |x: f64| (b.fx(x) * (width - 1) as f64).round() as usize;
    let row = |y: f64| height - 1 - (b.fy(y) * (height - 1) as f64).round() as usize;
    for (si, (_, pts)) in series.iter().enumerate() {
        let glyph = GLYPHS[si % GLYPHS.len()];
        // Connect consecutive points with linear interpolation for a line feel.
        for pair in pts.windows(2) {
            let (x0, y0) = pair[0];
            let (x1, y1) = pair[1];
            let steps = (col(x1).abs_diff(col(x0))).max(1);
            for k in 0..=steps {
                let t = k as f64 / steps as f64;
                let (x, y) = (x0 + (x1 - x0) * t, y0 + (y1 - y0) * t);
                let (c, r) = (col(x), row(y));
                // Markers win over line dots.
                if grid[r][c] == ' ' {
                    grid[r][c] = '.';
                }
            }
        }
        for &(x, y) in pts {
            grid[row(y)][col(x)] = glyph;
        }
    }

    let mut out = String::new();
    for (ri, line) in grid.iter().enumerate() {
        let label = if ri == 0 {
            format!("{:>9.1}", b.y_hi)
        } else if ri == height - 1 {
            format!("{:>9.1}", b.y_lo)
        } else {
            " ".repeat(9)
        };
        out.push_str(&label);
        out.push('|');
        out.extend(line.iter());
        out.push('\n');
    }
    out.push_str(&" ".repeat(9));
    out.push('+');
    out.push_str(&"-".repeat(width));
    out.push('\n');
    out.push_str(&format!(
        "{:>10}{:<w$.0}{:>.0}\n",
        "",
        b.x_lo,
        b.x_hi,
        w = width - 4
    ));
    for (si, (name, _)) in series.iter().enumerate() {
        out.push_str(&format!(
            "{:>10}{} = {}\n",
            "",
            GLYPHS[si % GLYPHS.len()],
            name
        ));
    }
    out
}

/// Series stroke palette for SVG charts (colorblind-safe Okabe–Ito subset).
const SVG_COLORS: [&str; 6] = [
    "#0072b2", "#d55e00", "#009e73", "#cc79a7", "#e69f00", "#56b4e9",
];

/// Renders `series` as one self-contained `<svg>` fragment of `width` ×
/// `height` pixels: axis frame, min/max tick labels, one polyline with point
/// markers per series, and an inline legend. No external assets, scripts, or
/// fonts — safe to embed in a single-file HTML report.
///
/// # Panics
///
/// Panics if the plot area is degenerate or a series is empty.
pub fn svg_chart(series: &[(&str, Vec<(f64, f64)>)], width: usize, height: usize) -> String {
    assert!(width >= 80 && height >= 60, "plot area too small");
    let b = Bounds::from_series(series);
    // Margins leave room for tick labels (left/bottom) and the legend (top).
    let (ml, mr, mt, mb) = (56.0, 12.0, 8.0 + 14.0 * series.len() as f64, 28.0);
    let (w, h) = (width as f64, height as f64);
    let (pw, ph) = (w - ml - mr, h - mt - mb);
    let px = |x: f64| ml + b.fx(x) * pw;
    let py = |y: f64| mt + (1.0 - b.fy(y)) * ph;

    let mut s = format!(
        "<svg xmlns=\"http://www.w3.org/2000/svg\" viewBox=\"0 0 {width} {height}\" \
         width=\"{width}\" height=\"{height}\" role=\"img\">\n\
         <rect x=\"{ml}\" y=\"{mt}\" width=\"{pw}\" height=\"{ph}\" \
         fill=\"none\" stroke=\"#888\" stroke-width=\"1\"/>\n"
    );
    // Min/max tick labels on both axes.
    let label = |v: f64| {
        if v.abs() >= 1000.0 {
            format!("{v:.0}")
        } else {
            format!("{v:.2}")
        }
    };
    s.push_str(&format!(
        "<text x=\"{:.1}\" y=\"{:.1}\" font-size=\"11\" text-anchor=\"end\" \
         fill=\"#333\">{}</text>\n",
        ml - 4.0,
        mt + 4.0,
        label(b.y_hi)
    ));
    s.push_str(&format!(
        "<text x=\"{:.1}\" y=\"{:.1}\" font-size=\"11\" text-anchor=\"end\" \
         fill=\"#333\">{}</text>\n",
        ml - 4.0,
        mt + ph,
        label(b.y_lo)
    ));
    s.push_str(&format!(
        "<text x=\"{ml:.1}\" y=\"{:.1}\" font-size=\"11\" fill=\"#333\">{}</text>\n",
        h - 8.0,
        label(b.x_lo)
    ));
    s.push_str(&format!(
        "<text x=\"{:.1}\" y=\"{:.1}\" font-size=\"11\" text-anchor=\"end\" \
         fill=\"#333\">{}</text>\n",
        ml + pw,
        h - 8.0,
        label(b.x_hi)
    ));
    for (si, (name, pts)) in series.iter().enumerate() {
        let color = SVG_COLORS[si % SVG_COLORS.len()];
        let mut path = String::new();
        for &(x, y) in pts {
            path.push_str(&format!("{:.1},{:.1} ", px(x), py(y)));
        }
        s.push_str(&format!(
            "<polyline points=\"{}\" fill=\"none\" stroke=\"{color}\" stroke-width=\"1.5\"/>\n",
            path.trim_end()
        ));
        for &(x, y) in pts {
            s.push_str(&format!(
                "<circle cx=\"{:.1}\" cy=\"{:.1}\" r=\"2.2\" fill=\"{color}\"/>\n",
                px(x),
                py(y)
            ));
        }
        // Legend row: swatch + escaped name.
        let ly = 14.0 * (si as f64 + 1.0);
        s.push_str(&format!(
            "<rect x=\"{:.1}\" y=\"{:.1}\" width=\"10\" height=\"10\" fill=\"{color}\"/>\n\
             <text x=\"{:.1}\" y=\"{:.1}\" font-size=\"11\" fill=\"#333\">{}</text>\n",
            ml + 4.0,
            ly - 9.0,
            ml + 18.0,
            ly,
            xml_escape(name)
        ));
    }
    s.push_str("</svg>\n");
    s
}

/// Escapes text for embedding in XML/HTML content.
pub fn xml_escape(s: &str) -> String {
    s.replace('&', "&amp;")
        .replace('<', "&lt;")
        .replace('>', "&gt;")
        .replace('"', "&quot;")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn chart_contains_markers_and_legend() {
        let s = ascii_chart(
            &[
                ("alpha", vec![(0.0, 0.0), (1.0, 10.0), (2.0, 20.0)]),
                ("beta", vec![(0.0, 20.0), (1.0, 10.0), (2.0, 0.0)]),
            ],
            40,
            10,
        );
        assert!(s.contains('o'));
        assert!(s.contains('x'));
        assert!(s.contains("o = alpha"));
        assert!(s.contains("x = beta"));
        // Y axis labels show the range.
        assert!(s.contains("20.0"));
        assert!(s.contains("0.0"));
    }

    #[test]
    fn increasing_series_slopes_up() {
        let s = ascii_chart(&[("up", vec![(0.0, 0.0), (10.0, 100.0)])], 30, 8);
        let lines: Vec<&str> = s.lines().collect();
        // The marker in the top line is to the right of the one in the bottom.
        let top = lines[0].find('o').unwrap();
        let bottom = lines[7].find('o').unwrap();
        assert!(top > bottom);
    }

    #[test]
    fn flat_series_renders() {
        let s = ascii_chart(&[("flat", vec![(0.0, 5.0), (1.0, 5.0)])], 20, 5);
        assert!(s.contains('o'));
    }

    #[test]
    #[should_panic(expected = "too small")]
    fn tiny_plot_rejected() {
        ascii_chart(&[("x", vec![(0.0, 0.0)])], 2, 2);
    }

    #[test]
    fn bounds_shared_by_both_backends() {
        let series: [(&str, Vec<(f64, f64)>); 1] = [("s", vec![(2.0, 5.0), (4.0, 15.0)])];
        let b = Bounds::from_series(&series);
        assert_eq!(b.x_lo, 2.0);
        assert_eq!(b.x_hi, 4.0);
        assert_eq!(b.y_lo, 0.0, "zero baseline");
        assert_eq!(b.y_hi, 15.0);
        assert_eq!(b.fx(3.0), 0.5);
        assert_eq!(b.fy(15.0), 1.0);
    }

    #[test]
    fn svg_chart_is_self_contained() {
        let s = svg_chart(
            &[
                ("HLSRG <tags & quotes>", vec![(0.0, 1.0), (10.0, 4.0)]),
                ("RLSMP", vec![(0.0, 2.0), (10.0, 8.0)]),
            ],
            320,
            200,
        );
        assert!(s.starts_with("<svg "));
        assert!(s.trim_end().ends_with("</svg>"));
        assert_eq!(s.matches("<polyline").count(), 2);
        assert!(s.contains("&lt;tags &amp; quotes&gt;"), "names are escaped");
        // Self-containment: nothing that could fetch or execute.
        for forbidden in ["<script", "href=", "src=", "url(", "@import"] {
            assert!(!s.contains(forbidden), "found {forbidden}");
        }
    }

    #[test]
    #[should_panic(expected = "too small")]
    fn tiny_svg_rejected() {
        svg_chart(&[("x", vec![(0.0, 0.0)])], 10, 10);
    }
}
