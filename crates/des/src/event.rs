//! The event queue and simulation driver.
//!
//! Events are ordered by `(time, sequence)`: strictly by timestamp, and FIFO among
//! events scheduled for the same instant. The sequence tie-break is what makes runs
//! deterministic — two events at the same time always fire in the order they were
//! scheduled, independent of heap internals.

use crate::time::{SimDuration, SimTime};
use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// A scheduled event: payload `E` plus its firing time and insertion sequence.
#[derive(Debug, Clone)]
struct Scheduled<E> {
    time: SimTime,
    seq: u64,
    event: E,
}

impl<E> PartialEq for Scheduled<E> {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}
impl<E> Eq for Scheduled<E> {}

impl<E> PartialOrd for Scheduled<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl<E> Ord for Scheduled<E> {
    /// Reversed so that `BinaryHeap` (a max-heap) pops the *earliest* event first.
    fn cmp(&self, other: &Self) -> Ordering {
        other
            .time
            .cmp(&self.time)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

/// A priority queue of timestamped events with deterministic FIFO tie-breaking.
///
/// This is the heart of the kernel. Protocol and mobility layers push future work in
/// with [`EventQueue::schedule_at`] / [`EventQueue::schedule_after`]; the driver pops
/// it back out in global time order.
#[derive(Debug)]
pub struct EventQueue<E> {
    heap: BinaryHeap<Scheduled<E>>,
    next_seq: u64,
    now: SimTime,
    scheduled_total: u64,
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> EventQueue<E> {
    /// Creates an empty queue with the clock at t = 0.
    pub fn new() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            next_seq: 0,
            now: SimTime::ZERO,
            scheduled_total: 0,
        }
    }

    /// Creates an empty queue pre-sized for `cap` pending events.
    pub fn with_capacity(cap: usize) -> Self {
        EventQueue {
            heap: BinaryHeap::with_capacity(cap),
            next_seq: 0,
            now: SimTime::ZERO,
            scheduled_total: 0,
        }
    }

    /// The current simulation time: the timestamp of the last event popped.
    #[inline]
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Number of events waiting to fire.
    #[inline]
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// True if no events are pending.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Total number of events ever scheduled (for diagnostics).
    #[inline]
    pub fn scheduled_total(&self) -> u64 {
        self.scheduled_total
    }

    /// Schedules `event` to fire at absolute time `at`.
    ///
    /// # Panics
    ///
    /// Panics if `at` is earlier than the current time — scheduling into the past is
    /// always a protocol bug, and catching it here keeps the timeline causal.
    pub fn schedule_at(&mut self, at: SimTime, event: E) {
        assert!(
            at >= self.now,
            "cannot schedule into the past: now={}, at={}",
            self.now,
            at
        );
        let seq = self.next_seq;
        self.next_seq += 1;
        self.scheduled_total += 1;
        self.heap.push(Scheduled {
            time: at,
            seq,
            event,
        });
    }

    /// Schedules `event` to fire `delay` after the current time.
    #[inline]
    pub fn schedule_after(&mut self, delay: SimDuration, event: E) {
        self.schedule_at(self.now + delay, event);
    }

    /// Timestamp of the next pending event, if any.
    pub fn peek_time(&self) -> Option<SimTime> {
        self.heap.peek().map(|s| s.time)
    }

    /// Pops the earliest event, advancing the clock to its timestamp.
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        let s = self.heap.pop()?;
        debug_assert!(s.time >= self.now, "event queue went back in time");
        self.now = s.time;
        Some((s.time, s.event))
    }

    /// Drops every pending event and resets the clock to t = 0.
    pub fn reset(&mut self) {
        self.heap.clear();
        self.next_seq = 0;
        self.now = SimTime::ZERO;
        self.scheduled_total = 0;
    }
}

/// Outcome of [`run`] / [`run_until`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RunOutcome {
    /// The queue drained before the horizon.
    Drained,
    /// The horizon was reached with events still pending.
    HorizonReached,
    /// The handler requested an early stop.
    Stopped,
}

/// What a handler tells the driver after each event.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Control {
    /// Keep processing events.
    #[default]
    Continue,
    /// Stop the run immediately.
    Stop,
}

/// Runs the queue until it drains, the handler stops the run, or `horizon` is passed.
///
/// `handler` receives each event together with the queue so it can schedule follow-up
/// events. Events with `time > horizon` are left in the queue; the clock never
/// advances past the last event actually processed.
pub fn run_until<E>(
    queue: &mut EventQueue<E>,
    horizon: SimTime,
    mut handler: impl FnMut(SimTime, E, &mut EventQueue<E>) -> Control,
) -> RunOutcome {
    loop {
        match queue.peek_time() {
            None => return RunOutcome::Drained,
            Some(t) if t > horizon => return RunOutcome::HorizonReached,
            Some(_) => {
                let (t, e) = queue.pop().expect("peeked event vanished");
                if handler(t, e, queue) == Control::Stop {
                    return RunOutcome::Stopped;
                }
            }
        }
    }
}

/// Runs the queue until it drains or the handler stops the run.
pub fn run<E>(
    queue: &mut EventQueue<E>,
    handler: impl FnMut(SimTime, E, &mut EventQueue<E>) -> Control,
) -> RunOutcome {
    run_until(queue, SimTime::MAX, handler)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.schedule_at(SimTime::from_secs(3), "c");
        q.schedule_at(SimTime::from_secs(1), "a");
        q.schedule_at(SimTime::from_secs(2), "b");
        let order: Vec<_> = std::iter::from_fn(|| q.pop()).map(|(_, e)| e).collect();
        assert_eq!(order, vec!["a", "b", "c"]);
    }

    #[test]
    fn same_time_is_fifo() {
        let mut q = EventQueue::new();
        let t = SimTime::from_secs(1);
        for i in 0..100 {
            q.schedule_at(t, i);
        }
        let order: Vec<_> = std::iter::from_fn(|| q.pop()).map(|(_, e)| e).collect();
        assert_eq!(order, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn clock_advances_with_pops() {
        let mut q = EventQueue::new();
        q.schedule_at(SimTime::from_secs(5), ());
        assert_eq!(q.now(), SimTime::ZERO);
        q.pop();
        assert_eq!(q.now(), SimTime::from_secs(5));
    }

    #[test]
    #[should_panic(expected = "cannot schedule into the past")]
    fn scheduling_into_past_panics() {
        let mut q = EventQueue::new();
        q.schedule_at(SimTime::from_secs(5), ());
        q.pop();
        q.schedule_at(SimTime::from_secs(4), ());
    }

    #[test]
    fn schedule_after_is_relative_to_now() {
        let mut q = EventQueue::new();
        q.schedule_at(SimTime::from_secs(10), 0);
        q.pop();
        q.schedule_after(SimDuration::from_secs(2), 1);
        let (t, _) = q.pop().unwrap();
        assert_eq!(t, SimTime::from_secs(12));
    }

    #[test]
    fn run_until_respects_horizon() {
        let mut q = EventQueue::new();
        for s in 1..=10u64 {
            q.schedule_at(SimTime::from_secs(s), s);
        }
        let mut seen = vec![];
        let outcome = run_until(&mut q, SimTime::from_secs(5), |_, e, _| {
            seen.push(e);
            Control::Continue
        });
        assert_eq!(outcome, RunOutcome::HorizonReached);
        assert_eq!(seen, vec![1, 2, 3, 4, 5]);
        assert_eq!(q.len(), 5);
    }

    #[test]
    fn run_drains_and_allows_cascading() {
        let mut q = EventQueue::new();
        q.schedule_at(SimTime::from_secs(1), 3u32);
        let mut count = 0;
        let outcome = run(&mut q, |_, e, q| {
            count += 1;
            if e > 0 {
                q.schedule_after(SimDuration::from_secs(1), e - 1);
            }
            Control::Continue
        });
        assert_eq!(outcome, RunOutcome::Drained);
        assert_eq!(count, 4); // 3, 2, 1, 0
    }

    #[test]
    fn handler_can_stop_early() {
        let mut q = EventQueue::new();
        for s in 1..=10u64 {
            q.schedule_at(SimTime::from_secs(s), s);
        }
        let mut seen = 0;
        let outcome = run(&mut q, |_, _, _| {
            seen += 1;
            if seen == 3 {
                Control::Stop
            } else {
                Control::Continue
            }
        });
        assert_eq!(outcome, RunOutcome::Stopped);
        assert_eq!(q.len(), 7);
    }

    #[test]
    fn reset_clears_everything() {
        let mut q = EventQueue::new();
        q.schedule_at(SimTime::from_secs(1), ());
        q.pop();
        q.reset();
        assert!(q.is_empty());
        assert_eq!(q.now(), SimTime::ZERO);
        assert_eq!(q.scheduled_total(), 0);
    }
}
