//! The event queue and simulation driver.
//!
//! Events are ordered by `(time, sequence)`: strictly by timestamp, and FIFO among
//! events scheduled for the same instant. The sequence tie-break is what makes runs
//! deterministic — two events at the same time always fire in the order they were
//! scheduled, independent of the queue's internal layout.
//!
//! # The two-tier calendar queue
//!
//! [`EventQueue`] is a Brown-style *calendar queue* (R. Brown, "Calendar Queues: A
//! Fast O(1) Priority Queue Implementation for the Simulation Event Set Problem",
//! CACM 1988) with a far-future overflow tier. The calendar proper is an array of
//! `2^k` buckets, each covering a `width`-µs window of a contiguous near-term span
//! `[cal_start, cal_end)` — one "year". An event at time `t` inside the span lives
//! in bucket `(t / width) mod 2^k`; a cursor `(cur_bucket, cur_top)` walks the
//! windows in time order. Events at or beyond `cal_end` wait in `far`, an unsorted
//! vec with a cached minimum key. When the calendar drains, the next year's worth
//! migrates out of `far` in one pass. With bucket occupancy near 1, `schedule` and
//! `pop` are amortized O(1) — no `O(log n)` comparator walk at 10k+ pending
//! events, which is where a VANET run spends most of its wall time.
//!
//! The two tiers exist because a VANET pending set is bimodal: a dense head of
//! radio deliveries microseconds-to-milliseconds apart, plus a sparse tail of
//! pre-scheduled mobility ticks spread over the whole run. One width cannot serve
//! both — wide enough to cover the tail, the head collapses into one bucket and
//! every pop scans it linearly; narrow enough for the head, the tail turns every
//! pop into a fruitless year-long rotation. Splitting the tail into `far` lets the
//! width track head density alone.
//!
//! Layout choices that keep the structure exact and fast:
//!
//! * **Buckets are unsorted vecs with a cached minimum key**: an insert is a pure
//!   `Vec::push` plus one key compare — no sorted-insert memmove, which matters
//!   because event payloads run to ~200 bytes. A pop scans its bucket once for
//!   the minimum `(time, seq)` (tracking the runner-up to refresh the cache) and
//!   `swap_remove`s it; the rotation scan consults only the cached keys.
//! * **The span maps windows to buckets bijectively** (`cal_end - cal_start` never
//!   exceeds `2^k · width`), so a non-empty bucket at the cursor *is* the earliest
//!   window with work — no wrap-around years, no direct-search fallback.
//! * **The pop order is structural**: windows partition the timeline, the cursor
//!   visits them in increasing order, ties at one instant share a bucket where the
//!   `(time, seq)` order is total, and everything in `far` is at or beyond
//!   `cal_end`, later than everything in the calendar. Resizing, recalibration and
//!   migration are therefore free to be heuristic without risking determinism
//!   (the differential suite against [`crate::HeapQueue`] pins this).
//! * **Lazy resize**: the bucket array doubles when calendar occupancy passes 2
//!   and halves when it falls under 1/8; the width is re-derived from the gaps
//!   among the earliest pending events whenever per-pop work (rotation steps or
//!   bucket scan length) drifts, or a single bucket grows dense. All triggers are
//!   pure functions of the operation sequence.
//! * Events scheduled *behind* the cursor (possible only after a declined
//!   [`EventQueue::pop_if_at_or_before`]) rewind it; events behind `cal_start`
//!   (possible only after a migration jumped the span ahead of the clock) extend
//!   the span downward, or trigger a full re-center if it no longer fits.
//!
//! The previous `BinaryHeap` kernel survives as [`crate::HeapQueue`], the reference
//! implementation the differential tests drive in lockstep.

use crate::time::{SimDuration, SimTime};

/// A scheduled event: payload `E` plus its firing time and insertion sequence.
#[derive(Debug, Clone)]
pub(crate) struct Scheduled<E> {
    pub(crate) time: SimTime,
    pub(crate) seq: u64,
    pub(crate) event: E,
}

/// Fewest buckets the calendar ever uses; also the initial count of
/// [`EventQueue::new`].
const MIN_BUCKETS: usize = 16;
/// Most buckets the calendar will grow to (2^20 ≈ 1M pending at occupancy 2).
const MAX_BUCKETS: usize = 1 << 20;
/// Bucket width before the first calibration, in µs (1 ms — the order of radio
/// delivery delays, the densest event class in a VANET run).
const DEFAULT_WIDTH_US: u64 = 1_000;
/// Pops between drift checks of the average per-pop scan work.
const CALIB_WINDOW: u64 = 1024;
/// Average per-pop scan work (rotation steps + bucket elements) above which the
/// width is re-derived. Occupancy ~2 costs ~2–3 per pop, so 8 means "paying
/// several times the ideal".
const CALIB_SCAN_THRESHOLD: u64 = 8;
/// An insert that leaves a bucket longer than this asks for a width
/// recalibration (rate-limited by `ops_since_rebuild`): the pop-side min scan
/// is linear in bucket length, so one hot bucket turns the drain quadratic
/// long before the average-drift check can notice.
const DENSE_BUCKET_MAX: usize = 64;
/// How many of the earliest pending events a rebuild samples to set the width.
/// Near-head density is what pop scans actually see; a far-future tail
/// (mobility ticks minutes out) must not stretch the width.
const WIDTH_SAMPLE: usize = 32;
/// Cached-minimum sentinel for an empty bucket (also the empty `far` min). The
/// `u64::MAX` *sequence* is the emptiness marker (a real event can carry
/// `SimTime::MAX` but never that sequence number), so emptiness survives any
/// comparison against real keys.
const EMPTY_MIN: (SimTime, u64) = (SimTime::MAX, u64::MAX);

/// Self-telemetry of a queue: sizing and scan statistics since construction (or
/// the last [`EventQueue::reset`]). Surfaced per run by the `bench` subcommand.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct QueueTelemetry {
    /// Largest number of pending events ever held.
    pub peak_depth: usize,
    /// Bucket-array resizes, width recalibrations, and far-tier migrations.
    pub resizes: u64,
    /// Most scan work any single pop needed: the larger of its cursor rotation
    /// steps and its bucket scan length (1 = cursor hit a one-event bucket).
    pub max_pop_scan: u64,
    /// Current bucket count.
    pub buckets: usize,
    /// Current bucket width in µs.
    pub width_us: u64,
}

/// A priority queue of timestamped events with deterministic FIFO tie-breaking.
///
/// This is the heart of the kernel. Protocol and mobility layers push future work in
/// with [`EventQueue::schedule_at`] / [`EventQueue::schedule_after`]; the driver pops
/// it back out in global time order. Internally a two-tier calendar queue — see the
/// module docs for the structure and its invariants.
#[derive(Debug)]
pub struct EventQueue<E> {
    /// `2^k` unsorted buckets; each bucket's earliest key is cached in `mins`.
    buckets: Vec<Vec<Scheduled<E>>>,
    /// Per-bucket minimum `(time, seq)`, [`EMPTY_MIN`] when the bucket is
    /// empty. Lets the rotation scan touch one small key per bucket instead of
    /// the event payloads.
    mins: Vec<(SimTime, u64)>,
    /// `buckets.len() - 1`, for masking bucket indices.
    mask: usize,
    /// Bucket width in µs (≥ 1).
    width: u64,
    /// Pending events across both tiers.
    len: usize,
    /// The bucket the pop scan resumes from.
    cur_bucket: usize,
    /// Exclusive upper time bound of the current window, always a multiple of
    /// `width`, never past `cal_end`. `u128` so span arithmetic cannot
    /// overflow near `SimTime::MAX`.
    cur_top: u128,
    /// Inclusive lower bound of the calendar span, a multiple of `width`.
    /// Every bucket event is at or after it.
    cal_start: u128,
    /// Exclusive upper bound of the calendar span. Every bucket event is
    /// before it, every `far` event at or beyond it, and
    /// `cal_end - cal_start <= buckets · width` (bijective window mapping).
    cal_end: u128,
    /// Far-future overflow: unsorted, earliest key cached in `far_min`.
    far: Vec<Scheduled<E>>,
    /// Minimum `(time, seq)` in `far`, [`EMPTY_MIN`] when empty.
    far_min: (SimTime, u64),
    next_seq: u64,
    now: SimTime,
    scheduled_total: u64,
    /// Reused staging buffer for rebuilds, so resizing never reallocates twice.
    scratch: Vec<Scheduled<E>>,
    /// Reused key buffer for the width sample, so calibration never moves
    /// event payloads.
    key_scratch: Vec<(u64, u64)>,
    /// Reused staging buffer for [`EventQueue::drain_into`]. Separate from
    /// `scratch`: a drain can trigger a far-tier migration mid-loop, which
    /// needs `scratch` for itself.
    drain_buf: Vec<Scheduled<E>>,
    peak_depth: usize,
    resizes: u64,
    max_pop_scan: u64,
    calib_pops: u64,
    calib_scans: u64,
    /// Schedules + pops since the last rebuild; rate-limits the dense-bucket
    /// trigger so rebuild work stays amortized O(1) per operation.
    ops_since_rebuild: u64,
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> EventQueue<E> {
    /// Creates an empty queue with the clock at t = 0.
    pub fn new() -> Self {
        Self::with_params(MIN_BUCKETS, DEFAULT_WIDTH_US)
    }

    /// Creates an empty queue pre-sized for `cap` pending events (bucket
    /// occupancy ~2 at peak, so steady-state scheduling never grows the array).
    pub fn with_capacity(cap: usize) -> Self {
        Self::with_params(
            (cap / 2)
                .clamp(MIN_BUCKETS, MAX_BUCKETS)
                .next_power_of_two(),
            DEFAULT_WIDTH_US,
        )
    }

    /// Creates an empty queue pre-sized for `cap` pending events spread over
    /// `horizon` of simulated time, calibrating the initial bucket width so
    /// the first pops already hit short buckets.
    pub fn with_capacity_and_horizon(cap: usize, horizon: SimDuration) -> Self {
        let width = (horizon.as_micros() / cap.max(1) as u64).max(1);
        Self::with_params(
            (cap / 2)
                .clamp(MIN_BUCKETS, MAX_BUCKETS)
                .next_power_of_two(),
            width,
        )
    }

    fn with_params(buckets: usize, width: u64) -> Self {
        debug_assert!(buckets.is_power_of_two());
        EventQueue {
            buckets: std::iter::repeat_with(Vec::new).take(buckets).collect(),
            mins: vec![EMPTY_MIN; buckets],
            mask: buckets - 1,
            width,
            len: 0,
            cur_bucket: 0,
            cur_top: width as u128,
            cal_start: 0,
            cal_end: buckets as u128 * width as u128,
            far: Vec::new(),
            far_min: EMPTY_MIN,
            next_seq: 0,
            now: SimTime::ZERO,
            scheduled_total: 0,
            scratch: Vec::new(),
            key_scratch: Vec::new(),
            drain_buf: Vec::new(),
            peak_depth: 0,
            resizes: 0,
            max_pop_scan: 0,
            calib_pops: 0,
            calib_scans: 0,
            ops_since_rebuild: 0,
        }
    }

    /// The current simulation time: the timestamp of the last event popped.
    #[inline]
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Number of events waiting to fire.
    #[inline]
    pub fn len(&self) -> usize {
        self.len
    }

    /// True if no events are pending.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Total number of events ever scheduled (for diagnostics).
    #[inline]
    pub fn scheduled_total(&self) -> u64 {
        self.scheduled_total
    }

    /// Sizing and scan statistics since construction or the last reset.
    pub fn telemetry(&self) -> QueueTelemetry {
        QueueTelemetry {
            peak_depth: self.peak_depth,
            resizes: self.resizes,
            max_pop_scan: self.max_pop_scan,
            buckets: self.buckets.len(),
            width_us: self.width,
        }
    }

    /// Total event slots currently allocated across the buckets and the far
    /// tier — what [`EventQueue::reset`] preserves for reuse (diagnostics and
    /// tests).
    pub fn storage_capacity(&self) -> usize {
        self.buckets.iter().map(Vec::capacity).sum::<usize>() + self.far.capacity()
    }

    /// Events currently in the calendar tier (the rest wait in `far`).
    #[inline]
    fn cal_len(&self) -> usize {
        self.len - self.far.len()
    }

    /// The calendar's maximum span: one window per bucket.
    #[inline]
    fn span(&self) -> u128 {
        self.buckets.len() as u128 * self.width as u128
    }

    /// The bucket an in-span instant maps to.
    #[inline]
    fn bucket_of(&self, t_us: u64) -> usize {
        ((t_us / self.width) as usize) & self.mask
    }

    /// Exclusive upper edge of the window containing `t_us`.
    #[inline]
    fn window_top(&self, t_us: u64) -> u128 {
        (t_us as u128 / self.width as u128 + 1) * self.width as u128
    }

    /// `t` rounded down to a window boundary.
    #[inline]
    fn align_down(&self, t: u128) -> u128 {
        t / self.width as u128 * self.width as u128
    }

    /// Schedules `event` to fire at absolute time `at`.
    ///
    /// # Panics
    ///
    /// Panics if `at` is earlier than the current time — scheduling into the past is
    /// always a protocol bug, and catching it here keeps the timeline causal.
    pub fn schedule_at(&mut self, at: SimTime, event: E) {
        assert!(
            at >= self.now,
            "cannot schedule into the past: now={}, at={}",
            self.now,
            at
        );
        let seq = self.next_seq;
        self.next_seq += 1;
        self.scheduled_total += 1;
        self.ops_since_rebuild += 1;
        self.len += 1;
        if self.len > self.peak_depth {
            self.peak_depth = self.len;
        }
        let s = Scheduled {
            time: at,
            seq,
            event,
        };
        let t = at.as_micros() as u128;
        if t >= self.cal_end {
            self.push_far(s);
            return;
        }
        if t < self.cal_start {
            // Only possible when a migration jumped the span ahead of `now`
            // and the driver then scheduled in between. Extend the span
            // downward when the window mapping stays bijective; otherwise
            // re-center the whole structure around the new head.
            let ns = self.align_down(t);
            if self.cal_end - ns <= self.span() {
                self.cal_start = ns;
            } else {
                self.recenter(s);
                return;
            }
        }
        self.place(s);
        let nb = self.buckets.len();
        // Sizing tracks *total* pending (both tiers): the far tier's events
        // all pass through the calendar eventually, and one measure for both
        // grow and shrink keeps the two triggers from oscillating when the
        // tier split shifts.
        if self.len > nb * 2 && nb < MAX_BUCKETS {
            self.rebuild(nb * 2);
        } else if self.width > 1
            && self.buckets[self.bucket_of(at.as_micros())].len() > DENSE_BUCKET_MAX
            && self.ops_since_rebuild >= (self.cal_len() as u64 / 2).max(DENSE_BUCKET_MAX as u64)
        {
            // One bucket is absorbing the inserts: the width is too wide for
            // the near-head event density. Re-derive it (the rebuild samples
            // the earliest pending gaps). The `ops_since_rebuild` guard keeps
            // this amortized O(1), and a width of 1 µs cannot narrow further
            // (same-instant ties), so it never thrashes.
            self.rebuild(nb);
        }
    }

    /// Schedules `event` to fire `delay` after the current time.
    #[inline]
    pub fn schedule_after(&mut self, delay: SimDuration, event: E) {
        self.schedule_at(self.now + delay, event);
    }

    /// Schedules one `make()` event at every multiple of `period` from the
    /// current time: at `period, 2·period, …` strictly before `end`, plus at
    /// `end` itself when `inclusive`. This is the sampler hook — mobility
    /// ticks, timeline samples, and telemetry samplers are all ordinary
    /// events laid down up front, so their firing times (and therefore any
    /// output derived from them) are a pure function of the configuration.
    ///
    /// # Panics
    ///
    /// Panics if `period` is zero.
    pub fn schedule_periodic(
        &mut self,
        period: SimDuration,
        end: SimTime,
        inclusive: bool,
        mut make: impl FnMut() -> E,
    ) {
        assert!(period > SimDuration::ZERO, "periodic events need a period");
        let mut t = self.now + period;
        while t < end {
            self.schedule_at(t, make());
            t += period;
        }
        if inclusive && t == end {
            self.schedule_at(t, make());
        }
    }

    /// Appends to the far tier, maintaining its cached minimum.
    #[inline]
    fn push_far(&mut self, s: Scheduled<E>) {
        let key = (s.time, s.seq);
        if key < self.far_min {
            self.far_min = key;
        }
        self.far.push(s);
    }

    /// Inserts an in-span event into its bucket, rewinding the cursor if the
    /// event lands before the current window (possible only after a declined
    /// [`EventQueue::pop_if_at_or_before`] advanced it into the future).
    fn place(&mut self, s: Scheduled<E>) {
        let t = s.time.as_micros();
        debug_assert!((t as u128) >= self.cal_start && (t as u128) < self.cal_end);
        if (t as u128) < self.cur_top - self.width as u128 {
            self.cur_bucket = self.bucket_of(t);
            self.cur_top = self.window_top(t);
        }
        let ix = self.bucket_of(t);
        let key = (s.time, s.seq);
        if key < self.mins[ix] {
            self.mins[ix] = key;
        }
        self.buckets[ix].push(s);
    }

    /// Timestamp of the next pending event, if any. Read-only, O(buckets) —
    /// the hot paths use [`EventQueue::pop_if_at_or_before`], which resumes
    /// from the cursor instead.
    pub fn peek_time(&self) -> Option<SimTime> {
        if self.len == 0 {
            return None;
        }
        if self.cal_len() > 0 {
            // Everything in the calendar precedes everything in `far`, so the
            // smallest cached bucket key is the global head.
            self.mins
                .iter()
                .filter(|m| m.1 != u64::MAX)
                .min()
                .map(|&(t, _)| t)
        } else {
            Some(self.far_min.0)
        }
    }

    /// Locates the bucket holding the earliest pending event, committing the
    /// cursor to its window and migrating from the far tier if the calendar
    /// has drained. Safe to commit even when the caller then declines the
    /// pop: every pending event is `>=` the found head, so no window with due
    /// work is skipped, and [`EventQueue::place`] rewinds for later inserts.
    fn find_next(&mut self) -> Option<usize> {
        if self.len == 0 {
            return None;
        }
        let mut steps = 0u64;
        if self.cal_len() == 0 {
            // The calendar is drained; pull the next span's worth out of
            // the far tier (its head becomes the new span's first event)
            // without walking the remaining empty windows.
            debug_assert!(!self.far.is_empty());
            steps += self.far.len() as u64;
            self.migrate();
        }
        loop {
            let m = self.mins[self.cur_bucket];
            if m.1 != u64::MAX {
                // Bijective mapping: a non-empty bucket at the cursor is
                // due in this very window.
                debug_assert!((m.0.as_micros() as u128) < self.cur_top);
                if steps > self.max_pop_scan {
                    self.max_pop_scan = steps;
                }
                self.calib_scans += steps;
                return Some(self.cur_bucket);
            }
            if self.cur_top >= self.cal_end {
                break;
            }
            steps += 1;
            self.cur_bucket = (self.cur_bucket + 1) & self.mask;
            self.cur_top += self.width as u128;
        }
        // Unreachable while the bijective-span invariant holds (a
        // non-empty calendar always has a bucket between the cursor and
        // the span end); recover with a direct search if it ever breaks.
        debug_assert!(false, "fruitless rotation over a non-empty calendar");
        let (i, m) = self
            .mins
            .iter()
            .enumerate()
            .filter(|(_, m)| m.1 != u64::MAX)
            .min_by_key(|&(_, m)| m)
            .map(|(i, &m)| (i, m))
            .expect("cal_len > 0 but every bucket is empty");
        self.cur_bucket = i;
        self.cur_top = self.window_top(m.0.as_micros());
        Some(i)
    }

    /// Removes the earliest event of bucket `ix` (located by `find_next`),
    /// advancing the clock and running the lazy shrink / width-drift checks.
    /// One scan finds both the minimum and the runner-up, so the cached bucket
    /// minimum is refreshed without a second pass.
    fn commit_pop(&mut self, ix: usize) -> (SimTime, E) {
        let b = &mut self.buckets[ix];
        let blen = b.len() as u64;
        let mut best = 0usize;
        let mut best_key = (b[0].time, b[0].seq);
        let mut second = EMPTY_MIN;
        for (i, e) in b.iter().enumerate().skip(1) {
            let key = (e.time, e.seq);
            if key < best_key {
                second = best_key;
                best_key = key;
                best = i;
            } else if key < second {
                second = key;
            }
        }
        debug_assert_eq!(best_key, self.mins[ix], "cached bucket min is stale");
        let s = b.swap_remove(best);
        self.mins[ix] = second;
        self.len -= 1;
        debug_assert!(s.time >= self.now, "event queue went back in time");
        self.now = s.time;
        self.ops_since_rebuild += 1;
        self.calib_pops += 1;
        self.calib_scans += blen - 1;
        if blen > self.max_pop_scan {
            self.max_pop_scan = blen;
        }
        if self.calib_scans > CALIB_WINDOW * CALIB_SCAN_THRESHOLD {
            // Scan work drifted — rotation steps (width too narrow) or bucket
            // scans (width too wide): re-derive the width from what is
            // pending. Checked per pop, not per window, so a pathological
            // span recalibrates immediately, not 1024 pops later.
            if self.cal_len() >= 2 {
                self.rebuild(self.buckets.len());
            } else {
                self.calib_pops = 0;
                self.calib_scans = 0;
            }
        } else if self.calib_pops >= CALIB_WINDOW {
            self.calib_pops = 0;
            self.calib_scans = 0;
        }
        if self.buckets.len() > MIN_BUCKETS && self.len < self.buckets.len() / 8 {
            self.rebuild(self.buckets.len() / 2);
        }
        (s.time, s.event)
    }

    /// Pops the earliest event, advancing the clock to its timestamp.
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        let ix = self.find_next()?;
        Some(self.commit_pop(ix))
    }

    /// Timestamp and payload of the next pending event without removing it or
    /// advancing the clock. Unlike [`EventQueue::peek_time`] this commits the
    /// cursor to the head's window (safe — see [`EventQueue::find_next`]), so
    /// a subsequent pop resumes in O(1). The sharded façade uses this to keep
    /// a per-shard head cache fresh after each pop.
    pub fn peek_entry(&mut self) -> Option<(SimTime, &E)> {
        let ix = self.find_next()?;
        let b = &self.buckets[ix];
        let mut best = 0usize;
        let mut best_key = (b[0].time, b[0].seq);
        for (i, e) in b.iter().enumerate().skip(1) {
            let key = (e.time, e.seq);
            if key < best_key {
                best_key = key;
                best = i;
            }
        }
        debug_assert_eq!(best_key, self.mins[ix], "cached bucket min is stale");
        Some((best_key.0, &b[best].event))
    }

    /// Pops the earliest event only if it fires at or before `horizon` — the
    /// driver's one-touch replacement for a peek-then-pop pair. Returns `None`
    /// with the event left in place when the head is beyond the horizon.
    pub fn pop_if_at_or_before(&mut self, horizon: SimTime) -> Option<(SimTime, E)> {
        let ix = self.find_next()?;
        if self.mins[ix].0 > horizon {
            return None;
        }
        Some(self.commit_pop(ix))
    }

    /// Drains every pending event with `time <= horizon` into `out`, appended
    /// as `(time, event)` pairs in global `(time, seq)` order, and returns how
    /// many were drained. The clock advances to the last drained timestamp,
    /// exactly as the equivalent sequence of [`EventQueue::pop_if_at_or_before`]
    /// calls would; a drain that removes nothing leaves the clock untouched.
    ///
    /// This is the bulk form of the bounded pop, and the epoch executor's whole
    /// reason to exist on the queue side: a same-instant burst of `k` radio
    /// deliveries shares one bucket, so popping it one event at a time re-scans
    /// the bucket `k` times — O(k²) per burst. Taking qualifying buckets
    /// wholesale and sorting once makes the same drain O(k log k).
    pub fn drain_into(&mut self, horizon: SimTime, out: &mut Vec<(SimTime, E)>) -> usize {
        let mut buf = std::mem::take(&mut self.drain_buf);
        debug_assert!(buf.is_empty());
        let horizon_us = horizon.as_micros() as u128;
        loop {
            if self.len == 0 {
                break;
            }
            if self.cal_len() == 0 && self.far_min.0 > horizon {
                // Everything left waits in the far tier beyond the horizon —
                // don't pay a migration just to discover that.
                break;
            }
            let Some(ix) = self.find_next() else { break };
            if self.mins[ix].0 > horizon {
                break;
            }
            // `cur_top` is the exclusive upper µs edge of this bucket's
            // window: when the whole window is at or before the horizon, the
            // bucket moves out wholesale.
            if self.cur_top <= horizon_us + 1 {
                let taken = self.buckets[ix].len();
                buf.append(&mut self.buckets[ix]);
                self.mins[ix] = EMPTY_MIN;
                self.len -= taken;
                if taken as u64 > self.max_pop_scan {
                    self.max_pop_scan = taken as u64;
                }
                self.calib_pops += taken as u64;
                self.calib_scans += taken as u64;
                self.ops_since_rebuild += taken as u64;
            } else {
                // The window straddles the horizon: extract the qualifying
                // events and stop — the window partition guarantees every
                // other pending event (later windows, far tier) is strictly
                // after the horizon.
                let b = &mut self.buckets[ix];
                let blen = b.len() as u64;
                let mut taken = 0usize;
                let mut min = EMPTY_MIN;
                let mut i = 0;
                while i < b.len() {
                    if b[i].time <= horizon {
                        buf.push(b.swap_remove(i));
                        taken += 1;
                    } else {
                        let key = (b[i].time, b[i].seq);
                        if key < min {
                            min = key;
                        }
                        i += 1;
                    }
                }
                self.mins[ix] = min;
                self.len -= taken;
                if blen > self.max_pop_scan {
                    self.max_pop_scan = blen;
                }
                self.calib_pops += taken as u64;
                self.calib_scans += blen;
                self.ops_since_rebuild += taken as u64;
                break;
            }
        }
        let drained = buf.len();
        if drained > 0 {
            buf.sort_unstable_by_key(|s| (s.time, s.seq));
            debug_assert!(buf[0].time >= self.now, "drain went back in time");
            self.now = buf[drained - 1].time;
            out.reserve(drained);
            out.extend(buf.drain(..).map(|s| (s.time, s.event)));
            // One deferred sizing pass for the whole batch (the per-pop width
            // drift check is pointless here — the batch never re-scanned).
            if self.calib_pops >= CALIB_WINDOW {
                self.calib_pops = 0;
                self.calib_scans = 0;
            }
            if self.buckets.len() > MIN_BUCKETS && self.len < self.buckets.len() / 8 {
                self.rebuild(self.buckets.len() / 2);
            }
        }
        self.drain_buf = buf;
        drained
    }

    /// Re-buckets the calendar tier into `new_buckets` buckets with a freshly
    /// derived width. The far tier is untouched; calendar events past the new
    /// (possibly shorter) span spill into it.
    fn rebuild(&mut self, new_buckets: usize) {
        let end_cap = self.cal_end;
        let mut scratch = std::mem::take(&mut self.scratch);
        scratch.clear();
        for b in &mut self.buckets {
            scratch.append(b);
        }
        self.scratch = scratch;
        self.rebuild_from_scratch(new_buckets, end_cap);
    }

    /// Empties the far tier into the staging buffer and rebuilds: the next
    /// span's worth lands in buckets, the rest returns to `far`. Called by
    /// `find_next` when the calendar drains, so its cost is amortized over
    /// the span's pops.
    fn migrate(&mut self) {
        let mut scratch = std::mem::take(&mut self.scratch);
        scratch.clear();
        scratch.append(&mut self.far);
        self.far_min = EMPTY_MIN;
        self.scratch = scratch;
        self.rebuild_from_scratch(self.buckets.len(), u128::MAX);
    }

    /// Full rebuild around an event that lands before a span that cannot be
    /// extended to cover it (rare: only after a migration jumped far ahead).
    fn recenter(&mut self, s: Scheduled<E>) {
        let mut scratch = std::mem::take(&mut self.scratch);
        scratch.clear();
        for b in &mut self.buckets {
            scratch.append(b);
        }
        scratch.append(&mut self.far);
        self.far_min = EMPTY_MIN;
        scratch.push(s);
        self.scratch = scratch;
        self.rebuild_from_scratch(self.buckets.len(), u128::MAX);
    }

    /// Core of every resize/recalibration/migration: distributes the staged
    /// events into `new_buckets` buckets, re-deriving the width from the gaps
    /// among the [`WIDTH_SAMPLE`] *earliest* staged events (Brown\'s
    /// calibration: head-of-queue density sets the width — a far tail would
    /// inflate it by orders of magnitude and collapse the head into one
    /// bucket). The span anchors at `now` when the head still fits a year
    /// from there (so fresh inserts stay in-span), else at the head itself;
    /// `end_cap` bounds the new `cal_end` so pre-existing far events stay
    /// beyond it. Events past the new span spill to `far`. Pop order is
    /// untouched — the order is structural, and the sample is the set of k
    /// smallest under the total `(time, seq)` order, so the width is a pure
    /// function of the pending events. Existing allocations are reused, so
    /// steady-state resizing settles to zero allocations.
    fn rebuild_from_scratch(&mut self, new_buckets: usize, end_cap: u128) {
        self.resizes += 1;
        self.ops_since_rebuild = 0;
        self.calib_pops = 0;
        self.calib_scans = 0;
        if new_buckets < self.buckets.len() {
            self.buckets.truncate(new_buckets);
        } else {
            self.buckets.resize_with(new_buckets, Vec::new);
        }
        self.mins.clear();
        self.mins.resize(new_buckets, EMPTY_MIN);
        self.mask = new_buckets - 1;
        let mut min_t: Option<u128> = None;
        if !self.scratch.is_empty() {
            self.key_scratch.clear();
            self.key_scratch
                .extend(self.scratch.iter().map(|s| (s.time.as_micros(), s.seq)));
            let k = self.key_scratch.len().min(WIDTH_SAMPLE);
            self.key_scratch.select_nth_unstable(k - 1);
            let mut lo = u64::MAX;
            let mut hi = 0u64;
            for &(t, _) in &self.key_scratch[..k] {
                lo = lo.min(t);
                hi = hi.max(t);
            }
            min_t = Some(lo as u128);
            if k >= 2 {
                // ~3 average near-head sample gaps per bucket — Brown\'s
                // ratio, keeps head buckets short so pops stay O(1). (u128:
                // a near-`SimTime::MAX` spread must not overflow.)
                let near = (hi - lo) as u128 * 3 / (k as u128 - 1);
                self.width = near.clamp(1, u64::MAX as u128) as u64;
            }
        }
        let span = self.span();
        let now_aligned = self.align_down(self.now.as_micros() as u128);
        let anchor = match min_t {
            None => now_aligned,
            // Head times are never behind `now`, so `align_down(mt)` is the
            // higher (but always progress-guaranteeing) anchor.
            Some(mt) => {
                if mt < now_aligned + span {
                    now_aligned
                } else {
                    self.align_down(mt)
                }
            }
        };
        self.cal_start = anchor;
        let mut new_end = anchor + span;
        if new_end > end_cap {
            if self.far.is_empty() {
                // Nothing beyond the old ceiling — free to raise it.
            } else if !self.scratch.is_empty() {
                // The new span reaches past far events: fold the far tier into
                // this rebuild so the ceiling can rise without stranding them
                // (everything still past the new end spills right back).
                let mut scratch = std::mem::take(&mut self.scratch);
                scratch.append(&mut self.far);
                self.far_min = EMPTY_MIN;
                self.scratch = scratch;
            } else {
                // Empty calendar: keep the ceiling and let `migrate` re-derive
                // the width from the far tier's own head instead.
                new_end = end_cap;
            }
        }
        self.cal_end = new_end;
        debug_assert!(self.cal_end > self.cal_start);
        let cursor_t = min_t.unwrap_or(anchor).max(anchor);
        self.cur_bucket = self.bucket_of(cursor_t as u64);
        self.cur_top = self.align_down(cursor_t) + self.width as u128;
        let mut scratch = std::mem::take(&mut self.scratch);
        for s in scratch.drain(..) {
            if (s.time.as_micros() as u128) < self.cal_end {
                self.place(s);
            } else {
                self.push_far(s);
            }
        }
        self.scratch = scratch;
    }

    /// Drops every pending event and resets the clock to t = 0, **keeping the
    /// allocated storage**: the bucket array, each bucket\'s capacity, the far
    /// tier\'s capacity, the staging buffers, and the calibrated width all
    /// survive, so a pooled worker reusing one queue across seeds never
    /// re-grows it.
    pub fn reset(&mut self) {
        for b in &mut self.buckets {
            b.clear();
        }
        self.mins.fill(EMPTY_MIN);
        self.far.clear();
        self.far_min = EMPTY_MIN;
        self.len = 0;
        self.cur_bucket = 0;
        self.cur_top = self.width as u128;
        self.cal_start = 0;
        self.cal_end = self.span();
        self.next_seq = 0;
        self.now = SimTime::ZERO;
        self.scheduled_total = 0;
        self.peak_depth = 0;
        self.resizes = 0;
        self.max_pop_scan = 0;
        self.calib_pops = 0;
        self.calib_scans = 0;
        self.ops_since_rebuild = 0;
    }
}

/// Outcome of [`run`] / [`run_until`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RunOutcome {
    /// The queue drained before the horizon.
    Drained,
    /// The horizon was reached with events still pending.
    HorizonReached,
    /// The handler requested an early stop.
    Stopped,
}

/// What a handler tells the driver after each event.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Control {
    /// Keep processing events.
    #[default]
    Continue,
    /// Stop the run immediately.
    Stop,
}

/// Runs the queue until it drains, the handler stops the run, or `horizon` is passed.
///
/// `handler` receives each event together with the queue so it can schedule follow-up
/// events. Events with `time > horizon` are left in the queue; the clock never
/// advances past the last event actually processed. One queue operation per event:
/// the horizon check rides inside [`EventQueue::pop_if_at_or_before`].
pub fn run_until<E>(
    queue: &mut EventQueue<E>,
    horizon: SimTime,
    mut handler: impl FnMut(SimTime, E, &mut EventQueue<E>) -> Control,
) -> RunOutcome {
    loop {
        match queue.pop_if_at_or_before(horizon) {
            Some((t, e)) => {
                if handler(t, e, queue) == Control::Stop {
                    return RunOutcome::Stopped;
                }
            }
            None => {
                return if queue.is_empty() {
                    RunOutcome::Drained
                } else {
                    RunOutcome::HorizonReached
                };
            }
        }
    }
}

/// Runs the queue until it drains or the handler stops the run.
pub fn run<E>(
    queue: &mut EventQueue<E>,
    handler: impl FnMut(SimTime, E, &mut EventQueue<E>) -> Control,
) -> RunOutcome {
    run_until(queue, SimTime::MAX, handler)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.schedule_at(SimTime::from_secs(3), "c");
        q.schedule_at(SimTime::from_secs(1), "a");
        q.schedule_at(SimTime::from_secs(2), "b");
        let order: Vec<_> = std::iter::from_fn(|| q.pop()).map(|(_, e)| e).collect();
        assert_eq!(order, vec!["a", "b", "c"]);
    }

    #[test]
    fn schedule_periodic_lays_down_every_multiple() {
        // Exclusive end: 10 s / 3 s → samples at 3, 6, 9 only.
        let mut q = EventQueue::new();
        q.schedule_periodic(
            SimDuration::from_secs(3),
            SimTime::from_secs(10),
            false,
            || "s",
        );
        let times: Vec<u64> = std::iter::from_fn(|| q.pop())
            .map(|(t, _)| t.as_micros() / 1_000_000)
            .collect();
        assert_eq!(times, vec![3, 6, 9]);
        // Inclusive end landing exactly on a multiple: 9 s / 3 s → 3, 6, 9.
        let mut q = EventQueue::new();
        q.schedule_periodic(
            SimDuration::from_secs(3),
            SimTime::from_secs(9),
            true,
            || "s",
        );
        assert_eq!(q.len(), 3);
        // Exclusive end on an exact multiple drops the boundary sample.
        let mut q = EventQueue::new();
        q.schedule_periodic(
            SimDuration::from_secs(3),
            SimTime::from_secs(9),
            false,
            || "s",
        );
        assert_eq!(q.len(), 2);
        // A period longer than the horizon schedules nothing.
        let mut q = EventQueue::<&str>::new();
        q.schedule_periodic(
            SimDuration::from_secs(30),
            SimTime::from_secs(9),
            true,
            || "s",
        );
        assert_eq!(q.len(), 0);
    }

    #[test]
    #[should_panic(expected = "need a period")]
    fn schedule_periodic_rejects_zero_period() {
        EventQueue::new().schedule_periodic(SimDuration::ZERO, SimTime::from_secs(1), true, || ());
    }

    #[test]
    fn same_time_is_fifo() {
        let mut q = EventQueue::new();
        let t = SimTime::from_secs(1);
        for i in 0..100 {
            q.schedule_at(t, i);
        }
        let order: Vec<_> = std::iter::from_fn(|| q.pop()).map(|(_, e)| e).collect();
        assert_eq!(order, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn a_full_instant_burst_stays_fifo_through_resizes() {
        // 10k events at one instant all land in one bucket; growth resizes
        // re-bucket them repeatedly and must never disturb the FIFO order.
        let mut q = EventQueue::new();
        let t = SimTime::from_millis(5);
        for i in 0..10_000u32 {
            q.schedule_at(t, i);
        }
        assert!(q.telemetry().resizes > 0, "growth resizes expected");
        let order: Vec<_> = std::iter::from_fn(|| q.pop()).map(|(_, e)| e).collect();
        assert_eq!(order, (0..10_000).collect::<Vec<_>>());
    }

    #[test]
    fn far_future_events_beyond_the_calendar_year_pop_in_order() {
        // new() starts with 16 buckets of 1 ms: a 16 ms year. Events hours and
        // days out exercise the fruitless-rotation → direct-search jump.
        let mut q = EventQueue::new();
        q.schedule_at(SimTime::from_secs(86_400), "day");
        q.schedule_at(SimTime::from_millis(1), "soon");
        q.schedule_at(SimTime::from_secs(3_600), "hour");
        q.schedule_at(SimTime::from_secs(5), "five");
        let order: Vec<_> = std::iter::from_fn(|| q.pop()).map(|(_, e)| e).collect();
        assert_eq!(order, vec!["soon", "five", "hour", "day"]);
    }

    #[test]
    fn simtime_max_events_are_representable() {
        let mut q = EventQueue::new();
        q.schedule_at(SimTime::MAX, "end");
        q.schedule_at(SimTime::from_secs(1), "start");
        assert_eq!(q.peek_time(), Some(SimTime::from_secs(1)));
        assert_eq!(q.pop(), Some((SimTime::from_secs(1), "start")));
        assert_eq!(q.pop(), Some((SimTime::MAX, "end")));
        assert_eq!(q.now(), SimTime::MAX);
    }

    #[test]
    fn clock_advances_with_pops() {
        let mut q = EventQueue::new();
        q.schedule_at(SimTime::from_secs(5), ());
        assert_eq!(q.now(), SimTime::ZERO);
        q.pop();
        assert_eq!(q.now(), SimTime::from_secs(5));
    }

    #[test]
    #[should_panic(expected = "cannot schedule into the past")]
    fn scheduling_into_past_panics() {
        let mut q = EventQueue::new();
        q.schedule_at(SimTime::from_secs(5), ());
        q.pop();
        q.schedule_at(SimTime::from_secs(4), ());
    }

    #[test]
    fn schedule_after_is_relative_to_now() {
        let mut q = EventQueue::new();
        q.schedule_at(SimTime::from_secs(10), 0);
        q.pop();
        q.schedule_after(SimDuration::from_secs(2), 1);
        let (t, _) = q.pop().unwrap();
        assert_eq!(t, SimTime::from_secs(12));
    }

    #[test]
    fn pop_if_at_or_before_is_one_touch() {
        let mut q = EventQueue::new();
        q.schedule_at(SimTime::from_secs(1), "a");
        q.schedule_at(SimTime::from_secs(3), "b");
        assert_eq!(
            q.pop_if_at_or_before(SimTime::from_secs(2)),
            Some((SimTime::from_secs(1), "a"))
        );
        // Declined: the head stays queued and the clock does not move.
        assert_eq!(q.pop_if_at_or_before(SimTime::from_secs(2)), None);
        assert_eq!(q.len(), 1);
        assert_eq!(q.now(), SimTime::from_secs(1));
        // A later insert behind the advanced cursor must still pop first.
        q.schedule_at(SimTime::from_secs(2), "mid");
        assert_eq!(
            q.pop_if_at_or_before(SimTime::MAX),
            Some((SimTime::from_secs(2), "mid"))
        );
        assert_eq!(
            q.pop_if_at_or_before(SimTime::MAX),
            Some((SimTime::from_secs(3), "b"))
        );
        assert_eq!(q.pop_if_at_or_before(SimTime::MAX), None);
    }

    #[test]
    fn peek_entry_sees_head_without_popping() {
        let mut q = EventQueue::new();
        q.schedule_at(SimTime::from_secs(2), "b");
        q.schedule_at(SimTime::from_secs(1), "a");
        assert_eq!(q.peek_entry(), Some((SimTime::from_secs(1), &"a")));
        assert_eq!(q.len(), 2);
        assert_eq!(q.now(), SimTime::ZERO, "peeking never advances the clock");
        assert_eq!(q.pop(), Some((SimTime::from_secs(1), "a")));
        assert_eq!(q.peek_entry(), Some((SimTime::from_secs(2), &"b")));
        // A far-tier head is visible too: the peek migrates exactly as a pop
        // would, and peeking twice is idempotent.
        let mut q = EventQueue::new();
        q.schedule_at(SimTime::from_secs(86_400), "day");
        assert_eq!(q.peek_entry(), Some((SimTime::from_secs(86_400), &"day")));
        assert_eq!(q.peek_entry(), Some((SimTime::from_secs(86_400), &"day")));
        assert!(EventQueue::<u8>::new().peek_entry().is_none());
    }

    #[test]
    fn run_until_respects_horizon() {
        let mut q = EventQueue::new();
        for s in 1..=10u64 {
            q.schedule_at(SimTime::from_secs(s), s);
        }
        let mut seen = vec![];
        let outcome = run_until(&mut q, SimTime::from_secs(5), |_, e, _| {
            seen.push(e);
            Control::Continue
        });
        assert_eq!(outcome, RunOutcome::HorizonReached);
        assert_eq!(seen, vec![1, 2, 3, 4, 5]);
        assert_eq!(q.len(), 5);
    }

    #[test]
    fn run_with_simtime_max_horizon_drains() {
        let mut q = EventQueue::new();
        q.schedule_at(SimTime::MAX, "sentinel");
        q.schedule_at(SimTime::from_secs(1), "first");
        let mut seen = vec![];
        let outcome = run_until(&mut q, SimTime::MAX, |_, e, _| {
            seen.push(e);
            Control::Continue
        });
        assert_eq!(outcome, RunOutcome::Drained);
        assert_eq!(seen, vec!["first", "sentinel"]);
    }

    #[test]
    fn run_drains_and_allows_cascading() {
        let mut q = EventQueue::new();
        q.schedule_at(SimTime::from_secs(1), 3u32);
        let mut count = 0;
        let outcome = run(&mut q, |_, e, q| {
            count += 1;
            if e > 0 {
                q.schedule_after(SimDuration::from_secs(1), e - 1);
            }
            Control::Continue
        });
        assert_eq!(outcome, RunOutcome::Drained);
        assert_eq!(count, 4); // 3, 2, 1, 0
    }

    #[test]
    fn handler_can_stop_early() {
        let mut q = EventQueue::new();
        for s in 1..=10u64 {
            q.schedule_at(SimTime::from_secs(s), s);
        }
        let mut seen = 0;
        let outcome = run(&mut q, |_, _, _| {
            seen += 1;
            if seen == 3 {
                Control::Stop
            } else {
                Control::Continue
            }
        });
        assert_eq!(outcome, RunOutcome::Stopped);
        assert_eq!(q.len(), 7);
    }

    #[test]
    fn reset_clears_everything() {
        let mut q = EventQueue::new();
        q.schedule_at(SimTime::from_secs(1), ());
        q.pop();
        q.reset();
        assert!(q.is_empty());
        assert_eq!(q.now(), SimTime::ZERO);
        assert_eq!(q.scheduled_total(), 0);
    }

    #[test]
    fn reset_keeps_allocated_storage() {
        // The pooled-replicate contract: a drained-and-reset queue re-runs the
        // same workload without growing again.
        let mut q = EventQueue::with_capacity(64);
        for i in 0..5_000u64 {
            q.schedule_at(SimTime::from_micros(i * 37 % 100_000), i);
        }
        let grown = q.telemetry();
        let cap = q.storage_capacity();
        assert!(grown.buckets > 16, "growth expected past the initial array");
        assert!(cap >= 5_000, "buckets hold capacity for what was queued");
        q.reset();
        let after = q.telemetry();
        assert_eq!(after.buckets, grown.buckets, "bucket array survives reset");
        assert_eq!(after.width_us, grown.width_us, "calibration survives reset");
        assert_eq!(q.storage_capacity(), cap, "bucket capacity survives reset");
        assert_eq!(after.peak_depth, 0, "per-run telemetry is cleared");
        assert_eq!(after.resizes, 0);
        // The re-run schedules the same load without a single resize.
        for i in 0..5_000u64 {
            q.schedule_at(SimTime::from_micros(i * 37 % 100_000), i);
        }
        assert_eq!(q.telemetry().resizes, 0, "reset queue re-grew its storage");
        assert_eq!(q.storage_capacity(), cap);
    }

    /// Drives a clone-free differential: `drain_into` must emit exactly the
    /// stream repeated `pop_if_at_or_before` calls would, with the same
    /// clock/len after every horizon.
    fn assert_drain_matches_pops(events: &[(u64, u32)], horizons: &[u64]) {
        let mut bulk = EventQueue::new();
        let mut single = EventQueue::new();
        for &(t, v) in events {
            bulk.schedule_at(SimTime::from_micros(t), v);
            single.schedule_at(SimTime::from_micros(t), v);
        }
        for &h in horizons {
            let horizon = SimTime::from_micros(h);
            let mut got = Vec::new();
            bulk.drain_into(horizon, &mut got);
            let mut want = Vec::new();
            while let Some(e) = single.pop_if_at_or_before(horizon) {
                want.push(e);
            }
            assert_eq!(got, want, "drain diverged at horizon {h}");
            assert_eq!(bulk.len(), single.len());
            assert_eq!(bulk.now(), single.now());
        }
    }

    #[test]
    fn drain_into_matches_repeated_bounded_pops() {
        // Mixed spacing: same-instant bursts, sub-width jitter, sparse tail.
        let events: Vec<(u64, u32)> = (0..2_000u32)
            .map(|i| ((i as u64 * 137) % 50_000, i))
            .chain((0..500u32).map(|i| (7_777, 10_000 + i))) // one-instant burst
            .chain((0..50u32).map(|i| (10_000_000 + i as u64 * 999_983, 20_000 + i)))
            .collect();
        assert_drain_matches_pops(
            &events,
            &[
                0,
                100,
                7_776,
                7_777,
                7_778,
                49_999,
                2_000_000,
                30_000_000,
                u64::MAX / 2,
            ],
        );
    }

    #[test]
    fn drain_into_interleaves_with_schedules_and_pops() {
        let mut q = EventQueue::new();
        for i in 0..100u64 {
            q.schedule_at(SimTime::from_micros(i * 10), i);
        }
        let mut out = Vec::new();
        assert_eq!(q.drain_into(SimTime::from_micros(95), &mut out), 10);
        assert_eq!(q.now(), SimTime::from_micros(90));
        // Schedules behind the (advanced) cursor still pop first.
        q.schedule_at(SimTime::from_micros(91), 777);
        assert_eq!(q.pop(), Some((SimTime::from_micros(91), 777)));
        out.clear();
        assert_eq!(q.drain_into(SimTime::MAX, &mut out), 90);
        assert_eq!(
            out.iter().map(|&(_, e)| e).collect::<Vec<_>>(),
            (10..100).collect::<Vec<_>>()
        );
        assert!(q.is_empty());
        // An empty drain below the head moves nothing, not even the clock.
        q.schedule_at(SimTime::from_secs(10), 1);
        out.clear();
        assert_eq!(q.drain_into(SimTime::from_secs(5), &mut out), 0);
        assert_eq!(q.len(), 1);
        assert_eq!(q.now(), SimTime::from_micros(990));
    }

    #[test]
    fn drain_into_pulls_far_tier_in_order() {
        // new() spans 16 ms; events hours out live in `far` and must migrate
        // through cleanly mid-drain.
        let mut q = EventQueue::new();
        q.schedule_at(SimTime::from_secs(3_600), "hour");
        q.schedule_at(SimTime::from_millis(1), "soon");
        q.schedule_at(SimTime::from_secs(86_400), "day");
        let mut out = Vec::new();
        assert_eq!(q.drain_into(SimTime::from_secs(7_200), &mut out), 2);
        assert_eq!(
            out.iter().map(|&(_, e)| e).collect::<Vec<_>>(),
            vec!["soon", "hour"]
        );
        assert_eq!(q.len(), 1);
        // Far head beyond the horizon: no migration churn, no clock motion.
        let resizes = q.telemetry().resizes;
        out.clear();
        assert_eq!(q.drain_into(SimTime::from_secs(7_300), &mut out), 0);
        assert_eq!(q.telemetry().resizes, resizes);
    }

    #[test]
    fn drain_into_keeps_same_instant_fifo() {
        let mut q = EventQueue::new();
        let t = SimTime::from_millis(5);
        for i in 0..10_000u32 {
            q.schedule_at(t, i);
        }
        let mut out = Vec::new();
        assert_eq!(q.drain_into(t, &mut out), 10_000);
        assert_eq!(
            out.into_iter().map(|(_, e)| e).collect::<Vec<_>>(),
            (0..10_000).collect::<Vec<_>>()
        );
    }

    #[test]
    fn telemetry_tracks_peak_and_scans() {
        let mut q = EventQueue::new();
        for s in 0..100u64 {
            q.schedule_at(SimTime::from_secs(s), s);
        }
        assert_eq!(q.telemetry().peak_depth, 100);
        while q.pop().is_some() {}
        let t = q.telemetry();
        assert!(t.max_pop_scan >= 1);
        assert_eq!(q.len(), 0);
    }
}
