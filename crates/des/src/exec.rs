//! Epoch-parallel executor: worker threads advance per-shard calendar queues,
//! a single commit thread executes the globally merged stream.
//!
//! [`EpochExecutor`] is the multi-core counterpart of [`ShardedQueue`]. Both
//! expose the same pop stream — the exact `(time, global seq)` order one
//! unsharded [`EventQueue`] would produce — but where the sharded queue
//! interleaves one pop at a time, the executor advances whole *epochs*:
//!
//! 1. **Barrier.** When the committed region runs dry, the commit side finds
//!    the global minimum pending key across every shard's cached head and
//!    mailbox, fixes an inclusive epoch frontier `F = min + K·lookahead − 1µs`,
//!    and hands each worker its shards' accumulated mailbox batches.
//! 2. **Epoch.** Each worker inserts its mailbox batch and bulk-drains its
//!    shards up to `F` ([`EventQueue::drain_into`]), returning per-shard
//!    batches already sorted by `(time, seq)` plus the next head key. Workers
//!    only do queue mechanics — no handler runs off the commit thread.
//! 3. **Commit.** The commit side merges the per-shard batch heads (plus an
//!    *overlay* heap, below) and executes events one by one in global order.
//!    Events scheduled by handlers during the commit phase go to the
//!    per-shard mailboxes when they land beyond `F`, or into the overlay heap
//!    when they land inside the committed region — including any that violate
//!    the lookahead contract, which are counted exactly as the serial path
//!    counts them but still execute in their correct global slot.
//!
//! # Why the merge is byte-identical, at any thread count
//!
//! * Workers never execute handlers, so the *values* produced by a run are
//!   decided solely on the commit thread, in the merged order.
//! * The merged order is the total `(time, global seq)` order: batches are
//!   sorted by it, the overlay heap orders by it, and within a shard the
//!   inner queue's local-sequence order agrees with it (mailbox batches are
//!   flushed whole, in global-sequence order, every barrier — so local
//!   sequence numbers are assigned in global-sequence order).
//! * Barrier placement, epoch spans, and the adaptive span multiplier are
//!   pure functions of the event set, never of thread scheduling. The thread
//!   count only decides which OS thread runs which shard's queue mechanics.
//!
//! Epochs may span *many* lookahead windows (`K` adapts to drain volume):
//! that is safe precisely because handlers stay on the commit thread — a
//! commit-phase schedule landing inside the already-drained region is routed
//! to the overlay heap instead of the worker queue, so nothing is ever
//! executed early or out of order. The lookahead contract is still audited
//! event-by-event through the shared [`SyncLedger`], and a violation-free run
//! certifies that a handler-parallel executor would have been safe too.
//!
//! With `threads == 1` the executor runs the identical algorithm inline
//! (no channels, no threads): same barriers, same batches, same counters.
//! This inline mode is also what makes epoch batching pay off on one core —
//! bulk drains replace the per-pop bucket re-scans that dominate dense
//! sharded runs.

use std::collections::BinaryHeap;
use std::sync::mpsc;
use std::thread::JoinHandle;

use crate::event::{EventQueue, QueueTelemetry};
use crate::shard::{checked_shards, ShardConfigError, ShardStats, SyncLedger, EMPTY_HEAD};
use crate::time::{SimDuration, SimTime};

/// Epoch spans start at one lookahead window and adapt by powers of two:
/// below this many drained events per epoch the span doubles (barrier
/// overhead dominates), above [`SPAN_SHRINK_ABOVE`] it halves (commit-side
/// batches grow past cache-friendly sizes). Both triggers are pure functions
/// of the drained totals, so the span sequence is identical for every thread
/// count.
const SPAN_GROW_BELOW: usize = 64;
/// See [`SPAN_GROW_BELOW`].
const SPAN_SHRINK_ABOVE: usize = 4096;
/// Upper bound on the span multiplier (2^16 lookahead windows per epoch).
const SPAN_MAX_MULT: u64 = 1 << 16;

/// A commit-phase schedule that landed inside the committed region: merged
/// by `(time, gseq)` against the batch heads. Reverse ordering turns
/// `BinaryHeap`'s max-heap into the min-heap the merge needs.
#[derive(Debug)]
struct OverlayEntry<E> {
    time: SimTime,
    gseq: u64,
    shard: usize,
    event: E,
}

impl<E> OverlayEntry<E> {
    #[inline]
    fn key(&self) -> (SimTime, u64) {
        (self.time, self.gseq)
    }
}

impl<E> PartialEq for OverlayEntry<E> {
    fn eq(&self, other: &Self) -> bool {
        self.key() == other.key()
    }
}
impl<E> Eq for OverlayEntry<E> {}
impl<E> PartialOrd for OverlayEntry<E> {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl<E> Ord for OverlayEntry<E> {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        other.key().cmp(&self.key())
    }
}

/// Commit thread → worker messages.
enum ToWorker<E> {
    /// Insert the mailbox batches (one per owned shard, parallel to the
    /// worker's shard list), then drain each owned shard up to `until`
    /// (inclusive) and reply with [`FromWorker::Epoch`].
    Epoch {
        inserts: Vec<Vec<(SimTime, u64, E)>>,
        until: SimTime,
    },
    /// Reply with each owned shard's queue telemetry.
    Telemetry,
}

/// One drained shard in an epoch reply:
/// `(shard, drained batch ascending by (time, gseq), next head key)`.
type DrainedShard<E> = (usize, Vec<(SimTime, (u64, E))>, (SimTime, u64));

/// Worker → commit thread replies (tagged; all workers share one channel).
enum FromWorker<E> {
    Epoch {
        shards: Vec<DrainedShard<E>>,
    },
    Telemetry {
        shards: Vec<(usize, QueueTelemetry)>,
    },
}

/// Where the per-shard queue mechanics run.
enum Backend<E> {
    /// `threads == 1`: same epochs, run in place on the commit thread.
    Inline { queues: Vec<EventQueue<(u64, E)>> },
    /// `threads > 1`: persistent workers, one channel pair per worker.
    Threaded {
        to_workers: Vec<mpsc::Sender<ToWorker<E>>>,
        from_workers: mpsc::Receiver<FromWorker<E>>,
        handles: Vec<Option<JoinHandle<()>>>,
        /// `owned[w]` lists the shards worker `w` owns (`s % threads == w`).
        owned: Vec<Vec<usize>>,
    },
}

/// The worker loop: pure queue mechanics on the owned shards, driven entirely
/// by barrier messages. Exits when the commit side hangs up.
fn worker_loop<E: Send>(
    owned: Vec<usize>,
    mut queues: Vec<EventQueue<(u64, E)>>,
    rx: mpsc::Receiver<ToWorker<E>>,
    tx: mpsc::Sender<FromWorker<E>>,
) {
    while let Ok(msg) = rx.recv() {
        let reply = match msg {
            ToWorker::Epoch { inserts, until } => {
                let mut shards = Vec::with_capacity(owned.len());
                for ((q, &s), batch_in) in queues.iter_mut().zip(&owned).zip(inserts) {
                    for (at, gseq, event) in batch_in {
                        q.schedule_at(at, (gseq, event));
                    }
                    let mut batch = Vec::new();
                    q.drain_into(until, &mut batch);
                    let head = q.peek_entry().map(|(t, e)| (t, e.0)).unwrap_or(EMPTY_HEAD);
                    shards.push((s, batch, head));
                }
                FromWorker::Epoch { shards }
            }
            ToWorker::Telemetry => FromWorker::Telemetry {
                shards: owned
                    .iter()
                    .zip(&queues)
                    .map(|(&s, q)| (s, q.telemetry()))
                    .collect(),
            },
        };
        if tx.send(reply).is_err() {
            return;
        }
    }
}

/// A multi-threaded conservative executor over per-shard [`EventQueue`]s,
/// pop-stream-identical to [`ShardedQueue`] — see the module docs for the
/// barrier protocol and the byte-identity argument.
///
/// Unlike [`ShardedQueue`], construction requires a strictly positive
/// lookahead even for one shard: the epoch machinery is lookahead-paced.
#[derive(Debug)]
pub struct EpochExecutor<E: Send + 'static> {
    ledger: SyncLedger,
    backend: Backend<E>,
    /// Per-shard batches of scheduled events beyond the committed frontier,
    /// waiting for the next barrier flush. Always in global-sequence order.
    mailboxes: Vec<Vec<(SimTime, u64, E)>>,
    /// Cached min key per mailbox, [`EMPTY_HEAD`] when empty.
    mailbox_mins: Vec<(SimTime, u64)>,
    /// Per-shard committed batch, sorted *descending* so the next event pops
    /// from the back.
    batches: Vec<Vec<(SimTime, (u64, E))>>,
    /// Key of `batches[s].last()`, [`EMPTY_HEAD`] when drained.
    batch_heads: Vec<(SimTime, u64)>,
    /// Head key of each shard's worker-side queue as of the last barrier
    /// (exact between barriers: workers only act at barriers).
    worker_heads: Vec<(SimTime, u64)>,
    /// Commit-phase schedules that landed inside the committed region.
    overlay: BinaryHeap<OverlayEntry<E>>,
    /// Inclusive end of the committed region; `None` before the first
    /// barrier (everything waits in the mailboxes).
    frontier: Option<SimTime>,
    /// Current epoch span in lookahead windows (adaptive, deterministic).
    span_mult: u64,
}

impl<E: Send + 'static> std::fmt::Debug for Backend<E> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Backend::Inline { queues } => {
                write!(f, "Inline({} shards)", queues.len())
            }
            Backend::Threaded { owned, .. } => {
                write!(f, "Threaded({} workers)", owned.len())
            }
        }
    }
}

impl<E: Send + 'static> EpochExecutor<E> {
    /// Creates an executor with default-sized per-shard queues. `threads` is
    /// clamped to `1..=shards`; with one thread the epochs run inline on the
    /// calling thread.
    pub fn new(
        shards: usize,
        threads: usize,
        lookahead: SimDuration,
    ) -> Result<Self, ShardConfigError> {
        checked_shards(shards, lookahead)?;
        Self::build(threads, lookahead, (0..shards).map(|_| EventQueue::new()))
    }

    /// Creates an executor whose shard queues are pre-sized: shard `s` for
    /// `caps[s]` pending events spread over `horizon` of simulated time.
    /// Per-shard capacities matter because shard 0 typically carries the
    /// control plane (ticks, samplers) on top of its share of deliveries.
    pub fn with_shard_capacities_and_horizon(
        threads: usize,
        lookahead: SimDuration,
        caps: &[usize],
        horizon: SimDuration,
    ) -> Result<Self, ShardConfigError> {
        checked_shards(caps.len(), lookahead)?;
        Self::build(
            threads,
            lookahead,
            caps.iter()
                .map(|&c| EventQueue::with_capacity_and_horizon(c.max(16), horizon)),
        )
    }

    fn build(
        threads: usize,
        lookahead: SimDuration,
        queues: impl Iterator<Item = EventQueue<(u64, E)>>,
    ) -> Result<Self, ShardConfigError> {
        let queues: Vec<_> = queues.collect();
        let n = queues.len();
        if lookahead.is_zero() {
            return Err(ShardConfigError::ZeroLookahead { shards: n });
        }
        let threads = threads.clamp(1, n);
        let backend = if threads == 1 {
            Backend::Inline { queues }
        } else {
            let mut owned: Vec<Vec<usize>> = vec![Vec::new(); threads];
            for s in 0..n {
                owned[s % threads].push(s);
            }
            let (reply_tx, from_workers) = mpsc::channel();
            let mut to_workers = Vec::with_capacity(threads);
            let mut handles = Vec::with_capacity(threads);
            let mut slots: Vec<Option<EventQueue<(u64, E)>>> =
                queues.into_iter().map(Some).collect();
            for (w, shard_list) in owned.iter().enumerate() {
                let qs: Vec<_> = shard_list
                    .iter()
                    .map(|&s| slots[s].take().expect("shard owned twice"))
                    .collect();
                let shard_list = shard_list.clone();
                let (tx, rx) = mpsc::channel();
                let reply = reply_tx.clone();
                handles.push(Some(
                    std::thread::Builder::new()
                        .name(format!("epoch-worker-{w}"))
                        .spawn(move || worker_loop(shard_list, qs, rx, reply))
                        .expect("spawn epoch worker"),
                ));
                to_workers.push(tx);
            }
            Backend::Threaded {
                to_workers,
                from_workers,
                handles,
                owned,
            }
        };
        Ok(EpochExecutor {
            ledger: SyncLedger::new(n, lookahead),
            backend,
            mailboxes: (0..n).map(|_| Vec::new()).collect(),
            mailbox_mins: vec![EMPTY_HEAD; n],
            batches: (0..n).map(|_| Vec::new()).collect(),
            batch_heads: vec![EMPTY_HEAD; n],
            worker_heads: vec![EMPTY_HEAD; n],
            overlay: BinaryHeap::new(),
            frontier: None,
            span_mult: 1,
        })
    }

    /// Number of shards.
    #[inline]
    pub fn num_shards(&self) -> usize {
        self.mailboxes.len()
    }

    /// Worker threads driving the shard queues (1 = inline).
    #[inline]
    pub fn threads(&self) -> usize {
        match &self.backend {
            Backend::Inline { .. } => 1,
            Backend::Threaded { owned, .. } => owned.len(),
        }
    }

    /// The conservative-sync lookahead window.
    #[inline]
    pub fn lookahead(&self) -> SimDuration {
        self.ledger.lookahead
    }

    /// The current simulation time: the timestamp of the last event popped.
    #[inline]
    pub fn now(&self) -> SimTime {
        self.ledger.now
    }

    /// Total events pending across every shard.
    #[inline]
    pub fn len(&self) -> usize {
        self.ledger.len
    }

    /// True if no events are pending on any shard.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.ledger.len == 0
    }

    /// Total number of events ever scheduled (the global sequence counter).
    #[inline]
    pub fn scheduled_total(&self) -> u64 {
        self.ledger.next_seq
    }

    /// Cross-shard schedules that landed closer than the lookahead. Zero at
    /// end of run is the conservative-safety proof (see [`ShardedQueue`]).
    #[inline]
    pub fn violations(&self) -> u64 {
        self.ledger.violations
    }

    /// Conservative epoch windows the pop clock has crossed — the same pure
    /// function of the pop stream that [`ShardedQueue::epochs`] counts, *not*
    /// the executor's internal barrier count.
    #[inline]
    pub fn epochs(&self) -> u64 {
        self.ledger.epochs
    }

    /// Per-shard scheduled/popped counters.
    #[inline]
    pub fn shard_stats(&self) -> &[ShardStats] {
        &self.ledger.stats
    }

    /// Declares the shard the driver is currently executing on — same
    /// audit contract as [`ShardedQueue::set_origin`].
    #[inline]
    pub fn set_origin(&mut self, origin: Option<usize>) {
        debug_assert!(origin.is_none_or(|o| o < self.num_shards()));
        self.ledger.origin = origin;
    }

    /// Schedules `event` on `shard` at absolute time `at`.
    ///
    /// # Panics
    ///
    /// Panics if `shard` is out of range or `at` precedes the merged clock.
    pub fn schedule_at(&mut self, shard: usize, at: SimTime, event: E) {
        let gseq = self.ledger.on_schedule(shard, at);
        match self.frontier {
            // Inside the committed region (only possible from a commit-phase
            // handler): merge through the overlay so the event still executes
            // in its exact global slot.
            Some(f) if at <= f => self.overlay.push(OverlayEntry {
                time: at,
                gseq,
                shard,
                event,
            }),
            _ => {
                let key = (at, gseq);
                if key < self.mailbox_mins[shard] {
                    self.mailbox_mins[shard] = key;
                }
                self.mailboxes[shard].push((at, gseq, event));
            }
        }
    }

    /// Schedules `event` on `shard` to fire `delay` after the merged clock.
    #[inline]
    pub fn schedule_after(&mut self, shard: usize, delay: SimDuration, event: E) {
        self.schedule_at(shard, self.ledger.now + delay, event);
    }

    /// Schedules one `make()` event on `shard` at every multiple of `period`
    /// — same contract as [`EventQueue::schedule_periodic`].
    ///
    /// # Panics
    ///
    /// Panics if `period` is zero.
    pub fn schedule_periodic(
        &mut self,
        shard: usize,
        period: SimDuration,
        end: SimTime,
        inclusive: bool,
        mut make: impl FnMut() -> E,
    ) {
        assert!(period > SimDuration::ZERO, "periodic events need a period");
        let mut t = self.ledger.now + period;
        while t < end {
            self.schedule_at(shard, t, make());
            t += period;
        }
        if inclusive && t == end {
            self.schedule_at(shard, t, make());
        }
    }

    /// The committed region's head: `(is_overlay, shard, key)`.
    fn committed_head(&self) -> Option<(bool, usize, (SimTime, u64))> {
        let mut best = usize::MAX;
        let mut best_key = EMPTY_HEAD;
        for (i, &k) in self.batch_heads.iter().enumerate() {
            if k < best_key {
                best_key = k;
                best = i;
            }
        }
        match self.overlay.peek() {
            Some(e) if e.key() < best_key => Some((true, e.shard, e.key())),
            _ => (best != usize::MAX).then_some((false, best, best_key)),
        }
    }

    /// Pops the committed region's head, if any.
    fn commit_next(&mut self) -> Option<(SimTime, usize, E)> {
        let (from_overlay, shard, _) = self.committed_head()?;
        if from_overlay {
            let e = self.overlay.pop().expect("peeked overlay head vanished");
            self.ledger.on_pop(e.shard, e.time);
            Some((e.time, e.shard, e.event))
        } else {
            let (t, (_gseq, event)) = self.batches[shard]
                .pop()
                .expect("cached batch head of an empty batch");
            self.batch_heads[shard] = self.batches[shard]
                .last()
                .map(|e| (e.0, e.1 .0))
                .unwrap_or(EMPTY_HEAD);
            self.ledger.on_pop(shard, t);
            Some((t, shard, event))
        }
    }

    /// Minimum pending key outside the committed region (worker queues and
    /// mailboxes).
    fn pending_min(&self) -> (SimTime, u64) {
        let mut min = EMPTY_HEAD;
        for &k in self.worker_heads.iter().chain(self.mailbox_mins.iter()) {
            if k < min {
                min = k;
            }
        }
        min
    }

    /// Runs one barrier: flushes every mailbox, drains every shard up to the
    /// new frontier, and installs the returned batches. Returns `false`
    /// (doing nothing) when nothing is pending at or before `horizon`.
    /// Call only with the committed region empty.
    fn advance_epoch(&mut self, horizon: SimTime) -> bool {
        debug_assert!(self.overlay.is_empty());
        debug_assert!(self.batch_heads.iter().all(|&k| k == EMPTY_HEAD));
        let gmin = self.pending_min();
        if gmin == EMPTY_HEAD || gmin.0 > horizon {
            return false;
        }
        // Inclusive frontier: K lookahead windows past the pending head.
        let span_us = (self.ledger.lookahead.as_micros().max(1) as u128) * (self.span_mult as u128);
        let until_us =
            (gmin.0.as_micros() as u128 + span_us - 1).min(SimTime::MAX.as_micros() as u128) as u64;
        let until = SimTime::from_micros(until_us);
        debug_assert!(self.frontier.is_none_or(|f| until > f));
        let Self {
            backend,
            mailboxes,
            mailbox_mins,
            batches,
            batch_heads,
            worker_heads,
            ..
        } = self;
        let mut drained = 0usize;
        match backend {
            Backend::Inline { queues } => {
                for (s, q) in queues.iter_mut().enumerate() {
                    for (at, gseq, event) in mailboxes[s].drain(..) {
                        q.schedule_at(at, (gseq, event));
                    }
                    mailbox_mins[s] = EMPTY_HEAD;
                    let batch = &mut batches[s];
                    debug_assert!(batch.is_empty());
                    drained += q.drain_into(until, batch);
                    batch.reverse();
                    batch_heads[s] = batch.last().map(|e| (e.0, e.1 .0)).unwrap_or(EMPTY_HEAD);
                    worker_heads[s] = q.peek_entry().map(|(t, e)| (t, e.0)).unwrap_or(EMPTY_HEAD);
                }
            }
            Backend::Threaded {
                to_workers,
                from_workers,
                handles,
                owned,
            } => {
                for (w, tx) in to_workers.iter().enumerate() {
                    let inserts: Vec<_> = owned[w]
                        .iter()
                        .map(|&s| {
                            mailbox_mins[s] = EMPTY_HEAD;
                            std::mem::take(&mut mailboxes[s])
                        })
                        .collect();
                    if tx.send(ToWorker::Epoch { inserts, until }).is_err() {
                        propagate_worker_panic(handles);
                    }
                }
                for _ in 0..to_workers.len() {
                    match from_workers.recv() {
                        Ok(FromWorker::Epoch { shards }) => {
                            for (s, mut batch, head) in shards {
                                drained += batch.len();
                                batch.reverse();
                                batch_heads[s] =
                                    batch.last().map(|e| (e.0, e.1 .0)).unwrap_or(EMPTY_HEAD);
                                batches[s] = batch;
                                worker_heads[s] = head;
                            }
                        }
                        Ok(FromWorker::Telemetry { .. }) => {
                            unreachable!("telemetry reply outside a telemetry request")
                        }
                        Err(_) => propagate_worker_panic(handles),
                    }
                }
            }
        }
        self.frontier = Some(until);
        // Deterministic span adaptation — a pure function of drain volume.
        if drained < SPAN_GROW_BELOW && self.span_mult < SPAN_MAX_MULT {
            self.span_mult *= 2;
        } else if drained > SPAN_SHRINK_ABOVE && self.span_mult > 1 {
            self.span_mult /= 2;
        }
        true
    }

    /// Timestamp of the globally earliest pending event, if any.
    pub fn peek_time(&self) -> Option<SimTime> {
        let mut min = self
            .committed_head()
            .map(|(_, _, k)| k)
            .unwrap_or(EMPTY_HEAD);
        let pending = self.pending_min();
        if pending < min {
            min = pending;
        }
        (min != EMPTY_HEAD).then_some(min.0)
    }

    /// Pops the globally earliest event, advancing the merged clock. Returns
    /// `(time, shard, event)` — identical to [`ShardedQueue::pop`].
    pub fn pop(&mut self) -> Option<(SimTime, usize, E)> {
        loop {
            if let Some(out) = self.commit_next() {
                return Some(out);
            }
            if !self.advance_epoch(SimTime::MAX) {
                return None;
            }
        }
    }

    /// Pops the globally earliest event only if it fires at or before
    /// `horizon` — same one-touch contract as
    /// [`ShardedQueue::pop_if_at_or_before`]. No barrier runs when the head
    /// is beyond the horizon.
    pub fn pop_if_at_or_before(&mut self, horizon: SimTime) -> Option<(SimTime, usize, E)> {
        loop {
            if let Some((_, _, key)) = self.committed_head() {
                if key.0 > horizon {
                    return None;
                }
                return self.commit_next();
            }
            if !self.advance_epoch(horizon) {
                return None;
            }
        }
    }

    /// Aggregated self-telemetry across the shard queues — same aggregation
    /// as [`ShardedQueue::telemetry`]. Takes `&mut self` because the
    /// threaded backend round-trips a request to its workers.
    pub fn telemetry(&mut self) -> QueueTelemetry {
        let mut t = QueueTelemetry {
            peak_depth: self.ledger.peak_depth,
            ..QueueTelemetry::default()
        };
        let mut fold = |qt: QueueTelemetry| {
            t.resizes += qt.resizes;
            t.max_pop_scan = t.max_pop_scan.max(qt.max_pop_scan);
            t.buckets += qt.buckets;
            t.width_us = t.width_us.max(qt.width_us);
        };
        match &mut self.backend {
            Backend::Inline { queues } => {
                for q in queues.iter() {
                    fold(q.telemetry());
                }
            }
            Backend::Threaded {
                to_workers,
                from_workers,
                handles,
                ..
            } => {
                for tx in to_workers.iter() {
                    if tx.send(ToWorker::Telemetry).is_err() {
                        propagate_worker_panic(handles);
                    }
                }
                for _ in 0..to_workers.len() {
                    match from_workers.recv() {
                        Ok(FromWorker::Telemetry { shards }) => {
                            for (_, qt) in shards {
                                fold(qt);
                            }
                        }
                        Ok(FromWorker::Epoch { .. }) => {
                            unreachable!("epoch reply outside a barrier")
                        }
                        Err(_) => propagate_worker_panic(handles),
                    }
                }
            }
        }
        t
    }
}

/// A worker hung up: join everything and re-raise the first worker panic so
/// the commit thread fails with the real cause instead of a channel error.
fn propagate_worker_panic(handles: &mut [Option<JoinHandle<()>>]) -> ! {
    for h in handles.iter_mut() {
        if let Some(h) = h.take() {
            if let Err(payload) = h.join() {
                std::panic::resume_unwind(payload);
            }
        }
    }
    panic!("epoch worker disconnected without panicking");
}

impl<E: Send + 'static> Drop for EpochExecutor<E> {
    fn drop(&mut self) {
        if let Backend::Threaded {
            to_workers,
            handles,
            ..
        } = &mut self.backend
        {
            // Closing the channels ends the worker loops.
            to_workers.clear();
            for h in handles.iter_mut() {
                if let Some(h) = h.take() {
                    // Re-raise a worker panic unless we are already
                    // unwinding (never double-panic in drop).
                    if h.join().is_err() && !std::thread::panicking() {
                        panic!("epoch worker panicked during shutdown");
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::shard::ShardedQueue;

    const LA: SimDuration = SimDuration::from_millis(1);

    /// Drives an [`EpochExecutor`] and a [`ShardedQueue`] through the same
    /// op sequence and asserts the full observable surface stays identical.
    struct Differential {
        exec: EpochExecutor<u32>,
        refq: ShardedQueue<u32>,
    }

    impl Differential {
        fn new(shards: usize, threads: usize) -> Self {
            Differential {
                exec: EpochExecutor::new(shards, threads, LA).unwrap(),
                refq: ShardedQueue::new(shards, LA).unwrap(),
            }
        }

        fn schedule(&mut self, shard: usize, at_us: u64, v: u32) {
            let at = SimTime::from_micros(at_us);
            self.exec.schedule_at(shard, at, v);
            self.refq.schedule_at(shard, at, v);
        }

        fn set_origin(&mut self, o: Option<usize>) {
            self.exec.set_origin(o);
            self.refq.set_origin(o);
        }

        fn pop(&mut self) -> Option<(SimTime, usize, u32)> {
            let a = self.exec.pop();
            let b = self.refq.pop();
            assert_eq!(a, b, "pop streams diverged");
            self.check();
            a
        }

        fn pop_bounded(&mut self, horizon_us: u64) -> Option<(SimTime, usize, u32)> {
            let h = SimTime::from_micros(horizon_us);
            let a = self.exec.pop_if_at_or_before(h);
            let b = self.refq.pop_if_at_or_before(h);
            assert_eq!(a, b, "bounded pop streams diverged at horizon {h}");
            self.check();
            a
        }

        fn check(&self) {
            assert_eq!(self.exec.len(), self.refq.len());
            assert_eq!(self.exec.now(), self.refq.now());
            assert_eq!(self.exec.peek_time(), self.refq.peek_time());
            assert_eq!(self.exec.epochs(), self.refq.epochs());
            assert_eq!(self.exec.violations(), self.refq.violations());
            assert_eq!(self.exec.shard_stats(), self.refq.shard_stats());
            assert_eq!(self.exec.scheduled_total(), self.refq.scheduled_total());
        }
    }

    #[test]
    fn zero_lookahead_is_rejected_even_for_one_shard() {
        let err = EpochExecutor::<u32>::new(1, 1, SimDuration::ZERO).unwrap_err();
        assert!(matches!(err, ShardConfigError::ZeroLookahead { shards: 1 }));
        assert!(matches!(
            EpochExecutor::<u32>::new(0, 1, LA).unwrap_err(),
            ShardConfigError::NoShards
        ));
    }

    #[test]
    fn threads_clamp_to_shard_count() {
        let ex = EpochExecutor::<u32>::new(3, 64, LA).unwrap();
        assert_eq!(ex.threads(), 3);
        assert_eq!(ex.num_shards(), 3);
        let ex = EpochExecutor::<u32>::new(3, 0, LA).unwrap();
        assert_eq!(ex.threads(), 1);
    }

    #[test]
    fn merged_stream_matches_sharded_reference() {
        for threads in [1, 2, 4] {
            let mut d = Differential::new(4, threads);
            // Deterministic pseudo-random mix of shards and times.
            let mut x = 0x243f_6a88u64;
            for i in 0..3_000u32 {
                x = x
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                let shard = (x >> 33) as usize % 4;
                let at = d.exec.now().as_micros() + (x >> 17) % 50_000;
                d.schedule(shard, at, i);
                if x.is_multiple_of(3) {
                    d.pop();
                }
            }
            while d.pop().is_some() {}
        }
    }

    #[test]
    fn bounded_pops_and_empty_epochs_match_reference() {
        for threads in [1, 2, 3] {
            let mut d = Differential::new(3, threads);
            for i in 0..500u32 {
                d.schedule(i as usize % 3, (i as u64) * 400, i);
            }
            // Horizons that land before, between, and after epoch frontiers.
            for h in [
                0u64,
                150,
                399,
                400,
                5_000,
                5_000,
                60_000,
                199_600,
                u64::MAX / 2,
            ] {
                while d.pop_bounded(h).is_some() {}
            }
            assert!(d.exec.is_empty());
        }
    }

    #[test]
    fn commit_phase_schedules_inside_the_frontier_merge_exactly() {
        // Pops interleaved with schedules that land inside the committed
        // region — including cross-shard ones below the lookahead, which
        // must be counted as violations yet still execute in order.
        for threads in [1, 2] {
            let mut d = Differential::new(2, threads);
            for i in 0..200u32 {
                d.schedule(i as usize % 2, 10_000 + (i as u64 % 7) * 10, i);
            }
            let mut popped = 0;
            while let Some((t, shard, v)) = d.pop() {
                popped += 1;
                if v % 5 == 0 && popped < 400 {
                    d.set_origin(Some(shard));
                    // Same instant, other shard: a lookahead violation on
                    // both executors, merged identically.
                    d.schedule(1 - shard, t.as_micros(), 1_000 + v);
                    d.set_origin(None);
                }
            }
            assert!(d.exec.violations() > 0);
            d.check();
        }
    }

    #[test]
    fn same_instant_ties_break_by_global_schedule_order() {
        let mut ex = EpochExecutor::new(2, 2, LA).unwrap();
        let t = SimTime::from_secs(1);
        for i in 0..100u32 {
            ex.schedule_at((i % 2) as usize, t, i);
        }
        let order: Vec<_> = std::iter::from_fn(|| ex.pop()).map(|(_, _, e)| e).collect();
        assert_eq!(order, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn sparse_far_future_events_cross_many_epochs() {
        // Events thousands of lookahead windows apart force the adaptive
        // span to grow and far-tier migrations to happen inside workers.
        for threads in [1, 2] {
            let mut d = Differential::new(2, threads);
            for i in 0..40u32 {
                d.schedule(i as usize % 2, i as u64 * 3_000_000, i);
            }
            while d.pop().is_some() {}
            assert!(d.exec.epochs() > 30, "epoch windows were counted");
        }
    }

    #[test]
    fn telemetry_aggregates_like_the_sharded_queue() {
        let mut ex = EpochExecutor::new(4, 2, LA).unwrap();
        for i in 0..1_000u32 {
            ex.schedule_at(i as usize % 4, SimTime::from_micros(i as u64 * 13), i);
        }
        while ex.pop().is_some() {}
        let t = ex.telemetry();
        assert_eq!(t.peak_depth, 1_000);
        assert!(t.buckets >= 4 * 16);
        assert!(t.max_pop_scan >= 1);
    }

    #[test]
    fn drop_joins_workers_cleanly_with_events_still_pending() {
        let mut ex = EpochExecutor::new(4, 4, LA).unwrap();
        for i in 0..500u32 {
            ex.schedule_at(i as usize % 4, SimTime::from_micros(i as u64 * 100), i);
        }
        // Run part of the way so the worker queues actually hold events.
        for _ in 0..100 {
            ex.pop();
        }
        drop(ex); // must join, not hang or leak panics
    }

    #[test]
    fn scheduling_into_the_past_panics_like_the_reference() {
        let caught = std::panic::catch_unwind(|| {
            let mut ex = EpochExecutor::new(2, 2, LA).unwrap();
            ex.schedule_at(0, SimTime::from_secs(5), 1u32);
            ex.pop();
            ex.schedule_at(1, SimTime::from_secs(4), 2u32);
        });
        let msg = caught
            .expect_err("past schedule must panic")
            .downcast_ref::<String>()
            .cloned()
            .unwrap_or_default();
        assert!(msg.contains("cannot schedule into the past"), "{msg}");
    }

    #[test]
    fn schedule_periodic_matches_reference() {
        let mut d = Differential::new(2, 2);
        d.exec.schedule_periodic(
            1,
            SimDuration::from_millis(5),
            SimTime::from_millis(50),
            true,
            || 7,
        );
        d.refq.schedule_periodic(
            1,
            SimDuration::from_millis(5),
            SimTime::from_millis(50),
            true,
            || 7,
        );
        while d.pop().is_some() {}
        assert_eq!(d.exec.scheduled_total(), 10);
    }
}
