//! The binary-heap event queue, kept as the **reference implementation** for
//! differential testing of the calendar-queue kernel.
//!
//! This is the original `O(log n)` kernel the calendar queue replaced. Its
//! ordering semantics — strictly by timestamp, FIFO among events at the same
//! instant — are trivially correct by construction of the comparator, which is
//! exactly what makes it the oracle: the differential suite drives a
//! [`HeapQueue`] and an [`crate::EventQueue`] through identical
//! schedule/pop/reset interleavings and requires bit-identical pop streams.

use crate::event::Scheduled;
use crate::time::{SimDuration, SimTime};
use std::cmp::Ordering;
use std::collections::BinaryHeap;

impl<E> PartialEq for Scheduled<E> {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}
impl<E> Eq for Scheduled<E> {}

impl<E> PartialOrd for Scheduled<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl<E> Ord for Scheduled<E> {
    /// Reversed so that `BinaryHeap` (a max-heap) pops the *earliest* event first.
    fn cmp(&self, other: &Self) -> Ordering {
        other
            .time
            .cmp(&self.time)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

/// A `BinaryHeap`-backed event queue with the same API and ordering contract as
/// [`crate::EventQueue`] — the differential-testing reference, not the kernel.
#[derive(Debug)]
pub struct HeapQueue<E> {
    heap: BinaryHeap<Scheduled<E>>,
    next_seq: u64,
    now: SimTime,
    scheduled_total: u64,
}

impl<E> Default for HeapQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> HeapQueue<E> {
    /// Creates an empty queue with the clock at t = 0.
    pub fn new() -> Self {
        HeapQueue {
            heap: BinaryHeap::new(),
            next_seq: 0,
            now: SimTime::ZERO,
            scheduled_total: 0,
        }
    }

    /// Creates an empty queue pre-sized for `cap` pending events.
    pub fn with_capacity(cap: usize) -> Self {
        HeapQueue {
            heap: BinaryHeap::with_capacity(cap),
            next_seq: 0,
            now: SimTime::ZERO,
            scheduled_total: 0,
        }
    }

    /// The current simulation time: the timestamp of the last event popped.
    #[inline]
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Number of events waiting to fire.
    #[inline]
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// True if no events are pending.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Total number of events ever scheduled (for diagnostics).
    #[inline]
    pub fn scheduled_total(&self) -> u64 {
        self.scheduled_total
    }

    /// Schedules `event` to fire at absolute time `at`.
    ///
    /// # Panics
    ///
    /// Panics if `at` is earlier than the current time.
    pub fn schedule_at(&mut self, at: SimTime, event: E) {
        assert!(
            at >= self.now,
            "cannot schedule into the past: now={}, at={}",
            self.now,
            at
        );
        let seq = self.next_seq;
        self.next_seq += 1;
        self.scheduled_total += 1;
        self.heap.push(Scheduled {
            time: at,
            seq,
            event,
        });
    }

    /// Schedules `event` to fire `delay` after the current time.
    #[inline]
    pub fn schedule_after(&mut self, delay: SimDuration, event: E) {
        self.schedule_at(self.now + delay, event);
    }

    /// Timestamp of the next pending event, if any.
    pub fn peek_time(&self) -> Option<SimTime> {
        self.heap.peek().map(|s| s.time)
    }

    /// Pops the earliest event, advancing the clock to its timestamp.
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        let s = self.heap.pop()?;
        debug_assert!(s.time >= self.now, "event queue went back in time");
        self.now = s.time;
        Some((s.time, s.event))
    }

    /// Pops the earliest event only if it fires at or before `horizon`.
    pub fn pop_if_at_or_before(&mut self, horizon: SimTime) -> Option<(SimTime, E)> {
        if self.heap.peek()?.time > horizon {
            return None;
        }
        self.pop()
    }

    /// Drops every pending event and resets the clock to t = 0. The heap's
    /// allocation is kept (same storage-reuse contract as the calendar queue).
    pub fn reset(&mut self) {
        self.heap.clear();
        self.next_seq = 0;
        self.now = SimTime::ZERO;
        self.scheduled_total = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reference_semantics_hold() {
        let mut q = HeapQueue::new();
        q.schedule_at(SimTime::from_secs(2), "b");
        q.schedule_at(SimTime::from_secs(1), "a");
        q.schedule_at(SimTime::from_secs(1), "a2");
        assert_eq!(q.peek_time(), Some(SimTime::from_secs(1)));
        assert_eq!(q.pop(), Some((SimTime::from_secs(1), "a")));
        assert_eq!(q.pop(), Some((SimTime::from_secs(1), "a2")));
        assert_eq!(
            q.pop_if_at_or_before(SimTime::from_secs(1)),
            None,
            "head at 2 s is beyond the horizon"
        );
        assert_eq!(
            q.pop_if_at_or_before(SimTime::from_secs(2)),
            Some((SimTime::from_secs(2), "b"))
        );
    }

    #[test]
    fn reset_keeps_heap_capacity() {
        let mut q = HeapQueue::with_capacity(1);
        for i in 0..1_000u64 {
            q.schedule_at(SimTime::from_micros(i), i);
        }
        q.reset();
        assert!(q.is_empty());
        assert_eq!(q.scheduled_total(), 0);
        // BinaryHeap::clear keeps its buffer: re-filling cannot need more
        // capacity than the first fill ended with.
        for i in 0..1_000u64 {
            q.schedule_at(SimTime::from_micros(i), i);
        }
        assert_eq!(q.len(), 1_000);
    }
}
