//! Region-sharded event queue: the conservative-PDES façade over per-shard
//! calendar queues.
//!
//! [`ShardedQueue`] partitions the pending-event set across `N` inner
//! [`EventQueue`]s (one per shard — in the VANET stack, one per group of L3
//! regions) and merges their heads back into a single, globally ordered pop
//! stream. The merge key is `(time, global sequence)`: every schedule call
//! draws a *global* sequence number that rides inside the payload, so the
//! merged stream is **exactly** the stream one unsharded [`EventQueue`] would
//! produce — for *any* routing of events to shards. Two facts make that hold:
//!
//! * **Within a shard**, the inner queue orders by `(time, local seq)`; local
//!   sequence numbers are assigned in the same call order as global ones, so
//!   both orders agree on every within-shard pair.
//! * **Across shards**, the façade pops the shard whose cached head key
//!   `(time, global seq)` is the k-way minimum. Global sequence numbers are
//!   unique, so the merge order is total and tie-free.
//!
//! That identity is what the differential determinism suite pins: sharding is
//! an *implementation layout*, never an observable.
//!
//! # Conservative synchronization and lookahead
//!
//! A parallel conservative run (Chandy–Misra–Bryant style) is safe exactly
//! when no shard can receive a cross-shard event earlier than `now +
//! lookahead`: each shard may then process its own events up to the next
//! epoch barrier without waiting on the others. The façade *executes* the
//! merged stream on one commit thread (which is what makes byte-identity
//! across shard counts structural), but it enforces and audits the contract a
//! multi-core executor would rely on:
//!
//! * The constructor **fails fast** on a zero lookahead when `shards > 1` —
//!   a degenerate config would deadlock a real conservative executor, so it
//!   is rejected with [`ShardConfigError::ZeroLookahead`] instead of being
//!   discovered as a hang.
//! * While processing an event, the driver declares the shard it is executing
//!   on via [`ShardedQueue::set_origin`]; every schedule targeting a
//!   *different* shard closer than `lookahead` in the future is counted in
//!   [`ShardedQueue::violations`]. A run that ends with zero violations is a
//!   machine-checked proof that its event flow honours the lookahead — i.e.
//!   that per-shard handler execution between barriers could not have
//!   diverged from the sequential order.
//! * Epoch barriers are book-kept as the pop clock crossing successive
//!   `lookahead`-wide windows ([`ShardedQueue::epochs`]). The count is a pure
//!   function of the (shard-invariant) pop stream and the lookahead, so it is
//!   itself part of the deterministic output surface.

use crate::event::{EventQueue, QueueTelemetry};
use crate::time::{SimDuration, SimTime};

/// Cached head sentinel for an empty shard. The `u64::MAX` sequence marks
/// emptiness (a real event can fire at `SimTime::MAX` but never draws that
/// sequence number), so the sentinel loses every comparison against real keys.
pub(crate) const EMPTY_HEAD: (SimTime, u64) = (SimTime::MAX, u64::MAX);

/// Why a [`ShardedQueue`] could not be constructed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ShardConfigError {
    /// A queue needs at least one shard.
    NoShards,
    /// `shards > 1` with a zero lookahead: a conservative executor could
    /// never advance past its first barrier — refuse up front instead of
    /// deadlocking.
    ZeroLookahead {
        /// The shard count that was requested.
        shards: usize,
    },
}

impl std::fmt::Display for ShardConfigError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ShardConfigError::NoShards => write!(f, "sharded queue needs at least one shard"),
            ShardConfigError::ZeroLookahead { shards } => write!(
                f,
                "conservative sync across {shards} shards needs a strictly positive \
                 lookahead; this configuration derives zero (every cross-shard epoch \
                 would deadlock) — widen the radio per-hop overhead, the wired RSU \
                 link latency, or the radio-range/max-speed ratio"
            ),
        }
    }
}

impl std::error::Error for ShardConfigError {}

/// Per-shard event counters, cleared by [`ShardedQueue::reset`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ShardStats {
    /// Events routed to this shard by schedule calls.
    pub scheduled: u64,
    /// Events popped out of this shard by the merged stream.
    pub popped: u64,
}

/// The bookkeeping half of the conservative-sync contract, shared verbatim by
/// the serial [`ShardedQueue`] and the threaded [`crate::EpochExecutor`]: the
/// global sequence counter, the merged clock, the total/peak pending counts,
/// per-shard stats, epoch-window accounting, and the lookahead-violation
/// audit. Because both executors funnel every schedule through
/// [`SyncLedger::on_schedule`] and every committed event through
/// [`SyncLedger::on_pop`], their observable counters agree *by construction*
/// — the thread count never touches this state.
#[derive(Debug)]
pub(crate) struct SyncLedger {
    pub(crate) stats: Vec<ShardStats>,
    pub(crate) next_seq: u64,
    pub(crate) len: usize,
    pub(crate) now: SimTime,
    pub(crate) peak_depth: usize,
    pub(crate) lookahead: SimDuration,
    /// Exclusive end of the current conservative epoch window.
    epoch_end: SimTime,
    pub(crate) epochs: u64,
    /// The shard the driver is currently executing on (None between events /
    /// for control-plane work exempt from the cross-shard contract).
    pub(crate) origin: Option<usize>,
    pub(crate) violations: u64,
}

impl SyncLedger {
    pub(crate) fn new(shards: usize, lookahead: SimDuration) -> Self {
        SyncLedger {
            stats: vec![ShardStats::default(); shards],
            next_seq: 0,
            len: 0,
            now: SimTime::ZERO,
            peak_depth: 0,
            lookahead,
            epoch_end: SimTime::ZERO.checked_add(lookahead).unwrap_or(SimTime::MAX),
            epochs: 0,
            origin: None,
            violations: 0,
        }
    }

    /// Books one schedule targeting `shard` at `at`: runs the cross-shard
    /// lookahead audit against the declared origin, bumps the pending/peak
    /// counts, and returns the drawn global sequence number.
    ///
    /// # Panics
    ///
    /// Panics if `at` is earlier than the merged clock — scheduling into the
    /// past is always a protocol bug.
    pub(crate) fn on_schedule(&mut self, shard: usize, at: SimTime) -> u64 {
        assert!(
            at >= self.now,
            "cannot schedule into the past: now={}, at={}",
            self.now,
            at
        );
        if let Some(o) = self.origin {
            if o != shard
                && !self.lookahead.is_zero()
                && self
                    .now
                    .checked_add(self.lookahead)
                    .is_some_and(|floor| at < floor)
            {
                self.violations += 1;
                if std::env::var_os("SHARD_DEBUG_VIOLATIONS").is_some() {
                    eprintln!(
                        "violation: origin={o} -> shard={shard} now={} at={} lookahead={}",
                        self.now, at, self.lookahead
                    );
                }
            }
        }
        let gseq = self.next_seq;
        self.next_seq += 1;
        self.len += 1;
        if self.len > self.peak_depth {
            self.peak_depth = self.len;
        }
        self.stats[shard].scheduled += 1;
        gseq
    }

    /// Books one committed pop from `shard` at `t`: advances the merged clock
    /// and the epoch-window count.
    pub(crate) fn on_pop(&mut self, shard: usize, t: SimTime) {
        self.len -= 1;
        self.stats[shard].popped += 1;
        debug_assert!(t >= self.now, "sharded queue went back in time");
        self.now = t;
        if !self.lookahead.is_zero() && t >= self.epoch_end {
            self.epochs += 1;
            self.epoch_end = t.checked_add(self.lookahead).unwrap_or(SimTime::MAX);
        }
    }

    fn reset(&mut self) {
        self.stats.fill(ShardStats::default());
        self.next_seq = 0;
        self.len = 0;
        self.now = SimTime::ZERO;
        self.peak_depth = 0;
        self.epoch_end = SimTime::ZERO
            .checked_add(self.lookahead)
            .unwrap_or(SimTime::MAX);
        self.epochs = 0;
        self.origin = None;
        self.violations = 0;
    }
}

/// Validates a `(shards, lookahead)` pair for any conservative executor —
/// shared by [`ShardedQueue`] and [`crate::EpochExecutor`].
pub(crate) fn checked_shards(
    shards: usize,
    lookahead: SimDuration,
) -> Result<usize, ShardConfigError> {
    if shards == 0 {
        return Err(ShardConfigError::NoShards);
    }
    if shards > 1 && lookahead.is_zero() {
        return Err(ShardConfigError::ZeroLookahead { shards });
    }
    Ok(shards)
}

/// A set of per-shard [`EventQueue`]s merged into one deterministic pop
/// stream — see the module docs for the ordering and synchronization
/// contract. With `shards == 1` this is a thin wrapper over a single
/// calendar queue.
#[derive(Debug)]
pub struct ShardedQueue<E> {
    /// One calendar queue per shard; payloads carry their global sequence.
    shards: Vec<EventQueue<(u64, E)>>,
    /// Cached head key `(time, global seq)` per shard, [`EMPTY_HEAD`] when
    /// the shard is empty. The merge argmin touches only these.
    heads: Vec<(SimTime, u64)>,
    ledger: SyncLedger,
}

impl<E> ShardedQueue<E> {
    /// Creates an empty sharded queue. `lookahead` is the conservative-sync
    /// window; it must be strictly positive whenever `shards > 1`.
    pub fn new(shards: usize, lookahead: SimDuration) -> Result<Self, ShardConfigError> {
        Self::from_queues(
            lookahead,
            (0..checked_shards(shards, lookahead)?)
                .map(|_| EventQueue::new())
                .collect(),
        )
    }

    /// Creates an empty sharded queue pre-sized for `cap` total pending
    /// events spread over `horizon` of simulated time (capacity is split
    /// evenly across the shards).
    pub fn with_capacity_and_horizon(
        shards: usize,
        lookahead: SimDuration,
        cap: usize,
        horizon: SimDuration,
    ) -> Result<Self, ShardConfigError> {
        let n = checked_shards(shards, lookahead)?;
        Self::from_queues(
            lookahead,
            (0..n)
                .map(|_| EventQueue::with_capacity_and_horizon((cap / n).max(16), horizon))
                .collect(),
        )
    }

    fn from_queues(
        lookahead: SimDuration,
        shards: Vec<EventQueue<(u64, E)>>,
    ) -> Result<Self, ShardConfigError> {
        let n = shards.len();
        Ok(ShardedQueue {
            shards,
            heads: vec![EMPTY_HEAD; n],
            ledger: SyncLedger::new(n, lookahead),
        })
    }

    /// Number of shards.
    #[inline]
    pub fn num_shards(&self) -> usize {
        self.shards.len()
    }

    /// The conservative-sync lookahead window.
    #[inline]
    pub fn lookahead(&self) -> SimDuration {
        self.ledger.lookahead
    }

    /// The current simulation time: the timestamp of the last event popped.
    #[inline]
    pub fn now(&self) -> SimTime {
        self.ledger.now
    }

    /// Total events pending across every shard.
    #[inline]
    pub fn len(&self) -> usize {
        self.ledger.len
    }

    /// True if no events are pending on any shard.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.ledger.len == 0
    }

    /// Total number of events ever scheduled (the global sequence counter).
    #[inline]
    pub fn scheduled_total(&self) -> u64 {
        self.ledger.next_seq
    }

    /// Cross-shard schedules that landed closer than the lookahead — see the
    /// module docs. Zero at end of run is the conservative-safety proof.
    #[inline]
    pub fn violations(&self) -> u64 {
        self.ledger.violations
    }

    /// Conservative epoch barriers crossed so far: how many `lookahead`-wide
    /// windows the pop clock has advanced through. A pure function of the
    /// pop stream and the lookahead, so identical across shard counts.
    #[inline]
    pub fn epochs(&self) -> u64 {
        self.ledger.epochs
    }

    /// Per-shard scheduled/popped counters.
    #[inline]
    pub fn shard_stats(&self) -> &[ShardStats] {
        &self.ledger.stats
    }

    /// Declares the shard the driver is currently executing on; schedules
    /// issued while an origin is set are checked against the cross-shard
    /// lookahead contract. Pass `None` for control-plane work exempt from it.
    #[inline]
    pub fn set_origin(&mut self, origin: Option<usize>) {
        debug_assert!(origin.is_none_or(|o| o < self.shards.len()));
        self.ledger.origin = origin;
    }

    /// Schedules `event` on `shard` to fire at absolute time `at`.
    ///
    /// # Panics
    ///
    /// Panics if `shard` is out of range or `at` is earlier than the current
    /// merged time (scheduling into the past is always a protocol bug).
    pub fn schedule_at(&mut self, shard: usize, at: SimTime, event: E) {
        let gseq = self.ledger.on_schedule(shard, at);
        let key = (at, gseq);
        if key < self.heads[shard] {
            self.heads[shard] = key;
        }
        self.shards[shard].schedule_at(at, (gseq, event));
    }

    /// Schedules `event` on `shard` to fire `delay` after the current merged
    /// time.
    #[inline]
    pub fn schedule_after(&mut self, shard: usize, delay: SimDuration, event: E) {
        self.schedule_at(shard, self.ledger.now + delay, event);
    }

    /// Schedules one `make()` event on `shard` at every multiple of `period`
    /// from the current time — same contract as
    /// [`EventQueue::schedule_periodic`].
    ///
    /// # Panics
    ///
    /// Panics if `period` is zero.
    pub fn schedule_periodic(
        &mut self,
        shard: usize,
        period: SimDuration,
        end: SimTime,
        inclusive: bool,
        mut make: impl FnMut() -> E,
    ) {
        assert!(period > SimDuration::ZERO, "periodic events need a period");
        let mut t = self.ledger.now + period;
        while t < end {
            self.schedule_at(shard, t, make());
            t += period;
        }
        if inclusive && t == end {
            self.schedule_at(shard, t, make());
        }
    }

    /// The shard holding the globally earliest head, if any event is pending.
    fn head_shard(&self) -> Option<usize> {
        let mut best = usize::MAX;
        let mut best_key = EMPTY_HEAD;
        for (i, &k) in self.heads.iter().enumerate() {
            if k < best_key {
                best_key = k;
                best = i;
            }
        }
        (best != usize::MAX).then_some(best)
    }

    /// Pops shard `s`'s head (already known to be the global minimum),
    /// refreshing the head cache and the epoch bookkeeping.
    fn commit_pop(&mut self, s: usize) -> (SimTime, usize, E) {
        let (t, (gseq, event)) = self.shards[s].pop().expect("cached head of an empty shard");
        debug_assert_eq!((t, gseq), self.heads[s], "cached shard head is stale");
        self.heads[s] = self.shards[s]
            .peek_entry()
            .map(|(ht, head)| (ht, head.0))
            .unwrap_or(EMPTY_HEAD);
        self.ledger.on_pop(s, t);
        (t, s, event)
    }

    /// Timestamp of the next pending event across all shards, if any.
    pub fn peek_time(&self) -> Option<SimTime> {
        self.head_shard().map(|s| self.heads[s].0)
    }

    /// Pops the globally earliest event, advancing the merged clock. Returns
    /// `(time, shard, event)` — the shard is the one the event was routed to.
    pub fn pop(&mut self) -> Option<(SimTime, usize, E)> {
        let s = self.head_shard()?;
        Some(self.commit_pop(s))
    }

    /// Pops the globally earliest event only if it fires at or before
    /// `horizon`; otherwise leaves it in place (same one-touch contract as
    /// [`EventQueue::pop_if_at_or_before`]).
    pub fn pop_if_at_or_before(&mut self, horizon: SimTime) -> Option<(SimTime, usize, E)> {
        let s = self.head_shard()?;
        if self.heads[s].0 > horizon {
            return None;
        }
        Some(self.commit_pop(s))
    }

    /// Aggregated self-telemetry across the shards: peak depth is the merged
    /// queue's own peak (sum of in-flight events, matching what a single
    /// queue would report), resizes sum, scan worst-cases max, bucket counts
    /// sum, and the width is the widest shard's (the least calibrated one).
    pub fn telemetry(&self) -> QueueTelemetry {
        let mut t = QueueTelemetry {
            peak_depth: self.ledger.peak_depth,
            ..QueueTelemetry::default()
        };
        for q in &self.shards {
            let qt = q.telemetry();
            t.resizes += qt.resizes;
            t.max_pop_scan = t.max_pop_scan.max(qt.max_pop_scan);
            t.buckets += qt.buckets;
            t.width_us = t.width_us.max(qt.width_us);
        }
        t
    }

    /// Drops every pending event and resets the merged clock to t = 0,
    /// keeping each shard's allocated storage (the pooled-replicate
    /// contract of [`EventQueue::reset`]).
    pub fn reset(&mut self) {
        for q in &mut self.shards {
            q.reset();
        }
        self.heads.fill(EMPTY_HEAD);
        self.ledger.reset();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const LA: SimDuration = SimDuration::from_millis(1);

    #[test]
    fn zero_lookahead_fails_fast_only_when_sharded() {
        // The degenerate config must be an immediate, explicable error — a
        // real conservative executor would deadlock on it instead.
        let err = ShardedQueue::<u32>::new(4, SimDuration::ZERO).unwrap_err();
        assert_eq!(err, ShardConfigError::ZeroLookahead { shards: 4 });
        assert!(err.to_string().contains("strictly positive"));
        assert_eq!(
            ShardedQueue::<u32>::new(0, LA).unwrap_err(),
            ShardConfigError::NoShards
        );
        // One shard has no cross-shard sync, so zero lookahead is fine.
        assert!(ShardedQueue::<u32>::new(1, SimDuration::ZERO).is_ok());
    }

    #[test]
    fn merges_across_shards_in_global_time_order() {
        let mut q = ShardedQueue::new(3, LA).unwrap();
        q.schedule_at(2, SimTime::from_secs(3), "c");
        q.schedule_at(0, SimTime::from_secs(1), "a");
        q.schedule_at(1, SimTime::from_secs(2), "b");
        let order: Vec<_> = std::iter::from_fn(|| q.pop()).collect();
        assert_eq!(
            order,
            vec![
                (SimTime::from_secs(1), 0, "a"),
                (SimTime::from_secs(2), 1, "b"),
                (SimTime::from_secs(3), 2, "c"),
            ]
        );
        assert_eq!(q.now(), SimTime::from_secs(3));
    }

    #[test]
    fn same_instant_ties_break_by_global_schedule_order() {
        // Events at one instant interleaved across shards must pop in the
        // order they were scheduled — the global sequence, not shard index.
        let mut q = ShardedQueue::new(2, LA).unwrap();
        let t = SimTime::from_secs(1);
        for i in 0..100u32 {
            q.schedule_at((i % 2) as usize, t, i);
        }
        let order: Vec<_> = std::iter::from_fn(|| q.pop()).map(|(_, _, e)| e).collect();
        assert_eq!(order, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn stats_and_peek_track_the_merge() {
        let mut q = ShardedQueue::new(2, LA).unwrap();
        q.schedule_at(0, SimTime::from_secs(1), ());
        q.schedule_at(1, SimTime::from_secs(2), ());
        q.schedule_at(1, SimTime::from_secs(3), ());
        assert_eq!(q.len(), 3);
        assert_eq!(q.scheduled_total(), 3);
        assert_eq!(q.peek_time(), Some(SimTime::from_secs(1)));
        assert_eq!(q.pop_if_at_or_before(SimTime::from_millis(500)), None);
        assert_eq!(
            q.pop_if_at_or_before(SimTime::from_secs(1)),
            Some((SimTime::from_secs(1), 0, ()))
        );
        while q.pop().is_some() {}
        assert_eq!(
            q.shard_stats()[0],
            ShardStats {
                scheduled: 1,
                popped: 1
            }
        );
        assert_eq!(
            q.shard_stats()[1],
            ShardStats {
                scheduled: 2,
                popped: 2
            }
        );
        assert_eq!(q.telemetry().peak_depth, 3);
    }

    #[test]
    fn lookahead_violations_are_counted_per_offending_schedule() {
        let mut q = ShardedQueue::new(2, LA).unwrap();
        q.schedule_at(0, SimTime::from_secs(1), ());
        q.pop();
        q.set_origin(Some(0));
        // Same shard: never a violation, however close.
        q.schedule_after(0, SimDuration::ZERO, ());
        assert_eq!(q.violations(), 0);
        // Cross-shard below the lookahead: violation.
        q.schedule_after(1, SimDuration::from_micros(999), ());
        assert_eq!(q.violations(), 1);
        // Cross-shard exactly at the lookahead: allowed.
        q.schedule_after(1, LA, ());
        assert_eq!(q.violations(), 1);
        // No origin set (control plane): exempt.
        q.set_origin(None);
        q.schedule_after(1, SimDuration::ZERO, ());
        assert_eq!(q.violations(), 1);
    }

    #[test]
    fn epochs_count_lookahead_windows_and_reset_clears() {
        let mut q = ShardedQueue::new(2, LA).unwrap();
        for ms in [0u64, 1, 2, 5] {
            q.schedule_at(0, SimTime::from_millis(ms), ms);
        }
        while q.pop().is_some() {}
        // Pops at 0/1/2/5 ms with a 1 ms window: barriers at 1, 2 and 5 ms.
        assert_eq!(q.epochs(), 3);
        q.reset();
        assert_eq!(q.epochs(), 0);
        assert_eq!(q.violations(), 0);
        assert!(q.is_empty());
        assert_eq!(q.now(), SimTime::ZERO);
        assert_eq!(q.shard_stats()[0], ShardStats::default());
    }

    #[test]
    fn single_shard_matches_a_plain_event_queue() {
        let mut sharded = ShardedQueue::new(1, SimDuration::ZERO).unwrap();
        let mut plain = EventQueue::new();
        for (t, v) in [(5u64, 'a'), (1, 'b'), (5, 'c'), (3, 'd')] {
            sharded.schedule_at(0, SimTime::from_millis(t), v);
            plain.schedule_at(SimTime::from_millis(t), v);
        }
        loop {
            let a = sharded.pop().map(|(t, _, e)| (t, e));
            let b = plain.pop();
            assert_eq!(a, b);
            if a.is_none() {
                break;
            }
        }
    }
}
