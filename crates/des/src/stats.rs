//! Lightweight metric primitives used by every layer of the simulation.
//!
//! These are deliberately simple: counters, a streaming mean/variance (Welford),
//! and a fixed-width histogram good enough for latency distributions. Nothing here
//! allocates per observation, so metric collection never perturbs a hot loop.

use serde::{Deserialize, Serialize};

/// A monotonically increasing event counter.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct Counter(u64);

impl Counter {
    /// Creates a zeroed counter.
    pub const fn new() -> Self {
        Counter(0)
    }

    /// Adds one.
    #[inline]
    pub fn incr(&mut self) {
        self.0 += 1;
    }

    /// Adds `n`.
    #[inline]
    pub fn add(&mut self, n: u64) {
        self.0 += n;
    }

    /// Current count.
    #[inline]
    pub fn get(self) -> u64 {
        self.0
    }
}

/// Streaming mean / variance / min / max via Welford's algorithm.
///
/// Numerically stable for long runs; merging two accumulators (for parallel
/// replication) uses the Chan et al. parallel update.
#[derive(Debug, Clone, Copy, Default, Serialize, Deserialize)]
pub struct Welford {
    n: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
}

impl Welford {
    /// Creates an empty accumulator.
    pub fn new() -> Self {
        Welford {
            n: 0,
            mean: 0.0,
            m2: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Records one observation.
    pub fn record(&mut self, x: f64) {
        self.n += 1;
        let delta = x - self.mean;
        self.mean += delta / self.n as f64;
        self.m2 += delta * (x - self.mean);
        self.min = self.min.min(x);
        self.max = self.max.max(x);
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.n
    }

    /// Sample mean, or `None` if empty.
    pub fn mean(&self) -> Option<f64> {
        (self.n > 0).then_some(self.mean)
    }

    /// Unbiased sample variance, or `None` with fewer than two observations.
    pub fn variance(&self) -> Option<f64> {
        (self.n > 1).then(|| self.m2 / (self.n - 1) as f64)
    }

    /// Sample standard deviation.
    pub fn std_dev(&self) -> Option<f64> {
        self.variance().map(f64::sqrt)
    }

    /// Smallest observation, or `None` if empty.
    pub fn min(&self) -> Option<f64> {
        (self.n > 0).then_some(self.min)
    }

    /// Largest observation, or `None` if empty.
    pub fn max(&self) -> Option<f64> {
        (self.n > 0).then_some(self.max)
    }

    /// Merges another accumulator into this one (parallel combine).
    pub fn merge(&mut self, other: &Welford) {
        if other.n == 0 {
            return;
        }
        if self.n == 0 {
            *self = *other;
            return;
        }
        let n = self.n + other.n;
        let delta = other.mean - self.mean;
        let mean = self.mean + delta * other.n as f64 / n as f64;
        let m2 = self.m2 + other.m2 + delta * delta * (self.n as f64 * other.n as f64) / n as f64;
        self.n = n;
        self.mean = mean;
        self.m2 = m2;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }
}

/// Fixed-width histogram over `[0, width * bins)` with an overflow bucket.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Histogram {
    bin_width: f64,
    counts: Vec<u64>,
    overflow: u64,
    total: u64,
}

impl Histogram {
    /// Creates a histogram with `bins` buckets of `bin_width` each.
    ///
    /// # Panics
    ///
    /// Panics if `bins == 0` or `bin_width <= 0`.
    pub fn new(bin_width: f64, bins: usize) -> Self {
        assert!(bins > 0, "histogram needs at least one bin");
        assert!(bin_width > 0.0, "bin width must be positive");
        Histogram {
            bin_width,
            counts: vec![0; bins],
            overflow: 0,
            total: 0,
        }
    }

    /// Records one observation; negative values clamp into the first bucket.
    pub fn record(&mut self, x: f64) {
        self.total += 1;
        if x < 0.0 {
            self.counts[0] += 1;
            return;
        }
        let idx = (x / self.bin_width) as usize;
        if idx < self.counts.len() {
            self.counts[idx] += 1;
        } else {
            self.overflow += 1;
        }
    }

    /// Removes one previously recorded observation, using the same bucket
    /// mapping as [`Self::record`]. This is what makes a *windowed* histogram
    /// possible: a sliding-window quantile estimator records arrivals and
    /// removes expirations, keeping the bucket counts equal to a histogram
    /// built from only the live window.
    ///
    /// # Panics
    ///
    /// Panics if the value's bucket is empty — removing something that was
    /// never recorded is a caller bug, not a degraded estimate.
    pub fn remove(&mut self, x: f64) {
        assert!(self.total > 0, "removing from an empty histogram");
        self.total -= 1;
        let slot = if x < 0.0 {
            &mut self.counts[0]
        } else {
            let idx = (x / self.bin_width) as usize;
            if idx < self.counts.len() {
                &mut self.counts[idx]
            } else {
                &mut self.overflow
            }
        };
        assert!(*slot > 0, "removing a value that was never recorded: {x}");
        *slot -= 1;
    }

    /// Total observations recorded.
    pub fn count(&self) -> u64 {
        self.total
    }

    /// Observations that fell past the last bucket.
    pub fn overflow(&self) -> u64 {
        self.overflow
    }

    /// Count in bucket `i`.
    pub fn bucket(&self, i: usize) -> u64 {
        self.counts[i]
    }

    /// Number of (non-overflow) buckets.
    pub fn buckets(&self) -> usize {
        self.counts.len()
    }

    /// Quantile `q ∈ [0, 1]`, linearly interpolated within the bucket the target
    /// rank lands in (overflow counts as +∞).
    ///
    /// With `k` observations in the target bucket `[lo, lo + w)` and `c` below
    /// it, the estimate is `lo + (rank − c) / k · w`. When the rank is the
    /// bucket's last observation this coincides with the bucket upper edge, so
    /// boundary-aligned quantiles match the historical upper-edge rule; ranks
    /// inside a bucket no longer all collapse onto its upper edge.
    pub fn quantile(&self, q: f64) -> Option<f64> {
        assert!((0.0..=1.0).contains(&q), "quantile must be in [0,1]");
        if self.total == 0 {
            return None;
        }
        let target = (q * self.total as f64).ceil().max(1.0) as u64;
        let mut below = 0u64;
        for (i, &c) in self.counts.iter().enumerate() {
            if c > 0 && below + c >= target {
                let frac = (target - below) as f64 / c as f64;
                return Some((i as f64 + frac) * self.bin_width);
            }
            below += c;
        }
        Some(f64::INFINITY)
    }

    /// Merges another histogram with identical geometry.
    ///
    /// # Panics
    ///
    /// Panics if the geometries differ.
    pub fn merge(&mut self, other: &Histogram) {
        assert_eq!(
            self.bin_width, other.bin_width,
            "histogram bin widths differ"
        );
        assert_eq!(
            self.counts.len(),
            other.counts.len(),
            "histogram bin counts differ"
        );
        for (a, b) in self.counts.iter_mut().zip(&other.counts) {
            *a += b;
        }
        self.overflow += other.overflow;
        self.total += other.total;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_counts() {
        let mut c = Counter::new();
        c.incr();
        c.add(4);
        assert_eq!(c.get(), 5);
    }

    #[test]
    fn welford_matches_naive() {
        let xs = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0];
        let mut w = Welford::new();
        for &x in &xs {
            w.record(x);
        }
        assert_eq!(w.count(), 8);
        assert!((w.mean().unwrap() - 5.0).abs() < 1e-12);
        // Naive unbiased variance of this classic dataset is 32/7.
        assert!((w.variance().unwrap() - 32.0 / 7.0).abs() < 1e-12);
        assert_eq!(w.min(), Some(2.0));
        assert_eq!(w.max(), Some(9.0));
    }

    #[test]
    fn welford_merge_equals_sequential() {
        let xs: Vec<f64> = (0..100).map(|i| (i as f64).sin() * 10.0).collect();
        let mut whole = Welford::new();
        for &x in &xs {
            whole.record(x);
        }
        let mut left = Welford::new();
        let mut right = Welford::new();
        for &x in &xs[..37] {
            left.record(x);
        }
        for &x in &xs[37..] {
            right.record(x);
        }
        left.merge(&right);
        assert_eq!(left.count(), whole.count());
        assert!((left.mean().unwrap() - whole.mean().unwrap()).abs() < 1e-9);
        assert!((left.variance().unwrap() - whole.variance().unwrap()).abs() < 1e-9);
    }

    #[test]
    fn merge_with_empty_is_identity() {
        let mut w = Welford::new();
        w.record(3.0);
        let before = w;
        w.merge(&Welford::new());
        assert_eq!(w.count(), before.count());
        assert_eq!(w.mean(), before.mean());

        let mut e = Welford::new();
        e.merge(&before);
        assert_eq!(e.mean(), before.mean());
    }

    #[test]
    fn histogram_buckets_and_overflow() {
        let mut h = Histogram::new(1.0, 4);
        for x in [0.5, 1.5, 1.9, 3.99, 4.0, 100.0] {
            h.record(x);
        }
        assert_eq!(h.bucket(0), 1);
        assert_eq!(h.bucket(1), 2);
        assert_eq!(h.bucket(3), 1);
        assert_eq!(h.overflow(), 2);
        assert_eq!(h.count(), 6);
    }

    #[test]
    fn histogram_quantiles() {
        let mut h = Histogram::new(1.0, 10);
        for i in 0..100 {
            h.record(i as f64 / 10.0); // uniform over [0, 10)
        }
        assert_eq!(h.quantile(0.5), Some(5.0));
        assert_eq!(h.quantile(1.0), Some(10.0));
        assert_eq!(Histogram::new(1.0, 4).quantile(0.5), None);
    }

    #[test]
    fn quantile_interpolates_within_a_bucket() {
        // Three observations, all in bucket [0, 1): the historical upper-edge
        // rule returned 1.0 for every quantile; interpolation spreads the ranks
        // across the bucket. Pins the interpolated behaviour.
        let mut h = Histogram::new(1.0, 4);
        for _ in 0..3 {
            h.record(0.2);
        }
        // q=0.5 → rank 2 of 3 → 2/3 through the bucket.
        assert!((h.quantile(0.5).unwrap() - 2.0 / 3.0).abs() < 1e-12);
        // q→0 clamps to rank 1 → 1/3; q=1.0 is the bucket's last rank → its
        // upper edge, where interpolation and the old rule agree.
        assert!((h.quantile(0.0).unwrap() - 1.0 / 3.0).abs() < 1e-12);
        assert_eq!(h.quantile(1.0), Some(1.0));
        // Overflow mass still maps to +∞.
        let mut o = Histogram::new(1.0, 2);
        o.record(10.0);
        assert_eq!(o.quantile(1.0), Some(f64::INFINITY));
    }

    #[test]
    fn histogram_merge() {
        let mut a = Histogram::new(2.0, 3);
        let mut b = Histogram::new(2.0, 3);
        a.record(1.0);
        b.record(1.0);
        b.record(7.0);
        a.merge(&b);
        assert_eq!(a.bucket(0), 2);
        assert_eq!(a.overflow(), 1);
        assert_eq!(a.count(), 3);
    }

    #[test]
    #[should_panic(expected = "bin widths differ")]
    fn histogram_merge_rejects_mismatched() {
        let mut a = Histogram::new(1.0, 3);
        a.merge(&Histogram::new(2.0, 3));
    }

    #[test]
    fn remove_inverts_record() {
        let mut h = Histogram::new(1.0, 4);
        for x in [-0.5, 0.5, 2.2, 7.0] {
            h.record(x);
        }
        assert_eq!(h.count(), 4);
        assert_eq!(h.overflow(), 1);
        // Remove everything in a different order; every bucket returns to zero.
        for x in [7.0, -0.5, 2.2, 0.5] {
            h.remove(x);
        }
        assert_eq!(h.count(), 0);
        assert_eq!(h.overflow(), 0);
        for i in 0..h.buckets() {
            assert_eq!(h.bucket(i), 0);
        }
        assert_eq!(h.quantile(0.5), None);
    }

    #[test]
    #[should_panic(expected = "never recorded")]
    fn remove_of_unrecorded_bucket_panics() {
        let mut h = Histogram::new(1.0, 4);
        h.record(0.5);
        h.remove(3.5);
    }

    #[test]
    #[should_panic(expected = "empty histogram")]
    fn remove_from_empty_panics() {
        Histogram::new(1.0, 4).remove(0.5);
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(128))]

        /// Merging two accumulators matches recording the concatenation,
        /// including when either (or both) sides are empty or single-sample.
        #[test]
        fn welford_merge_matches_sequential(
            xs in proptest::collection::vec(-1e3f64..1e3, 0..40),
            ys in proptest::collection::vec(-1e3f64..1e3, 0..40),
        ) {
            let mut whole = Welford::new();
            for &x in xs.iter().chain(&ys) {
                whole.record(x);
            }
            let (mut a, mut b) = (Welford::new(), Welford::new());
            for &x in &xs {
                a.record(x);
            }
            for &y in &ys {
                b.record(y);
            }
            a.merge(&b);
            prop_assert_eq!(a.count(), whole.count());
            match (a.mean(), whole.mean()) {
                (None, None) => {}
                (Some(m), Some(w)) => prop_assert!((m - w).abs() < 1e-6),
                _ => return Err(TestCaseError::fail("mean presence differs")),
            }
            match (a.variance(), whole.variance()) {
                (None, None) => {}
                (Some(v), Some(w)) => prop_assert!((v - w).abs() < 1e-5),
                _ => return Err(TestCaseError::fail("variance presence differs")),
            }
            prop_assert_eq!(a.min(), whole.min());
            prop_assert_eq!(a.max(), whole.max());
        }

        /// Quantiles are monotone in `q` and stay within the histogram's
        /// support when nothing overflows.
        #[test]
        fn histogram_quantile_monotone_and_bounded(
            xs in proptest::collection::vec(0.0f64..20.0, 1..60),
            q1 in 0.0f64..1.0,
            q2 in 0.0f64..1.0,
        ) {
            let mut h = Histogram::new(0.5, 40); // covers [0, 20)
            for &x in &xs {
                h.record(x);
            }
            let (lo, hi) = if q1 <= q2 { (q1, q2) } else { (q2, q1) };
            let a = h.quantile(lo).unwrap();
            let b = h.quantile(hi).unwrap();
            prop_assert!(a <= b + 1e-12, "quantiles not monotone: {} > {}", a, b);
            prop_assert!(a > 0.0 && b <= 20.0 + 1e-12);
        }

        /// With a single observation, every quantile lands at the upper edge of
        /// that observation's bucket.
        #[test]
        fn histogram_single_sample_quantile_in_bucket(
            x in 0.0f64..20.0,
            q in 0.0f64..1.0,
        ) {
            let mut h = Histogram::new(0.5, 40);
            h.record(x);
            let v = h.quantile(q).unwrap();
            let bucket_lo = (x / 0.5).floor() * 0.5;
            prop_assert!(v > bucket_lo && v <= bucket_lo + 0.5 + 1e-12);
        }

        /// Empty histograms have no quantiles, and merging an empty into an
        /// empty keeps them that way.
        #[test]
        fn histogram_empty_edge_cases(q in 0.0f64..1.0) {
            let mut h = Histogram::new(1.0, 4);
            h.merge(&Histogram::new(1.0, 4));
            prop_assert_eq!(h.quantile(q), None);
        }

        /// Recording a stream and then removing an arbitrary prefix leaves
        /// exactly the histogram of the suffix — `remove` is `record`'s
        /// inverse under any interleaving a sliding window can produce.
        #[test]
        fn histogram_remove_is_records_inverse(
            xs in proptest::collection::vec(-2.0f64..30.0, 1..60),
            split in 0usize..60,
        ) {
            let split = split.min(xs.len());
            let mut live = Histogram::new(0.5, 40);
            for &x in &xs {
                live.record(x);
            }
            for &x in &xs[..split] {
                live.remove(x);
            }
            let mut expect = Histogram::new(0.5, 40);
            for &x in &xs[split..] {
                expect.record(x);
            }
            prop_assert_eq!(live.count(), expect.count());
            prop_assert_eq!(live.overflow(), expect.overflow());
            for i in 0..live.buckets() {
                prop_assert_eq!(live.bucket(i), expect.bucket(i));
            }
        }
    }
}
