//! Simulation time.
//!
//! The kernel tracks time as an integer number of **microseconds** since the start of
//! the simulation. Integer time makes event ordering exact and runs reproducible: two
//! events scheduled for the same instant compare equal on every platform, and no
//! floating-point drift accumulates over long simulations.
//!
//! [`SimTime`] is a point on the timeline; [`SimDuration`] is a distance between two
//! points. Arithmetic across the two types mirrors `std::time`.

use serde::{Deserialize, Serialize};
use std::fmt;
use std::ops::{Add, AddAssign, Div, Mul, Sub, SubAssign};

/// Microseconds per second, the base resolution of the simulation clock.
pub const MICROS_PER_SEC: u64 = 1_000_000;

/// An absolute instant on the simulation timeline, in microseconds since t = 0.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct SimTime(u64);

/// A non-negative span of simulation time, in microseconds.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct SimDuration(u64);

impl SimTime {
    /// The origin of the simulation timeline.
    pub const ZERO: SimTime = SimTime(0);
    /// The greatest representable instant; useful as a "never" sentinel.
    pub const MAX: SimTime = SimTime(u64::MAX);

    /// Creates an instant from whole microseconds.
    #[inline]
    pub const fn from_micros(us: u64) -> Self {
        SimTime(us)
    }

    /// Creates an instant from whole milliseconds.
    #[inline]
    pub const fn from_millis(ms: u64) -> Self {
        SimTime(ms * 1_000)
    }

    /// Creates an instant from whole seconds.
    #[inline]
    pub const fn from_secs(s: u64) -> Self {
        SimTime(s * MICROS_PER_SEC)
    }

    /// Creates an instant from fractional seconds, rounding to the nearest microsecond.
    ///
    /// # Panics
    ///
    /// Panics if `s` is negative, NaN, or too large to represent.
    #[inline]
    pub fn from_secs_f64(s: f64) -> Self {
        assert!(s.is_finite() && s >= 0.0, "invalid SimTime seconds: {s}");
        SimTime((s * MICROS_PER_SEC as f64).round() as u64)
    }

    /// Raw microsecond count.
    #[inline]
    pub const fn as_micros(self) -> u64 {
        self.0
    }

    /// This instant expressed in fractional seconds.
    #[inline]
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / MICROS_PER_SEC as f64
    }

    /// Duration elapsed since `earlier`, saturating to zero if `earlier` is later.
    #[inline]
    pub fn saturating_since(self, earlier: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(earlier.0))
    }

    /// Checked addition; `None` on overflow.
    #[inline]
    pub fn checked_add(self, d: SimDuration) -> Option<SimTime> {
        self.0.checked_add(d.0).map(SimTime)
    }

    /// The instant `d` before this one, saturating to the timeline origin.
    #[inline]
    pub const fn saturating_sub(self, d: SimDuration) -> SimTime {
        SimTime(self.0.saturating_sub(d.0))
    }
}

impl SimDuration {
    /// The empty span.
    pub const ZERO: SimDuration = SimDuration(0);
    /// The greatest representable span.
    pub const MAX: SimDuration = SimDuration(u64::MAX);

    /// Creates a span from whole microseconds.
    #[inline]
    pub const fn from_micros(us: u64) -> Self {
        SimDuration(us)
    }

    /// Creates a span from whole milliseconds.
    #[inline]
    pub const fn from_millis(ms: u64) -> Self {
        SimDuration(ms * 1_000)
    }

    /// Creates a span from whole seconds.
    #[inline]
    pub const fn from_secs(s: u64) -> Self {
        SimDuration(s * MICROS_PER_SEC)
    }

    /// Creates a span from fractional seconds, rounding to the nearest microsecond.
    ///
    /// # Panics
    ///
    /// Panics if `s` is negative, NaN, or too large to represent.
    #[inline]
    pub fn from_secs_f64(s: f64) -> Self {
        assert!(
            s.is_finite() && s >= 0.0,
            "invalid SimDuration seconds: {s}"
        );
        SimDuration((s * MICROS_PER_SEC as f64).round() as u64)
    }

    /// Raw microsecond count.
    #[inline]
    pub const fn as_micros(self) -> u64 {
        self.0
    }

    /// This span expressed in fractional seconds.
    #[inline]
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / MICROS_PER_SEC as f64
    }

    /// True if the span is zero.
    #[inline]
    pub const fn is_zero(self) -> bool {
        self.0 == 0
    }

    /// Multiplies the span by a non-negative float, rounding to microseconds.
    #[inline]
    pub fn mul_f64(self, k: f64) -> SimDuration {
        assert!(k.is_finite() && k >= 0.0, "invalid duration factor: {k}");
        SimDuration((self.0 as f64 * k).round() as u64)
    }
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;
    #[inline]
    fn add(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0 + rhs.0)
    }
}

impl AddAssign<SimDuration> for SimTime {
    #[inline]
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 += rhs.0;
    }
}

impl Sub<SimDuration> for SimTime {
    type Output = SimTime;
    #[inline]
    fn sub(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0 - rhs.0)
    }
}

impl Sub<SimTime> for SimTime {
    type Output = SimDuration;
    /// Exact elapsed span; panics in debug builds if `rhs` is later than `self`.
    #[inline]
    fn sub(self, rhs: SimTime) -> SimDuration {
        SimDuration(self.0 - rhs.0)
    }
}

impl Add for SimDuration {
    type Output = SimDuration;
    #[inline]
    fn add(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0 + rhs.0)
    }
}

impl AddAssign for SimDuration {
    #[inline]
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 += rhs.0;
    }
}

impl Sub for SimDuration {
    type Output = SimDuration;
    #[inline]
    fn sub(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0 - rhs.0)
    }
}

impl SubAssign for SimDuration {
    #[inline]
    fn sub_assign(&mut self, rhs: SimDuration) {
        self.0 -= rhs.0;
    }
}

impl Mul<u64> for SimDuration {
    type Output = SimDuration;
    #[inline]
    fn mul(self, rhs: u64) -> SimDuration {
        SimDuration(self.0 * rhs)
    }
}

impl Div<u64> for SimDuration {
    type Output = SimDuration;
    #[inline]
    fn div(self, rhs: u64) -> SimDuration {
        SimDuration(self.0 / rhs)
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.6}s", self.as_secs_f64())
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.6}s", self.as_secs_f64())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors_agree_on_units() {
        assert_eq!(SimTime::from_secs(3), SimTime::from_millis(3_000));
        assert_eq!(SimTime::from_millis(5), SimTime::from_micros(5_000));
        assert_eq!(
            SimDuration::from_secs(2),
            SimDuration::from_micros(2 * MICROS_PER_SEC)
        );
    }

    #[test]
    fn float_roundtrip() {
        let t = SimTime::from_secs_f64(1.25);
        assert_eq!(t.as_micros(), 1_250_000);
        assert!((t.as_secs_f64() - 1.25).abs() < 1e-12);
    }

    #[test]
    fn time_duration_arithmetic() {
        let t = SimTime::from_secs(10);
        let d = SimDuration::from_millis(1_500);
        assert_eq!(t + d, SimTime::from_micros(11_500_000));
        assert_eq!((t + d) - t, d);
        assert_eq!((t + d) - d, t);
    }

    #[test]
    fn saturating_since_clamps() {
        let a = SimTime::from_secs(1);
        let b = SimTime::from_secs(2);
        assert_eq!(b.saturating_since(a), SimDuration::from_secs(1));
        assert_eq!(a.saturating_since(b), SimDuration::ZERO);
    }

    #[test]
    fn saturating_sub_clamps_at_origin() {
        let t = SimTime::from_secs(5);
        assert_eq!(
            t.saturating_sub(SimDuration::from_secs(2)),
            SimTime::from_secs(3)
        );
        assert_eq!(t.saturating_sub(SimDuration::from_secs(9)), SimTime::ZERO);
    }

    #[test]
    fn duration_scaling() {
        let d = SimDuration::from_millis(100);
        assert_eq!(d * 3, SimDuration::from_millis(300));
        assert_eq!(d / 4, SimDuration::from_millis(25));
        assert_eq!(d.mul_f64(2.5), SimDuration::from_millis(250));
    }

    #[test]
    fn ordering_is_total() {
        let mut v = vec![
            SimTime::from_secs(3),
            SimTime::ZERO,
            SimTime::from_millis(1),
        ];
        v.sort();
        assert_eq!(
            v,
            vec![
                SimTime::ZERO,
                SimTime::from_millis(1),
                SimTime::from_secs(3)
            ]
        );
    }

    #[test]
    fn display_formats_seconds() {
        assert_eq!(SimTime::from_millis(1_500).to_string(), "1.500000s");
        assert_eq!(SimDuration::from_micros(42).to_string(), "0.000042s");
    }

    #[test]
    #[should_panic(expected = "invalid SimTime seconds")]
    fn negative_seconds_rejected() {
        let _ = SimTime::from_secs_f64(-1.0);
    }

    #[test]
    fn checked_add_detects_overflow() {
        assert!(SimTime::MAX
            .checked_add(SimDuration::from_micros(1))
            .is_none());
        assert_eq!(
            SimTime::ZERO.checked_add(SimDuration::from_secs(1)),
            Some(SimTime::from_secs(1))
        );
    }
}
