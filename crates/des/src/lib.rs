//! # vanet-des — deterministic discrete-event simulation kernel
//!
//! The ns-2 substitute at the bottom of the HLSRG reproduction stack. Everything the
//! higher layers do — radio deliveries, MAC backoff expiry, mobility ticks, protocol
//! timers — is an event in one global [`EventQueue`], processed in strict
//! `(time, insertion order)` sequence.
//!
//! Design rules that the rest of the workspace relies on:
//!
//! * **Integer microsecond clock** ([`SimTime`]): no floating-point drift, exact
//!   event ordering.
//! * **FIFO tie-break**: events at the same instant fire in scheduling order, so a
//!   run is a pure function of (config, seed).
//! * **Amortized O(1) scheduling**: [`EventQueue`] is a calendar queue (rotating
//!   bucket array keyed by time), not a binary heap; the retired heap kernel
//!   survives as [`HeapQueue`], the reference the differential tests drive in
//!   lockstep to prove the `(time, seq)` pop order is preserved exactly.
//! * **Named RNG streams** ([`rng::stream_rng`]): each subsystem owns an independent
//!   deterministic stream derived from the master seed.
//! * **Allocation-free metrics** ([`stats`]): counters, Welford accumulators, and
//!   fixed-width histograms that merge across parallel replications.
//!
//! ```
//! use vanet_des::{EventQueue, SimTime, SimDuration, run, Control};
//!
//! let mut q = EventQueue::new();
//! q.schedule_at(SimTime::from_secs(1), "hello");
//! let mut fired = Vec::new();
//! run(&mut q, |t, e, q| {
//!     fired.push((t, e));
//!     if e == "hello" {
//!         q.schedule_after(SimDuration::from_millis(500), "world");
//!     }
//!     Control::Continue
//! });
//! assert_eq!(fired[1].0, SimTime::from_millis(1500));
//! ```

#![warn(missing_docs)]

pub mod event;
pub mod exec;
pub mod heap;
pub mod rng;
pub mod shard;
pub mod stats;
pub mod time;

pub use event::{run, run_until, Control, EventQueue, QueueTelemetry, RunOutcome};
pub use exec::EpochExecutor;
pub use heap::HeapQueue;
pub use rng::{derive_seed, splitmix64, stream_rng, StreamId};
pub use shard::{ShardConfigError, ShardStats, ShardedQueue};
pub use stats::{Counter, Histogram, Welford};
pub use time::{SimDuration, SimTime, MICROS_PER_SEC};

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    /// One differential step: the opcode space the interleaving tests draw from.
    /// Codes weight scheduling and popping heavily and resets lightly.
    fn apply_differential_op(
        code: u8,
        v: u64,
        cal: &mut EventQueue<u64>,
        heap: &mut HeapQueue<u64>,
        next_payload: &mut u64,
    ) {
        match code {
            // Near-term scheduling: the dominant op in a real run.
            0..=3 => {
                let delay = SimDuration::from_micros(match code {
                    0 | 1 => v % 50_000,
                    // Same-instant bursts exercise the FIFO tie-break.
                    2 => 0,
                    // Far future: beyond any calendar year the queue has built.
                    _ => 10_000_000_000 + v % 1_000_000_000_000,
                });
                cal.schedule_after(delay, *next_payload);
                heap.schedule_after(delay, *next_payload);
                *next_payload += 1;
            }
            4..=6 => {
                assert_eq!(cal.pop(), heap.pop(), "pop streams diverged");
            }
            7 | 8 => {
                let horizon = cal.now() + SimDuration::from_micros(v % 100_000);
                assert_eq!(
                    cal.pop_if_at_or_before(horizon),
                    heap.pop_if_at_or_before(horizon),
                    "bounded pop streams diverged"
                );
            }
            _ => {
                cal.reset();
                heap.reset();
                *next_payload = 0;
            }
        }
        assert_eq!(cal.len(), heap.len());
        assert_eq!(cal.now(), heap.now());
        assert_eq!(cal.peek_time(), heap.peek_time());
    }

    proptest! {
        /// The tentpole oracle: a calendar queue and the heap reference driven
        /// through identical random schedule/pop/bounded-pop/reset
        /// interleavings produce bit-identical `(time, event)` streams —
        /// payloads are unique per scheduling, so agreeing on `(time, event)`
        /// is agreeing on `(time, seq)`.
        #[test]
        fn calendar_queue_matches_heap_reference(
            ops in proptest::collection::vec((0u8..10, 0u64..u64::MAX / 2), 1..400),
        ) {
            let mut cal = EventQueue::new();
            let mut heap = HeapQueue::new();
            let mut next_payload = 0u64;
            for &(code, v) in &ops {
                apply_differential_op(code, v, &mut cal, &mut heap, &mut next_payload);
            }
            // Drain both to the end: every residual event must match too.
            loop {
                let (a, b) = (cal.pop(), heap.pop());
                prop_assert_eq!(a, b);
                if a.is_none() {
                    break;
                }
            }
        }

        /// The pop order must not depend on the initial bucket layout: queues
        /// constructed with degenerate, generous, and horizon-calibrated
        /// parameters all match the reference on the same interleaving.
        #[test]
        fn pop_order_is_independent_of_bucket_layout(
            ops in proptest::collection::vec((0u8..10, 0u64..u64::MAX / 2), 1..200),
            cap in 1usize..5_000,
            horizon_s in 1u64..10_000,
        ) {
            let mut queues = [
                EventQueue::with_capacity(cap),
                EventQueue::with_capacity_and_horizon(
                    cap,
                    SimDuration::from_secs(horizon_s),
                ),
            ];
            for cal in &mut queues {
                let mut heap = HeapQueue::new();
                let mut next_payload = 0u64;
                for &(code, v) in &ops {
                    apply_differential_op(code, v, cal, &mut heap, &mut next_payload);
                }
                loop {
                    let (a, b) = (cal.pop(), heap.pop());
                    prop_assert_eq!(a, b);
                    if a.is_none() {
                        break;
                    }
                }
            }
        }

        /// Events always come out in non-decreasing time order, and ties preserve
        /// scheduling order.
        #[test]
        fn queue_pops_sorted(times in proptest::collection::vec(0u64..10_000, 1..200)) {
            let mut q = EventQueue::new();
            for (i, &t) in times.iter().enumerate() {
                q.schedule_at(SimTime::from_micros(t), i);
            }
            let mut last_time = SimTime::ZERO;
            let mut last_seq_at_time: Option<usize> = None;
            while let Some((t, seq)) = q.pop() {
                prop_assert!(t >= last_time);
                if t == last_time {
                    if let Some(prev) = last_seq_at_time {
                        prop_assert!(seq > prev, "FIFO violated at equal timestamps");
                    }
                } else {
                    last_time = t;
                }
                last_seq_at_time = Some(seq);
            }
        }

        /// The driver visits exactly the events at or before the horizon.
        #[test]
        fn run_until_partitions_by_horizon(
            times in proptest::collection::vec(0u64..1_000, 0..100),
            horizon in 0u64..1_000,
        ) {
            let mut q = EventQueue::new();
            for &t in &times {
                q.schedule_at(SimTime::from_micros(t), t);
            }
            let mut processed = 0usize;
            run_until(&mut q, SimTime::from_micros(horizon), |_, _, _| {
                processed += 1;
                Control::Continue
            });
            let expected = times.iter().filter(|&&t| t <= horizon).count();
            prop_assert_eq!(processed, expected);
            prop_assert_eq!(q.len(), times.len() - expected);
        }

        /// Welford merge is associative enough: merging any split equals sequential.
        #[test]
        fn welford_split_invariance(
            xs in proptest::collection::vec(-1e6f64..1e6, 2..200),
            cut in 0usize..200,
        ) {
            let cut = cut % xs.len();
            let mut whole = Welford::new();
            for &x in &xs { whole.record(x); }
            let mut a = Welford::new();
            let mut b = Welford::new();
            for &x in &xs[..cut] { a.record(x); }
            for &x in &xs[cut..] { b.record(x); }
            a.merge(&b);
            prop_assert_eq!(a.count(), whole.count());
            let (ma, mw) = (a.mean().unwrap(), whole.mean().unwrap());
            prop_assert!((ma - mw).abs() <= 1e-6 * (1.0 + mw.abs()));
        }

        /// The sharded merge oracle: a [`ShardedQueue`] with randomly routed
        /// schedules and an unsharded [`HeapQueue`] driven through identical
        /// interleavings produce bit-identical `(time, event)` pop streams —
        /// shard routing is an implementation layout, never an observable.
        /// This is the boundary-event-merge half of the determinism contract:
        /// cross-shard schedules land in different inner queues, yet the
        /// merged stream must preserve exact global `(time, seq)` FIFO order.
        #[test]
        fn sharded_queue_matches_heap_reference(
            ops in proptest::collection::vec((0u8..10, 0u64..u64::MAX / 2), 1..400),
            nshards in 1usize..=8,
        ) {
            let mut sharded =
                ShardedQueue::new(nshards, SimDuration::from_micros(1)).unwrap();
            let mut heap = HeapQueue::new();
            let mut next_payload = 0u64;
            for &(code, v) in &ops {
                // Route by a hash of the payload value: adversarial to the
                // merge (same-instant bursts scatter across shards), while the
                // reference sees no routing at all.
                let shard = (v >> 32) as usize % nshards;
                match code {
                    0..=3 => {
                        let delay = SimDuration::from_micros(match code {
                            0 | 1 => v % 50_000,
                            2 => 0,
                            _ => 10_000_000_000 + v % 1_000_000_000_000,
                        });
                        sharded.schedule_after(shard, delay, next_payload);
                        heap.schedule_after(delay, next_payload);
                        next_payload += 1;
                    }
                    4..=6 => {
                        prop_assert_eq!(
                            sharded.pop().map(|(t, _, e)| (t, e)),
                            heap.pop(),
                            "pop streams diverged"
                        );
                    }
                    7 | 8 => {
                        let horizon = sharded.now() + SimDuration::from_micros(v % 100_000);
                        prop_assert_eq!(
                            sharded.pop_if_at_or_before(horizon).map(|(t, _, e)| (t, e)),
                            heap.pop_if_at_or_before(horizon),
                            "bounded pop streams diverged"
                        );
                    }
                    _ => {
                        sharded.reset();
                        heap.reset();
                        next_payload = 0;
                    }
                }
                prop_assert_eq!(sharded.len(), heap.len());
                prop_assert_eq!(sharded.now(), heap.now());
                prop_assert_eq!(sharded.peek_time(), heap.peek_time());
            }
            // Drain both to the end: every residual event must match too.
            loop {
                let (a, b) = (sharded.pop().map(|(t, _, e)| (t, e)), heap.pop());
                prop_assert_eq!(a, b);
                if a.is_none() {
                    break;
                }
            }
        }

        /// The merged pop stream is invariant under the shard count itself:
        /// any two shard counts over the same schedule/pop interleaving agree
        /// event for event (each is bit-identical to the heap reference, but
        /// pinning them against each other directly documents the contract
        /// the scenario-level differential suite relies on).
        #[test]
        fn shard_count_never_changes_the_pop_stream(
            ops in proptest::collection::vec((0u8..8, 0u64..u64::MAX / 2), 1..200),
        ) {
            let la = SimDuration::from_micros(1);
            let mut a = ShardedQueue::new(2, la).unwrap();
            let mut b = ShardedQueue::new(8, la).unwrap();
            let mut next_payload = 0u64;
            for &(code, v) in &ops {
                match code {
                    0..=4 => {
                        let delay = SimDuration::from_micros(v % 200_000);
                        a.schedule_after((v >> 32) as usize % 2, delay, next_payload);
                        b.schedule_after((v >> 32) as usize % 8, delay, next_payload);
                        next_payload += 1;
                    }
                    _ => {
                        prop_assert_eq!(
                            a.pop().map(|(t, _, e)| (t, e)),
                            b.pop().map(|(t, _, e)| (t, e))
                        );
                    }
                }
            }
            loop {
                let (x, y) = (a.pop().map(|(t, _, e)| (t, e)), b.pop().map(|(t, _, e)| (t, e)));
                prop_assert_eq!(x, y);
                if x.is_none() {
                    break;
                }
            }
            prop_assert_eq!(a.epochs(), b.epochs(), "epoch count must be shard-invariant");
        }

        /// The epoch executor against the serial sharded reference: random
        /// schedule/pop/bounded-pop interleavings (no reset — the executor is
        /// single-run by design) produce identical `(time, shard, event)`
        /// streams and identical ledgers at 1, 2, and `nshards` worker
        /// threads. This is the thread-count half of the determinism
        /// contract: barriers, adaptive epoch spans, and mailbox flushes are
        /// pure functions of the event set.
        #[test]
        fn epoch_executor_matches_sharded_reference(
            ops in proptest::collection::vec((0u8..9, 0u64..u64::MAX / 2), 1..300),
            nshards in 1usize..=6,
            threads in 1usize..=4,
        ) {
            let la = SimDuration::from_micros(700);
            let mut exec = EpochExecutor::new(nshards, threads, la).unwrap();
            let mut refq = ShardedQueue::new(nshards, la).unwrap();
            let mut next_payload = 0u64;
            for &(code, v) in &ops {
                let shard = (v >> 32) as usize % nshards;
                match code {
                    0..=3 => {
                        let delay = SimDuration::from_micros(match code {
                            0 | 1 => v % 50_000,
                            2 => 0,
                            _ => 10_000_000_000 + v % 1_000_000_000_000,
                        });
                        exec.schedule_after(shard, delay, next_payload);
                        refq.schedule_after(shard, delay, next_payload);
                        next_payload += 1;
                    }
                    4..=6 => {
                        prop_assert_eq!(exec.pop(), refq.pop(), "pop streams diverged");
                    }
                    _ => {
                        let horizon = refq.now() + SimDuration::from_micros(v % 100_000);
                        prop_assert_eq!(
                            exec.pop_if_at_or_before(horizon),
                            refq.pop_if_at_or_before(horizon),
                            "bounded pop streams diverged"
                        );
                    }
                }
                prop_assert_eq!(exec.len(), refq.len());
                prop_assert_eq!(exec.now(), refq.now());
                prop_assert_eq!(exec.peek_time(), refq.peek_time());
                prop_assert_eq!(exec.epochs(), refq.epochs());
            }
            loop {
                let (a, b) = (exec.pop(), refq.pop());
                prop_assert_eq!(a, b);
                if a.is_none() {
                    break;
                }
            }
            prop_assert_eq!(exec.shard_stats(), refq.shard_stats());
        }

        /// Stream derivation is injective in practice over small domains.
        #[test]
        fn rng_streams_unique(seed in 0u64..1_000) {
            use std::collections::HashSet;
            let streams = [
                StreamId::MapGen, StreamId::Workload, StreamId::Mobility,
                StreamId::Radio, StreamId::Backoff, StreamId::Protocol,
                StreamId::Queries, StreamId::Custom(9),
            ];
            let set: HashSet<u64> =
                streams.iter().map(|&s| derive_seed(seed, s)).collect();
            prop_assert_eq!(set.len(), streams.len());
        }
    }
}
