//! Deterministic random-number streams.
//!
//! Every stochastic component of the simulation (mobility, radio loss, backoff,
//! workload) draws from its own stream so that adding randomness to one subsystem
//! never perturbs another. Streams are derived from a single master seed with a
//! SplitMix64 mix, which is the standard way to decorrelate sequential seeds.

use rand::rngs::SmallRng;
use rand::SeedableRng;

/// Well-known stream identifiers, so subsystems don't collide by accident.
///
/// The numeric values are part of the reproducibility contract: changing them changes
/// every published number.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum StreamId {
    /// Map generation (jitter, artery selection).
    MapGen,
    /// Vehicle placement and trip generation.
    Workload,
    /// Vehicle kinematics and route choice.
    Mobility,
    /// Radio loss and per-hop jitter.
    Radio,
    /// MAC/protocol backoff draws.
    Backoff,
    /// Protocol-internal choices (server election, etc.).
    Protocol,
    /// Query launch schedule (who queries whom, when).
    Queries,
    /// Free-form extra stream, keyed by the caller.
    Custom(u64),
}

impl StreamId {
    fn as_u64(self) -> u64 {
        match self {
            StreamId::MapGen => 0x01,
            StreamId::Workload => 0x02,
            StreamId::Mobility => 0x03,
            StreamId::Radio => 0x04,
            StreamId::Backoff => 0x05,
            StreamId::Protocol => 0x06,
            StreamId::Queries => 0x07,
            StreamId::Custom(k) => 0x1000_0000_0000_0000 ^ k,
        }
    }
}

/// SplitMix64 finalizer: a high-quality 64-bit mixing function.
///
/// Used to turn `(master_seed, stream_id)` pairs into decorrelated sub-seeds.
#[inline]
pub fn splitmix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Derives the seed for `stream` from `master_seed`.
#[inline]
pub fn derive_seed(master_seed: u64, stream: StreamId) -> u64 {
    splitmix64(splitmix64(master_seed) ^ stream.as_u64())
}

/// Creates the RNG for one named stream of one master seed.
pub fn stream_rng(master_seed: u64, stream: StreamId) -> SmallRng {
    SmallRng::seed_from_u64(derive_seed(master_seed, stream))
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::RngExt;

    #[test]
    fn streams_are_decorrelated() {
        let mut a = stream_rng(7, StreamId::Mobility);
        let mut b = stream_rng(7, StreamId::Radio);
        let xs: Vec<u64> = (0..16).map(|_| a.random()).collect();
        let ys: Vec<u64> = (0..16).map(|_| b.random()).collect();
        assert_ne!(xs, ys);
    }

    #[test]
    fn same_seed_same_stream_reproduces() {
        let mut a = stream_rng(42, StreamId::Backoff);
        let mut b = stream_rng(42, StreamId::Backoff);
        for _ in 0..100 {
            assert_eq!(a.random::<u64>(), b.random::<u64>());
        }
    }

    #[test]
    fn adjacent_master_seeds_diverge() {
        let a = derive_seed(1, StreamId::Workload);
        let b = derive_seed(2, StreamId::Workload);
        // SplitMix64 should send adjacent integers far apart.
        assert_ne!(a, b);
        assert!((a ^ b).count_ones() > 10);
    }

    #[test]
    fn custom_streams_differ_by_key() {
        assert_ne!(
            derive_seed(3, StreamId::Custom(1)),
            derive_seed(3, StreamId::Custom(2))
        );
    }

    #[test]
    fn splitmix_known_vector() {
        // Reference value from the public-domain SplitMix64 implementation.
        assert_eq!(splitmix64(0), 0xE220_A839_7B1D_CDAF);
    }
}
