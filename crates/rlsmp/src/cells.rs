//! RLSMP's longitude/latitude cell grid and cluster structure.
//!
//! RLSMP (Saleet et al., GLOBECOM 2008) divides the network into square cells by
//! longitude and latitude — *not* along roads, which is exactly the design decision
//! HLSRG criticizes. Cells group into clusters (9×9 in the original paper); the
//! central cell of each cluster is the Location Service Cell (LSC). Queries that
//! miss at the local LSC travel to the other clusters' LSCs in spiral order.

use serde::{Deserialize, Serialize};
use std::fmt;
use vanet_geo::{BBox, Point};

/// A cell id (dense, row-major from the south-west).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct CellId(pub u32);

/// A cluster id (dense, row-major).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct ClusterId(pub u32);

impl fmt::Display for CellId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "cell#{}", self.0)
    }
}

impl fmt::Display for ClusterId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "cluster#{}", self.0)
    }
}

/// The lon/lat cell grid.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct CellGrid {
    origin: Point,
    cell_size: f64,
    nx: u32,
    ny: u32,
    cluster_dim: u32,
}

impl CellGrid {
    /// Builds the grid covering `area` with square cells of `cell_size` meters,
    /// clustered `cluster_dim × cluster_dim`.
    ///
    /// # Panics
    ///
    /// Panics on non-positive `cell_size` or zero `cluster_dim`.
    pub fn new(area: BBox, cell_size: f64, cluster_dim: u32) -> Self {
        assert!(cell_size > 0.0, "cell size must be positive");
        assert!(cluster_dim >= 1, "cluster dim must be >= 1");
        let nx = ((area.width() / cell_size).ceil() as u32).max(1);
        let ny = ((area.height() / cell_size).ceil() as u32).max(1);
        CellGrid {
            origin: Point::new(area.min_x, area.min_y),
            cell_size,
            nx,
            ny,
            cluster_dim,
        }
    }

    /// `(columns, rows)` of cells.
    pub fn dims(&self) -> (u32, u32) {
        (self.nx, self.ny)
    }

    /// Total number of cells.
    pub fn cell_count(&self) -> usize {
        (self.nx * self.ny) as usize
    }

    /// `(columns, rows)` of clusters.
    pub fn cluster_dims(&self) -> (u32, u32) {
        (
            self.nx.div_ceil(self.cluster_dim),
            self.ny.div_ceil(self.cluster_dim),
        )
    }

    /// Total number of clusters.
    pub fn cluster_count(&self) -> usize {
        let (cx, cy) = self.cluster_dims();
        (cx * cy) as usize
    }

    /// Cell side length in meters.
    pub fn cell_size(&self) -> f64 {
        self.cell_size
    }

    /// Cell containing `p` (outside points clamp to the border cells).
    pub fn cell_of(&self, p: Point) -> CellId {
        let ix =
            (((p.x - self.origin.x) / self.cell_size).floor() as i64).clamp(0, self.nx as i64 - 1);
        let iy =
            (((p.y - self.origin.y) / self.cell_size).floor() as i64).clamp(0, self.ny as i64 - 1);
        CellId(iy as u32 * self.nx + ix as u32)
    }

    /// Geometric center of a cell — RLSMP's rendezvous point (an arbitrary map
    /// point, possibly mid-block: the weakness road-adapted grids fix).
    pub fn cell_center(&self, c: CellId) -> Point {
        let (ix, iy) = (c.0 % self.nx, c.0 / self.nx);
        Point::new(
            self.origin.x + (ix as f64 + 0.5) * self.cell_size,
            self.origin.y + (iy as f64 + 0.5) * self.cell_size,
        )
    }

    /// Bounding box of a cell.
    pub fn cell_bbox(&self, c: CellId) -> BBox {
        let (ix, iy) = (c.0 % self.nx, c.0 / self.nx);
        BBox::new(
            self.origin.x + ix as f64 * self.cell_size,
            self.origin.y + iy as f64 * self.cell_size,
            self.origin.x + (ix + 1) as f64 * self.cell_size,
            self.origin.y + (iy + 1) as f64 * self.cell_size,
        )
    }

    /// The cluster a cell belongs to.
    pub fn cluster_of(&self, c: CellId) -> ClusterId {
        let (ix, iy) = (c.0 % self.nx, c.0 / self.nx);
        let (ncx, _) = self.cluster_dims();
        ClusterId((iy / self.cluster_dim) * ncx + ix / self.cluster_dim)
    }

    /// The Location Service Cell of a cluster: the middle cell of the cluster's
    /// in-map extent (clusters truncated by the map edge center on what exists).
    pub fn lsc_cell(&self, cl: ClusterId) -> CellId {
        let (ncx, _) = self.cluster_dims();
        let (cx, cy) = (cl.0 % ncx, cl.0 / ncx);
        let x_lo = cx * self.cluster_dim;
        let x_hi = ((cx + 1) * self.cluster_dim).min(self.nx) - 1;
        let y_lo = cy * self.cluster_dim;
        let y_hi = ((cy + 1) * self.cluster_dim).min(self.ny) - 1;
        let ix = (x_lo + x_hi) / 2;
        let iy = (y_lo + y_hi) / 2;
        CellId(iy * self.nx + ix)
    }

    /// All other clusters in spiral order around `home`: nearest ring first, each
    /// ring clockwise starting from due east.
    pub fn spiral_order(&self, home: ClusterId) -> Vec<ClusterId> {
        let (ncx, ncy) = self.cluster_dims();
        let (hx, hy) = ((home.0 % ncx) as i64, (home.0 / ncx) as i64);
        let mut others: Vec<(u32, f64, ClusterId)> = Vec::new();
        for cy in 0..ncy as i64 {
            for cx in 0..ncx as i64 {
                if (cx, cy) == (hx, hy) {
                    continue;
                }
                let ring = (cx - hx).abs().max((cy - hy).abs()) as u32;
                // Clockwise angle from east: atan2 with y negated.
                let ang = (-(cy - hy) as f64).atan2((cx - hx) as f64);
                let ang = if ang < 0.0 {
                    ang + std::f64::consts::TAU
                } else {
                    ang
                };
                others.push((ring, ang, ClusterId((cy * ncx as i64 + cx) as u32)));
            }
        }
        others.sort_by(|a, b| {
            a.0.cmp(&b.0)
                .then_with(|| a.1.total_cmp(&b.1))
                .then_with(|| a.2.cmp(&b.2))
        });
        others.into_iter().map(|(_, _, c)| c).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn grid_2km() -> CellGrid {
        CellGrid::new(BBox::new(0.0, 0.0, 2000.0, 2000.0), 500.0, 9)
    }

    #[test]
    fn dims_and_mapping() {
        let g = grid_2km();
        assert_eq!(g.dims(), (4, 4));
        assert_eq!(g.cell_count(), 16);
        assert_eq!(g.cluster_count(), 1);
        assert_eq!(g.cell_of(Point::new(0.0, 0.0)), CellId(0));
        assert_eq!(g.cell_of(Point::new(1999.0, 1999.0)), CellId(15));
        assert_eq!(g.cell_of(Point::new(600.0, 0.0)), CellId(1));
    }

    #[test]
    fn centers_and_bboxes_agree() {
        let g = grid_2km();
        for i in 0..16u32 {
            let c = CellId(i);
            assert!(g.cell_bbox(c).contains(g.cell_center(c)));
            assert_eq!(g.cell_of(g.cell_center(c)), c);
        }
        assert_eq!(g.cell_center(CellId(0)), Point::new(250.0, 250.0));
    }

    #[test]
    fn lsc_is_central_for_truncated_cluster() {
        let g = grid_2km();
        // Single 4×4 truncated cluster: middle is cell (1,1).
        assert_eq!(g.lsc_cell(ClusterId(0)), CellId(5));
        assert_eq!(g.cell_center(CellId(5)), Point::new(750.0, 750.0));
    }

    #[test]
    fn multi_cluster_layout() {
        // 4 km map with 3×3 clusters of 500 m cells: 8×8 cells → 3×3 clusters.
        let g = CellGrid::new(BBox::new(0.0, 0.0, 4000.0, 4000.0), 500.0, 3);
        assert_eq!(g.dims(), (8, 8));
        assert_eq!(g.cluster_dims(), (3, 3));
        assert_eq!(g.cluster_of(CellId(0)), ClusterId(0));
        assert_eq!(
            g.cluster_of(g.cell_of(Point::new(1600.0, 200.0))),
            ClusterId(1)
        );
        // LSC of full cluster 0 (cells 0..2 × 0..2) is cell (1,1).
        assert_eq!(g.lsc_cell(ClusterId(0)), CellId(9));
    }

    #[test]
    fn spiral_visits_every_other_cluster_once() {
        let g = CellGrid::new(BBox::new(0.0, 0.0, 4000.0, 4000.0), 500.0, 3);
        // Home = center cluster (1,1) = ClusterId(4) of the 3×3 cluster grid.
        let order = g.spiral_order(ClusterId(4));
        assert_eq!(order.len(), 8);
        let mut sorted = order.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), 8);
        assert!(!order.contains(&ClusterId(4)));
        // First visited is due east (ring 1, angle 0).
        assert_eq!(order[0], ClusterId(5));
    }

    #[test]
    fn spiral_ring_order() {
        // A 5×5 cluster grid; home at the center: ring 1's 8 clusters must all
        // precede ring 2's 16.
        let g = CellGrid::new(BBox::new(0.0, 0.0, 7500.0, 7500.0), 500.0, 3);
        assert_eq!(g.cluster_dims(), (5, 5));
        let home = ClusterId(12); // (2,2)
        let order = g.spiral_order(home);
        assert_eq!(order.len(), 24);
        let ring = |c: ClusterId| {
            let (x, y) = ((c.0 % 5) as i64, (c.0 / 5) as i64);
            (x - 2).abs().max((y - 2).abs())
        };
        for w in order.windows(2) {
            assert!(ring(w[0]) <= ring(w[1]), "ring order violated");
        }
    }

    #[test]
    fn single_cluster_spiral_is_empty() {
        assert!(grid_2km().spiral_order(ClusterId(0)).is_empty());
    }
}
