//! RLSMP parameters.

use serde::{Deserialize, Serialize};
use vanet_des::SimDuration;

/// Tunables of the RLSMP baseline.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RlsmpConfig {
    /// Cell side length in meters (500 m, matching HLSRG's L1 size for a fair
    /// update-rate comparison).
    pub cell_size: f64,
    /// Cells per cluster side (the original protocol's 9).
    pub cluster_dim: u32,
    /// Radius around the cell center within which a vehicle acts as the cell
    /// leader (stores the cell's table).
    pub leader_radius: f64,
    /// Cell table entry lifetime.
    pub cell_ttl: SimDuration,
    /// LSC (cluster) table entry lifetime.
    pub lsc_ttl: SimDuration,
    /// Period of the cell-leader → LSC aggregation push.
    pub agg_period: SimDuration,
    /// How long an LSC waits and aggregates before giving up on a local miss and
    /// spiraling outward (the paper's "specific waiting time").
    pub query_wait: SimDuration,
    /// Deadline for a query to count as successful.
    pub query_deadline: SimDuration,
    /// Update broadcast size in bytes.
    pub update_size: usize,
    /// Fixed part of an aggregation packet.
    pub table_base: usize,
    /// Per-entry increment of an aggregation packet.
    pub table_entry: usize,
    /// Request packet size.
    pub request_size: usize,
    /// Notification packet size.
    pub notify_size: usize,
    /// ACK size.
    pub ack_size: usize,
    /// One application data packet (post-discovery GPSR traffic).
    pub data_size: usize,
    /// Application data packets per successful discovery (0 = off).
    pub data_packets_per_session: u32,
}

impl Default for RlsmpConfig {
    fn default() -> Self {
        RlsmpConfig {
            cell_size: 250.0,
            cluster_dim: 4,
            leader_radius: 175.0,
            cell_ttl: SimDuration::from_secs(264),
            lsc_ttl: SimDuration::from_secs(528),
            agg_period: SimDuration::from_secs(10),
            query_wait: SimDuration::from_secs(3),
            query_deadline: SimDuration::from_secs(30),
            update_size: 64,
            table_base: 32,
            table_entry: 16,
            request_size: 128,
            notify_size: 96,
            ack_size: 32,
            data_size: 512,
            data_packets_per_session: 8,
        }
    }
}

impl RlsmpConfig {
    /// Size of an aggregation packet with `entries` rows.
    pub fn table_size(&self, entries: usize) -> usize {
        self.table_base + self.table_entry * entries
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults() {
        let c = RlsmpConfig::default();
        assert_eq!(c.cell_size, 250.0);
        assert_eq!(c.cluster_dim, 4);
        assert!(
            c.leader_radius * 2.0 >= c.cell_size,
            "leaders must cover the cell"
        );
        assert_eq!(c.table_size(4), 32 + 64);
    }
}
