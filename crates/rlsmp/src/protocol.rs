//! The RLSMP baseline state machine.
//!
//! Faithful to the behaviour this paper (and the GLOBECOM'08 original) describes:
//!
//! * vehicles send a location update **every time they cross a cell boundary** —
//!   no suppression, which is what makes its update overhead ~2× HLSRG's;
//! * updates are stored by the **cell leader** (vehicles near the cell's geometric
//!   center — a lon/lat point that may fall mid-block);
//! * leaders periodically aggregate their tables to the cluster's **LSC**;
//! * queries go to the LSC; on a miss the LSC **waits and aggregates** for a fixed
//!   time, then forwards the query to the other clusters' LSCs in **spiral order**;
//! * no RSUs, no wired shortcuts, no timeout fallback.

use crate::cells::{CellGrid, CellId, ClusterId};
use crate::config::RlsmpConfig;
use fxhash::FxHashMap;
use rand::rngs::SmallRng;
use serde::{Deserialize, Serialize};
use vanet_des::{SimDuration, SimTime};
use vanet_geo::Point;
use vanet_mobility::{MoveSample, VehicleId};
use vanet_net::{
    deliveries, Effect, GpsrTarget, LocationService, NetworkCore, NodeId, NodeKind, PacketClass,
    QueryId, QueryLog, TraceEvent,
};

/// Trace-event code for RLSMP's only update trigger (see
/// `vanet_trace::REASON_NAMES`): a cell-boundary crossing.
const REASON_CELL_CROSSING: u8 = 4;

/// A full-detail cell-leader table entry.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CellEntry {
    /// Reported position.
    pub pos: Point,
    /// Update time.
    pub time: SimTime,
}

/// A reduced LSC entry: when, and which cell reported.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct LscEntry {
    /// Update time.
    pub time: SimTime,
    /// Reporting cell.
    pub cell: CellId,
}

/// A vehicle's cell-crossing update.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RlsmpUpdate {
    /// The updating vehicle.
    pub vehicle: VehicleId,
    /// Its position.
    pub pos: Point,
    /// Send time.
    pub time: SimTime,
    /// The cell being entered.
    pub cell: CellId,
}

/// Where a request currently is in its resolution.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum RlsmpStage {
    /// At (or en route to) a cluster's LSC.
    Lsc {
        /// The cluster whose LSC processes the request.
        cluster: ClusterId,
        /// How many spiral hops have been taken (0 = home LSC).
        spiral_idx: u32,
    },
    /// En route to the destination's cell leader.
    Cell {
        /// The cell.
        cell: CellId,
    },
}

/// A location request.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RlsmpRequest {
    /// Query served.
    pub query: QueryId,
    /// Asking vehicle.
    pub src: VehicleId,
    /// Sought vehicle.
    pub dst: VehicleId,
    /// Source position at launch.
    pub src_pos: Point,
    /// The source's own cluster (the spiral's center).
    pub home: ClusterId,
    /// Current stage.
    pub stage: RlsmpStage,
    /// Whether the home LSC already did its wait-and-aggregate pause.
    pub waited: bool,
}

/// Everything RLSMP puts on the wire.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum RlsmpPayload {
    /// Cell-crossing update broadcast.
    Update(RlsmpUpdate),
    /// Cell-leader → LSC aggregation.
    AggToLsc {
        /// Destination cluster.
        cluster: ClusterId,
        /// `(vehicle, time, reporting cell)` rows.
        rows: Vec<(VehicleId, SimTime, CellId)>,
    },
    /// A location request.
    Request(RlsmpRequest),
    /// The notification flooded in the destination's cell.
    Notify {
        /// Query served.
        query: QueryId,
        /// Asking vehicle.
        src: VehicleId,
        /// Sought vehicle.
        dst: VehicleId,
        /// Source position for the ACK.
        src_pos: Point,
    },
    /// The destination's acknowledgement.
    Ack {
        /// Query answered.
        query: QueryId,
    },
    /// Post-discovery application data riding GPSR to the located vehicle.
    Data {
        /// The discovery session this packet belongs to.
        session: QueryId,
        /// Packet sequence number within the session.
        seq: u32,
        /// The destination vehicle.
        dst: VehicleId,
    },
}

/// RLSMP timers.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum RlsmpTimer {
    /// Periodic cell-leader aggregation push.
    Aggregate {
        /// The cell to aggregate.
        cell: CellId,
    },
    /// The LSC's wait-and-aggregate pause expired: re-check, then spiral.
    Recheck {
        /// Node that re-processes the request.
        server: NodeId,
        /// The pending request (with `waited = true`).
        request: RlsmpRequest,
    },
}

type Fx = Vec<Effect<RlsmpPayload, RlsmpTimer>>;

/// The RLSMP location service.
#[derive(Debug)]
pub struct RlsmpProtocol {
    cfg: RlsmpConfig,
    grid: CellGrid,
    cell_tables: Vec<FxHashMap<VehicleId, CellEntry>>,
    lsc_tables: Vec<FxHashMap<VehicleId, LscEntry>>,
    log: QueryLog,
    #[allow(dead_code)] // reserved for contention modeling parity with HLSRG
    rng: SmallRng,
    update_count: u64,
    data_delivered: u64,
}

impl RlsmpProtocol {
    /// Builds the protocol over the map `area` covered by the mobility model.
    pub fn new(area: vanet_geo::BBox, cfg: RlsmpConfig, rng: SmallRng) -> Self {
        let grid = CellGrid::new(area, cfg.cell_size, cfg.cluster_dim);
        let cell_tables = vec![FxHashMap::default(); grid.cell_count()];
        let lsc_tables = vec![FxHashMap::default(); grid.cluster_count()];
        RlsmpProtocol {
            cfg,
            grid,
            cell_tables,
            lsc_tables,
            log: QueryLog::new(),
            rng,
            update_count: 0,
            data_delivered: 0,
        }
    }

    /// The cell grid in use.
    pub fn grid(&self) -> &CellGrid {
        &self.grid
    }

    /// Pre-sizes the cell and LSC tables for a fleet of `n` vehicles, each
    /// table reserving a per-region share (with slack for uneven density).
    pub fn reserve_vehicles(&mut self, n: usize) {
        let share = |tables: usize| 2 * n.div_ceil(tables.max(1)) + 8;
        let per_cell = share(self.cell_tables.len());
        for t in &mut self.cell_tables {
            t.reserve(per_cell);
        }
        let per_cluster = share(self.lsc_tables.len());
        for t in &mut self.lsc_tables {
            t.reserve(per_cluster);
        }
    }

    /// Total cell-crossing updates sent.
    pub fn update_count(&self) -> u64 {
        self.update_count
    }

    /// Live entries in a cell table (diagnostics).
    pub fn cell_table_len(&self, c: CellId) -> usize {
        self.cell_tables[c.0 as usize].len()
    }

    /// Live entries in a cluster's LSC table (diagnostics).
    pub fn lsc_table_len(&self, cl: ClusterId) -> usize {
        self.lsc_tables[cl.0 as usize].len()
    }

    /// A vehicle that can act as `cell`'s leader right now: preferably one near
    /// the cell center, else any vehicle inside the cell.
    fn find_leader(&self, core: &NetworkCore, cell: CellId) -> Option<NodeId> {
        let center = self.grid.cell_center(cell);
        let near = core
            .registry
            .nodes_within(center, self.cfg.leader_radius, None)
            .into_iter()
            .find(|&n| matches!(core.registry.kind(n), NodeKind::Vehicle(_)));
        near.or_else(|| {
            let r = self.grid.cell_size() * std::f64::consts::FRAC_1_SQRT_2 + 1.0;
            core.registry
                .nodes_within(center, r, None)
                .into_iter()
                .find(|&n| {
                    matches!(core.registry.kind(n), NodeKind::Vehicle(_))
                        && self.grid.cell_of(core.registry.pos(n)) == cell
                })
        })
    }

    fn prune_cell(&mut self, cell: CellId, now: SimTime) {
        let ttl = self.cfg.cell_ttl;
        self.cell_tables[cell.0 as usize].retain(|_, e| now.saturating_since(e.time) <= ttl);
    }

    fn prune_lsc(&mut self, cl: ClusterId, now: SimTime) {
        let ttl = self.cfg.lsc_ttl;
        self.lsc_tables[cl.0 as usize].retain(|_, e| now.saturating_since(e.time) <= ttl);
    }

    fn merge_lsc(&mut self, cl: ClusterId, rows: &[(VehicleId, SimTime, CellId)]) {
        let table = &mut self.lsc_tables[cl.0 as usize];
        for &(v, time, cell) in rows {
            match table.get(&v) {
                Some(cur) if cur.time > time => {}
                _ => {
                    table.insert(v, LscEntry { time, cell });
                }
            }
        }
    }

    /// Broadcasts one cell-crossing (or registration) update.
    fn send_update(
        &mut self,
        core: &mut NetworkCore,
        v: VehicleId,
        pos: Point,
        now: SimTime,
    ) -> Fx {
        let node = core.registry.node_of_vehicle(v);
        let cell = self.grid.cell_of(pos);
        deliveries(core.broadcast_onehop(
            node,
            PacketClass::Update,
            self.cfg.update_size,
            RlsmpPayload::Update(RlsmpUpdate {
                vehicle: v,
                pos,
                time: now,
                cell,
            }),
        ))
    }

    fn handle_aggregate(&mut self, core: &mut NetworkCore, cell: CellId, now: SimTime) -> Fx {
        let mut fx: Fx = vec![Effect::Timer {
            delay: self.cfg.agg_period,
            key: RlsmpTimer::Aggregate { cell },
        }];
        self.prune_cell(cell, now);
        if self.cell_tables[cell.0 as usize].is_empty() {
            return fx;
        }
        let Some(leader) = self.find_leader(core, cell) else {
            return fx;
        };
        let mut rows: Vec<(VehicleId, SimTime, CellId)> = self.cell_tables[cell.0 as usize]
            .iter()
            .map(|(&v, e)| (v, e.time, cell))
            .collect();
        rows.sort_by_key(|&(v, _, _)| v);
        let cluster = self.grid.cluster_of(cell);
        let lsc = self.grid.lsc_cell(cluster);
        if lsc == cell {
            // The leader *is* at the LSC: merge locally, no transmission needed.
            self.merge_lsc(cluster, &rows);
            return fx;
        }
        let size = self.cfg.table_size(rows.len());
        let emissions = core.send_gpsr(
            leader,
            GpsrTarget::AnyAt {
                radius: self.cfg.leader_radius,
            },
            self.grid.cell_center(lsc),
            PacketClass::Collection,
            size,
            RlsmpPayload::AggToLsc { cluster, rows },
        );
        fx.extend(deliveries(emissions));
        fx
    }

    fn forward_request(
        &mut self,
        core: &mut NetworkCore,
        from: NodeId,
        request: RlsmpRequest,
    ) -> Fx {
        let center = match request.stage {
            RlsmpStage::Lsc { cluster, .. } => self.grid.cell_center(self.grid.lsc_cell(cluster)),
            RlsmpStage::Cell { cell } => self.grid.cell_center(cell),
        };
        deliveries(core.send_gpsr(
            from,
            GpsrTarget::AnyAt {
                radius: self.cfg.leader_radius,
            },
            center,
            PacketClass::Query,
            self.cfg.request_size,
            RlsmpPayload::Request(request),
        ))
    }

    /// The LSC's decision on a miss: wait once, then spiral outward.
    fn miss_at_lsc(
        &mut self,
        core: &mut NetworkCore,
        at: NodeId,
        mut req: RlsmpRequest,
        spiral_idx: u32,
    ) -> Fx {
        if !req.waited && spiral_idx == 0 {
            req.waited = true;
            return vec![Effect::Timer {
                delay: self.cfg.query_wait,
                key: RlsmpTimer::Recheck {
                    server: at,
                    request: req,
                },
            }];
        }
        // Spiral: physically forward the request to the next cluster's LSC.
        let order = self.grid.spiral_order(req.home);
        match order.get(spiral_idx as usize) {
            Some(&next) => {
                core.trace(|t| TraceEvent::RouteDecision {
                    t,
                    query: req.query.0,
                    from_level: 2,
                    to_level: 2,
                });
                req.stage = RlsmpStage::Lsc {
                    cluster: next,
                    spiral_idx: spiral_idx + 1,
                };
                self.forward_request(core, at, req)
            }
            None => Vec::new(), // spiral exhausted: the query fails
        }
    }

    fn handle_request(
        &mut self,
        core: &mut NetworkCore,
        at: NodeId,
        req: RlsmpRequest,
        now: SimTime,
    ) -> Fx {
        if self.log.is_complete(req.query) {
            return Vec::new();
        }
        match req.stage {
            RlsmpStage::Lsc {
                cluster,
                spiral_idx,
            } => {
                self.prune_lsc(cluster, now);
                match self.lsc_tables[cluster.0 as usize].get(&req.dst).copied() {
                    Some(LscEntry { cell, .. }) => {
                        core.trace(|t| TraceEvent::LevelVisit {
                            t,
                            query: req.query.0,
                            level: 2,
                            hit: true,
                        });
                        core.trace(|t| TraceEvent::RouteDecision {
                            t,
                            query: req.query.0,
                            from_level: 2,
                            to_level: 1,
                        });
                        let mut fwd = req;
                        fwd.stage = RlsmpStage::Cell { cell };
                        self.forward_request(core, at, fwd)
                    }
                    None => {
                        core.trace(|t| TraceEvent::LevelVisit {
                            t,
                            query: req.query.0,
                            level: 2,
                            hit: false,
                        });
                        self.miss_at_lsc(core, at, req, spiral_idx)
                    }
                }
            }
            RlsmpStage::Cell { cell } => {
                self.prune_cell(cell, now);
                match self.cell_tables[cell.0 as usize].get(&req.dst).copied() {
                    Some(_) => {
                        core.trace(|t| TraceEvent::LevelVisit {
                            t,
                            query: req.query.0,
                            level: 1,
                            hit: true,
                        });
                        core.trace(|t| TraceEvent::NotifyBroadcast {
                            t,
                            query: req.query.0,
                            directional: false,
                        });
                        // One cell of margin: the destination keeps moving while
                        // the aggregation and the request travel.
                        let bbox = self.grid.cell_bbox(cell).inflate(self.grid.cell_size());
                        deliveries(core.geo_broadcast_region(
                            at,
                            &bbox,
                            PacketClass::Query,
                            self.cfg.notify_size,
                            RlsmpPayload::Notify {
                                query: req.query,
                                src: req.src,
                                dst: req.dst,
                                src_pos: req.src_pos,
                            },
                        ))
                    }
                    None => {
                        // Stale LSC pointer: the query fails here.
                        core.trace(|t| TraceEvent::LevelVisit {
                            t,
                            query: req.query.0,
                            level: 1,
                            hit: false,
                        });
                        Vec::new()
                    }
                }
            }
        }
    }
}

impl LocationService for RlsmpProtocol {
    type Payload = RlsmpPayload;
    type Timer = RlsmpTimer;

    fn on_start(&mut self, _core: &mut NetworkCore) -> Fx {
        (0..self.grid.cell_count() as u32)
            .map(|i| Effect::Timer {
                delay: self.cfg.agg_period + SimDuration::from_millis(89 * (i as u64 + 1)),
                key: RlsmpTimer::Aggregate { cell: CellId(i) },
            })
            .collect()
    }

    fn on_join(&mut self, core: &mut NetworkCore, samples: &[MoveSample], now: SimTime) -> Fx {
        // Initial registration: every vehicle announces itself unconditionally.
        let mut fx = Vec::new();
        for s in samples {
            self.update_count += 1;
            fx.extend(self.send_update(core, s.id, s.new_pos, now));
        }
        fx
    }

    fn on_move(&mut self, core: &mut NetworkCore, samples: &[MoveSample], now: SimTime) -> Fx {
        let mut fx = Vec::new();
        for s in samples {
            let old_cell = self.grid.cell_of(s.old_pos);
            let new_cell = self.grid.cell_of(s.new_pos);
            if old_cell == new_cell {
                continue;
            }
            self.update_count += 1;
            core.trace(|t| TraceEvent::UpdateTriggered {
                t,
                vehicle: s.id.0,
                artery: false,
                reason: REASON_CELL_CROSSING,
            });
            fx.extend(self.send_update(core, s.id, s.new_pos, now));
        }
        fx
    }

    fn on_packet(
        &mut self,
        core: &mut NetworkCore,
        at: NodeId,
        _class: PacketClass,
        payload: RlsmpPayload,
        now: SimTime,
    ) -> Fx {
        match payload {
            RlsmpPayload::Update(u) => {
                // Any vehicle in a cell is a prospective leader; receivers in the
                // update's cell record, receivers elsewhere delete (old cell rule).
                if let NodeKind::Vehicle(_) = core.registry.kind(at) {
                    let c = self.grid.cell_of(core.registry.pos(at));
                    let table = &mut self.cell_tables[c.0 as usize];
                    if c == u.cell {
                        match table.get(&u.vehicle) {
                            Some(cur) if cur.time > u.time => {}
                            _ => {
                                table.insert(
                                    u.vehicle,
                                    CellEntry {
                                        pos: u.pos,
                                        time: u.time,
                                    },
                                );
                            }
                        }
                    } else {
                        table.remove(&u.vehicle);
                    }
                }
                Vec::new()
            }
            RlsmpPayload::AggToLsc { cluster, rows } => {
                self.merge_lsc(cluster, &rows);
                Vec::new()
            }
            RlsmpPayload::Request(req) => self.handle_request(core, at, req, now),
            RlsmpPayload::Notify {
                query,
                src,
                dst,
                src_pos,
            } => {
                if core.registry.kind(at) == NodeKind::Vehicle(dst) {
                    let src_node = core.registry.node_of_vehicle(src);
                    deliveries(core.send_gpsr(
                        at,
                        GpsrTarget::Node(src_node),
                        src_pos,
                        PacketClass::Query,
                        self.cfg.ack_size,
                        RlsmpPayload::Ack { query },
                    ))
                } else {
                    Vec::new()
                }
            }
            RlsmpPayload::Ack { query } => {
                let src = self.log.get(query).src;
                if core.registry.kind(at) != NodeKind::Vehicle(src) {
                    return Vec::new();
                }
                let fresh = !self.log.is_complete(query);
                self.log.complete(query, now);
                if fresh {
                    core.trace(|t| TraceEvent::QueryAnswered { t, query: query.0 });
                }
                if !fresh || self.cfg.data_packets_per_session == 0 {
                    return Vec::new();
                }
                let dst = self.log.get(query).dst;
                let dst_node = core.registry.node_of_vehicle(dst);
                let dst_pos = core.registry.pos(dst_node);
                let mut fx = Vec::new();
                for seq in 0..self.cfg.data_packets_per_session {
                    fx.extend(deliveries(core.send_gpsr(
                        at,
                        GpsrTarget::Node(dst_node),
                        dst_pos,
                        PacketClass::Data,
                        self.cfg.data_size,
                        RlsmpPayload::Data {
                            session: query,
                            seq,
                            dst,
                        },
                    )));
                }
                fx
            }
            RlsmpPayload::Data { dst, .. } => {
                if core.registry.kind(at) == NodeKind::Vehicle(dst) {
                    self.data_delivered += 1;
                }
                Vec::new()
            }
        }
    }

    fn on_timer(&mut self, core: &mut NetworkCore, key: RlsmpTimer, now: SimTime) -> Fx {
        match key {
            RlsmpTimer::Aggregate { cell } => self.handle_aggregate(core, cell, now),
            RlsmpTimer::Recheck { server, request } => {
                self.handle_request(core, server, request, now)
            }
        }
    }

    fn launch_query(
        &mut self,
        core: &mut NetworkCore,
        src: VehicleId,
        dst: VehicleId,
        now: SimTime,
    ) -> Fx {
        let query = self.log.launch(src, dst, now);
        let src_node = core.registry.node_of_vehicle(src);
        let pos = core.registry.pos(src_node);
        let home = self.grid.cluster_of(self.grid.cell_of(pos));
        core.trace(|t| TraceEvent::QueryLaunched {
            t,
            query: query.0,
            src: src.0,
            dst: dst.0,
            level: 2,
        });
        let request = RlsmpRequest {
            query,
            src,
            dst,
            src_pos: pos,
            home,
            stage: RlsmpStage::Lsc {
                cluster: home,
                spiral_idx: 0,
            },
            waited: false,
        };
        self.forward_request(core, src_node, request)
    }

    fn query_log(&self) -> &QueryLog {
        &self.log
    }

    fn diagnostics(&self) -> Vec<(&'static str, f64)> {
        let cell_total: usize = self.cell_tables.iter().map(|t| t.len()).sum();
        let lsc_total: usize = self.lsc_tables.iter().map(|t| t.len()).sum();
        vec![
            ("cell_entries", cell_total as f64),
            ("lsc_entries", lsc_total as f64),
            ("updates_sent", self.update_count as f64),
            ("data_delivered", self.data_delivered as f64),
        ]
    }

    fn table_sizes(&self) -> [u64; 3] {
        // RLSMP's flat grid has two tiers: cell-leader tables and LSC tables.
        // They map to the two lowest telemetry slots; there is no third level.
        [
            self.cell_tables.iter().map(|t| t.len() as u64).sum(),
            self.lsc_tables.iter().map(|t| t.len() as u64).sum(),
            0,
        ]
    }

    /// Location-table soundness (`check` feature): every cell-leader entry maps
    /// back to the cell whose table holds it and stays within the staleness
    /// bound of the vehicle's ground-truth position; LSC entries carry sane
    /// timestamps and in-range cell ids.
    #[cfg(feature = "check")]
    fn check_invariants(
        &self,
        core: &NetworkCore,
        now: SimTime,
        max_speed: f64,
        pos_slack: f64,
    ) -> Result<(), String> {
        for (ci, table) in self.cell_tables.iter().enumerate() {
            for (&v, e) in table {
                if e.time > now {
                    return Err(format!("cell[{ci}] entry for {v:?} is from the future"));
                }
                if self.grid.cell_of(e.pos) != CellId(ci as u32) {
                    return Err(format!(
                        "cell[{ci}] entry for {v:?} at ({:.1}, {:.1}) maps to {:?}",
                        e.pos.x,
                        e.pos.y,
                        self.grid.cell_of(e.pos)
                    ));
                }
                let truth = core.registry.pos(core.registry.node_of_vehicle(v));
                let age = now.saturating_since(e.time).as_secs_f64();
                let bound = max_speed * age + pos_slack;
                let drift = e.pos.distance(truth);
                if drift > bound {
                    return Err(format!(
                        "cell[{ci}] entry for {v:?} drifted {drift:.1} m from ground truth \
                         (bound {bound:.1} m at age {age:.1} s)"
                    ));
                }
            }
        }
        for (li, table) in self.lsc_tables.iter().enumerate() {
            for (&v, e) in table {
                if e.time > now {
                    return Err(format!("lsc[{li}] entry for {v:?} is from the future"));
                }
                if e.cell.0 as usize >= self.grid.cell_count() {
                    return Err(format!(
                        "lsc[{li}] entry for {v:?} points at unknown cell {:?}",
                        e.cell
                    ));
                }
            }
        }
        Ok(())
    }

    /// Oracle self-test hook: displace one stored cell position far off the
    /// map, picking the smallest vehicle id in the first non-empty table so the
    /// corruption is deterministic despite HashMap iteration order.
    #[cfg(feature = "check")]
    fn corrupt_location_tables(&mut self) {
        for table in &mut self.cell_tables {
            let Some(&v) = table.keys().min() else {
                continue;
            };
            let e = table.get_mut(&v).expect("entry for the id just found");
            e.pos = Point::new(e.pos.x + 50_000.0, e.pos.y + 50_000.0);
            return;
        }
    }
}
