//! # rlsmp — the baseline location service
//!
//! RLSMP ("Region-based Location Service Management Protocol", Saleet, Langar,
//! Basir & Boutaba, GLOBECOM 2008), re-implemented from its description so HLSRG
//! has the same comparison target the paper evaluated against:
//!
//! * longitude/latitude square cells (no road adaptation),
//! * an update broadcast on **every** cell crossing,
//! * cell leaders (vehicles near the cell's geometric center) as location stores,
//! * periodic aggregation to the cluster's central Location Service Cell (LSC),
//! * queries served by the LSC with a wait-and-aggregate pause and a spiral-order
//!   search across neighboring clusters on a miss,
//! * no RSUs and no wired infrastructure.
//!
//! Implements [`vanet_net::LocationService`], so the identical harness drives both
//! protocols.

#![warn(missing_docs)]

pub mod cells;
pub mod config;
pub mod protocol;

pub use cells::{CellGrid, CellId, ClusterId};
pub use config::RlsmpConfig;
pub use protocol::{
    RlsmpPayload, RlsmpProtocol, RlsmpRequest, RlsmpStage, RlsmpTimer, RlsmpUpdate,
};

#[cfg(test)]
mod protocol_tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;
    use vanet_des::{EventQueue, SimDuration, SimTime};
    use vanet_geo::{BBox, Cardinal, Point};
    use vanet_mobility::{MoveSample, VehicleId};
    use vanet_net::{
        Effect, LocationService, NetworkCore, NodeRegistry, PacketClass, RadioConfig, Transport,
        WiredNetwork,
    };
    use vanet_roadnet::{IntersectionId, RoadClass, RoadId};

    enum Ev {
        Deliver(vanet_net::NodeId, Transport<RlsmpPayload>),
        Timer(RlsmpTimer),
    }

    struct Rig {
        proto: RlsmpProtocol,
        core: NetworkCore,
        queue: EventQueue<Ev>,
    }

    impl Rig {
        fn new(vehicle_positions: &[Point]) -> Rig {
            let mut reg = NodeRegistry::new(500.0);
            for (i, &p) in vehicle_positions.iter().enumerate() {
                reg.add_vehicle(VehicleId(i as u32), p);
            }
            let radio = RadioConfig {
                reliable_fraction: 1.0,
                edge_delivery: 1.0,
                ..Default::default()
            };
            let core = NetworkCore::new(
                reg,
                radio,
                WiredNetwork::empty(),
                SmallRng::seed_from_u64(1),
            );
            let proto = RlsmpProtocol::new(
                BBox::new(0.0, 0.0, 2000.0, 2000.0),
                RlsmpConfig::default(),
                SmallRng::seed_from_u64(2),
            );
            Rig {
                proto,
                core,
                queue: EventQueue::new(),
            }
        }

        fn apply(&mut self, fx: Vec<Effect<RlsmpPayload, RlsmpTimer>>) {
            for f in fx {
                match f {
                    Effect::Deliver(e) => self
                        .queue
                        .schedule_after(e.delay, Ev::Deliver(e.to, e.transport)),
                    Effect::Timer { delay, key } => {
                        self.queue.schedule_after(delay, Ev::Timer(key))
                    }
                }
            }
        }

        fn drain_until(&mut self, horizon: SimTime) {
            while let Some((now, ev)) = self.queue.pop_if_at_or_before(horizon) {
                match ev {
                    Ev::Deliver(to, tr) => {
                        let (arrived, more) = self.core.handle_deliver(to, tr);
                        for e in more {
                            self.queue
                                .schedule_after(e.delay, Ev::Deliver(e.to, e.transport));
                        }
                        if let Some((class, payload)) = arrived {
                            let fx = self
                                .proto
                                .on_packet(&mut self.core, to, class, payload, now);
                            self.apply(fx);
                        }
                    }
                    Ev::Timer(key) => {
                        let fx = self.proto.on_timer(&mut self.core, key, now);
                        self.apply(fx);
                    }
                }
            }
        }
    }

    /// With 250 m cells on the 2 km map (8×8 cells, 2×2 clusters of 4×4): cell 0's
    /// center is (125,125); cluster 0's LSC is cell (1,1) centered at (375,375).
    const CELL0_CENTER: Point = Point { x: 125.0, y: 125.0 };
    const LSC_CENTER: Point = Point { x: 375.0, y: 375.0 };

    fn crossing_sample(v: u32, old_pos: Point, new_pos: Point) -> MoveSample {
        MoveSample {
            id: VehicleId(v),
            old_pos,
            new_pos,
            road: RoadId(0),
            from: IntersectionId(0),
            road_class: RoadClass::Normal,
            heading: Cardinal::East.into(),
            speed: 10.0,
            turn: None,
        }
    }

    #[test]
    fn every_cell_crossing_updates() {
        let pos = Point::new(245.0, 125.0);
        let mut rig = Rig::new(&[CELL0_CENTER, pos]);
        // Crossing 0 → 1.
        let s = crossing_sample(1, pos, Point::new(255.0, 125.0));
        let fx = rig.proto.on_move(&mut rig.core, &[s], SimTime::ZERO);
        rig.apply(fx);
        // Moving inside cell 1: no update.
        let s2 = crossing_sample(1, Point::new(255.0, 125.0), Point::new(300.0, 125.0));
        let fx = rig.proto.on_move(&mut rig.core, &[s2], SimTime::ZERO);
        assert!(fx.is_empty());
        assert_eq!(rig.proto.update_count(), 1);
        assert_eq!(rig.core.counters.origination_count(PacketClass::Update), 1);
    }

    #[test]
    fn leader_records_update_and_old_cell_deletes() {
        // Leaders at cell 0's and cell 1's centers; the vehicle crosses 1 → 0 from
        // a spot in range of both.
        let cell1_center = Point::new(375.0, 125.0);
        let mut rig = Rig::new(&[CELL0_CENTER, cell1_center, Point::new(255.0, 125.0)]);
        // First enter cell 1 so its leader has an entry.
        let s = crossing_sample(2, Point::new(245.0, 125.0), Point::new(255.0, 125.0));
        let fx = rig.proto.on_move(&mut rig.core, &[s], SimTime::ZERO);
        rig.apply(fx);
        rig.drain_until(SimTime::from_secs(1));
        assert_eq!(rig.proto.cell_table_len(CellId(1)), 1);

        // Now cross back into cell 0.
        rig.core.registry.set_pos(
            rig.core.registry.node_of_vehicle(VehicleId(2)),
            Point::new(245.0, 125.0),
        );
        let s = crossing_sample(2, Point::new(255.0, 125.0), Point::new(245.0, 125.0));
        let fx = rig.proto.on_move(
            &mut rig.core,
            &[s],
            rig.queue.now() + SimDuration::from_secs(1),
        );
        rig.apply(fx);
        rig.drain_until(SimTime::from_secs(3));
        assert_eq!(rig.proto.cell_table_len(CellId(0)), 1);
        assert_eq!(
            rig.proto.cell_table_len(CellId(1)),
            0,
            "old cell kept the entry"
        );
    }

    #[test]
    fn aggregation_reaches_lsc() {
        // Leader in cell 0, plus a relay toward the LSC and a leader there.
        let mut rig = Rig::new(&[
            CELL0_CENTER,
            LSC_CENTER,
            Point::new(250.0, 250.0), // relay
            Point::new(245.0, 125.0), // the updating vehicle
        ]);
        let s = crossing_sample(3, Point::new(255.0, 125.0), Point::new(245.0, 125.0));
        let fx = rig.proto.on_move(&mut rig.core, &[s], SimTime::ZERO);
        rig.apply(fx);
        let fx = rig.proto.on_start(&mut rig.core);
        rig.apply(fx);
        rig.drain_until(SimTime::from_secs(25));
        assert_eq!(
            rig.proto.lsc_table_len(ClusterId(0)),
            1,
            "LSC never learned"
        );
        assert!(rig.core.counters.origination_count(PacketClass::Collection) >= 1);
    }

    #[test]
    fn query_resolves_after_aggregation() {
        let mut rig = Rig::new(&[
            CELL0_CENTER,             // 0: leader of Dv's cell
            LSC_CENTER,               // 1: LSC leader
            Point::new(250.0, 250.0), // 2: relay
            Point::new(245.0, 125.0), // 3: Dv
            Point::new(400.0, 300.0), // 4: Sv (close to the LSC)
        ]);
        let s = crossing_sample(3, Point::new(255.0, 125.0), Point::new(245.0, 125.0));
        let fx = rig.proto.on_move(&mut rig.core, &[s], SimTime::ZERO);
        rig.apply(fx);
        let fx = rig.proto.on_start(&mut rig.core);
        rig.apply(fx);
        rig.drain_until(SimTime::from_secs(25));
        assert_eq!(rig.proto.lsc_table_len(ClusterId(0)), 1);

        let t0 = rig.queue.now();
        let fx = rig
            .proto
            .launch_query(&mut rig.core, VehicleId(4), VehicleId(3), t0);
        rig.apply(fx);
        rig.drain_until(t0 + SimDuration::from_secs(20));
        let log = rig.proto.query_log();
        assert_eq!(
            log.success_count(SimDuration::from_secs(30)),
            1,
            "query failed"
        );
    }

    #[test]
    fn lsc_miss_waits_then_fails_on_single_cluster() {
        // Nothing aggregated: the LSC waits `query_wait`, finds nothing, and with a
        // single cluster the spiral is empty → failure.
        let mut rig = Rig::new(&[
            LSC_CENTER,
            Point::new(400.0, 300.0),
            Point::new(1900.0, 100.0),
        ]);
        let fx = rig
            .proto
            .launch_query(&mut rig.core, VehicleId(1), VehicleId(2), SimTime::ZERO);
        rig.apply(fx);
        rig.drain_until(SimTime::from_secs(20));
        assert_eq!(
            rig.proto
                .query_log()
                .success_count(SimDuration::from_secs(30)),
            0
        );
    }

    #[test]
    fn wait_and_aggregate_rescues_a_query() {
        // The query reaches the LSC *before* the aggregation does; the wait-and-
        // recheck pause must rescue it.
        let mut rig = Rig::new(&[
            CELL0_CENTER,
            LSC_CENTER,
            Point::new(250.0, 250.0),
            Point::new(245.0, 125.0), // Dv
            Point::new(400.0, 300.0), // Sv
        ]);
        // Dv's update reaches its cell leader only.
        let s = crossing_sample(3, Point::new(255.0, 125.0), Point::new(245.0, 125.0));
        let fx = rig.proto.on_move(&mut rig.core, &[s], SimTime::ZERO);
        rig.apply(fx);
        rig.drain_until(SimTime::from_secs(1));
        // Arm the aggregation timers (first fires at ≈10 s), then launch the query
        // at 9 s: the 3 s wait spans the aggregation's arrival.
        let fx = rig.proto.on_start(&mut rig.core);
        rig.apply(fx);
        rig.queue.schedule_at(
            SimTime::from_secs(9),
            Ev::Timer(RlsmpTimer::Aggregate { cell: CellId(15) }),
        );
        rig.drain_until(SimTime::from_secs(9));
        let t0 = rig.queue.now();
        let fx = rig
            .proto
            .launch_query(&mut rig.core, VehicleId(4), VehicleId(3), t0);
        rig.apply(fx);
        rig.drain_until(t0 + SimDuration::from_secs(25));
        assert_eq!(
            rig.proto
                .query_log()
                .success_count(SimDuration::from_secs(30)),
            1,
            "wait-and-aggregate did not rescue the query"
        );
        let lat = rig
            .proto
            .query_log()
            .latency_stats(SimDuration::from_secs(30))
            .mean()
            .unwrap();
        assert!(lat > 1.0, "latency {lat}s should include the wait");
    }

    #[test]
    fn spiral_reaches_a_neighbor_cluster() {
        // Dv's information lives only in cluster 1 (east half); Sv's home LSC in
        // cluster 0 misses, waits, then spirals east and resolves.
        // Cluster 0 covers cells x∈[0,4); cluster 1 covers x∈[4,8). Cluster 1's
        // LSC is cell (5,1) centered at (1375, 375).
        let cluster1_lsc = Point::new(1375.0, 375.0);
        let dv_pos = Point::new(1130.0, 125.0); // cell (4,0), inside cluster 1
        let mut rig = Rig::new(&[
            LSC_CENTER,                // 0: home LSC leader
            cluster1_lsc,              // 1: neighbor cluster's LSC leader
            Point::new(1125.0, 125.0), // 2: leader of Dv's cell
            dv_pos,                    // 3: Dv
            Point::new(400.0, 300.0),  // 4: Sv near the home LSC
            Point::new(875.0, 375.0),  // 5: relay between the LSCs
        ]);
        // Dv registers in its cell and the aggregation reaches cluster 1's LSC.
        let s = crossing_sample(3, Point::new(995.0, 125.0), dv_pos);
        let fx = rig.proto.on_move(&mut rig.core, &[s], SimTime::ZERO);
        rig.apply(fx);
        let fx = rig.proto.on_start(&mut rig.core);
        rig.apply(fx);
        rig.drain_until(SimTime::from_secs(25));
        assert_eq!(
            rig.proto.lsc_table_len(ClusterId(1)),
            1,
            "cluster 1 never learned"
        );
        assert_eq!(
            rig.proto.lsc_table_len(ClusterId(0)),
            0,
            "home LSC should not know"
        );

        let t0 = rig.queue.now();
        let fx = rig
            .proto
            .launch_query(&mut rig.core, VehicleId(4), VehicleId(3), t0);
        rig.apply(fx);
        rig.drain_until(t0 + SimDuration::from_secs(25));
        assert_eq!(
            rig.proto
                .query_log()
                .success_count(SimDuration::from_secs(30)),
            1,
            "the spiral never resolved the query"
        );
        // The spiral path includes the wait-and-aggregate pause.
        let lat = rig
            .proto
            .query_log()
            .latency_stats(SimDuration::from_secs(30))
            .mean()
            .unwrap();
        assert!(lat >= 3.0, "latency {lat}s skipped the LSC wait");
    }

    #[test]
    fn stale_cell_pointer_fails_cleanly() {
        // The LSC knows Dv was in cell 0, but the cell-leader entry is gone (we
        // inject an LSC row directly): the query must fail without panicking.
        let mut rig = Rig::new(&[
            CELL0_CENTER,
            LSC_CENTER,
            Point::new(250.0, 250.0),
            Point::new(400.0, 300.0),
        ]);
        let rows = vec![(VehicleId(9), SimTime::ZERO, CellId(0))];
        let lsc_leader = rig.core.registry.node_of_vehicle(VehicleId(1));
        let fx = rig.proto.on_packet(
            &mut rig.core,
            lsc_leader,
            PacketClass::Collection,
            RlsmpPayload::AggToLsc {
                cluster: ClusterId(0),
                rows,
            },
            SimTime::ZERO,
        );
        rig.apply(fx);
        let fx = rig
            .proto
            .launch_query(&mut rig.core, VehicleId(3), VehicleId(9), SimTime::ZERO);
        rig.apply(fx);
        rig.drain_until(SimTime::from_secs(20));
        assert_eq!(
            rig.proto
                .query_log()
                .success_count(SimDuration::from_secs(30)),
            0
        );
    }
}

#[cfg(test)]
mod protocol_proptests {
    use super::*;
    use proptest::prelude::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;
    use vanet_des::{EventQueue, SimDuration, SimTime};
    use vanet_geo::{BBox, Cardinal, Point};
    use vanet_mobility::{MoveSample, VehicleId};
    use vanet_net::{
        Effect, LocationService, NetworkCore, NodeRegistry, RadioConfig, Transport, WiredNetwork,
    };
    use vanet_roadnet::{IntersectionId, RoadClass, RoadId};

    #[derive(Debug, Clone)]
    enum Op {
        Move { v: u8, x: f64, y: f64 },
        Query { a: u8, b: u8 },
        Drain { ms: u16 },
    }

    fn op_strategy() -> impl Strategy<Value = Op> {
        prop_oneof![
            (0u8..10, 0.0f64..2000.0, 0.0f64..2000.0).prop_map(|(v, x, y)| Op::Move { v, x, y }),
            (0u8..10, 0u8..10).prop_map(|(a, b)| Op::Query { a, b }),
            (1u16..5000).prop_map(|ms| Op::Drain { ms }),
        ]
    }

    enum Ev {
        Deliver(vanet_net::NodeId, Transport<RlsmpPayload>),
        Timer(RlsmpTimer),
    }

    fn apply(queue: &mut EventQueue<Ev>, fx: Vec<Effect<RlsmpPayload, RlsmpTimer>>) {
        for f in fx {
            match f {
                Effect::Deliver(e) => queue.schedule_after(e.delay, Ev::Deliver(e.to, e.transport)),
                Effect::Timer { delay, key } => queue.schedule_after(delay, Ev::Timer(key)),
            }
        }
    }

    fn drain_until(
        queue: &mut EventQueue<Ev>,
        proto: &mut RlsmpProtocol,
        core: &mut NetworkCore,
        horizon: SimTime,
    ) {
        while let Some((now, ev)) = queue.pop_if_at_or_before(horizon) {
            match ev {
                Ev::Deliver(to, tr) => {
                    let (arrived, more) = core.handle_deliver(to, tr);
                    for e in more {
                        queue.schedule_after(e.delay, Ev::Deliver(e.to, e.transport));
                    }
                    if let Some((class, payload)) = arrived {
                        let fx = proto.on_packet(core, to, class, payload, now);
                        apply(queue, fx);
                    }
                }
                Ev::Timer(key) => {
                    let fx = proto.on_timer(core, key, now);
                    apply(queue, fx);
                }
            }
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(48))]

        /// Arbitrary interleavings never panic, ledger completions never precede
        /// launches, and cell tables stay bounded by the fleet size.
        #[test]
        fn random_stimuli_preserve_invariants(ops in proptest::collection::vec(op_strategy(), 1..60)) {
            let mut reg = NodeRegistry::new(500.0);
            for i in 0..10u32 {
                reg.add_vehicle(VehicleId(i), Point::new(100.0 + 180.0 * i as f64, 400.0));
            }
            let mut core = NetworkCore::new(
                reg,
                RadioConfig::default(),
                WiredNetwork::empty(),
                SmallRng::seed_from_u64(1),
            );
            let mut proto = RlsmpProtocol::new(
                BBox::new(0.0, 0.0, 2000.0, 2000.0),
                RlsmpConfig::default(),
                SmallRng::seed_from_u64(2),
            );
            let mut queue: EventQueue<Ev> = EventQueue::new();
            let fx = proto.on_start(&mut core);
            apply(&mut queue, fx);

            for op in ops {
                match op {
                    Op::Move { v, x, y } => {
                        let id = VehicleId(v as u32);
                        let node = core.registry.node_of_vehicle(id);
                        let old_pos = core.registry.pos(node);
                        let new_pos = Point::new(x, y);
                        core.registry.set_pos(node, new_pos);
                        let sample = MoveSample {
                            id,
                            old_pos,
                            new_pos,
                            road: RoadId(0),
                            from: IntersectionId(0),
                            road_class: RoadClass::Normal,
                            heading: Cardinal::East.into(),
                            speed: 10.0,
                            turn: None,
                        };
                        let now = queue.now();
                        let fx = proto.on_move(&mut core, &[sample], now);
                        apply(&mut queue, fx);
                    }
                    Op::Query { a, b } => {
                        if a != b {
                            let now = queue.now();
                            let fx = proto.launch_query(
                                &mut core,
                                VehicleId(a as u32),
                                VehicleId(b as u32),
                                now,
                            );
                            apply(&mut queue, fx);
                        }
                    }
                    Op::Drain { ms } => {
                        let horizon = queue.now() + SimDuration::from_millis(ms as u64);
                        drain_until(&mut queue, &mut proto, &mut core, horizon);
                    }
                }
            }
            let end = queue.now() + SimDuration::from_secs(30);
            drain_until(&mut queue, &mut proto, &mut core, end);

            for r in proto.query_log().records() {
                if let Some(done) = r.completed {
                    prop_assert!(done >= r.launched);
                }
            }
            for c in 0..proto.grid().cell_count() as u32 {
                prop_assert!(proto.cell_table_len(CellId(c)) <= 10);
            }
        }
    }
}
