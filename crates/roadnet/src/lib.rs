//! # vanet-roadnet — road networks, map generators, and the road-adapted partition
//!
//! The "digital map" layer of the HLSRG reproduction:
//!
//! * [`RoadNetwork`] — an undirected graph of intersections and straight road
//!   segments, each classified [`RoadClass::Artery`] or [`RoadClass::Normal`], with
//!   nearest-element queries and Dijkstra shortest paths.
//! * [`generators`] — synthetic Manhattan-style maps reproducing the paper's Los
//!   Angeles scenario: arteries every 500 m, normal roads every 125 m, optional
//!   jitter for irregular city blocks.
//! * [`Partition`] — the paper's §2.1 road-adapted three-level grid hierarchy:
//!   artery-bounded 500 m L1 grids, 2×2 nesting up to L3, intersection grid centers,
//!   and the wired RSU backbone (L2 → L3 uplinks, L3 cardinal mesh).

#![warn(missing_docs)]

pub mod artery_select;
pub mod generators;
pub mod graph;
pub mod io;
pub mod partition;

pub use artery_select::{
    apply_selection, extract_corridors, select_arteries, select_arteries_structural,
    shortest_path_usage, ArterySelectConfig, ArterySelection, Corridor,
};
pub use generators::{generate_grid, lattice_id, GridMapSpec};
pub use graph::{
    Intersection, IntersectionId, Road, RoadClass, RoadId, RoadNetwork, RoadNetworkBuilder,
};
pub use io::{from_map_text, to_map_text, MapParseError, MapParseErrorKind};
pub use partition::{L1Id, L2Id, L3Id, Partition, RsuId, RsuLevel, RsuSite};

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;
    use vanet_geo::Point;

    fn paper_net(size: f64) -> (RoadNetwork, Partition) {
        let net = generate_grid(&GridMapSpec::paper(size), &mut SmallRng::seed_from_u64(0));
        let p = Partition::build(&net, 500.0);
        (net, p)
    }

    proptest! {
        /// The partition is a total function: every in-map point maps to a valid L1
        /// whose bbox contains it, and the parent chain is consistent.
        #[test]
        fn partition_total_and_nested(x in 0.0f64..2000.0, y in 0.0f64..2000.0) {
            let (_, p) = paper_net(2000.0);
            let pt = Point::new(x, y);
            let l1 = p.l1_of(pt);
            prop_assert!(p.l1_bbox(l1).contains(pt));
            let l2 = p.l2_of(pt);
            let l3 = p.l3_of(pt);
            prop_assert_eq!(p.l1_to_l2(l1), l2);
            prop_assert_eq!(p.l2_to_l3(l2), l3);
            prop_assert!(p.l2_bbox(l2).contains(pt));
            prop_assert!(p.l3_bbox(l3).contains(pt));
        }

        /// Dijkstra distances obey the triangle inequality through any via node and
        /// are symmetric on an undirected graph.
        #[test]
        fn dijkstra_metric(a in 0u32..25, b in 0u32..25, v in 0u32..25) {
            let net = generate_grid(&GridMapSpec::paper(500.0), &mut SmallRng::seed_from_u64(0));
            let (a, b, v) = (IntersectionId(a), IntersectionId(b), IntersectionId(v));
            let da = net.dijkstra(a, |r| r.length);
            let db = net.dijkstra(b, |r| r.length);
            let dv = net.dijkstra(v, |r| r.length);
            prop_assert!((da[b.0 as usize] - db[a.0 as usize]).abs() < 1e-6);
            prop_assert!(da[b.0 as usize] <= da[v.0 as usize] + dv[b.0 as usize] + 1e-6);
        }

        /// shortest_path length equals the Dijkstra distance.
        #[test]
        fn path_matches_distance(a in 0u32..81, b in 0u32..81) {
            let net = generate_grid(&GridMapSpec::paper(1000.0), &mut SmallRng::seed_from_u64(0));
            let (a, b) = (IntersectionId(a), IntersectionId(b));
            let path = net.shortest_path(a, b).unwrap();
            let len: f64 = path.iter().map(|&r| net.road(r).length).sum();
            let d = net.dijkstra(a, |r| r.length)[b.0 as usize];
            prop_assert!((len - d).abs() < 1e-6);
        }

        /// The path is actually a connected walk from a to b.
        #[test]
        fn path_is_a_walk(a in 0u32..81, b in 0u32..81) {
            let net = generate_grid(&GridMapSpec::paper(1000.0), &mut SmallRng::seed_from_u64(0));
            let (a, b) = (IntersectionId(a), IntersectionId(b));
            let path = net.shortest_path(a, b).unwrap();
            let mut cur = a;
            for &rid in &path {
                cur = net.other_end(rid, cur); // panics if rid not incident to cur
            }
            prop_assert_eq!(cur, b);
        }

        /// Jittered maps keep every L1 center inside (or near the closed border of)
        /// its own cell — centers must be *representative* of their grid.
        #[test]
        fn jittered_centers_stay_local(seed in 0u64..30) {
            let net = generate_grid(
                &GridMapSpec::jittered(2000.0, 40.0),
                &mut SmallRng::seed_from_u64(seed),
            );
            let p = Partition::build(&net, 500.0);
            for i in 0..p.l1_count() as u32 {
                let l1 = L1Id(i);
                let c = net.pos(p.l1_center(l1));
                prop_assert!(p.l1_bbox(l1).inflate(125.0).contains_closed(c));
            }
        }
    }
}
