//! The road network graph.
//!
//! A `RoadNetwork` is an undirected graph of intersections connected by straight road
//! segments. Each segment is classified as a **main artery** (the high-traffic roads
//! HLSRG selects as grid boundaries) or a **normal road**. The digital map every GPS
//! carries in the paper is exactly this structure.

use serde::{Deserialize, Serialize};
use std::fmt;
use vanet_geo::{BBox, Heading, Point, Segment};

/// Index of an intersection in the network.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct IntersectionId(pub u32);

/// Index of a road segment in the network.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct RoadId(pub u32);

impl fmt::Display for IntersectionId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "i{}", self.0)
    }
}

impl fmt::Display for RoadId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "r{}", self.0)
    }
}

/// Whether a road is one of the selected main arteries or a normal road.
///
/// The distinction drives everything in HLSRG: arteries carry ~10× the traffic,
/// become the grid boundaries, and get the relaxed update rule.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum RoadClass {
    /// A selected main artery (grid boundary candidate, relaxed updates).
    Artery,
    /// Any other road.
    Normal,
}

/// An intersection: a graph node with a position.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Intersection {
    /// This node's id (equal to its index).
    pub id: IntersectionId,
    /// Position in the local frame.
    pub pos: Point,
}

/// A straight road segment between two intersections.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Road {
    /// This segment's id (equal to its index).
    pub id: RoadId,
    /// One endpoint.
    pub a: IntersectionId,
    /// The other endpoint.
    pub b: IntersectionId,
    /// Artery or normal.
    pub class: RoadClass,
    /// Cached Euclidean length in meters.
    pub length: f64,
}

/// The road network: intersections + segments + adjacency.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct RoadNetwork {
    intersections: Vec<Intersection>,
    roads: Vec<Road>,
    /// `adjacency[node]` = road ids incident to that node, sorted for determinism.
    adjacency: Vec<Vec<RoadId>>,
    bbox: BBox,
}

/// Builder for [`RoadNetwork`]; validates as it goes.
#[derive(Debug, Default)]
pub struct RoadNetworkBuilder {
    intersections: Vec<Intersection>,
    roads: Vec<Road>,
}

impl RoadNetworkBuilder {
    /// Creates an empty builder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds an intersection and returns its id.
    pub fn add_intersection(&mut self, pos: Point) -> IntersectionId {
        let id = IntersectionId(self.intersections.len() as u32);
        self.intersections.push(Intersection { id, pos });
        id
    }

    /// Adds a road between two existing intersections and returns its id.
    ///
    /// # Panics
    ///
    /// Panics on out-of-range endpoints, self-loops, or zero-length segments.
    pub fn add_road(&mut self, a: IntersectionId, b: IntersectionId, class: RoadClass) -> RoadId {
        assert!(
            (a.0 as usize) < self.intersections.len() && (b.0 as usize) < self.intersections.len(),
            "road endpoint out of range"
        );
        assert_ne!(a, b, "self-loop road");
        let pa = self.intersections[a.0 as usize].pos;
        let pb = self.intersections[b.0 as usize].pos;
        let length = pa.distance(pb);
        assert!(length > 1e-9, "zero-length road");
        let id = RoadId(self.roads.len() as u32);
        self.roads.push(Road {
            id,
            a,
            b,
            class,
            length,
        });
        id
    }

    /// Finishes the network.
    ///
    /// # Panics
    ///
    /// Panics if the network has no intersections.
    pub fn build(self) -> RoadNetwork {
        assert!(!self.intersections.is_empty(), "empty road network");
        let mut adjacency = vec![Vec::new(); self.intersections.len()];
        for r in &self.roads {
            adjacency[r.a.0 as usize].push(r.id);
            adjacency[r.b.0 as usize].push(r.id);
        }
        for adj in &mut adjacency {
            adj.sort_unstable();
        }
        let mut bbox = BBox::from_corners(self.intersections[0].pos, self.intersections[0].pos);
        for i in &self.intersections {
            bbox.min_x = bbox.min_x.min(i.pos.x);
            bbox.min_y = bbox.min_y.min(i.pos.y);
            bbox.max_x = bbox.max_x.max(i.pos.x);
            bbox.max_y = bbox.max_y.max(i.pos.y);
        }
        RoadNetwork {
            intersections: self.intersections,
            roads: self.roads,
            adjacency,
            bbox,
        }
    }
}

impl RoadNetwork {
    /// Number of intersections.
    pub fn intersection_count(&self) -> usize {
        self.intersections.len()
    }

    /// Number of road segments.
    pub fn road_count(&self) -> usize {
        self.roads.len()
    }

    /// All intersections, by id order.
    pub fn intersections(&self) -> &[Intersection] {
        &self.intersections
    }

    /// All roads, by id order.
    pub fn roads(&self) -> &[Road] {
        &self.roads
    }

    /// Lookup an intersection.
    pub fn intersection(&self, id: IntersectionId) -> &Intersection {
        &self.intersections[id.0 as usize]
    }

    /// Lookup a road.
    pub fn road(&self, id: RoadId) -> &Road {
        &self.roads[id.0 as usize]
    }

    /// Position of an intersection.
    pub fn pos(&self, id: IntersectionId) -> Point {
        self.intersection(id).pos
    }

    /// Road ids incident to `node`, sorted.
    pub fn incident_roads(&self, node: IntersectionId) -> &[RoadId] {
        &self.adjacency[node.0 as usize]
    }

    /// The endpoint of `road` that is not `node`.
    ///
    /// # Panics
    ///
    /// Panics if `node` is not an endpoint of `road`.
    pub fn other_end(&self, road: RoadId, node: IntersectionId) -> IntersectionId {
        let r = self.road(road);
        if r.a == node {
            r.b
        } else if r.b == node {
            r.a
        } else {
            panic!("{node} is not an endpoint of {road}");
        }
    }

    /// Geometric segment of a road, oriented from `from` to the other end.
    ///
    /// # Panics
    ///
    /// Panics if `from` is not an endpoint of `road`.
    pub fn segment_from(&self, road: RoadId, from: IntersectionId) -> Segment {
        let to = self.other_end(road, from);
        Segment::new(self.pos(from), self.pos(to))
    }

    /// Heading when driving `road` starting at `from`.
    pub fn heading_from(&self, road: RoadId, from: IntersectionId) -> Heading {
        self.segment_from(road, from)
            .heading()
            .expect("roads have positive length")
    }

    /// Bounding box of all intersections.
    pub fn bbox(&self) -> BBox {
        self.bbox
    }

    /// The intersection nearest to `p` (ties broken by lowest id).
    pub fn nearest_intersection(&self, p: Point) -> IntersectionId {
        self.intersections
            .iter()
            .min_by(|x, y| {
                p.distance_sq(x.pos)
                    .total_cmp(&p.distance_sq(y.pos))
                    .then_with(|| x.id.cmp(&y.id))
            })
            .expect("network is non-empty")
            .id
    }

    /// The road nearest to `p` (ties broken by lowest id), with its distance.
    pub fn nearest_road(&self, p: Point) -> (RoadId, f64) {
        self.roads
            .iter()
            .map(|r| (r.id, self.segment_of(r.id).distance_to(p)))
            .min_by(|x, y| x.1.total_cmp(&y.1).then_with(|| x.0.cmp(&y.0)))
            .expect("network has roads")
    }

    /// Geometric segment of a road in its stored `a → b` orientation.
    pub fn segment_of(&self, road: RoadId) -> Segment {
        let r = self.road(road);
        Segment::new(self.pos(r.a), self.pos(r.b))
    }

    /// Sum of all road lengths, in meters.
    pub fn total_road_length(&self) -> f64 {
        self.roads.iter().map(|r| r.length).sum()
    }

    /// Shortest-path distances from `src` to every node (Dijkstra over road lengths,
    /// scaled by `cost_fn` per road). Unreachable nodes get `f64::INFINITY`.
    pub fn dijkstra(&self, src: IntersectionId, cost_fn: impl Fn(&Road) -> f64) -> Vec<f64> {
        use std::cmp::Reverse;
        use std::collections::BinaryHeap;

        /// f64 wrapper with total order for the heap.
        #[derive(PartialEq)]
        struct D(f64);
        impl Eq for D {}
        impl PartialOrd for D {
            fn partial_cmp(&self, o: &Self) -> Option<std::cmp::Ordering> {
                Some(self.cmp(o))
            }
        }
        impl Ord for D {
            fn cmp(&self, o: &Self) -> std::cmp::Ordering {
                self.0.total_cmp(&o.0)
            }
        }

        let n = self.intersections.len();
        let mut dist = vec![f64::INFINITY; n];
        let mut heap = BinaryHeap::new();
        dist[src.0 as usize] = 0.0;
        heap.push(Reverse((D(0.0), src)));
        while let Some(Reverse((D(d), u))) = heap.pop() {
            if d > dist[u.0 as usize] {
                continue;
            }
            for &rid in self.incident_roads(u) {
                let road = self.road(rid);
                let w = cost_fn(road);
                debug_assert!(w >= 0.0, "negative road cost");
                let v = self.other_end(rid, u);
                let nd = d + w;
                if nd < dist[v.0 as usize] {
                    dist[v.0 as usize] = nd;
                    heap.push(Reverse((D(nd), v)));
                }
            }
        }
        dist
    }

    /// Shortest path from `src` to `dst` as a list of road ids, or `None` if
    /// unreachable. Cost is Euclidean road length.
    pub fn shortest_path(&self, src: IntersectionId, dst: IntersectionId) -> Option<Vec<RoadId>> {
        if src == dst {
            return Some(Vec::new());
        }
        let dist = self.dijkstra(src, |r| r.length);
        if dist[dst.0 as usize].is_infinite() {
            return None;
        }
        // Walk back from dst picking any predecessor consistent with the distances.
        let mut path = Vec::new();
        let mut cur = dst;
        while cur != src {
            let dcur = dist[cur.0 as usize];
            let mut step = None;
            for &rid in self.incident_roads(cur) {
                let road = self.road(rid);
                let prev = self.other_end(rid, cur);
                if (dist[prev.0 as usize] + road.length - dcur).abs() < 1e-6 {
                    step = Some((rid, prev));
                    break;
                }
            }
            let (rid, prev) = step.expect("distance array is consistent");
            path.push(rid);
            cur = prev;
        }
        path.reverse();
        Some(path)
    }

    /// True if every intersection is reachable from node 0.
    pub fn is_connected(&self) -> bool {
        let dist = self.dijkstra(IntersectionId(0), |r| r.length);
        dist.iter().all(|d| d.is_finite())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A 2×2 unit square: 4 nodes, 4 edges.
    fn square() -> RoadNetwork {
        let mut b = RoadNetworkBuilder::new();
        let n0 = b.add_intersection(Point::new(0.0, 0.0));
        let n1 = b.add_intersection(Point::new(100.0, 0.0));
        let n2 = b.add_intersection(Point::new(100.0, 100.0));
        let n3 = b.add_intersection(Point::new(0.0, 100.0));
        b.add_road(n0, n1, RoadClass::Artery);
        b.add_road(n1, n2, RoadClass::Normal);
        b.add_road(n2, n3, RoadClass::Normal);
        b.add_road(n3, n0, RoadClass::Normal);
        b.build()
    }

    #[test]
    fn builder_populates_adjacency() {
        let net = square();
        assert_eq!(net.intersection_count(), 4);
        assert_eq!(net.road_count(), 4);
        assert_eq!(
            net.incident_roads(IntersectionId(0)),
            &[RoadId(0), RoadId(3)]
        );
        assert_eq!(
            net.other_end(RoadId(0), IntersectionId(0)),
            IntersectionId(1)
        );
    }

    #[test]
    fn bbox_covers_all_nodes() {
        let net = square();
        assert_eq!(net.bbox(), BBox::new(0.0, 0.0, 100.0, 100.0));
    }

    #[test]
    fn nearest_queries() {
        let net = square();
        assert_eq!(
            net.nearest_intersection(Point::new(10.0, -5.0)),
            IntersectionId(0)
        );
        let (rid, d) = net.nearest_road(Point::new(50.0, 10.0));
        assert_eq!(rid, RoadId(0));
        assert_eq!(d, 10.0);
    }

    #[test]
    fn shortest_path_around_square() {
        let net = square();
        let p = net
            .shortest_path(IntersectionId(0), IntersectionId(2))
            .unwrap();
        assert_eq!(p.len(), 2); // two sides of the square
        let d = net.dijkstra(IntersectionId(0), |r| r.length);
        assert_eq!(d[2], 200.0);
        assert!(net.is_connected());
    }

    #[test]
    fn shortest_path_trivial_and_unreachable() {
        let net = square();
        assert_eq!(
            net.shortest_path(IntersectionId(1), IntersectionId(1)),
            Some(vec![])
        );

        let mut b = RoadNetworkBuilder::new();
        let a = b.add_intersection(Point::new(0.0, 0.0));
        b.add_intersection(Point::new(10.0, 0.0)); // isolated
        let c = b.add_intersection(Point::new(0.0, 10.0));
        b.add_road(a, c, RoadClass::Normal);
        let net = b.build();
        assert_eq!(net.shortest_path(a, IntersectionId(1)), None);
        assert!(!net.is_connected());
    }

    #[test]
    fn heading_from_is_oriented() {
        let net = square();
        use vanet_geo::Cardinal;
        assert_eq!(
            net.heading_from(RoadId(0), IntersectionId(0)).to_cardinal(),
            Cardinal::East
        );
        assert_eq!(
            net.heading_from(RoadId(0), IntersectionId(1)).to_cardinal(),
            Cardinal::West
        );
    }

    #[test]
    #[should_panic(expected = "self-loop")]
    fn self_loop_rejected() {
        let mut b = RoadNetworkBuilder::new();
        let n = b.add_intersection(Point::ORIGIN);
        b.add_road(n, n, RoadClass::Normal);
    }

    #[test]
    #[should_panic(expected = "zero-length")]
    fn coincident_endpoints_rejected() {
        let mut b = RoadNetworkBuilder::new();
        let a = b.add_intersection(Point::ORIGIN);
        let c = b.add_intersection(Point::ORIGIN);
        b.add_road(a, c, RoadClass::Normal);
    }

    #[test]
    fn serde_roundtrip() {
        let net = square();
        let json = serde_json_like(&net);
        assert!(json.contains("Artery"));
    }

    /// Minimal serialization smoke check without pulling serde_json: serde's derive
    /// is exercised through the `ron`-free debug of a `serde`-serializable struct by
    /// serializing to a `Vec` via bincode-like manual walk. We settle for checking
    /// the Serialize impl compiles and Debug output carries class names.
    fn serde_json_like(net: &RoadNetwork) -> String {
        format!("{net:?}")
    }
}
