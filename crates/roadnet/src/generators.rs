//! Synthetic map generators.
//!
//! The paper evaluates on a 2 km × 2 km Los Angeles map whose defining features are
//! (a) a Manhattan-style lattice of roads and (b) a sparse subset of *main arteries*
//! spaced ~500 m apart that carry ~10× the traffic and become the grid boundaries
//! (Fig 2.1: a 2 km region partitioned into 16 road-adapted 500 m grids).
//!
//! [`GridMapSpec`] reproduces that structure: a lattice with `spacing` between
//! parallel roads where every `artery_period`-th line is an artery. With the paper's
//! parameters (`spacing = 125 m`, `artery_period = 4`) arteries land every 500 m and
//! the road-adapted L1 grids are exactly the artery-bounded blocks. A `jitter`
//! parameter perturbs non-artery intersections to approximate the irregularity of a
//! real digital map without bending the artery boundaries.

use crate::graph::{IntersectionId, RoadClass, RoadNetwork, RoadNetworkBuilder};
use rand::rngs::SmallRng;
use rand::RngExt;
use serde::{Deserialize, Serialize};
use vanet_geo::Point;

/// Parameters for the lattice generator.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct GridMapSpec {
    /// Map width in meters (x extent).
    pub width: f64,
    /// Map height in meters (y extent).
    pub height: f64,
    /// Distance between adjacent parallel roads in meters.
    pub spacing: f64,
    /// Every `artery_period`-th grid line (starting from line 0) is a main artery.
    pub artery_period: usize,
    /// Maximum absolute perturbation (meters) applied to intersections that lie on
    /// no artery line. Must be `< spacing / 2` to keep the lattice planar.
    pub jitter: f64,
}

impl GridMapSpec {
    /// The paper's map family: arteries every 500 m, normal roads every 125 m.
    ///
    /// `size` is the side length in meters (the paper uses 500, 1000, and 2000).
    pub fn paper(size: f64) -> Self {
        GridMapSpec {
            width: size,
            height: size,
            spacing: 125.0,
            artery_period: 4,
            jitter: 0.0,
        }
    }

    /// A jittered variant approximating a real (non-rectilinear) city map.
    pub fn jittered(size: f64, jitter: f64) -> Self {
        GridMapSpec {
            jitter,
            ..Self::paper(size)
        }
    }

    /// Number of vertical grid lines (columns of intersections).
    pub fn cols(&self) -> usize {
        (self.width / self.spacing).round() as usize + 1
    }

    /// Number of horizontal grid lines (rows of intersections).
    pub fn rows(&self) -> usize {
        (self.height / self.spacing).round() as usize + 1
    }

    /// True if grid line `i` is an artery line.
    pub fn is_artery_line(&self, i: usize) -> bool {
        self.artery_period > 0 && i.is_multiple_of(self.artery_period)
    }

    fn validate(&self) {
        assert!(
            self.width > 0.0 && self.height > 0.0,
            "map must have positive extent"
        );
        assert!(self.spacing > 0.0, "spacing must be positive");
        assert!(
            self.jitter >= 0.0 && self.jitter < self.spacing / 2.0,
            "jitter must be in [0, spacing/2)"
        );
        assert!(self.artery_period >= 1, "artery_period must be >= 1");
    }
}

/// Generates a lattice map per `spec`. `rng` drives the jitter; pass any seeded rng
/// (unused when `jitter == 0`).
///
/// Intersections are laid out row-major from the south-west corner; roads connect
/// 4-neighbors. A road is an [`RoadClass::Artery`] iff it lies *along* an artery
/// line (both endpoints on that line).
pub fn generate_grid(spec: &GridMapSpec, rng: &mut SmallRng) -> RoadNetwork {
    spec.validate();
    let (cols, rows) = (spec.cols(), spec.rows());
    let mut b = RoadNetworkBuilder::new();
    let mut ids = Vec::with_capacity(cols * rows);
    for iy in 0..rows {
        for ix in 0..cols {
            let mut p = Point::new(ix as f64 * spec.spacing, iy as f64 * spec.spacing);
            // Jitter only intersections that are on no artery line, so artery
            // boundaries (and thus the road-adapted partition) stay straight.
            let on_artery = spec.is_artery_line(ix) || spec.is_artery_line(iy);
            // Border intersections stay put so the map bbox is exact.
            let on_border = ix == 0 || iy == 0 || ix == cols - 1 || iy == rows - 1;
            if spec.jitter > 0.0 && !on_artery && !on_border {
                p.x += rng.random_range(-spec.jitter..spec.jitter);
                p.y += rng.random_range(-spec.jitter..spec.jitter);
            }
            ids.push(b.add_intersection(p));
        }
    }
    let at = |ix: usize, iy: usize| ids[iy * cols + ix];
    for iy in 0..rows {
        for ix in 0..cols {
            // East edge lies along horizontal line iy.
            if ix + 1 < cols {
                let class = if spec.is_artery_line(iy) {
                    RoadClass::Artery
                } else {
                    RoadClass::Normal
                };
                b.add_road(at(ix, iy), at(ix + 1, iy), class);
            }
            // North edge lies along vertical line ix.
            if iy + 1 < rows {
                let class = if spec.is_artery_line(ix) {
                    RoadClass::Artery
                } else {
                    RoadClass::Normal
                };
                b.add_road(at(ix, iy), at(ix, iy + 1), class);
            }
        }
    }
    b.build()
}

/// Intersection id at lattice coordinates `(ix, iy)` of a map built by
/// [`generate_grid`] (row-major layout).
pub fn lattice_id(spec: &GridMapSpec, ix: usize, iy: usize) -> IntersectionId {
    assert!(
        ix < spec.cols() && iy < spec.rows(),
        "lattice coordinate out of range"
    );
    IntersectionId((iy * spec.cols() + ix) as u32)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn rng() -> SmallRng {
        SmallRng::seed_from_u64(1)
    }

    #[test]
    fn paper_map_2km_shape() {
        let spec = GridMapSpec::paper(2000.0);
        let net = generate_grid(&spec, &mut rng());
        assert_eq!(spec.cols(), 17);
        assert_eq!(spec.rows(), 17);
        assert_eq!(net.intersection_count(), 17 * 17);
        // 17 lines × 16 segments × 2 directions.
        assert_eq!(net.road_count(), 2 * 17 * 16);
        assert!(net.is_connected());
        let bb = net.bbox();
        assert_eq!((bb.width(), bb.height()), (2000.0, 2000.0));
    }

    #[test]
    fn artery_fraction_matches_period() {
        let spec = GridMapSpec::paper(2000.0);
        let net = generate_grid(&spec, &mut rng());
        let arteries = net
            .roads()
            .iter()
            .filter(|r| r.class == RoadClass::Artery)
            .count();
        // 5 artery lines per direction (0, 500, 1000, 1500, 2000) of 16 segments.
        assert_eq!(arteries, 2 * 5 * 16);
    }

    #[test]
    fn arteries_every_500m() {
        let spec = GridMapSpec::paper(1000.0);
        let net = generate_grid(&spec, &mut rng());
        for r in net.roads() {
            let seg = net.segment_of(r.id);
            if r.class == RoadClass::Artery {
                // Artery roads lie on a multiple-of-500 line in at least one axis.
                let on_h = (seg.a.y == seg.b.y) && (seg.a.y % 500.0 == 0.0);
                let on_v = (seg.a.x == seg.b.x) && (seg.a.x % 500.0 == 0.0);
                assert!(on_h || on_v, "artery off the 500 m lattice: {seg:?}");
            }
        }
    }

    #[test]
    fn jitter_moves_only_interior_normal_nodes() {
        let spec = GridMapSpec::jittered(1000.0, 30.0);
        let net = generate_grid(&spec, &mut rng());
        let cols = spec.cols();
        for (i, node) in net.intersections().iter().enumerate() {
            let (ix, iy) = (i % cols, i / cols);
            let nominal = Point::new(ix as f64 * 125.0, iy as f64 * 125.0);
            let moved = node.pos.distance(nominal) > 1e-9;
            let on_artery = spec.is_artery_line(ix) || spec.is_artery_line(iy);
            let on_border = ix == 0 || iy == 0 || ix == cols - 1 || iy == spec.rows() - 1;
            if on_artery || on_border {
                assert!(!moved, "protected node moved at ({ix},{iy})");
            } else {
                assert!(node.pos.distance(nominal) < 30.0 * std::f64::consts::SQRT_2 + 1e-9);
            }
        }
        assert!(net.is_connected());
    }

    #[test]
    fn jitter_is_deterministic_per_seed() {
        let spec = GridMapSpec::jittered(500.0, 20.0);
        let a = generate_grid(&spec, &mut SmallRng::seed_from_u64(9));
        let b = generate_grid(&spec, &mut SmallRng::seed_from_u64(9));
        for (x, y) in a.intersections().iter().zip(b.intersections()) {
            assert_eq!(x.pos, y.pos);
        }
    }

    #[test]
    fn lattice_id_addresses_row_major() {
        let spec = GridMapSpec::paper(500.0);
        let net = generate_grid(&spec, &mut rng());
        let id = lattice_id(&spec, 2, 1);
        assert_eq!(net.pos(id), Point::new(250.0, 125.0));
    }

    #[test]
    #[should_panic(expected = "jitter must be in")]
    fn oversized_jitter_rejected() {
        let spec = GridMapSpec {
            jitter: 80.0,
            ..GridMapSpec::paper(500.0)
        };
        generate_grid(&spec, &mut rng());
    }

    #[test]
    fn small_map_500m() {
        let spec = GridMapSpec::paper(500.0);
        let net = generate_grid(&spec, &mut rng());
        assert_eq!(net.intersection_count(), 25);
        assert!(net.is_connected());
    }
}
