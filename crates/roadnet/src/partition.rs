//! The road-adapted grid partition and three-level hierarchy (paper §2.1).
//!
//! Level 1 grids are ~500 m × 500 m regions whose boundaries are main arteries.
//! Four L1 grids form an L2 grid; four L2 grids form an L3 grid. Each L1 grid's
//! *center* is the intersection nearest the grid's geometric center (vehicles wait at
//! its lights, making them good packet stores). Each L2/L3 grid center hosts an RSU;
//! L2 RSUs are wired to their parent L3 RSU, and each L3 RSU is wired to its four
//! cardinal L3 neighbors (paper Fig 2.2 / 2.3).
//!
//! Geometrically the partition is a uniform grid anchored at the map's south-west
//! corner with `l1_size` cells — by construction of the map generator the cell
//! boundaries coincide with artery lines, which is what "road-adapted" buys: grid
//! edges run along roads instead of cutting through buildings.

use crate::graph::{IntersectionId, RoadNetwork};
use serde::{Deserialize, Serialize};
use std::fmt;
use vanet_geo::{BBox, Cardinal, Point};

/// A level-1 grid id (dense index, row-major from the south-west).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct L1Id(pub u32);

/// A level-2 grid id.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct L2Id(pub u32);

/// A level-3 grid id.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct L3Id(pub u32);

impl fmt::Display for L1Id {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "L1#{}", self.0)
    }
}
impl fmt::Display for L2Id {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "L2#{}", self.0)
    }
}
impl fmt::Display for L3Id {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "L3#{}", self.0)
    }
}

/// Identifier of a road-side unit.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct RsuId(pub u32);

impl fmt::Display for RsuId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "RSU#{}", self.0)
    }
}

/// Which hierarchy level an RSU serves.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum RsuLevel {
    /// Serves one L2 grid.
    L2,
    /// Serves one L3 grid.
    L3,
}

/// A deployed RSU: position, level, and the grids it serves.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RsuSite {
    /// Unique RSU id (dense: all L2 RSUs first, then all L3 RSUs).
    pub id: RsuId,
    /// L2 or L3.
    pub level: RsuLevel,
    /// Physical position (the grid-center intersection).
    pub pos: Point,
    /// The L2 grid it serves (L2 RSUs only).
    pub l2: Option<L2Id>,
    /// The L3 grid it serves (its own for L3 RSUs, the parent for L2 RSUs).
    pub l3: L3Id,
}

/// The three-level road-adapted partition of a map.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Partition {
    origin: Point,
    l1_size: f64,
    nx1: u32,
    ny1: u32,
    l1_centers: Vec<IntersectionId>,
    l2_centers: Vec<IntersectionId>,
    l3_centers: Vec<IntersectionId>,
    rsus: Vec<RsuSite>,
    /// Wired duplex links between RSUs, as id pairs with `a < b`.
    wired_links: Vec<(RsuId, RsuId)>,
}

impl Partition {
    /// Builds the partition of `net` with L1 cells of `l1_size` meters.
    ///
    /// The paper sets `l1_size` to the communication range (500 m). Maps smaller
    /// than one L2/L3 grid degenerate gracefully: the hierarchy just has one cell at
    /// the affected levels.
    ///
    /// # Panics
    ///
    /// Panics if `l1_size` is not strictly positive.
    pub fn build(net: &RoadNetwork, l1_size: f64) -> Self {
        assert!(l1_size > 0.0, "l1 size must be positive");
        let bb = net.bbox();
        let origin = Point::new(bb.min_x, bb.min_y);
        let nx1 = cells(bb.width(), l1_size);
        let ny1 = cells(bb.height(), l1_size);

        // Centers come from each cell's *in-map* portion, so a grid cell truncated
        // by the map edge (small maps, ceil-rounded dims) still gets a central
        // intersection rather than one dragged to the map border.
        let center_of = |b: &BBox| {
            let clipped = BBox::new(
                b.min_x.max(bb.min_x),
                b.min_y.max(bb.min_y),
                b.max_x.min(bb.max_x),
                b.max_y.min(bb.max_y),
            );
            net.nearest_intersection(clipped.center())
        };

        let mut l1_centers = Vec::with_capacity((nx1 * ny1) as usize);
        for iy in 0..ny1 {
            for ix in 0..nx1 {
                l1_centers.push(center_of(&cell_bbox(origin, l1_size, ix, iy)));
            }
        }
        let (nx2, ny2) = (nx1.div_ceil(2), ny1.div_ceil(2));
        let mut l2_centers = Vec::with_capacity((nx2 * ny2) as usize);
        for iy in 0..ny2 {
            for ix in 0..nx2 {
                l2_centers.push(center_of(&cell_bbox(origin, l1_size * 2.0, ix, iy)));
            }
        }
        let (nx3, ny3) = (nx2.div_ceil(2), ny2.div_ceil(2));
        let mut l3_centers = Vec::with_capacity((nx3 * ny3) as usize);
        for iy in 0..ny3 {
            for ix in 0..nx3 {
                l3_centers.push(center_of(&cell_bbox(origin, l1_size * 4.0, ix, iy)));
            }
        }

        let mut p = Partition {
            origin,
            l1_size,
            nx1,
            ny1,
            l1_centers,
            l2_centers,
            l3_centers,
            rsus: Vec::new(),
            wired_links: Vec::new(),
        };
        p.place_rsus(net);
        p
    }

    /// One RSU per L2 center and per L3 center; wires L2→parent-L3 and L3→cardinal
    /// L3 neighbors.
    fn place_rsus(&mut self, net: &RoadNetwork) {
        let mut rsus = Vec::new();
        for (i, &c) in self.l2_centers.iter().enumerate() {
            let l2 = L2Id(i as u32);
            rsus.push(RsuSite {
                id: RsuId(rsus.len() as u32),
                level: RsuLevel::L2,
                pos: net.pos(c),
                l2: Some(l2),
                l3: self.l2_to_l3(l2),
            });
        }
        let l3_base = rsus.len() as u32;
        for (i, &c) in self.l3_centers.iter().enumerate() {
            rsus.push(RsuSite {
                id: RsuId(rsus.len() as u32),
                level: RsuLevel::L3,
                pos: net.pos(c),
                l2: None,
                l3: L3Id(i as u32),
            });
        }
        let mut links = Vec::new();
        // L2 RSU ↔ its L3 RSU.
        for r in &rsus {
            if r.level == RsuLevel::L2 {
                let l3_rsu = RsuId(l3_base + r.l3.0);
                links.push(ordered(r.id, l3_rsu));
            }
        }
        // L3 RSU ↔ the four cardinal neighbors that exist.
        let (nx3, _) = self.l3_dims();
        for (i, _) in self.l3_centers.iter().enumerate() {
            let (ix, iy) = (i as u32 % nx3, i as u32 / nx3);
            for c in Cardinal::ALL {
                let (dx, dy) = c.grid_offset();
                let (jx, jy) = (ix as i64 + dx, iy as i64 + dy);
                if let Some(j) = self.l3_index(jx, jy) {
                    links.push(ordered(RsuId(l3_base + i as u32), RsuId(l3_base + j)));
                }
            }
        }
        links.sort_unstable();
        links.dedup();
        self.rsus = rsus;
        self.wired_links = links;
    }

    /// L1 grid cell size in meters.
    pub fn l1_size(&self) -> f64 {
        self.l1_size
    }

    /// `(columns, rows)` of L1 cells.
    pub fn l1_dims(&self) -> (u32, u32) {
        (self.nx1, self.ny1)
    }

    /// `(columns, rows)` of L2 cells.
    pub fn l2_dims(&self) -> (u32, u32) {
        (self.nx1.div_ceil(2), self.ny1.div_ceil(2))
    }

    /// `(columns, rows)` of L3 cells.
    pub fn l3_dims(&self) -> (u32, u32) {
        let (nx2, ny2) = self.l2_dims();
        (nx2.div_ceil(2), ny2.div_ceil(2))
    }

    /// Total number of L1 cells.
    pub fn l1_count(&self) -> usize {
        self.l1_centers.len()
    }

    /// Total number of L2 cells.
    pub fn l2_count(&self) -> usize {
        self.l2_centers.len()
    }

    /// Total number of L3 cells.
    pub fn l3_count(&self) -> usize {
        self.l3_centers.len()
    }

    fn clamp_ix(&self, v: f64, n: u32, min: f64, size: f64) -> u32 {
        (((v - min) / size).floor() as i64).clamp(0, n as i64 - 1) as u32
    }

    /// L1 cell containing `p` (points outside the map clamp to the border cells).
    pub fn l1_of(&self, p: Point) -> L1Id {
        let ix = self.clamp_ix(p.x, self.nx1, self.origin.x, self.l1_size);
        let iy = self.clamp_ix(p.y, self.ny1, self.origin.y, self.l1_size);
        L1Id(iy * self.nx1 + ix)
    }

    /// L2 cell containing `p`.
    pub fn l2_of(&self, p: Point) -> L2Id {
        self.l1_to_l2(self.l1_of(p))
    }

    /// L3 cell containing `p`.
    pub fn l3_of(&self, p: Point) -> L3Id {
        self.l2_to_l3(self.l2_of(p))
    }

    /// Parent L2 of an L1 cell.
    pub fn l1_to_l2(&self, l1: L1Id) -> L2Id {
        let (ix, iy) = (l1.0 % self.nx1, l1.0 / self.nx1);
        let (nx2, _) = self.l2_dims();
        L2Id((iy / 2) * nx2 + ix / 2)
    }

    /// Parent L3 of an L2 cell.
    pub fn l2_to_l3(&self, l2: L2Id) -> L3Id {
        let (nx2, _) = self.l2_dims();
        let (ix, iy) = (l2.0 % nx2, l2.0 / nx2);
        let (nx3, _) = self.l3_dims();
        L3Id((iy / 2) * nx3 + ix / 2)
    }

    fn l3_index(&self, ix: i64, iy: i64) -> Option<u32> {
        let (nx3, ny3) = self.l3_dims();
        (ix >= 0 && iy >= 0 && (ix as u32) < nx3 && (iy as u32) < ny3)
            .then(|| iy as u32 * nx3 + ix as u32)
    }

    /// Cardinal L3 neighbor, if it exists.
    pub fn l3_neighbor(&self, l3: L3Id, dir: Cardinal) -> Option<L3Id> {
        let (nx3, _) = self.l3_dims();
        let (ix, iy) = (l3.0 % nx3, l3.0 / nx3);
        let (dx, dy) = dir.grid_offset();
        self.l3_index(ix as i64 + dx, iy as i64 + dy).map(L3Id)
    }

    /// Bounding box of an L1 cell.
    pub fn l1_bbox(&self, l1: L1Id) -> BBox {
        let (ix, iy) = (l1.0 % self.nx1, l1.0 / self.nx1);
        cell_bbox(self.origin, self.l1_size, ix, iy)
    }

    /// Bounding box of an L2 cell.
    pub fn l2_bbox(&self, l2: L2Id) -> BBox {
        let (nx2, _) = self.l2_dims();
        cell_bbox(self.origin, self.l1_size * 2.0, l2.0 % nx2, l2.0 / nx2)
    }

    /// Bounding box of an L3 cell.
    pub fn l3_bbox(&self, l3: L3Id) -> BBox {
        let (nx3, _) = self.l3_dims();
        cell_bbox(self.origin, self.l1_size * 4.0, l3.0 % nx3, l3.0 / nx3)
    }

    /// The center intersection of an L1 grid (its location-server rendezvous).
    pub fn l1_center(&self, l1: L1Id) -> IntersectionId {
        self.l1_centers[l1.0 as usize]
    }

    /// The center intersection of an L2 grid (where its RSU stands).
    pub fn l2_center(&self, l2: L2Id) -> IntersectionId {
        self.l2_centers[l2.0 as usize]
    }

    /// The center intersection of an L3 grid (where its RSU stands).
    pub fn l3_center(&self, l3: L3Id) -> IntersectionId {
        self.l3_centers[l3.0 as usize]
    }

    /// All RSUs (L2 RSUs first, then L3 RSUs), dense by id.
    pub fn rsus(&self) -> &[RsuSite] {
        &self.rsus
    }

    /// The RSU serving an L2 grid.
    pub fn rsu_of_l2(&self, l2: L2Id) -> RsuId {
        RsuId(l2.0)
    }

    /// The RSU serving an L3 grid.
    pub fn rsu_of_l3(&self, l3: L3Id) -> RsuId {
        RsuId(self.l2_centers.len() as u32 + l3.0)
    }

    /// All wired duplex RSU links as `(a, b)` with `a < b`, sorted.
    pub fn wired_links(&self) -> &[(RsuId, RsuId)] {
        &self.wired_links
    }

    /// True if the two RSUs are directly wired.
    pub fn are_wired(&self, a: RsuId, b: RsuId) -> bool {
        self.wired_links.binary_search(&ordered(a, b)).is_ok()
    }
}

fn cells(extent: f64, size: f64) -> u32 {
    // A map whose extent is an exact multiple of `size` gets exactly extent/size
    // cells; anything else rounds up. At least one cell even for degenerate maps.
    ((extent / size).ceil() as u32).max(1)
}

fn cell_bbox(origin: Point, size: f64, ix: u32, iy: u32) -> BBox {
    BBox::new(
        origin.x + ix as f64 * size,
        origin.y + iy as f64 * size,
        origin.x + (ix + 1) as f64 * size,
        origin.y + (iy + 1) as f64 * size,
    )
}

fn ordered(a: RsuId, b: RsuId) -> (RsuId, RsuId) {
    if a < b {
        (a, b)
    } else {
        (b, a)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators::{generate_grid, GridMapSpec};
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    fn paper_partition(size: f64) -> (RoadNetwork, Partition) {
        let net = generate_grid(&GridMapSpec::paper(size), &mut SmallRng::seed_from_u64(0));
        let p = Partition::build(&net, 500.0);
        (net, p)
    }

    #[test]
    fn dims_2km() {
        let (_, p) = paper_partition(2000.0);
        assert_eq!(p.l1_dims(), (4, 4));
        assert_eq!(p.l2_dims(), (2, 2));
        assert_eq!(p.l3_dims(), (1, 1));
        assert_eq!(p.l1_count(), 16);
        assert_eq!(p.l2_count(), 4);
        assert_eq!(p.l3_count(), 1);
    }

    #[test]
    fn dims_degenerate_500m() {
        let (_, p) = paper_partition(500.0);
        assert_eq!(p.l1_dims(), (1, 1));
        assert_eq!(p.l2_dims(), (1, 1));
        assert_eq!(p.l3_dims(), (1, 1));
    }

    #[test]
    fn nesting_is_exact() {
        let (_, p) = paper_partition(2000.0);
        for i in 0..p.l1_count() as u32 {
            let l1 = L1Id(i);
            let b1 = p.l1_bbox(l1);
            let b2 = p.l2_bbox(p.l1_to_l2(l1));
            let b3 = p.l3_bbox(p.l2_to_l3(p.l1_to_l2(l1)));
            // L1 box fully inside parent L2 box, which is inside the L3 box.
            assert!(b2.contains_closed(Point::new(b1.min_x, b1.min_y)));
            assert!(b2.contains_closed(Point::new(b1.max_x, b1.max_y)));
            assert!(b3.contains_closed(Point::new(b2.min_x, b2.min_y)));
            assert!(b3.contains_closed(Point::new(b2.max_x, b2.max_y)));
        }
    }

    #[test]
    fn point_mapping_consistent_with_bbox() {
        let (_, p) = paper_partition(2000.0);
        for &(x, y) in &[
            (10.0, 10.0),
            (499.0, 499.0),
            (500.0, 500.0),
            (1999.0, 3.0),
            (1200.0, 800.0),
        ] {
            let pt = Point::new(x, y);
            let l1 = p.l1_of(pt);
            assert!(p.l1_bbox(l1).contains(pt), "point {pt} not in its l1 bbox");
            assert_eq!(p.l1_to_l2(l1), p.l2_of(pt));
            assert_eq!(p.l2_to_l3(p.l2_of(pt)), p.l3_of(pt));
        }
    }

    #[test]
    fn outside_points_clamp() {
        let (_, p) = paper_partition(1000.0);
        assert_eq!(p.l1_of(Point::new(-50.0, -50.0)), L1Id(0));
        let (nx, ny) = p.l1_dims();
        assert_eq!(p.l1_of(Point::new(5000.0, 5000.0)), L1Id(ny * nx - 1));
    }

    #[test]
    fn l1_centers_are_central_intersections() {
        let (net, p) = paper_partition(2000.0);
        // The L1 cell [0,500)² has geometric center (250,250), which is an exact
        // lattice intersection on the paper map.
        let c = p.l1_center(L1Id(0));
        assert_eq!(net.pos(c), Point::new(250.0, 250.0));
    }

    #[test]
    fn l2_centers_are_shared_corners() {
        let (net, p) = paper_partition(2000.0);
        // L2 cell [0,1000)² center is (500,500): the corner shared by its 4 L1s.
        let c = p.l2_center(L2Id(0));
        assert_eq!(net.pos(c), Point::new(500.0, 500.0));
    }

    #[test]
    fn rsu_inventory_and_wiring_2km() {
        let (_, p) = paper_partition(2000.0);
        // 4 L2 RSUs + 1 L3 RSU.
        assert_eq!(p.rsus().len(), 5);
        let l3_rsu = p.rsu_of_l3(L3Id(0));
        for l2 in 0..4u32 {
            assert!(p.are_wired(p.rsu_of_l2(L2Id(l2)), l3_rsu));
        }
        // Single L3 ⇒ no L3↔L3 links.
        assert_eq!(p.wired_links().len(), 4);
    }

    #[test]
    fn l3_mesh_on_4km_map() {
        let net = generate_grid(&GridMapSpec::paper(4000.0), &mut SmallRng::seed_from_u64(0));
        let p = Partition::build(&net, 500.0);
        assert_eq!(p.l3_dims(), (2, 2));
        // Each L3 RSU wired to its 2 in-map cardinal neighbors: 4 mesh links,
        // plus 4 L2-per-L3 uplinks × 4 L3 = 16.
        assert_eq!(p.wired_links().len(), 16 + 4);
        assert_eq!(p.l3_neighbor(L3Id(0), Cardinal::East), Some(L3Id(1)));
        assert_eq!(p.l3_neighbor(L3Id(0), Cardinal::North), Some(L3Id(2)));
        assert_eq!(p.l3_neighbor(L3Id(0), Cardinal::West), None);
        assert!(p.are_wired(p.rsu_of_l3(L3Id(0)), p.rsu_of_l3(L3Id(1))));
        assert!(!p.are_wired(p.rsu_of_l3(L3Id(0)), p.rsu_of_l3(L3Id(3))));
    }

    #[test]
    fn every_l1_belongs_to_exactly_one_parent_chain() {
        let (_, p) = paper_partition(2000.0);
        let mut counts = vec![0u32; p.l2_count()];
        for i in 0..p.l1_count() as u32 {
            counts[p.l1_to_l2(L1Id(i)).0 as usize] += 1;
        }
        // Paper: four L1 grids per L2 grid.
        assert!(counts.iter().all(|&c| c == 4));
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use crate::generators::{generate_grid, GridMapSpec};
    use proptest::prelude::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    /// Map sizes whose 500 m L1 lattice has even dimensions at both levels, so
    /// the 4:1 nesting is exact everywhere (the paper's own geometry).
    const EVEN_SIZES: [f64; 2] = [2000.0, 4000.0];

    fn partition_of(size: f64) -> Partition {
        let net = generate_grid(&GridMapSpec::paper(size), &mut SmallRng::seed_from_u64(0));
        Partition::build(&net, 500.0)
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        /// Any interior point is claimed by exactly one L1 box — the one
        /// `l1_of` names — under the half-open bbox semantics.
        #[test]
        fn every_sampled_point_maps_to_exactly_one_l1(
            size_ix in 0usize..2,
            // Strictly-interior fractions: /10_000 keeps the top edge out.
            fx in 0u32..9_999,
            fy in 0u32..9_999,
        ) {
            let p = partition_of(EVEN_SIZES[size_ix]);
            let (nx, ny) = p.l1_dims();
            let b0 = p.l1_bbox(L1Id(0));
            let (w, h) = (nx as f64 * p.l1_size(), ny as f64 * p.l1_size());
            let pt = Point::new(
                b0.min_x + w * fx as f64 / 10_000.0,
                b0.min_y + h * fy as f64 / 10_000.0,
            );
            let claimed = p.l1_of(pt);
            let mut owners = 0u32;
            for i in 0..p.l1_count() as u32 {
                if p.l1_bbox(L1Id(i)).contains(pt) {
                    owners += 1;
                    prop_assert_eq!(L1Id(i), claimed, "bbox owner disagrees with l1_of");
                }
            }
            prop_assert_eq!(owners, 1, "point ({}, {}) has {} owners", pt.x, pt.y, owners);
        }

        /// On even-dimension maps, the hierarchy is exactly 4:1 at each level
        /// and every child box nests geometrically inside its parent's.
        #[test]
        fn nesting_is_exactly_four_to_one(size_ix in 0usize..2) {
            let p = partition_of(EVEN_SIZES[size_ix]);
            let mut l1_per_l2 = vec![0u32; p.l2_count()];
            for i in 0..p.l1_count() as u32 {
                let l1 = L1Id(i);
                let l2 = p.l1_to_l2(l1);
                l1_per_l2[l2.0 as usize] += 1;
                let (c, b) = (p.l1_bbox(l1), p.l2_bbox(l2));
                prop_assert!(
                    c.min_x >= b.min_x && c.min_y >= b.min_y
                        && c.max_x <= b.max_x && c.max_y <= b.max_y,
                    "L1 {:?} escapes its L2 parent", l1
                );
            }
            prop_assert!(l1_per_l2.iter().all(|&n| n == 4), "L1-per-L2 counts: {:?}", l1_per_l2);

            let mut l2_per_l3 = vec![0u32; p.l3_count()];
            for i in 0..p.l2_count() as u32 {
                let l2 = L2Id(i);
                let l3 = p.l2_to_l3(l2);
                l2_per_l3[l3.0 as usize] += 1;
                let (c, b) = (p.l2_bbox(l2), p.l3_bbox(l3));
                prop_assert!(
                    c.min_x >= b.min_x && c.min_y >= b.min_y
                        && c.max_x <= b.max_x && c.max_y <= b.max_y,
                    "L2 {:?} escapes its L3 parent", l2
                );
            }
            prop_assert!(l2_per_l3.iter().all(|&n| n == 4), "L2-per-L3 counts: {:?}", l2_per_l3);
        }
    }
}
