//! A plain-text digital-map format.
//!
//! Real deployments load the "well partitioned digital map … loaded to every GPS"
//! the paper assumes, rather than generating lattices. The format is line-based
//! and diff-friendly:
//!
//! ```text
//! # hlsrg-map v1
//! node 0.0 0.0
//! node 125.0 0.0
//! road 0 1 artery
//! ```
//!
//! `node x y` lines declare intersections (ids are their 0-based order);
//! `road a b class` lines connect them (`class` ∈ {`artery`, `normal`}).
//! Blank lines and `#` comments are ignored.

use crate::graph::{IntersectionId, RoadClass, RoadNetwork, RoadNetworkBuilder};
use std::fmt;
use vanet_geo::Point;

/// A parse failure, with its 1-based line number.
#[derive(Debug, Clone, PartialEq)]
pub struct MapParseError {
    /// 1-based line number of the offending line.
    pub line: usize,
    /// What went wrong.
    pub kind: MapParseErrorKind,
}

/// The kinds of parse failure.
#[derive(Debug, Clone, PartialEq)]
pub enum MapParseErrorKind {
    /// Line did not start with a known keyword.
    UnknownDirective(String),
    /// Wrong number of fields for the directive.
    FieldCount {
        /// Fields expected.
        expected: usize,
        /// Fields found.
        found: usize,
    },
    /// A numeric field failed to parse.
    BadNumber(String),
    /// A road referenced a node that does not (yet) exist.
    UnknownNode(u32),
    /// A road class other than `artery`/`normal`.
    BadClass(String),
    /// The file declared no nodes at all.
    Empty,
}

impl fmt::Display for MapParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "map parse error at line {}: ", self.line)?;
        match &self.kind {
            MapParseErrorKind::UnknownDirective(d) => write!(f, "unknown directive {d:?}"),
            MapParseErrorKind::FieldCount { expected, found } => {
                write!(f, "expected {expected} fields, found {found}")
            }
            MapParseErrorKind::BadNumber(s) => write!(f, "bad number {s:?}"),
            MapParseErrorKind::UnknownNode(n) => write!(f, "road references unknown node {n}"),
            MapParseErrorKind::BadClass(s) => write!(f, "bad road class {s:?} (artery|normal)"),
            MapParseErrorKind::Empty => write!(f, "map has no nodes"),
        }
    }
}

impl std::error::Error for MapParseError {}

/// Serializes a network to the text format.
pub fn to_map_text(net: &RoadNetwork) -> String {
    let mut out = String::with_capacity(net.intersection_count() * 24 + net.road_count() * 16);
    out.push_str("# hlsrg-map v1\n");
    for i in net.intersections() {
        out.push_str(&format!("node {} {}\n", i.pos.x, i.pos.y));
    }
    for r in net.roads() {
        let class = match r.class {
            RoadClass::Artery => "artery",
            RoadClass::Normal => "normal",
        };
        out.push_str(&format!("road {} {} {}\n", r.a.0, r.b.0, class));
    }
    out
}

/// Parses the text format into a network.
pub fn from_map_text(text: &str) -> Result<RoadNetwork, MapParseError> {
    let mut b = RoadNetworkBuilder::new();
    let mut nodes = 0u32;
    for (ix, raw) in text.lines().enumerate() {
        let line_no = ix + 1;
        let line = raw.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let fields: Vec<&str> = line.split_whitespace().collect();
        let err = |kind| MapParseError {
            line: line_no,
            kind,
        };
        match fields[0] {
            "node" => {
                if fields.len() != 3 {
                    return Err(err(MapParseErrorKind::FieldCount {
                        expected: 3,
                        found: fields.len(),
                    }));
                }
                let x: f64 = fields[1]
                    .parse()
                    .map_err(|_| err(MapParseErrorKind::BadNumber(fields[1].into())))?;
                let y: f64 = fields[2]
                    .parse()
                    .map_err(|_| err(MapParseErrorKind::BadNumber(fields[2].into())))?;
                b.add_intersection(Point::new(x, y));
                nodes += 1;
            }
            "road" => {
                if fields.len() != 4 {
                    return Err(err(MapParseErrorKind::FieldCount {
                        expected: 4,
                        found: fields.len(),
                    }));
                }
                let a: u32 = fields[1]
                    .parse()
                    .map_err(|_| err(MapParseErrorKind::BadNumber(fields[1].into())))?;
                let bb: u32 = fields[2]
                    .parse()
                    .map_err(|_| err(MapParseErrorKind::BadNumber(fields[2].into())))?;
                if a >= nodes {
                    return Err(err(MapParseErrorKind::UnknownNode(a)));
                }
                if bb >= nodes {
                    return Err(err(MapParseErrorKind::UnknownNode(bb)));
                }
                let class = match fields[3] {
                    "artery" => RoadClass::Artery,
                    "normal" => RoadClass::Normal,
                    other => return Err(err(MapParseErrorKind::BadClass(other.into()))),
                };
                b.add_road(IntersectionId(a), IntersectionId(bb), class);
            }
            other => return Err(err(MapParseErrorKind::UnknownDirective(other.into()))),
        }
    }
    if nodes == 0 {
        return Err(MapParseError {
            line: text.lines().count(),
            kind: MapParseErrorKind::Empty,
        });
    }
    Ok(b.build())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators::{generate_grid, GridMapSpec};
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    #[test]
    fn roundtrip_preserves_everything() {
        let net = generate_grid(
            &GridMapSpec::jittered(1000.0, 20.0),
            &mut SmallRng::seed_from_u64(4),
        );
        let text = to_map_text(&net);
        let back = from_map_text(&text).unwrap();
        assert_eq!(net.intersection_count(), back.intersection_count());
        assert_eq!(net.road_count(), back.road_count());
        for (a, b) in net.intersections().iter().zip(back.intersections()) {
            assert_eq!(a.pos, b.pos);
        }
        for (a, b) in net.roads().iter().zip(back.roads()) {
            assert_eq!((a.a, a.b, a.class), (b.a, b.b, b.class));
        }
    }

    #[test]
    fn comments_and_blanks_ignored() {
        let text = "# header\n\nnode 0 0\n  # indented comment\nnode 100 0\nroad 0 1 artery\n";
        let net = from_map_text(text).unwrap();
        assert_eq!(net.intersection_count(), 2);
        assert_eq!(net.road(crate::graph::RoadId(0)).class, RoadClass::Artery);
    }

    #[test]
    fn error_reporting_carries_line_numbers() {
        let cases: &[(&str, usize)] = &[
            ("node 0 0\nwibble 1 2\n", 2),
            ("node 0 0\nnode abc 0\n", 2),
            ("node 0 0\nnode 1 1\nroad 0 5 artery\n", 3),
            ("node 0 0\nnode 1 1\nroad 0 1 freeway\n", 3),
            ("node 0 0\nnode 0 1\nroad 0 1\n", 3),
        ];
        for (text, line) in cases {
            let err = from_map_text(text).unwrap_err();
            assert_eq!(err.line, *line, "{text:?} → {err}");
        }
    }

    #[test]
    fn empty_map_rejected() {
        let err = from_map_text("# nothing here\n").unwrap_err();
        assert_eq!(err.kind, MapParseErrorKind::Empty);
    }

    #[test]
    fn display_is_informative() {
        let err = from_map_text("node 0 0\nroad 0 9 normal\n").unwrap_err();
        let s = err.to_string();
        assert!(s.contains("line 2"));
        assert!(s.contains("unknown node 9"));
    }
}
