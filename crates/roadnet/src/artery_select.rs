//! Main-artery selection (paper §2.1.1).
//!
//! The paper's partition procedure starts from an *unclassified* digital map:
//!
//! > "First, examine the whole digital map carefully and select all main
//! > arteries … Second, we define size of the grids about 500 m × 500 m …
//! > we have to reject some main artery which had already been selected in step
//! > one or add other normal roads until size of the grids comply with our
//! > provision."
//!
//! This module implements that procedure as an algorithm instead of an act of
//! cartographic judgement. Roads are grouped into **corridors** (maximal chains of
//! near-collinear segments — the candidate "lines" a grid boundary can follow),
//! each corridor is scored by observed traffic, and a greedy sweep picks the
//! highest-traffic corridor of each axis subject to the grid-pitch constraint:
//! chosen corridors must be ≈ `target_pitch` apart, adding lower-traffic corridors
//! where necessary so no gap exceeds the pitch (the paper's "add other normal
//! roads"), and rejecting busier ones that would make grids too small (the
//! paper's "reject some main artery").

use crate::graph::{RoadClass, RoadId, RoadNetwork};
use serde::{Deserialize, Serialize};
use vanet_geo::Cardinal;

/// A candidate grid-boundary corridor: all segments lying on one straight
/// east–west or north–south line across the map.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Corridor {
    /// The corridor's axis: `East`/`West` ⇒ a horizontal line (constant y);
    /// `North`/`South` ⇒ a vertical line (constant x). Stored normalized to
    /// `East` or `North`.
    pub axis: Cardinal,
    /// The line's constant coordinate (y for horizontal, x for vertical), meters.
    pub coordinate: f64,
    /// Member segments.
    pub roads: Vec<RoadId>,
    /// Total observed traffic over the member segments (any non-negative unit:
    /// vehicle counts, vehicle-seconds, AADT…).
    pub traffic: f64,
    /// Total corridor length, meters.
    pub length: f64,
}

impl Corridor {
    /// Traffic per meter — the density the paper eyeballs from Google Maps.
    pub fn density(&self) -> f64 {
        if self.length > 0.0 {
            self.traffic / self.length
        } else {
            0.0
        }
    }
}

/// Parameters of the selection sweep.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ArterySelectConfig {
    /// Desired grid pitch (the paper's ~500 m, equal to the radio range).
    pub target_pitch: f64,
    /// How far a segment's line coordinate may drift and still join a corridor
    /// (accommodates jittered maps).
    pub coordinate_tolerance: f64,
    /// Maximum deviation from axis alignment for a segment to join a corridor,
    /// radians.
    pub angle_tolerance: f64,
}

impl Default for ArterySelectConfig {
    fn default() -> Self {
        ArterySelectConfig {
            target_pitch: 500.0,
            coordinate_tolerance: 30.0,
            angle_tolerance: 0.2,
        }
    }
}

/// Groups a map's segments into straight corridors.
///
/// `traffic[r]` is the observed traffic on road `r` (index = `RoadId`); pass
/// uniform weights if no measurements exist yet.
pub fn extract_corridors(
    net: &RoadNetwork,
    traffic: &[f64],
    cfg: &ArterySelectConfig,
) -> Vec<Corridor> {
    assert_eq!(
        traffic.len(),
        net.road_count(),
        "one traffic weight per road"
    );
    let mut horizontals: Vec<Corridor> = Vec::new();
    let mut verticals: Vec<Corridor> = Vec::new();

    for road in net.roads() {
        let seg = net.segment_of(road.id);
        let Some(heading) = seg.heading() else {
            continue;
        };
        let axis_east = heading
            .angle_to(Cardinal::East.into())
            .min(heading.angle_to(Cardinal::West.into()));
        let axis_north = heading
            .angle_to(Cardinal::North.into())
            .min(heading.angle_to(Cardinal::South.into()));
        let (bucket, coord, axis) = if axis_east <= cfg.angle_tolerance {
            (&mut horizontals, seg.a.midpoint(seg.b).y, Cardinal::East)
        } else if axis_north <= cfg.angle_tolerance {
            (&mut verticals, seg.a.midpoint(seg.b).x, Cardinal::North)
        } else {
            continue; // diagonal segment: not a straight grid-boundary candidate
        };
        match bucket
            .iter_mut()
            .find(|c| (c.coordinate - coord).abs() <= cfg.coordinate_tolerance)
        {
            Some(c) => {
                // Running mean keeps the corridor coordinate centered.
                let n = c.roads.len() as f64;
                c.coordinate = (c.coordinate * n + coord) / (n + 1.0);
                c.roads.push(road.id);
                c.traffic += traffic[road.id.0 as usize];
                c.length += road.length;
            }
            None => bucket.push(Corridor {
                axis,
                coordinate: coord,
                roads: vec![road.id],
                traffic: traffic[road.id.0 as usize],
                length: road.length,
            }),
        }
    }
    let mut out = horizontals;
    out.append(&mut verticals);
    for c in &mut out {
        c.roads.sort_unstable();
    }
    out.sort_by(|a, b| {
        axis_key(a.axis)
            .cmp(&axis_key(b.axis))
            .then_with(|| a.coordinate.total_cmp(&b.coordinate))
    });
    out
}

fn axis_key(c: Cardinal) -> u8 {
    match c {
        Cardinal::East | Cardinal::West => 0,
        Cardinal::North | Cardinal::South => 1,
    }
}

/// The paper's selection sweep over one axis: walk the corridors in coordinate
/// order and keep the busiest corridor per pitch window, then patch any window
/// that ended up empty with its busiest remaining corridor.
fn sweep_axis(corridors: &[&Corridor], cfg: &ArterySelectConfig) -> Vec<usize> {
    if corridors.is_empty() {
        return Vec::new();
    }
    let lo = corridors.first().unwrap().coordinate;
    let hi = corridors.last().unwrap().coordinate;
    // Both map borders are always boundaries (the outermost corridors).
    let mut chosen: Vec<usize> = vec![0, corridors.len() - 1];
    // Interior: one winner per pitch window (lo+pitch, lo+2·pitch, …).
    let windows = ((hi - lo) / cfg.target_pitch).round() as usize;
    for w in 1..windows.max(1) {
        let center = lo + w as f64 * cfg.target_pitch;
        let half = cfg.target_pitch / 2.0;
        let best = corridors
            .iter()
            .enumerate()
            .filter(|(_, c)| (c.coordinate - center).abs() < half)
            .max_by(|a, b| {
                a.1.density()
                    .total_cmp(&b.1.density())
                    // Tie: prefer the corridor nearest the nominal grid line.
                    .then_with(|| {
                        (b.1.coordinate - center)
                            .abs()
                            .total_cmp(&(a.1.coordinate - center).abs())
                    })
            });
        if let Some((i, _)) = best {
            chosen.push(i);
        }
    }
    chosen.sort_unstable();
    chosen.dedup();
    chosen
}

/// Result of artery selection.
#[derive(Debug, Clone)]
pub struct ArterySelection {
    /// Roads to classify as arteries.
    pub artery_roads: Vec<RoadId>,
    /// The chosen corridors (for inspection/plotting).
    pub corridors: Vec<Corridor>,
}

/// Selects main arteries for `net` from observed `traffic`, per the paper's
/// procedure. Returns the roads to reclassify; apply with [`apply_selection`].
pub fn select_arteries(
    net: &RoadNetwork,
    traffic: &[f64],
    cfg: &ArterySelectConfig,
) -> ArterySelection {
    let corridors = extract_corridors(net, traffic, cfg);
    let horizontals: Vec<&Corridor> = corridors.iter().filter(|c| axis_key(c.axis) == 0).collect();
    let verticals: Vec<&Corridor> = corridors.iter().filter(|c| axis_key(c.axis) == 1).collect();

    let mut picked: Vec<Corridor> = Vec::new();
    for (group, picks) in [
        (&horizontals, sweep_axis(&horizontals, cfg)),
        (&verticals, sweep_axis(&verticals, cfg)),
    ] {
        for i in picks {
            picked.push(group[i].clone());
        }
    }
    let mut artery_roads: Vec<RoadId> = picked
        .iter()
        .flat_map(|c| c.roads.iter().copied())
        .collect();
    artery_roads.sort_unstable();
    artery_roads.dedup();
    ArterySelection {
        artery_roads,
        corridors: picked,
    }
}

/// Structural traffic estimate when no measurements exist: **edge betweenness**
/// (Brandes' algorithm) — the fraction of all-pairs shortest paths crossing each
/// road. Central through-routes score high, exactly the roads a traffic engineer
/// would call arteries, so [`select_arteries`] can run on a bare map.
pub fn shortest_path_usage(net: &RoadNetwork) -> Vec<f64> {
    use crate::graph::IntersectionId;
    let n = net.intersection_count();
    let mut usage = vec![0.0f64; net.road_count()];
    for s in 0..n as u32 {
        let src = IntersectionId(s);
        let dist = net.dijkstra(src, |r| r.length);
        // Nodes ordered by distance from the source (finite only).
        let mut order: Vec<u32> = (0..n as u32)
            .filter(|&v| dist[v as usize].is_finite())
            .collect();
        order.sort_by(|&a, &b| dist[a as usize].total_cmp(&dist[b as usize]));
        // Shortest-path counts (sigma), accumulated dependencies (delta).
        let mut sigma = vec![0.0f64; n];
        sigma[s as usize] = 1.0;
        for &v in &order {
            if v == s {
                continue;
            }
            let dv = dist[v as usize];
            let mut acc = 0.0;
            for &rid in net.incident_roads(IntersectionId(v)) {
                let road = net.road(rid);
                let u = net.other_end(rid, IntersectionId(v));
                if (dist[u.0 as usize] + road.length - dv).abs() < 1e-6 {
                    acc += sigma[u.0 as usize];
                }
            }
            sigma[v as usize] = acc;
        }
        let mut delta = vec![0.0f64; n];
        for &v in order.iter().rev() {
            if v == s || sigma[v as usize] == 0.0 {
                continue;
            }
            let dv = dist[v as usize];
            for &rid in net.incident_roads(IntersectionId(v)) {
                let road = net.road(rid);
                let u = net.other_end(rid, IntersectionId(v));
                if (dist[u.0 as usize] + road.length - dv).abs() < 1e-6 {
                    let c = sigma[u.0 as usize] / sigma[v as usize] * (1.0 + delta[v as usize]);
                    usage[rid.0 as usize] += c;
                    delta[u.0 as usize] += c;
                }
            }
        }
    }
    usage
}

/// Artery selection from map structure alone: [`select_arteries`] over
/// [`shortest_path_usage`].
pub fn select_arteries_structural(net: &RoadNetwork, cfg: &ArterySelectConfig) -> ArterySelection {
    let usage = shortest_path_usage(net);
    select_arteries(net, &usage, cfg)
}

/// Rebuilds `net` with the selection applied: chosen roads become
/// [`RoadClass::Artery`], all others [`RoadClass::Normal`].
pub fn apply_selection(net: &RoadNetwork, selection: &ArterySelection) -> RoadNetwork {
    use crate::graph::RoadNetworkBuilder;
    let mut b = RoadNetworkBuilder::new();
    for i in net.intersections() {
        b.add_intersection(i.pos);
    }
    for r in net.roads() {
        let class = if selection.artery_roads.binary_search(&r.id).is_ok() {
            RoadClass::Artery
        } else {
            RoadClass::Normal
        };
        b.add_road(r.a, r.b, class);
    }
    b.build()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators::{generate_grid, GridMapSpec};
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    /// Traffic oracle: the generator's own artery classification gets 10× weight,
    /// mimicking the paper's observed 10:1 density ratio.
    fn oracle_traffic(net: &RoadNetwork) -> Vec<f64> {
        net.roads()
            .iter()
            .map(|r| match r.class {
                RoadClass::Artery => 10.0 * r.length,
                RoadClass::Normal => 1.0 * r.length,
            })
            .collect()
    }

    /// Strips classes so selection starts from an unclassified map.
    fn unclassified(net: &RoadNetwork) -> RoadNetwork {
        use crate::graph::RoadNetworkBuilder;
        let mut b = RoadNetworkBuilder::new();
        for i in net.intersections() {
            b.add_intersection(i.pos);
        }
        for r in net.roads() {
            b.add_road(r.a, r.b, RoadClass::Normal);
        }
        b.build()
    }

    #[test]
    fn corridors_cover_the_lattice() {
        let net = generate_grid(&GridMapSpec::paper(1000.0), &mut SmallRng::seed_from_u64(0));
        let traffic = vec![1.0; net.road_count()];
        let cs = extract_corridors(&net, &traffic, &ArterySelectConfig::default());
        // 9 horizontal + 9 vertical lines on the 1 km / 125 m lattice.
        assert_eq!(cs.len(), 18);
        let segments: usize = cs.iter().map(|c| c.roads.len()).sum();
        assert_eq!(segments, net.road_count());
        // Corridors are sorted by axis then coordinate.
        for pair in cs.windows(2) {
            assert!(
                axis_key(pair[0].axis) < axis_key(pair[1].axis)
                    || pair[0].coordinate <= pair[1].coordinate
            );
        }
    }

    #[test]
    fn selection_recovers_the_true_arteries() {
        // Ground truth: the paper map's every-4th-line arteries. Feed the
        // selection an unclassified copy + the 10:1 traffic, and it must recover
        // exactly the generator's artery set.
        let truth = generate_grid(&GridMapSpec::paper(2000.0), &mut SmallRng::seed_from_u64(0));
        let blank = unclassified(&truth);
        let traffic = oracle_traffic(&truth);
        let sel = select_arteries(&blank, &traffic, &ArterySelectConfig::default());
        let rebuilt = apply_selection(&blank, &sel);
        for (a, b) in truth.roads().iter().zip(rebuilt.roads()) {
            assert_eq!(a.class, b.class, "road {} misclassified", a.id);
        }
    }

    #[test]
    fn selection_respects_pitch_with_uniform_traffic() {
        // With no traffic signal at all, the sweep still produces boundaries
        // roughly every target_pitch (the "add other normal roads" rule).
        let net = generate_grid(&GridMapSpec::paper(2000.0), &mut SmallRng::seed_from_u64(0));
        let blank = unclassified(&net);
        let traffic = vec![1.0; blank.road_count()];
        let sel = select_arteries(&blank, &traffic, &ArterySelectConfig::default());
        let horizontal_coords: Vec<f64> = sel
            .corridors
            .iter()
            .filter(|c| axis_key(c.axis) == 0)
            .map(|c| c.coordinate)
            .collect();
        assert!(horizontal_coords.len() >= 4, "{horizontal_coords:?}");
        for pair in horizontal_coords.windows(2) {
            let gap = pair[1] - pair[0];
            assert!(
                gap > 250.0 - 1.0 && gap < 750.0 + 1.0,
                "boundary gap {gap} violates the pitch: {horizontal_coords:?}"
            );
        }
    }

    #[test]
    fn jittered_maps_form_corridors() {
        let spec = GridMapSpec::jittered(1000.0, 25.0);
        let net = generate_grid(&spec, &mut SmallRng::seed_from_u64(3));
        let traffic = oracle_traffic(&net);
        let cs = extract_corridors(&net, &traffic, &ArterySelectConfig::default());
        // Jitter within tolerance must not shatter the lines.
        assert_eq!(cs.len(), 18, "corridor count {}", cs.len());
        let sel = select_arteries(
            &unclassified(&net),
            &traffic,
            &ArterySelectConfig::default(),
        );
        // The artery lines (unjittered by construction) are all recovered.
        let truth_arteries = net
            .roads()
            .iter()
            .filter(|r| r.class == RoadClass::Artery)
            .count();
        assert_eq!(sel.artery_roads.len(), truth_arteries);
    }

    #[test]
    fn density_prefers_busy_over_central() {
        // Two corridors in one window: the busier one wins even if off-center.
        let net = generate_grid(&GridMapSpec::paper(1000.0), &mut SmallRng::seed_from_u64(0));
        let blank = unclassified(&net);
        // Boost the y = 375 horizontal line (not the nominal y = 500 one).
        let mut traffic = vec![1.0; blank.road_count()];
        for r in blank.roads() {
            let seg = blank.segment_of(r.id);
            if seg.a.y == 375.0 && seg.b.y == 375.0 {
                traffic[r.id.0 as usize] = 100.0;
            }
        }
        let sel = select_arteries(&blank, &traffic, &ArterySelectConfig::default());
        let coords: Vec<f64> = sel
            .corridors
            .iter()
            .filter(|c| axis_key(c.axis) == 0)
            .map(|c| c.coordinate)
            .collect();
        assert!(
            coords.contains(&375.0),
            "busy line not selected: {coords:?}"
        );
        assert!(
            !coords.contains(&500.0),
            "nominal line selected over busy one: {coords:?}"
        );
    }

    #[test]
    fn shortest_path_usage_peaks_centrally() {
        let net = generate_grid(&GridMapSpec::paper(1000.0), &mut SmallRng::seed_from_u64(0));
        let usage = shortest_path_usage(&net);
        // The busiest road must touch the map's central area; a corner road must
        // carry strictly less.
        let center = vanet_geo::Point::new(500.0, 500.0);
        let (max_road, _) = usage
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.total_cmp(b.1))
            .unwrap();
        let seg = net.segment_of(crate::graph::RoadId(max_road as u32));
        assert!(
            seg.distance_to(center) < 300.0,
            "busiest road far from center: {seg:?}"
        );
        let corner_road = net.nearest_road(vanet_geo::Point::new(10.0, 10.0)).0;
        assert!(usage[corner_road.0 as usize] < usage[max_road]);
    }

    #[test]
    fn structural_selection_is_pitch_compliant() {
        let truth = generate_grid(&GridMapSpec::paper(1000.0), &mut SmallRng::seed_from_u64(0));
        let blank = unclassified(&truth);
        let sel = select_arteries_structural(&blank, &ArterySelectConfig::default());
        let rebuilt = apply_selection(&blank, &sel);
        // The partition over the structural arteries still yields 500 m grids.
        let p = crate::partition::Partition::build(&rebuilt, 500.0);
        assert_eq!(p.l1_dims(), (2, 2));
        // Both borders plus at least one interior corridor per axis.
        let horizontals = sel
            .corridors
            .iter()
            .filter(|c| {
                matches!(
                    c.axis,
                    vanet_geo::Cardinal::East | vanet_geo::Cardinal::West
                )
            })
            .count();
        assert!(horizontals >= 3, "only {horizontals} horizontal corridors");
    }

    #[test]
    #[should_panic(expected = "one traffic weight per road")]
    fn traffic_length_mismatch_rejected() {
        let net = generate_grid(&GridMapSpec::paper(500.0), &mut SmallRng::seed_from_u64(0));
        extract_corridors(&net, &[1.0], &ArterySelectConfig::default());
    }
}
