//! Deterministic fuzz cases: seeded random scenario knobs, shrinking, and a
//! replayable JSONL corpus format.
//!
//! A [`FuzzCase`] is the fuzzer's unit of work — a small bag of scenario knobs
//! drawn from a [`StreamId::Custom`] RNG stream so case `i` of master seed `s`
//! is identical on every machine and every run. The scenario crate converts a
//! case into a full `SimConfig`; this module only owns the knobs, the shrink
//! order, and the corpus encoding (hand-rolled JSON: the vendored serde is a
//! no-op stand-in).

use rand::rngs::SmallRng;
use rand::RngExt;
use vanet_des::{stream_rng, StreamId};

/// One fuzzer scenario: the knobs that vary across seeded runs.
#[derive(Debug, Clone, PartialEq)]
pub struct FuzzCase {
    /// Simulation master seed.
    pub seed: u64,
    /// Run RLSMP instead of HLSRG.
    pub rlsmp: bool,
    /// Square map edge, meters.
    pub map_size: f64,
    /// Vehicle count.
    pub vehicles: usize,
    /// Simulated duration, seconds.
    pub duration_s: u64,
    /// Warmup before queries start, seconds.
    pub warmup_s: u64,
    /// Fraction of vehicles that launch a query.
    pub query_fraction: f64,
    /// L1 grid edge, meters.
    pub l1_size: f64,
    /// Radio link reliability within range (1.0 = lossless).
    pub reliable_fraction: f64,
    /// Whether the RSU wired backbone is enabled (HLSRG only).
    pub wired_backbone: bool,
    /// Arm the deliberate location-table corruption hook (oracle self-test).
    pub corrupt: bool,
}

impl FuzzCase {
    /// Draws case number `ix` of the campaign keyed by `master_seed`.
    ///
    /// Every knob comes from the dedicated `StreamId::Custom(ix)` stream, so the
    /// case is a pure function of `(master_seed, ix)`.
    pub fn generate(master_seed: u64, ix: u64) -> FuzzCase {
        let mut rng: SmallRng = stream_rng(master_seed, StreamId::Custom(ix));
        FuzzCase {
            seed: rng.random(),
            rlsmp: rng.random_bool(0.5),
            map_size: *pick(&mut rng, &[1000.0, 1500.0, 2000.0, 3000.0]),
            vehicles: *pick(&mut rng, &[8, 16, 30, 60, 100]),
            duration_s: rng.random_range(20..=60),
            warmup_s: rng.random_range(5..=15),
            query_fraction: *pick(&mut rng, &[0.0, 0.05, 0.10, 0.25]),
            l1_size: *pick(&mut rng, &[250.0, 400.0, 500.0, 700.0]),
            reliable_fraction: *pick(&mut rng, &[0.85, 0.95, 1.0]),
            wired_backbone: rng.random_bool(0.8),
            corrupt: false,
        }
    }

    /// Candidate shrinks, most aggressive first. Every candidate strictly
    /// reduces some knob toward its minimum, so repeated rounds terminate.
    pub fn shrink_candidates(&self) -> Vec<FuzzCase> {
        let mut out = Vec::new();
        let mut push = |f: &dyn Fn(&mut FuzzCase)| {
            let mut c = self.clone();
            f(&mut c);
            if &c != self {
                out.push(c);
            }
        };
        push(&|c| c.vehicles = (c.vehicles / 2).max(4));
        push(&|c| c.duration_s = (c.duration_s / 2).max(15));
        push(&|c| c.map_size = (c.map_size / 2.0).max(1000.0));
        push(&|c| c.query_fraction = 0.0);
        push(&|c| c.reliable_fraction = 1.0);
        push(&|c| c.warmup_s = (c.warmup_s / 2).max(5));
        out
    }

    /// Encodes the case as one JSON line (the corpus format).
    pub fn to_jsonl(&self) -> String {
        format!(
            "{{\"seed\":{},\"rlsmp\":{},\"map_size\":{:?},\"vehicles\":{},\"duration_s\":{},\
             \"warmup_s\":{},\"query_fraction\":{:?},\"l1_size\":{:?},\
             \"reliable_fraction\":{:?},\"wired_backbone\":{},\"corrupt\":{}}}",
            self.seed,
            self.rlsmp,
            self.map_size,
            self.vehicles,
            self.duration_s,
            self.warmup_s,
            self.query_fraction,
            self.l1_size,
            self.reliable_fraction,
            self.wired_backbone,
            self.corrupt,
        )
    }

    /// Parses one corpus line; `None` for blanks, comments, or malformed lines.
    pub fn parse_line(line: &str) -> Option<FuzzCase> {
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            return None;
        }
        let body = line.strip_prefix('{')?.strip_suffix('}')?;
        let mut case = FuzzCase {
            seed: 0,
            rlsmp: false,
            map_size: 0.0,
            vehicles: 0,
            duration_s: 0,
            warmup_s: 0,
            query_fraction: 0.0,
            l1_size: 0.0,
            reliable_fraction: 1.0,
            wired_backbone: false,
            corrupt: false,
        };
        let mut required = 0u32;
        for field in body.split(',') {
            let (key, value) = field.split_once(':')?;
            let key = key.trim().strip_prefix('"')?.strip_suffix('"')?;
            let value = value.trim();
            match key {
                "seed" => case.seed = value.parse().ok()?,
                "rlsmp" => case.rlsmp = value.parse().ok()?,
                "map_size" => case.map_size = value.parse().ok()?,
                "vehicles" => case.vehicles = value.parse().ok()?,
                "duration_s" => case.duration_s = value.parse().ok()?,
                "warmup_s" => case.warmup_s = value.parse().ok()?,
                "query_fraction" => case.query_fraction = value.parse().ok()?,
                "l1_size" => case.l1_size = value.parse().ok()?,
                "reliable_fraction" => case.reliable_fraction = value.parse().ok()?,
                "wired_backbone" => case.wired_backbone = value.parse().ok()?,
                "corrupt" => case.corrupt = value.parse().ok()?,
                _ => return None,
            }
            required += 1;
        }
        (required >= 10).then_some(case)
    }

    /// A rough cost/size measure used by tests to confirm shrinking helps.
    pub fn weight(&self) -> f64 {
        self.vehicles as f64 * self.duration_s as f64 + self.map_size
    }
}

/// Uniform choice from a fixed slate (SmallRng has no slice helper).
fn pick<'a, T>(rng: &mut SmallRng, options: &'a [T]) -> &'a T {
    &options[rng.random_range(0..options.len())]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_is_deterministic_and_varies_by_index() {
        let a = FuzzCase::generate(42, 7);
        let b = FuzzCase::generate(42, 7);
        assert_eq!(a, b);
        let cases: Vec<FuzzCase> = (0..16).map(|i| FuzzCase::generate(42, i)).collect();
        assert!(
            cases.windows(2).any(|w| w[0] != w[1]),
            "16 consecutive cases were all identical"
        );
    }

    #[test]
    fn corpus_lines_round_trip() {
        for i in 0..32 {
            let mut case = FuzzCase::generate(99, i);
            case.corrupt = i % 3 == 0;
            let line = case.to_jsonl();
            assert_eq!(FuzzCase::parse_line(&line), Some(case), "line: {line}");
        }
        assert_eq!(FuzzCase::parse_line(""), None);
        assert_eq!(FuzzCase::parse_line("# comment"), None);
        assert_eq!(FuzzCase::parse_line("{\"seed\":1}"), None);
        assert_eq!(FuzzCase::parse_line("not json"), None);
    }

    #[test]
    fn shrinking_terminates_at_a_fixed_point() {
        let mut case = FuzzCase::generate(1, 3);
        let mut rounds = 0;
        while let Some(next) = case.shrink_candidates().into_iter().next() {
            assert!(next.weight() <= case.weight());
            case = next;
            rounds += 1;
            assert!(rounds < 64, "shrinking did not converge");
        }
        assert!(case.shrink_candidates().len() < 6);
    }

    #[test]
    fn generated_knobs_stay_in_range() {
        for i in 0..64 {
            let c = FuzzCase::generate(7, i);
            assert!((1000.0..=3000.0).contains(&c.map_size));
            assert!((8..=100).contains(&c.vehicles));
            assert!((20..=60).contains(&c.duration_s));
            assert!((5..=15).contains(&c.warmup_s));
            assert!((0.0..=0.25).contains(&c.query_fraction));
            assert!((250.0..=700.0).contains(&c.l1_size));
            assert!((0.85..=1.0).contains(&c.reliable_fraction));
            assert!(c.warmup_s < c.duration_s);
            assert!(!c.corrupt);
        }
    }
}
