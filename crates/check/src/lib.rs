//! # vanet-check — runtime invariant oracle + deterministic fuzz cases
//!
//! The safety net under the HLSRG simulation stack:
//!
//! * [`Oracle`] — cross-checks packet conservation, GPSR per-hop sanity and
//!   loop freedom, partition geometry, and trace/counter reconciliation while a
//!   run executes. The scenario runner drives it under its `check` cargo
//!   feature; with the feature off nothing in this crate is linked into the
//!   simulator and runs are bit-identical to a build without it.
//! * [`FuzzCase`] — seeded random scenario knobs (via `StreamId::Custom`
//!   streams), greedy shrinking, and a replayable JSONL corpus format, consumed
//!   by the `fuzz` CLI subcommand.
//!
//! This crate deliberately depends only on the layers it checks (`vanet-net`,
//! `vanet-roadnet`) — the scenario crate pulls it in as an optional dependency,
//! never the other way around.

#![warn(missing_docs)]

pub mod case;
pub mod oracle;

pub use case::FuzzCase;
pub use oracle::{class_ix, Oracle, PendingDeliver, Violation};

#[cfg(test)]
mod tests {
    use super::*;
    use vanet_des::SimDuration;
    use vanet_net::counters::PacketClass;
    use vanet_net::{Emission, NetCounters, NodeId, Transport};

    fn local(class: PacketClass) -> Emission<u32> {
        Emission {
            delay: SimDuration::from_millis(1),
            to: NodeId(0),
            transport: Transport::Local { class, payload: 0 },
        }
    }

    #[test]
    fn conservation_ledger_balances_scheduled_against_consumed() {
        let counters = NetCounters::new();
        let e = local(PacketClass::Update);

        // 3 scheduled, 2 consumed (but never resolved), 1 left over: the
        // schedule/consume side balances, the outcome side must flag the two
        // deliveries that never resolved to an arrival/forward/drop.
        let mut o = Oracle::new();
        o.note_emissions::<u32>(&[e.clone(), e.clone(), e.clone()]);
        o.pre_deliver(&e.transport, &counters);
        o.pre_deliver(&e.transport, &counters);
        o.end_of_run([1, 0, 0, 0]);
        assert!(o.violation().is_some());

        // A fully leftover queue reconciles with no consumption at all.
        let mut idle = Oracle::new();
        idle.note_emissions::<u32>(&[e.clone(), e]);
        idle.end_of_run([2, 0, 0, 0]);
        assert!(idle.violation().is_none());
    }

    #[test]
    fn unbalanced_ledger_is_reported_once() {
        let e = local(PacketClass::Query);
        let mut o = Oracle::new();
        o.note_emission(&e);
        o.end_of_run([0; 4]); // scheduled 1, consumed 0, leftover 0
        let v = o.violation().expect("imbalance detected");
        assert_eq!(v.invariant, "packet-conservation");
        let first = v.detail.clone();
        o.report("other", "second violation".into());
        assert_eq!(o.violation().unwrap().detail, first, "first violation wins");
        assert!(o.into_violation().is_some());
    }

    #[test]
    fn partition_checks_pass_on_a_paper_grid() {
        use rand::rngs::SmallRng;
        use rand::SeedableRng;
        use vanet_roadnet::generators::{generate_grid, GridMapSpec};
        use vanet_roadnet::partition::Partition;

        let net = generate_grid(&GridMapSpec::paper(2000.0), &mut SmallRng::seed_from_u64(1));
        let p = Partition::build(&net, 500.0);
        let mut o = Oracle::new();
        let positions: Vec<vanet_geo::Point> = p.rsus().iter().map(|s| s.pos).collect();
        o.check_partition(&p, Some(&positions));
        assert!(o.violation().is_none(), "{:?}", o.violation());

        // A displaced RSU registration is caught.
        let mut shifted = positions;
        shifted[0].x += 10.0;
        let mut o = Oracle::new();
        o.check_partition(&p, Some(&shifted));
        assert_eq!(o.violation().unwrap().invariant, "partition-rsu");
    }
}
