//! The runtime invariant oracle.
//!
//! The scenario runner (under its `check` feature) threads every emission,
//! delivery, and end-of-run state through an [`Oracle`]; the oracle cross-checks
//! them against the simulator's core invariants and records the **first**
//! violation it sees. A violated run still completes — the harness surfaces the
//! violation out-of-band so the fuzzer can shrink the offending configuration
//! instead of dying mid-run.
//!
//! Invariants covered here:
//!
//! * **Packet conservation** — per class, every scheduled `Deliver` is either
//!   consumed by the harness or still queued at the horizon, and every consumed
//!   GPSR delivery resolves to exactly one of {arrival, one forward, one drop}.
//! * **GPSR per-hop sanity / loop freedom** — TTL strictly decreases on every
//!   forward (a finite hop budget, hence no infinite loop), recovery hop counts
//!   stay within [`vanet_net::gpsr::MAX_RECOVERY_HOPS`], every hop spans at most
//!   the radio range, and a greedy→greedy step strictly reduces the distance to
//!   the destination (greedy progress is monotone).
//! * **Partition geometry** — every sampled map point lies in exactly one L1
//!   grid, the 4-L1 ⊂ L2 ⊂ L3 nesting is exact, and each L2/L3 center hosts an
//!   RSU that is wired to its parent.
//! * **Trace/counter reconciliation** — when a tracer rode along without ring
//!   overflow, the metrics registry rebuilt from events must agree with the
//!   `NetCounters` totals per class and drop cause.

use vanet_net::counters::PacketClass;
use vanet_net::gpsr::MAX_RECOVERY_HOPS;
use vanet_net::{Emission, GpsrHeader, GpsrMode, NetCounters, NetworkCore, NodeId, Transport};
use vanet_roadnet::partition::{L1Id, L2Id, L3Id, Partition, RsuLevel};

/// Slack (m) tolerated on geometric comparisons (radio range, greedy progress).
const GEOM_EPS: f64 = 1e-6;

/// One broken invariant.
#[derive(Debug, Clone)]
pub struct Violation {
    /// Stable machine-readable invariant name (e.g. `"packet-conservation"`).
    pub invariant: &'static str,
    /// Human-readable specifics: where, what, by how much.
    pub detail: String,
}

impl std::fmt::Display for Violation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}: {}", self.invariant, self.detail)
    }
}

/// Snapshot taken just before a `Deliver` event is handed to the network core,
/// consumed by [`Oracle::post_deliver`] right after.
#[derive(Debug)]
pub struct PendingDeliver {
    class: PacketClass,
    /// The GPSR header as it was *before* this hop processed it.
    gpsr: Option<GpsrHeader>,
    /// Per-class drop counter before the hop.
    drops_before: u64,
}

/// The invariant oracle: a per-class packet ledger plus per-hop checks.
///
/// Only the first violation is kept; later ones are usually cascades of the
/// first and would bury it.
#[derive(Debug, Default)]
pub struct Oracle {
    /// `Deliver` emissions scheduled onto the event queue, per class.
    scheduled: [u64; 4],
    /// `Deliver` events popped and handed to the core, per class.
    consumed: [u64; 4],
    /// Consumed deliveries that arrived at a protocol, per class.
    arrivals: [u64; 4],
    /// Consumed GPSR deliveries that produced exactly one onward hop, per class.
    forwards: [u64; 4],
    /// Consumed GPSR deliveries that ended in a routing drop, per class.
    route_drops: [u64; 4],
    violation: Option<Violation>,
}

/// Dense index of a transport's accounting class.
pub fn class_ix<P>(t: &Transport<P>) -> usize {
    match t {
        Transport::Local { class, .. } => class.index(),
        Transport::Gpsr { class, .. } => class.index(),
    }
}

impl Oracle {
    /// A fresh oracle with empty ledgers and no violation.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records a violation; only the first one is kept.
    pub fn report(&mut self, invariant: &'static str, detail: String) {
        if self.violation.is_none() {
            self.violation = Some(Violation { invariant, detail });
        }
    }

    /// The first recorded violation, if any.
    pub fn violation(&self) -> Option<&Violation> {
        self.violation.as_ref()
    }

    /// Consumes the oracle, yielding the first recorded violation.
    pub fn into_violation(self) -> Option<Violation> {
        self.violation
    }

    /// Ledger hook: the harness is about to schedule these emissions.
    pub fn note_emissions<P>(&mut self, emissions: &[Emission<P>]) {
        for e in emissions {
            self.scheduled[class_ix(&e.transport)] += 1;
        }
    }

    /// Ledger hook: one emission is about to be scheduled.
    pub fn note_emission<P>(&mut self, e: &Emission<P>) {
        self.scheduled[class_ix(&e.transport)] += 1;
    }

    /// Called right before a popped `Deliver` event enters the network core.
    pub fn pre_deliver<P>(&mut self, t: &Transport<P>, counters: &NetCounters) -> PendingDeliver {
        let ix = class_ix(t);
        self.consumed[ix] += 1;
        let (class, gpsr) = match t {
            Transport::Local { class, .. } => (*class, None),
            Transport::Gpsr { header, class, .. } => (*class, Some(*header)),
        };
        PendingDeliver {
            class,
            gpsr,
            drops_before: counters.drop_count(class),
        }
    }

    /// Called right after the core processed the delivery started in
    /// [`Oracle::pre_deliver`]: `arrived_at` is the protocol handoff node (if
    /// any) and `followups` are the onward emissions the harness will schedule.
    ///
    /// The caller must still [`Oracle::note_emissions`] the followups (or use
    /// this method's bookkeeping — it counts them itself).
    pub fn post_deliver<P>(
        &mut self,
        core: &NetworkCore,
        at: NodeId,
        pending: PendingDeliver,
        arrived: bool,
        followups: &[Emission<P>],
    ) {
        self.note_emissions(followups);
        let ix = pending.class.index();
        let drop_delta = core
            .counters
            .drop_count(pending.class)
            .saturating_sub(pending.drops_before);

        let Some(before) = pending.gpsr else {
            // Final-hop local delivery: must arrive, no onward traffic, no drop.
            if !arrived || !followups.is_empty() || drop_delta != 0 {
                self.report(
                    "packet-conservation",
                    format!(
                        "local {:?} delivery at node {}: arrived={} followups={} drops+={}",
                        pending.class,
                        at.0,
                        arrived,
                        followups.len(),
                        drop_delta
                    ),
                );
            } else {
                self.arrivals[ix] += 1;
            }
            return;
        };

        // A consumed GPSR hop resolves to exactly one of: arrival, one onward
        // GPSR emission, or one routing drop.
        let gpsr_followups: Vec<&Emission<P>> = followups
            .iter()
            .filter(|e| matches!(e.transport, Transport::Gpsr { .. }))
            .collect();
        let outcomes = u32::from(arrived) + gpsr_followups.len() as u32 + u32::from(drop_delta > 0);
        if outcomes != 1 || drop_delta > 1 || followups.len() != gpsr_followups.len() {
            self.report(
                "packet-conservation",
                format!(
                    "gpsr {:?} hop at node {}: arrived={} onward={} non-gpsr={} drops+={} \
                     (want exactly one outcome)",
                    pending.class,
                    at.0,
                    arrived,
                    gpsr_followups.len(),
                    followups.len() - gpsr_followups.len(),
                    drop_delta
                ),
            );
            return;
        }
        if arrived {
            self.arrivals[ix] += 1;
            return;
        }
        if drop_delta == 1 {
            self.route_drops[ix] += 1;
            return;
        }

        // Forwarded: per-hop GPSR sanity.
        self.forwards[ix] += 1;
        let fwd = gpsr_followups[0];
        let Transport::Gpsr { header: after, .. } = &fwd.transport else {
            unreachable!("filtered to gpsr transports");
        };
        if after.ttl >= before.ttl {
            self.report(
                "gpsr-loop-freedom",
                format!(
                    "node {} forwarded {:?} without decreasing ttl ({} -> {})",
                    at.0, pending.class, before.ttl, after.ttl
                ),
            );
        }
        if after.recovery_hops > MAX_RECOVERY_HOPS {
            self.report(
                "gpsr-loop-freedom",
                format!(
                    "node {} exceeded the recovery hop budget: {} > {}",
                    at.0, after.recovery_hops, MAX_RECOVERY_HOPS
                ),
            );
        }
        if after.prev != Some(at) {
            self.report(
                "gpsr-loop-freedom",
                format!(
                    "forwarded header's prev pointer is {:?}, expected the forwarder {}",
                    after.prev, at.0
                ),
            );
        }
        let here = core.registry.pos(at);
        let next = core.registry.pos(fwd.to);
        let span = here.distance(next);
        if span > core.radio.range + GEOM_EPS {
            self.report(
                "gpsr-hop-range",
                format!(
                    "hop {} -> {} spans {:.1} m, beyond the {:.1} m radio range",
                    at.0, fwd.to.0, span, core.radio.range
                ),
            );
        }
        if matches!(before.mode, GpsrMode::Greedy) && matches!(after.mode, GpsrMode::Greedy) {
            let my_d = here.distance(after.dst_pos);
            let next_d = next.distance(after.dst_pos);
            if next_d >= my_d + GEOM_EPS {
                self.report(
                    "gpsr-greedy-progress",
                    format!(
                        "greedy hop {} -> {} moved away from the destination \
                         ({:.2} m -> {:.2} m)",
                        at.0, fwd.to.0, my_d, next_d
                    ),
                );
            }
        }
    }

    /// End-of-run conservation: per class, scheduled deliveries must equal
    /// consumed plus those still queued at the horizon, and every consumed
    /// delivery must have resolved to exactly one outcome.
    pub fn end_of_run(&mut self, leftover: [u64; 4]) {
        for (ix, class) in PacketClass::ALL.iter().enumerate() {
            let scheduled = self.scheduled[ix];
            let consumed = self.consumed[ix];
            if scheduled != consumed + leftover[ix] {
                self.report(
                    "packet-conservation",
                    format!(
                        "{class:?}: scheduled {} deliveries but consumed {} with {} left in \
                         the queue",
                        scheduled, consumed, leftover[ix]
                    ),
                );
            }
            let resolved = self.arrivals[ix] + self.forwards[ix] + self.route_drops[ix];
            if resolved != consumed {
                self.report(
                    "packet-conservation",
                    format!(
                        "{class:?}: {} consumed deliveries resolved to {} outcomes \
                         ({} arrivals + {} forwards + {} drops)",
                        consumed,
                        resolved,
                        self.arrivals[ix],
                        self.forwards[ix],
                        self.route_drops[ix]
                    ),
                );
            }
        }
    }

    /// Static partition geometry: exhaustive grid-cell structure checks plus a
    /// deterministic sample of interior points.
    ///
    /// `rsu_positions` supplies the registered network position per `RsuId`
    /// index when RSUs are instantiated as nodes (HLSRG runs); pass `None` for
    /// protocols without an RSU backbone.
    pub fn check_partition(&mut self, p: &Partition, rsu_positions: Option<&[vanet_geo::Point]>) {
        let (nx1, ny1) = p.l1_dims();
        let b0 = p.l1_bbox(L1Id(0));
        let size = p.l1_size();
        let (ox, oy) = (b0.min_x, b0.min_y);
        let (w, h) = (nx1 as f64 * size, ny1 as f64 * size);

        // Deterministic interior sample: off-lattice fractions so no point sits
        // on a cell boundary.
        let steps = 23usize;
        for i in 0..steps {
            for j in 0..steps {
                let fx = (i as f64 + 0.382) / steps as f64;
                let fy = (j as f64 + 0.618) / steps as f64;
                let pt = vanet_geo::Point::new(ox + fx * w, oy + fy * h);
                let l1 = p.l1_of(pt);
                let mut hits = 0u32;
                let mut hit_id = None;
                for ix in 0..p.l1_count() {
                    if p.l1_bbox(L1Id(ix as u32)).contains(pt) {
                        hits += 1;
                        hit_id = Some(L1Id(ix as u32));
                    }
                }
                if hits != 1 || hit_id != Some(l1) {
                    self.report(
                        "partition-coverage",
                        format!(
                            "point ({:.2}, {:.2}) lies in {hits} L1 boxes (l1_of says {:?}, \
                             boxes say {:?})",
                            pt.x, pt.y, l1, hit_id
                        ),
                    );
                    return;
                }
            }
        }

        // Nesting: each L1 box sits inside its L2 parent's box, each L2 inside
        // its L3 parent's, and parents have between 1 and 4 children (exactly 4
        // when the child grid dimensions are even).
        let mut l2_children = vec![0u32; p.l2_count()];
        for ix in 0..p.l1_count() {
            let l1 = L1Id(ix as u32);
            let l2 = p.l1_to_l2(l1);
            l2_children[l2.0 as usize] += 1;
            let (cb, pb) = (p.l1_bbox(l1), p.l2_bbox(l2));
            if cb.min_x < pb.min_x
                || cb.min_y < pb.min_y
                || cb.max_x > pb.max_x + GEOM_EPS
                || cb.max_y > pb.max_y + GEOM_EPS
            {
                self.report(
                    "partition-nesting",
                    format!("L1 {:?} box escapes its L2 parent {:?}", l1, l2),
                );
            }
        }
        let mut l3_children = vec![0u32; p.l3_count()];
        for ix in 0..p.l2_count() {
            let l2 = L2Id(ix as u32);
            let l3 = p.l2_to_l3(l2);
            l3_children[l3.0 as usize] += 1;
            let (cb, pb) = (p.l2_bbox(l2), p.l3_bbox(l3));
            if cb.min_x < pb.min_x
                || cb.min_y < pb.min_y
                || cb.max_x > pb.max_x + GEOM_EPS
                || cb.max_y > pb.max_y + GEOM_EPS
            {
                self.report(
                    "partition-nesting",
                    format!("L2 {:?} box escapes its L3 parent {:?}", l2, l3),
                );
            }
        }
        let l2_exact = nx1 % 2 == 0 && ny1 % 2 == 0;
        let (nx2, ny2) = p.l2_dims();
        let l3_exact = nx2 % 2 == 0 && ny2 % 2 == 0;
        for (ix, &n) in l2_children.iter().enumerate() {
            if n == 0 || n > 4 || (l2_exact && n != 4) {
                self.report(
                    "partition-nesting",
                    format!(
                        "L2 {ix} has {n} L1 children (want {})",
                        if l2_exact { "4" } else { "1..=4" }
                    ),
                );
            }
        }
        for (ix, &n) in l3_children.iter().enumerate() {
            if n == 0 || n > 4 || (l3_exact && n != 4) {
                self.report(
                    "partition-nesting",
                    format!(
                        "L3 {ix} has {n} L2 children (want {})",
                        if l3_exact { "4" } else { "1..=4" }
                    ),
                );
            }
        }

        // RSU placement: every L2/L3 region's center site exists at the right
        // level, L2 sites are wired to their L3 parent, and (when instantiated
        // as nodes) the registry agrees on positions.
        for ix in 0..p.l2_count() {
            let l2 = L2Id(ix as u32);
            let site = &p.rsus()[p.rsu_of_l2(l2).0 as usize];
            if site.level != RsuLevel::L2 || site.l2 != Some(l2) {
                self.report(
                    "partition-rsu",
                    format!("L2 {ix} center RSU is mis-labeled: {site:?}"),
                );
            }
            let parent = p.rsu_of_l3(p.l2_to_l3(l2));
            if !p.are_wired(site.id, parent) {
                self.report(
                    "partition-rsu",
                    format!("L2 {ix} RSU is not wired to its L3 parent {:?}", parent),
                );
            }
        }
        for ix in 0..p.l3_count() {
            let l3 = L3Id(ix as u32);
            let site = &p.rsus()[p.rsu_of_l3(l3).0 as usize];
            if site.level != RsuLevel::L3 || site.l3 != l3 {
                self.report(
                    "partition-rsu",
                    format!("L3 {ix} center RSU is mis-labeled: {site:?}"),
                );
            }
        }
        if let Some(positions) = rsu_positions {
            if positions.len() != p.rsus().len() {
                self.report(
                    "partition-rsu",
                    format!(
                        "registry instantiated {} RSU nodes but the partition has {} sites",
                        positions.len(),
                        p.rsus().len()
                    ),
                );
            } else {
                for (site, &pos) in p.rsus().iter().zip(positions) {
                    if site.pos.distance(pos) > GEOM_EPS {
                        self.report(
                            "partition-rsu",
                            format!(
                                "RSU {:?} registered at ({:.1}, {:.1}) but sited at \
                                 ({:.1}, {:.1})",
                                site.id, pos.x, pos.y, site.pos.x, site.pos.y
                            ),
                        );
                    }
                }
            }
        }
    }

    /// Trace/counter reconciliation: when a complete (no ring overflow) event
    /// trace rode along, the per-class aggregates rebuilt from events must match
    /// the live counters.
    pub fn check_counter_reconciliation(&mut self, core: &NetworkCore) {
        let Some(tracer) = core.tracer.as_deref() else {
            return;
        };
        if tracer.overwritten() > 0 {
            return; // partial trace: totals legitimately diverge
        }
        let m = &tracer.metrics;
        for class in PacketClass::ALL {
            let c = class.index() as u8;
            let pairs = [
                ("radio", m.radio(c), core.counters.radio(class)),
                (
                    "originated",
                    m.originated(c),
                    core.counters.origination_count(class),
                ),
                ("wired", m.wired(c), core.counters.wired(class)),
                ("drops", m.drops(c), core.counters.drop_count(class)),
            ];
            for (name, traced, counted) in pairs {
                if traced != counted {
                    self.report(
                        "trace-reconciliation",
                        format!("{class:?}/{name}: trace says {traced}, counters say {counted}"),
                    );
                }
            }
        }
        let traced_causes = m.drops_by_cause();
        let counted_causes = core.counters.drop_breakdown();
        if traced_causes != counted_causes {
            self.report(
                "trace-reconciliation",
                format!(
                    "drop causes diverge: trace {traced_causes:?} vs counters {counted_causes:?}"
                ),
            );
        }
    }
}
