//! # vanet-trace — observability for the HLSRG simulation stack
//!
//! Three pieces, all zero-overhead when unused:
//!
//! * **Structured event trace** ([`TraceEvent`], [`EventRing`]): per-packet
//!   lifecycle records (originated → radio/wired hops → delivered or dropped
//!   with cause) and per-query lifecycle records (launch → level-center visits →
//!   routing decisions → directional/region broadcast → answer), buffered in a
//!   preallocated ring and exportable as JSONL.
//! * **Metrics registry** ([`MetricsRegistry`]): per-node and per-grid-level
//!   aggregates (counters, Welford latency stats, histograms) derived from the
//!   same event stream, reusing `vanet_des::stats`.
//! * **Timing spans** ([`PhaseTimings`]): wall-clock accounting of DES hot
//!   phases, compiled in only under the `trace` cargo feature.
//!
//! The network layer holds an `Option<Box<Tracer>>`; when it is `None` the only
//! cost per potential event is one pointer test. Events are emitted at exactly
//! the sites where `NetCounters` are bumped, so a JSONL export reconciles
//! exactly with a run's counter report (up to ring overflow, which is counted).

#![warn(missing_docs)]

pub mod event;
pub mod registry;
pub mod ring;
pub mod span;
pub mod telemetry;

pub use event::{
    cause_name, class_name, reason_name, TraceEvent, CAUSE_NAMES, CLASS_NAMES, REASON_NAMES,
};
pub use registry::{LevelSummary, MetricsRegistry, NodeMetrics};
pub use ring::EventRing;
pub use span::{Phase, PhaseSummary, PhaseTimings, PHASE_COUNT};
pub use telemetry::{
    parse_telemetry_jsonl, telemetry_to_jsonl, QuantileWindow, TelemetrySample, TelemetrySampler,
    TelemetrySnapshot,
};

use vanet_des::SimTime;

/// Default ring capacity: roomy enough that smoke-scale runs never wrap.
pub const DEFAULT_RING_CAPACITY: usize = 1 << 20;

/// The recording façade: a clock, an event ring, and the metrics registry.
#[derive(Debug)]
pub struct Tracer {
    now: SimTime,
    ring: EventRing,
    /// Aggregates folded from every recorded event.
    pub metrics: MetricsRegistry,
}

impl Default for Tracer {
    fn default() -> Self {
        Self::new(DEFAULT_RING_CAPACITY)
    }
}

impl Tracer {
    /// Creates a tracer whose ring holds `capacity` events.
    pub fn new(capacity: usize) -> Self {
        Tracer {
            now: SimTime::ZERO,
            ring: EventRing::new(capacity),
            metrics: MetricsRegistry::new(),
        }
    }

    /// Sets the current simulation time; the harness calls this once per
    /// popped event so emit sites don't need to thread `now` through.
    #[inline]
    pub fn set_now(&mut self, t: SimTime) {
        self.now = t;
    }

    /// The clock value last set by the harness.
    #[inline]
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Records one event into the ring and the registry.
    #[inline]
    pub fn record(&mut self, ev: TraceEvent) {
        self.metrics.observe(&ev);
        self.ring.push(ev);
    }

    /// Events currently buffered, oldest first.
    pub fn events(&self) -> impl Iterator<Item = &TraceEvent> {
        self.ring.iter()
    }

    /// Number of buffered events.
    pub fn len(&self) -> usize {
        self.ring.len()
    }

    /// True if nothing was recorded.
    pub fn is_empty(&self) -> bool {
        self.ring.is_empty()
    }

    /// Events lost to ring overflow (0 means the export is complete).
    pub fn overwritten(&self) -> u64 {
        self.ring.overwritten()
    }

    /// Writes the buffered events as JSONL.
    pub fn write_jsonl<W: std::io::Write>(&self, w: &mut W) -> std::io::Result<()> {
        for ev in self.ring.iter() {
            writeln!(w, "{}", ev.to_jsonl())?;
        }
        Ok(())
    }

    /// The buffered events as one JSONL string.
    pub fn to_jsonl(&self) -> String {
        let mut s = String::new();
        for ev in self.ring.iter() {
            s.push_str(&ev.to_jsonl());
            s.push('\n');
        }
        s
    }
}

/// Parses JSONL text back into events, skipping blank/unknown lines.
pub fn parse_jsonl(text: &str) -> Vec<TraceEvent> {
    text.lines().filter_map(TraceEvent::parse_line).collect()
}

/// The trailer a trace export appends when the ring overflowed, so readers can
/// tell a complete export from a truncated one.
pub fn truncation_line(lost: u64) -> String {
    format!("{{\"type\":\"trace_truncated\",\"lost\":{lost}}}")
}

/// Recognizes a [`truncation_line`] trailer, returning the lost-event count.
pub fn parse_truncation_line(line: &str) -> Option<u64> {
    let rest = line
        .trim()
        .strip_prefix("{\"type\":\"trace_truncated\",\"lost\":")?;
    rest.strip_suffix('}')?.parse().ok()
}

/// Rebuilds a registry from an event stream (e.g. a parsed JSONL file).
pub fn registry_from_events<'a>(
    events: impl IntoIterator<Item = &'a TraceEvent>,
) -> MetricsRegistry {
    let mut r = MetricsRegistry::new();
    for ev in events {
        r.observe(ev);
    }
    r
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tracer_round_trips_through_jsonl() {
        let mut tr = Tracer::new(16);
        tr.set_now(SimTime::from_micros(500));
        let t = tr.now();
        tr.record(TraceEvent::Originated {
            t,
            node: 1,
            class: 2,
        });
        tr.record(TraceEvent::RadioHop {
            t,
            node: 1,
            class: 2,
            n: 3,
        });
        tr.set_now(SimTime::from_micros(900));
        let t = tr.now();
        tr.record(TraceEvent::Delivered {
            t,
            node: 4,
            class: 2,
        });
        assert_eq!(tr.len(), 3);
        assert_eq!(tr.overwritten(), 0);

        let text = tr.to_jsonl();
        assert_eq!(text.lines().count(), 3);
        let parsed = parse_jsonl(&text);
        let original: Vec<TraceEvent> = tr.events().copied().collect();
        assert_eq!(parsed, original);

        // A registry rebuilt from the export agrees with the live one.
        let rebuilt = registry_from_events(&parsed);
        assert_eq!(rebuilt.radio(2), tr.metrics.radio(2));
        assert_eq!(rebuilt.delivered(2), tr.metrics.delivered(2));
    }

    #[test]
    fn truncation_trailer_round_trips() {
        assert_eq!(parse_truncation_line(&truncation_line(42)), Some(42));
        assert_eq!(parse_truncation_line(&truncation_line(0)), Some(0));
        assert_eq!(parse_truncation_line("{\"type\":\"originated\"}"), None);
        assert_eq!(parse_truncation_line("junk"), None);
        // The trailer is not mistaken for a trace event by the lenient parser.
        assert!(TraceEvent::parse_line(&truncation_line(7)).is_none());
    }

    #[test]
    fn write_jsonl_matches_to_jsonl() {
        let mut tr = Tracer::new(4);
        tr.record(TraceEvent::QueryAnswered {
            t: SimTime::ZERO,
            query: 1,
        });
        let mut buf = Vec::new();
        tr.write_jsonl(&mut buf).unwrap();
        assert_eq!(String::from_utf8(buf).unwrap(), tr.to_jsonl());
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    fn ts() -> impl Strategy<Value = SimTime> {
        (0u64..10_000_000).prop_map(SimTime::from_micros)
    }

    fn arb_event() -> impl Strategy<Value = TraceEvent> {
        prop_oneof![
            (ts(), any::<u32>(), 0u8..4)
                .prop_map(|(t, node, class)| { TraceEvent::Originated { t, node, class } }),
            (ts(), any::<u32>(), 0u8..4, 1u64..100)
                .prop_map(|(t, node, class, n)| { TraceEvent::RadioHop { t, node, class, n } }),
            (ts(), any::<u32>(), 0u8..4, 1u64..16).prop_map(|(t, node, class, hops)| {
                TraceEvent::WiredHop {
                    t,
                    node,
                    class,
                    hops,
                }
            }),
            (ts(), any::<u32>(), 0u8..4, 0u8..5).prop_map(|(t, node, class, cause)| {
                TraceEvent::Dropped {
                    t,
                    node,
                    class,
                    cause,
                }
            }),
            (ts(), any::<u32>(), 0u8..4)
                .prop_map(|(t, node, class)| { TraceEvent::Delivered { t, node, class } }),
            (ts(), any::<u64>(), any::<u32>(), any::<u32>(), 1u8..4).prop_map(
                |(t, query, src, dst, level)| TraceEvent::QueryLaunched {
                    t,
                    query,
                    src,
                    dst,
                    level
                }
            ),
            (ts(), any::<u64>(), 1u8..4, any::<bool>()).prop_map(|(t, query, level, hit)| {
                TraceEvent::LevelVisit {
                    t,
                    query,
                    level,
                    hit,
                }
            }),
            (ts(), any::<u64>(), 0u8..4, 1u8..4).prop_map(|(t, query, from_level, to_level)| {
                TraceEvent::RouteDecision {
                    t,
                    query,
                    from_level,
                    to_level,
                }
            }),
            (ts(), any::<u64>(), any::<bool>()).prop_map(|(t, query, directional)| {
                TraceEvent::NotifyBroadcast {
                    t,
                    query,
                    directional,
                }
            }),
            (ts(), any::<u64>()).prop_map(|(t, query)| TraceEvent::QueryAnswered { t, query }),
            (ts(), any::<u64>()).prop_map(|(t, query)| TraceEvent::QueryRetried { t, query }),
            (ts(), any::<u32>(), any::<bool>(), 0u8..5).prop_map(|(t, vehicle, artery, reason)| {
                TraceEvent::UpdateTriggered {
                    t,
                    vehicle,
                    artery,
                    reason,
                }
            }),
        ]
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(128))]

        /// Any event survives JSONL serialization unchanged.
        #[test]
        fn jsonl_round_trip(ev in arb_event()) {
            let line = ev.to_jsonl();
            prop_assert_eq!(TraceEvent::parse_line(&line), Some(ev));
        }

        /// A ring never exceeds its capacity and `len + overwritten` equals the
        /// number of pushes; the surviving suffix is the newest events in order.
        #[test]
        fn ring_is_lossy_only_at_the_front(
            events in proptest::collection::vec(arb_event(), 0..50),
            cap in 1usize..8,
        ) {
            let mut ring = EventRing::new(cap);
            for ev in &events {
                ring.push(*ev);
            }
            prop_assert!(ring.len() <= cap);
            prop_assert_eq!(ring.len() as u64 + ring.overwritten(), events.len() as u64);
            let kept: Vec<TraceEvent> = ring.iter().copied().collect();
            let expect: Vec<TraceEvent> =
                events[events.len().saturating_sub(cap)..].to_vec();
            prop_assert_eq!(kept, expect);
        }
    }
}
