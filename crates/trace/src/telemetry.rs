//! In-simulation telemetry: a deterministic sim-time sampler.
//!
//! Where the event trace ([`crate::TraceEvent`]) records *individual* packet
//! and query lifecycles, telemetry records how the *whole run* evolves over
//! simulated time: one [`TelemetrySample`] per sampling tick, covering the
//! event queue, the per-level location tables, in-flight queries, a
//! sliding-window latency distribution, the drop matrix, and a per-L3-region
//! load breakdown (the future shard key of the region-parallel DES).
//!
//! Determinism contract: the harness schedules sampling ticks as ordinary DES
//! events (see `EventQueue::schedule_periodic`), so every sample sees the
//! exact prefix of the run that precedes its tick in `(time, seq)` order.
//! Nothing here reads a wall clock — `events_per_sec` is events per *simulated*
//! second — so the JSONL stream is a pure function of (config, seed, interval)
//! and byte-identical across repeated runs.
//!
//! The sliding-window quantile estimator ([`QuantileWindow`]) wraps
//! [`vanet_des::stats::Histogram`] with removal-on-expiry, giving windowed
//! p50/p99 at fixed memory — the same estimator the ROADMAP's `serve` mode
//! needs for live SLOs.

use std::collections::VecDeque;
use vanet_des::{Histogram, SimDuration, SimTime};

/// Default sliding-latency-window span: long enough to smooth the paper's
/// multi-second query latencies, short enough to show trends within a run.
pub const DEFAULT_LATENCY_WINDOW: SimDuration = SimDuration::from_secs(30);

/// Latency histogram bin width (seconds); matches the registry's geometry.
pub const LATENCY_BIN_S: f64 = 0.1;

/// Latency histogram bin count (covers 0–30 s before overflow).
pub const LATENCY_BINS: usize = 300;

/// A sliding-window quantile estimator: a fixed-geometry [`Histogram`] whose
/// contents always equal a histogram of only the observations younger than
/// `window`. Arrivals are recorded, expirations removed; quantiles come from
/// the histogram's interpolated [`Histogram::quantile`], so the estimate is
/// exact to within one bin width of the true sorted-window percentile.
#[derive(Debug, Clone)]
pub struct QuantileWindow {
    window: SimDuration,
    hist: Histogram,
    samples: VecDeque<(SimTime, f64)>,
}

impl QuantileWindow {
    /// Creates a window of span `window` over a histogram of `bins` buckets of
    /// `bin_width` each.
    pub fn new(window: SimDuration, bin_width: f64, bins: usize) -> Self {
        QuantileWindow {
            window,
            hist: Histogram::new(bin_width, bins),
            samples: VecDeque::new(),
        }
    }

    /// Creates the standard latency window: [`DEFAULT_LATENCY_WINDOW`] span,
    /// [`LATENCY_BIN_S`] × [`LATENCY_BINS`] geometry.
    pub fn latency(window: SimDuration) -> Self {
        Self::new(window, LATENCY_BIN_S, LATENCY_BINS)
    }

    /// Records one observation stamped at time `t`. Observations must arrive
    /// in non-decreasing `t` order (the sampler feeds them per tick).
    pub fn record(&mut self, t: SimTime, x: f64) {
        debug_assert!(
            self.samples.back().is_none_or(|&(last, _)| t >= last),
            "window observations must arrive in time order"
        );
        self.samples.push_back((t, x));
        self.hist.record(x);
    }

    /// Expires every observation older than `now − window`.
    pub fn evict_before(&mut self, now: SimTime) {
        let cutoff = now.saturating_sub(self.window);
        while let Some(&(t, x)) = self.samples.front() {
            if t >= cutoff {
                break;
            }
            self.samples.pop_front();
            self.hist.remove(x);
        }
    }

    /// Live observations in the window.
    pub fn len(&self) -> usize {
        self.samples.len()
    }

    /// True when the window holds nothing.
    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }

    /// Windowed quantile `q ∈ [0, 1]`, or `None` on an empty window.
    pub fn quantile(&self, q: f64) -> Option<f64> {
        self.hist.quantile(q)
    }
}

/// One telemetry tick: the run's state as visible at that instant.
#[derive(Debug, Clone, PartialEq)]
pub struct TelemetrySample {
    /// Sample time.
    pub t: SimTime,
    /// Pending events in the DES queue at the tick.
    pub queue_depth: u64,
    /// Events processed since the start of the run (cumulative).
    pub events: u64,
    /// Events processed since the previous sample.
    pub events_delta: u64,
    /// `events_delta` per *simulated* second of the elapsed interval —
    /// deterministic, unlike any wall-clock rate.
    pub events_per_sim_sec: f64,
    /// Queries launched but not yet answered at the tick.
    pub inflight_queries: u64,
    /// Per-grid-level location-table entry totals `[L1, L2, L3]` (RLSMP maps
    /// its flat grid as `[cell, cluster, 0]`).
    pub table_entries: [u64; 3],
    /// Location-update packets originated so far (cumulative).
    pub updates: u64,
    /// Radio transmissions carrying updates so far (cumulative).
    pub update_radio: u64,
    /// Query radio transmissions so far (cumulative).
    pub query_radio: u64,
    /// Query wired traversals so far (cumulative).
    pub query_wired: u64,
    /// Sliding-window median query latency (seconds), if the window is non-empty.
    pub lat_p50: Option<f64>,
    /// Sliding-window p99 query latency (seconds), if the window is non-empty.
    pub lat_p99: Option<f64>,
    /// Completed queries inside the latency window.
    pub lat_window: u64,
    /// Cumulative drop matrix `[class][cause]`: classes
    /// `[update, collection, query, data]` × causes
    /// `[ttl, isolated, no_progress, loss, no_route]`.
    pub drops: [[u64; 5]; 4],
    /// Conservative-sync barrier epochs crossed so far (cumulative). Epochs
    /// are counted on the simulated clock against the derived lookahead, so
    /// the value is identical whatever the shard count.
    pub barriers: u64,
    /// Per-L3-region load, indexed by L3 region id: `(vehicles in region,
    /// location-table entries homed at the region's infrastructure,
    /// cumulative delivery events processed for nodes in the region)`.
    pub regions: Vec<(u64, u64, u64)>,
}

impl TelemetrySample {
    /// Encodes the sample as one JSONL line.
    pub fn to_jsonl(&self) -> String {
        let opt = |v: Option<f64>| match v {
            Some(x) => format!("{x:?}"),
            None => "null".into(),
        };
        let mut drops = String::from("[");
        for (c, row) in self.drops.iter().enumerate() {
            if c > 0 {
                drops.push(',');
            }
            drops.push('[');
            for (k, n) in row.iter().enumerate() {
                if k > 0 {
                    drops.push(',');
                }
                drops.push_str(&n.to_string());
            }
            drops.push(']');
        }
        drops.push(']');
        let mut regions = String::from("[");
        for (i, (veh, ent, ev)) in self.regions.iter().enumerate() {
            if i > 0 {
                regions.push(',');
            }
            regions.push_str(&format!("[{veh},{ent},{ev}]"));
        }
        regions.push(']');
        format!(
            "{{\"type\":\"telemetry\",\"t_us\":{},\"queue_depth\":{},\"events\":{},\
             \"events_delta\":{},\"events_per_sim_sec\":{:?},\"inflight_queries\":{},\
             \"table_entries\":[{},{},{}],\"updates\":{},\"update_radio\":{},\
             \"query_radio\":{},\"query_wired\":{},\"lat_p50\":{},\"lat_p99\":{},\
             \"lat_window\":{},\"drops\":{},\"barriers\":{},\"regions\":{}}}",
            self.t.as_micros(),
            self.queue_depth,
            self.events,
            self.events_delta,
            self.events_per_sim_sec,
            self.inflight_queries,
            self.table_entries[0],
            self.table_entries[1],
            self.table_entries[2],
            self.updates,
            self.update_radio,
            self.query_radio,
            self.query_wired,
            opt(self.lat_p50),
            opt(self.lat_p99),
            self.lat_window,
            drops,
            self.barriers,
            regions,
        )
    }

    /// Parses one JSONL line back into a sample; `None` for anything that is
    /// not a well-formed telemetry record.
    pub fn parse_line(line: &str) -> Option<TelemetrySample> {
        let line = line.trim();
        if value(line, "type")? != "\"telemetry\"" {
            return None;
        }
        let drops_txt = value(line, "drops")?;
        let drops_rows = parse_nested_array(drops_txt)?;
        if drops_rows.len() != 4 || drops_rows.iter().any(|r| r.len() != 5) {
            return None;
        }
        let mut drops = [[0u64; 5]; 4];
        for (c, row) in drops_rows.iter().enumerate() {
            for (k, v) in row.iter().enumerate() {
                drops[c][k] = *v;
            }
        }
        let regions_rows = parse_nested_array(value(line, "regions")?)?;
        let mut regions = Vec::with_capacity(regions_rows.len());
        for row in &regions_rows {
            if row.len() != 3 {
                return None;
            }
            regions.push((row[0], row[1], row[2]));
        }
        let tables = parse_flat_array(value(line, "table_entries")?)?;
        if tables.len() != 3 {
            return None;
        }
        let num = |key: &str| value(line, key)?.parse::<u64>().ok();
        let opt_f64 = |key: &str| -> Option<Option<f64>> {
            let v = value(line, key)?;
            if v == "null" {
                Some(None)
            } else {
                Some(Some(v.parse().ok()?))
            }
        };
        Some(TelemetrySample {
            t: SimTime::from_micros(num("t_us")?),
            queue_depth: num("queue_depth")?,
            events: num("events")?,
            events_delta: num("events_delta")?,
            events_per_sim_sec: value(line, "events_per_sim_sec")?.parse().ok()?,
            inflight_queries: num("inflight_queries")?,
            table_entries: [tables[0], tables[1], tables[2]],
            updates: num("updates")?,
            update_radio: num("update_radio")?,
            query_radio: num("query_radio")?,
            query_wired: num("query_wired")?,
            lat_p50: opt_f64("lat_p50")?,
            lat_p99: opt_f64("lat_p99")?,
            lat_window: num("lat_window")?,
            drops,
            barriers: num("barriers")?,
            regions,
        })
    }
}

/// Extracts the raw text of `"key":VALUE`, where VALUE may be a scalar,
/// string, or (nested) array — commas inside brackets don't terminate it.
fn value<'a>(line: &'a str, key: &str) -> Option<&'a str> {
    let pat = format!("\"{key}\":");
    let start = line.find(&pat)? + pat.len();
    let rest = line[start..].trim_start();
    let bytes = rest.as_bytes();
    let mut depth = 0usize;
    let mut in_str = false;
    for (i, &b) in bytes.iter().enumerate() {
        match b {
            b'"' => in_str = !in_str,
            b'[' if !in_str => depth += 1,
            b']' if !in_str => {
                if depth == 0 {
                    return Some(rest[..i].trim());
                }
                depth -= 1;
            }
            b',' | b'}' if !in_str && depth == 0 => return Some(rest[..i].trim()),
            _ => {}
        }
    }
    None
}

/// Parses `[1,2,3]` into numbers.
fn parse_flat_array(text: &str) -> Option<Vec<u64>> {
    let body = text.trim().strip_prefix('[')?.strip_suffix(']')?.trim();
    if body.is_empty() {
        return Some(Vec::new());
    }
    body.split(',').map(|v| v.trim().parse().ok()).collect()
}

/// Parses `[[1,2],[3,4]]` into rows of numbers.
fn parse_nested_array(text: &str) -> Option<Vec<Vec<u64>>> {
    let body = text.trim().strip_prefix('[')?.strip_suffix(']')?.trim();
    if body.is_empty() {
        return Some(Vec::new());
    }
    let mut rows = Vec::new();
    let mut rest = body;
    loop {
        let rest2 = rest.trim_start().strip_prefix('[')?;
        let end = rest2.find(']')?;
        rows.push(parse_flat_array(&format!("[{}]", &rest2[..end]))?);
        rest = rest2[end + 1..].trim_start();
        if rest.is_empty() {
            return Some(rows);
        }
        rest = rest.strip_prefix(',')?;
    }
}

/// What the harness hands the sampler at each tick: a snapshot of the counters
/// and tables as they stand at that instant. The harness assembles it from the
/// event queue, `NetCounters`, the protocol's table-size hooks, and the node
/// registry — the sampler itself never touches simulation state.
#[derive(Debug, Clone, Default)]
pub struct TelemetrySnapshot {
    /// Pending events in the DES queue.
    pub queue_depth: u64,
    /// Cumulative events processed.
    pub events: u64,
    /// Open (launched, unanswered) queries.
    pub inflight_queries: u64,
    /// Per-level location-table entry totals `[L1, L2, L3]`.
    pub table_entries: [u64; 3],
    /// Cumulative update originations.
    pub updates: u64,
    /// Cumulative update radio transmissions.
    pub update_radio: u64,
    /// Cumulative query radio transmissions.
    pub query_radio: u64,
    /// Cumulative query wired traversals.
    pub query_wired: u64,
    /// Cumulative drop matrix `[class][cause]`.
    pub drops: [[u64; 5]; 4],
    /// Cumulative conservative-sync barrier epochs.
    pub barriers: u64,
    /// Per-L3-region `(vehicles, table entries, delivery events)`.
    pub regions: Vec<(u64, u64, u64)>,
}

/// The sampling façade: owns the sliding latency window and the accumulated
/// time series. The harness drives it with [`TelemetrySampler::note_latency`]
/// as queries complete and [`TelemetrySampler::sample`] at each tick.
#[derive(Debug, Clone)]
pub struct TelemetrySampler {
    interval: SimDuration,
    window: QuantileWindow,
    samples: Vec<TelemetrySample>,
    last_t: SimTime,
    last_events: u64,
}

impl TelemetrySampler {
    /// Creates a sampler ticking every `interval`, with the standard latency
    /// window geometry.
    ///
    /// # Panics
    ///
    /// Panics on a zero interval.
    pub fn new(interval: SimDuration) -> Self {
        assert!(interval > SimDuration::ZERO, "telemetry needs an interval");
        TelemetrySampler {
            interval,
            window: QuantileWindow::latency(DEFAULT_LATENCY_WINDOW),
            samples: Vec::new(),
            last_t: SimTime::ZERO,
            last_events: 0,
        }
    }

    /// The sampling interval.
    pub fn interval(&self) -> SimDuration {
        self.interval
    }

    /// Feeds one completed query's latency (seconds), stamped with its
    /// completion time, into the sliding window.
    pub fn note_latency(&mut self, completed_at: SimTime, secs: f64) {
        self.window.record(completed_at, secs);
    }

    /// Takes one sample at time `t` from the harness-assembled snapshot.
    pub fn sample(&mut self, t: SimTime, snap: &TelemetrySnapshot) {
        self.window.evict_before(t);
        let dt = t.saturating_since(self.last_t).as_secs_f64();
        let delta = snap.events.saturating_sub(self.last_events);
        self.samples.push(TelemetrySample {
            t,
            queue_depth: snap.queue_depth,
            events: snap.events,
            events_delta: delta,
            events_per_sim_sec: if dt > 0.0 { delta as f64 / dt } else { 0.0 },
            inflight_queries: snap.inflight_queries,
            table_entries: snap.table_entries,
            updates: snap.updates,
            update_radio: snap.update_radio,
            query_radio: snap.query_radio,
            query_wired: snap.query_wired,
            lat_p50: self.window.quantile(0.50),
            lat_p99: self.window.quantile(0.99),
            lat_window: self.window.len() as u64,
            drops: snap.drops,
            barriers: snap.barriers,
            regions: snap.regions.clone(),
        });
        self.last_t = t;
        self.last_events = snap.events;
    }

    /// The accumulated time series.
    pub fn samples(&self) -> &[TelemetrySample] {
        &self.samples
    }

    /// Consumes the sampler, yielding the time series.
    pub fn into_samples(self) -> Vec<TelemetrySample> {
        self.samples
    }
}

/// Renders samples as a JSONL stream (one line per tick).
pub fn telemetry_to_jsonl(samples: &[TelemetrySample]) -> String {
    let mut s = String::new();
    for row in samples {
        s.push_str(&row.to_jsonl());
        s.push('\n');
    }
    s
}

/// Parses a telemetry JSONL stream, skipping blank and non-telemetry lines.
pub fn parse_telemetry_jsonl(text: &str) -> Vec<TelemetrySample> {
    text.lines()
        .filter_map(TelemetrySample::parse_line)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample(t: u64) -> TelemetrySample {
        TelemetrySample {
            t: SimTime::from_secs(t),
            queue_depth: 12,
            events: 400,
            events_delta: 150,
            events_per_sim_sec: 30.0,
            inflight_queries: 3,
            table_entries: [40, 12, 5],
            updates: 99,
            update_radio: 99,
            query_radio: 17,
            query_wired: 4,
            lat_p50: Some(0.75),
            lat_p99: None,
            lat_window: 8,
            drops: [[1, 0, 2, 0, 0], [0; 5], [0, 0, 0, 3, 1], [0; 5]],
            barriers: 6,
            regions: vec![(30, 20, 410), (25, 37, 385)],
        }
    }

    #[test]
    fn sample_round_trips_through_jsonl() {
        let s = sample(5);
        let line = s.to_jsonl();
        assert_eq!(TelemetrySample::parse_line(&line), Some(s));
        // Empty regions (RLSMP-style) survive too.
        let mut s = sample(6);
        s.regions.clear();
        s.lat_p50 = None;
        assert_eq!(TelemetrySample::parse_line(&s.to_jsonl()), Some(s));
    }

    #[test]
    fn parse_rejects_garbage() {
        assert_eq!(TelemetrySample::parse_line(""), None);
        assert_eq!(TelemetrySample::parse_line("{\"type\":\"other\"}"), None);
        assert_eq!(
            TelemetrySample::parse_line("{\"type\":\"telemetry\"}"),
            None
        );
        // A trace event is not a telemetry sample.
        assert_eq!(
            TelemetrySample::parse_line("{\"type\":\"originated\",\"t_us\":0}"),
            None
        );
        // Truncated mid-array.
        let line = sample(1).to_jsonl();
        assert_eq!(TelemetrySample::parse_line(&line[..line.len() / 2]), None);
    }

    #[test]
    fn jsonl_stream_round_trips() {
        let rows = vec![sample(1), sample(2)];
        let text = telemetry_to_jsonl(&rows);
        assert_eq!(text.lines().count(), 2);
        assert_eq!(parse_telemetry_jsonl(&text), rows);
        // Unknown lines are skipped, not fatal, in the lenient stream parser.
        let mixed = format!("\n{}not json\n{}", rows[0].to_jsonl(), rows[1].to_jsonl());
        assert_eq!(parse_telemetry_jsonl(&mixed).len(), 2);
    }

    #[test]
    fn sampler_computes_rates_between_ticks() {
        let mut s = TelemetrySampler::new(SimDuration::from_secs(10));
        let mut snap = TelemetrySnapshot {
            events: 100,
            ..TelemetrySnapshot::default()
        };
        s.sample(SimTime::from_secs(10), &snap);
        snap.events = 400;
        s.sample(SimTime::from_secs(20), &snap);
        let rows = s.samples();
        assert_eq!(rows[0].events_delta, 100);
        assert_eq!(rows[0].events_per_sim_sec, 10.0);
        assert_eq!(rows[1].events_delta, 300);
        assert_eq!(rows[1].events_per_sim_sec, 30.0);
    }

    #[test]
    fn sampler_windows_latencies() {
        let mut s = TelemetrySampler::new(SimDuration::from_secs(10));
        // One completion at t=5 s: visible at t=10, expired by t=45 (window 30 s).
        s.note_latency(SimTime::from_secs(5), 1.25);
        s.sample(SimTime::from_secs(10), &TelemetrySnapshot::default());
        assert_eq!(s.samples()[0].lat_window, 1);
        assert!(s.samples()[0].lat_p50.is_some());
        s.sample(SimTime::from_secs(45), &TelemetrySnapshot::default());
        assert_eq!(s.samples()[1].lat_window, 0);
        assert_eq!(s.samples()[1].lat_p50, None);
    }

    #[test]
    #[should_panic(expected = "needs an interval")]
    fn zero_interval_rejected() {
        TelemetrySampler::new(SimDuration::ZERO);
    }

    #[test]
    fn window_eviction_edge_cases() {
        // Empty window: no quantiles.
        let mut w = QuantileWindow::latency(SimDuration::from_secs(10));
        assert!(w.is_empty());
        assert_eq!(w.quantile(0.5), None);
        w.evict_before(SimTime::from_secs(100)); // eviction on empty is a no-op
        assert_eq!(w.len(), 0);

        // Single sample: every quantile falls in its bucket; expiry empties.
        w.record(SimTime::from_secs(1), 0.42);
        assert_eq!(w.len(), 1);
        let q = w.quantile(0.99).unwrap();
        assert!((0.4..=0.5 + 1e-12).contains(&q), "q = {q}");
        w.evict_before(SimTime::from_secs(20));
        assert!(w.is_empty());
        assert_eq!(w.quantile(0.5), None);

        // All-equal samples: p50 and p99 agree (same bucket).
        let mut w = QuantileWindow::latency(SimDuration::from_secs(10));
        for i in 0..10 {
            w.record(SimTime::from_secs(i), 2.0);
        }
        let (p50, p99) = (w.quantile(0.5).unwrap(), w.quantile(0.99).unwrap());
        assert!((p50 - p99).abs() <= LATENCY_BIN_S + 1e-12);
    }

    #[test]
    fn window_holds_exactly_the_live_span() {
        let mut w = QuantileWindow::new(SimDuration::from_secs(10), 1.0, 10);
        for i in 0..20u64 {
            w.record(SimTime::from_secs(i), i as f64 % 8.0);
            w.evict_before(SimTime::from_secs(i));
        }
        // At t=19 the cutoff is 9: samples stamped 9..=19 survive.
        assert_eq!(w.len(), 11);
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    /// Exact percentile of a sorted slice at `q`, nearest-rank with the same
    /// ceil-rank convention as [`Histogram::quantile`].
    fn exact_percentile(sorted: &[f64], q: f64) -> f64 {
        let rank = (q * sorted.len() as f64).ceil().max(1.0) as usize;
        sorted[rank - 1]
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(96))]

        /// The tentpole estimator check: on random latency streams with random
        /// sliding windows, the windowed histogram quantile is within one bin
        /// width of the exact sorted-window percentile, at every step.
        #[test]
        fn windowed_quantile_tracks_exact_percentiles(
            lats in proptest::collection::vec((0u64..200, 0.0f64..25.0), 1..80),
            window_s in 1u64..50,
            q in 0.0f64..1.0,
        ) {
            let mut lats = lats;
            lats.sort_by_key(|&(t, _)| t);
            let window = SimDuration::from_secs(window_s);
            let mut w = QuantileWindow::latency(window);
            for (i, &(t_s, x)) in lats.iter().enumerate() {
                let now = SimTime::from_secs(t_s);
                w.record(now, x);
                w.evict_before(now);
                // The exact live window: stamps within `window` of `now`.
                let cutoff = now.saturating_sub(window);
                let mut live: Vec<f64> = lats[..=i]
                    .iter()
                    .filter(|&&(s, _)| SimTime::from_secs(s) >= cutoff)
                    .map(|&(_, x)| x)
                    .collect();
                prop_assert_eq!(w.len(), live.len());
                live.sort_by(f64::total_cmp);
                let exact = exact_percentile(&live, q);
                let est = w.quantile(q).unwrap();
                prop_assert!(
                    (est - exact).abs() <= LATENCY_BIN_S + 1e-9,
                    "estimate {} vs exact {} (window {:?})", est, exact, live
                );
            }
        }

        /// Any sample survives JSONL serialization unchanged.
        #[test]
        fn telemetry_jsonl_round_trip(
            (t, depth) in (0u64..10_000_000, 0u64..100_000),
            events in 0u64..10_000_000,
            tables in proptest::collection::vec(0u64..10_000, 3usize),
            p50 in prop_oneof![Just(None), (0.0f64..100.0).prop_map(Some)],
            drop_cells in proptest::collection::vec(0u64..50, 20usize),
            regions in proptest::collection::vec((0u64..1000, 0u64..1000, 0u64..100_000), 0..8),
        ) {
            let mut drops = [[0u64; 5]; 4];
            for (i, v) in drop_cells.iter().enumerate() {
                drops[i / 5][i % 5] = *v;
            }
            let s = TelemetrySample {
                t: SimTime::from_micros(t),
                queue_depth: depth,
                events,
                events_delta: events / 2,
                events_per_sim_sec: events as f64 / 3.0,
                inflight_queries: depth / 7,
                table_entries: [tables[0], tables[1], tables[2]],
                updates: events / 5,
                update_radio: events / 5,
                query_radio: events / 9,
                query_wired: events / 11,
                lat_p50: p50,
                lat_p99: p50.map(|x| x * 2.0),
                lat_window: 5,
                drops,
                barriers: events / 13,
                regions,
            };
            prop_assert_eq!(TelemetrySample::parse_line(&s.to_jsonl()), Some(s));
        }
    }
}
