//! Timing spans around DES hot phases, gated by the `trace` cargo feature.
//!
//! With the feature **off** (the default), [`PhaseTimings::time`] is a direct
//! call to the closure — the struct is zero-sized, no clock is read, and the
//! optimizer erases the wrapper entirely, so release benchmarks pay nothing.
//! With the feature **on**, each call records wall-clock nanoseconds into a
//! per-phase [`Welford`] accumulator.

#[cfg(feature = "trace")]
use vanet_des::Welford;

/// A hot phase of the simulation loop worth timing.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Phase {
    /// Popping the next event off the DES queue.
    EventPop,
    /// Advancing the mobility model one tick.
    MobilityStep,
    /// Processing one radio delivery (including GPSR forwarding).
    RadioDelivery,
    /// One GPSR next-hop selection (greedy + perimeter recovery).
    GpsrNextHop,
}

/// Number of [`Phase`] variants.
pub const PHASE_COUNT: usize = 4;

impl Phase {
    /// Stable index of the phase.
    pub fn ix(self) -> usize {
        match self {
            Phase::EventPop => 0,
            Phase::MobilityStep => 1,
            Phase::RadioDelivery => 2,
            Phase::GpsrNextHop => 3,
        }
    }

    /// Display name of the phase.
    pub fn name(self) -> &'static str {
        match self {
            Phase::EventPop => "event_pop",
            Phase::MobilityStep => "mobility_step",
            Phase::RadioDelivery => "radio_delivery",
            Phase::GpsrNextHop => "gpsr_next_hop",
        }
    }

    /// All phases, in index order.
    pub const ALL: [Phase; PHASE_COUNT] = [
        Phase::EventPop,
        Phase::MobilityStep,
        Phase::RadioDelivery,
        Phase::GpsrNextHop,
    ];
}

/// Per-phase wall-clock accumulators (zero-sized unless `trace` is enabled).
#[derive(Debug, Default, Clone)]
pub struct PhaseTimings {
    #[cfg(feature = "trace")]
    acc: [Welford; PHASE_COUNT],
}

/// One phase's aggregated timing, as surfaced in reports.
#[derive(Debug, Clone, Copy)]
pub struct PhaseSummary {
    /// Phase name.
    pub phase: &'static str,
    /// Number of timed calls.
    pub count: u64,
    /// Mean call duration in nanoseconds.
    pub mean_ns: f64,
    /// Total time spent in the phase, in milliseconds.
    pub total_ms: f64,
}

impl PhaseTimings {
    /// Whether timing spans are compiled in.
    pub const ENABLED: bool = cfg!(feature = "trace");

    /// Creates empty accumulators.
    pub fn new() -> Self {
        Self::default()
    }

    /// Runs `f`, attributing its wall-clock time to `phase` when the `trace`
    /// feature is on; otherwise just calls it.
    #[inline(always)]
    pub fn time<R>(&mut self, phase: Phase, f: impl FnOnce() -> R) -> R {
        #[cfg(feature = "trace")]
        {
            let start = std::time::Instant::now();
            let r = f();
            self.acc[phase.ix()].record(start.elapsed().as_nanos() as f64);
            r
        }
        #[cfg(not(feature = "trace"))]
        {
            let _ = phase;
            f()
        }
    }

    /// Attributes an externally measured duration to `phase` (for call sites
    /// where wrapping a closure would split a borrow). No-op with the feature
    /// off.
    #[inline(always)]
    pub fn record_duration(&mut self, phase: Phase, elapsed: std::time::Duration) {
        #[cfg(feature = "trace")]
        self.acc[phase.ix()].record(elapsed.as_nanos() as f64);
        #[cfg(not(feature = "trace"))]
        let _ = (phase, elapsed);
    }

    /// Folds another set of accumulators into this one.
    pub fn merge(&mut self, other: &PhaseTimings) {
        #[cfg(feature = "trace")]
        for (a, b) in self.acc.iter_mut().zip(&other.acc) {
            a.merge(b);
        }
        #[cfg(not(feature = "trace"))]
        let _ = other;
    }

    /// Summaries of phases that ran at least once (always empty with the
    /// feature off).
    pub fn summary(&self) -> Vec<PhaseSummary> {
        #[cfg(feature = "trace")]
        {
            Phase::ALL
                .iter()
                .filter_map(|&p| {
                    let w = &self.acc[p.ix()];
                    let mean = w.mean()?;
                    Some(PhaseSummary {
                        phase: p.name(),
                        count: w.count(),
                        mean_ns: mean,
                        total_ms: mean * w.count() as f64 / 1e6,
                    })
                })
                .collect()
        }
        #[cfg(not(feature = "trace"))]
        {
            Vec::new()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn time_returns_the_closure_value() {
        let mut t = PhaseTimings::new();
        let v = t.time(Phase::GpsrNextHop, || 41 + 1);
        assert_eq!(v, 42);
    }

    #[test]
    fn phase_indices_are_dense_and_named() {
        for (i, p) in Phase::ALL.iter().enumerate() {
            assert_eq!(p.ix(), i);
            assert!(!p.name().is_empty());
        }
    }

    #[cfg(not(feature = "trace"))]
    #[test]
    fn disabled_summary_is_empty_and_struct_is_zero_sized() {
        let mut t = PhaseTimings::new();
        t.time(Phase::EventPop, || ());
        assert!(t.summary().is_empty());
        assert_eq!(std::mem::size_of::<PhaseTimings>(), 0);
    }

    #[cfg(feature = "trace")]
    #[test]
    fn enabled_summary_counts_calls() {
        let mut t = PhaseTimings::new();
        for _ in 0..5 {
            t.time(Phase::MobilityStep, || std::hint::black_box(3 * 7));
        }
        let s = t.summary();
        assert_eq!(s.len(), 1);
        assert_eq!(s[0].phase, "mobility_step");
        assert_eq!(s[0].count, 5);
        assert!(s[0].mean_ns >= 0.0);
        let mut other = PhaseTimings::new();
        other.time(Phase::MobilityStep, || ());
        t.merge(&other);
        assert_eq!(t.summary()[0].count, 6);
    }
}
