//! A preallocated ring buffer of trace events.
//!
//! The buffer is sized once up front; recording never allocates. When full it
//! overwrites the oldest record and counts the overwrite, so a too-small ring is
//! visible (and reconciliation against counters knows to expect a shortfall)
//! rather than silently complete-looking.

use crate::event::TraceEvent;

/// Fixed-capacity event ring (oldest-overwriting).
#[derive(Debug)]
pub struct EventRing {
    buf: Vec<TraceEvent>,
    cap: usize,
    /// Index of the oldest element once the ring has wrapped.
    start: usize,
    overwritten: u64,
}

impl EventRing {
    /// Creates a ring holding at most `capacity` events (at least 1).
    pub fn new(capacity: usize) -> Self {
        let cap = capacity.max(1);
        EventRing {
            buf: Vec::with_capacity(cap),
            cap,
            start: 0,
            overwritten: 0,
        }
    }

    /// Appends an event, overwriting the oldest if full.
    #[inline]
    pub fn push(&mut self, ev: TraceEvent) {
        if self.buf.len() < self.cap {
            self.buf.push(ev);
        } else {
            self.buf[self.start] = ev;
            self.start = (self.start + 1) % self.cap;
            self.overwritten += 1;
        }
    }

    /// Events currently held.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// True if nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Capacity fixed at construction.
    pub fn capacity(&self) -> usize {
        self.cap
    }

    /// How many events were overwritten because the ring was full.
    pub fn overwritten(&self) -> u64 {
        self.overwritten
    }

    /// Iterates oldest → newest.
    pub fn iter(&self) -> impl Iterator<Item = &TraceEvent> {
        self.buf[self.start..]
            .iter()
            .chain(self.buf[..self.start].iter())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vanet_des::SimTime;

    fn ev(i: u64) -> TraceEvent {
        TraceEvent::QueryAnswered {
            t: SimTime::from_micros(i),
            query: i,
        }
    }

    fn queries(r: &EventRing) -> Vec<u64> {
        r.iter().map(|e| e.query_id().unwrap()).collect()
    }

    #[test]
    fn fills_then_wraps_oldest_first() {
        let mut r = EventRing::new(3);
        assert!(r.is_empty());
        for i in 0..3 {
            r.push(ev(i));
        }
        assert_eq!(queries(&r), vec![0, 1, 2]);
        assert_eq!(r.overwritten(), 0);
        r.push(ev(3));
        r.push(ev(4));
        assert_eq!(r.len(), 3);
        assert_eq!(queries(&r), vec![2, 3, 4]);
        assert_eq!(r.overwritten(), 2);
    }

    #[test]
    fn zero_capacity_clamps_to_one() {
        let mut r = EventRing::new(0);
        assert_eq!(r.capacity(), 1);
        r.push(ev(1));
        r.push(ev(2));
        assert_eq!(queries(&r), vec![2]);
    }

    #[test]
    fn wraps_many_times() {
        let mut r = EventRing::new(4);
        for i in 0..23 {
            r.push(ev(i));
        }
        assert_eq!(queries(&r), vec![19, 20, 21, 22]);
        assert_eq!(r.overwritten(), 19);
    }
}
