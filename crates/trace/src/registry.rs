//! The per-node / per-level metrics registry.
//!
//! Every recorded [`TraceEvent`] also folds into this registry, reusing the
//! `vanet_des::stats` primitives: counters per node and per packet class,
//! hit/miss counters and latency accumulators per hierarchy level (L1/L2/L3),
//! and update-trigger counters split by artery vs. normal road class.

use crate::event::TraceEvent;
use fxhash::FxHashMap;
use vanet_des::{Counter, Histogram, SimTime, Welford};

/// Latency histogram geometry: 100 ms bins spanning 30 s.
const LATENCY_BIN_S: f64 = 0.1;
const LATENCY_BINS: usize = 300;

/// Per-node transmission/delivery/drop counters.
#[derive(Debug, Clone, Copy, Default)]
pub struct NodeMetrics {
    /// Logical packets originated here.
    pub originated: Counter,
    /// Radio transmissions sent from here.
    pub radio_tx: Counter,
    /// Final-hop deliveries received here.
    pub delivered: Counter,
    /// Packets that died in flight here.
    pub drops: Counter,
}

/// Summary of one hierarchy level's query traffic.
#[derive(Debug, Clone)]
pub struct LevelSummary {
    /// Level number (1–3).
    pub level: u8,
    /// Lookups that found the target.
    pub hits: u64,
    /// Lookups that missed.
    pub misses: u64,
    /// Latency stats (seconds) of queries whose deepest visit was this level.
    pub latency: Welford,
    /// 50th/95th/99th latency percentiles in seconds, if any query resolved here.
    pub p50: Option<f64>,
    /// 95th percentile.
    pub p95: Option<f64>,
    /// 99th percentile.
    pub p99: Option<f64>,
}

/// The registry: aggregate metrics derived from the event stream.
#[derive(Debug)]
pub struct MetricsRegistry {
    nodes: Vec<NodeMetrics>,
    class_originated: [Counter; 4],
    class_radio: [Counter; 4],
    class_wired: [Counter; 4],
    class_delivered: [Counter; 4],
    class_drops: [Counter; 4],
    drop_cause: [Counter; 5],
    level_hits: [Counter; 3],
    level_misses: [Counter; 3],
    level_latency: [Welford; 3],
    level_hist: [Histogram; 3],
    updates_artery: Counter,
    updates_normal: Counter,
    notify_directional: Counter,
    notify_region: Counter,
    queries_launched: Counter,
    queries_answered: Counter,
    queries_retried: Counter,
    route_up: Counter,
    route_down: Counter,
    /// Launch time and deepest level visited, per open query.
    open: FxHashMap<u64, (SimTime, u8)>,
}

impl Default for MetricsRegistry {
    fn default() -> Self {
        Self::new()
    }
}

impl MetricsRegistry {
    /// Creates an empty registry.
    pub fn new() -> Self {
        MetricsRegistry {
            nodes: Vec::new(),
            class_originated: Default::default(),
            class_radio: Default::default(),
            class_wired: Default::default(),
            class_delivered: Default::default(),
            class_drops: Default::default(),
            drop_cause: Default::default(),
            level_hits: Default::default(),
            level_misses: Default::default(),
            level_latency: Default::default(),
            level_hist: std::array::from_fn(|_| Histogram::new(LATENCY_BIN_S, LATENCY_BINS)),
            updates_artery: Counter::new(),
            updates_normal: Counter::new(),
            notify_directional: Counter::new(),
            notify_region: Counter::new(),
            queries_launched: Counter::new(),
            queries_answered: Counter::new(),
            queries_retried: Counter::new(),
            route_up: Counter::new(),
            route_down: Counter::new(),
            open: FxHashMap::default(),
        }
    }

    fn node(&mut self, id: u32) -> &mut NodeMetrics {
        let ix = id as usize;
        if ix >= self.nodes.len() {
            self.nodes.resize(ix + 1, NodeMetrics::default());
        }
        &mut self.nodes[ix]
    }

    fn level_ix(level: u8) -> usize {
        (level.clamp(1, 3) - 1) as usize
    }

    /// Folds one event into the aggregates.
    pub fn observe(&mut self, ev: &TraceEvent) {
        match *ev {
            TraceEvent::Originated { node, class, .. } => {
                self.class_originated[class as usize & 3].incr();
                self.node(node).originated.incr();
            }
            TraceEvent::RadioHop { node, class, n, .. } => {
                self.class_radio[class as usize & 3].add(n);
                self.node(node).radio_tx.add(n);
            }
            TraceEvent::WiredHop { class, hops, .. } => {
                self.class_wired[class as usize & 3].add(hops);
            }
            TraceEvent::Dropped {
                node, class, cause, ..
            } => {
                self.class_drops[class as usize & 3].incr();
                if let Some(c) = self.drop_cause.get_mut(cause as usize) {
                    c.incr();
                }
                self.node(node).drops.incr();
            }
            TraceEvent::Delivered { node, class, .. } => {
                self.class_delivered[class as usize & 3].incr();
                self.node(node).delivered.incr();
            }
            TraceEvent::QueryLaunched {
                t, query, level, ..
            } => {
                self.queries_launched.incr();
                self.open.insert(query, (t, level.clamp(1, 3)));
            }
            TraceEvent::LevelVisit {
                query, level, hit, ..
            } => {
                let ix = Self::level_ix(level);
                if hit {
                    self.level_hits[ix].incr();
                } else {
                    self.level_misses[ix].incr();
                }
                if let Some((_, deepest)) = self.open.get_mut(&query) {
                    *deepest = (*deepest).max(level.clamp(1, 3));
                }
            }
            TraceEvent::RouteDecision {
                from_level,
                to_level,
                ..
            } => {
                if to_level > from_level {
                    self.route_up.incr();
                } else {
                    self.route_down.incr();
                }
            }
            TraceEvent::NotifyBroadcast { directional, .. } => {
                if directional {
                    self.notify_directional.incr();
                } else {
                    self.notify_region.incr();
                }
            }
            TraceEvent::QueryAnswered { t, query } => {
                if let Some((launched, deepest)) = self.open.remove(&query) {
                    self.queries_answered.incr();
                    let lat = t.saturating_since(launched).as_secs_f64();
                    let ix = Self::level_ix(deepest);
                    self.level_latency[ix].record(lat);
                    self.level_hist[ix].record(lat);
                }
            }
            TraceEvent::QueryRetried { .. } => {
                self.queries_retried.incr();
            }
            TraceEvent::UpdateTriggered { artery, .. } => {
                if artery {
                    self.updates_artery.incr();
                } else {
                    self.updates_normal.incr();
                }
            }
        }
    }

    /// Radio transmissions per class code.
    pub fn radio(&self, class: u8) -> u64 {
        self.class_radio[class as usize & 3].get()
    }

    /// Wired link traversals per class code.
    pub fn wired(&self, class: u8) -> u64 {
        self.class_wired[class as usize & 3].get()
    }

    /// Originations per class code.
    pub fn originated(&self, class: u8) -> u64 {
        self.class_originated[class as usize & 3].get()
    }

    /// Final-hop deliveries per class code.
    pub fn delivered(&self, class: u8) -> u64 {
        self.class_delivered[class as usize & 3].get()
    }

    /// Drops per class code.
    pub fn drops(&self, class: u8) -> u64 {
        self.class_drops[class as usize & 3].get()
    }

    /// Drops per cause code `[ttl, isolated, no_progress, loss, no_route]`.
    pub fn drops_by_cause(&self) -> [u64; 5] {
        std::array::from_fn(|i| self.drop_cause[i].get())
    }

    /// Queries launched / answered / retried.
    pub fn query_counts(&self) -> (u64, u64, u64) {
        (
            self.queries_launched.get(),
            self.queries_answered.get(),
            self.queries_retried.get(),
        )
    }

    /// Requests re-addressed up / down the hierarchy.
    pub fn route_counts(&self) -> (u64, u64) {
        (self.route_up.get(), self.route_down.get())
    }

    /// Update triggers on artery vs. normal roads.
    pub fn updates_by_road_class(&self) -> (u64, u64) {
        (self.updates_artery.get(), self.updates_normal.get())
    }

    /// Directional vs. region notification broadcasts.
    pub fn notify_counts(&self) -> (u64, u64) {
        (self.notify_directional.get(), self.notify_region.get())
    }

    /// Per-level hit/miss/latency summaries for L1–L3.
    pub fn level_summaries(&self) -> Vec<LevelSummary> {
        (0..3)
            .map(|ix| LevelSummary {
                level: ix as u8 + 1,
                hits: self.level_hits[ix].get(),
                misses: self.level_misses[ix].get(),
                latency: self.level_latency[ix],
                p50: self.level_hist[ix].quantile(0.50),
                p95: self.level_hist[ix].quantile(0.95),
                p99: self.level_hist[ix].quantile(0.99),
            })
            .collect()
    }

    /// The `k` nodes with the most radio transmissions, busiest first
    /// (ties broken by lower node id).
    pub fn busiest_nodes(&self, k: usize) -> Vec<(u32, NodeMetrics)> {
        let mut all: Vec<(u32, NodeMetrics)> = self
            .nodes
            .iter()
            .enumerate()
            .filter(|(_, m)| m.radio_tx.get() > 0 || m.drops.get() > 0)
            .map(|(i, m)| (i as u32, *m))
            .collect();
        all.sort_by_key(|&(id, m)| (std::cmp::Reverse(m.radio_tx.get()), id));
        all.truncate(k);
        all
    }

    /// Metrics of one node, if it ever appeared in the stream.
    pub fn node_metrics(&self, id: u32) -> Option<NodeMetrics> {
        self.nodes.get(id as usize).copied()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(us: u64) -> SimTime {
        SimTime::from_micros(us)
    }

    #[test]
    fn packet_events_aggregate_per_class_and_node() {
        let mut r = MetricsRegistry::new();
        r.observe(&TraceEvent::Originated {
            t: t(0),
            node: 1,
            class: 0,
        });
        r.observe(&TraceEvent::RadioHop {
            t: t(1),
            node: 1,
            class: 0,
            n: 1,
        });
        r.observe(&TraceEvent::RadioHop {
            t: t(2),
            node: 2,
            class: 2,
            n: 4,
        });
        r.observe(&TraceEvent::WiredHop {
            t: t(3),
            node: 9,
            class: 2,
            hops: 2,
        });
        r.observe(&TraceEvent::Dropped {
            t: t(4),
            node: 2,
            class: 2,
            cause: 3,
        });
        r.observe(&TraceEvent::Delivered {
            t: t(5),
            node: 3,
            class: 0,
        });
        assert_eq!(r.radio(0), 1);
        assert_eq!(r.radio(2), 4);
        assert_eq!(r.wired(2), 2);
        assert_eq!(r.originated(0), 1);
        assert_eq!(r.delivered(0), 1);
        assert_eq!(r.drops(2), 1);
        assert_eq!(r.drops_by_cause(), [0, 0, 0, 1, 0]);
        let busiest = r.busiest_nodes(10);
        assert_eq!(busiest[0].0, 2);
        assert_eq!(busiest[0].1.radio_tx.get(), 4);
        assert_eq!(r.node_metrics(3).unwrap().delivered.get(), 1);
    }

    #[test]
    fn query_latency_buckets_by_deepest_level() {
        let mut r = MetricsRegistry::new();
        // Query 1 resolves at L1 after 0.2 s.
        r.observe(&TraceEvent::QueryLaunched {
            t: t(0),
            query: 1,
            src: 0,
            dst: 1,
            level: 1,
        });
        r.observe(&TraceEvent::LevelVisit {
            t: t(50_000),
            query: 1,
            level: 1,
            hit: true,
        });
        r.observe(&TraceEvent::QueryAnswered {
            t: t(200_000),
            query: 1,
        });
        // Query 2 climbs to L3 and resolves after 1.0 s.
        r.observe(&TraceEvent::QueryLaunched {
            t: t(0),
            query: 2,
            src: 2,
            dst: 3,
            level: 1,
        });
        r.observe(&TraceEvent::LevelVisit {
            t: t(1000),
            query: 2,
            level: 1,
            hit: false,
        });
        r.observe(&TraceEvent::RouteDecision {
            t: t(1000),
            query: 2,
            from_level: 1,
            to_level: 2,
        });
        r.observe(&TraceEvent::LevelVisit {
            t: t(2000),
            query: 2,
            level: 2,
            hit: false,
        });
        r.observe(&TraceEvent::RouteDecision {
            t: t(2000),
            query: 2,
            from_level: 2,
            to_level: 3,
        });
        r.observe(&TraceEvent::LevelVisit {
            t: t(3000),
            query: 2,
            level: 3,
            hit: true,
        });
        r.observe(&TraceEvent::RouteDecision {
            t: t(3000),
            query: 2,
            from_level: 3,
            to_level: 2,
        });
        r.observe(&TraceEvent::QueryAnswered {
            t: t(1_000_000),
            query: 2,
        });

        let (launched, answered, retried) = r.query_counts();
        assert_eq!((launched, answered, retried), (2, 2, 0));
        let levels = r.level_summaries();
        assert_eq!(levels[0].hits, 1);
        assert_eq!(levels[0].misses, 1);
        assert_eq!(levels[2].hits, 1);
        assert_eq!(levels[0].latency.count(), 1);
        assert!((levels[0].latency.mean().unwrap() - 0.2).abs() < 1e-9);
        assert_eq!(levels[2].latency.count(), 1);
        assert!((levels[2].latency.mean().unwrap() - 1.0).abs() < 1e-9);
        assert_eq!(r.route_counts(), (2, 1));
    }

    #[test]
    fn unanswered_and_duplicate_answers_are_safe() {
        let mut r = MetricsRegistry::new();
        r.observe(&TraceEvent::QueryAnswered {
            t: t(10),
            query: 99,
        }); // never launched
        r.observe(&TraceEvent::QueryLaunched {
            t: t(0),
            query: 1,
            src: 0,
            dst: 1,
            level: 2,
        });
        r.observe(&TraceEvent::QueryAnswered {
            t: t(100),
            query: 1,
        });
        r.observe(&TraceEvent::QueryAnswered {
            t: t(200),
            query: 1,
        }); // duplicate
        let (_, answered, _) = r.query_counts();
        assert_eq!(answered, 1);
        assert_eq!(r.level_summaries()[1].latency.count(), 1);
    }

    #[test]
    fn road_class_and_notify_splits() {
        let mut r = MetricsRegistry::new();
        r.observe(&TraceEvent::UpdateTriggered {
            t: t(0),
            vehicle: 1,
            artery: true,
            reason: 0,
        });
        r.observe(&TraceEvent::UpdateTriggered {
            t: t(1),
            vehicle: 2,
            artery: false,
            reason: 3,
        });
        r.observe(&TraceEvent::UpdateTriggered {
            t: t(2),
            vehicle: 3,
            artery: true,
            reason: 1,
        });
        r.observe(&TraceEvent::NotifyBroadcast {
            t: t(3),
            query: 1,
            directional: true,
        });
        r.observe(&TraceEvent::NotifyBroadcast {
            t: t(4),
            query: 2,
            directional: false,
        });
        assert_eq!(r.updates_by_road_class(), (2, 1));
        assert_eq!(r.notify_counts(), (1, 1));
    }
}
