//! The trace vocabulary: one record per packet- or query-lifecycle step.
//!
//! Events are small `Copy` structs holding raw ids and code numbers so this crate
//! needs no dependency on the network or protocol layers (which depend on *it*).
//! The network layer maps its `PacketClass` / `DropKind` enums onto the code
//! spaces below; the tables here give the codes their JSONL names.
//!
//! Serialization is hand-written JSONL: every value is a number, a boolean, or
//! one of the static names below, so no JSON library is needed and `parse_line`
//! can round-trip anything `to_jsonl` emits.

use vanet_des::SimTime;

/// Packet-class code names, indexed by the class code
/// (`update`, `collection`, `query`, `data`).
pub const CLASS_NAMES: [&str; 4] = ["update", "collection", "query", "data"];

/// Drop-cause code names, indexed by the cause code
/// (`ttl`, `isolated`, `no_progress`, `loss`, `no_route`).
pub const CAUSE_NAMES: [&str; 5] = ["ttl", "isolated", "no_progress", "loss", "no_route"];

/// Update-trigger reason names, indexed by the reason code. The first four are
/// HLSRG's road-adapted triggers; `cell_crossing` is RLSMP's.
pub const REASON_NAMES: [&str; 5] = [
    "artery_turn",
    "artery_l3",
    "onto_artery",
    "boundary",
    "cell_crossing",
];

/// One structured trace record.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum TraceEvent {
    /// A logical packet was originated at `node`.
    Originated {
        /// Simulation time.
        t: SimTime,
        /// Originating node id.
        node: u32,
        /// Packet-class code (see [`CLASS_NAMES`]).
        class: u8,
    },
    /// `n` radio transmissions left `node` for one packet (hop retries and
    /// broadcast relays batch into one record so counts still reconcile).
    RadioHop {
        /// Simulation time.
        t: SimTime,
        /// Transmitting node id.
        node: u32,
        /// Packet-class code.
        class: u8,
        /// Number of transmissions.
        n: u64,
    },
    /// A packet crossed `hops` wired backbone links starting at `node`.
    WiredHop {
        /// Simulation time.
        t: SimTime,
        /// Sending RSU's node id.
        node: u32,
        /// Packet-class code.
        class: u8,
        /// Wired links traversed.
        hops: u64,
    },
    /// A packet died in flight at `node`.
    Dropped {
        /// Simulation time.
        t: SimTime,
        /// Node where the packet died.
        node: u32,
        /// Packet-class code.
        class: u8,
        /// Drop-cause code (see [`CAUSE_NAMES`]).
        cause: u8,
    },
    /// A packet reached its final hop at `node`.
    Delivered {
        /// Simulation time.
        t: SimTime,
        /// Receiving node id.
        node: u32,
        /// Packet-class code.
        class: u8,
    },
    /// A location query was launched.
    QueryLaunched {
        /// Simulation time.
        t: SimTime,
        /// Query id.
        query: u64,
        /// Asking vehicle id.
        src: u32,
        /// Sought vehicle id.
        dst: u32,
        /// Hierarchy level the request was first addressed to (1–3).
        level: u8,
    },
    /// A request was processed at a level center / RSU.
    LevelVisit {
        /// Simulation time.
        t: SimTime,
        /// Query id.
        query: u64,
        /// Hierarchy level (1–3).
        level: u8,
        /// Whether the lookup found the target.
        hit: bool,
    },
    /// The request was re-addressed from one level to another (up on a miss,
    /// down on a hit; `from_level` 0 means the querying vehicle itself).
    RouteDecision {
        /// Simulation time.
        t: SimTime,
        /// Query id.
        query: u64,
        /// Level the request left.
        from_level: u8,
        /// Level the request was sent to.
        to_level: u8,
    },
    /// The serving node broadcast the notification toward the target.
    NotifyBroadcast {
        /// Simulation time.
        t: SimTime,
        /// Query id.
        query: u64,
        /// `true` for the artery directional broadcast, `false` for the
        /// normal-road region flood.
        directional: bool,
    },
    /// The source received the destination's ACK.
    QueryAnswered {
        /// Simulation time.
        t: SimTime,
        /// Query id.
        query: u64,
    },
    /// The source's timeout fallback fired and re-sent the request.
    QueryRetried {
        /// Simulation time.
        t: SimTime,
        /// Query id.
        query: u64,
    },
    /// A protocol update rule triggered at a vehicle.
    UpdateTriggered {
        /// Simulation time.
        t: SimTime,
        /// Vehicle id.
        vehicle: u32,
        /// Whether the vehicle was on an artery road.
        artery: bool,
        /// Trigger reason code (see [`REASON_NAMES`]).
        reason: u8,
    },
}

impl TraceEvent {
    /// The event's timestamp.
    pub fn time(&self) -> SimTime {
        match *self {
            TraceEvent::Originated { t, .. }
            | TraceEvent::RadioHop { t, .. }
            | TraceEvent::WiredHop { t, .. }
            | TraceEvent::Dropped { t, .. }
            | TraceEvent::Delivered { t, .. }
            | TraceEvent::QueryLaunched { t, .. }
            | TraceEvent::LevelVisit { t, .. }
            | TraceEvent::RouteDecision { t, .. }
            | TraceEvent::NotifyBroadcast { t, .. }
            | TraceEvent::QueryAnswered { t, .. }
            | TraceEvent::QueryRetried { t, .. }
            | TraceEvent::UpdateTriggered { t, .. } => t,
        }
    }

    /// The query id, for query-lifecycle events.
    pub fn query_id(&self) -> Option<u64> {
        match *self {
            TraceEvent::QueryLaunched { query, .. }
            | TraceEvent::LevelVisit { query, .. }
            | TraceEvent::RouteDecision { query, .. }
            | TraceEvent::NotifyBroadcast { query, .. }
            | TraceEvent::QueryAnswered { query, .. }
            | TraceEvent::QueryRetried { query, .. } => Some(query),
            _ => None,
        }
    }

    /// Serializes the event as one JSON object (no trailing newline).
    pub fn to_jsonl(&self) -> String {
        let t = self.time().as_micros();
        match *self {
            TraceEvent::Originated { node, class, .. } => format!(
                "{{\"type\":\"originated\",\"t_us\":{t},\"node\":{node},\"class\":\"{}\"}}",
                class_name(class)
            ),
            TraceEvent::RadioHop { node, class, n, .. } => format!(
                "{{\"type\":\"radio_hop\",\"t_us\":{t},\"node\":{node},\"class\":\"{}\",\"n\":{n}}}",
                class_name(class)
            ),
            TraceEvent::WiredHop {
                node, class, hops, ..
            } => format!(
                "{{\"type\":\"wired_hop\",\"t_us\":{t},\"node\":{node},\"class\":\"{}\",\"hops\":{hops}}}",
                class_name(class)
            ),
            TraceEvent::Dropped {
                node, class, cause, ..
            } => format!(
                "{{\"type\":\"dropped\",\"t_us\":{t},\"node\":{node},\"class\":\"{}\",\"cause\":\"{}\"}}",
                class_name(class),
                cause_name(cause)
            ),
            TraceEvent::Delivered { node, class, .. } => format!(
                "{{\"type\":\"delivered\",\"t_us\":{t},\"node\":{node},\"class\":\"{}\"}}",
                class_name(class)
            ),
            TraceEvent::QueryLaunched {
                query,
                src,
                dst,
                level,
                ..
            } => format!(
                "{{\"type\":\"query_launched\",\"t_us\":{t},\"query\":{query},\"src\":{src},\"dst\":{dst},\"level\":{level}}}"
            ),
            TraceEvent::LevelVisit {
                query, level, hit, ..
            } => format!(
                "{{\"type\":\"level_visit\",\"t_us\":{t},\"query\":{query},\"level\":{level},\"hit\":{hit}}}"
            ),
            TraceEvent::RouteDecision {
                query,
                from_level,
                to_level,
                ..
            } => format!(
                "{{\"type\":\"route_decision\",\"t_us\":{t},\"query\":{query},\"from_level\":{from_level},\"to_level\":{to_level}}}"
            ),
            TraceEvent::NotifyBroadcast {
                query, directional, ..
            } => format!(
                "{{\"type\":\"notify_broadcast\",\"t_us\":{t},\"query\":{query},\"directional\":{directional}}}"
            ),
            TraceEvent::QueryAnswered { query, .. } => {
                format!("{{\"type\":\"query_answered\",\"t_us\":{t},\"query\":{query}}}")
            }
            TraceEvent::QueryRetried { query, .. } => {
                format!("{{\"type\":\"query_retried\",\"t_us\":{t},\"query\":{query}}}")
            }
            TraceEvent::UpdateTriggered {
                vehicle,
                artery,
                reason,
                ..
            } => format!(
                "{{\"type\":\"update_triggered\",\"t_us\":{t},\"vehicle\":{vehicle},\"artery\":{artery},\"reason\":\"{}\"}}",
                reason_name(reason)
            ),
        }
    }

    /// Parses one JSONL line produced by [`Self::to_jsonl`]. Returns `None` for
    /// blank lines or records this version doesn't know.
    pub fn parse_line(line: &str) -> Option<TraceEvent> {
        let line = line.trim();
        if line.is_empty() {
            return None;
        }
        let t = SimTime::from_micros(field_u64(line, "t_us")?);
        match field_str(line, "type")? {
            "originated" => Some(TraceEvent::Originated {
                t,
                node: field_u64(line, "node")? as u32,
                class: class_code(field_str(line, "class")?)?,
            }),
            "radio_hop" => Some(TraceEvent::RadioHop {
                t,
                node: field_u64(line, "node")? as u32,
                class: class_code(field_str(line, "class")?)?,
                n: field_u64(line, "n")?,
            }),
            "wired_hop" => Some(TraceEvent::WiredHop {
                t,
                node: field_u64(line, "node")? as u32,
                class: class_code(field_str(line, "class")?)?,
                hops: field_u64(line, "hops")?,
            }),
            "dropped" => Some(TraceEvent::Dropped {
                t,
                node: field_u64(line, "node")? as u32,
                class: class_code(field_str(line, "class")?)?,
                cause: cause_code(field_str(line, "cause")?)?,
            }),
            "delivered" => Some(TraceEvent::Delivered {
                t,
                node: field_u64(line, "node")? as u32,
                class: class_code(field_str(line, "class")?)?,
            }),
            "query_launched" => Some(TraceEvent::QueryLaunched {
                t,
                query: field_u64(line, "query")?,
                src: field_u64(line, "src")? as u32,
                dst: field_u64(line, "dst")? as u32,
                level: field_u64(line, "level")? as u8,
            }),
            "level_visit" => Some(TraceEvent::LevelVisit {
                t,
                query: field_u64(line, "query")?,
                level: field_u64(line, "level")? as u8,
                hit: field_bool(line, "hit")?,
            }),
            "route_decision" => Some(TraceEvent::RouteDecision {
                t,
                query: field_u64(line, "query")?,
                from_level: field_u64(line, "from_level")? as u8,
                to_level: field_u64(line, "to_level")? as u8,
            }),
            "notify_broadcast" => Some(TraceEvent::NotifyBroadcast {
                t,
                query: field_u64(line, "query")?,
                directional: field_bool(line, "directional")?,
            }),
            "query_answered" => Some(TraceEvent::QueryAnswered {
                t,
                query: field_u64(line, "query")?,
            }),
            "query_retried" => Some(TraceEvent::QueryRetried {
                t,
                query: field_u64(line, "query")?,
            }),
            "update_triggered" => Some(TraceEvent::UpdateTriggered {
                t,
                vehicle: field_u64(line, "vehicle")? as u32,
                artery: field_bool(line, "artery")?,
                reason: reason_code(field_str(line, "reason")?)?,
            }),
            _ => None,
        }
    }
}

/// The JSONL name of a packet-class code (unknown codes print as `unknown`).
pub fn class_name(code: u8) -> &'static str {
    CLASS_NAMES.get(code as usize).copied().unwrap_or("unknown")
}

/// The JSONL name of a drop-cause code.
pub fn cause_name(code: u8) -> &'static str {
    CAUSE_NAMES.get(code as usize).copied().unwrap_or("unknown")
}

/// The JSONL name of an update-reason code.
pub fn reason_name(code: u8) -> &'static str {
    REASON_NAMES
        .get(code as usize)
        .copied()
        .unwrap_or("unknown")
}

fn class_code(name: &str) -> Option<u8> {
    CLASS_NAMES.iter().position(|&n| n == name).map(|i| i as u8)
}

fn cause_code(name: &str) -> Option<u8> {
    CAUSE_NAMES.iter().position(|&n| n == name).map(|i| i as u8)
}

fn reason_code(name: &str) -> Option<u8> {
    REASON_NAMES
        .iter()
        .position(|&n| n == name)
        .map(|i| i as u8)
}

/// Raw text of `"key":<value>` up to the next `,` or `}` (flat objects only,
/// which is all this format ever emits).
fn field<'a>(line: &'a str, key: &str) -> Option<&'a str> {
    let pat = format!("\"{key}\":");
    let start = line.find(&pat)? + pat.len();
    let rest = &line[start..];
    let end = rest.find([',', '}'])?;
    Some(rest[..end].trim())
}

fn field_u64(line: &str, key: &str) -> Option<u64> {
    field(line, key)?.parse().ok()
}

fn field_bool(line: &str, key: &str) -> Option<bool> {
    match field(line, key)? {
        "true" => Some(true),
        "false" => Some(false),
        _ => None,
    }
}

fn field_str<'a>(line: &'a str, key: &str) -> Option<&'a str> {
    field(line, key)?
        .strip_prefix('"')
        .and_then(|s| s.strip_suffix('"'))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_events() -> Vec<TraceEvent> {
        let t = SimTime::from_micros(1_234_567);
        vec![
            TraceEvent::Originated {
                t,
                node: 7,
                class: 0,
            },
            TraceEvent::RadioHop {
                t,
                node: 7,
                class: 2,
                n: 3,
            },
            TraceEvent::WiredHop {
                t,
                node: 501,
                class: 1,
                hops: 2,
            },
            TraceEvent::Dropped {
                t,
                node: 9,
                class: 2,
                cause: 3,
            },
            TraceEvent::Delivered {
                t,
                node: 12,
                class: 3,
            },
            TraceEvent::QueryLaunched {
                t,
                query: 4,
                src: 1,
                dst: 2,
                level: 1,
            },
            TraceEvent::LevelVisit {
                t,
                query: 4,
                level: 2,
                hit: false,
            },
            TraceEvent::RouteDecision {
                t,
                query: 4,
                from_level: 2,
                to_level: 3,
            },
            TraceEvent::NotifyBroadcast {
                t,
                query: 4,
                directional: true,
            },
            TraceEvent::QueryAnswered { t, query: 4 },
            TraceEvent::QueryRetried { t, query: 5 },
            TraceEvent::UpdateTriggered {
                t,
                vehicle: 3,
                artery: true,
                reason: 0,
            },
        ]
    }

    #[test]
    fn every_variant_round_trips() {
        for ev in sample_events() {
            let line = ev.to_jsonl();
            assert!(line.starts_with('{') && line.ends_with('}'), "{line}");
            let back = TraceEvent::parse_line(&line).expect(&line);
            assert_eq!(back, ev, "line was {line}");
        }
    }

    #[test]
    fn blank_and_garbage_lines_are_none() {
        assert_eq!(TraceEvent::parse_line(""), None);
        assert_eq!(TraceEvent::parse_line("   "), None);
        assert_eq!(TraceEvent::parse_line("{\"type\":\"martian\"}"), None);
        assert_eq!(TraceEvent::parse_line("not json at all"), None);
    }

    #[test]
    fn code_tables_round_trip() {
        for (i, &n) in CLASS_NAMES.iter().enumerate() {
            assert_eq!(class_code(n), Some(i as u8));
            assert_eq!(class_name(i as u8), n);
        }
        for (i, &n) in CAUSE_NAMES.iter().enumerate() {
            assert_eq!(cause_code(n), Some(i as u8));
        }
        for (i, &n) in REASON_NAMES.iter().enumerate() {
            assert_eq!(reason_code(n), Some(i as u8));
        }
        assert_eq!(class_name(200), "unknown");
    }
}
