//! Incremental grid maintenance against a real mobility trace.
//!
//! The runner feeds every tick's `MoveSample` stream into
//! [`SpatialHash::apply_moves`]; this test drives the same delta stream off an
//! actual [`MobilityModel`] run and checks, tick by tick, that the
//! incrementally-maintained index is indistinguishable from one updated with a
//! plain per-vehicle `upsert` — the sequential-equivalence contract the
//! byte-identical run reports depend on.

use rand::rngs::SmallRng;
use rand::SeedableRng;
use vanet_des::SimTime;
use vanet_geo::{Point, SpatialHash};
use vanet_mobility::{LightConfig, MobilityConfig, MobilityModel, TrafficLights};
use vanet_roadnet::{generate_grid, GridMapSpec};

#[test]
fn incremental_grid_tracks_mobility_trace() {
    const VEHICLES: usize = 150;
    const TICKS: usize = 300;
    const CELL: f64 = 250.0;

    let net = generate_grid(&GridMapSpec::paper(1000.0), &mut SmallRng::seed_from_u64(0));
    let lights = TrafficLights::new(&net, LightConfig::default());
    let mut rng = SmallRng::seed_from_u64(42);
    let mut model = MobilityModel::new(&net, MobilityConfig::default(), VEHICLES, &mut rng);

    // Register the initial positions in both indexes identically.
    let mut reference = SpatialHash::with_capacity(CELL, VEHICLES);
    let mut incremental = SpatialHash::with_capacity(CELL, VEHICLES);
    for s in model.snapshot(&net) {
        reference.upsert(s.id.0 as u64, s.new_pos);
        incremental.upsert(s.id.0 as u64, s.new_pos);
    }

    let dt = model.config().tick;
    let mut now = SimTime::ZERO;
    let mut total_crossed = 0u64;
    let mut total_in_place = 0u64;
    for tick in 0..TICKS {
        let moves: Vec<(u64, Point)> = model
            .step(&net, &lights, now)
            .iter()
            .map(|s| (s.id.0 as u64, s.new_pos))
            .collect();
        now += dt;

        for &(id, p) in &moves {
            reference.upsert(id, p);
        }
        let stats = incremental.apply_moves(moves.iter().copied());

        // Every vehicle moved exactly once: the crossing/in-place split must
        // partition the delta stream.
        assert_eq!(
            stats.crossed + stats.in_place,
            VEHICLES as u64,
            "tick {tick}: delta stats do not partition the move stream"
        );
        total_crossed += stats.crossed;
        total_in_place += stats.in_place;

        assert_eq!(incremental.len(), reference.len(), "tick {tick}");
        for id in 0..VEHICLES as u64 {
            assert_eq!(
                incremental.position(id),
                reference.position(id),
                "tick {tick}: vehicle {id} position diverged"
            );
        }
        // Range queries from a few probes must agree exactly (same ids, and
        // the underlying bucket walk must see the same entries).
        for probe in [
            Point::new(500.0, 500.0),
            Point::new(0.0, 0.0),
            Point::new(2_000.0, 1_500.0),
        ] {
            for radius in [200.0, 600.0] {
                assert_eq!(
                    incremental.query_radius(probe, radius),
                    reference.query_radius(probe, radius),
                    "tick {tick}: query at {probe:?} r={radius} diverged"
                );
            }
        }
    }

    // At 0.5 s ticks and ≤16 m/s on 250 m cells, almost every move stays
    // inside its cell — the whole point of the delta path. If this ratio
    // collapses, apply_moves has degenerated into remove+insert churn.
    assert!(
        total_in_place > total_crossed * 10,
        "in-place moves ({total_in_place}) should dominate cell crossings ({total_crossed})"
    );
    assert!(total_crossed > 0, "a 300-tick trace must cross some cell");
}
