//! Vehicle state and movement observations.

use serde::{Deserialize, Serialize};
use std::fmt;
use vanet_geo::{Heading, Point, TurnKind};
use vanet_roadnet::{IntersectionId, RoadClass, RoadId, RoadNetwork};

/// Identifier of a vehicle. Dense, assigned at spawn time.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct VehicleId(pub u32);

impl fmt::Display for VehicleId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "v{}", self.0)
    }
}

/// The kinematic state of one vehicle.
///
/// A vehicle always sits on exactly one road, `offset` meters from the `from`
/// endpoint toward the other end. This road-locked representation means vehicles can
/// never leave the road network by construction.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct VehicleState {
    /// This vehicle's id.
    pub id: VehicleId,
    /// The road currently being driven.
    pub road: RoadId,
    /// The endpoint the vehicle entered the road from (drives away from it).
    pub from: IntersectionId,
    /// Distance traveled along the road from `from`, in meters.
    pub offset: f64,
    /// Current speed in m/s.
    pub speed: f64,
    /// Free-flow target speed in m/s (the paper draws 0–60 km/h).
    pub desired_speed: f64,
}

impl VehicleState {
    /// Current position in the plane.
    pub fn position(&self, net: &RoadNetwork) -> Point {
        net.segment_from(self.road, self.from).point_at(self.offset)
    }

    /// Current heading (direction of travel).
    pub fn heading(&self, net: &RoadNetwork) -> Heading {
        net.heading_from(self.road, self.from)
    }

    /// The intersection the vehicle is driving toward.
    pub fn toward(&self, net: &RoadNetwork) -> IntersectionId {
        net.other_end(self.road, self.from)
    }

    /// The class of the road currently being driven.
    pub fn road_class(&self, net: &RoadNetwork) -> RoadClass {
        net.road(self.road).class
    }
}

/// A turn (or straight crossing) executed at an intersection during one tick.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TurnEvent {
    /// The intersection where the maneuver happened.
    pub at: IntersectionId,
    /// Road being left.
    pub from_road: RoadId,
    /// Road being entered.
    pub to_road: RoadId,
    /// Geometric classification of the maneuver.
    pub kind: TurnKind,
    /// Class of the road being left.
    pub from_class: RoadClass,
    /// Class of the road being entered.
    pub onto_class: RoadClass,
}

/// One vehicle's movement during one mobility tick — everything a location-service
/// protocol needs to apply its update rules.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct MoveSample {
    /// The vehicle.
    pub id: VehicleId,
    /// Position before the tick.
    pub old_pos: Point,
    /// Position after the tick.
    pub new_pos: Point,
    /// Road occupied after the tick.
    pub road: RoadId,
    /// Orientation endpoint after the tick.
    pub from: IntersectionId,
    /// Class of `road`.
    pub road_class: RoadClass,
    /// Heading after the tick.
    pub heading: Heading,
    /// Speed over the tick in m/s.
    pub speed: f64,
    /// The intersection maneuver executed this tick, if any.
    pub turn: Option<TurnEvent>,
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;
    use vanet_geo::Cardinal;
    use vanet_roadnet::{generate_grid, GridMapSpec};

    #[test]
    fn position_and_heading_follow_orientation() {
        let net = generate_grid(&GridMapSpec::paper(500.0), &mut SmallRng::seed_from_u64(0));
        // Road 0 runs east from node 0 at the SW corner.
        let v = VehicleState {
            id: VehicleId(0),
            road: RoadId(0),
            from: IntersectionId(0),
            offset: 50.0,
            speed: 10.0,
            desired_speed: 15.0,
        };
        assert_eq!(v.position(&net), Point::new(50.0, 0.0));
        assert_eq!(v.heading(&net).to_cardinal(), Cardinal::East);
        assert_eq!(v.toward(&net), IntersectionId(1));

        // Same road driven the other way.
        let w = VehicleState {
            from: IntersectionId(1),
            ..v
        };
        assert_eq!(w.position(&net), Point::new(75.0, 0.0));
        assert_eq!(w.heading(&net).to_cardinal(), Cardinal::West);
        assert_eq!(w.toward(&net), IntersectionId(0));
    }

    #[test]
    fn road_class_passthrough() {
        let net = generate_grid(&GridMapSpec::paper(500.0), &mut SmallRng::seed_from_u64(0));
        let v = VehicleState {
            id: VehicleId(1),
            road: RoadId(0),
            from: IntersectionId(0),
            offset: 0.0,
            speed: 0.0,
            desired_speed: 10.0,
        };
        assert_eq!(v.road_class(&net), net.road(RoadId(0)).class);
    }
}
