//! Traffic lights.
//!
//! Every intersection runs a two-phase signal: east–west approaches get green while
//! north–south approaches get red, then they swap. The paper sets the red phase to
//! 50 s; we default green to 50 s as well. Phase offsets are staggered
//! deterministically per intersection so the whole city doesn't switch in lockstep.
//!
//! Lights matter to HLSRG beyond realism: vehicles stopped at a grid-center
//! intersection are the L1 location servers, so dwell time at red lights is part of
//! why the protocol works.

use serde::{Deserialize, Serialize};
use vanet_des::{SimDuration, SimTime};
use vanet_geo::Cardinal;
use vanet_roadnet::{IntersectionId, RoadNetwork};

/// Signal-plan parameters shared by every intersection.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LightConfig {
    /// Duration of the red phase seen by one axis (the paper's 50 s).
    pub red: SimDuration,
    /// Duration of the green phase (defaults to match red).
    pub green: SimDuration,
    /// If true, intersections get staggered phase offsets; if false they are all
    /// synchronized (useful in tests).
    pub staggered: bool,
}

impl Default for LightConfig {
    fn default() -> Self {
        LightConfig {
            red: SimDuration::from_secs(50),
            green: SimDuration::from_secs(50),
            staggered: true,
        }
    }
}

/// The signal plan for a whole map.
#[derive(Debug, Clone)]
pub struct TrafficLights {
    cfg: LightConfig,
    /// Phase offset per intersection, in microseconds within the cycle.
    offsets: Vec<u64>,
    /// Intersections with fewer than 3 incident roads (map borders, corners,
    /// mid-road nodes) have no signal: always green.
    signalized: Vec<bool>,
}

impl TrafficLights {
    /// Builds the plan for `net`.
    pub fn new(net: &RoadNetwork, cfg: LightConfig) -> Self {
        let cycle = cfg.red.as_micros() + cfg.green.as_micros();
        assert!(cycle > 0, "light cycle must be positive");
        let n = net.intersection_count();
        let mut offsets = Vec::with_capacity(n);
        let mut signalized = Vec::with_capacity(n);
        for i in 0..n {
            // Deterministic stagger: spread offsets across the cycle by a SplitMix
            // hash of the id so neighbors don't correlate.
            let off = if cfg.staggered {
                vanet_des::splitmix64(i as u64) % cycle
            } else {
                0
            };
            offsets.push(off);
            signalized.push(net.incident_roads(IntersectionId(i as u32)).len() >= 3);
        }
        TrafficLights {
            cfg,
            offsets,
            signalized,
        }
    }

    /// The shared configuration.
    pub fn config(&self) -> LightConfig {
        self.cfg
    }

    /// True if `node` has a working signal (≥3 incident roads).
    pub fn is_signalized(&self, node: IntersectionId) -> bool {
        self.signalized[node.0 as usize]
    }

    /// True if a vehicle arriving at `node` heading `approach` may proceed at `now`.
    ///
    /// Phase A (first `green` of the cycle) is green for east/west approaches;
    /// phase B is green for north/south. Unsignalized intersections are always green.
    pub fn is_green(&self, node: IntersectionId, approach: Cardinal, now: SimTime) -> bool {
        if !self.signalized[node.0 as usize] {
            return true;
        }
        let cycle = self.cfg.red.as_micros() + self.cfg.green.as_micros();
        let t = (now.as_micros() + self.offsets[node.0 as usize]) % cycle;
        let ew_green = t < self.cfg.green.as_micros();
        match approach {
            Cardinal::East | Cardinal::West => ew_green,
            Cardinal::North | Cardinal::South => !ew_green,
        }
    }

    /// Time until `node` next turns green for `approach` (zero if already green).
    pub fn time_to_green(
        &self,
        node: IntersectionId,
        approach: Cardinal,
        now: SimTime,
    ) -> SimDuration {
        if self.is_green(node, approach, now) {
            return SimDuration::ZERO;
        }
        let cycle = self.cfg.red.as_micros() + self.cfg.green.as_micros();
        let t = (now.as_micros() + self.offsets[node.0 as usize]) % cycle;
        let green_us = self.cfg.green.as_micros();
        // If EW is green (t < green_us) then NS waits until green_us; otherwise EW
        // waits until the cycle wraps.
        let wait = if t < green_us {
            green_us - t
        } else {
            cycle - t
        };
        SimDuration::from_micros(wait)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;
    use vanet_roadnet::{generate_grid, GridMapSpec};

    fn lights(staggered: bool) -> (RoadNetwork, TrafficLights) {
        let net = generate_grid(&GridMapSpec::paper(500.0), &mut SmallRng::seed_from_u64(0));
        let cfg = LightConfig {
            staggered,
            ..LightConfig::default()
        };
        let l = TrafficLights::new(&net, cfg);
        (net, l)
    }

    /// An interior node of the 500 m paper map (4 incident roads).
    const INTERIOR: IntersectionId = IntersectionId(6);
    /// The SW corner (2 incident roads → unsignalized).
    const CORNER: IntersectionId = IntersectionId(0);

    #[test]
    fn corner_is_always_green() {
        let (_, l) = lights(false);
        assert!(!l.is_signalized(CORNER));
        for s in [0u64, 30, 75, 120] {
            assert!(l.is_green(CORNER, Cardinal::North, SimTime::from_secs(s)));
        }
    }

    #[test]
    fn phases_alternate_and_axes_oppose() {
        let (_, l) = lights(false);
        assert!(l.is_signalized(INTERIOR));
        let early = SimTime::from_secs(10); // within first green
        let late = SimTime::from_secs(60); // within second phase
        assert!(l.is_green(INTERIOR, Cardinal::East, early));
        assert!(!l.is_green(INTERIOR, Cardinal::North, early));
        assert!(!l.is_green(INTERIOR, Cardinal::East, late));
        assert!(l.is_green(INTERIOR, Cardinal::North, late));
        // Opposing approaches share a phase.
        assert_eq!(
            l.is_green(INTERIOR, Cardinal::East, early),
            l.is_green(INTERIOR, Cardinal::West, early)
        );
    }

    #[test]
    fn cycle_repeats() {
        let (_, l) = lights(false);
        for s in 0..200u64 {
            assert_eq!(
                l.is_green(INTERIOR, Cardinal::East, SimTime::from_secs(s)),
                l.is_green(INTERIOR, Cardinal::East, SimTime::from_secs(s + 100))
            );
        }
    }

    #[test]
    fn time_to_green_is_exact() {
        let (_, l) = lights(false);
        let t = SimTime::from_secs(10);
        let w = l.time_to_green(INTERIOR, Cardinal::North, t);
        assert_eq!(w, SimDuration::from_secs(40));
        // And green exactly then, red the instant before.
        assert!(l.is_green(INTERIOR, Cardinal::North, t + w));
        assert!(!l.is_green(
            INTERIOR,
            Cardinal::North,
            t + w - SimDuration::from_micros(1)
        ));
        assert_eq!(
            l.time_to_green(INTERIOR, Cardinal::East, t),
            SimDuration::ZERO
        );
    }

    #[test]
    fn stagger_spreads_offsets() {
        let (net, l) = lights(true);
        let t = SimTime::from_secs(10);
        let greens = (0..net.intersection_count() as u32)
            .filter(|&i| l.is_signalized(IntersectionId(i)))
            .filter(|&i| l.is_green(IntersectionId(i), Cardinal::East, t))
            .count();
        let signalized = (0..net.intersection_count() as u32)
            .filter(|&i| l.is_signalized(IntersectionId(i)))
            .count();
        // With offsets spread over the cycle, not everyone shares a phase.
        assert!(greens > 0 && greens < signalized);
    }

    #[test]
    fn asymmetric_red_green() {
        let net = generate_grid(&GridMapSpec::paper(500.0), &mut SmallRng::seed_from_u64(0));
        let cfg = LightConfig {
            red: SimDuration::from_secs(50),
            green: SimDuration::from_secs(25),
            staggered: false,
        };
        let l = TrafficLights::new(&net, cfg);
        // EW green for the first 25 s only; cycle is 75 s.
        assert!(l.is_green(INTERIOR, Cardinal::East, SimTime::from_secs(10)));
        assert!(!l.is_green(INTERIOR, Cardinal::East, SimTime::from_secs(30)));
        assert!(l.is_green(INTERIOR, Cardinal::East, SimTime::from_secs(80)));
    }
}
