//! ns-2 mobility-trace interchange.
//!
//! The paper's toolchain couples its two simulators through a file: "The
//! VanetMobiSim can output a vehicle navigation scenario data for ns-2". That
//! format is the classic ns-2 movement trace:
//!
//! ```text
//! $node_(3) set X_ 125.0
//! $node_(3) set Y_ 250.0
//! $ns_ at 12.5 "$node_(3) setdest 300.0 250.0 10.0"
//! ```
//!
//! [`Ns2Trace`] records a mobility run into that format (so external ns-2
//! tooling can replay our traffic) and parses it back (so traces produced by the
//! real VanetMobiSim can be inspected with this crate's tools).

use crate::lights::TrafficLights;
use crate::model::MobilityModel;
use crate::vehicle::VehicleId;
#[cfg(test)]
use rand::rngs::SmallRng;
use serde::{Deserialize, Serialize};
use std::fmt::Write as _;
use vanet_des::{SimDuration, SimTime};
use vanet_geo::Point;
use vanet_roadnet::RoadNetwork;

/// One `setdest` command: at `at`, node `node` heads for `dest` at `speed` m/s.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SetDest {
    /// Command time in seconds.
    pub at: f64,
    /// The vehicle.
    pub node: VehicleId,
    /// Target waypoint.
    pub dest: Point,
    /// Commanded speed, m/s.
    pub speed: f64,
}

/// A parsed or recorded ns-2 movement trace.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct Ns2Trace {
    /// Initial position per vehicle (dense by `VehicleId`).
    pub initial: Vec<Point>,
    /// Movement commands in time order.
    pub commands: Vec<SetDest>,
}

impl Ns2Trace {
    /// Records `ticks` steps of a mobility model as waypoint commands.
    ///
    /// Each tick where a vehicle's heading or speed changed materially becomes a
    /// `setdest` toward its new position — the piecewise-linear approximation
    /// VanetMobiSim itself emits.
    pub fn record(
        net: &RoadNetwork,
        lights: &TrafficLights,
        model: &mut MobilityModel,
        ticks: usize,
    ) -> Ns2Trace {
        let states = model.vehicles();
        let initial: Vec<Point> = states.iter().map(|v| v.position(net)).collect();
        let mut last_speed: Vec<f64> = states.iter().map(|v| v.speed).collect();
        let mut last_cmd: Vec<SimTime> = vec![SimTime::ZERO; states.len()];
        // Waypoints refresh at least this often even while cruising straight, so
        // a replay never parks a vehicle for long between events.
        let refresh = SimDuration::from_secs(2);
        let mut commands = Vec::new();
        let tick = model.config().tick;
        let mut now = SimTime::ZERO;
        for _ in 0..ticks {
            let samples = model.step(net, lights, now);
            for s in samples {
                let i = s.id.0 as usize;
                let speed_changed = (s.speed - last_speed[i]).abs() > 0.5;
                let stale = now.saturating_since(last_cmd[i]) >= refresh;
                if s.turn.is_some() || speed_changed || stale {
                    commands.push(SetDest {
                        at: now.as_secs_f64(),
                        node: s.id,
                        dest: s.new_pos,
                        speed: s.speed.max(0.01), // ns-2 rejects zero speeds
                    });
                    last_speed[i] = s.speed;
                    last_cmd[i] = now;
                }
            }
            now += tick;
        }
        Ns2Trace { initial, commands }
    }

    /// Serializes to ns-2 movement-trace text.
    pub fn to_ns2_text(&self) -> String {
        let mut out = String::new();
        for (i, p) in self.initial.iter().enumerate() {
            let _ = writeln!(out, "$node_({i}) set X_ {}", p.x);
            let _ = writeln!(out, "$node_({i}) set Y_ {}", p.y);
        }
        for c in &self.commands {
            let _ = writeln!(
                out,
                "$ns_ at {} \"$node_({}) setdest {} {} {}\"",
                c.at, c.node.0, c.dest.x, c.dest.y, c.speed
            );
        }
        out
    }

    /// Parses ns-2 movement-trace text (the subset VanetMobiSim emits: initial
    /// `set X_`/`set Y_` pairs plus `setdest` commands). Unknown lines error.
    pub fn from_ns2_text(text: &str) -> Result<Ns2Trace, String> {
        let mut xs: Vec<(usize, f64)> = Vec::new();
        let mut ys: Vec<(usize, f64)> = Vec::new();
        let mut commands = Vec::new();
        for (ix, raw) in text.lines().enumerate() {
            let line = raw.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            let err = |m: &str| format!("line {}: {m}", ix + 1);
            if let Some(rest) = line.strip_prefix("$node_(") {
                // $node_(I) set X_ V
                let (id, rest) = rest
                    .split_once(')')
                    .ok_or_else(|| err("malformed node id"))?;
                let id: usize = id.parse().map_err(|_| err("bad node id"))?;
                let fields: Vec<&str> = rest.split_whitespace().collect();
                match fields.as_slice() {
                    ["set", "X_", v] => {
                        xs.push((id, v.parse().map_err(|_| err("bad X"))?));
                    }
                    ["set", "Y_", v] => {
                        ys.push((id, v.parse().map_err(|_| err("bad Y"))?));
                    }
                    _ => return Err(err("unknown node directive")),
                }
            } else if let Some(rest) = line.strip_prefix("$ns_ at ") {
                // $ns_ at T "$node_(I) setdest X Y S"
                let (t, rest) = rest
                    .split_once(' ')
                    .ok_or_else(|| err("malformed at-command"))?;
                let at: f64 = t.parse().map_err(|_| err("bad time"))?;
                let body = rest.trim().trim_matches('"');
                let body = body
                    .strip_prefix("$node_(")
                    .ok_or_else(|| err("missing node in setdest"))?;
                let (id, body) = body
                    .split_once(')')
                    .ok_or_else(|| err("malformed setdest node"))?;
                let id: usize = id.parse().map_err(|_| err("bad setdest node id"))?;
                let fields: Vec<&str> = body.split_whitespace().collect();
                match fields.as_slice() {
                    ["setdest", x, y, s] => commands.push(SetDest {
                        at,
                        node: VehicleId(id as u32),
                        dest: Point::new(
                            x.parse().map_err(|_| err("bad dest x"))?,
                            y.parse().map_err(|_| err("bad dest y"))?,
                        ),
                        speed: s.parse().map_err(|_| err("bad speed"))?,
                    }),
                    _ => return Err(err("unknown ns command")),
                }
            } else {
                return Err(err("unknown directive"));
            }
        }
        let n = xs.len().max(ys.len());
        let mut initial = vec![Point::ORIGIN; n];
        for (i, x) in xs {
            if i >= n {
                return Err(format!("X_ for out-of-range node {i}"));
            }
            initial[i].x = x;
        }
        for (i, y) in ys {
            if i >= n {
                return Err(format!("Y_ for out-of-range node {i}"));
            }
            initial[i].y = y;
        }
        Ok(Ns2Trace { initial, commands })
    }

    /// The trace's time horizon (last command time).
    pub fn horizon(&self) -> SimDuration {
        SimDuration::from_secs_f64(self.commands.last().map(|c| c.at).unwrap_or(0.0))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lights::LightConfig;
    use crate::model::MobilityConfig;
    use rand::SeedableRng;
    use vanet_roadnet::{generate_grid, GridMapSpec};

    fn recorded() -> Ns2Trace {
        let net = generate_grid(&GridMapSpec::paper(1000.0), &mut SmallRng::seed_from_u64(0));
        let lights = TrafficLights::new(&net, LightConfig::default());
        let mut rng = SmallRng::seed_from_u64(5);
        let mut model = MobilityModel::new(&net, MobilityConfig::default(), 40, &mut rng);
        Ns2Trace::record(&net, &lights, &mut model, 120)
    }

    #[test]
    fn recording_produces_commands() {
        let tr = recorded();
        assert_eq!(tr.initial.len(), 40);
        assert!(!tr.commands.is_empty());
        // Commands are in non-decreasing time order.
        for w in tr.commands.windows(2) {
            assert!(w[1].at >= w[0].at);
        }
        assert!(tr.horizon() <= SimDuration::from_secs(60));
    }

    #[test]
    fn text_roundtrip_is_lossless() {
        let tr = recorded();
        let text = tr.to_ns2_text();
        let back = Ns2Trace::from_ns2_text(&text).unwrap();
        assert_eq!(tr.initial.len(), back.initial.len());
        assert_eq!(tr.commands.len(), back.commands.len());
        for (a, b) in tr.initial.iter().zip(&back.initial) {
            assert_eq!(a, b);
        }
        for (a, b) in tr.commands.iter().zip(&back.commands) {
            assert_eq!(a, b);
        }
    }

    #[test]
    fn parses_handwritten_vanetmobisim_style() {
        let text = "\
$node_(0) set X_ 10.0
$node_(0) set Y_ 20.0
$node_(1) set X_ 30.5
$node_(1) set Y_ 40.5
$ns_ at 1.0 \"$node_(0) setdest 100.0 20.0 8.33\"
$ns_ at 2.5 \"$node_(1) setdest 30.5 200.0 13.9\"
";
        let tr = Ns2Trace::from_ns2_text(text).unwrap();
        assert_eq!(
            tr.initial,
            vec![Point::new(10.0, 20.0), Point::new(30.5, 40.5)]
        );
        assert_eq!(tr.commands.len(), 2);
        assert_eq!(tr.commands[1].node, VehicleId(1));
        assert_eq!(tr.commands[1].speed, 13.9);
    }

    #[test]
    fn rejects_garbage_with_line_numbers() {
        let err = Ns2Trace::from_ns2_text("$node_(0) set X_ 1\nwat\n").unwrap_err();
        assert!(err.contains("line 2"), "{err}");
        let err = Ns2Trace::from_ns2_text("$node_(0) set Z_ 1\n").unwrap_err();
        assert!(err.contains("unknown node directive"), "{err}");
    }

    #[test]
    fn speeds_are_never_zero() {
        let tr = recorded();
        for c in &tr.commands {
            assert!(c.speed > 0.0);
        }
    }
}
