//! Trip-based routing: the origin–destination model VanetMobiSim uses.
//!
//! Instead of memoryless weighted turns, each vehicle owns a *trip*: a random
//! destination intersection and the shortest path to it, recomputed on arrival.
//! Arteries are discounted in the path cost (they are faster roads), which keeps
//! traffic concentrated on them — the same macroscopic 10:1 property the
//! random-turn model produces, but with purposeful, acyclic journeys.

use rand::rngs::SmallRng;
use rand::RngExt;
use serde::{Deserialize, Serialize};
use std::collections::VecDeque;
use vanet_roadnet::{IntersectionId, Road, RoadClass, RoadId, RoadNetwork};

/// Parameters of the trip model.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TripConfig {
    /// Path-cost multiplier for artery segments (< 1 ⇒ arteries preferred).
    /// 0.35 reproduces the ~10:1 artery:normal density the paper observes.
    pub artery_cost_factor: f64,
}

impl Default for TripConfig {
    fn default() -> Self {
        TripConfig {
            artery_cost_factor: 0.35,
        }
    }
}

impl TripConfig {
    /// The path cost of one road under this config.
    pub fn cost(&self, road: &Road) -> f64 {
        match road.class {
            RoadClass::Artery => road.length * self.artery_cost_factor,
            RoadClass::Normal => road.length,
        }
    }
}

/// Per-vehicle trip state: the remaining roads to the current destination.
#[derive(Debug, Clone, Default)]
pub struct TripPlan {
    /// Remaining path, front = next road to take.
    pub path: VecDeque<RoadId>,
    /// Current destination (diagnostics).
    pub destination: Option<IntersectionId>,
}

impl TripPlan {
    /// Draws a fresh destination (≠ `from`) and plans the path to it.
    pub fn replan(
        &mut self,
        net: &RoadNetwork,
        cfg: &TripConfig,
        from: IntersectionId,
        rng: &mut SmallRng,
    ) {
        self.path.clear();
        // A handful of redraw attempts guards against isolated nodes.
        for _ in 0..8 {
            let dest = IntersectionId(rng.random_range(0..net.intersection_count() as u32));
            if dest == from {
                continue;
            }
            if let Some(p) = shortest_path_by(net, from, dest, |r| cfg.cost(r)) {
                if !p.is_empty() {
                    self.path = p.into();
                    self.destination = Some(dest);
                    return;
                }
            }
        }
        self.destination = None; // pathological map: caller falls back to random turns
    }

    /// The next planned road out of `at`, if the plan is valid there.
    pub fn next_road(&mut self, net: &RoadNetwork, at: IntersectionId) -> Option<RoadId> {
        let &front = self.path.front()?;
        let r = net.road(front);
        if r.a == at || r.b == at {
            self.path.pop_front();
            Some(front)
        } else {
            // The vehicle wandered off-plan (e.g. spawned mid-road): invalidate.
            self.path.clear();
            None
        }
    }
}

/// Dijkstra with an arbitrary cost, returning the road sequence.
fn shortest_path_by(
    net: &RoadNetwork,
    src: IntersectionId,
    dst: IntersectionId,
    cost: impl Fn(&Road) -> f64 + Copy,
) -> Option<Vec<RoadId>> {
    if src == dst {
        return Some(Vec::new());
    }
    let dist = net.dijkstra(src, cost);
    if dist[dst.0 as usize].is_infinite() {
        return None;
    }
    let mut path = Vec::new();
    let mut cur = dst;
    while cur != src {
        let dcur = dist[cur.0 as usize];
        let mut step = None;
        for &rid in net.incident_roads(cur) {
            let road = net.road(rid);
            let prev = net.other_end(rid, cur);
            if (dist[prev.0 as usize] + cost(road) - dcur).abs() < 1e-6 {
                step = Some((rid, prev));
                break;
            }
        }
        let (rid, prev) = step?;
        path.push(rid);
        cur = prev;
    }
    path.reverse();
    Some(path)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use vanet_roadnet::{generate_grid, GridMapSpec};

    fn net() -> RoadNetwork {
        generate_grid(&GridMapSpec::paper(1000.0), &mut SmallRng::seed_from_u64(0))
    }

    #[test]
    fn replan_produces_a_walk_to_the_destination() {
        let net = net();
        let cfg = TripConfig::default();
        let mut rng = SmallRng::seed_from_u64(1);
        let from = IntersectionId(0);
        let mut plan = TripPlan::default();
        plan.replan(&net, &cfg, from, &mut rng);
        let dest = plan.destination.expect("destination drawn");
        let mut cur = from;
        while let Some(rid) = plan.next_road(&net, cur) {
            cur = net.other_end(rid, cur);
        }
        assert_eq!(cur, dest, "plan does not end at the destination");
    }

    #[test]
    fn artery_discount_prefers_arteries() {
        let net = net();
        // From one artery corner to another: with a strong discount, the chosen
        // path must be all-artery even when a normal shortcut has equal length.
        let cfg = TripConfig {
            artery_cost_factor: 0.2,
        };
        let from = net.nearest_intersection(vanet_geo::Point::new(0.0, 0.0));
        let to = net.nearest_intersection(vanet_geo::Point::new(1000.0, 1000.0));
        let path = shortest_path_by(&net, from, to, |r| cfg.cost(r)).unwrap();
        let artery_len: f64 = path
            .iter()
            .filter(|&&r| net.road(r).class == RoadClass::Artery)
            .map(|&r| net.road(r).length)
            .sum();
        let total: f64 = path.iter().map(|&r| net.road(r).length).sum();
        assert!(
            artery_len / total > 0.99,
            "path uses normal roads: {:.2}",
            artery_len / total
        );
    }

    #[test]
    fn invalid_position_clears_plan() {
        let net = net();
        let cfg = TripConfig::default();
        let mut rng = SmallRng::seed_from_u64(3);
        let mut plan = TripPlan::default();
        plan.replan(&net, &cfg, IntersectionId(0), &mut rng);
        assert!(!plan.path.is_empty());
        // Asking for the next road from a node not on the plan clears it.
        let off_plan = IntersectionId(40);
        if plan
            .path
            .front()
            .map(|&r| net.road(r).a != off_plan && net.road(r).b != off_plan)
            .unwrap_or(false)
        {
            assert_eq!(plan.next_road(&net, off_plan), None);
            assert!(plan.path.is_empty());
        }
    }

    #[test]
    fn empty_plan_yields_none() {
        let net = net();
        let mut plan = TripPlan::default();
        assert_eq!(plan.next_road(&net, IntersectionId(0)), None);
    }
}
