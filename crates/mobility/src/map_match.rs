//! Map matching and trace replay.
//!
//! The paper's workflow feeds externally generated mobility (VanetMobiSim traces)
//! into the network simulator. Raw traces carry only positions — no road ids, no
//! headings, no turn events — but the protocols need all three. [`MapMatcher`]
//! recovers them by snapping each position onto the road graph (standard GPS
//! map-matching, simplified for simulation traces that are already near roads),
//! and [`TraceReplay`] turns a whole [`Ns2Trace`]
//! into the same per-tick [`MoveSample`] stream the built-in mobility model
//! produces — so a recorded or hand-written trace can drive a full protocol run.

use crate::ns2_trace::Ns2Trace;
use crate::vehicle::{MoveSample, TurnEvent, VehicleId};
use serde::{Deserialize, Serialize};
use vanet_des::{SimDuration, SimTime};
use vanet_geo::{classify_turn, Point, TurnKind};
use vanet_roadnet::{RoadId, RoadNetwork};

/// Snaps positions to the road graph.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct MapMatcher {
    /// Positions farther than this from every road still match (traces may cut
    /// corners), but a warning distance is reported in [`Match::off_road`].
    pub tolerance: f64,
}

/// One matched position.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Match {
    /// The matched road.
    pub road: RoadId,
    /// The snapped position (closest point on the road).
    pub snapped: Point,
    /// Distance from the raw position to the road.
    pub distance: f64,
    /// True if the raw position exceeded the matcher's tolerance.
    pub off_road: bool,
}

impl Default for MapMatcher {
    fn default() -> Self {
        MapMatcher { tolerance: 30.0 }
    }
}

impl MapMatcher {
    /// Matches one raw position.
    pub fn match_point(&self, net: &RoadNetwork, p: Point) -> Match {
        let (road, distance) = net.nearest_road(p);
        let snapped = net.segment_of(road).closest_point(p);
        Match {
            road,
            snapped,
            distance,
            off_road: distance > self.tolerance,
        }
    }
}

/// Replays an ns-2 trace as a [`MoveSample`] stream.
///
/// Vehicles move linearly toward their latest `setdest` waypoint at the commanded
/// speed. Each raw position is map-matched and **snapped onto the road** (raw
/// waypoint interpolation cuts corners through blocks, which would throw off the
/// road-corridor protocols); turns surface as [`TurnEvent`]s when the matched
/// road's axis heading changes beyond 45°, so the update rules fire just as they
/// do under the native mobility model.
#[derive(Debug, Clone)]
pub struct TraceReplay {
    trace: Ns2Trace,
    matcher: MapMatcher,
    tick: SimDuration,
    /// Current raw positions.
    positions: Vec<Point>,
    /// Last snapped (on-road) position per vehicle.
    snapped: Vec<Point>,
    /// Current targets and speeds (None = parked).
    targets: Vec<Option<(Point, f64)>>,
    /// Index of the next unconsumed command.
    cursor: usize,
    /// Last emitted heading per vehicle (for turn detection).
    last_heading: Vec<Option<vanet_geo::Heading>>,
    /// Last matched road per vehicle (so turn events carry the road *left*, which
    /// is what the class-1/class-2 update rules key on).
    last_road: Vec<Option<RoadId>>,
    /// Last sample's road-axis heading per vehicle.
    last_axis_heading: Vec<Option<vanet_geo::Heading>>,
    samples: Vec<MoveSample>,
}

impl TraceReplay {
    /// Builds a replayer stepping every `tick`.
    pub fn new(trace: Ns2Trace, matcher: MapMatcher, tick: SimDuration) -> Self {
        let n = trace.initial.len();
        TraceReplay {
            positions: trace.initial.clone(),
            snapped: trace.initial.clone(),
            targets: vec![None; n],
            cursor: 0,
            last_heading: vec![None; n],
            last_road: vec![None; n],
            last_axis_heading: vec![None; n],
            samples: Vec::with_capacity(n),
            trace,
            matcher,
            tick,
        }
    }

    /// Number of vehicles in the trace.
    pub fn len(&self) -> usize {
        self.positions.len()
    }

    /// True if the trace has no vehicles.
    pub fn is_empty(&self) -> bool {
        self.positions.is_empty()
    }

    /// Current raw position of a vehicle.
    pub fn position(&self, v: VehicleId) -> Point {
        self.positions[v.0 as usize]
    }

    /// Snapshot samples at the current instant (for protocol bootstrap).
    pub fn snapshot(&mut self, net: &RoadNetwork) -> Vec<MoveSample> {
        (0..self.positions.len())
            .map(|i| {
                let snapped = self.matcher.match_point(net, self.positions[i]).snapped;
                self.build_sample(net, i, snapped, snapped, 0.0)
            })
            .collect()
    }

    /// Advances the replay one tick starting at `now`, returning one sample per
    /// vehicle.
    pub fn step(&mut self, net: &RoadNetwork, now: SimTime) -> &[MoveSample] {
        // Activate every command scheduled up to the end of this tick.
        let end = (now + self.tick).as_secs_f64();
        while self.cursor < self.trace.commands.len() && self.trace.commands[self.cursor].at < end {
            let c = self.trace.commands[self.cursor];
            let i = c.node.0 as usize;
            if i < self.targets.len() {
                self.targets[i] = Some((c.dest, c.speed));
            }
            self.cursor += 1;
        }
        let dt = self.tick.as_secs_f64();
        self.samples.clear();
        for i in 0..self.positions.len() {
            let old_raw = self.positions[i];
            let new_raw = match self.targets[i] {
                None => old_raw,
                Some((dest, speed)) => {
                    let to_go = old_raw.distance(dest);
                    let step = speed * dt;
                    if step >= to_go {
                        self.targets[i] = None; // waypoint reached; wait for next
                        dest
                    } else {
                        old_raw.lerp(dest, step / to_go)
                    }
                }
            };
            self.positions[i] = new_raw;
            if let Some(h) = vanet_geo::Heading::of(new_raw - old_raw) {
                self.last_heading[i] = Some(h);
            }
            let old_snapped = self.snapped[i];
            // Parked or creeping vehicles keep their previous match: re-matching a
            // stationary point near an intersection would flip roads and fabricate
            // turns.
            let new_snapped = if new_raw.distance(old_raw) < 0.25 {
                old_snapped
            } else {
                self.matcher.match_point(net, new_raw).snapped
            };
            self.snapped[i] = new_snapped;
            let speed = new_raw.distance(old_raw) / dt;
            let sample = self.build_sample(net, i, old_snapped, new_snapped, speed);
            self.samples.push(sample);
        }
        &self.samples
    }

    /// Assembles a sample from snapped positions, updating the per-vehicle road
    /// and axis-heading memories and deriving turn events from them.
    fn build_sample(
        &mut self,
        net: &RoadNetwork,
        i: usize,
        old_pos: Point,
        new_pos: Point,
        speed: f64,
    ) -> MoveSample {
        let m = self.matcher.match_point(net, new_pos);
        let road = net.road(m.road);
        // Orient the road so the sample's heading is as close as possible to the
        // observed motion (or the previous heading when parked).
        let motion = self.last_heading[i].unwrap_or_else(|| net.heading_from(m.road, road.a));
        let from = if net.heading_from(m.road, road.a).angle_to(motion)
            <= net.heading_from(m.road, road.b).angle_to(motion)
        {
            road.a
        } else {
            road.b
        };
        let axis_heading = net.heading_from(m.road, from);
        let prev_road = self.last_road[i].unwrap_or(m.road);
        // A turn is a change of road-axis heading beyond 45° with real motion.
        let turn = match self.last_axis_heading[i] {
            Some(prev)
                if speed > 0.5 && classify_turn(prev, axis_heading) != TurnKind::Straight =>
            {
                Some(TurnEvent {
                    at: from,
                    from_road: prev_road,
                    to_road: m.road,
                    kind: classify_turn(prev, axis_heading),
                    from_class: net.road(prev_road).class,
                    onto_class: road.class,
                })
            }
            _ => None,
        };
        self.last_road[i] = Some(m.road);
        self.last_axis_heading[i] = Some(axis_heading);
        MoveSample {
            id: VehicleId(i as u32),
            old_pos,
            new_pos,
            road: m.road,
            from,
            road_class: road.class,
            heading: axis_heading,
            speed,
            turn,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lights::{LightConfig, TrafficLights};
    use crate::model::{MobilityConfig, MobilityModel};
    use crate::ns2_trace::SetDest;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;
    use vanet_roadnet::{generate_grid, GridMapSpec};

    fn net() -> RoadNetwork {
        generate_grid(&GridMapSpec::paper(1000.0), &mut SmallRng::seed_from_u64(0))
    }

    #[test]
    fn matcher_snaps_to_nearest_road() {
        let net = net();
        let m = MapMatcher::default().match_point(&net, Point::new(300.0, 7.0));
        assert!(m.distance <= 7.0 + 1e-9);
        assert!(!m.off_road);
        assert_eq!(m.snapped.y, 0.0);
        let far = MapMatcher::default().match_point(&net, Point::new(60.0, 60.0));
        assert!(far.off_road);
    }

    #[test]
    fn replay_moves_toward_waypoints() {
        let net = net();
        let trace = Ns2Trace {
            initial: vec![Point::new(0.0, 0.0)],
            commands: vec![SetDest {
                at: 0.0,
                node: VehicleId(0),
                dest: Point::new(100.0, 0.0),
                speed: 10.0,
            }],
        };
        let mut rp = TraceReplay::new(trace, MapMatcher::default(), SimDuration::from_millis(500));
        let mut now = SimTime::ZERO;
        for _ in 0..30 {
            rp.step(&net, now);
            now += SimDuration::from_millis(500);
        }
        // 10 m/s for ≥10 s: the waypoint is reached and the vehicle parks there.
        assert_eq!(rp.position(VehicleId(0)), Point::new(100.0, 0.0));
    }

    #[test]
    fn replay_emits_turn_events_on_heading_changes() {
        let net = net();
        // East along the y = 0 road to the (125, 0) intersection, then north up
        // the x = 125 road — a real corner of the lattice.
        let trace = Ns2Trace {
            initial: vec![Point::new(0.0, 0.0)],
            commands: vec![
                SetDest {
                    at: 0.0,
                    node: VehicleId(0),
                    dest: Point::new(125.0, 0.0),
                    speed: 10.0,
                },
                SetDest {
                    at: 13.5,
                    node: VehicleId(0),
                    dest: Point::new(125.0, 125.0),
                    speed: 10.0,
                },
            ],
        };
        let mut rp = TraceReplay::new(trace, MapMatcher::default(), SimDuration::from_millis(500));
        let mut saw_turn = false;
        let mut now = SimTime::ZERO;
        for _ in 0..60 {
            for s in rp.step(&net, now) {
                if s.turn.is_some() {
                    saw_turn = true;
                }
            }
            now += SimDuration::from_millis(500);
        }
        assert!(saw_turn, "east→north change produced no turn event");
    }

    #[test]
    fn recorded_trace_replays_with_consistent_headings() {
        // Record the native model, replay the trace, and check the replayed
        // samples stay on roads with sane speeds.
        let net = net();
        let lights = TrafficLights::new(&net, LightConfig::default());
        let mut rng = SmallRng::seed_from_u64(7);
        let mut model = MobilityModel::new(&net, MobilityConfig::default(), 25, &mut rng);
        let trace = Ns2Trace::record(&net, &lights, &mut model, 100);

        let mut rp = TraceReplay::new(trace, MapMatcher::default(), SimDuration::from_millis(500));
        assert_eq!(rp.len(), 25);
        let mut now = SimTime::ZERO;
        for _ in 0..100 {
            for s in rp.step(&net, now) {
                assert!(s.speed <= 17.0 + 1e-6, "replay speed {}", s.speed);
                let m = MapMatcher::default().match_point(&net, s.new_pos);
                assert!(
                    m.distance < 80.0,
                    "replayed vehicle far off-road: {}",
                    m.distance
                );
            }
            now += SimDuration::from_millis(500);
        }
    }

    #[test]
    fn snapshot_covers_every_vehicle() {
        let net = net();
        let trace = Ns2Trace {
            initial: vec![Point::new(0.0, 0.0), Point::new(500.0, 500.0)],
            commands: vec![],
        };
        let mut rp = TraceReplay::new(trace, MapMatcher::default(), SimDuration::from_millis(500));
        let snap = rp.snapshot(&net);
        assert_eq!(snap.len(), 2);
        assert_eq!(snap[0].id, VehicleId(0));
        assert_eq!(snap[1].new_pos, Point::new(500.0, 500.0));
    }
}
