//! Route choice at intersections.
//!
//! The paper's traffic has two macroscopic properties the protocols depend on:
//!
//! 1. **Arteries dominate**: main arteries carry roughly tenfold the vehicle density
//!    of normal roads ("almost 90 % \[of\] vehicles are driving on main arteries").
//! 2. **Artery traffic flows straight**: the update-suppression rule only pays off if
//!    artery vehicles usually continue straight rather than turning.
//!
//! We reproduce both with a weighted random-turn model: at each intersection a
//! vehicle picks the next road with probability proportional to
//! `class_weight × straightness_weight`, never U-turning unless the intersection is
//! a dead end.

use crate::vehicle::VehicleState;
use rand::rngs::SmallRng;
use rand::RngExt;
use serde::{Deserialize, Serialize};
use vanet_geo::{classify_turn, TurnKind};
use vanet_roadnet::{IntersectionId, RoadClass, RoadId, RoadNetwork};

/// Parameters of the weighted random-turn model.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RouteConfig {
    /// Weight multiplier for artery roads (the paper's ~10× density ratio).
    pub artery_bias: f64,
    /// Weight multiplier for continuing straight through an intersection.
    pub straight_bias: f64,
}

impl Default for RouteConfig {
    fn default() -> Self {
        // straight_bias 4 gives artery traffic a mean straight run of ~1.2 km
        // between turns — consistent with the paper's table lifetimes (≈1000 m of
        // driving) and with city traffic, where forced turns are frequent.
        RouteConfig {
            artery_bias: 10.0,
            straight_bias: 4.0,
        }
    }
}

/// Chooses the next road for a vehicle arriving at intersection `at` off `incoming`.
///
/// Returns the chosen road. U-turns are excluded unless `incoming` is the only
/// incident road.
pub fn choose_next_road(
    net: &RoadNetwork,
    cfg: &RouteConfig,
    at: IntersectionId,
    incoming: RoadId,
    rng: &mut SmallRng,
) -> RoadId {
    let candidates = net.incident_roads(at);
    debug_assert!(candidates.contains(&incoming), "incoming road not incident");
    if candidates.len() == 1 {
        return incoming; // dead end: forced U-turn
    }
    // Heading we arrive with: driving toward `at`, i.e. from the other end.
    let arrive_heading = net.heading_from(incoming, net.other_end(incoming, at));
    // Weight buffer on the stack: grid intersections have at most 4 incident
    // roads, so the per-crossing heap allocation this loop used to make is
    // pure overhead (a spilled Vec covers pathological junctions).
    let mut stack_buf = [0.0f64; 8];
    let mut heap_buf;
    let weights: &mut [f64] = if candidates.len() <= stack_buf.len() {
        &mut stack_buf[..candidates.len()]
    } else {
        heap_buf = vec![0.0; candidates.len()];
        &mut heap_buf
    };
    let mut total = 0.0;
    for (j, &rid) in candidates.iter().enumerate() {
        if rid == incoming {
            weights[j] = 0.0;
            continue;
        }
        let leave_heading = net.heading_from(rid, at);
        let class_w = match net.road(rid).class {
            RoadClass::Artery => cfg.artery_bias,
            RoadClass::Normal => 1.0,
        };
        let straight_w = match classify_turn(arrive_heading, leave_heading) {
            TurnKind::Straight => cfg.straight_bias,
            TurnKind::Turn => 1.0,
            TurnKind::UTurn => 0.0, // geometric U-turn via a distinct road: skip
        };
        let w = class_w * straight_w;
        weights[j] = w;
        total += w;
    }
    if total <= 0.0 {
        // Every alternative was a U-turn-like road; fall back to any non-incoming.
        return *candidates
            .iter()
            .find(|&&r| r != incoming)
            .unwrap_or(&incoming);
    }
    let mut draw = rng.random_range(0.0..total);
    for (&rid, &w) in candidates.iter().zip(weights.iter()) {
        if w <= 0.0 {
            continue;
        }
        if draw < w {
            return rid;
        }
        draw -= w;
    }
    // Floating-point tail: take the last weighted candidate.
    *candidates
        .iter()
        .zip(weights.iter())
        .rev()
        .find(|(_, &w)| w > 0.0)
        .map(|(r, _)| r)
        .expect("total > 0 implies a weighted candidate")
}

/// Spawns `n` vehicles on roads weighted by `length × class weight`, with uniform
/// offsets and desired speeds drawn from `[min_speed, max_speed]` m/s.
pub fn spawn_vehicles(
    net: &RoadNetwork,
    cfg: &RouteConfig,
    n: usize,
    min_speed: f64,
    max_speed: f64,
    rng: &mut SmallRng,
) -> Vec<VehicleState> {
    use crate::vehicle::{VehicleId, VehicleState};
    assert!(
        max_speed >= min_speed && min_speed >= 0.0,
        "invalid speed range"
    );
    let weights: Vec<f64> = net
        .roads()
        .iter()
        .map(|r| {
            r.length
                * match r.class {
                    RoadClass::Artery => cfg.artery_bias,
                    RoadClass::Normal => 1.0,
                }
        })
        .collect();
    let total: f64 = weights.iter().sum();
    let mut out = Vec::with_capacity(n);
    for i in 0..n {
        let mut draw = rng.random_range(0.0..total);
        let mut road = net.roads().last().expect("non-empty network").id;
        for (r, &w) in net.roads().iter().zip(weights.iter()) {
            if draw < w {
                road = r.id;
                break;
            }
            draw -= w;
        }
        let r = net.road(road);
        let from = if rng.random_bool(0.5) { r.a } else { r.b };
        let offset = rng.random_range(0.0..r.length);
        let desired_speed = if max_speed > min_speed {
            rng.random_range(min_speed..max_speed)
        } else {
            min_speed
        };
        out.push(VehicleState {
            id: VehicleId(i as u32),
            road,
            from,
            offset,
            speed: desired_speed, // start at cruise so warm-up is short
            desired_speed,
        });
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use vanet_roadnet::{generate_grid, GridMapSpec};

    fn net() -> RoadNetwork {
        generate_grid(&GridMapSpec::paper(1000.0), &mut SmallRng::seed_from_u64(0))
    }

    #[test]
    fn never_uturns_at_four_way() {
        let net = net();
        let cfg = RouteConfig::default();
        let mut rng = SmallRng::seed_from_u64(7);
        // Interior node with 4 roads.
        let at = net.nearest_intersection(vanet_geo::Point::new(500.0, 500.0));
        assert!(net.incident_roads(at).len() == 4);
        let incoming = net.incident_roads(at)[0];
        for _ in 0..200 {
            let next = choose_next_road(&net, &cfg, at, incoming, &mut rng);
            assert_ne!(next, incoming);
        }
    }

    #[test]
    fn straight_bias_prefers_straight() {
        let net = net();
        let cfg = RouteConfig {
            artery_bias: 1.0,
            straight_bias: 10.0,
        };
        let mut rng = SmallRng::seed_from_u64(3);
        let at = net.nearest_intersection(vanet_geo::Point::new(500.0, 500.0));
        let incoming = net.incident_roads(at)[0];
        let arrive = net.heading_from(incoming, net.other_end(incoming, at));
        let mut straight = 0;
        let trials = 1000;
        for _ in 0..trials {
            let next = choose_next_road(&net, &cfg, at, incoming, &mut rng);
            let leave = net.heading_from(next, at);
            if classify_turn(arrive, leave) == TurnKind::Straight {
                straight += 1;
            }
        }
        // Expected share = 10 / 12 ≈ 0.83.
        assert!(
            straight > trials * 7 / 10,
            "straight only {straight}/{trials}"
        );
    }

    #[test]
    fn spawn_respects_artery_bias() {
        let net = net();
        let cfg = RouteConfig::default();
        let mut rng = SmallRng::seed_from_u64(11);
        let vehicles = spawn_vehicles(&net, &cfg, 4000, 2.0, 16.0, &mut rng);
        assert_eq!(vehicles.len(), 4000);
        let on_artery = vehicles
            .iter()
            .filter(|v| v.road_class(&net) == RoadClass::Artery)
            .count();
        // 1 km paper map: artery length 3×2×1000 = 6000 m of 18000 m total.
        // Weighted share = 60000 / 72000 ≈ 0.83.
        let share = on_artery as f64 / vehicles.len() as f64;
        assert!((0.75..0.92).contains(&share), "artery share {share}");
    }

    #[test]
    fn spawned_vehicles_are_valid() {
        let net = net();
        let cfg = RouteConfig::default();
        let mut rng = SmallRng::seed_from_u64(5);
        for v in spawn_vehicles(&net, &cfg, 500, 2.0, 16.0, &mut rng) {
            let r = net.road(v.road);
            assert!(v.offset >= 0.0 && v.offset < r.length);
            assert!(v.desired_speed >= 2.0 && v.desired_speed <= 16.0);
            assert!(v.from == r.a || v.from == r.b);
        }
    }

    #[test]
    fn dead_end_forces_uturn() {
        use vanet_roadnet::RoadNetworkBuilder;
        let mut b = RoadNetworkBuilder::new();
        let a = b.add_intersection(vanet_geo::Point::new(0.0, 0.0));
        let c = b.add_intersection(vanet_geo::Point::new(100.0, 0.0));
        let r = b.add_road(a, c, RoadClass::Normal);
        let net = b.build();
        let mut rng = SmallRng::seed_from_u64(1);
        assert_eq!(
            choose_next_road(&net, &RouteConfig::default(), c, r, &mut rng),
            r
        );
    }
}
