//! # vanet-mobility — vehicular mobility model (VanetMobiSim substitute)
//!
//! Reproduces the macroscopic traffic behaviour the paper's evaluation depends on:
//!
//! * vehicles drive 0–60 km/h on the road graph and can never leave it,
//! * two-phase traffic lights with the paper's 50 s red (see [`TrafficLights`]),
//! * queueing behind leaders, so grid-center intersections accumulate stopped
//!   vehicles — the L1 location servers,
//! * artery-biased route choice giving the ~10× artery:normal density ratio that
//!   makes HLSRG's update suppression pay off.
//!
//! The engine is time-stepped ([`MobilityModel::step`], default 500 ms) and emits a
//! [`MoveSample`] per vehicle per tick; protocols consume those samples.

#![warn(missing_docs)]

pub mod census;
pub mod fleet;
pub mod lights;
pub mod map_match;
pub mod model;
pub mod ns2_trace;
pub mod route;
pub mod trips;
pub mod vehicle;

pub use census::TrafficCensus;
pub use fleet::FleetState;
pub use lights::{LightConfig, TrafficLights};
pub use map_match::{MapMatcher, Match, TraceReplay};
pub use model::{MobilityConfig, MobilityModel};
pub use ns2_trace::{Ns2Trace, SetDest};
pub use route::{choose_next_road, spawn_vehicles, RouteConfig};
pub use trips::{TripConfig, TripPlan};
pub use vehicle::{MoveSample, TurnEvent, VehicleId, VehicleState};

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;
    use vanet_des::SimTime;
    use vanet_roadnet::{generate_grid, GridMapSpec};

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        /// Whatever the seed and fleet size, after a minute of simulation every
        /// vehicle is still glued to a road and under its speed limit.
        #[test]
        fn fleet_invariants(seed in 0u64..50, n in 1usize..120) {
            let net = generate_grid(&GridMapSpec::paper(1000.0), &mut SmallRng::seed_from_u64(0));
            let lights = TrafficLights::new(&net, LightConfig::default());
            let mut rng = SmallRng::seed_from_u64(seed);
            let mut model = MobilityModel::new(&net, MobilityConfig::default(), n, &mut rng);
            let dt = model.config().tick;
            let max_speed = model.config().max_speed;
            let mut now = SimTime::ZERO;
            for _ in 0..120 {
                let samples = model.step(&net, &lights, now);
                prop_assert_eq!(samples.len(), n);
                for s in samples {
                    // A tick moves a vehicle at most max_speed × dt (+ε).
                    let d = s.old_pos.distance(s.new_pos);
                    prop_assert!(d <= max_speed * dt.as_secs_f64() + 1e-6);
                }
                now += dt;
            }
            for v in model.vehicles() {
                let len = net.road(v.road).length;
                prop_assert!(v.offset >= 0.0 && v.offset <= len);
                prop_assert!(v.speed <= v.desired_speed + 1e-9);
            }
        }

        /// Jittered maps keep the same invariants.
        #[test]
        fn jittered_map_fleet(seed in 0u64..20) {
            let net = generate_grid(
                &GridMapSpec::jittered(1000.0, 30.0),
                &mut SmallRng::seed_from_u64(3),
            );
            let lights = TrafficLights::new(&net, LightConfig::default());
            let mut rng = SmallRng::seed_from_u64(seed);
            let mut model = MobilityModel::new(&net, MobilityConfig::default(), 60, &mut rng);
            let dt = model.config().tick;
            let mut now = SimTime::ZERO;
            for _ in 0..60 {
                model.step(&net, &lights, now);
                now += dt;
            }
            for v in model.vehicles() {
                prop_assert!(v.offset >= 0.0 && v.offset <= net.road(v.road).length);
            }
        }
    }
}
