//! Per-road traffic measurement.
//!
//! The paper selects main arteries by *observing* traffic ("we count the number of
//! vehicles from Google Map"). `TrafficCensus` is that observation instrument: it
//! accumulates vehicle-ticks per road segment while the mobility model runs, and
//! the result feeds `vanet_roadnet::select_arteries`.

use crate::vehicle::VehicleState;
use serde::{Deserialize, Serialize};
use vanet_roadnet::{RoadId, RoadNetwork};

/// Accumulated per-road occupancy, in vehicle-ticks.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct TrafficCensus {
    counts: Vec<f64>,
    ticks: u64,
}

impl TrafficCensus {
    /// Creates a census for a map.
    pub fn new(net: &RoadNetwork) -> Self {
        TrafficCensus {
            counts: vec![0.0; net.road_count()],
            ticks: 0,
        }
    }

    /// Records one tick's fleet state.
    pub fn observe(&mut self, vehicles: &[VehicleState]) {
        self.ticks += 1;
        for v in vehicles {
            self.counts[v.road.0 as usize] += 1.0;
        }
    }

    /// Total observation ticks.
    pub fn ticks(&self) -> u64 {
        self.ticks
    }

    /// Raw vehicle-ticks per road (index = `RoadId`).
    pub fn counts(&self) -> &[f64] {
        &self.counts
    }

    /// Vehicle-ticks on one road.
    pub fn on_road(&self, r: RoadId) -> f64 {
        self.counts[r.0 as usize]
    }

    /// Mean vehicles present per tick on one road.
    pub fn mean_occupancy(&self, r: RoadId) -> f64 {
        if self.ticks == 0 {
            0.0
        } else {
            self.counts[r.0 as usize] / self.ticks as f64
        }
    }

    /// Mean vehicle density (vehicles per meter) on one road.
    pub fn density(&self, net: &RoadNetwork, r: RoadId) -> f64 {
        self.mean_occupancy(r) / net.road(r).length
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lights::{LightConfig, TrafficLights};
    use crate::model::{MobilityConfig, MobilityModel};
    use rand::rngs::SmallRng;
    use rand::SeedableRng;
    use vanet_des::SimTime;
    use vanet_roadnet::{generate_grid, GridMapSpec, RoadClass};

    #[test]
    fn totals_conserve_vehicles() {
        let net = generate_grid(&GridMapSpec::paper(1000.0), &mut SmallRng::seed_from_u64(0));
        let lights = TrafficLights::new(&net, LightConfig::default());
        let mut rng = SmallRng::seed_from_u64(1);
        let mut model = MobilityModel::new(&net, MobilityConfig::default(), 60, &mut rng);
        let mut census = TrafficCensus::new(&net);
        let mut now = SimTime::ZERO;
        for _ in 0..50 {
            model.step(&net, &lights, now);
            census.observe(&model.vehicles());
            now += model.config().tick;
        }
        assert_eq!(census.ticks(), 50);
        let total: f64 = census.counts().iter().sum();
        assert_eq!(total, 50.0 * 60.0);
    }

    #[test]
    fn census_sees_the_artery_bias() {
        let net = generate_grid(&GridMapSpec::paper(1000.0), &mut SmallRng::seed_from_u64(0));
        let lights = TrafficLights::new(&net, LightConfig::default());
        let mut rng = SmallRng::seed_from_u64(2);
        let mut model = MobilityModel::new(&net, MobilityConfig::default(), 400, &mut rng);
        let mut census = TrafficCensus::new(&net);
        let mut now = SimTime::ZERO;
        for _ in 0..240 {
            model.step(&net, &lights, now);
            census.observe(&model.vehicles());
            now += model.config().tick;
        }
        // Mean density on arteries must exceed normal roads by a wide margin.
        let mut artery = (0.0, 0.0);
        let mut normal = (0.0, 0.0);
        for r in net.roads() {
            let acc = if r.class == RoadClass::Artery {
                &mut artery
            } else {
                &mut normal
            };
            acc.0 += census.on_road(r.id);
            acc.1 += r.length;
        }
        let artery_density = artery.0 / artery.1;
        let normal_density = normal.0 / normal.1;
        assert!(
            artery_density > 4.0 * normal_density,
            "artery {artery_density:.4} vs normal {normal_density:.4}"
        );
    }

    #[test]
    fn empty_census_is_zero() {
        let net = generate_grid(&GridMapSpec::paper(500.0), &mut SmallRng::seed_from_u64(0));
        let census = TrafficCensus::new(&net);
        assert_eq!(census.mean_occupancy(RoadId(0)), 0.0);
        assert_eq!(census.density(&net, RoadId(0)), 0.0);
    }
}
