//! The mobility stepping engine.
//!
//! A time-stepped kinematic model (default Δ = 500 ms) playing the role of
//! VanetMobiSim: vehicles accelerate toward their desired speed, queue behind leaders
//! on the same directed road, stop at red lights, and pick their next road at each
//! intersection with the weighted random-turn model of [`crate::route`].
//!
//! Each tick yields one [`MoveSample`] per vehicle; the location-service protocols
//! consume those samples to apply their update rules (turn detection, boundary
//! crossings).
//!
//! Hot-path layout: vehicle kinematics live in a struct-of-arrays
//! [`FleetState`], and everything that is constant across a directed lane for
//! one tick — segment geometry, road length, road class, heading, and the
//! light phase at the far intersection — is hoisted into a per-lane context
//! table during the (already lane-sorted) leader pass. The advance loop then
//! streams the flat component arrays in index order with two array lookups per
//! vehicle instead of per-vehicle road-graph walks and modular light math.

use crate::fleet::FleetState;
use crate::lights::TrafficLights;
use crate::route::{choose_next_road, spawn_vehicles, RouteConfig};
use crate::trips::{TripConfig, TripPlan};
use crate::vehicle::{MoveSample, TurnEvent, VehicleId, VehicleState};
use rand::rngs::SmallRng;
use rand::{RngCore, SeedableRng};
use serde::{Deserialize, Serialize};
use vanet_des::{splitmix64, SimDuration, SimTime};
use vanet_geo::{classify_turn, Heading, Segment};
use vanet_roadnet::{IntersectionId, RoadClass, RoadId, RoadNetwork};

/// Parameters of the mobility model.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct MobilityConfig {
    /// Step length. 500 ms resolves every intersection event on 125 m blocks.
    pub tick: SimDuration,
    /// Acceleration toward desired speed, m/s².
    pub accel: f64,
    /// Minimum bumper-to-bumper spacing behind a leader, meters.
    pub min_gap: f64,
    /// Minimum desired speed at spawn, m/s.
    pub min_speed: f64,
    /// Maximum desired speed at spawn, m/s (the paper's 60 km/h ≈ 16.7 m/s).
    pub max_speed: f64,
    /// Route-choice weights (random-turn model; also drives spawn placement).
    pub route: RouteConfig,
    /// When set, vehicles follow origin–destination trips (VanetMobiSim style)
    /// instead of memoryless random turns.
    pub trips: Option<TripConfig>,
}

impl Default for MobilityConfig {
    fn default() -> Self {
        MobilityConfig {
            tick: SimDuration::from_millis(500),
            accel: 2.0,
            min_gap: 7.0,
            min_speed: 10.0 / 3.6,
            max_speed: 60.0 / 3.6,
            route: RouteConfig::default(),
            trips: None,
        }
    }
}

/// Everything the advance loop needs that is shared by every vehicle on one
/// directed lane for one tick: computed once per touched lane, read per
/// vehicle by index. `green` memoizes the traffic-light check — all vehicles
/// on a lane approach the same intersection from the same cardinal, so the
/// per-vehicle modular phase math collapses to a bool load.
#[derive(Debug, Clone, Copy)]
struct LaneCtx {
    /// Oriented segment of the lane (from the `from` endpoint).
    seg: Segment,
    /// Road length, meters.
    len: f64,
    /// Intersection ahead.
    end: IntersectionId,
    /// Travel heading on this lane.
    heading: Heading,
    /// Class of the lane's road.
    class: RoadClass,
    /// May the lane's vehicles cross `end` this tick?
    green: bool,
}

/// The mobility engine: owns every vehicle's state and advances them tick by tick.
///
/// Every vehicle carries its **own** deterministic RNG stream (seeded once at
/// construction), so a tick's outcome is a pure per-vehicle function of that
/// vehicle's state — the advance phase can be split across threads at any
/// chunking ([`MobilityModel::step_par`]) and still produce byte-identical
/// trajectories to the sequential [`MobilityModel::step`].
#[derive(Debug, Clone)]
pub struct MobilityModel {
    cfg: MobilityConfig,
    /// Kinematic state in struct-of-arrays form, indexed by dense vehicle id.
    fleet: FleetState,
    samples: Vec<MoveSample>,
    /// Per-vehicle trip plans (empty unless `cfg.trips` is set).
    plans: Vec<TripPlan>,
    /// Per-vehicle route-choice RNG streams, seeded at construction.
    rngs: Vec<SmallRng>,
    /// Scratch for the per-tick leader grouping, indexed by *directed lane*
    /// (`road · 2 + direction`): dense, so grouping a vehicle is two array
    /// indexings instead of a hash probe. Lane vectors are cleared, not
    /// dropped, so steady-state stepping reuses their allocations.
    lanes: Vec<Vec<(f64, usize)>>,
    /// Directed lanes occupied this tick (the ones to clear next tick).
    lanes_touched: Vec<u32>,
    /// Scratch for per-vehicle leader caps, reused across ticks.
    cap: Vec<f64>,
    /// Per-vehicle index into `lane_ctx` for this tick (compact slot of the
    /// vehicle's directed lane).
    lane_id: Vec<u32>,
    /// Directed lane → compact `lane_ctx` slot; only entries for lanes in
    /// `lanes_touched` are valid (written at first touch, before any read).
    lane_slot: Vec<u32>,
    /// Per-touched-lane shared context, rebuilt each tick in lane order.
    lane_ctx: Vec<LaneCtx>,
}

/// One independent route-choice stream per vehicle, derived from `base` by
/// running the vehicle index through SplitMix64 (each output seeds a
/// full Xoshiro expansion, so streams are statistically independent).
fn per_vehicle_rngs(n: usize, base: u64) -> Vec<SmallRng> {
    (0..n)
        .map(|i| SmallRng::seed_from_u64(splitmix64(base.wrapping_add(i as u64))))
        .collect()
}

/// Base for [`MobilityModel::from_states`] streams, where no spawn RNG exists.
const FROM_STATES_RNG_BASE: u64 = 0x6d6f_6269_6c69_7479; // "mobility"

impl MobilityModel {
    /// Spawns `n` vehicles on `net` and builds the engine. The spawn `rng`
    /// also seeds the per-vehicle route-choice streams (one draw).
    pub fn new(net: &RoadNetwork, cfg: MobilityConfig, n: usize, rng: &mut SmallRng) -> Self {
        let vehicles = spawn_vehicles(net, &cfg.route, n, cfg.min_speed, cfg.max_speed, rng);
        let rngs = per_vehicle_rngs(n, rng.next_u64());
        Self::build(cfg, FleetState::from_states(&vehicles), rngs)
    }

    /// Builds the engine from pre-constructed vehicle states (tests, replays).
    /// Ids must be dense and in order (the fleet-layout invariant).
    pub fn from_states(cfg: MobilityConfig, vehicles: Vec<VehicleState>) -> Self {
        let rngs = per_vehicle_rngs(vehicles.len(), FROM_STATES_RNG_BASE);
        Self::build(cfg, FleetState::from_states(&vehicles), rngs)
    }

    fn build(cfg: MobilityConfig, fleet: FleetState, rngs: Vec<SmallRng>) -> Self {
        let n = fleet.len();
        MobilityModel {
            cfg,
            fleet,
            samples: Vec::with_capacity(n),
            plans: vec![TripPlan::default(); n],
            rngs,
            lanes: Vec::new(),
            lanes_touched: Vec::new(),
            cap: Vec::with_capacity(n),
            lane_id: Vec::with_capacity(n),
            lane_slot: Vec::new(),
            lane_ctx: Vec::new(),
        }
    }

    /// The configuration.
    pub fn config(&self) -> &MobilityConfig {
        &self.cfg
    }

    /// Current state of every vehicle, by id order — materialized from the
    /// struct-of-arrays fleet (cold paths: census, trace export, tests).
    pub fn vehicles(&self) -> Vec<VehicleState> {
        self.fleet.to_states()
    }

    /// The struct-of-arrays fleet state (the hot-path representation).
    pub fn fleet(&self) -> &FleetState {
        &self.fleet
    }

    /// Number of vehicles.
    pub fn len(&self) -> usize {
        self.fleet.len()
    }

    /// True if the model has no vehicles.
    pub fn is_empty(&self) -> bool {
        self.fleet.is_empty()
    }

    /// A zero-motion sample per vehicle describing its current state — used to
    /// bootstrap protocols at t = 0 (vehicles "register" when joining the network).
    pub fn snapshot(&self, net: &RoadNetwork) -> Vec<MoveSample> {
        (0..self.fleet.len())
            .map(|i| {
                let v = self.fleet.state(i);
                let pos = v.position(net);
                MoveSample {
                    id: v.id,
                    old_pos: pos,
                    new_pos: pos,
                    road: v.road,
                    from: v.from,
                    road_class: v.road_class(net),
                    heading: v.heading(net),
                    speed: v.speed,
                    turn: None,
                }
            })
            .collect()
    }

    /// Fraction of vehicles currently on artery roads.
    pub fn artery_share(&self, net: &RoadNetwork) -> f64 {
        if self.fleet.is_empty() {
            return 0.0;
        }
        let on = self
            .fleet
            .road
            .iter()
            .filter(|&&r| net.road(r).class == RoadClass::Artery)
            .count();
        on as f64 / self.fleet.len() as f64
    }

    /// Phase 1 of a tick: the leader constraint, from everyone's *old* offset.
    /// Stable and order-free (each vehicle sits in exactly one lane, so the
    /// `cap` writes never collide and lane visit order cannot affect the
    /// result). Leaves `cap[i]` = max offset vehicle `i` may reach this tick,
    /// and `lane_id[i]` = compact slot of vehicle `i`'s directed lane.
    fn prepare_caps(&mut self, net: &RoadNetwork) {
        let n = self.fleet.len();
        self.lanes.resize_with(net.road_count() * 2, Vec::new);
        self.lane_slot.resize(net.road_count() * 2, 0);
        for &l in &self.lanes_touched {
            self.lanes[l as usize].clear();
        }
        self.lanes_touched.clear();
        self.lane_id.clear();
        for i in 0..n {
            let road = self.fleet.road[i];
            let l = road.0 as usize * 2 + (self.fleet.from[i] == net.road(road).a) as usize;
            if self.lanes[l].is_empty() {
                self.lane_slot[l] = self.lanes_touched.len() as u32;
                self.lanes_touched.push(l as u32);
            }
            self.lanes[l].push((self.fleet.offset[i], i));
            self.lane_id.push(self.lane_slot[l]);
        }
        self.cap.clear();
        self.cap.resize(n, f64::INFINITY);
        for &l in &self.lanes_touched {
            let lane = &mut self.lanes[l as usize];
            lane.sort_by(|a, b| b.0.total_cmp(&a.0).then_with(|| a.1.cmp(&b.1)));
            for w in lane.windows(2) {
                let (leader_off, _) = w[0];
                let (_, follower) = w[1];
                self.cap[follower] = leader_off - self.cfg.min_gap;
            }
        }
    }

    /// Builds the per-lane shared context for this tick, in the lane order the
    /// leader pass discovered. One road lookup, one segment build, and one
    /// light check per *occupied directed lane*, amortized over all of its
    /// vehicles.
    fn prepare_lane_ctx(&mut self, net: &RoadNetwork, lights: &TrafficLights, now: SimTime) {
        self.lane_ctx.clear();
        for &l in &self.lanes_touched {
            let road = RoadId(l / 2);
            let r = net.road(road);
            let from = if l % 2 == 1 { r.a } else { r.b };
            let end = if l % 2 == 1 { r.b } else { r.a };
            let seg = Segment::new(net.pos(from), net.pos(end));
            let heading = seg.heading().expect("roads have positive length");
            self.lane_ctx.push(LaneCtx {
                seg,
                len: r.length,
                end,
                heading,
                class: r.class,
                green: lights.is_green(end, heading.to_cardinal(), now),
            });
        }
    }

    /// Pre-fills the sample buffer so the advance phase can write slots by
    /// index (the parallel path hands disjoint sub-slices to threads).
    fn seed_samples(&mut self, net: &RoadNetwork) {
        self.samples.clear();
        if !self.fleet.is_empty() {
            let v0 = self.fleet.state(0);
            let pos = v0.position(net);
            let placeholder = MoveSample {
                id: v0.id,
                old_pos: pos,
                new_pos: pos,
                road: v0.road,
                from: v0.from,
                road_class: v0.road_class(net),
                heading: v0.heading(net),
                speed: v0.speed,
                turn: None,
            };
            self.samples.resize(self.fleet.len(), placeholder);
        }
    }

    /// Advances every vehicle by one tick starting at `now`, returning one sample per
    /// vehicle (in id order).
    pub fn step(
        &mut self,
        net: &RoadNetwork,
        lights: &TrafficLights,
        now: SimTime,
    ) -> &[MoveSample] {
        self.prepare_caps(net);
        self.prepare_lane_ctx(net, lights, now);
        self.seed_samples(net);
        advance_chunk(
            &self.cfg,
            net,
            &self.lane_ctx,
            0,
            &self.cap,
            &self.lane_id,
            &mut self.fleet.road,
            &mut self.fleet.from,
            &mut self.fleet.offset,
            &mut self.fleet.speed,
            &self.fleet.desired_speed,
            &mut self.plans,
            &mut self.rngs,
            &mut self.samples,
        );
        &self.samples
    }

    /// [`MobilityModel::step`] with the advance phase fanned out over up to
    /// `threads` OS threads. Because every vehicle owns its RNG stream and
    /// writes only its own state slot, the result is **byte-identical** to
    /// the sequential step for any thread count or chunking — the per-tick
    /// determinism contract the region-sharded runner relies on. Each worker
    /// gets plain disjoint sub-slices of every fleet component array plus a
    /// shared view of the per-lane context table.
    pub fn step_par(
        &mut self,
        net: &RoadNetwork,
        lights: &TrafficLights,
        now: SimTime,
        threads: usize,
    ) -> &[MoveSample] {
        let n = self.fleet.len();
        let threads = threads.clamp(1, n.max(1));
        if threads == 1 {
            return self.step(net, lights, now);
        }
        self.prepare_caps(net);
        self.prepare_lane_ctx(net, lights, now);
        self.seed_samples(net);
        let chunk = n.div_ceil(threads);
        let cfg = self.cfg;
        std::thread::scope(|s| {
            let mut road = self.fleet.road.as_mut_slice();
            let mut from = self.fleet.from.as_mut_slice();
            let mut offset = self.fleet.offset.as_mut_slice();
            let mut speed = self.fleet.speed.as_mut_slice();
            let mut desired = self.fleet.desired_speed.as_slice();
            let mut plans = self.plans.as_mut_slice();
            let mut rngs = self.rngs.as_mut_slice();
            let mut samples = self.samples.as_mut_slice();
            let mut cap = self.cap.as_slice();
            let mut lane_id = self.lane_id.as_slice();
            let lane_ctx = self.lane_ctx.as_slice();
            let mut base = 0usize;
            while base < n {
                let take = chunk.min(n - base);
                let (r, rest) = std::mem::take(&mut road).split_at_mut(take);
                road = rest;
                let (f, rest) = std::mem::take(&mut from).split_at_mut(take);
                from = rest;
                let (o, rest) = std::mem::take(&mut offset).split_at_mut(take);
                offset = rest;
                let (sp, rest) = std::mem::take(&mut speed).split_at_mut(take);
                speed = rest;
                let (d, rest) = desired.split_at(take);
                desired = rest;
                let (pl, rest) = std::mem::take(&mut plans).split_at_mut(take);
                plans = rest;
                let (rg, rest) = std::mem::take(&mut rngs).split_at_mut(take);
                rngs = rest;
                let (sm, rest) = std::mem::take(&mut samples).split_at_mut(take);
                samples = rest;
                let (c, rest) = cap.split_at(take);
                cap = rest;
                let (li, rest) = lane_id.split_at(take);
                lane_id = rest;
                s.spawn(move || {
                    advance_chunk(&cfg, net, lane_ctx, base, c, li, r, f, o, sp, d, pl, rg, sm);
                });
                base += take;
            }
        });
        &self.samples
    }
}

/// Phase 2 of a tick for one contiguous chunk of vehicles: kinematic advance,
/// memoized light checks, and route choice, each vehicle touching only its own
/// slots (state, plan, RNG, sample). Chunk boundaries cannot affect the
/// outcome. `base` is the chunk's first global vehicle index (== id, ids being
/// dense).
#[allow(clippy::too_many_arguments)]
fn advance_chunk(
    cfg: &MobilityConfig,
    net: &RoadNetwork,
    lane_ctx: &[LaneCtx],
    base: usize,
    cap: &[f64],
    lane_id: &[u32],
    road: &mut [RoadId],
    from: &mut [IntersectionId],
    offset: &mut [f64],
    speed: &mut [f64],
    desired: &[f64],
    plans: &mut [TripPlan],
    rngs: &mut [SmallRng],
    samples: &mut [MoveSample],
) {
    let dt = cfg.tick.as_secs_f64();
    for i in 0..road.len() {
        let ctx = &lane_ctx[lane_id[i] as usize];
        let old_road = road[i];
        let old_from = from[i];
        let old_offset = offset[i];
        let rng = &mut rngs[i];
        let old_pos = ctx.seg.point_at(old_offset);
        let mut turn: Option<TurnEvent> = None;

        let target_speed = (speed[i] + cfg.accel * dt).min(desired[i]);
        let mut advance = target_speed * dt;
        // Honor the leader gap (never move backward because of it).
        if old_offset + advance > cap[i] {
            advance = (cap[i] - old_offset).max(0.0);
        }

        let len = ctx.len;
        let (new_road, new_from, new_offset);
        if old_offset + advance >= len && ctx.green {
            // Cross the intersection: pick the next road, carry leftover motion.
            let at = ctx.end;
            let arrive = ctx.heading;
            let next = match cfg.trips {
                None => choose_next_road(net, &cfg.route, at, old_road, rng),
                Some(trip_cfg) => {
                    // Trip mode: follow the plan, replanning at the
                    // destination (or when the plan went stale). A plan that
                    // cannot be built falls back to one random turn.
                    match plans[i].next_road(net, at) {
                        Some(r) => r,
                        None => {
                            plans[i].replan(net, &trip_cfg, at, rng);
                            plans[i].next_road(net, at).unwrap_or_else(|| {
                                choose_next_road(net, &cfg.route, at, old_road, rng)
                            })
                        }
                    }
                }
            };
            let leave = net.heading_from(next, at);
            turn = Some(TurnEvent {
                at,
                from_road: old_road,
                to_road: next,
                kind: classify_turn(arrive, leave),
                from_class: ctx.class,
                onto_class: net.road(next).class,
            });
            let leftover = (old_offset + advance - len).max(0.0);
            new_road = next;
            new_from = at;
            // Clamp so a single tick never skips the whole next road.
            new_offset = leftover.min(net.road(next).length - 1e-6);
        } else {
            // Either staying on the road or blocked at a red light.
            new_road = old_road;
            new_from = old_from;
            new_offset = (old_offset + advance).min(len);
        }

        let (new_pos, out_class, out_heading) = if turn.is_some() {
            (
                net.segment_from(new_road, new_from).point_at(new_offset),
                net.road(new_road).class,
                net.heading_from(new_road, new_from),
            )
        } else {
            (ctx.seg.point_at(new_offset), ctx.class, ctx.heading)
        };
        // Realized speed, from actual displacement along roads.
        let moved = if turn.is_some() {
            (len - old_offset) + new_offset
        } else {
            new_offset - old_offset
        };
        let new_speed = (moved / dt).max(0.0);
        road[i] = new_road;
        from[i] = new_from;
        offset[i] = new_offset;
        speed[i] = new_speed;

        samples[i] = MoveSample {
            id: VehicleId((base + i) as u32),
            old_pos,
            new_pos,
            road: new_road,
            from: new_from,
            road_class: out_class,
            heading: out_heading,
            speed: new_speed,
            turn,
        };
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lights::LightConfig;
    use crate::vehicle::VehicleId;
    use rand::SeedableRng;
    use std::collections::HashMap;
    use vanet_geo::{Cardinal, Point};
    use vanet_roadnet::{generate_grid, GridMapSpec, RoadClass};

    fn setup(n: usize, seed: u64) -> (RoadNetwork, TrafficLights, MobilityModel, SmallRng) {
        let net = generate_grid(&GridMapSpec::paper(1000.0), &mut SmallRng::seed_from_u64(0));
        let lights = TrafficLights::new(&net, LightConfig::default());
        let mut rng = SmallRng::seed_from_u64(seed);
        let model = MobilityModel::new(&net, MobilityConfig::default(), n, &mut rng);
        (net, lights, model, rng)
    }

    fn run_ticks(
        net: &RoadNetwork,
        lights: &TrafficLights,
        model: &mut MobilityModel,
        ticks: usize,
    ) {
        let dt = model.config().tick;
        let mut now = SimTime::ZERO;
        for _ in 0..ticks {
            model.step(net, lights, now);
            now += dt;
        }
    }

    #[test]
    fn vehicles_stay_on_roads_and_within_speed() {
        let (net, lights, mut model, _) = setup(200, 1);
        run_ticks(&net, &lights, &mut model, 400);
        for v in model.vehicles() {
            let len = net.road(v.road).length;
            assert!(
                v.offset >= 0.0 && v.offset <= len,
                "offset {} of {}",
                v.offset,
                len
            );
            assert!(
                v.speed <= v.desired_speed + 1e-6,
                "speeding: {} > {}",
                v.speed,
                v.desired_speed
            );
            // On-road invariant: position is on the segment.
            let seg = net.segment_from(v.road, v.from);
            assert!(seg.distance_to(v.position(&net)) < 1e-6);
        }
    }

    #[test]
    fn red_light_stops_vehicle_at_intersection() {
        let net = generate_grid(&GridMapSpec::paper(500.0), &mut SmallRng::seed_from_u64(0));
        let lights = TrafficLights::new(
            &net,
            LightConfig {
                staggered: false,
                ..Default::default()
            },
        );
        // Node (1,1) = id 6 is signalized; approach from the south on the vertical
        // road: NS is red during the first 50 s phase.
        let south = net.nearest_intersection(Point::new(125.0, 0.0));
        let target = net.nearest_intersection(Point::new(125.0, 125.0));
        let road = *net
            .incident_roads(south)
            .iter()
            .find(|&&r| net.other_end(r, south) == target)
            .unwrap();
        let v = VehicleState {
            id: VehicleId(0),
            road,
            from: south,
            offset: 100.0,
            speed: 14.0,
            desired_speed: 14.0,
        };
        let mut model = MobilityModel::from_states(MobilityConfig::default(), vec![v]);
        // 10 s of ticks: it would cross 125 m easily if the light were green.
        let dt = model.config().tick;
        let mut now = SimTime::ZERO;
        for _ in 0..20 {
            model.step(&net, &lights, now);
            now += dt;
        }
        let v = model.vehicles()[0];
        assert_eq!(v.road, road, "crossed against a red light");
        assert_eq!(v.offset, net.road(road).length);
        assert_eq!(v.speed, 0.0);
        assert_eq!(v.position(&net), net.pos(target));
    }

    #[test]
    fn green_light_crossing_emits_turn_event() {
        let net = generate_grid(&GridMapSpec::paper(500.0), &mut SmallRng::seed_from_u64(0));
        let lights = TrafficLights::new(
            &net,
            LightConfig {
                staggered: false,
                ..Default::default()
            },
        );
        // Approach an interior node from the west: EW is green in phase A.
        let west = net.nearest_intersection(Point::new(0.0, 125.0));
        let target = net.nearest_intersection(Point::new(125.0, 125.0));
        let road = *net
            .incident_roads(west)
            .iter()
            .find(|&&r| net.other_end(r, west) == target)
            .unwrap();
        let v = VehicleState {
            id: VehicleId(0),
            road,
            from: west,
            offset: 120.0,
            speed: 14.0,
            desired_speed: 14.0,
        };
        let mut model = MobilityModel::from_states(MobilityConfig::default(), vec![v]);
        let samples = model.step(&net, &lights, SimTime::ZERO);
        let turn = samples[0].turn.expect("should have crossed");
        assert_eq!(turn.at, target);
        assert_eq!(turn.from_road, road);
        assert_ne!(turn.to_road, road);
        // Vehicle is now on the new road just past the intersection.
        let v = model.vehicles()[0];
        assert_eq!(v.from, target);
        assert!(v.offset < 10.0);
    }

    #[test]
    fn no_passing_within_a_lane() {
        let (net, lights, mut model, _) = setup(300, 3);
        let dt = model.config().tick;
        let mut now = SimTime::ZERO;
        for _ in 0..200 {
            model.step(&net, &lights, now);
            now += dt;
            // After each tick, same-lane vehicles keep distinct offsets in order.
            let mut lanes: HashMap<(RoadId, IntersectionId), Vec<f64>> = HashMap::new();
            for v in model.vehicles() {
                lanes.entry((v.road, v.from)).or_default().push(v.offset);
            }
            for (lane, mut offs) in lanes {
                offs.sort_by(f64::total_cmp);
                for w in offs.windows(2) {
                    assert!(
                        w[1] - w[0] >= -1e-9,
                        "ordering broken on {lane:?}: {offs:?}"
                    );
                }
            }
        }
    }

    #[test]
    fn artery_share_persists_over_time() {
        let (net, lights, mut model, _) = setup(500, 4);
        let initial = model.artery_share(&net);
        assert!(initial > 0.7, "initial artery share {initial}");
        run_ticks(&net, &lights, &mut model, 600); // 5 min
        let after = model.artery_share(&net);
        assert!(after > 0.6, "artery share decayed to {after}");
    }

    #[test]
    fn deterministic_across_identical_seeds() {
        let (net, lights, mut m1, _) = setup(100, 9);
        let (_, _, mut m2, _) = setup(100, 9);
        run_ticks(&net, &lights, &mut m1, 100);
        run_ticks(&net, &lights, &mut m2, 100);
        assert_eq!(m1.vehicles(), m2.vehicles());
    }

    #[test]
    fn samples_cover_every_vehicle_in_id_order() {
        let (net, lights, mut model, _) = setup(50, 5);
        let samples = model.step(&net, &lights, SimTime::ZERO);
        assert_eq!(samples.len(), 50);
        for (i, s) in samples.iter().enumerate() {
            assert_eq!(s.id, VehicleId(i as u32));
        }
    }

    #[test]
    fn stopped_vehicle_restarts_on_green() {
        let net = generate_grid(&GridMapSpec::paper(500.0), &mut SmallRng::seed_from_u64(0));
        let lights = TrafficLights::new(
            &net,
            LightConfig {
                staggered: false,
                ..Default::default()
            },
        );
        let south = net.nearest_intersection(Point::new(125.0, 0.0));
        let target = net.nearest_intersection(Point::new(125.0, 125.0));
        let road = *net
            .incident_roads(south)
            .iter()
            .find(|&&r| net.other_end(r, south) == target)
            .unwrap();
        let v = VehicleState {
            id: VehicleId(0),
            road,
            from: south,
            offset: 124.0,
            speed: 10.0,
            desired_speed: 10.0,
        };
        let mut model = MobilityModel::from_states(MobilityConfig::default(), vec![v]);
        let dt = model.config().tick;
        // Wait through the 50 s red phase, then a few more ticks.
        let mut crossed = false;
        let mut now = SimTime::ZERO;
        for _ in 0..120 {
            let s = model.step(&net, &lights, now);
            now += dt;
            if s[0].turn.is_some() {
                crossed = true;
                assert!(now > SimTime::from_secs(50), "crossed during red");
                break;
            }
        }
        assert!(crossed, "never restarted after red");
        assert!(lights.is_green(target, Cardinal::North, SimTime::from_secs(55)));
    }

    #[test]
    fn trip_mode_keeps_invariants_and_artery_concentration() {
        let net = generate_grid(&GridMapSpec::paper(1000.0), &mut SmallRng::seed_from_u64(0));
        let lights = TrafficLights::new(&net, LightConfig::default());
        let mut rng = SmallRng::seed_from_u64(21);
        let cfg = MobilityConfig {
            trips: Some(crate::trips::TripConfig::default()),
            ..Default::default()
        };
        let mut model = MobilityModel::new(&net, cfg, 300, &mut rng);
        let dt = model.config().tick;
        let mut now = SimTime::ZERO;
        for _ in 0..400 {
            model.step(&net, &lights, now);
            now += dt;
        }
        for v in model.vehicles() {
            let len = net.road(v.road).length;
            assert!(v.offset >= 0.0 && v.offset <= len);
            assert!(v.speed <= v.desired_speed + 1e-6);
        }
        // The artery cost discount keeps traffic concentrated.
        assert!(
            model.artery_share(&net) > 0.5,
            "share {}",
            model.artery_share(&net)
        );
    }

    #[test]
    fn trip_mode_is_deterministic() {
        let net = generate_grid(&GridMapSpec::paper(1000.0), &mut SmallRng::seed_from_u64(0));
        let lights = TrafficLights::new(&net, LightConfig::default());
        let cfg = MobilityConfig {
            trips: Some(crate::trips::TripConfig::default()),
            ..Default::default()
        };
        let run = |seed: u64| {
            let mut rng = SmallRng::seed_from_u64(seed);
            let mut model = MobilityModel::new(&net, cfg, 80, &mut rng);
            let mut now = SimTime::ZERO;
            for _ in 0..100 {
                model.step(&net, &lights, now);
                now += model.config().tick;
            }
            model.vehicles()
        };
        assert_eq!(run(5), run(5));
    }

    #[test]
    fn turn_events_record_classes() {
        let (net, lights, mut model, _) = setup(300, 6);
        let dt = model.config().tick;
        let mut now = SimTime::ZERO;
        let mut seen_artery_turn = false;
        for _ in 0..300 {
            for s in model.step(&net, &lights, now) {
                if let Some(t) = s.turn {
                    assert_eq!(t.from_class, net.road(t.from_road).class);
                    assert_eq!(t.onto_class, net.road(t.to_road).class);
                    if t.onto_class == RoadClass::Artery {
                        seen_artery_turn = true;
                    }
                }
            }
            now += dt;
        }
        assert!(seen_artery_turn);
    }

    /// The sharded runner steps mobility with `step_par`; a run is only
    /// deterministic across shard counts if the parallel advance is
    /// byte-identical to the sequential one at *every* thread count.
    #[test]
    fn step_par_matches_step_for_any_thread_count() {
        for threads in [2usize, 3, 8] {
            let (net, lights, mut seq, _) = setup(137, 11);
            let mut par = seq.clone();
            let dt = seq.config().tick;
            let mut now = SimTime::ZERO;
            for _ in 0..120 {
                let a = seq.step(&net, &lights, now).to_vec();
                let b = par.step_par(&net, &lights, now, threads);
                assert_eq!(a, b, "samples diverged at {now} with {threads} threads");
                now += dt;
            }
            assert_eq!(
                seq.vehicles(),
                par.vehicles(),
                "vehicle states diverged with {threads} threads"
            );
        }
    }

    /// The pre-SoA array-of-structs kernel, kept verbatim in test code as the
    /// reference semantics: per-vehicle road-graph walks and light checks,
    /// no lane-context memoization. The SoA step must reproduce it bit for bit.
    mod reference {
        use super::*;

        fn turnable(
            net: &RoadNetwork,
            lights: &TrafficLights,
            road: RoadId,
            from: IntersectionId,
            now: SimTime,
        ) -> bool {
            let end = net.other_end(road, from);
            let approach = net.heading_from(road, from).to_cardinal();
            lights.is_green(end, approach, now)
        }

        /// One tick of the old AoS engine: leader caps from old offsets, then
        /// the per-vehicle advance exactly as PR-9 shipped it.
        pub fn step(
            cfg: &MobilityConfig,
            net: &RoadNetwork,
            lights: &TrafficLights,
            now: SimTime,
            vehicles: &mut [VehicleState],
            plans: &mut [TripPlan],
            rngs: &mut [SmallRng],
        ) -> Vec<MoveSample> {
            let mut lanes: HashMap<(RoadId, IntersectionId), Vec<(f64, usize)>> = HashMap::new();
            for (i, v) in vehicles.iter().enumerate() {
                lanes
                    .entry((v.road, v.from))
                    .or_default()
                    .push((v.offset, i));
            }
            let mut cap = vec![f64::INFINITY; vehicles.len()];
            for lane in lanes.values_mut() {
                lane.sort_by(|a, b| b.0.total_cmp(&a.0).then_with(|| a.1.cmp(&b.1)));
                for w in lane.windows(2) {
                    cap[w[1].1] = w[0].0 - cfg.min_gap;
                }
            }
            let dt = cfg.tick.as_secs_f64();
            let mut samples = Vec::with_capacity(vehicles.len());
            for i in 0..vehicles.len() {
                let v = vehicles[i];
                let rng = &mut rngs[i];
                let old_pos = v.position(net);
                let mut road = v.road;
                let mut from = v.from;
                let mut offset = v.offset;
                let mut turn: Option<TurnEvent> = None;

                let target_speed = (v.speed + cfg.accel * dt).min(v.desired_speed);
                let mut advance = target_speed * dt;
                if offset + advance > cap[i] {
                    advance = (cap[i] - offset).max(0.0);
                }

                let len = net.road(road).length;
                if offset + advance >= len && turnable(net, lights, road, from, now) {
                    let at = net.other_end(road, from);
                    let arrive = net.heading_from(road, from);
                    let next = match cfg.trips {
                        None => choose_next_road(net, &cfg.route, at, road, rng),
                        Some(trip_cfg) => match plans[i].next_road(net, at) {
                            Some(r) => r,
                            None => {
                                plans[i].replan(net, &trip_cfg, at, rng);
                                plans[i].next_road(net, at).unwrap_or_else(|| {
                                    choose_next_road(net, &cfg.route, at, road, rng)
                                })
                            }
                        },
                    };
                    let leave = net.heading_from(next, at);
                    turn = Some(TurnEvent {
                        at,
                        from_road: road,
                        to_road: next,
                        kind: classify_turn(arrive, leave),
                        from_class: net.road(road).class,
                        onto_class: net.road(next).class,
                    });
                    let leftover = (offset + advance - len).max(0.0);
                    road = next;
                    from = at;
                    offset = leftover.min(net.road(next).length - 1e-6);
                } else {
                    offset = (offset + advance).min(len);
                }

                let v_mut = &mut vehicles[i];
                v_mut.road = road;
                v_mut.from = from;
                v_mut.offset = offset;
                let new_pos = v_mut.position(net);
                let moved = if turn.is_some() {
                    (net.road(v.road).length - v.offset) + offset
                } else {
                    offset - v.offset
                };
                v_mut.speed = (moved / dt).max(0.0);

                samples.push(MoveSample {
                    id: v.id,
                    old_pos,
                    new_pos,
                    road,
                    from,
                    road_class: net.road(road).class,
                    heading: net.heading_from(road, from),
                    speed: v_mut.speed,
                    turn,
                });
            }
            samples
        }
    }

    /// SoA-vs-AoS equivalence at fixed seeds: the struct-of-arrays kernel with
    /// its lane-context memoization must match the old array-of-structs kernel
    /// sample for sample and state for state, over enough ticks to exercise
    /// red-light queues, crossings, and leader caps — in both route modes.
    #[test]
    fn soa_step_matches_aos_reference() {
        for (seed, trips) in [(11u64, false), (29, false), (17, true)] {
            let net = generate_grid(&GridMapSpec::paper(1000.0), &mut SmallRng::seed_from_u64(0));
            let lights = TrafficLights::new(&net, LightConfig::default());
            let cfg = MobilityConfig {
                trips: trips.then(crate::trips::TripConfig::default),
                ..Default::default()
            };
            let mut rng = SmallRng::seed_from_u64(seed);
            let mut model = MobilityModel::new(&net, cfg, 160, &mut rng);
            let mut aos_states = model.vehicles();
            let mut aos_plans = model.plans.clone();
            let mut aos_rngs = model.rngs.clone();
            let dt = model.config().tick;
            let mut now = SimTime::ZERO;
            for tick in 0..150 {
                let soa = model.step(&net, &lights, now).to_vec();
                let aos = reference::step(
                    &cfg,
                    &net,
                    &lights,
                    now,
                    &mut aos_states,
                    &mut aos_plans,
                    &mut aos_rngs,
                );
                assert_eq!(soa, aos, "samples diverged at tick {tick} (seed {seed})");
                assert_eq!(
                    model.vehicles(),
                    aos_states,
                    "states diverged at tick {tick} (seed {seed})"
                );
                now += dt;
            }
        }
    }
}
