//! Struct-of-arrays fleet state.
//!
//! The per-tick kinematic kernel streams every vehicle's road/offset/speed once
//! per tick. Keeping each component in its own flat `Vec` (keyed by the dense
//! [`VehicleId`] index) turns that pass into sequential scans over tightly
//! packed arrays — the advance loop reads ~3 cache lines per 8 vehicles where
//! the array-of-structs layout read 8 — and lets the parallel step hand each
//! worker plain disjoint sub-slices of every component.

use crate::vehicle::{VehicleId, VehicleState};
use vanet_roadnet::{IntersectionId, RoadId};

/// The whole fleet's kinematic state in struct-of-arrays form.
///
/// Index `i` across all five vectors is vehicle `VehicleId(i)` — ids are dense
/// by construction (spawn assigns `0..n`), which [`FleetState::from_states`]
/// asserts. The id itself is therefore never stored.
#[derive(Debug, Clone, Default)]
pub struct FleetState {
    /// Road currently driven, per vehicle.
    pub road: Vec<RoadId>,
    /// Endpoint each vehicle entered its road from (drives away from it).
    pub from: Vec<IntersectionId>,
    /// Distance traveled from `from` along the road, meters.
    pub offset: Vec<f64>,
    /// Current speed, m/s.
    pub speed: Vec<f64>,
    /// Free-flow target speed, m/s.
    pub desired_speed: Vec<f64>,
}

impl FleetState {
    /// Builds the SoA layout from per-vehicle states.
    ///
    /// # Panics
    ///
    /// Panics unless ids are dense and in order (`states[i].id == VehicleId(i)`),
    /// the invariant that lets the index stand in for the id.
    pub fn from_states(states: &[VehicleState]) -> Self {
        let mut fleet = FleetState {
            road: Vec::with_capacity(states.len()),
            from: Vec::with_capacity(states.len()),
            offset: Vec::with_capacity(states.len()),
            speed: Vec::with_capacity(states.len()),
            desired_speed: Vec::with_capacity(states.len()),
        };
        for (i, v) in states.iter().enumerate() {
            assert_eq!(
                v.id,
                VehicleId(i as u32),
                "fleet states must carry dense in-order ids"
            );
            fleet.road.push(v.road);
            fleet.from.push(v.from);
            fleet.offset.push(v.offset);
            fleet.speed.push(v.speed);
            fleet.desired_speed.push(v.desired_speed);
        }
        fleet
    }

    /// Number of vehicles.
    pub fn len(&self) -> usize {
        self.road.len()
    }

    /// True if the fleet is empty.
    pub fn is_empty(&self) -> bool {
        self.road.is_empty()
    }

    /// Materializes vehicle `i` as a [`VehicleState`] (cold paths: snapshots,
    /// trace export, tests).
    pub fn state(&self, i: usize) -> VehicleState {
        VehicleState {
            id: VehicleId(i as u32),
            road: self.road[i],
            from: self.from[i],
            offset: self.offset[i],
            speed: self.speed[i],
            desired_speed: self.desired_speed[i],
        }
    }

    /// Materializes the whole fleet in id order.
    pub fn to_states(&self) -> Vec<VehicleState> {
        (0..self.len()).map(|i| self.state(i)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_states() {
        let states: Vec<VehicleState> = (0..5)
            .map(|i| VehicleState {
                id: VehicleId(i),
                road: RoadId(i * 2),
                from: IntersectionId(i + 1),
                offset: i as f64 * 10.0,
                speed: i as f64,
                desired_speed: i as f64 + 1.0,
            })
            .collect();
        let fleet = FleetState::from_states(&states);
        assert_eq!(fleet.len(), 5);
        assert_eq!(fleet.to_states(), states);
        assert_eq!(fleet.state(3), states[3]);
    }

    #[test]
    #[should_panic(expected = "dense in-order ids")]
    fn sparse_ids_rejected() {
        let v = VehicleState {
            id: VehicleId(3),
            road: RoadId(0),
            from: IntersectionId(0),
            offset: 0.0,
            speed: 0.0,
            desired_speed: 1.0,
        };
        FleetState::from_states(&[v]);
    }
}
