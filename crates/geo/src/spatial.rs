//! Uniform-grid spatial hash for neighbor queries.
//!
//! The radio layer asks "which nodes are within 500 m of here?" for every
//! transmission. A bucket grid with cell size equal to the query radius answers that
//! by scanning at most a 3×3 block of buckets — O(1) amortized for uniform traffic.
//!
//! Hot-path design notes:
//!
//! * buckets store `(id, position)` pairs, so a range query touches no other
//!   table — the per-candidate `positions` lookup a plain id bucket would need
//!   was the query's dominant cost;
//! * [`SpatialHash::for_each_within`] and [`SpatialHash::query_radius_into`]
//!   visit candidates with zero allocation — the scratch-buffer form is what
//!   the per-transmission paths use in steady state;
//! * all maps hash with the vendored deterministic [`fxhash`] (seedless, so
//!   runs stay reproducible; several times cheaper than SipHash on the small
//!   integer keys used here).

use crate::point::Point;
use fxhash::FxHashMap;

/// A spatial hash mapping integer keys (node ids) to positions.
///
/// Cell size should be on the order of the common query radius.
#[derive(Debug, Clone)]
pub struct SpatialHash {
    cell: f64,
    buckets: FxHashMap<(i64, i64), Vec<(u64, Point)>>,
    positions: FxHashMap<u64, Point>,
}

impl SpatialHash {
    /// Creates a hash with the given bucket edge length in meters.
    ///
    /// # Panics
    ///
    /// Panics if `cell_size` is not strictly positive and finite.
    pub fn new(cell_size: f64) -> Self {
        Self::with_capacity(cell_size, 0)
    }

    /// [`new`](Self::new) pre-sized for `ids` tracked entries, so steady-state
    /// insertion never rehashes.
    ///
    /// # Panics
    ///
    /// Panics if `cell_size` is not strictly positive and finite.
    pub fn with_capacity(cell_size: f64, ids: usize) -> Self {
        assert!(
            cell_size > 0.0 && cell_size.is_finite(),
            "invalid cell size"
        );
        SpatialHash {
            cell: cell_size,
            buckets: fxhash::map_with_capacity(ids),
            positions: fxhash::map_with_capacity(ids),
        }
    }

    fn key(&self, p: Point) -> (i64, i64) {
        (
            (p.x / self.cell).floor() as i64,
            (p.y / self.cell).floor() as i64,
        )
    }

    /// Number of tracked ids.
    pub fn len(&self) -> usize {
        self.positions.len()
    }

    /// True if nothing is tracked.
    pub fn is_empty(&self) -> bool {
        self.positions.is_empty()
    }

    /// Number of live (non-empty) buckets; bounded by `len()` because empty
    /// buckets are dropped on removal.
    pub fn bucket_count(&self) -> usize {
        self.buckets.len()
    }

    /// Current position of `id`, if tracked.
    pub fn position(&self, id: u64) -> Option<Point> {
        self.positions.get(&id).copied()
    }

    /// Inserts `id` at `p`, or moves it there if already tracked.
    pub fn upsert(&mut self, id: u64, p: Point) {
        let new_key = self.key(p);
        if let Some(old) = self.positions.insert(id, p) {
            let old_key = self.key(old);
            if old_key == new_key {
                // Same bucket: update the stored position in place.
                let bucket = self
                    .buckets
                    .get_mut(&new_key)
                    .expect("tracked id has a bucket");
                let slot = bucket
                    .iter_mut()
                    .find(|(i, _)| *i == id)
                    .expect("tracked id is in its bucket");
                slot.1 = p;
                return;
            }
            remove_from_bucket(&mut self.buckets, old_key, id);
        }
        self.buckets.entry(new_key).or_default().push((id, p));
    }

    /// Removes `id`; returns its last position if it was tracked.
    pub fn remove(&mut self, id: u64) -> Option<Point> {
        let p = self.positions.remove(&id)?;
        let key = self.key(p);
        remove_from_bucket(&mut self.buckets, key, id);
        Some(p)
    }

    /// Calls `f(id, position)` for every tracked id strictly within `radius` of
    /// `center`, in unspecified order, allocating nothing. This is the primitive
    /// under every other range query.
    #[inline]
    pub fn for_each_within(&self, center: Point, radius: f64, mut f: impl FnMut(u64, Point)) {
        let r_cells = (radius / self.cell).ceil() as i64;
        let (cx, cy) = self.key(center);
        let r_sq = radius * radius;
        for bx in (cx - r_cells)..=(cx + r_cells) {
            for by in (cy - r_cells)..=(cy + r_cells) {
                if let Some(entries) = self.buckets.get(&(bx, by)) {
                    for &(id, p) in entries {
                        if center.distance_sq(p) < r_sq {
                            f(id, p);
                        }
                    }
                }
            }
        }
    }

    /// Writes all ids strictly within `radius` of `center` into `out` (cleared
    /// first), sorted by id. Reusing one buffer across calls makes the query
    /// allocation-free in steady state.
    pub fn query_radius_into(&self, center: Point, radius: f64, out: &mut Vec<u64>) {
        out.clear();
        self.for_each_within(center, radius, |id, _| out.push(id));
        out.sort_unstable();
    }

    /// All ids strictly within `radius` of `center` (excluding none — the caller
    /// filters out the querying node itself if needed). Order is deterministic:
    /// sorted by id. Allocating convenience form of
    /// [`query_radius_into`](Self::query_radius_into).
    pub fn query_radius(&self, center: Point, radius: f64) -> Vec<u64> {
        let mut out = Vec::new();
        self.query_radius_into(center, radius, &mut out);
        out
    }

    /// Like [`query_radius`](Self::query_radius) but without the deterministic sort —
    /// for callers that re-sort or fold commutatively.
    pub fn query_radius_unsorted(&self, center: Point, radius: f64) -> Vec<u64> {
        let mut out = Vec::new();
        self.for_each_within(center, radius, |id, _| out.push(id));
        out
    }

    /// The tracked id nearest to `center`, if any, with its distance.
    ///
    /// Falls back to a full scan; use for infrequent queries (e.g. picking a cell
    /// leader), not per-packet work.
    pub fn nearest(&self, center: Point) -> Option<(u64, f64)> {
        self.positions
            .iter()
            .map(|(&id, &p)| (id, center.distance(p)))
            .min_by(|a, b| a.1.total_cmp(&b.1).then_with(|| a.0.cmp(&b.0)))
    }

    /// Iterates over all tracked `(id, position)` pairs in unspecified order.
    pub fn iter(&self) -> impl Iterator<Item = (u64, Point)> + '_ {
        self.positions.iter().map(|(&id, &p)| (id, p))
    }
}

fn remove_from_bucket(
    buckets: &mut FxHashMap<(i64, i64), Vec<(u64, Point)>>,
    key: (i64, i64),
    id: u64,
) {
    if let Some(v) = buckets.get_mut(&key) {
        if let Some(i) = v.iter().position(|&(x, _)| x == id) {
            v.swap_remove(i);
        }
        if v.is_empty() {
            buckets.remove(&key);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_query_remove() {
        let mut h = SpatialHash::new(100.0);
        h.upsert(1, Point::new(0.0, 0.0));
        h.upsert(2, Point::new(50.0, 0.0));
        h.upsert(3, Point::new(500.0, 0.0));
        assert_eq!(h.query_radius(Point::ORIGIN, 100.0), vec![1, 2]);
        h.remove(2);
        assert_eq!(h.query_radius(Point::ORIGIN, 100.0), vec![1]);
        assert_eq!(h.len(), 2);
    }

    #[test]
    fn radius_is_strict() {
        let mut h = SpatialHash::new(10.0);
        h.upsert(1, Point::new(10.0, 0.0));
        assert!(h.query_radius(Point::ORIGIN, 10.0).is_empty());
        assert_eq!(h.query_radius(Point::ORIGIN, 10.0 + 1e-9), vec![1]);
    }

    #[test]
    fn upsert_moves_across_buckets() {
        let mut h = SpatialHash::new(10.0);
        h.upsert(7, Point::new(5.0, 5.0));
        h.upsert(7, Point::new(95.0, 95.0));
        assert!(h.query_radius(Point::new(5.0, 5.0), 3.0).is_empty());
        assert_eq!(h.query_radius(Point::new(95.0, 95.0), 3.0), vec![7]);
        assert_eq!(h.len(), 1);
    }

    #[test]
    fn upsert_within_bucket_updates_stored_position() {
        // Buckets carry (id, position) pairs; a small move inside one bucket
        // must update the pair, not just the positions map.
        let mut h = SpatialHash::new(100.0);
        h.upsert(1, Point::new(10.0, 10.0));
        h.upsert(1, Point::new(90.0, 90.0));
        assert!(h.query_radius(Point::new(10.0, 10.0), 5.0).is_empty());
        assert_eq!(h.query_radius(Point::new(90.0, 90.0), 5.0), vec![1]);
    }

    #[test]
    fn negative_coordinates_work() {
        let mut h = SpatialHash::new(50.0);
        h.upsert(1, Point::new(-120.0, -30.0));
        assert_eq!(h.query_radius(Point::new(-100.0, -30.0), 25.0), vec![1]);
    }

    #[test]
    fn nearest_breaks_ties_by_id() {
        let mut h = SpatialHash::new(10.0);
        h.upsert(5, Point::new(1.0, 0.0));
        h.upsert(2, Point::new(-1.0, 0.0));
        assert_eq!(h.nearest(Point::ORIGIN), Some((2, 1.0)));
        assert_eq!(SpatialHash::new(1.0).nearest(Point::ORIGIN), None);
    }

    #[test]
    fn query_results_sorted() {
        let mut h = SpatialHash::new(10.0);
        for id in [9u64, 3, 7, 1] {
            h.upsert(id, Point::new(id as f64, 0.0));
        }
        assert_eq!(h.query_radius(Point::ORIGIN, 100.0), vec![1, 3, 7, 9]);
    }

    #[test]
    fn scratch_query_reuses_buffer_and_matches_owned() {
        let mut h = SpatialHash::new(50.0);
        for id in 0u64..40 {
            h.upsert(
                id,
                Point::new((id * 7 % 100) as f64, (id * 13 % 100) as f64),
            );
        }
        let mut scratch = Vec::new();
        for probe in [Point::ORIGIN, Point::new(50.0, 50.0), Point::new(99.0, 0.0)] {
            h.query_radius_into(probe, 60.0, &mut scratch);
            assert_eq!(scratch, h.query_radius(probe, 60.0));
        }
        // A stale buffer from the previous query is fully replaced.
        h.query_radius_into(Point::new(-1e6, -1e6), 1.0, &mut scratch);
        assert!(scratch.is_empty());
    }

    #[test]
    fn long_random_walk_keeps_bucket_count_bounded() {
        // Empty buckets are dropped on removal, so however far vehicles roam,
        // live buckets never exceed the number of tracked ids.
        let mut h = SpatialHash::new(100.0);
        let ids = 25u64;
        // A deterministic LCG walk spanning thousands of distinct cells.
        let mut state = 0x2545_f491_4f6c_dd1du64;
        let mut step = |id: u64| {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let x = ((state >> 16) % 2_000_000) as f64 - 1_000_000.0;
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let y = ((state >> 16) % 2_000_000) as f64 - 1_000_000.0;
            (id, Point::new(x, y))
        };
        for round in 0..2000 {
            for id in 0..ids {
                let (id, p) = step(id);
                h.upsert(id, p);
            }
            assert!(
                h.bucket_count() <= ids as usize,
                "round {round}: {} buckets for {ids} ids",
                h.bucket_count()
            );
        }
        assert_eq!(h.len(), ids as usize);
    }
}
