//! Uniform-grid spatial hash for neighbor queries.
//!
//! The radio layer asks "which nodes are within 500 m of here?" for every
//! transmission. A bucket grid with cell size equal to the query radius answers that
//! by scanning at most a 3×3 block of buckets — O(1) amortized for uniform traffic.

use crate::point::Point;
use std::collections::HashMap;

/// A spatial hash mapping integer keys (node ids) to positions.
///
/// Cell size should be on the order of the common query radius.
#[derive(Debug, Clone)]
pub struct SpatialHash {
    cell: f64,
    buckets: HashMap<(i64, i64), Vec<u64>>,
    positions: HashMap<u64, Point>,
}

impl SpatialHash {
    /// Creates a hash with the given bucket edge length in meters.
    ///
    /// # Panics
    ///
    /// Panics if `cell_size` is not strictly positive and finite.
    pub fn new(cell_size: f64) -> Self {
        assert!(
            cell_size > 0.0 && cell_size.is_finite(),
            "invalid cell size"
        );
        SpatialHash {
            cell: cell_size,
            buckets: HashMap::new(),
            positions: HashMap::new(),
        }
    }

    fn key(&self, p: Point) -> (i64, i64) {
        (
            (p.x / self.cell).floor() as i64,
            (p.y / self.cell).floor() as i64,
        )
    }

    /// Number of tracked ids.
    pub fn len(&self) -> usize {
        self.positions.len()
    }

    /// True if nothing is tracked.
    pub fn is_empty(&self) -> bool {
        self.positions.is_empty()
    }

    /// Current position of `id`, if tracked.
    pub fn position(&self, id: u64) -> Option<Point> {
        self.positions.get(&id).copied()
    }

    /// Inserts `id` at `p`, or moves it there if already tracked.
    pub fn upsert(&mut self, id: u64, p: Point) {
        let new_key = self.key(p);
        if let Some(old) = self.positions.insert(id, p) {
            let old_key = self.key(old);
            if old_key == new_key {
                return;
            }
            remove_from_bucket(&mut self.buckets, old_key, id);
        }
        self.buckets.entry(new_key).or_default().push(id);
    }

    /// Removes `id`; returns its last position if it was tracked.
    pub fn remove(&mut self, id: u64) -> Option<Point> {
        let p = self.positions.remove(&id)?;
        let key = self.key(p);
        remove_from_bucket(&mut self.buckets, key, id);
        Some(p)
    }

    /// All ids strictly within `radius` of `center` (excluding none — the caller
    /// filters out the querying node itself if needed). Order is deterministic:
    /// sorted by id.
    pub fn query_radius(&self, center: Point, radius: f64) -> Vec<u64> {
        let mut out = self.query_radius_unsorted(center, radius);
        out.sort_unstable();
        out
    }

    /// Like [`query_radius`](Self::query_radius) but without the deterministic sort —
    /// for callers that re-sort or fold commutatively.
    pub fn query_radius_unsorted(&self, center: Point, radius: f64) -> Vec<u64> {
        let r_cells = (radius / self.cell).ceil() as i64;
        let (cx, cy) = self.key(center);
        let r_sq = radius * radius;
        let mut out = Vec::new();
        for bx in (cx - r_cells)..=(cx + r_cells) {
            for by in (cy - r_cells)..=(cy + r_cells) {
                if let Some(ids) = self.buckets.get(&(bx, by)) {
                    for &id in ids {
                        let p = self.positions[&id];
                        if center.distance_sq(p) < r_sq {
                            out.push(id);
                        }
                    }
                }
            }
        }
        out
    }

    /// The tracked id nearest to `center`, if any, with its distance.
    ///
    /// Falls back to a full scan; use for infrequent queries (e.g. picking a cell
    /// leader), not per-packet work.
    pub fn nearest(&self, center: Point) -> Option<(u64, f64)> {
        self.positions
            .iter()
            .map(|(&id, &p)| (id, center.distance(p)))
            .min_by(|a, b| a.1.total_cmp(&b.1).then_with(|| a.0.cmp(&b.0)))
    }

    /// Iterates over all tracked `(id, position)` pairs in unspecified order.
    pub fn iter(&self) -> impl Iterator<Item = (u64, Point)> + '_ {
        self.positions.iter().map(|(&id, &p)| (id, p))
    }
}

fn remove_from_bucket(buckets: &mut HashMap<(i64, i64), Vec<u64>>, key: (i64, i64), id: u64) {
    if let Some(v) = buckets.get_mut(&key) {
        if let Some(i) = v.iter().position(|&x| x == id) {
            v.swap_remove(i);
        }
        if v.is_empty() {
            buckets.remove(&key);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_query_remove() {
        let mut h = SpatialHash::new(100.0);
        h.upsert(1, Point::new(0.0, 0.0));
        h.upsert(2, Point::new(50.0, 0.0));
        h.upsert(3, Point::new(500.0, 0.0));
        assert_eq!(h.query_radius(Point::ORIGIN, 100.0), vec![1, 2]);
        h.remove(2);
        assert_eq!(h.query_radius(Point::ORIGIN, 100.0), vec![1]);
        assert_eq!(h.len(), 2);
    }

    #[test]
    fn radius_is_strict() {
        let mut h = SpatialHash::new(10.0);
        h.upsert(1, Point::new(10.0, 0.0));
        assert!(h.query_radius(Point::ORIGIN, 10.0).is_empty());
        assert_eq!(h.query_radius(Point::ORIGIN, 10.0 + 1e-9), vec![1]);
    }

    #[test]
    fn upsert_moves_across_buckets() {
        let mut h = SpatialHash::new(10.0);
        h.upsert(7, Point::new(5.0, 5.0));
        h.upsert(7, Point::new(95.0, 95.0));
        assert!(h.query_radius(Point::new(5.0, 5.0), 3.0).is_empty());
        assert_eq!(h.query_radius(Point::new(95.0, 95.0), 3.0), vec![7]);
        assert_eq!(h.len(), 1);
    }

    #[test]
    fn negative_coordinates_work() {
        let mut h = SpatialHash::new(50.0);
        h.upsert(1, Point::new(-120.0, -30.0));
        assert_eq!(h.query_radius(Point::new(-100.0, -30.0), 25.0), vec![1]);
    }

    #[test]
    fn nearest_breaks_ties_by_id() {
        let mut h = SpatialHash::new(10.0);
        h.upsert(5, Point::new(1.0, 0.0));
        h.upsert(2, Point::new(-1.0, 0.0));
        assert_eq!(h.nearest(Point::ORIGIN), Some((2, 1.0)));
        assert_eq!(SpatialHash::new(1.0).nearest(Point::ORIGIN), None);
    }

    #[test]
    fn query_results_sorted() {
        let mut h = SpatialHash::new(10.0);
        for id in [9u64, 3, 7, 1] {
            h.upsert(id, Point::new(id as f64, 0.0));
        }
        assert_eq!(h.query_radius(Point::ORIGIN, 100.0), vec![1, 3, 7, 9]);
    }
}
