//! Uniform-grid spatial hash for neighbor queries.
//!
//! The radio layer asks "which nodes are within 500 m of here?" for every
//! transmission. A bucket grid with cell size equal to the query radius answers that
//! by scanning at most a 3×3 block of buckets — O(1) amortized for uniform traffic.
//!
//! Hot-path design notes:
//!
//! * buckets store `(id, position)` pairs, so a range query touches no other
//!   table — the per-candidate position lookup a plain id bucket would need
//!   was the query's dominant cost;
//! * the bucket array is a **dense core grid** sized to the bounding box of the
//!   tracked points (vehicles stay on the map), so the per-tick position update
//!   and the 3×3 block scan index with plain arithmetic instead of hash probes;
//!   cells outside the (capped) core grid spill into a sparse overflow map, so
//!   pathological outliers cost memory proportional to occupancy, not area;
//! * each id carries a slot record (cell + index within the bucket), so moving a
//!   node is one lookup and one in-place write in the common same-cell case —
//!   no linear bucket scan;
//! * [`SpatialHash::for_each_within`] and [`SpatialHash::query_radius_into`]
//!   visit candidates with zero allocation — the scratch-buffer form is what
//!   the per-transmission paths use in steady state;
//! * the id-keyed maps hash with the vendored deterministic [`fxhash`]
//!   (seedless, so runs stay reproducible; several times cheaper than SipHash
//!   on the small integer keys used here).

use crate::point::Point;
use fxhash::FxHashMap;

/// Core grid growth never exceeds this many cells; cells outside go to the
/// sparse overflow map. 2^16 cells ≈ 1.5 MiB of bucket headers — at the radio
/// cell size of 500 m that covers a 128 km × 128 km map, far beyond any
/// scenario, while bounding memory against adversarial coordinates.
const MAX_GRID_CELLS: i128 = 1 << 16;

/// Ids below this use the dense slot table (a flat `Vec` indexed by id); ids
/// at or above it go to the sparse overflow map. Node ids are dense in every
/// simulation, so in practice all slot probes are single array indexings; the
/// cap bounds memory against adversarial sparse ids (2^20 slots ≈ 24 MiB
/// worst case).
const DENSE_SLOT_IDS: u64 = 1 << 20;

/// Where one tracked id currently lives: its cell coordinates and its index
/// within that cell's bucket. Storage routing (core grid vs. overflow) is
/// derived from the cell coordinates, so grid growth never rewrites slots.
#[derive(Debug, Clone, Copy)]
struct Slot {
    cell: (i64, i64),
    idx: u32,
}

impl Slot {
    /// Dense-table vacancy sentinel. A real bucket index can never reach
    /// `u32::MAX` (that bucket alone would need > 64 GiB).
    const EMPTY: Slot = Slot {
        cell: (0, 0),
        idx: u32::MAX,
    };
}

/// What a batched position update ([`SpatialHash::apply_moves`]) did: how many
/// entries crossed a grid-cell boundary (structural bucket edits) vs. moved
/// within their cell (one in-place position write each).
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct GridDeltaStats {
    /// Moves that changed cell (unlink + relink) or inserted a new id.
    pub crossed: u64,
    /// Moves that stayed within their cell.
    pub in_place: u64,
}

/// A spatial hash mapping integer keys (node ids) to positions.
///
/// Cell size should be on the order of the common query radius.
#[derive(Debug, Clone)]
pub struct SpatialHash {
    cell: f64,
    /// Dense row-major core grid; empty until the first insert.
    grid: Vec<Vec<(u64, Point)>>,
    /// Cell coordinates of `grid[0]`.
    gx0: i64,
    gy0: i64,
    /// Grid dimensions in cells.
    gw: i64,
    gh: i64,
    /// Non-empty core-grid cells (so `bucket_count` stays O(1)).
    grid_live: usize,
    /// Sparse buckets for cells outside the core grid; empty vecs are dropped.
    overflow: FxHashMap<(i64, i64), Vec<(u64, Point)>>,
    /// Dense slot table for ids below [`DENSE_SLOT_IDS`], indexed by id;
    /// `idx == u32::MAX` marks an untracked id. The per-move probe the mobility
    /// tick makes for every vehicle is one array read instead of a hash probe.
    slots: Vec<Slot>,
    /// Slots for sparse/huge ids past the dense cap.
    slots_over: FxHashMap<u64, Slot>,
    /// Number of tracked ids (the dense table holds vacancies, so its length
    /// is not the count).
    tracked: usize,
}

impl SpatialHash {
    /// Creates a hash with the given bucket edge length in meters.
    ///
    /// # Panics
    ///
    /// Panics if `cell_size` is not strictly positive and finite.
    pub fn new(cell_size: f64) -> Self {
        Self::with_capacity(cell_size, 0)
    }

    /// [`new`](Self::new) pre-sized for `ids` tracked entries, so steady-state
    /// insertion never rehashes.
    ///
    /// # Panics
    ///
    /// Panics if `cell_size` is not strictly positive and finite.
    pub fn with_capacity(cell_size: f64, ids: usize) -> Self {
        assert!(
            cell_size > 0.0 && cell_size.is_finite(),
            "invalid cell size"
        );
        SpatialHash {
            cell: cell_size,
            grid: Vec::new(),
            gx0: 0,
            gy0: 0,
            gw: 0,
            gh: 0,
            grid_live: 0,
            overflow: FxHashMap::default(),
            slots: vec![Slot::EMPTY; ids.min(DENSE_SLOT_IDS as usize)],
            slots_over: FxHashMap::default(),
            tracked: 0,
        }
    }

    /// Current slot of `id`, if tracked.
    #[inline]
    fn slot(&self, id: u64) -> Option<Slot> {
        if id < DENSE_SLOT_IDS {
            let s = *self.slots.get(id as usize)?;
            (s.idx != u32::MAX).then_some(s)
        } else {
            self.slots_over.get(&id).copied()
        }
    }

    /// Installs or replaces the slot of `id`.
    #[inline]
    fn set_slot(&mut self, id: u64, s: Slot) {
        if id < DENSE_SLOT_IDS {
            if self.slots.len() <= id as usize {
                self.slots.resize(id as usize + 1, Slot::EMPTY);
            }
            self.slots[id as usize] = s;
        } else {
            self.slots_over.insert(id, s);
        }
    }

    /// Forgets the slot of a tracked `id`.
    #[inline]
    fn clear_slot(&mut self, id: u64) {
        if id < DENSE_SLOT_IDS {
            self.slots[id as usize] = Slot::EMPTY;
        } else {
            self.slots_over.remove(&id);
        }
    }

    /// Rewrites the bucket index of a tracked `id` (swap-remove patching).
    #[inline]
    fn patch_slot_idx(&mut self, id: u64, idx: u32) {
        if id < DENSE_SLOT_IDS {
            self.slots[id as usize].idx = idx;
        } else {
            self.slots_over
                .get_mut(&id)
                .expect("tracked id has a slot")
                .idx = idx;
        }
    }

    fn key(&self, p: Point) -> (i64, i64) {
        (
            (p.x / self.cell).floor() as i64,
            (p.y / self.cell).floor() as i64,
        )
    }

    /// Linear index of `k` in the core grid, if it falls inside it.
    #[inline]
    fn grid_linear(&self, k: (i64, i64)) -> Option<usize> {
        let (x, y) = k;
        if x >= self.gx0 && x < self.gx0 + self.gw && y >= self.gy0 && y < self.gy0 + self.gh {
            Some(((y - self.gy0) * self.gw + (x - self.gx0)) as usize)
        } else {
            None
        }
    }

    /// Number of tracked ids.
    pub fn len(&self) -> usize {
        self.tracked
    }

    /// True if nothing is tracked.
    pub fn is_empty(&self) -> bool {
        self.tracked == 0
    }

    /// Number of live (non-empty) buckets; bounded by `len()` because overflow
    /// buckets are dropped on removal and emptied grid cells are discounted.
    pub fn bucket_count(&self) -> usize {
        self.grid_live + self.overflow.len()
    }

    /// Current position of `id`, if tracked.
    pub fn position(&self, id: u64) -> Option<Point> {
        let s = self.slot(id)?;
        Some(self.bucket(s.cell)[s.idx as usize].1)
    }

    /// The bucket for `k` (must exist).
    #[inline]
    fn bucket(&self, k: (i64, i64)) -> &Vec<(u64, Point)> {
        match self.grid_linear(k) {
            Some(l) => &self.grid[l],
            None => self.overflow.get(&k).expect("tracked cell has a bucket"),
        }
    }

    /// Mutable bucket for `k` (must exist).
    #[inline]
    fn bucket_mut(&mut self, k: (i64, i64)) -> &mut Vec<(u64, Point)> {
        match self.grid_linear(k) {
            Some(l) => &mut self.grid[l],
            None => self
                .overflow
                .get_mut(&k)
                .expect("tracked cell has a bucket"),
        }
    }

    /// Inserts `id` at `p`, or moves it there if already tracked.
    pub fn upsert(&mut self, id: u64, p: Point) {
        self.upsert_inner(id, p);
    }

    /// [`upsert`](Self::upsert) reporting whether the move was *structural*
    /// (a fresh insert or a cell crossing) rather than an in-place position
    /// write within the current bucket.
    fn upsert_inner(&mut self, id: u64, p: Point) -> bool {
        let nk = self.key(p);
        if let Some(s) = self.slot(id) {
            if s.cell == nk {
                // Same bucket: update the stored position in place.
                self.bucket_mut(nk)[s.idx as usize].1 = p;
                return false;
            }
            self.unlink(s);
        } else {
            self.tracked += 1;
        }
        self.ensure_cell(nk);
        let new_len = {
            let b = self.bucket_mut(nk);
            b.push((id, p));
            b.len()
        };
        if new_len == 1 && self.grid_linear(nk).is_some() {
            self.grid_live += 1;
        }
        let idx = (new_len - 1) as u32;
        self.set_slot(id, Slot { cell: nk, idx });
        true
    }

    /// Applies one tick's movement delta stream in a single pass. **Exactly
    /// equivalent** to calling [`upsert`](Self::upsert) once per `(id, p)` pair
    /// in order — same bucket contents in the same order, the byte-identity
    /// contract the golden and differential suites pin — but shaped for the
    /// mobility hot path: only entries whose grid cell changed touch bucket
    /// structure; everything else is a slot read plus an in-place write of the
    /// stored position. Returns the crossing/in-place split.
    pub fn apply_moves<I>(&mut self, moves: I) -> GridDeltaStats
    where
        I: IntoIterator<Item = (u64, Point)>,
    {
        let mut stats = GridDeltaStats::default();
        for (id, p) in moves {
            if self.upsert_inner(id, p) {
                stats.crossed += 1;
            } else {
                stats.in_place += 1;
            }
        }
        stats
    }

    /// Removes `id`; returns its last position if it was tracked.
    pub fn remove(&mut self, id: u64) -> Option<Point> {
        let s = self.slot(id)?;
        self.clear_slot(id);
        self.tracked -= 1;
        let p = self.bucket(s.cell)[s.idx as usize].1;
        self.unlink(s);
        Some(p)
    }

    /// Detaches the entry at `s` from its bucket (the classic swap-remove, with
    /// the swapped-in entry's slot patched to its new index).
    fn unlink(&mut self, s: Slot) {
        let (moved, emptied) = {
            let b = self.bucket_mut(s.cell);
            b.swap_remove(s.idx as usize);
            (b.get(s.idx as usize).map(|&(m, _)| m), b.is_empty())
        };
        if let Some(m) = moved {
            self.patch_slot_idx(m, s.idx);
        }
        if emptied {
            if self.grid_linear(s.cell).is_some() {
                self.grid_live -= 1;
            } else {
                self.overflow.remove(&s.cell);
            }
        }
    }

    /// Makes sure cell `k` has a bucket to push into: grows the core grid to
    /// cover it when that stays within the cell cap, otherwise routes to the
    /// overflow map.
    fn ensure_cell(&mut self, k: (i64, i64)) {
        if self.grid_linear(k).is_some() {
            return;
        }
        // Proposed bounds: union of the current core box and `k`, with slack on
        // every side so registration sweeps and map-edge traffic grow the grid
        // O(log) times, not per insert.
        let (mut x0, mut x1, mut y0, mut y1) = if self.gw == 0 {
            (k.0, k.0 + 1, k.1, k.1 + 1)
        } else {
            (
                self.gx0.min(k.0),
                (self.gx0 + self.gw).max(k.0 + 1),
                self.gy0.min(k.1),
                (self.gy0 + self.gh).max(k.1 + 1),
            )
        };
        let slack_x = ((x1 - x0) / 4).max(2);
        let slack_y = ((y1 - y0) / 4).max(2);
        x0 -= slack_x;
        x1 += slack_x;
        y0 -= slack_y;
        y1 += slack_y;
        let cells = (x1 - x0) as i128 * (y1 - y0) as i128;
        if cells > MAX_GRID_CELLS {
            // Outliers stay in the sparse tier; the core grid keeps its bounds.
            self.overflow.entry(k).or_default();
            return;
        }
        // Rebuild: move existing buckets to their new linear positions, then
        // pull in any overflow cells the larger box now covers. Slots reference
        // cell coordinates, not storage, so none of them change.
        let (ow, ox0, oy0) = (self.gw, self.gx0, self.gy0);
        let old = std::mem::take(&mut self.grid);
        self.gx0 = x0;
        self.gy0 = y0;
        self.gw = x1 - x0;
        self.gh = y1 - y0;
        self.grid = (0..self.gw * self.gh).map(|_| Vec::new()).collect();
        for (i, b) in old.into_iter().enumerate() {
            if !b.is_empty() {
                let cell = (ox0 + (i as i64 % ow), oy0 + (i as i64 / ow));
                let l = self.grid_linear(cell).expect("grown grid covers old box");
                self.grid[l] = b;
            }
        }
        let absorbed: Vec<(i64, i64)> = self
            .overflow
            .keys()
            .copied()
            .filter(|&c| self.grid_linear(c).is_some())
            .collect();
        for cell in absorbed {
            let b = self.overflow.remove(&cell).expect("key just listed");
            if !b.is_empty() {
                self.grid_live += 1;
            }
            let l = self.grid_linear(cell).expect("cell filtered as in-grid");
            self.grid[l] = b;
        }
        debug_assert!(self.grid_linear(k).is_some());
    }

    /// Calls `f(id, position)` for every tracked id strictly within `radius` of
    /// `center`, in unspecified order, allocating nothing. This is the primitive
    /// under every other range query.
    #[inline]
    pub fn for_each_within(&self, center: Point, radius: f64, mut f: impl FnMut(u64, Point)) {
        let r_cells = (radius / self.cell).ceil() as i64;
        let (cx, cy) = self.key(center);
        let r_sq = radius * radius;
        let over = !self.overflow.is_empty();
        for bx in (cx - r_cells)..=(cx + r_cells) {
            for by in (cy - r_cells)..=(cy + r_cells) {
                let entries: &[(u64, Point)] = match self.grid_linear((bx, by)) {
                    Some(l) => &self.grid[l],
                    None if over => self.overflow.get(&(bx, by)).map_or(&[], |v| v),
                    None => &[],
                };
                for &(id, p) in entries {
                    if center.distance_sq(p) < r_sq {
                        f(id, p);
                    }
                }
            }
        }
    }

    /// Writes all ids strictly within `radius` of `center` into `out` (cleared
    /// first), sorted by id. Reusing one buffer across calls makes the query
    /// allocation-free in steady state.
    pub fn query_radius_into(&self, center: Point, radius: f64, out: &mut Vec<u64>) {
        out.clear();
        self.for_each_within(center, radius, |id, _| out.push(id));
        out.sort_unstable();
    }

    /// All ids strictly within `radius` of `center` (excluding none — the caller
    /// filters out the querying node itself if needed). Order is deterministic:
    /// sorted by id. Allocating convenience form of
    /// [`query_radius_into`](Self::query_radius_into).
    pub fn query_radius(&self, center: Point, radius: f64) -> Vec<u64> {
        let mut out = Vec::new();
        self.query_radius_into(center, radius, &mut out);
        out
    }

    /// Like [`query_radius`](Self::query_radius) but without the deterministic sort —
    /// for callers that re-sort or fold commutatively.
    pub fn query_radius_unsorted(&self, center: Point, radius: f64) -> Vec<u64> {
        let mut out = Vec::new();
        self.for_each_within(center, radius, |id, _| out.push(id));
        out
    }

    /// The tracked id nearest to `center`, if any, with its distance.
    ///
    /// Falls back to a full scan; use for infrequent queries (e.g. picking a cell
    /// leader), not per-packet work.
    pub fn nearest(&self, center: Point) -> Option<(u64, f64)> {
        self.iter()
            .map(|(id, p)| (id, center.distance(p)))
            .min_by(|a, b| a.1.total_cmp(&b.1).then_with(|| a.0.cmp(&b.0)))
    }

    /// Iterates over all tracked `(id, position)` pairs in unspecified order.
    pub fn iter(&self) -> impl Iterator<Item = (u64, Point)> + '_ {
        self.grid
            .iter()
            .chain(self.overflow.values())
            .flatten()
            .map(|&(id, p)| (id, p))
    }

    /// Test-only structural snapshot: every non-empty bucket keyed by cell
    /// coordinates, entries in stored order — the representation the
    /// byte-order contract is pinned against. See [`BucketDump`].
    #[cfg(test)]
    fn dump(&self) -> BucketDump {
        let mut out: BucketDump = Vec::new();
        for y in 0..self.gh {
            for x in 0..self.gw {
                let b = &self.grid[(y * self.gw + x) as usize];
                if !b.is_empty() {
                    out.push(((self.gx0 + x, self.gy0 + y), b.clone()));
                }
            }
        }
        for (&c, b) in &self.overflow {
            if !b.is_empty() {
                out.push((c, b.clone()));
            }
        }
        out.sort_by_key(|&(c, _)| c);
        out
    }
}

/// Bucket-structure snapshot returned by [`SpatialHash::dump`]: non-empty
/// buckets keyed by cell coordinates, entries in stored order.
#[cfg(test)]
type BucketDump = Vec<((i64, i64), Vec<(u64, Point)>)>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_query_remove() {
        let mut h = SpatialHash::new(100.0);
        h.upsert(1, Point::new(0.0, 0.0));
        h.upsert(2, Point::new(50.0, 0.0));
        h.upsert(3, Point::new(500.0, 0.0));
        assert_eq!(h.query_radius(Point::ORIGIN, 100.0), vec![1, 2]);
        h.remove(2);
        assert_eq!(h.query_radius(Point::ORIGIN, 100.0), vec![1]);
        assert_eq!(h.len(), 2);
    }

    #[test]
    fn radius_is_strict() {
        let mut h = SpatialHash::new(10.0);
        h.upsert(1, Point::new(10.0, 0.0));
        assert!(h.query_radius(Point::ORIGIN, 10.0).is_empty());
        assert_eq!(h.query_radius(Point::ORIGIN, 10.0 + 1e-9), vec![1]);
    }

    #[test]
    fn upsert_moves_across_buckets() {
        let mut h = SpatialHash::new(10.0);
        h.upsert(7, Point::new(5.0, 5.0));
        h.upsert(7, Point::new(95.0, 95.0));
        assert!(h.query_radius(Point::new(5.0, 5.0), 3.0).is_empty());
        assert_eq!(h.query_radius(Point::new(95.0, 95.0), 3.0), vec![7]);
        assert_eq!(h.len(), 1);
    }

    #[test]
    fn upsert_within_bucket_updates_stored_position() {
        // Buckets carry (id, position) pairs; a small move inside one bucket
        // must update the pair, not just the slot record.
        let mut h = SpatialHash::new(100.0);
        h.upsert(1, Point::new(10.0, 10.0));
        h.upsert(1, Point::new(90.0, 90.0));
        assert!(h.query_radius(Point::new(10.0, 10.0), 5.0).is_empty());
        assert_eq!(h.query_radius(Point::new(90.0, 90.0), 5.0), vec![1]);
    }

    #[test]
    fn negative_coordinates_work() {
        let mut h = SpatialHash::new(50.0);
        h.upsert(1, Point::new(-120.0, -30.0));
        assert_eq!(h.query_radius(Point::new(-100.0, -30.0), 25.0), vec![1]);
    }

    #[test]
    fn nearest_breaks_ties_by_id() {
        let mut h = SpatialHash::new(10.0);
        h.upsert(5, Point::new(1.0, 0.0));
        h.upsert(2, Point::new(-1.0, 0.0));
        assert_eq!(h.nearest(Point::ORIGIN), Some((2, 1.0)));
        assert_eq!(SpatialHash::new(1.0).nearest(Point::ORIGIN), None);
    }

    #[test]
    fn query_results_sorted() {
        let mut h = SpatialHash::new(10.0);
        for id in [9u64, 3, 7, 1] {
            h.upsert(id, Point::new(id as f64, 0.0));
        }
        assert_eq!(h.query_radius(Point::ORIGIN, 100.0), vec![1, 3, 7, 9]);
    }

    #[test]
    fn scratch_query_reuses_buffer_and_matches_owned() {
        let mut h = SpatialHash::new(50.0);
        for id in 0u64..40 {
            h.upsert(
                id,
                Point::new((id * 7 % 100) as f64, (id * 13 % 100) as f64),
            );
        }
        let mut scratch = Vec::new();
        for probe in [Point::ORIGIN, Point::new(50.0, 50.0), Point::new(99.0, 0.0)] {
            h.query_radius_into(probe, 60.0, &mut scratch);
            assert_eq!(scratch, h.query_radius(probe, 60.0));
        }
        // A stale buffer from the previous query is fully replaced.
        h.query_radius_into(Point::new(-1e6, -1e6), 1.0, &mut scratch);
        assert!(scratch.is_empty());
    }

    #[test]
    fn position_tracks_latest_upsert() {
        let mut h = SpatialHash::new(25.0);
        assert_eq!(h.position(4), None);
        h.upsert(4, Point::new(3.0, 4.0));
        assert_eq!(h.position(4), Some(Point::new(3.0, 4.0)));
        h.upsert(4, Point::new(400.0, -90.0));
        assert_eq!(h.position(4), Some(Point::new(400.0, -90.0)));
        assert_eq!(h.remove(4), Some(Point::new(400.0, -90.0)));
        assert_eq!(h.position(4), None);
    }

    #[test]
    fn far_outliers_use_the_sparse_tier() {
        // Two points ~2·10^6 m apart would need an absurd dense grid; the cap
        // routes the second one to the overflow map and queries still see it.
        let mut h = SpatialHash::new(10.0);
        h.upsert(1, Point::new(0.0, 0.0));
        h.upsert(2, Point::new(1e6, 1e6));
        assert_eq!(h.query_radius(Point::new(1e6, 1e6), 5.0), vec![2]);
        assert_eq!(h.query_radius(Point::ORIGIN, 5.0), vec![1]);
        assert_eq!(h.len(), 2);
        // And it comes back if it wanders near the core region.
        h.upsert(2, Point::new(5.0, 0.0));
        assert_eq!(h.query_radius(Point::ORIGIN, 6.0), vec![1, 2]);
    }

    #[test]
    fn apply_moves_equals_upserts_and_reports_crossings() {
        let mut a = SpatialHash::new(10.0);
        let mut b = SpatialHash::new(10.0);
        let trace = [
            (1u64, 5.0, 5.0),
            (2, 6.0, 6.0),
            (1, 7.0, 5.0),  // same cell: in place
            (1, 15.0, 5.0), // crosses into the next cell
            (3, 5.5, 5.5),
            (2, 6.5, 6.0), // in place
        ];
        for &(id, x, y) in &trace {
            a.upsert(id, Point::new(x, y));
        }
        let stats = b.apply_moves(trace.iter().map(|&(id, x, y)| (id, Point::new(x, y))));
        assert_eq!(stats.crossed, 4); // 3 fresh inserts + 1 cell crossing
        assert_eq!(stats.in_place, 2);
        assert_eq!(a.dump(), b.dump());
        assert_eq!(a.len(), b.len());
        assert_eq!(b.position(1), Some(Point::new(15.0, 5.0)));
    }

    #[test]
    fn long_random_walk_keeps_bucket_count_bounded() {
        // Empty buckets are dropped (overflow) or discounted (grid), so however
        // far vehicles roam, live buckets never exceed the number of tracked ids.
        let mut h = SpatialHash::new(100.0);
        let ids = 25u64;
        // A deterministic LCG walk spanning thousands of distinct cells.
        let mut state = 0x2545_f491_4f6c_dd1du64;
        let mut step = |id: u64| {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let x = ((state >> 16) % 2_000_000) as f64 - 1_000_000.0;
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let y = ((state >> 16) % 2_000_000) as f64 - 1_000_000.0;
            (id, Point::new(x, y))
        };
        for round in 0..2000 {
            for id in 0..ids {
                let (id, p) = step(id);
                h.upsert(id, p);
            }
            assert!(
                h.bucket_count() <= ids as usize,
                "round {round}: {} buckets for {ids} ids",
                h.bucket_count()
            );
        }
        assert_eq!(h.len(), ids as usize);
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(48))]

        /// Incremental delta application is byte-identical to the sequential
        /// upsert reference — same buckets, same in-bucket entry order, same
        /// counters — for any trace and any batch chunking, and agrees with a
        /// from-scratch rebuild of the final positions on every range query.
        #[test]
        fn delta_application_matches_reference(
            moves in proptest::collection::vec((0u64..24, -40.0f64..40.0, -40.0f64..40.0), 1..400),
            splits in proptest::collection::vec(1usize..40, 0..20),
            probes in proptest::collection::vec((-40.0f64..40.0, -40.0f64..40.0, 1.0f64..30.0), 1..8),
        ) {
            let mut seq = SpatialHash::new(10.0);
            let mut bat = SpatialHash::with_capacity(10.0, 24);
            for &(id, x, y) in &moves {
                seq.upsert(id, Point::new(x, y));
            }
            // Same trace through apply_moves, in arbitrary batch sizes.
            let mut rest: &[(u64, f64, f64)] = &moves;
            let mut si = 0;
            let mut total = GridDeltaStats::default();
            while !rest.is_empty() {
                let take = splits.get(si).copied().unwrap_or(rest.len()).min(rest.len());
                si += 1;
                let (batch, tail) = rest.split_at(take);
                let stats =
                    bat.apply_moves(batch.iter().map(|&(id, x, y)| (id, Point::new(x, y))));
                total.crossed += stats.crossed;
                total.in_place += stats.in_place;
                rest = tail;
            }
            prop_assert_eq!(total.crossed + total.in_place, moves.len() as u64);
            prop_assert_eq!(seq.dump(), bat.dump());
            prop_assert_eq!(seq.len(), bat.len());
            prop_assert_eq!(seq.bucket_count(), bat.bucket_count());
            // A rebuild from the final positions must see the same world
            // through every query (bucket order may differ; results may not).
            let mut last: std::collections::BTreeMap<u64, Point> = Default::default();
            for &(id, x, y) in &moves {
                last.insert(id, Point::new(x, y));
            }
            let mut rebuilt = SpatialHash::new(10.0);
            for (&id, &p) in &last {
                rebuilt.upsert(id, p);
            }
            for &(x, y, r) in &probes {
                let c = Point::new(x, y);
                prop_assert_eq!(bat.query_radius(c, r), rebuilt.query_radius(c, r));
                let mut got = Vec::new();
                bat.for_each_within(c, r, |id, p| got.push((id, p)));
                got.sort_by_key(|&(id, _)| id);
                let mut want = Vec::new();
                rebuilt.for_each_within(c, r, |id, p| want.push((id, p)));
                want.sort_by_key(|&(id, _)| id);
                prop_assert_eq!(got, want);
            }
            // Slot-visible positions agree with the reference too.
            for id in 0u64..24 {
                prop_assert_eq!(bat.position(id), seq.position(id));
            }
        }
    }
}
