//! Headings and cardinal directions.
//!
//! HLSRG's update rules and directional geo-broadcast reason about the *direction* a
//! vehicle was last seen driving. On a Manhattan-style road graph that direction is
//! essentially cardinal, but the types here work for arbitrary bearings so jittered
//! maps behave too.

use crate::point::Vec2;
use serde::{Deserialize, Serialize};
use std::f64::consts::{FRAC_PI_2, PI};

/// The four cardinal directions, used for RSU wiring and directional broadcast.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Cardinal {
    /// +y
    North,
    /// +x
    East,
    /// -y
    South,
    /// -x
    West,
}

impl Cardinal {
    /// All four directions in N, E, S, W order.
    pub const ALL: [Cardinal; 4] = [
        Cardinal::North,
        Cardinal::East,
        Cardinal::South,
        Cardinal::West,
    ];

    /// Unit vector of this direction.
    pub fn unit(self) -> Vec2 {
        match self {
            Cardinal::North => Vec2::new(0.0, 1.0),
            Cardinal::East => Vec2::new(1.0, 0.0),
            Cardinal::South => Vec2::new(0.0, -1.0),
            Cardinal::West => Vec2::new(-1.0, 0.0),
        }
    }

    /// The opposite direction.
    pub fn opposite(self) -> Cardinal {
        match self {
            Cardinal::North => Cardinal::South,
            Cardinal::East => Cardinal::West,
            Cardinal::South => Cardinal::North,
            Cardinal::West => Cardinal::East,
        }
    }

    /// Grid offset `(dx, dy)` of this direction in units of one cell.
    pub fn grid_offset(self) -> (i64, i64) {
        match self {
            Cardinal::North => (0, 1),
            Cardinal::East => (1, 0),
            Cardinal::South => (0, -1),
            Cardinal::West => (-1, 0),
        }
    }
}

/// A heading in radians, measured counterclockwise from east (+x), normalized to
/// `(-π, π]`.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Heading(f64);

impl Heading {
    /// Creates a heading, normalizing into `(-π, π]`.
    pub fn new(radians: f64) -> Self {
        Heading(normalize_angle(radians))
    }

    /// Heading of a displacement vector; `None` for (near-)zero vectors.
    pub fn of(v: Vec2) -> Option<Self> {
        v.normalized().map(|u| Heading(u.angle()))
    }

    /// Radians in `(-π, π]`.
    pub fn radians(self) -> f64 {
        self.0
    }

    /// Unit vector of this heading.
    pub fn unit(self) -> Vec2 {
        Vec2::new(self.0.cos(), self.0.sin())
    }

    /// Smallest absolute angle to `other`, in `[0, π]`.
    pub fn angle_to(self, other: Heading) -> f64 {
        normalize_angle(other.0 - self.0).abs()
    }

    /// Nearest cardinal direction.
    pub fn to_cardinal(self) -> Cardinal {
        // Quadrants centered on the axes: east is (-π/4, π/4], etc.
        let a = self.0;
        if a > -PI / 4.0 && a <= PI / 4.0 {
            Cardinal::East
        } else if a > PI / 4.0 && a <= 3.0 * PI / 4.0 {
            Cardinal::North
        } else if a > -3.0 * PI / 4.0 && a <= -PI / 4.0 {
            Cardinal::South
        } else {
            Cardinal::West
        }
    }
}

/// Classification of a direction change at an intersection.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum TurnKind {
    /// Continuing within ±45° of the previous heading.
    Straight,
    /// Any left/right deviation beyond ±45° (HLSRG treats all turns alike).
    Turn,
    /// A reversal (≥135° deviation).
    UTurn,
}

/// Classifies the change from `from` to `to`.
pub fn classify_turn(from: Heading, to: Heading) -> TurnKind {
    let d = from.angle_to(to);
    if d <= PI / 4.0 {
        TurnKind::Straight
    } else if d < 3.0 * PI / 4.0 {
        TurnKind::Turn
    } else {
        TurnKind::UTurn
    }
}

/// Normalizes an angle into `(-π, π]`.
pub fn normalize_angle(mut a: f64) -> f64 {
    a = a.rem_euclid(2.0 * PI); // [0, 2π)
    if a > PI {
        a -= 2.0 * PI;
    }
    a
}

/// Convenience: heading of a cardinal direction.
impl From<Cardinal> for Heading {
    fn from(c: Cardinal) -> Heading {
        match c {
            Cardinal::East => Heading(0.0),
            Cardinal::North => Heading(FRAC_PI_2),
            Cardinal::West => Heading(PI),
            Cardinal::South => Heading(-FRAC_PI_2),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn normalize_wraps_into_half_open_range() {
        assert!((normalize_angle(3.0 * PI) - PI).abs() < 1e-12);
        assert!((normalize_angle(-PI) - PI).abs() < 1e-12); // -π maps to +π
        assert!((normalize_angle(0.1) - 0.1).abs() < 1e-12);
    }

    #[test]
    fn cardinal_roundtrip() {
        for c in Cardinal::ALL {
            let h: Heading = c.into();
            assert_eq!(h.to_cardinal(), c);
            assert_eq!(c.opposite().opposite(), c);
            let (dx, dy) = c.grid_offset();
            assert_eq!(c.unit().x as i64, dx);
            assert_eq!(c.unit().y as i64, dy);
        }
    }

    #[test]
    fn heading_of_vectors() {
        let h = Heading::of(Vec2::new(0.0, 5.0)).unwrap();
        assert_eq!(h.to_cardinal(), Cardinal::North);
        assert!(Heading::of(Vec2::ZERO).is_none());
    }

    #[test]
    fn angle_to_is_symmetric_and_bounded() {
        let a = Heading::new(0.2);
        let b = Heading::new(-2.9);
        assert!((a.angle_to(b) - b.angle_to(a)).abs() < 1e-12);
        assert!(a.angle_to(b) <= PI);
    }

    #[test]
    fn turn_classification() {
        let e: Heading = Cardinal::East.into();
        let n: Heading = Cardinal::North.into();
        let w: Heading = Cardinal::West.into();
        assert_eq!(classify_turn(e, e), TurnKind::Straight);
        assert_eq!(classify_turn(e, n), TurnKind::Turn);
        assert_eq!(classify_turn(e, w), TurnKind::UTurn);
        // A slight drift stays "straight".
        assert_eq!(classify_turn(e, Heading::new(0.3)), TurnKind::Straight);
    }

    #[test]
    fn diagonal_maps_to_nearest_cardinal() {
        // 30° above east is still east; 60° is north.
        assert_eq!(Heading::new(PI / 6.0).to_cardinal(), Cardinal::East);
        assert_eq!(Heading::new(PI / 3.0).to_cardinal(), Cardinal::North);
    }
}
