//! Axis-aligned bounding boxes.
//!
//! Grids (both HLSRG's road-adapted grids and RLSMP's longitude/latitude cells) are
//! rectangles in the local frame; `BBox` is the shared representation.

use crate::point::Point;
use serde::{Deserialize, Serialize};

/// An axis-aligned rectangle `[min_x, max_x) × [min_y, max_y)`.
///
/// Half-open on the max edges so that adjacent grid cells tile the plane without
/// double-counting boundary points.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct BBox {
    /// West edge (inclusive).
    pub min_x: f64,
    /// South edge (inclusive).
    pub min_y: f64,
    /// East edge (exclusive).
    pub max_x: f64,
    /// North edge (exclusive).
    pub max_y: f64,
}

impl BBox {
    /// Creates a box from corner coordinates.
    ///
    /// # Panics
    ///
    /// Panics if the box is inverted (`max < min` on either axis).
    pub fn new(min_x: f64, min_y: f64, max_x: f64, max_y: f64) -> Self {
        assert!(max_x >= min_x && max_y >= min_y, "inverted bbox");
        BBox {
            min_x,
            min_y,
            max_x,
            max_y,
        }
    }

    /// The box spanning two arbitrary corner points.
    pub fn from_corners(a: Point, b: Point) -> Self {
        BBox {
            min_x: a.x.min(b.x),
            min_y: a.y.min(b.y),
            max_x: a.x.max(b.x),
            max_y: a.y.max(b.y),
        }
    }

    /// Width in meters.
    pub fn width(&self) -> f64 {
        self.max_x - self.min_x
    }

    /// Height in meters.
    pub fn height(&self) -> f64 {
        self.max_y - self.min_y
    }

    /// Geometric center.
    pub fn center(&self) -> Point {
        Point::new(
            (self.min_x + self.max_x) / 2.0,
            (self.min_y + self.max_y) / 2.0,
        )
    }

    /// True if `p` lies inside (min edges inclusive, max edges exclusive).
    pub fn contains(&self, p: Point) -> bool {
        p.x >= self.min_x && p.x < self.max_x && p.y >= self.min_y && p.y < self.max_y
    }

    /// True if `p` lies inside or on any edge (both edges inclusive).
    pub fn contains_closed(&self, p: Point) -> bool {
        p.x >= self.min_x && p.x <= self.max_x && p.y >= self.min_y && p.y <= self.max_y
    }

    /// True if the two boxes overlap (half-open semantics).
    pub fn intersects(&self, other: &BBox) -> bool {
        self.min_x < other.max_x
            && other.min_x < self.max_x
            && self.min_y < other.max_y
            && other.min_y < self.max_y
    }

    /// The box grown by `margin` on every side.
    pub fn inflate(&self, margin: f64) -> BBox {
        BBox {
            min_x: self.min_x - margin,
            min_y: self.min_y - margin,
            max_x: self.max_x + margin,
            max_y: self.max_y + margin,
        }
    }

    /// Euclidean distance from `p` to the box (0 if inside).
    pub fn distance_to(&self, p: Point) -> f64 {
        let dx = (self.min_x - p.x).max(0.0).max(p.x - self.max_x);
        let dy = (self.min_y - p.y).max(0.0).max(p.y - self.max_y);
        (dx * dx + dy * dy).sqrt()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn basic_geometry() {
        let b = BBox::new(0.0, 0.0, 10.0, 20.0);
        assert_eq!(b.width(), 10.0);
        assert_eq!(b.height(), 20.0);
        assert_eq!(b.center(), Point::new(5.0, 10.0));
    }

    #[test]
    fn half_open_tiling() {
        let left = BBox::new(0.0, 0.0, 5.0, 5.0);
        let right = BBox::new(5.0, 0.0, 10.0, 5.0);
        let boundary = Point::new(5.0, 2.0);
        assert!(!left.contains(boundary));
        assert!(right.contains(boundary));
        assert!(left.contains_closed(boundary));
    }

    #[test]
    fn from_corners_any_order() {
        let b = BBox::from_corners(Point::new(10.0, 0.0), Point::new(0.0, 10.0));
        assert_eq!(b, BBox::new(0.0, 0.0, 10.0, 10.0));
    }

    #[test]
    fn intersects_excludes_touching_edges() {
        let a = BBox::new(0.0, 0.0, 5.0, 5.0);
        let b = BBox::new(5.0, 0.0, 10.0, 5.0);
        let c = BBox::new(4.0, 4.0, 6.0, 6.0);
        assert!(!a.intersects(&b)); // share only an edge
        assert!(a.intersects(&c));
        assert!(c.intersects(&b));
    }

    #[test]
    fn distance_to_point() {
        let b = BBox::new(0.0, 0.0, 10.0, 10.0);
        assert_eq!(b.distance_to(Point::new(5.0, 5.0)), 0.0);
        assert_eq!(b.distance_to(Point::new(13.0, 14.0)), 5.0);
        assert_eq!(b.distance_to(Point::new(-2.0, 5.0)), 2.0);
    }

    #[test]
    fn inflate_grows_every_side() {
        let b = BBox::new(1.0, 1.0, 2.0, 2.0).inflate(1.0);
        assert_eq!(b, BBox::new(0.0, 0.0, 3.0, 3.0));
    }

    #[test]
    #[should_panic(expected = "inverted bbox")]
    fn inverted_rejected() {
        let _ = BBox::new(1.0, 0.0, 0.0, 1.0);
    }
}
