//! # vanet-geo — geometry primitives and spatial indexing
//!
//! The coordinate layer under the HLSRG reproduction: a local Cartesian frame in
//! meters (x east, y north), with
//!
//! * [`Point`] / [`Vec2`] — positions and displacements,
//! * [`Segment`] — road pieces with projection/arclength helpers,
//! * [`BBox`] — half-open rectangles that tile the plane (grid cells),
//! * [`Heading`] / [`Cardinal`] / [`TurnKind`] — direction math for the update rules
//!   and directional geo-broadcast,
//! * [`SpatialHash`] — O(1) amortized "who is within radio range" queries.

#![warn(missing_docs)]

pub mod bbox;
pub mod heading;
pub mod point;
pub mod segment;
pub mod spatial;

pub use bbox::BBox;
pub use heading::{classify_turn, normalize_angle, Cardinal, Heading, TurnKind};
pub use point::{Point, Vec2};
pub use segment::Segment;
pub use spatial::{GridDeltaStats, SpatialHash};

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    fn pt() -> impl Strategy<Value = Point> {
        (-5_000.0f64..5_000.0, -5_000.0f64..5_000.0).prop_map(|(x, y)| Point::new(x, y))
    }

    proptest! {
        /// Triangle inequality for point distance.
        #[test]
        fn triangle_inequality(a in pt(), b in pt(), c in pt()) {
            prop_assert!(a.distance(c) <= a.distance(b) + b.distance(c) + 1e-9);
        }

        /// Projection really is the closest point on the segment.
        #[test]
        fn projection_minimizes_distance(a in pt(), b in pt(), p in pt(), t in 0.0f64..1.0) {
            let s = Segment::new(a, b);
            let best = s.distance_to(p);
            let other = s.a.lerp(s.b, t).distance(p);
            prop_assert!(best <= other + 1e-9);
        }

        /// Spatial hash range query agrees with brute force.
        #[test]
        fn spatial_hash_matches_bruteforce(
            points in proptest::collection::vec(pt(), 0..60),
            center in pt(),
            radius in 1.0f64..2_000.0,
        ) {
            let mut h = SpatialHash::new(250.0);
            for (i, &p) in points.iter().enumerate() {
                h.upsert(i as u64, p);
            }
            let got = h.query_radius(center, radius);
            let mut expected: Vec<u64> = points
                .iter()
                .enumerate()
                .filter(|(_, &p)| center.distance(p) < radius)
                .map(|(i, _)| i as u64)
                .collect();
            expected.sort_unstable();
            prop_assert_eq!(got, expected);
        }

        /// Normalized headings stay in (-π, π] and unit vectors have length 1.
        #[test]
        fn heading_normalization(a in -100.0f64..100.0) {
            let h = Heading::new(a);
            prop_assert!(h.radians() > -std::f64::consts::PI - 1e-12);
            prop_assert!(h.radians() <= std::f64::consts::PI + 1e-12);
            prop_assert!((h.unit().length() - 1.0).abs() < 1e-9);
        }

        /// BBox containment respects half-open tiling: every point belongs to
        /// exactly one cell of a uniform grid.
        #[test]
        fn grid_tiling_unique(p in pt()) {
            let cell = 500.0;
            let mut owners = 0;
            let ix = (p.x / cell).floor() as i64;
            let iy = (p.y / cell).floor() as i64;
            for dx in -1..=1i64 {
                for dy in -1..=1i64 {
                    let (gx, gy) = (ix + dx, iy + dy);
                    let b = BBox::new(
                        gx as f64 * cell,
                        gy as f64 * cell,
                        (gx + 1) as f64 * cell,
                        (gy + 1) as f64 * cell,
                    );
                    if b.contains(p) {
                        owners += 1;
                    }
                }
            }
            prop_assert_eq!(owners, 1);
        }
    }
}
