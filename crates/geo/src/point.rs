//! Points and vectors in the simulation plane.
//!
//! The plane is a local Cartesian frame in **meters**: `x` grows east, `y` grows
//! north. All map coordinates, vehicle positions, and radio ranges use this frame.

use serde::{Deserialize, Serialize};
use std::fmt;
use std::ops::{Add, AddAssign, Div, Mul, Neg, Sub, SubAssign};

/// A position in the plane, in meters.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct Point {
    /// East coordinate in meters.
    pub x: f64,
    /// North coordinate in meters.
    pub y: f64,
}

/// A displacement between two points, in meters.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct Vec2 {
    /// East component in meters.
    pub x: f64,
    /// North component in meters.
    pub y: f64,
}

impl Point {
    /// The origin.
    pub const ORIGIN: Point = Point { x: 0.0, y: 0.0 };

    /// Creates a point from coordinates in meters.
    #[inline]
    pub const fn new(x: f64, y: f64) -> Self {
        Point { x, y }
    }

    /// Euclidean distance to `other` in meters.
    #[inline]
    pub fn distance(self, other: Point) -> f64 {
        (self - other).length()
    }

    /// Squared Euclidean distance — cheaper when only comparing.
    #[inline]
    pub fn distance_sq(self, other: Point) -> f64 {
        (self - other).length_sq()
    }

    /// Linear interpolation: `t = 0` gives `self`, `t = 1` gives `other`.
    #[inline]
    pub fn lerp(self, other: Point, t: f64) -> Point {
        self + (other - self) * t
    }

    /// Component-wise midpoint.
    #[inline]
    pub fn midpoint(self, other: Point) -> Point {
        self.lerp(other, 0.5)
    }
}

impl Vec2 {
    /// The zero vector.
    pub const ZERO: Vec2 = Vec2 { x: 0.0, y: 0.0 };

    /// Creates a vector from components in meters.
    #[inline]
    pub const fn new(x: f64, y: f64) -> Self {
        Vec2 { x, y }
    }

    /// Euclidean length in meters.
    #[inline]
    pub fn length(self) -> f64 {
        self.length_sq().sqrt()
    }

    /// Squared length.
    #[inline]
    pub fn length_sq(self) -> f64 {
        self.x * self.x + self.y * self.y
    }

    /// Dot product.
    #[inline]
    pub fn dot(self, other: Vec2) -> f64 {
        self.x * other.x + self.y * other.y
    }

    /// Z-component of the cross product (positive = `other` is counterclockwise).
    #[inline]
    pub fn cross(self, other: Vec2) -> f64 {
        self.x * other.y - self.y * other.x
    }

    /// Unit vector in the same direction, or `None` for (near-)zero vectors.
    pub fn normalized(self) -> Option<Vec2> {
        let len = self.length();
        (len > 1e-12).then(|| self / len)
    }

    /// Angle from the +x axis in radians, in `(-π, π]`.
    #[inline]
    pub fn angle(self) -> f64 {
        self.y.atan2(self.x)
    }

    /// Rotated 90° counterclockwise.
    #[inline]
    pub fn perp(self) -> Vec2 {
        Vec2 {
            x: -self.y,
            y: self.x,
        }
    }
}

impl Sub for Point {
    type Output = Vec2;
    #[inline]
    fn sub(self, rhs: Point) -> Vec2 {
        Vec2 {
            x: self.x - rhs.x,
            y: self.y - rhs.y,
        }
    }
}

impl Add<Vec2> for Point {
    type Output = Point;
    #[inline]
    fn add(self, rhs: Vec2) -> Point {
        Point {
            x: self.x + rhs.x,
            y: self.y + rhs.y,
        }
    }
}

impl AddAssign<Vec2> for Point {
    #[inline]
    fn add_assign(&mut self, rhs: Vec2) {
        self.x += rhs.x;
        self.y += rhs.y;
    }
}

impl Sub<Vec2> for Point {
    type Output = Point;
    #[inline]
    fn sub(self, rhs: Vec2) -> Point {
        Point {
            x: self.x - rhs.x,
            y: self.y - rhs.y,
        }
    }
}

impl Add for Vec2 {
    type Output = Vec2;
    #[inline]
    fn add(self, rhs: Vec2) -> Vec2 {
        Vec2 {
            x: self.x + rhs.x,
            y: self.y + rhs.y,
        }
    }
}

impl AddAssign for Vec2 {
    #[inline]
    fn add_assign(&mut self, rhs: Vec2) {
        self.x += rhs.x;
        self.y += rhs.y;
    }
}

impl Sub for Vec2 {
    type Output = Vec2;
    #[inline]
    fn sub(self, rhs: Vec2) -> Vec2 {
        Vec2 {
            x: self.x - rhs.x,
            y: self.y - rhs.y,
        }
    }
}

impl SubAssign for Vec2 {
    #[inline]
    fn sub_assign(&mut self, rhs: Vec2) {
        self.x -= rhs.x;
        self.y -= rhs.y;
    }
}

impl Mul<f64> for Vec2 {
    type Output = Vec2;
    #[inline]
    fn mul(self, k: f64) -> Vec2 {
        Vec2 {
            x: self.x * k,
            y: self.y * k,
        }
    }
}

impl Div<f64> for Vec2 {
    type Output = Vec2;
    #[inline]
    fn div(self, k: f64) -> Vec2 {
        Vec2 {
            x: self.x / k,
            y: self.y / k,
        }
    }
}

impl Neg for Vec2 {
    type Output = Vec2;
    #[inline]
    fn neg(self) -> Vec2 {
        Vec2 {
            x: -self.x,
            y: -self.y,
        }
    }
}

impl fmt::Display for Point {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "({:.1}, {:.1})", self.x, self.y)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn distance_is_euclidean() {
        let a = Point::new(0.0, 0.0);
        let b = Point::new(3.0, 4.0);
        assert_eq!(a.distance(b), 5.0);
        assert_eq!(a.distance_sq(b), 25.0);
    }

    #[test]
    fn lerp_endpoints_and_midpoint() {
        let a = Point::new(0.0, 0.0);
        let b = Point::new(10.0, 20.0);
        assert_eq!(a.lerp(b, 0.0), a);
        assert_eq!(a.lerp(b, 1.0), b);
        assert_eq!(a.midpoint(b), Point::new(5.0, 10.0));
    }

    #[test]
    fn vector_algebra() {
        let v = Vec2::new(1.0, 2.0);
        let w = Vec2::new(3.0, -1.0);
        assert_eq!(v + w, Vec2::new(4.0, 1.0));
        assert_eq!(v - w, Vec2::new(-2.0, 3.0));
        assert_eq!(v * 2.0, Vec2::new(2.0, 4.0));
        assert_eq!(-v, Vec2::new(-1.0, -2.0));
        assert_eq!(v.dot(w), 1.0);
        assert_eq!(v.cross(w), -7.0);
    }

    #[test]
    fn normalized_unit_length() {
        let v = Vec2::new(3.0, 4.0).normalized().unwrap();
        assert!((v.length() - 1.0).abs() < 1e-12);
        assert!(Vec2::ZERO.normalized().is_none());
    }

    #[test]
    fn perp_is_ccw_rotation() {
        let east = Vec2::new(1.0, 0.0);
        assert_eq!(east.perp(), Vec2::new(0.0, 1.0)); // east → north
        assert_eq!(east.cross(east.perp()), 1.0);
    }

    #[test]
    fn angle_quadrants() {
        assert!((Vec2::new(1.0, 0.0).angle() - 0.0).abs() < 1e-12);
        assert!((Vec2::new(0.0, 1.0).angle() - std::f64::consts::FRAC_PI_2).abs() < 1e-12);
        assert!((Vec2::new(-1.0, 0.0).angle() - std::f64::consts::PI).abs() < 1e-12);
    }
}
