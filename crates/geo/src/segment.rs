//! Line segments.
//!
//! Roads are polylines of segments; vehicles live at an offset along a segment, and
//! the radio layer projects positions onto roads for directional broadcast.

use crate::bbox::BBox;
use crate::heading::Heading;
use crate::point::{Point, Vec2};
use serde::{Deserialize, Serialize};

/// A directed line segment from `a` to `b`.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Segment {
    /// Start point.
    pub a: Point,
    /// End point.
    pub b: Point,
}

impl Segment {
    /// Creates a segment.
    pub const fn new(a: Point, b: Point) -> Self {
        Segment { a, b }
    }

    /// Length in meters.
    pub fn length(&self) -> f64 {
        self.a.distance(self.b)
    }

    /// Direction vector `b - a` (not normalized).
    pub fn dir(&self) -> Vec2 {
        self.b - self.a
    }

    /// Heading from `a` to `b`, or `None` for degenerate segments.
    pub fn heading(&self) -> Option<Heading> {
        Heading::of(self.dir())
    }

    /// Point at arclength `s` from `a`, clamped to the segment.
    pub fn point_at(&self, s: f64) -> Point {
        let len = self.length();
        if len < 1e-12 {
            return self.a;
        }
        let t = (s / len).clamp(0.0, 1.0);
        self.a.lerp(self.b, t)
    }

    /// Parameter `t ∈ [0, 1]` of the closest point on the segment to `p`.
    pub fn project(&self, p: Point) -> f64 {
        let d = self.dir();
        let len_sq = d.length_sq();
        if len_sq < 1e-24 {
            return 0.0;
        }
        ((p - self.a).dot(d) / len_sq).clamp(0.0, 1.0)
    }

    /// Closest point on the segment to `p`.
    pub fn closest_point(&self, p: Point) -> Point {
        self.a.lerp(self.b, self.project(p))
    }

    /// Distance from `p` to the segment.
    pub fn distance_to(&self, p: Point) -> f64 {
        self.closest_point(p).distance(p)
    }

    /// Tight bounding box (closed, so degenerate boxes still contain the segment).
    pub fn bbox(&self) -> BBox {
        BBox::from_corners(self.a, self.b)
    }

    /// The segment reversed.
    pub fn reversed(&self) -> Segment {
        Segment {
            a: self.b,
            b: self.a,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::heading::Cardinal;

    #[test]
    fn length_and_heading() {
        let s = Segment::new(Point::new(0.0, 0.0), Point::new(0.0, 100.0));
        assert_eq!(s.length(), 100.0);
        assert_eq!(s.heading().unwrap().to_cardinal(), Cardinal::North);
    }

    #[test]
    fn point_at_clamps() {
        let s = Segment::new(Point::new(0.0, 0.0), Point::new(10.0, 0.0));
        assert_eq!(s.point_at(5.0), Point::new(5.0, 0.0));
        assert_eq!(s.point_at(-3.0), s.a);
        assert_eq!(s.point_at(50.0), s.b);
    }

    #[test]
    fn projection_and_distance() {
        let s = Segment::new(Point::new(0.0, 0.0), Point::new(10.0, 0.0));
        assert_eq!(s.project(Point::new(3.0, 7.0)), 0.3);
        assert_eq!(s.distance_to(Point::new(3.0, 7.0)), 7.0);
        // Beyond the end, closest point is the endpoint.
        assert_eq!(s.closest_point(Point::new(15.0, 0.0)), s.b);
        assert_eq!(s.distance_to(Point::new(13.0, 4.0)), 5.0);
    }

    #[test]
    fn degenerate_segment() {
        let p = Point::new(2.0, 2.0);
        let s = Segment::new(p, p);
        assert_eq!(s.length(), 0.0);
        assert!(s.heading().is_none());
        assert_eq!(s.point_at(10.0), p);
        assert_eq!(s.project(Point::new(9.0, 9.0)), 0.0);
    }

    #[test]
    fn reversed_swaps_endpoints() {
        let s = Segment::new(Point::new(1.0, 2.0), Point::new(3.0, 4.0));
        let r = s.reversed();
        assert_eq!(r.a, s.b);
        assert_eq!(r.b, s.a);
    }
}
