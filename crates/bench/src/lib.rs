//! Shared helpers for the benchmark binaries in `benches/`.
//!
//! Every figure bench does two jobs:
//!
//! 1. **Regenerate the paper figure** — run the published sweep and print the
//!    series (the numbers recorded in `EXPERIMENTS.md`).
//! 2. **Benchmark** a representative simulation run under Criterion, so changes to
//!    the simulator's performance are tracked.
//!
//! Set `HLSRG_BENCH_SCALE=smoke` to shrink the regeneration sweep (CI).

use vanet_scenario::FigureScale;

/// The sweep scale requested via `HLSRG_BENCH_SCALE` (default: the paper's).
pub fn figure_scale() -> FigureScale {
    match std::env::var("HLSRG_BENCH_SCALE").as_deref() {
        Ok("smoke") => FigureScale::Smoke,
        _ => FigureScale::Paper,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_scale_is_paper() {
        // The env var is unset in the test environment.
        if std::env::var("HLSRG_BENCH_SCALE").is_err() {
            assert_eq!(figure_scale(), FigureScale::Paper);
        }
    }
}
