//! Microbenchmarks of the simulation substrate: event queue, spatial hash, GPSR
//! step, mobility tick, and partition lookups. These bound how far the simulator
//! scales beyond the paper's 700 vehicles.

use criterion::{BenchmarkId, Criterion};
use rand::rngs::SmallRng;
use rand::{RngExt, SeedableRng};
use std::hint::black_box;
use vanet_des::{EventQueue, HeapQueue, SimDuration, SimTime};
use vanet_geo::{Point, SpatialHash};
use vanet_mobility::{LightConfig, MobilityConfig, MobilityModel, TrafficLights, VehicleId};
use vanet_net::{gpsr_step, GpsrHeader, GpsrTarget, NodeId, NodeRegistry};
use vanet_roadnet::{generate_grid, GridMapSpec, Partition};

fn bench_event_queue(c: &mut Criterion) {
    c.bench_function("kernel/event_queue_push_pop_10k", |b| {
        let mut rng = SmallRng::seed_from_u64(0);
        let times: Vec<u64> = (0..10_000)
            .map(|_| rng.random_range(0..1_000_000))
            .collect();
        b.iter(|| {
            let mut q = EventQueue::with_capacity(10_000);
            for &t in &times {
                q.schedule_at(SimTime::from_micros(t), t);
            }
            let mut acc = 0u64;
            while let Some((_, e)) = q.pop() {
                acc = acc.wrapping_add(e);
            }
            black_box(acc)
        })
    });
}

/// The classic hold model: fill the queue to a steady-state depth, then
/// alternate pop-one/schedule-one so the depth stays constant. This isolates
/// the per-operation cost at a given depth — exactly where a calendar queue's
/// amortized O(1) should separate from the heap's O(log n) — for both the
/// calendar kernel and the retired heap reference.
fn bench_event_queue_hold(c: &mut Criterion) {
    const HOLD_OPS: usize = 1_000;
    let mut group = c.benchmark_group("kernel/event_queue_hold");
    for &depth in &[1_000usize, 10_000, 100_000] {
        let mut rng = SmallRng::seed_from_u64(7);
        // Exponential-ish inter-event delays keep the steady state realistic.
        let delays: Vec<u64> = (0..HOLD_OPS)
            .map(|_| 1 + rng.random_range(0u64..2_000))
            .collect();
        let initial: Vec<u64> = (0..depth as u64)
            .map(|_| rng.random_range(0..1_000_000))
            .collect();

        // The queues persist across iterations: every iteration pops
        // HOLD_OPS events and reinserts one per pop, so the depth — and with
        // it the per-operation cost being measured — stays constant while
        // the one-time fill stays out of the timing.
        let mut cal = EventQueue::with_capacity(depth);
        let mut heap = HeapQueue::with_capacity(depth);
        for &t in &initial {
            cal.schedule_at(SimTime::from_micros(t), t);
            heap.schedule_at(SimTime::from_micros(t), t);
        }

        group.bench_with_input(BenchmarkId::new("calendar", depth), &depth, |b, _| {
            b.iter(|| {
                let mut acc = 0u64;
                for &d in &delays {
                    let (_, e) = cal.pop().unwrap();
                    acc = acc.wrapping_add(e);
                    cal.schedule_after(SimDuration::from_micros(d), d);
                }
                black_box(acc)
            })
        });
        group.bench_with_input(BenchmarkId::new("heap", depth), &depth, |b, _| {
            b.iter(|| {
                let mut acc = 0u64;
                for &d in &delays {
                    let (_, e) = heap.pop().unwrap();
                    acc = acc.wrapping_add(e);
                    heap.schedule_after(SimDuration::from_micros(d), d);
                }
                black_box(acc)
            })
        });
    }
    group.finish();
}

fn bench_spatial_hash(c: &mut Criterion) {
    let mut group = c.benchmark_group("kernel/spatial_hash_query");
    for &n in &[500usize, 2_000, 8_000] {
        let mut h = SpatialHash::new(500.0);
        let mut rng = SmallRng::seed_from_u64(1);
        for i in 0..n {
            h.upsert(
                i as u64,
                Point::new(rng.random_range(0.0..4000.0), rng.random_range(0.0..4000.0)),
            );
        }
        group.bench_with_input(BenchmarkId::from_parameter(n), &h, |b, h| {
            b.iter(|| black_box(h.query_radius(Point::new(2000.0, 2000.0), 500.0).len()))
        });
    }
    group.finish();
}

fn bench_gpsr(c: &mut Criterion) {
    let mut reg = NodeRegistry::new(500.0);
    let mut rng = SmallRng::seed_from_u64(2);
    for i in 0..1_000u32 {
        reg.add_vehicle(
            VehicleId(i),
            Point::new(rng.random_range(0.0..2000.0), rng.random_range(0.0..2000.0)),
        );
    }
    c.bench_function("kernel/gpsr_step_dense", |b| {
        let header = GpsrHeader::new(GpsrTarget::Node(NodeId(999)), reg.pos(NodeId(999)));
        b.iter(|| black_box(gpsr_step(&reg, 500.0, NodeId(0), header)))
    });
}

fn bench_mobility_tick(c: &mut Criterion) {
    let net = generate_grid(&GridMapSpec::paper(2000.0), &mut SmallRng::seed_from_u64(0));
    let lights = TrafficLights::new(&net, LightConfig::default());
    let mut group = c.benchmark_group("kernel/mobility_tick");
    for &n in &[500usize, 2_000] {
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, &n| {
            let mut rng = SmallRng::seed_from_u64(3);
            let mut model = MobilityModel::new(&net, MobilityConfig::default(), n, &mut rng);
            let tick = model.config().tick;
            let mut now = SimTime::ZERO;
            b.iter(|| {
                let s = model.step(&net, &lights, now);
                let len = s.len();
                now += tick;
                black_box(len)
            })
        });
    }
    group.finish();
}

fn bench_partition(c: &mut Criterion) {
    let net = generate_grid(&GridMapSpec::paper(2000.0), &mut SmallRng::seed_from_u64(0));
    let p = Partition::build(&net, 500.0);
    let mut rng = SmallRng::seed_from_u64(4);
    let pts: Vec<Point> = (0..1_000)
        .map(|_| Point::new(rng.random_range(0.0..2000.0), rng.random_range(0.0..2000.0)))
        .collect();
    c.bench_function("kernel/partition_l1_of_1k", |b| {
        b.iter(|| {
            let mut acc = 0u32;
            for &pt in &pts {
                acc = acc.wrapping_add(p.l1_of(pt).0);
            }
            black_box(acc)
        })
    });
}

fn main() {
    let mut c = Criterion::default().configure_from_args();
    bench_event_queue(&mut c);
    bench_event_queue_hold(&mut c);
    bench_spatial_hash(&mut c);
    bench_gpsr(&mut c);
    bench_mobility_tick(&mut c);
    bench_partition(&mut c);
    c.final_summary();
}
