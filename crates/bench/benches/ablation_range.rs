//! **Ablation A4 — communication range vs. the 500 m grid.**
//!
//! The paper sets the L1 grid edge equal to the 500 m communication range ("it
//! can be adjusted with Level 1 grids' boundary length"). Sweeping the radio
//! range while holding the grid at 500 m shows how sensitive update recording,
//! query delivery, and success are to that design coupling.

use criterion::Criterion;
use std::hint::black_box;
use vanet_scenario::{replicate_averaged, run_simulation, Protocol, SimConfig};

fn main() {
    let reps = 3;
    println!("\nAblation A4 — radio-range sweep (2 km, 500 vehicles, 500 m grids, {reps} seeds)");
    println!(
        "{:>10} {:>12} {:>12} {:>14}",
        "range (m)", "success", "latency(s)", "query tx"
    );
    for range in [250.0, 375.0, 500.0, 625.0, 750.0] {
        let mut cfg = SimConfig::paper_2km(500, 1100);
        cfg.radio.range = range;
        let h = replicate_averaged(&cfg, Protocol::Hlsrg, reps);
        println!(
            "{:>10.0} {:>12.2} {:>12.3} {:>14.0}",
            range, h.success_rate, h.mean_latency, h.query_radio_tx
        );
    }
    println!();

    let mut c = Criterion::default().sample_size(10).configure_from_args();
    let mut short = SimConfig::paper_2km(300, 1100);
    short.radio.range = 250.0;
    c.bench_function("ablation_range/short_range_run", |b| {
        b.iter(|| black_box(run_simulation(&short, Protocol::Hlsrg).success_rate))
    });
    c.final_summary();
}
