//! **Ablation A6 — mobility model robustness.**
//!
//! The paper's results should not hinge on one mobility abstraction. We rerun the
//! headline comparison under both traffic models this workspace provides:
//! memoryless weighted random turns (default) and VanetMobiSim-style
//! origin–destination trips with artery-discounted shortest paths.

use criterion::Criterion;
use std::hint::black_box;
use vanet_mobility::TripConfig;
use vanet_scenario::{replicate_averaged, run_simulation, Protocol, SimConfig};

fn main() {
    let reps = 5;
    println!("\nAblation A6 — mobility model (2 km, 500 vehicles, {reps} seeds)");
    println!(
        "{:>14} {:>9} {:>14} {:>12} {:>12}",
        "mobility", "protocol", "updates", "success", "latency(s)"
    );
    for (label, trips) in [
        ("random-turn", None),
        ("trips", Some(TripConfig::default())),
    ] {
        let mut cfg = SimConfig::paper_2km(500, 1700);
        cfg.mobility.trips = trips;
        for protocol in Protocol::ALL {
            let a = replicate_averaged(&cfg, protocol, reps);
            println!(
                "{:>14} {:>9} {:>14.0} {:>12.2} {:>12.3}",
                label,
                protocol.name(),
                a.update_packets,
                a.success_rate,
                a.mean_latency
            );
        }
    }
    println!();

    let mut c = Criterion::default().sample_size(10).configure_from_args();
    let mut trips = SimConfig::paper_2km(300, 1700);
    trips.mobility.trips = Some(TripConfig::default());
    c.bench_function("ablation_mobility/trips_run", |b| {
        b.iter(|| black_box(run_simulation(&trips, Protocol::Hlsrg).update_packets))
    });
    c.final_summary();
}
