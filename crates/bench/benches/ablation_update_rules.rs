//! **Ablation A1 — road-adapted update rules vs. naive per-grid updates.**
//!
//! Isolates the paper's third contribution: how much of HLSRG's update saving
//! comes from the class-1/class-2 suppression rules, versus just having 500 m
//! grids? We run HLSRG twice on the same world — once with the paper's rules,
//! once updating on every L1 crossing — and compare update packets and success.

use criterion::Criterion;
use hlsrg::UpdatePolicy;
use std::hint::black_box;
use vanet_scenario::{replicate_averaged, run_simulation, Protocol, SimConfig};

fn main() {
    let reps = 5;
    let mut road_adapted = SimConfig::paper_2km(500, 500);
    road_adapted.hlsrg.update_policy = UpdatePolicy::RoadAdapted;
    let mut naive = road_adapted.clone();
    naive.hlsrg.update_policy = UpdatePolicy::EveryL1Crossing;

    let a = replicate_averaged(&road_adapted, Protocol::Hlsrg, reps);
    let b = replicate_averaged(&naive, Protocol::Hlsrg, reps);
    println!("\nAblation A1 — update rules (2 km, 500 vehicles, {reps} seeds)");
    println!(
        "{:>22} {:>14} {:>12} {:>12}",
        "policy", "updates", "success", "latency(s)"
    );
    println!(
        "{:>22} {:>14.0} {:>12.2} {:>12.3}",
        "road-adapted", a.update_packets, a.success_rate, a.mean_latency
    );
    println!(
        "{:>22} {:>14.0} {:>12.2} {:>12.3}",
        "every-L1-crossing", b.update_packets, b.success_rate, b.mean_latency
    );
    println!(
        "suppression saves {:.0}% of updates at a success delta of {:+.2}\n",
        100.0 * (1.0 - a.update_packets / b.update_packets),
        a.success_rate - b.success_rate
    );

    let mut c = Criterion::default().sample_size(10).configure_from_args();
    c.bench_function("ablation_update_rules/naive_run", |b| {
        b.iter(|| black_box(run_simulation(&naive, Protocol::Hlsrg).update_packets))
    });
    c.final_summary();
}
