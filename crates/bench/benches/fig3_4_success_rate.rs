//! **Figure 3.4 — Query success rate.**
//!
//! Regenerates the paper's sweep (2 km map, 300–600 vehicles; fraction of queries
//! ACKed within the deadline).
//!
//! Paper's result: HLSRG approaches 100 % while RLSMP stays below it — HLSRG's
//! RSU-backed hierarchy plus the directional geo-broadcast finds even stale
//! targets, while RLSMP's spiral search works on overdue information.

use criterion::Criterion;
use std::hint::black_box;
use vanet_scenario::{fig3_4, run_simulation, Protocol, SimConfig};

fn main() {
    let fig = fig3_4(bench::figure_scale());
    println!("\n{fig}");
    println!(
        "mean HLSRG/RLSMP success-rate ratio: {:.3}\n",
        fig.mean_ratio()
    );

    let mut c = Criterion::default().sample_size(10).configure_from_args();
    let cfg = SimConfig::paper_2km(400, 11);
    c.bench_function("fig3_4/run_hlsrg_2km_400veh", |b| {
        b.iter(|| black_box(run_simulation(&cfg, Protocol::Hlsrg).success_rate))
    });
    c.final_summary();
}
