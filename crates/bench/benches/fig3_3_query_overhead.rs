//! **Figure 3.3 — Location query overhead.**
//!
//! Regenerates the paper's sweep (2 km map, 300–600 vehicles, 10 % of vehicles
//! querying; count of query-class radio transmissions), then benchmarks the query
//! path in isolation.
//!
//! Paper's result: overhead grows with vehicle count; HLSRG stays below RLSMP
//! (the paper reports ~15 % lower) because L3 RSUs shortcut long forwarding paths
//! over the wired backbone.

use criterion::Criterion;
use std::hint::black_box;
use vanet_scenario::{fig3_3, run_simulation, Protocol, SimConfig};

fn main() {
    let fig = fig3_3(bench::figure_scale());
    println!("\n{fig}");
    println!(
        "mean HLSRG/RLSMP query-overhead ratio: {:.3}\n",
        fig.mean_ratio()
    );

    let mut c = Criterion::default().sample_size(10).configure_from_args();
    let cfg = SimConfig::paper_2km(300, 7);
    c.bench_function("fig3_3/run_hlsrg_2km_300veh", |b| {
        b.iter(|| black_box(run_simulation(&cfg, Protocol::Hlsrg).query_radio_tx))
    });
    c.final_summary();
}
