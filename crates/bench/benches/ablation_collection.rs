//! **Ablation A5 — collection trigger: departure hand-off vs periodic push.**
//!
//! The paper collects L1 tables when a custodian *leaves* the center intersection
//! (§2.2.2); a periodic push is the obvious engineering alternative. This bench
//! quantifies the difference in collection overhead, query success, and latency.

use criterion::Criterion;
use hlsrg::CollectionMode;
use std::hint::black_box;
use vanet_scenario::{replicate_averaged, run_simulation, Protocol, SimConfig};

fn main() {
    let reps = 5;
    println!("\nAblation A5 — collection trigger (2 km, 500 vehicles, {reps} seeds)");
    println!(
        "{:>14} {:>16} {:>12} {:>12}",
        "trigger", "collection tx", "success", "latency(s)"
    );
    for mode in [CollectionMode::OnDeparture, CollectionMode::Periodic] {
        let mut cfg = SimConfig::paper_2km(500, 1300);
        cfg.hlsrg.collection_mode = mode;
        let a = replicate_averaged(&cfg, Protocol::Hlsrg, reps);
        println!(
            "{:>14} {:>16.0} {:>12.2} {:>12.3}",
            format!("{mode:?}"),
            a.collection_radio_tx,
            a.success_rate,
            a.mean_latency
        );
    }
    println!();

    let mut c = Criterion::default().sample_size(10).configure_from_args();
    let mut periodic = SimConfig::paper_2km(300, 1300);
    periodic.hlsrg.collection_mode = CollectionMode::Periodic;
    c.bench_function("ablation_collection/periodic_run", |b| {
        b.iter(|| black_box(run_simulation(&periodic, Protocol::Hlsrg).collection_radio_tx))
    });
    c.final_summary();
}
