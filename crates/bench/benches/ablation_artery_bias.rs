//! **Ablation A3 — where does the update saving come from?**
//!
//! The paper's argument rests on arteries carrying ~10× the traffic of normal
//! roads. Sweeping the mobility model's artery bias from 1× (uniform traffic) to
//! 20× shows how HLSRG's update-suppression advantage over RLSMP scales with how
//! artery-concentrated the traffic actually is.

use criterion::Criterion;
use std::hint::black_box;
use vanet_scenario::{replicate_averaged, run_simulation, Protocol, SimConfig};

fn main() {
    let reps = 3;
    println!("\nAblation A3 — artery-bias sweep (2 km, 500 vehicles, {reps} seeds)");
    println!(
        "{:>10} {:>14} {:>14} {:>10} {:>14}",
        "bias", "HLSRG updates", "RLSMP updates", "ratio", "artery share"
    );
    for bias in [1.0, 2.0, 5.0, 10.0, 20.0] {
        let mut cfg = SimConfig::paper_2km(500, 900);
        cfg.mobility.route.artery_bias = bias;
        let h = replicate_averaged(&cfg, Protocol::Hlsrg, reps);
        let r = replicate_averaged(&cfg, Protocol::Rlsmp, reps);
        // Artery share is a per-run diagnostic; re-derive from one run.
        let share = run_simulation(&cfg, Protocol::Hlsrg).artery_share;
        println!(
            "{:>10.0} {:>14.0} {:>14.0} {:>10.3} {:>14.2}",
            bias,
            h.update_packets,
            r.update_packets,
            h.update_packets / r.update_packets,
            share
        );
    }
    println!();

    let mut c = Criterion::default().sample_size(10).configure_from_args();
    let mut uniform = SimConfig::paper_2km(300, 900);
    uniform.mobility.route.artery_bias = 1.0;
    c.bench_function("ablation_artery_bias/uniform_traffic_run", |b| {
        b.iter(|| black_box(run_simulation(&uniform, Protocol::Hlsrg).update_packets))
    });
    c.final_summary();
}
