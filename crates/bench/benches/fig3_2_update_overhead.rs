//! **Figure 3.2 — Location update overhead.**
//!
//! Regenerates the paper's sweep (maps of 500/1000/2000 m with 31/125/500
//! vehicles; count of location-update packets, HLSRG vs RLSMP), then benchmarks a
//! representative 2 km HLSRG run.
//!
//! Paper's result: HLSRG produces ~50 % fewer update packets, with the gap growing
//! with map size.

use criterion::Criterion;
use std::hint::black_box;
use vanet_scenario::{fig3_2, run_simulation, Protocol, SimConfig};

fn main() {
    let fig = fig3_2(bench::figure_scale());
    println!("\n{fig}");
    println!("mean HLSRG/RLSMP update ratio: {:.3}\n", fig.mean_ratio());

    let mut c = Criterion::default().sample_size(10).configure_from_args();
    let cfg = SimConfig::paper_2km(500, 42);
    c.bench_function("fig3_2/run_hlsrg_2km_500veh", |b| {
        b.iter(|| black_box(run_simulation(&cfg, Protocol::Hlsrg).update_packets))
    });
    c.bench_function("fig3_2/run_rlsmp_2km_500veh", |b| {
        b.iter(|| black_box(run_simulation(&cfg, Protocol::Rlsmp).update_packets))
    });
    c.final_summary();
}
