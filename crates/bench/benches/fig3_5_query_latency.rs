//! **Figure 3.5 — Average time cost for a query.**
//!
//! Regenerates the paper's sweep (2 km map, 300–600 vehicles; mean request→ACK
//! latency over successful queries, averaged across seeds as the paper averages
//! 10 simulations).
//!
//! Paper's result: HLSRG is faster — wired L3 forwarding replaces RLSMP's
//! wait-and-aggregate pause and spiral LSC visits.

use criterion::Criterion;
use std::hint::black_box;
use vanet_scenario::{fig3_5, run_simulation, Protocol, SimConfig};

fn main() {
    let fig = fig3_5(bench::figure_scale());
    println!("\n{fig}");
    println!("mean HLSRG/RLSMP latency ratio: {:.3}\n", fig.mean_ratio());

    let mut c = Criterion::default().sample_size(10).configure_from_args();
    let cfg = SimConfig::paper_2km(500, 3);
    c.bench_function("fig3_5/run_rlsmp_2km_500veh", |b| {
        b.iter(|| black_box(run_simulation(&cfg, Protocol::Rlsmp).queries_succeeded))
    });
    c.final_summary();
}
