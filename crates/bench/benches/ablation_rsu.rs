//! **Ablation A2 — the wired RSU backbone.**
//!
//! Isolates the paper's second contribution: RSUs at L2/L3 centers with wired
//! links. With the backbone cut, L2→L3 pushes and all inter-RSU query forwarding
//! fail, so queries must resolve from L1/L2 knowledge alone — measuring how much
//! of HLSRG's success rate and latency the infrastructure buys.

use criterion::Criterion;
use std::hint::black_box;
use vanet_scenario::{replicate_averaged, run_simulation, Protocol, SimConfig};

fn main() {
    let reps = 5;
    let wired = SimConfig::paper_2km(500, 700);
    let mut unwired = wired.clone();
    unwired.wired_backbone = false;

    let a = replicate_averaged(&wired, Protocol::Hlsrg, reps);
    let b = replicate_averaged(&unwired, Protocol::Hlsrg, reps);
    println!("\nAblation A2 — RSU wired backbone (2 km, 500 vehicles, {reps} seeds)");
    println!(
        "{:>12} {:>12} {:>12} {:>14}",
        "backbone", "success", "latency(s)", "query tx"
    );
    println!(
        "{:>12} {:>12.2} {:>12.3} {:>14.0}",
        "wired", a.success_rate, a.mean_latency, a.query_radio_tx
    );
    println!(
        "{:>12} {:>12.2} {:>12.3} {:>14.0}",
        "cut", b.success_rate, b.mean_latency, b.query_radio_tx
    );
    println!(
        "the backbone contributes {:+.2} success rate and {:+.3} s latency\n",
        a.success_rate - b.success_rate,
        b.mean_latency - a.mean_latency
    );

    let mut c = Criterion::default().sample_size(10).configure_from_args();
    c.bench_function("ablation_rsu/unwired_run", |b| {
        b.iter(|| black_box(run_simulation(&unwired, Protocol::Hlsrg).queries_succeeded))
    });
    c.final_summary();
}
