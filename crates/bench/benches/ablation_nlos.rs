//! **Ablation A7 — building shadowing (Manhattan NLOS).**
//!
//! The paper's case for road-adapted grids is physical: lon/lat boundaries "cut
//! through buildings and shade trees", hurting delivery, while road-aligned
//! communication stays in street canyons. With the Manhattan NLOS model on
//! (off-axis links attenuated), both protocols suffer — but RLSMP's geometric
//! cell centers depend on off-axis hops more than HLSRG's intersection-anchored
//! centers, so the success gap should widen.

use criterion::Criterion;
use std::hint::black_box;
use vanet_scenario::{replicate_averaged, run_simulation, Protocol, SimConfig};

fn main() {
    let reps = 5;
    println!("\nAblation A7 — Manhattan NLOS penalty (2 km, 500 vehicles, {reps} seeds)");
    println!(
        "{:>10} {:>9} {:>12} {:>12} {:>14}",
        "penalty", "protocol", "success", "latency(s)", "query tx"
    );
    for penalty in [1.0, 0.7, 0.4] {
        let mut cfg = SimConfig::paper_2km(500, 1900);
        cfg.radio.nlos_penalty = penalty;
        for protocol in Protocol::ALL {
            let a = replicate_averaged(&cfg, protocol, reps);
            println!(
                "{:>10.1} {:>9} {:>12.2} {:>12.3} {:>14.0}",
                penalty,
                protocol.name(),
                a.success_rate,
                a.mean_latency,
                a.query_radio_tx
            );
        }
    }
    println!();

    let mut c = Criterion::default().sample_size(10).configure_from_args();
    let mut shadowed = SimConfig::paper_2km(300, 1900);
    shadowed.radio.nlos_penalty = 0.4;
    c.bench_function("ablation_nlos/shadowed_run", |b| {
        b.iter(|| black_box(run_simulation(&shadowed, Protocol::Hlsrg).success_rate))
    });
    c.final_summary();
}
