//! GPSR: greedy perimeter stateless routing (Karp & Kung, MobiCom 2000).
//!
//! The paper assumes GPSR as the underlying geographic routing protocol — once a
//! location service has produced the destination's position, data and control
//! packets are forwarded hop by hop toward that position.
//!
//! We implement greedy forwarding with a right-hand-rule recovery mode: when no
//! neighbor is strictly closer to the destination than the current node (a local
//! maximum), the packet walks the neighborhood counterclockwise until it regains a
//! node closer than where it entered recovery, as in the original protocol. Full
//! Gabriel-graph planarization is unnecessary on road-constrained topologies — the
//! recovery walk plus a TTL bound gives the same behaviour at this density.

use crate::node::{NodeId, NodeRegistry};
use serde::{Deserialize, Serialize};
use vanet_geo::Point;

/// What the packet is ultimately addressed to.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum GpsrTarget {
    /// A specific node; its live position is re-read at every hop (the header's
    /// `dst_pos` is a fallback if it disappears).
    Node(NodeId),
    /// Whoever is within `radius` of the header's `dst_pos` first — used to reach
    /// "the grid center" where any custodian vehicle will do.
    AnyAt {
        /// Acceptance radius around `dst_pos`, meters.
        radius: f64,
    },
}

/// Forwarding mode.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum GpsrMode {
    /// Greedy: strictly decreasing distance to the destination.
    Greedy,
    /// Recovery after a local maximum: right-hand walk until closer than
    /// `entry_dist`.
    Recovery {
        /// Distance to the destination when recovery began.
        entry_dist: f64,
    },
}

/// The routing header carried hop to hop.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct GpsrHeader {
    /// Geographic destination (refreshed per hop for `GpsrTarget::Node`).
    pub dst_pos: Point,
    /// Final delivery condition.
    pub target: GpsrTarget,
    /// Current mode.
    pub mode: GpsrMode,
    /// Remaining hop budget.
    pub ttl: u32,
    /// Consecutive recovery-mode hops taken; a perimeter walk that rounds no
    /// corner back toward the destination within [`MAX_RECOVERY_HOPS`] is orbiting
    /// an empty target region and gets dropped.
    pub recovery_hops: u32,
    /// The node this packet came from (for the right-hand rule; `None` at origin).
    pub prev: Option<NodeId>,
}

/// Recovery-walk budget before a packet is declared undeliverable.
pub const MAX_RECOVERY_HOPS: u32 = 12;

impl GpsrHeader {
    /// Standard header with a 64-hop budget.
    pub fn new(target: GpsrTarget, dst_pos: Point) -> Self {
        GpsrHeader {
            dst_pos,
            target,
            mode: GpsrMode::Greedy,
            ttl: 64,
            recovery_hops: 0,
            prev: None,
        }
    }
}

/// Result of one routing decision.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum GpsrStep {
    /// The current node satisfies the delivery condition: hand the payload up.
    Arrived,
    /// Forward to `next` with the updated header.
    Forward {
        /// Chosen next hop.
        next: NodeId,
        /// Header to carry (mode/ttl/prev updated).
        header: GpsrHeader,
    },
    /// No way forward (dead end or TTL exhausted).
    Fail(GpsrFailure),
}

/// Why routing stopped.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum GpsrFailure {
    /// Hop budget exhausted.
    TtlExpired,
    /// No neighbors at all.
    Isolated,
    /// Recovery walk found no usable neighbor.
    NoProgress,
}

/// Reusable working storage for [`gpsr_step_scratch`]. Holding one across calls
/// (as [`crate::NetworkCore`] does) makes a steady-state routing decision
/// allocation-free.
#[derive(Debug, Default)]
pub struct GpsrScratch {
    /// Filtered neighbor set.
    neighbors: Vec<NodeId>,
    /// Recovery mode's angular ranking.
    ranked: Vec<(f64, NodeId)>,
}

/// Makes the routing decision for a packet currently held by `me`.
///
/// `range` is the radio range used for neighbor discovery.
pub fn gpsr_step(reg: &NodeRegistry, range: f64, me: NodeId, header: GpsrHeader) -> GpsrStep {
    gpsr_step_excluding(reg, range, me, header, &[])
}

/// Like [`gpsr_step`] but skipping `exclude` as next hops — the MAC layer calls
/// this to reroute after a neighbor proved unreachable (802.11 retry exhaustion),
/// exactly as the original GPSR does on link-layer feedback.
pub fn gpsr_step_excluding(
    reg: &NodeRegistry,
    range: f64,
    me: NodeId,
    header: GpsrHeader,
    exclude: &[NodeId],
) -> GpsrStep {
    gpsr_step_scratch(reg, range, me, header, exclude, &mut GpsrScratch::default())
}

/// [`gpsr_step_excluding`] with caller-provided working storage — the
/// allocation-free form the per-packet hot path uses. Results are identical:
/// the scratch buffers only replace this function's temporaries.
pub fn gpsr_step_scratch(
    reg: &NodeRegistry,
    range: f64,
    me: NodeId,
    mut header: GpsrHeader,
    exclude: &[NodeId],
    scratch: &mut GpsrScratch,
) -> GpsrStep {
    let my_pos = reg.pos(me);

    // Refresh the geographic target for node-addressed packets: GPSR chases the
    // node's *current* position, which is what lets an ACK find a moving source.
    if let GpsrTarget::Node(n) = header.target {
        header.dst_pos = reg.pos(n);
        if n == me {
            return GpsrStep::Arrived;
        }
        // Final hop: the target itself is in radio range.
        if my_pos.distance(header.dst_pos) < range && !exclude.contains(&n) {
            header.ttl = header.ttl.saturating_sub(1);
            header.prev = Some(me);
            return GpsrStep::Forward { next: n, header };
        }
    }
    if let GpsrTarget::AnyAt { radius } = header.target {
        if my_pos.distance(header.dst_pos) <= radius {
            return GpsrStep::Arrived;
        }
    }

    if header.ttl == 0 {
        return GpsrStep::Fail(GpsrFailure::TtlExpired);
    }

    reg.nodes_within_into(my_pos, range, Some(me), &mut scratch.neighbors);
    scratch.neighbors.retain(|n| !exclude.contains(n));
    let neighbors = &scratch.neighbors;
    if neighbors.is_empty() {
        return GpsrStep::Fail(GpsrFailure::Isolated);
    }

    let my_dist = my_pos.distance(header.dst_pos);

    // Greedy: strictly closer neighbor, nearest first (ties by id via sort order).
    let best = neighbors
        .iter()
        .map(|&n| (n, reg.pos(n).distance(header.dst_pos)))
        .min_by(|a, b| a.1.total_cmp(&b.1).then_with(|| a.0.cmp(&b.0)));
    if let Some((n, d)) = best {
        let leaving_recovery = match header.mode {
            GpsrMode::Greedy => d < my_dist - 1e-9,
            GpsrMode::Recovery { entry_dist } => d < entry_dist - 1e-9,
        };
        if leaving_recovery {
            header.mode = GpsrMode::Greedy;
            header.recovery_hops = 0;
            header.prev = Some(me);
            header.ttl -= 1;
            return GpsrStep::Forward { next: n, header };
        }
    }

    // Local maximum: (enter or continue) recovery with the right-hand rule.
    if header.recovery_hops >= MAX_RECOVERY_HOPS {
        // The perimeter walk is orbiting an empty target region: undeliverable.
        return GpsrStep::Fail(GpsrFailure::NoProgress);
    }
    let entry_dist = match header.mode {
        GpsrMode::Greedy => my_dist,
        GpsrMode::Recovery { entry_dist } => entry_dist,
    };
    // Reference direction: back along the edge we came from, else toward dst.
    let ref_vec = match header.prev {
        Some(p) => reg.pos(p) - my_pos,
        None => header.dst_pos - my_pos,
    };
    let ref_angle = ref_vec.angle();
    // First neighbor counterclockwise from the reference edge, skipping the node we
    // came from (to avoid immediate ping-pong) unless it is the only neighbor.
    let ranked = &mut scratch.ranked;
    ranked.clear();
    ranked.extend(
        neighbors
            .iter()
            .filter(|&&n| Some(n) != header.prev)
            .map(|&n| {
                let a = (reg.pos(n) - my_pos).angle();
                let ccw = vanet_geo::normalize_angle(a - ref_angle);
                // Map to (0, 2π] so "just past the reference" sorts first.
                let key = if ccw <= 0.0 {
                    ccw + 2.0 * std::f64::consts::PI
                } else {
                    ccw
                };
                (key, n)
            }),
    );
    ranked.sort_by(|a, b| a.0.total_cmp(&b.0).then_with(|| a.1.cmp(&b.1)));
    let next = match ranked.first() {
        Some(&(_, n)) => n,
        None => match header.prev {
            // Dead-end: the only neighbor is where we came from; bounce back.
            Some(p) if neighbors.contains(&p) => p,
            _ => return GpsrStep::Fail(GpsrFailure::NoProgress),
        },
    };
    header.mode = GpsrMode::Recovery { entry_dist };
    header.recovery_hops += 1;
    header.prev = Some(me);
    header.ttl -= 1;
    GpsrStep::Forward { next, header }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vanet_mobility::VehicleId;

    /// A line of nodes 300 m apart: 0 — 1 — 2 — 3 — 4.
    fn line_registry(n: u32) -> NodeRegistry {
        let mut reg = NodeRegistry::new(500.0);
        for i in 0..n {
            reg.add_vehicle(VehicleId(i), Point::new(i as f64 * 300.0, 0.0));
        }
        reg
    }

    fn route_to_completion(
        reg: &NodeRegistry,
        range: f64,
        start: NodeId,
        header: GpsrHeader,
    ) -> (Vec<NodeId>, GpsrStep) {
        let mut path = vec![start];
        let mut cur = start;
        let mut h = header;
        loop {
            match gpsr_step(reg, range, cur, h) {
                GpsrStep::Forward { next, header } => {
                    path.push(next);
                    cur = next;
                    h = header;
                    if path.len() > 200 {
                        return (path, GpsrStep::Fail(GpsrFailure::TtlExpired));
                    }
                }
                done => return (path, done),
            }
        }
    }

    #[test]
    fn greedy_walks_the_line() {
        let reg = line_registry(5);
        let h = GpsrHeader::new(GpsrTarget::Node(NodeId(4)), reg.pos(NodeId(4)));
        let (path, end) = route_to_completion(&reg, 500.0, NodeId(0), h);
        assert_eq!(end, GpsrStep::Arrived);
        assert_eq!(
            path,
            vec![NodeId(0), NodeId(1), NodeId(2), NodeId(3), NodeId(4)]
        );
    }

    #[test]
    fn any_at_accepts_first_node_in_radius() {
        let reg = line_registry(5);
        let dst = Point::new(1200.0, 0.0); // node 4 sits at 1200
        let h = GpsrHeader::new(GpsrTarget::AnyAt { radius: 80.0 }, dst);
        let (path, end) = route_to_completion(&reg, 500.0, NodeId(0), h);
        assert_eq!(end, GpsrStep::Arrived);
        assert_eq!(*path.last().unwrap(), NodeId(4));
    }

    #[test]
    fn originator_inside_radius_arrives_immediately() {
        let reg = line_registry(2);
        let h = GpsrHeader::new(GpsrTarget::AnyAt { radius: 100.0 }, Point::new(20.0, 0.0));
        assert_eq!(gpsr_step(&reg, 500.0, NodeId(0), h), GpsrStep::Arrived);
    }

    #[test]
    fn isolated_node_fails() {
        let mut reg = NodeRegistry::new(500.0);
        reg.add_vehicle(VehicleId(0), Point::ORIGIN);
        reg.add_vehicle(VehicleId(1), Point::new(5000.0, 0.0));
        let h = GpsrHeader::new(GpsrTarget::Node(NodeId(1)), reg.pos(NodeId(1)));
        assert_eq!(
            gpsr_step(&reg, 500.0, NodeId(0), h),
            GpsrStep::Fail(GpsrFailure::Isolated)
        );
    }

    #[test]
    fn ttl_bounds_the_walk() {
        let reg = line_registry(5);
        let mut h = GpsrHeader::new(GpsrTarget::Node(NodeId(4)), reg.pos(NodeId(4)));
        h.ttl = 1;
        let (_, end) = route_to_completion(&reg, 350.0, NodeId(0), h);
        assert_eq!(end, GpsrStep::Fail(GpsrFailure::TtlExpired));
    }

    #[test]
    fn recovery_rounds_a_void() {
        // The straight line from 0 to the destination has a void; the only path
        // arcs over the top. Node 0's single neighbor (1) is *farther* from the
        // destination, so greedy fails immediately and recovery must take over.
        let mut reg = NodeRegistry::new(500.0);
        let pts = [
            Point::new(0.0, 0.0),      // 0 start
            Point::new(0.0, 400.0),    // 1 (farther from dst than 0: local max)
            Point::new(300.0, 650.0),  // 2
            Point::new(700.0, 650.0),  // 3
            Point::new(1000.0, 350.0), // 4
            Point::new(1000.0, 0.0),   // 5 dst — 1000 m from 0: out of range
        ];
        for (i, &p) in pts.iter().enumerate() {
            reg.add_vehicle(VehicleId(i as u32), p);
        }
        let h = GpsrHeader::new(GpsrTarget::Node(NodeId(5)), reg.pos(NodeId(5)));
        let (path, end) = route_to_completion(&reg, 450.0, NodeId(0), h);
        assert_eq!(end, GpsrStep::Arrived, "path: {path:?}");
        assert_eq!(*path.last().unwrap(), NodeId(5));
        // It must have detoured over the arc.
        assert!(
            path.contains(&NodeId(1)) && path.contains(&NodeId(3)),
            "path: {path:?}"
        );
    }

    #[test]
    fn final_hop_short_circuits_to_target() {
        let reg = line_registry(3);
        // From node 1, node 2 is in range: the step must hand the packet straight
        // to the target, not to some closer intermediate.
        let h = GpsrHeader::new(GpsrTarget::Node(NodeId(2)), reg.pos(NodeId(2)));
        match gpsr_step(&reg, 500.0, NodeId(1), h) {
            GpsrStep::Forward { next, .. } => assert_eq!(next, NodeId(2)),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn arrived_when_me_is_target() {
        let reg = line_registry(2);
        let h = GpsrHeader::new(GpsrTarget::Node(NodeId(0)), reg.pos(NodeId(0)));
        assert_eq!(gpsr_step(&reg, 500.0, NodeId(0), h), GpsrStep::Arrived);
    }
}
