//! The network core: the façade protocols talk to.
//!
//! `NetworkCore` owns the node registry, the radio model, the wired backbone, the
//! radio RNG stream, and the transmission counters. Every send primitive returns a
//! list of [`Emission`]s — `(delay, recipient, transport)` triples — that the
//! simulation harness schedules on its event queue. When a scheduled delivery fires,
//! the harness calls [`NetworkCore::handle_deliver`], which either surfaces the
//! payload to the protocol (final hop) or returns follow-up emissions (GPSR
//! forwarding).
//!
//! Keeping the core emission-based (instead of letting it touch the event queue)
//! makes every primitive a pure-ish function that is easy to test in isolation and
//! lets one queue type serve mobility ticks, protocol timers, and deliveries.

use crate::counters::{NetCounters, PacketClass};
use crate::flood::{directional_broadcast, region_broadcast, FloodScratch};
use crate::gpsr::{GpsrHeader, GpsrScratch, GpsrStep, GpsrTarget};
use crate::node::{NodeId, NodeRegistry};
use crate::radio::RadioConfig;
use crate::wired::WiredNetwork;
use rand::rngs::SmallRng;
use vanet_des::{SimDuration, SimTime};
use vanet_geo::{BBox, Point, Vec2};
use vanet_roadnet::RsuId;
use vanet_trace::{Phase, PhaseTimings, TraceEvent, Tracer};

/// In-flight packet state carried by a scheduled delivery.
#[derive(Debug, Clone)]
pub enum Transport<P> {
    /// Final-hop delivery: hand `payload` to the protocol at the recipient.
    Local {
        /// Accounting class.
        class: PacketClass,
        /// Protocol payload.
        payload: P,
    },
    /// A GPSR packet in flight: the recipient must route it further (or accept it).
    Gpsr {
        /// Routing header.
        header: GpsrHeader,
        /// Accounting class.
        class: PacketClass,
        /// Packet size in bytes (drives per-hop delay).
        size: usize,
        /// Protocol payload.
        payload: P,
    },
}

/// A scheduled future delivery.
#[derive(Debug, Clone)]
pub struct Emission<P> {
    /// Delay from "now" until the delivery fires.
    pub delay: SimDuration,
    /// Receiving node.
    pub to: NodeId,
    /// Packet state.
    pub transport: Transport<P>,
}

/// Outcome of one GPSR routing decision — at most one follow-up, so the per-hop
/// path never allocates.
enum Routed<P> {
    /// The packet is for the node it sits at: hand the payload up.
    Arrived { class: PacketClass, payload: P },
    /// One forwarding emission toward the next hop.
    Forward(Emission<P>),
    /// Dropped (loss, TTL, isolation, or no progress) — already counted.
    Dropped,
}

/// The network façade.
#[derive(Debug)]
pub struct NetworkCore {
    /// Node positions and kinds.
    pub registry: NodeRegistry,
    /// Radio model.
    pub radio: RadioConfig,
    /// RSU backbone.
    pub wired: WiredNetwork,
    /// Transmission accounting.
    pub counters: NetCounters,
    /// Structured event tracer; `None` (the default) costs one pointer test per
    /// potential event. Install with [`Self::set_tracer`].
    pub tracer: Option<Box<Tracer>>,
    /// Wall-clock accounting of GPSR next-hop selection (no-op unless the
    /// `trace` cargo feature is on).
    pub timings: PhaseTimings,
    rng: SmallRng,
    /// Reused neighbor-query buffer: the per-transmission lookup allocates
    /// nothing once this has grown to the local density.
    neighbor_scratch: Vec<NodeId>,
    /// Reused GPSR routing-decision storage.
    gpsr_scratch: GpsrScratch,
    /// Reused flood working set (dedup maps, frontier, neighbor buffer).
    flood_scratch: FloodScratch,
}

impl NetworkCore {
    /// How many alternative next hops a GPSR hop tries after MAC failures.
    pub const MAX_REROUTES: usize = 3;

    /// Assembles the core. `rng` should be the dedicated radio stream.
    pub fn new(
        registry: NodeRegistry,
        radio: RadioConfig,
        wired: WiredNetwork,
        rng: SmallRng,
    ) -> Self {
        NetworkCore {
            registry,
            radio,
            wired,
            counters: NetCounters::new(),
            tracer: None,
            timings: PhaseTimings::new(),
            rng,
            neighbor_scratch: Vec::new(),
            gpsr_scratch: GpsrScratch::default(),
            flood_scratch: FloodScratch::default(),
        }
    }

    /// Installs a tracer; every counter bump below then also emits a
    /// [`TraceEvent`], so trace exports reconcile exactly with the counters.
    pub fn set_tracer(&mut self, tracer: Box<Tracer>) {
        self.tracer = Some(tracer);
    }

    /// Removes and returns the tracer, if one was installed.
    pub fn take_tracer(&mut self) -> Option<Box<Tracer>> {
        self.tracer.take()
    }

    /// Advances the tracer's clock; the harness calls this as it pops each
    /// event so emit sites don't need `now` threaded through.
    #[inline]
    pub fn set_trace_now(&mut self, now: SimTime) {
        if let Some(tr) = self.tracer.as_deref_mut() {
            tr.set_now(now);
        }
    }

    /// Records a trace event built by `f` (called only when tracing is on,
    /// with the tracer's current clock).
    #[inline]
    pub fn trace(&mut self, f: impl FnOnce(SimTime) -> TraceEvent) {
        if let Some(tr) = self.tracer.as_deref_mut() {
            let t = tr.now();
            tr.record(f(t));
        }
    }

    /// One-hop broadcast from `from`: every node in range draws reception.
    ///
    /// Costs exactly one transmission regardless of audience (it's a broadcast).
    pub fn broadcast_onehop<P: Clone>(
        &mut self,
        from: NodeId,
        class: PacketClass,
        size: usize,
        payload: P,
    ) -> Vec<Emission<P>> {
        self.counters.count_origination(class);
        self.counters.count_radio(class, 1);
        self.counters.count_airtime(class, self.radio.tx_time(size));
        self.trace(|t| TraceEvent::Originated {
            t,
            node: from.0,
            class: class.index() as u8,
        });
        self.trace(|t| TraceEvent::RadioHop {
            t,
            node: from.0,
            class: class.index() as u8,
            n: 1,
        });
        let from_pos = self.registry.pos(from);
        let mut out = Vec::new();
        // Take the scratch buffer so iterating it doesn't hold a borrow of self.
        let mut neighbors = std::mem::take(&mut self.neighbor_scratch);
        self.registry
            .nodes_within_into(from_pos, self.radio.range, Some(from), &mut neighbors);
        for &n in &neighbors {
            if self
                .radio
                .link_succeeds_between(from_pos, self.registry.pos(n), &mut self.rng)
            {
                let delay = self.radio.hop_delay(size, &mut self.rng);
                out.push(Emission {
                    delay,
                    to: n,
                    transport: Transport::Local {
                        class,
                        payload: payload.clone(),
                    },
                });
            }
        }
        self.neighbor_scratch = neighbors;
        out
    }

    /// Originates a GPSR unicast toward `dst_pos` / `target`.
    pub fn send_gpsr<P>(
        &mut self,
        from: NodeId,
        target: GpsrTarget,
        dst_pos: Point,
        class: PacketClass,
        size: usize,
        payload: P,
    ) -> Vec<Emission<P>> {
        self.counters.count_origination(class);
        self.trace(|t| TraceEvent::Originated {
            t,
            node: from.0,
            class: class.index() as u8,
        });
        let header = GpsrHeader::new(target, dst_pos);
        match self.gpsr_process(from, header, class, size, payload) {
            Routed::Arrived { class, payload } => vec![Emission {
                delay: SimDuration::ZERO,
                to: from,
                transport: Transport::Local { class, payload },
            }],
            Routed::Forward(e) => vec![e],
            Routed::Dropped => Vec::new(),
        }
    }

    /// Routes (or accepts) a GPSR packet sitting at `at`.
    ///
    /// On MAC retry exhaustion toward a chosen neighbor, the neighbor is
    /// blacklisted and routing re-runs — the link-layer-feedback reroute of the
    /// original GPSR. Up to [`Self::MAX_REROUTES`] alternatives are tried before
    /// the packet is declared lost.
    fn gpsr_process<P>(
        &mut self,
        at: NodeId,
        header: GpsrHeader,
        class: PacketClass,
        size: usize,
        payload: P,
    ) -> Routed<P> {
        use crate::counters::DropKind;
        use crate::gpsr::{gpsr_step_scratch, GpsrFailure};

        let mut dead_neighbors: Vec<NodeId> = Vec::new();
        // Take the scratch so the timing closure borrows self only via fields.
        let mut scratch = std::mem::take(&mut self.gpsr_scratch);
        let result = loop {
            let step = self.timings.time(Phase::GpsrNextHop, || {
                gpsr_step_scratch(
                    &self.registry,
                    self.radio.range,
                    at,
                    header,
                    &dead_neighbors,
                    &mut scratch,
                )
            });
            match step {
                GpsrStep::Arrived => {
                    break Routed::Arrived { class, payload };
                }
                GpsrStep::Forward { next, header: fwd } => {
                    let (pa, pb) = (self.registry.pos(at), self.registry.pos(next));
                    // Inline invariant assertions (`check` feature): cheap
                    // per-hop sanity that also covers non-runner entry points
                    // (floods, unit tests). The runner-side oracle re-checks
                    // these without panicking so fuzz failures shrink cleanly.
                    #[cfg(feature = "check")]
                    {
                        assert!(
                            fwd.ttl < header.ttl,
                            "gpsr forward must decrement ttl ({} -> {})",
                            header.ttl,
                            fwd.ttl
                        );
                        assert!(
                            fwd.recovery_hops <= crate::gpsr::MAX_RECOVERY_HOPS,
                            "gpsr recovery hop budget exceeded: {}",
                            fwd.recovery_hops
                        );
                        assert!(
                            pa.distance(pb) <= self.radio.range + 1e-6,
                            "gpsr hop spans {:.1} m, beyond the {:.1} m radio range",
                            pa.distance(pb),
                            self.radio.range
                        );
                    }
                    let mut attempts = 0u64;
                    let mut success = false;
                    while attempts <= self.radio.retries as u64 {
                        attempts += 1;
                        if self.radio.link_succeeds_between(pa, pb, &mut self.rng) {
                            success = true;
                            break;
                        }
                    }
                    self.counters.count_radio(class, attempts);
                    self.counters
                        .count_airtime(class, self.radio.tx_time(size) * attempts);
                    self.trace(|t| TraceEvent::RadioHop {
                        t,
                        node: at.0,
                        class: class.index() as u8,
                        n: attempts,
                    });
                    if !success {
                        dead_neighbors.push(next);
                        if dead_neighbors.len() > Self::MAX_REROUTES {
                            self.counters.count_drop_kind(class, DropKind::Loss);
                            self.trace(|t| TraceEvent::Dropped {
                                t,
                                node: at.0,
                                class: class.index() as u8,
                                cause: DropKind::Loss.index() as u8,
                            });
                            break Routed::Dropped;
                        }
                        continue; // reroute around the dead link
                    }
                    let mut delay = SimDuration::ZERO;
                    for _ in 0..attempts {
                        delay += self.radio.hop_delay(size, &mut self.rng);
                    }
                    break Routed::Forward(Emission {
                        delay,
                        to: next,
                        transport: Transport::Gpsr {
                            header: fwd,
                            class,
                            size,
                            payload,
                        },
                    });
                }
                GpsrStep::Fail(f) => {
                    let kind = match f {
                        GpsrFailure::TtlExpired => DropKind::Ttl,
                        GpsrFailure::Isolated => DropKind::Isolated,
                        GpsrFailure::NoProgress => DropKind::NoProgress,
                    };
                    self.counters.count_drop_kind(class, kind);
                    self.trace(|t| TraceEvent::Dropped {
                        t,
                        node: at.0,
                        class: class.index() as u8,
                        cause: kind.index() as u8,
                    });
                    break Routed::Dropped;
                }
            }
        };
        self.gpsr_scratch = scratch;
        result
    }

    /// Wired RSU-to-RSU transfer over the backbone's shortest path.
    pub fn send_wired<P>(
        &mut self,
        from: RsuId,
        to: RsuId,
        class: PacketClass,
        size: usize,
        payload: P,
    ) -> Vec<Emission<P>> {
        let _ = size; // wired links are fast enough that size is irrelevant
        self.counters.count_origination(class);
        let from_node = self.registry.node_of_rsu(from);
        self.trace(|t| TraceEvent::Originated {
            t,
            node: from_node.0,
            class: class.index() as u8,
        });
        let Some(hops) = self.wired.hops(from, to) else {
            let kind = crate::counters::DropKind::NoRoute;
            self.counters.count_drop_kind(class, kind);
            self.trace(|t| TraceEvent::Dropped {
                t,
                node: from_node.0,
                class: class.index() as u8,
                cause: kind.index() as u8,
            });
            return Vec::new();
        };
        self.counters.count_wired(class, hops as u64);
        self.trace(|t| TraceEvent::WiredHop {
            t,
            node: from_node.0,
            class: class.index() as u8,
            hops: hops as u64,
        });
        let delay = self.wired.link_delay * hops as u64;
        let to_node = self.registry.node_of_rsu(to);
        vec![Emission {
            delay,
            to: to_node,
            transport: Transport::Local { class, payload },
        }]
    }

    /// Directional geo-broadcast along a road corridor (HLSRG's target search).
    #[allow(clippy::too_many_arguments)]
    pub fn geo_broadcast_directional<P: Clone>(
        &mut self,
        from: NodeId,
        start: Point,
        dir: Vec2,
        max_dist: f64,
        lateral_tol: f64,
        class: PacketClass,
        size: usize,
        payload: P,
    ) -> Vec<Emission<P>> {
        self.counters.count_origination(class);
        self.trace(|t| TraceEvent::Originated {
            t,
            node: from.0,
            class: class.index() as u8,
        });
        let res = directional_broadcast(
            &self.registry,
            &self.radio,
            from,
            start,
            dir,
            max_dist,
            lateral_tol,
            size,
            &mut self.rng,
            &mut self.flood_scratch,
        );
        self.counters.count_radio(class, res.transmissions);
        self.counters
            .count_airtime(class, self.radio.tx_time(size) * res.transmissions);
        self.trace(|t| TraceEvent::RadioHop {
            t,
            node: from.0,
            class: class.index() as u8,
            n: res.transmissions,
        });
        res.deliveries
            .into_iter()
            .map(|(n, delay)| Emission {
                delay,
                to: n,
                transport: Transport::Local {
                    class,
                    payload: payload.clone(),
                },
            })
            .collect()
    }

    /// Region flood inside a grid cell.
    pub fn geo_broadcast_region<P: Clone>(
        &mut self,
        from: NodeId,
        region: &BBox,
        class: PacketClass,
        size: usize,
        payload: P,
    ) -> Vec<Emission<P>> {
        self.counters.count_origination(class);
        self.trace(|t| TraceEvent::Originated {
            t,
            node: from.0,
            class: class.index() as u8,
        });
        let res = region_broadcast(
            &self.registry,
            &self.radio,
            from,
            region,
            size,
            &mut self.rng,
            &mut self.flood_scratch,
        );
        self.counters.count_radio(class, res.transmissions);
        self.counters
            .count_airtime(class, self.radio.tx_time(size) * res.transmissions);
        self.trace(|t| TraceEvent::RadioHop {
            t,
            node: from.0,
            class: class.index() as u8,
            n: res.transmissions,
        });
        res.deliveries
            .into_iter()
            .map(|(n, delay)| Emission {
                delay,
                to: n,
                transport: Transport::Local {
                    class,
                    payload: payload.clone(),
                },
            })
            .collect()
    }

    /// Processes a fired delivery. Returns the payload if this was the final hop
    /// (for the protocol at `to`), plus at most one follow-up emission (GPSR
    /// forwarding) — so the per-event hot path allocates nothing.
    pub fn handle_deliver_step<P>(
        &mut self,
        to: NodeId,
        transport: Transport<P>,
    ) -> (Option<(PacketClass, P)>, Option<Emission<P>>) {
        let start = PhaseTimings::ENABLED.then(std::time::Instant::now);
        let r = self.handle_deliver_inner(to, transport);
        if let Some(s) = start {
            self.timings
                .record_duration(Phase::RadioDelivery, s.elapsed());
        }
        r
    }

    /// [`handle_deliver_step`](Self::handle_deliver_step) with the follow-up
    /// lifted into a `Vec` — the allocating convenience form for tests and
    /// small drain loops.
    pub fn handle_deliver<P>(
        &mut self,
        to: NodeId,
        transport: Transport<P>,
    ) -> (Option<(PacketClass, P)>, Vec<Emission<P>>) {
        let (arrived, more) = self.handle_deliver_step(to, transport);
        (arrived, more.into_iter().collect())
    }

    fn handle_deliver_inner<P>(
        &mut self,
        to: NodeId,
        transport: Transport<P>,
    ) -> (Option<(PacketClass, P)>, Option<Emission<P>>) {
        match transport {
            Transport::Local { class, payload } => {
                self.trace(|t| TraceEvent::Delivered {
                    t,
                    node: to.0,
                    class: class.index() as u8,
                });
                (Some((class, payload)), None)
            }
            Transport::Gpsr {
                header,
                class,
                size,
                payload,
            } => {
                // Re-run the routing decision at the new holder.
                match self.gpsr_process(to, header, class, size, payload) {
                    Routed::Arrived { class, payload } => {
                        self.trace(|t| TraceEvent::Delivered {
                            t,
                            node: to.0,
                            class: class.index() as u8,
                        });
                        (Some((class, payload)), None)
                    }
                    Routed::Forward(e) => (None, Some(e)),
                    Routed::Dropped => (None, None),
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use vanet_des::SimTime;
    use vanet_mobility::VehicleId;
    use vanet_roadnet::{generate_grid, GridMapSpec, L2Id, L3Id, Partition};

    fn lossless() -> RadioConfig {
        RadioConfig {
            reliable_fraction: 1.0,
            edge_delivery: 1.0,
            ..Default::default()
        }
    }

    fn line_core(n: u32, spacing: f64) -> NetworkCore {
        let mut reg = NodeRegistry::new(500.0);
        for i in 0..n {
            reg.add_vehicle(VehicleId(i), Point::new(i as f64 * spacing, 0.0));
        }
        let net = generate_grid(&GridMapSpec::paper(2000.0), &mut SmallRng::seed_from_u64(0));
        let p = Partition::build(&net, 500.0);
        let wired = WiredNetwork::from_partition(&p, SimDuration::from_millis(2));
        NetworkCore::new(reg, lossless(), wired, SmallRng::seed_from_u64(1))
    }

    /// Runs emissions to quiescence, returning final deliveries as (node, class).
    fn drain<P: Clone + std::fmt::Debug>(
        core: &mut NetworkCore,
        mut pending: Vec<Emission<P>>,
    ) -> Vec<(NodeId, PacketClass, P)> {
        let mut q = vanet_des::EventQueue::new();
        for e in pending.drain(..) {
            q.schedule_after(e.delay, (e.to, e.transport));
        }
        let mut out = Vec::new();
        while let Some((_, (to, tr))) = q.pop() {
            let (arrived, more) = core.handle_deliver(to, tr);
            if let Some((class, payload)) = arrived {
                out.push((to, class, payload));
            }
            for e in more {
                q.schedule_after(e.delay, (e.to, e.transport));
            }
        }
        out
    }

    #[test]
    fn broadcast_reaches_neighbors_once() {
        let mut core = line_core(4, 300.0); // only adjacent nodes in range
        let emissions = core.broadcast_onehop(NodeId(1), PacketClass::Update, 64, "hi");
        let got = drain(&mut core, emissions);
        let mut nodes: Vec<u32> = got.iter().map(|(n, _, _)| n.0).collect();
        nodes.sort_unstable();
        assert_eq!(nodes, vec![0, 2]);
        assert_eq!(core.counters.radio(PacketClass::Update), 1);
        assert_eq!(core.counters.origination_count(PacketClass::Update), 1);
    }

    #[test]
    fn gpsr_end_to_end_with_counting() {
        let mut core = line_core(6, 300.0);
        let dst = NodeId(5);
        let emissions = core.send_gpsr(
            NodeId(0),
            GpsrTarget::Node(dst),
            core.registry.pos(dst),
            PacketClass::Query,
            128,
            "req",
        );
        let got = drain(&mut core, emissions);
        assert_eq!(got.len(), 1);
        assert_eq!(got[0].0, dst);
        // 5 hops on a lossless line.
        assert_eq!(core.counters.radio(PacketClass::Query), 5);
        assert_eq!(core.counters.drop_count(PacketClass::Query), 0);
    }

    #[test]
    fn gpsr_any_at_delivers_to_custodian() {
        let mut core = line_core(6, 300.0);
        // Target position: x = 1500 (node 5's spot), any node within 100 m.
        let emissions = core.send_gpsr(
            NodeId(0),
            GpsrTarget::AnyAt { radius: 100.0 },
            Point::new(1500.0, 0.0),
            PacketClass::Query,
            128,
            42u32,
        );
        let got = drain(&mut core, emissions);
        assert_eq!(got.len(), 1);
        assert_eq!(got[0].0, NodeId(5));
    }

    #[test]
    fn gpsr_self_delivery_when_already_there() {
        let mut core = line_core(3, 300.0);
        let emissions = core.send_gpsr(
            NodeId(0),
            GpsrTarget::AnyAt { radius: 50.0 },
            Point::new(0.0, 0.0),
            PacketClass::Query,
            128,
            (),
        );
        let got = drain(&mut core, emissions);
        assert_eq!(got, vec![(NodeId(0), PacketClass::Query, ())]);
        // No radio transmission for a self-delivery.
        assert_eq!(core.counters.radio(PacketClass::Query), 0);
    }

    #[test]
    fn gpsr_isolated_drops() {
        let mut core = line_core(2, 900.0); // out of range
        let emissions = core.send_gpsr(
            NodeId(0),
            GpsrTarget::Node(NodeId(1)),
            Point::new(900.0, 0.0),
            PacketClass::Query,
            128,
            (),
        );
        assert!(emissions.is_empty());
        assert_eq!(core.counters.drop_count(PacketClass::Query), 1);
    }

    #[test]
    fn wired_transfer_delay_and_counting() {
        let net = generate_grid(&GridMapSpec::paper(2000.0), &mut SmallRng::seed_from_u64(0));
        let p = Partition::build(&net, 500.0);
        let mut reg = NodeRegistry::new(500.0);
        // Register a vehicle then all RSUs (ids must be dense per kind).
        reg.add_vehicle(VehicleId(0), Point::new(10.0, 10.0));
        for site in p.rsus() {
            reg.add_rsu(site.id, site.pos);
        }
        let wired = WiredNetwork::from_partition(&p, SimDuration::from_millis(2));
        let mut core = NetworkCore::new(reg, lossless(), wired, SmallRng::seed_from_u64(2));

        let from = p.rsu_of_l2(L2Id(0));
        let to = p.rsu_of_l2(L2Id(3));
        let emissions = core.send_wired(from, to, PacketClass::Collection, 256, "table");
        assert_eq!(emissions.len(), 1);
        assert_eq!(emissions[0].delay, SimDuration::from_millis(4)); // 2 hops via L3 hub
        assert_eq!(emissions[0].to, core.registry.node_of_rsu(to));
        assert_eq!(core.counters.wired(PacketClass::Collection), 2);
        // L3 self-transfer has zero delay.
        let l3 = p.rsu_of_l3(L3Id(0));
        let e = core.send_wired(l3, l3, PacketClass::Collection, 1, ());
        assert_eq!(e[0].delay, SimDuration::ZERO);
    }

    #[test]
    fn directional_broadcast_counts_relays() {
        let mut core = line_core(6, 300.0);
        let emissions = core.geo_broadcast_directional(
            NodeId(0),
            Point::ORIGIN,
            vanet_geo::Vec2::new(1.0, 0.0),
            1500.0,
            50.0,
            PacketClass::Query,
            96,
            "notify",
        );
        let got = drain(&mut core, emissions);
        assert!(got.len() >= 4, "reached {got:?}");
        assert!(core.counters.radio(PacketClass::Query) >= 3);
    }

    #[test]
    fn deterministic_given_same_rng_seed() {
        let run = |seed: u64| {
            let mut reg = NodeRegistry::new(500.0);
            for i in 0..30u32 {
                reg.add_vehicle(
                    VehicleId(i),
                    Point::new((i % 6) as f64 * 250.0, (i / 6) as f64 * 250.0),
                );
            }
            let net = generate_grid(&GridMapSpec::paper(2000.0), &mut SmallRng::seed_from_u64(0));
            let p = Partition::build(&net, 500.0);
            let wired = WiredNetwork::from_partition(&p, SimDuration::from_millis(2));
            let mut core = NetworkCore::new(
                reg,
                RadioConfig::default(),
                wired,
                SmallRng::seed_from_u64(seed),
            );
            let e = core.send_gpsr(
                NodeId(0),
                GpsrTarget::Node(NodeId(29)),
                core.registry.pos(NodeId(29)),
                PacketClass::Query,
                128,
                (),
            );
            let got = drain(&mut core, e);
            (got.len(), core.counters.radio(PacketClass::Query))
        };
        assert_eq!(run(7), run(7));
    }

    #[test]
    fn trace_events_reconcile_with_counters() {
        let mut core = line_core(6, 300.0);
        core.set_tracer(Box::new(Tracer::new(1024)));
        let e = core.send_gpsr(
            NodeId(0),
            GpsrTarget::Node(NodeId(5)),
            core.registry.pos(NodeId(5)),
            PacketClass::Query,
            128,
            "req",
        );
        drain(&mut core, e);
        let e = core.broadcast_onehop(NodeId(1), PacketClass::Update, 64, "up");
        drain(&mut core, e);

        let tr = core.take_tracer().expect("tracer installed");
        assert_eq!(tr.overwritten(), 0);
        for class in PacketClass::ALL {
            let code = class.index() as u8;
            assert_eq!(
                tr.metrics.radio(code),
                core.counters.radio(class),
                "radio mismatch for {class:?}"
            );
            assert_eq!(
                tr.metrics.originated(code),
                core.counters.origination_count(class),
                "origination mismatch for {class:?}"
            );
            assert_eq!(
                tr.metrics.drops(code),
                core.counters.drop_count(class),
                "drop mismatch for {class:?}"
            );
        }
        // The lossless line delivers the query once and the broadcast twice.
        assert_eq!(tr.metrics.delivered(PacketClass::Query.index() as u8), 1);
        assert_eq!(tr.metrics.delivered(PacketClass::Update.index() as u8), 2);
    }

    #[test]
    fn emission_delays_are_positive_sim_times() {
        let mut core = line_core(5, 300.0);
        let emissions = core.broadcast_onehop(NodeId(2), PacketClass::Update, 64, ());
        let mut q = vanet_des::EventQueue::new();
        for e in &emissions {
            assert!(e.delay >= SimDuration::ZERO);
            q.schedule_at(SimTime::ZERO + e.delay, ());
        }
        assert_eq!(q.len(), emissions.len());
    }
}
