//! Conservative-synchronization lookahead for region-sharded runs.
//!
//! A conservative parallel executor (Chandy–Misra–Bryant) may only let a
//! shard run ahead of its peers by the *lookahead*: the guaranteed minimum
//! delay of any event one shard can inject into another. In this stack a
//! cross-shard event is always a message crossing an L3-region boundary, and
//! three physical channels bound how soon one can land:
//!
//! * **Radio hop latency** — every radio delivery is charged at least
//!   [`RadioConfig::per_hop_overhead`] (serialization, jitter and contention
//!   only add to it), so no radio packet crosses a boundary sooner.
//! * **Wired RSU backbone latency** — an inter-region wired transfer
//!   traverses at least one backbone link, costing at least the per-link
//!   latency of [`crate::WiredNetwork`]. Intra-RSU transfers are zero-hop
//!   but also intra-region, so they never cross shards.
//! * **Radio-range crossing time** — a vehicle's transmissions reach at most
//!   `range` meters, so a node strictly outside that disc needs at least
//!   `range / max_speed` of simulated time before it can close into
//!   radio-interaction distance. This term dominates only in degenerate
//!   configs (it is tens of seconds at paper parameters), but it keeps the
//!   derivation honest when the latency terms are made extreme.
//!
//! The lookahead is the **minimum** of the applicable bounds, which makes it
//! monotone non-decreasing in each input (raising any latency or the radio
//! range can only raise the min; raising the max speed can only lower it).
//! A zero lookahead would deadlock a conservative executor at its first
//! barrier, so any zero component is rejected as a configuration error.

use crate::radio::RadioConfig;
use vanet_des::SimDuration;

/// Why a conservative lookahead could not be derived — each case is a
/// degenerate configuration that would stall a sharded run at its first
/// epoch barrier, reported up front instead of deadlocking.
#[derive(Debug, Clone, PartialEq)]
pub enum LookaheadError {
    /// `RadioConfig::per_hop_overhead` is zero: a radio packet could cross a
    /// region boundary in zero simulated time.
    ZeroRadioOverhead,
    /// The wired backbone is present with a zero per-link latency: an
    /// inter-RSU transfer could cross regions instantly.
    ZeroWiredDelay,
    /// The radio range or the maximum vehicle speed makes the crossing-time
    /// bound non-positive (or not finite).
    BadKinematics {
        /// Radio range, meters.
        range: f64,
        /// Maximum vehicle speed, m/s.
        max_speed: f64,
    },
}

impl std::fmt::Display for LookaheadError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            LookaheadError::ZeroRadioOverhead => write!(
                f,
                "cannot derive a conservative lookahead: radio per-hop overhead is zero \
                 (a packet could cross a region boundary in zero simulated time)"
            ),
            LookaheadError::ZeroWiredDelay => write!(
                f,
                "cannot derive a conservative lookahead: the wired RSU backbone has a \
                 zero per-link latency (an inter-region transfer would be instantaneous)"
            ),
            LookaheadError::BadKinematics { range, max_speed } => write!(
                f,
                "cannot derive a conservative lookahead: radio range {range} m at max \
                 speed {max_speed} m/s gives a non-positive boundary crossing time"
            ),
        }
    }
}

impl std::error::Error for LookaheadError {}

/// Derives the conservative cross-shard lookahead from the radio model, the
/// wired backbone's per-link latency (`None` when the scenario runs without
/// a backbone — the term then contributes no bound), and the mobility
/// model's maximum vehicle speed in m/s. See the module docs for the three
/// bounds; the result is their minimum and is strictly positive on success.
pub fn conservative_lookahead(
    radio: &RadioConfig,
    wired_link_delay: Option<SimDuration>,
    max_speed: f64,
) -> Result<SimDuration, LookaheadError> {
    if radio.per_hop_overhead.is_zero() {
        return Err(LookaheadError::ZeroRadioOverhead);
    }
    let mut lookahead = radio.per_hop_overhead;
    if let Some(link) = wired_link_delay {
        if link.is_zero() {
            return Err(LookaheadError::ZeroWiredDelay);
        }
        lookahead = lookahead.min(link);
    }
    let crossing_secs = radio.range / max_speed;
    if !crossing_secs.is_finite() || crossing_secs <= 0.0 {
        return Err(LookaheadError::BadKinematics {
            range: radio.range,
            max_speed,
        });
    }
    // Round *down* to the microsecond clock: a conservative bound must never
    // overstate how much headroom the executor has.
    let crossing = SimDuration::from_micros((crossing_secs * 1e6).floor() as u64);
    if crossing.is_zero() {
        return Err(LookaheadError::BadKinematics {
            range: radio.range,
            max_speed,
        });
    }
    Ok(lookahead.min(crossing))
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn radio(overhead_us: u64, range: f64) -> RadioConfig {
        RadioConfig {
            per_hop_overhead: SimDuration::from_micros(overhead_us),
            range,
            ..RadioConfig::default()
        }
    }

    fn us(v: u64) -> Option<SimDuration> {
        Some(SimDuration::from_micros(v))
    }

    #[test]
    fn paper_config_gives_the_radio_hop_bound() {
        // Paper parameters: 500 µs hop overhead, 2 ms wired links, 500 m at
        // 16.7 m/s ≈ 30 s crossing — the hop overhead is the binding term.
        let la = conservative_lookahead(&RadioConfig::default(), us(2_000), 60.0 / 3.6)
            .expect("valid config derives");
        assert_eq!(la, SimDuration::from_micros(500));
    }

    #[test]
    fn wired_term_binds_when_faster_than_radio() {
        let la = conservative_lookahead(&radio(5_000, 500.0), us(300), 16.7).unwrap();
        assert_eq!(la, SimDuration::from_micros(300));
        // No backbone at all: the wired term simply does not apply.
        let la = conservative_lookahead(&radio(5_000, 500.0), None, 16.7).unwrap();
        assert_eq!(la, SimDuration::from_micros(5_000));
    }

    #[test]
    fn degenerate_configs_fail_fast_with_clear_errors() {
        let e = conservative_lookahead(&radio(0, 500.0), None, 16.7).unwrap_err();
        assert_eq!(e, LookaheadError::ZeroRadioOverhead);
        assert!(e.to_string().contains("per-hop overhead is zero"));

        let e = conservative_lookahead(&radio(500, 500.0), us(0), 16.7).unwrap_err();
        assert_eq!(e, LookaheadError::ZeroWiredDelay);
        assert!(e.to_string().contains("zero per-link latency"));

        let e = conservative_lookahead(&radio(500, 0.0), None, 16.7).unwrap_err();
        assert!(matches!(e, LookaheadError::BadKinematics { .. }));
        assert!(e.to_string().contains("crossing time"));
        // Infinite speed and zero-over-zero are kinematics errors too.
        assert!(conservative_lookahead(&radio(500, 500.0), None, f64::INFINITY).is_err());
        assert!(conservative_lookahead(&radio(500, 0.0), None, 0.0).is_err());
    }

    proptest! {
        /// Strictly positive for every valid config: the constructor-level
        /// guarantee the sharded queue's fail-fast check relies on.
        #[test]
        fn lookahead_is_strictly_positive_for_valid_configs(
            overhead_us in 1u64..10_000_000,
            link_us in 1u64..10_000_000,
            range in 1.0f64..10_000.0,
            max_speed in 0.1f64..200.0,
        ) {
            let la = conservative_lookahead(&radio(overhead_us, range), us(link_us), max_speed);
            // `range/max_speed` can floor to zero microseconds only when the
            // crossing time is under 1 µs — that rejection is itself correct.
            match la {
                Ok(d) => prop_assert!(d > SimDuration::ZERO),
                Err(e) => {
                    prop_assert!(matches!(e, LookaheadError::BadKinematics { .. }));
                    prop_assert!(range / max_speed < 1e-6);
                }
            }
        }

        /// Monotone in the RSU backbone latency and the radio range: raising
        /// either never shrinks the lookahead (it is a min of terms each
        /// non-decreasing in that input).
        #[test]
        fn lookahead_is_monotone_in_latency_and_range(
            overhead_us in 1u64..100_000,
            link_us in 1u64..100_000,
            link_bump in 0u64..100_000,
            range in 1.0f64..5_000.0,
            range_bump in 0.0f64..5_000.0,
            max_speed in 0.5f64..100.0,
        ) {
            let base = conservative_lookahead(
                &radio(overhead_us, range), us(link_us), max_speed);
            let more_wired = conservative_lookahead(
                &radio(overhead_us, range), us(link_us + link_bump), max_speed);
            let more_range = conservative_lookahead(
                &radio(overhead_us, range + range_bump), us(link_us), max_speed);
            if let (Ok(b), Ok(w), Ok(r)) = (base, more_wired, more_range) {
                prop_assert!(w >= b, "raising wired latency shrank the lookahead");
                prop_assert!(r >= b, "raising radio range shrank the lookahead");
            }
        }
    }
}
