//! Transmission accounting.
//!
//! Every figure in the paper's evaluation is a packet count or a latency, so the
//! network layer counts *transmissions* (each radio send, each wired link traversal)
//! per packet class. Protocols tag each send with the class it belongs to; the
//! harness reads the counters out at the end of a run.

use serde::{Deserialize, Serialize};
use vanet_des::{Counter, SimDuration};

/// Semantic class of a packet, for overhead accounting.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum PacketClass {
    /// A vehicle-originated location update (Fig 3.2 counts these originations).
    Update,
    /// Table collection/aggregation traffic between hierarchy levels.
    Collection,
    /// Query traffic: requests, notifications, and ACKs (Fig 3.3 counts these).
    Query,
    /// Application data carried by GPSR after a successful location discovery —
    /// the traffic the location service exists to enable.
    Data,
}

impl PacketClass {
    /// All classes, for iteration.
    pub const ALL: [PacketClass; 4] = [
        PacketClass::Update,
        PacketClass::Collection,
        PacketClass::Query,
        PacketClass::Data,
    ];

    /// Stable index of the class (also its trace-event code).
    pub fn index(self) -> usize {
        match self {
            PacketClass::Update => 0,
            PacketClass::Collection => 1,
            PacketClass::Query => 2,
            PacketClass::Data => 3,
        }
    }
}

/// Per-class transmission and drop counters.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct NetCounters {
    /// Radio transmissions per class (every hop, every broadcast, every retry).
    pub radio_tx: [Counter; 4],
    /// Wired link traversals per class.
    pub wired_tx: [Counter; 4],
    /// Packet originations per class (one per logical send, however many hops).
    pub originations: [Counter; 4],
    /// Packets dropped in flight (no route, TTL, persistent loss).
    pub drops: [Counter; 4],
    /// Drop breakdown per class × cause: `drop_kinds[class][cause]` with classes
    /// in [`PacketClass::ALL`] order and causes
    /// `[ttl, isolated, no_progress, loss, no_route]`. The class-summed view is
    /// [`Self::drop_breakdown`].
    pub drop_kinds: [[Counter; 5]; 4],
    /// Cumulative channel airtime per class, in microseconds of serialization
    /// time (how busy the shared medium is with each traffic class).
    pub airtime_us: [Counter; 4],
}

/// Why an in-flight packet died (for the drop breakdown).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum DropKind {
    /// GPSR hop budget exhausted.
    Ttl,
    /// No neighbors at all.
    Isolated,
    /// Recovery walk found no usable neighbor.
    NoProgress,
    /// Every MAC retry lost.
    Loss,
    /// No wired path.
    NoRoute,
}

impl DropKind {
    /// All causes, in breakdown order.
    pub const ALL: [DropKind; 5] = [
        DropKind::Ttl,
        DropKind::Isolated,
        DropKind::NoProgress,
        DropKind::Loss,
        DropKind::NoRoute,
    ];

    /// Stable index of the cause (also its trace-event code).
    pub fn index(self) -> usize {
        match self {
            DropKind::Ttl => 0,
            DropKind::Isolated => 1,
            DropKind::NoProgress => 2,
            DropKind::Loss => 3,
            DropKind::NoRoute => 4,
        }
    }
}

impl NetCounters {
    /// Creates zeroed counters.
    pub fn new() -> Self {
        Self::default()
    }

    fn ix(class: PacketClass) -> usize {
        class.index()
    }

    /// Records `n` radio transmissions.
    pub fn count_radio(&mut self, class: PacketClass, n: u64) {
        self.radio_tx[Self::ix(class)].add(n);
    }

    /// Records `n` wired link traversals.
    pub fn count_wired(&mut self, class: PacketClass, n: u64) {
        self.wired_tx[Self::ix(class)].add(n);
    }

    /// Records one logical packet origination.
    pub fn count_origination(&mut self, class: PacketClass) {
        self.originations[Self::ix(class)].incr();
    }

    /// Adds `t` of channel airtime for `class`.
    pub fn count_airtime(&mut self, class: PacketClass, t: SimDuration) {
        self.airtime_us[Self::ix(class)].add(t.as_micros());
    }

    /// Cumulative airtime of a class.
    pub fn airtime(&self, class: PacketClass) -> SimDuration {
        SimDuration::from_micros(self.airtime_us[Self::ix(class)].get())
    }

    /// Records one in-flight drop.
    pub fn count_drop(&mut self, class: PacketClass) {
        self.drops[Self::ix(class)].incr();
    }

    /// Records one in-flight drop with its cause.
    pub fn count_drop_kind(&mut self, class: PacketClass, kind: DropKind) {
        self.count_drop(class);
        self.drop_kinds[Self::ix(class)][kind.index()].incr();
    }

    /// Drops of one class with one cause.
    pub fn drop_kind_count(&self, class: PacketClass, kind: DropKind) -> u64 {
        self.drop_kinds[Self::ix(class)][kind.index()].get()
    }

    /// The full drop matrix: `[class][cause]` counts.
    pub fn drop_matrix(&self) -> [[u64; 5]; 4] {
        std::array::from_fn(|c| std::array::from_fn(|k| self.drop_kinds[c][k].get()))
    }

    /// The class-summed drop breakdown
    /// `[ttl, isolated, no_progress, loss, no_route]` (derived from the matrix).
    pub fn drop_breakdown(&self) -> [u64; 5] {
        std::array::from_fn(|k| self.drop_kinds.iter().map(|row| row[k].get()).sum())
    }

    /// Radio transmissions of a class.
    pub fn radio(&self, class: PacketClass) -> u64 {
        self.radio_tx[Self::ix(class)].get()
    }

    /// Wired traversals of a class.
    pub fn wired(&self, class: PacketClass) -> u64 {
        self.wired_tx[Self::ix(class)].get()
    }

    /// Originations of a class.
    pub fn origination_count(&self, class: PacketClass) -> u64 {
        self.originations[Self::ix(class)].get()
    }

    /// Drops of a class.
    pub fn drop_count(&self, class: PacketClass) -> u64 {
        self.drops[Self::ix(class)].get()
    }

    /// Folds another counter set into this one.
    pub fn merge(&mut self, other: &NetCounters) {
        for i in 0..4 {
            self.radio_tx[i].add(other.radio_tx[i].get());
            self.wired_tx[i].add(other.wired_tx[i].get());
            self.originations[i].add(other.originations[i].get());
            self.drops[i].add(other.drops[i].get());
            self.airtime_us[i].add(other.airtime_us[i].get());
        }
        for c in 0..4 {
            for k in 0..5 {
                self.drop_kinds[c][k].add(other.drop_kinds[c][k].get());
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counts_by_class() {
        let mut c = NetCounters::new();
        c.count_radio(PacketClass::Update, 3);
        c.count_radio(PacketClass::Query, 5);
        c.count_wired(PacketClass::Query, 2);
        c.count_origination(PacketClass::Update);
        c.count_drop(PacketClass::Collection);
        assert_eq!(c.radio(PacketClass::Update), 3);
        assert_eq!(c.radio(PacketClass::Query), 5);
        assert_eq!(c.radio(PacketClass::Collection), 0);
        assert_eq!(c.wired(PacketClass::Query), 2);
        assert_eq!(c.origination_count(PacketClass::Update), 1);
        assert_eq!(c.drop_count(PacketClass::Collection), 1);
    }

    #[test]
    fn airtime_accumulates_and_merges() {
        let mut a = NetCounters::new();
        a.count_airtime(PacketClass::Update, SimDuration::from_micros(100));
        a.count_airtime(PacketClass::Update, SimDuration::from_micros(50));
        assert_eq!(
            a.airtime(PacketClass::Update),
            SimDuration::from_micros(150)
        );
        let mut b = NetCounters::new();
        b.count_airtime(PacketClass::Update, SimDuration::from_micros(25));
        a.merge(&b);
        assert_eq!(
            a.airtime(PacketClass::Update),
            SimDuration::from_micros(175)
        );
        assert_eq!(a.airtime(PacketClass::Query), SimDuration::ZERO);
    }

    #[test]
    fn drop_matrix_and_summed_breakdown_agree() {
        let mut c = NetCounters::new();
        c.count_drop_kind(PacketClass::Query, DropKind::Loss);
        c.count_drop_kind(PacketClass::Query, DropKind::Loss);
        c.count_drop_kind(PacketClass::Update, DropKind::Loss);
        c.count_drop_kind(PacketClass::Data, DropKind::Ttl);
        c.count_drop_kind(PacketClass::Collection, DropKind::NoRoute);
        assert_eq!(c.drop_kind_count(PacketClass::Query, DropKind::Loss), 2);
        assert_eq!(c.drop_kind_count(PacketClass::Update, DropKind::Loss), 1);
        assert_eq!(c.drop_kind_count(PacketClass::Update, DropKind::Ttl), 0);
        let m = c.drop_matrix();
        assert_eq!(m[PacketClass::Query.index()][DropKind::Loss.index()], 2);
        assert_eq!(m[PacketClass::Data.index()][DropKind::Ttl.index()], 1);
        // The legacy summed view is the matrix's column sums.
        assert_eq!(c.drop_breakdown(), [1, 0, 0, 3, 1]);
        // ... and per-class totals still land in `drops`.
        assert_eq!(c.drop_count(PacketClass::Query), 2);
    }

    #[test]
    fn drop_matrix_merges_per_cell() {
        let mut a = NetCounters::new();
        let mut b = NetCounters::new();
        a.count_drop_kind(PacketClass::Query, DropKind::Ttl);
        b.count_drop_kind(PacketClass::Query, DropKind::Ttl);
        b.count_drop_kind(PacketClass::Update, DropKind::Isolated);
        a.merge(&b);
        assert_eq!(a.drop_kind_count(PacketClass::Query, DropKind::Ttl), 2);
        assert_eq!(
            a.drop_kind_count(PacketClass::Update, DropKind::Isolated),
            1
        );
        assert_eq!(a.drop_breakdown(), [2, 1, 0, 0, 0]);
    }

    #[test]
    fn merge_adds() {
        let mut a = NetCounters::new();
        let mut b = NetCounters::new();
        a.count_radio(PacketClass::Query, 1);
        b.count_radio(PacketClass::Query, 2);
        b.count_origination(PacketClass::Query);
        a.merge(&b);
        assert_eq!(a.radio(PacketClass::Query), 3);
        assert_eq!(a.origination_count(PacketClass::Query), 1);
    }
}
