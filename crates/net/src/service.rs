//! The location-service abstraction both protocols implement.
//!
//! The simulation harness is generic over a [`LocationService`]: it feeds mobility
//! samples, delivers packets, fires timers, and launches queries; the protocol
//! responds with [`Effect`]s (deliveries to schedule, timers to arm). Running HLSRG
//! and RLSMP against the *same* harness, radio, mobility, and workload is what makes
//! the paper's comparisons controlled.

use crate::core::{Emission, NetworkCore};
use crate::counters::PacketClass;
use serde::{Deserialize, Serialize};
use vanet_des::{Histogram, SimDuration, SimTime, Welford};
use vanet_mobility::{MoveSample, VehicleId};

/// Something a protocol wants the harness to schedule.
#[derive(Debug, Clone)]
pub enum Effect<P, T> {
    /// A future packet delivery produced by a network-core send primitive.
    Deliver(Emission<P>),
    /// A protocol timer to fire after `delay`.
    Timer {
        /// Delay until the timer fires.
        delay: SimDuration,
        /// Protocol-defined timer payload.
        key: T,
    },
}

/// Convenience: lift a batch of emissions into effects.
pub fn deliveries<P, T>(emissions: Vec<Emission<P>>) -> Vec<Effect<P, T>> {
    emissions.into_iter().map(Effect::Deliver).collect()
}

/// A location-service protocol under test.
///
/// Payload and timer types must be `Send + 'static`: scheduled events carry
/// them across the epoch executor's worker-thread boundary (`run --shards N
/// --threads M`), even though handlers themselves only ever run on the
/// commit thread.
pub trait LocationService {
    /// Wire payload type.
    type Payload: Clone + std::fmt::Debug + Send + 'static;
    /// Timer payload type.
    type Timer: Clone + std::fmt::Debug + Send + 'static;

    /// Called once at t = 0 before any other hook; protocols arm their periodic
    /// timers (collection pushes, aggregation) here.
    fn on_start(&mut self, core: &mut NetworkCore) -> Vec<Effect<Self::Payload, Self::Timer>> {
        let _ = core;
        Vec::new()
    }

    /// Called once at t = 0 with a snapshot sample per vehicle: every vehicle
    /// announces itself when joining the network (initial registration). The
    /// default does nothing.
    fn on_join(
        &mut self,
        core: &mut NetworkCore,
        samples: &[MoveSample],
        now: SimTime,
    ) -> Vec<Effect<Self::Payload, Self::Timer>> {
        let _ = (core, samples, now);
        Vec::new()
    }

    /// Consumes one mobility tick's movement samples (positions in the registry are
    /// already updated by the harness before this call).
    fn on_move(
        &mut self,
        core: &mut NetworkCore,
        samples: &[MoveSample],
        now: SimTime,
    ) -> Vec<Effect<Self::Payload, Self::Timer>>;

    /// Handles a packet that reached its (current) final hop at `at`.
    fn on_packet(
        &mut self,
        core: &mut NetworkCore,
        at: crate::node::NodeId,
        class: PacketClass,
        payload: Self::Payload,
        now: SimTime,
    ) -> Vec<Effect<Self::Payload, Self::Timer>>;

    /// Handles a fired timer.
    fn on_timer(
        &mut self,
        core: &mut NetworkCore,
        key: Self::Timer,
        now: SimTime,
    ) -> Vec<Effect<Self::Payload, Self::Timer>>;

    /// Launches one location query from `src` for `dst`'s position.
    fn launch_query(
        &mut self,
        core: &mut NetworkCore,
        src: VehicleId,
        dst: VehicleId,
        now: SimTime,
    ) -> Vec<Effect<Self::Payload, Self::Timer>>;

    /// Read access to the query ledger for metric extraction.
    fn query_log(&self) -> &QueryLog;

    /// Free-form end-of-run diagnostics (`(name, value)` pairs) surfaced in run
    /// reports: table occupancies, trigger breakdowns, etc.
    fn diagnostics(&self) -> Vec<(&'static str, f64)> {
        Vec::new()
    }

    /// Telemetry hook: total location-table entries per grid level
    /// `[L1, L2, L3]`. Flat-grid protocols map their own tiers into the
    /// lowest slots and leave the rest zero.
    fn table_sizes(&self) -> [u64; 3] {
        [0; 3]
    }

    /// Telemetry hook: location-table entries homed at each L3 region's
    /// infrastructure, written into `out[region_id]` (the sampler sizes and
    /// zeroes `out` beforehand). Protocols without a region hierarchy leave
    /// `out` untouched.
    fn region_entries(&self, out: &mut [u64]) {
        let _ = out;
    }

    /// Invariant hook (`check` feature): audits the protocol's internal state —
    /// chiefly location-table soundness against the registry's ground-truth
    /// positions, where no stored position may drift more than
    /// `max_speed · age + pos_slack` meters from the vehicle's current one.
    /// Returns `Err(detail)` on the first violated invariant.
    #[cfg(feature = "check")]
    fn check_invariants(
        &self,
        core: &NetworkCore,
        now: SimTime,
        max_speed: f64,
        pos_slack: f64,
    ) -> Result<(), String> {
        let _ = (core, now, max_speed, pos_slack);
        Ok(())
    }

    /// Deliberately corrupts one location-table entry (`check` feature only):
    /// the oracle self-test uses this to prove [`Self::check_invariants`]
    /// actually catches unsound state. Default: no tables, nothing to corrupt.
    #[cfg(feature = "check")]
    fn corrupt_location_tables(&mut self) {}
}

/// Identifier of one launched query.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct QueryId(pub u64);

/// Ledger entry for one query.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct QueryRecord {
    /// The query.
    pub id: QueryId,
    /// Asking vehicle.
    pub src: VehicleId,
    /// Vehicle whose location is sought.
    pub dst: VehicleId,
    /// Launch time.
    pub launched: SimTime,
    /// Time the source received the destination's ACK, if it ever did.
    pub completed: Option<SimTime>,
    /// Whether the 5 s timeout fallback fired.
    pub retried: bool,
}

/// The ledger of every query launched in a run.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct QueryLog {
    records: Vec<QueryRecord>,
}

impl QueryLog {
    /// Creates an empty log.
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers a new query, returning its id.
    pub fn launch(&mut self, src: VehicleId, dst: VehicleId, now: SimTime) -> QueryId {
        let id = QueryId(self.records.len() as u64);
        self.records.push(QueryRecord {
            id,
            src,
            dst,
            launched: now,
            completed: None,
            retried: false,
        });
        id
    }

    /// Marks a query complete (first ACK wins; later ACKs are ignored).
    pub fn complete(&mut self, id: QueryId, now: SimTime) {
        let r = &mut self.records[id.0 as usize];
        if r.completed.is_none() {
            r.completed = Some(now);
        }
    }

    /// Marks that the timeout fallback fired for `id`.
    pub fn mark_retried(&mut self, id: QueryId) {
        self.records[id.0 as usize].retried = true;
    }

    /// The record of a query.
    pub fn get(&self, id: QueryId) -> &QueryRecord {
        &self.records[id.0 as usize]
    }

    /// True if the query has completed.
    pub fn is_complete(&self, id: QueryId) -> bool {
        self.records[id.0 as usize].completed.is_some()
    }

    /// All records.
    pub fn records(&self) -> &[QueryRecord] {
        &self.records
    }

    /// Number of launched queries.
    pub fn launched_count(&self) -> usize {
        self.records.len()
    }

    /// Queries answered within `deadline` of launch.
    pub fn success_count(&self, deadline: SimDuration) -> usize {
        self.records
            .iter()
            .filter(
                |r| matches!(r.completed, Some(t) if t.saturating_since(r.launched) <= deadline),
            )
            .count()
    }

    /// Success rate within `deadline` (1.0 when nothing was launched).
    pub fn success_rate(&self, deadline: SimDuration) -> f64 {
        if self.records.is_empty() {
            return 1.0;
        }
        self.success_count(deadline) as f64 / self.records.len() as f64
    }

    /// Latency statistics over successful queries (within `deadline`), in seconds.
    pub fn latency_stats(&self, deadline: SimDuration) -> Welford {
        let mut w = Welford::new();
        for r in &self.records {
            if let Some(t) = r.completed {
                let lat = t.saturating_since(r.launched);
                if lat <= deadline {
                    w.record(lat.as_secs_f64());
                }
            }
        }
        w
    }

    /// Latency histogram over successful queries: 100 ms buckets spanning the
    /// deadline. Use [`Histogram::quantile`] for tail latencies (p95, p99).
    pub fn latency_histogram(&self, deadline: SimDuration) -> Histogram {
        let bin = 0.1;
        let bins = (deadline.as_secs_f64() / bin).ceil().max(1.0) as usize;
        let mut h = Histogram::new(bin, bins);
        for r in &self.records {
            if let Some(t) = r.completed {
                let lat = t.saturating_since(r.launched);
                if lat <= deadline {
                    h.record(lat.as_secs_f64());
                }
            }
        }
        h
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ledger_lifecycle() {
        let mut log = QueryLog::new();
        let a = log.launch(VehicleId(1), VehicleId(2), SimTime::from_secs(10));
        let b = log.launch(VehicleId(3), VehicleId(4), SimTime::from_secs(11));
        assert_eq!(log.launched_count(), 2);
        log.complete(a, SimTime::from_secs(12));
        assert!(log.is_complete(a));
        assert!(!log.is_complete(b));
        assert_eq!(log.success_count(SimDuration::from_secs(30)), 1);
        assert_eq!(log.success_rate(SimDuration::from_secs(30)), 0.5);
    }

    #[test]
    fn first_ack_wins() {
        let mut log = QueryLog::new();
        let a = log.launch(VehicleId(1), VehicleId(2), SimTime::from_secs(0));
        log.complete(a, SimTime::from_secs(2));
        log.complete(a, SimTime::from_secs(9));
        assert_eq!(log.get(a).completed, Some(SimTime::from_secs(2)));
    }

    #[test]
    fn deadline_excludes_late_answers() {
        let mut log = QueryLog::new();
        let a = log.launch(VehicleId(1), VehicleId(2), SimTime::from_secs(0));
        log.complete(a, SimTime::from_secs(45));
        assert_eq!(log.success_count(SimDuration::from_secs(30)), 0);
        assert_eq!(log.success_count(SimDuration::from_secs(60)), 1);
    }

    #[test]
    fn latency_stats_over_successes() {
        let mut log = QueryLog::new();
        let a = log.launch(VehicleId(1), VehicleId(2), SimTime::from_secs(0));
        let b = log.launch(VehicleId(3), VehicleId(4), SimTime::from_secs(0));
        log.launch(VehicleId(5), VehicleId(6), SimTime::from_secs(0)); // never answered
        log.complete(a, SimTime::from_secs(2));
        log.complete(b, SimTime::from_secs(4));
        let w = log.latency_stats(SimDuration::from_secs(30));
        assert_eq!(w.count(), 2);
        assert!((w.mean().unwrap() - 3.0).abs() < 1e-12);
    }

    #[test]
    fn latency_histogram_quantiles() {
        let mut log = QueryLog::new();
        for i in 0..20u64 {
            let q = log.launch(VehicleId(1), VehicleId(2), SimTime::ZERO);
            log.complete(q, SimTime::from_millis(100 * (i + 1)));
        }
        let h = log.latency_histogram(SimDuration::from_secs(30));
        assert_eq!(h.count(), 20);
        // p95 of 0.1..=2.0 s uniform is the 19th value ≈ 1.9 s (bucket edge 1.9–2.0).
        let p95 = h.quantile(0.95).unwrap();
        assert!((1.8..=2.0).contains(&p95), "p95 = {p95}");
    }

    #[test]
    fn empty_log_rates() {
        let log = QueryLog::new();
        assert_eq!(log.success_rate(SimDuration::from_secs(30)), 1.0);
        assert_eq!(log.latency_stats(SimDuration::from_secs(30)).count(), 0);
    }
}
