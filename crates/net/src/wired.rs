//! The wired RSU backbone.
//!
//! The paper wires every L2 RSU to its L3 RSU and every L3 RSU to its four cardinal
//! L3 neighbors (Fig 2.3). Wired hops are reliable and fast; a packet between two
//! RSUs traverses the shortest wired path and is charged a fixed per-link latency.

use serde::{Deserialize, Serialize};
use std::collections::VecDeque;
use vanet_des::SimDuration;
use vanet_roadnet::{Partition, RsuId};

/// The RSU wired topology with shortest-hop routing.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct WiredNetwork {
    adj: Vec<Vec<RsuId>>,
    /// Per-link latency.
    pub link_delay: SimDuration,
}

impl WiredNetwork {
    /// A backbone with no RSUs at all (protocols that don't use infrastructure).
    pub fn empty() -> Self {
        WiredNetwork {
            adj: Vec::new(),
            link_delay: SimDuration::ZERO,
        }
    }

    /// Builds the backbone from a partition's wired links.
    pub fn from_partition(p: &Partition, link_delay: SimDuration) -> Self {
        let n = p.rsus().len();
        let mut adj = vec![Vec::new(); n];
        for &(a, b) in p.wired_links() {
            adj[a.0 as usize].push(b);
            adj[b.0 as usize].push(a);
        }
        for v in &mut adj {
            v.sort_unstable();
        }
        WiredNetwork { adj, link_delay }
    }

    /// Number of RSUs in the backbone.
    pub fn len(&self) -> usize {
        self.adj.len()
    }

    /// True if the backbone has no RSUs.
    pub fn is_empty(&self) -> bool {
        self.adj.is_empty()
    }

    /// Direct neighbors of an RSU.
    pub fn neighbors(&self, r: RsuId) -> &[RsuId] {
        &self.adj[r.0 as usize]
    }

    /// Shortest hop count from `a` to `b` over the backbone, or `None` if
    /// disconnected or either RSU is not on the backbone at all. `Some(0)` when
    /// `a == b` (and both exist).
    pub fn hops(&self, a: RsuId, b: RsuId) -> Option<u32> {
        if (a.0 as usize) >= self.adj.len() || (b.0 as usize) >= self.adj.len() {
            return None;
        }
        if a == b {
            return Some(0);
        }
        let mut dist = vec![u32::MAX; self.adj.len()];
        let mut q = VecDeque::new();
        dist[a.0 as usize] = 0;
        q.push_back(a);
        while let Some(u) = q.pop_front() {
            for &v in &self.adj[u.0 as usize] {
                if dist[v.0 as usize] == u32::MAX {
                    dist[v.0 as usize] = dist[u.0 as usize] + 1;
                    if v == b {
                        return Some(dist[v.0 as usize]);
                    }
                    q.push_back(v);
                }
            }
        }
        None
    }

    /// End-to-end latency of a wired transfer, or `None` if disconnected.
    pub fn transfer_delay(&self, a: RsuId, b: RsuId) -> Option<SimDuration> {
        self.hops(a, b).map(|h| self.link_delay * h as u64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;
    use vanet_roadnet::{generate_grid, GridMapSpec, L2Id, L3Id};

    fn backbone(map_m: f64) -> (Partition, WiredNetwork) {
        let net = generate_grid(&GridMapSpec::paper(map_m), &mut SmallRng::seed_from_u64(0));
        let p = Partition::build(&net, 500.0);
        let w = WiredNetwork::from_partition(&p, SimDuration::from_millis(2));
        (p, w)
    }

    #[test]
    fn star_topology_2km() {
        let (p, w) = backbone(2000.0);
        let l3 = p.rsu_of_l3(L3Id(0));
        for i in 0..4u32 {
            let l2 = p.rsu_of_l2(L2Id(i));
            assert_eq!(w.hops(l2, l3), Some(1));
            assert_eq!(w.transfer_delay(l2, l3), Some(SimDuration::from_millis(2)));
        }
        // L2-to-L2 goes through the hub.
        assert_eq!(w.hops(p.rsu_of_l2(L2Id(0)), p.rsu_of_l2(L2Id(3))), Some(2));
        assert_eq!(w.hops(l3, l3), Some(0));
    }

    #[test]
    fn l3_mesh_4km() {
        let (p, w) = backbone(4000.0);
        // 2×2 L3 mesh: diagonal is 2 wired hops.
        let a = p.rsu_of_l3(L3Id(0));
        let d = p.rsu_of_l3(L3Id(3));
        assert_eq!(w.hops(a, d), Some(2));
        // An L2 in one corner to an L2 in the opposite corner: up + 2 mesh + down.
        let l2a = p.rsu_of_l2(L2Id(0));
        let l2d = p.rsu_of_l2(L2Id(15));
        assert_eq!(w.hops(l2a, l2d), Some(4));
    }

    #[test]
    fn neighbors_sorted() {
        let (_, w) = backbone(4000.0);
        for i in 0..w.len() as u32 {
            let ns = w.neighbors(RsuId(i));
            assert!(ns.windows(2).all(|p| p[0] < p[1]));
        }
    }
}
