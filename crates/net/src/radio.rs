//! The radio model: a unit-disk range with distance-dependent delivery probability,
//! serialization delay, and the MAC's bit-time backoff slots.
//!
//! This replaces ns-2's 802.11 stack. What the paper's metrics actually exercise is
//! (a) who is reachable in one hop (the 500 m disk), (b) that links near the edge of
//! range are lossy, and (c) per-packet serialization/contention delays — all of
//! which this model captures. Per-symbol PHY detail is irrelevant at the packet
//! counts the evaluation reports.

use rand::rngs::SmallRng;
use rand::RngExt;
use serde::{Deserialize, Serialize};
use vanet_des::SimDuration;
use vanet_geo::Point;

/// Radio and MAC parameters.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RadioConfig {
    /// Communication range in meters (the paper's 500 m).
    pub range: f64,
    /// Link bitrate in bits/s (802.11p base rate: 6 Mb/s).
    pub bitrate: f64,
    /// Fraction of the range with perfect delivery (before edge fade begins).
    pub reliable_fraction: f64,
    /// Delivery probability at exactly `range` (linear fade from 1.0).
    pub edge_delivery: f64,
    /// Per-hop processing + contention latency added to serialization.
    pub per_hop_overhead: SimDuration,
    /// Maximum random extra jitter per hop.
    pub jitter_max: SimDuration,
    /// Duration of one MAC backoff slot (the paper's "bit times" scaled to a
    /// realistic contention slot).
    pub slot: SimDuration,
    /// Unicast MAC retries after a lost transmission.
    pub retries: u32,
    /// Manhattan non-line-of-sight penalty: links whose endpoints share neither a
    /// street row nor a street column (within [`Self::LOS_MARGIN`]) pass through
    /// building blocks and have their delivery probability multiplied by this.
    /// `1.0` disables the model. This is the physical effect HLSRG's road-adapted
    /// grids are designed around ("boundaries of grids can avoid to cut through
    /// buildings").
    pub nlos_penalty: f64,
    /// CSMA contention: extra per-transmission delay for each neighbor sharing the
    /// sender's channel (they defer to each other). Zero disables the model.
    pub contention_per_neighbor: SimDuration,
}

impl Default for RadioConfig {
    fn default() -> Self {
        RadioConfig {
            range: 500.0,
            bitrate: 6e6,
            reliable_fraction: 0.75,
            edge_delivery: 0.40,
            per_hop_overhead: SimDuration::from_micros(500),
            jitter_max: SimDuration::from_millis(2),
            slot: SimDuration::from_micros(20),
            retries: 3,
            nlos_penalty: 1.0,
            contention_per_neighbor: SimDuration::ZERO,
        }
    }
}

impl RadioConfig {
    /// Two positions are "on the same street" when aligned within this margin
    /// (meters) on either axis — the line between them runs along a road instead
    /// of through block interiors.
    pub const LOS_MARGIN: f64 = 20.0;

    /// Delivery probability over a link of length `d` meters (0 beyond range).
    pub fn delivery_prob(&self, d: f64) -> f64 {
        if d >= self.range {
            return 0.0;
        }
        let knee = self.range * self.reliable_fraction;
        if d <= knee {
            1.0
        } else {
            // Linear fade from 1.0 at the knee to `edge_delivery` at the range edge.
            let t = (d - knee) / (self.range - knee);
            1.0 + t * (self.edge_delivery - 1.0)
        }
    }

    /// Serialization time of `size` bytes at the configured bitrate.
    pub fn tx_time(&self, size: usize) -> SimDuration {
        SimDuration::from_secs_f64(size as f64 * 8.0 / self.bitrate)
    }

    /// Full per-hop latency for `size` bytes: serialization + overhead + jitter.
    pub fn hop_delay(&self, size: usize, rng: &mut SmallRng) -> SimDuration {
        let jitter = SimDuration::from_micros(rng.random_range(0..=self.jitter_max.as_micros()));
        self.tx_time(size) + self.per_hop_overhead + jitter
    }

    /// Delivery probability between two positions: distance profile times the
    /// Manhattan NLOS penalty when the endpoints share no street axis.
    pub fn delivery_prob_between(&self, a: Point, b: Point) -> f64 {
        let mut p = self.delivery_prob(a.distance(b));
        if self.nlos_penalty < 1.0 {
            let aligned =
                (a.x - b.x).abs() <= Self::LOS_MARGIN || (a.y - b.y).abs() <= Self::LOS_MARGIN;
            if !aligned {
                p *= self.nlos_penalty;
            }
        }
        p
    }

    /// Draws whether a single transmission over distance `d` is received.
    pub fn link_succeeds(&self, d: f64, rng: &mut SmallRng) -> bool {
        let p = self.delivery_prob(d);
        p > 0.0 && rng.random_bool(p)
    }

    /// Draws link success between two positions, including the NLOS model.
    pub fn link_succeeds_between(&self, a: Point, b: Point, rng: &mut SmallRng) -> bool {
        let p = self.delivery_prob_between(a, b);
        p > 0.0 && rng.random_bool(p)
    }

    /// Backoff delay of `slots` contention slots.
    pub fn backoff(&self, slots: u32) -> SimDuration {
        self.slot * slots as u64
    }

    /// Channel-access delay for a sender with `neighbors` stations in range.
    pub fn contention_delay(&self, neighbors: usize) -> SimDuration {
        self.contention_per_neighbor * neighbors as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn delivery_prob_profile() {
        let r = RadioConfig::default();
        assert_eq!(r.delivery_prob(0.0), 1.0);
        assert_eq!(r.delivery_prob(375.0), 1.0); // knee at 0.75 × 500
        let mid = r.delivery_prob(437.5); // halfway through the fade
        assert!((mid - 0.7).abs() < 1e-9);
        assert!((r.delivery_prob(499.999) - 0.4).abs() < 1e-3);
        assert_eq!(r.delivery_prob(500.0), 0.0);
        assert_eq!(r.delivery_prob(9999.0), 0.0);
    }

    #[test]
    fn tx_time_scales_with_size() {
        let r = RadioConfig::default();
        // 750 bytes at 6 Mb/s = 1 ms.
        assert_eq!(r.tx_time(750), SimDuration::from_millis(1));
        assert_eq!(r.tx_time(0), SimDuration::ZERO);
    }

    #[test]
    fn hop_delay_bounded() {
        let r = RadioConfig::default();
        let mut rng = SmallRng::seed_from_u64(0);
        for _ in 0..100 {
            let d = r.hop_delay(100, &mut rng);
            assert!(d >= r.tx_time(100) + r.per_hop_overhead);
            assert!(d <= r.tx_time(100) + r.per_hop_overhead + r.jitter_max);
        }
    }

    #[test]
    fn link_draw_respects_extremes() {
        let r = RadioConfig::default();
        let mut rng = SmallRng::seed_from_u64(1);
        for _ in 0..50 {
            assert!(r.link_succeeds(10.0, &mut rng));
            assert!(!r.link_succeeds(600.0, &mut rng));
        }
    }

    #[test]
    fn backoff_slots() {
        let r = RadioConfig::default();
        assert_eq!(r.backoff(0), SimDuration::ZERO);
        assert_eq!(r.backoff(15), SimDuration::from_micros(300));
        assert_eq!(r.backoff(31), SimDuration::from_micros(620));
    }

    #[test]
    fn nlos_penalty_applies_off_axis_only() {
        let r = RadioConfig {
            nlos_penalty: 0.5,
            ..Default::default()
        };
        let a = Point::new(0.0, 0.0);
        let on_street = Point::new(300.0, 5.0); // aligned in y within the margin
        let off_street = Point::new(220.0, 220.0); // diagonal through blocks
        assert_eq!(r.delivery_prob_between(a, on_street), 1.0);
        assert_eq!(r.delivery_prob_between(a, off_street), 0.5);
        // Disabled model leaves both at the distance profile.
        let open = RadioConfig::default();
        assert_eq!(open.delivery_prob_between(a, off_street), 1.0);
    }

    #[test]
    fn contention_scales_with_density() {
        let quiet = RadioConfig::default();
        assert_eq!(quiet.contention_delay(50), SimDuration::ZERO);
        let busy = RadioConfig {
            contention_per_neighbor: SimDuration::from_micros(40),
            ..Default::default()
        };
        assert_eq!(busy.contention_delay(0), SimDuration::ZERO);
        assert_eq!(busy.contention_delay(50), SimDuration::from_micros(2000));
    }

    #[test]
    fn edge_fade_monotone() {
        let r = RadioConfig::default();
        let mut last = 1.1;
        for i in 0..=50 {
            let d = i as f64 * 10.0;
            let p = r.delivery_prob(d);
            assert!(p <= last + 1e-12, "non-monotone at {d}");
            last = p;
        }
    }
}
