//! Geographic broadcast primitives.
//!
//! HLSRG finds stale destinations by **directional geo-broadcast**: flooding a
//! notification along a road in the direction the target was last seen driving.
//! Both protocols also use **region broadcast** (flood every node inside a grid
//! cell) to reach a target known only at cell granularity.
//!
//! Floods complete in milliseconds while mobility ticks are 500 ms, so we compute
//! each flood's reachability instantaneously against current positions and charge
//! per-hop delays on delivery — the standard fluid approximation for protocol-level
//! simulation.

use crate::node::{NodeId, NodeRegistry};
use crate::radio::RadioConfig;
use fxhash::FxHashMap;
use rand::rngs::SmallRng;
use vanet_des::SimDuration;
use vanet_geo::{BBox, Point, Vec2};

/// Outcome of a flood: who received the packet and when, and how many
/// transmissions it cost.
#[derive(Debug, Clone, Default)]
pub struct FloodResult {
    /// Each recipient with its delivery delay relative to the flood start.
    pub deliveries: Vec<(NodeId, SimDuration)>,
    /// Total radio transmissions spent (origin + every relay).
    pub transmissions: u64,
}

impl FloodResult {
    /// True if `n` received the packet.
    pub fn reached(&self, n: NodeId) -> bool {
        self.deliveries.iter().any(|&(m, _)| m == n)
    }
}

/// Reusable working storage for the flood primitives. Holding one of these
/// across calls (as [`crate::NetworkCore`] does) makes a steady-state flood
/// allocation-free except for the returned deliveries.
#[derive(Debug, Default)]
pub struct FloodScratch {
    /// Neighbor-query buffer.
    neighbors: Vec<NodeId>,
    /// Directional flood: node -> (corridor progress, hop).
    received: FxHashMap<NodeId, (f64, u32)>,
    /// Directional flood: nodes that already relayed.
    relayed: Vec<NodeId>,
    /// Region flood: node -> hop count at first reception.
    seen: FxHashMap<NodeId, u32>,
    /// Region flood: pending relays.
    frontier: Vec<(NodeId, u32)>,
}

/// Floods a packet along a road corridor.
///
/// The corridor is the ray from `start` along unit vector `dir`, `max_dist` meters
/// long and `lateral_tol` meters wide on each side (vehicles on the road plus those
/// crossing it). Relaying is furthest-first: the received node with the greatest
/// progress along the ray retransmits, until the corridor end or a connectivity gap.
///
/// `origin` transmits first and is not a recipient.
#[allow(clippy::too_many_arguments)] // a radio primitive's full parameter surface
pub fn directional_broadcast(
    reg: &NodeRegistry,
    radio: &RadioConfig,
    origin: NodeId,
    start: Point,
    dir: Vec2,
    max_dist: f64,
    lateral_tol: f64,
    size: usize,
    rng: &mut SmallRng,
    scratch: &mut FloodScratch,
) -> FloodResult {
    let dir = dir.normalized().expect("direction must be non-zero");
    // Corridor membership: progress s within [-tol, max_dist], lateral within tol.
    let in_corridor = |p: Point| -> Option<f64> {
        let d = p - start;
        let s = d.dot(dir);
        let lat = d.cross(dir).abs();
        (s >= -lateral_tol && s <= max_dist && lat <= lateral_tol).then_some(s)
    };

    let mut result = FloodResult::default();
    // received: node -> (progress, hop). Origin is the hop-0 "relay".
    let received = &mut scratch.received;
    received.clear();
    let relayed = &mut scratch.relayed;
    relayed.clear();
    let mut relay = origin;
    let mut relay_s = 0.0f64;
    let mut relay_hop = 0u32;

    loop {
        // The relay transmits once.
        result.transmissions += 1;
        relayed.push(relay);
        let relay_pos = reg.pos(relay);
        reg.nodes_within_into(relay_pos, radio.range, Some(relay), &mut scratch.neighbors);
        for &n in &scratch.neighbors {
            if n == origin || received.contains_key(&n) {
                continue;
            }
            let p = reg.pos(n);
            let Some(s) = in_corridor(p) else { continue };
            if !radio.link_succeeds_between(relay_pos, p, rng) {
                continue;
            }
            let hop = relay_hop + 1;
            received.insert(n, (s, hop));
            let delay = per_hop_total(radio, size, hop, rng);
            result.deliveries.push((n, delay));
        }
        // Next relay: the received node with the most forward progress that has not
        // yet relayed and advances the frontier.
        let next = received
            .iter()
            .filter(|(n, (s, _))| !relayed.contains(*n) && *s > relay_s)
            .max_by(|a, b| a.1 .0.total_cmp(&b.1 .0).then_with(|| b.0.cmp(a.0)));
        match next {
            Some((&n, &(s, hop))) if s < max_dist => {
                relay = n;
                relay_s = s;
                relay_hop = hop;
            }
            _ => break,
        }
    }
    result
}

/// Floods a packet to every reachable node inside `region`.
///
/// Classic flooding: every recipient retransmits once; links are drawn per the radio
/// loss model; nodes outside the region neither receive nor relay. The `origin` may
/// be outside the region (e.g. a grid-center custodian flooding its own cell).
pub fn region_broadcast(
    reg: &NodeRegistry,
    radio: &RadioConfig,
    origin: NodeId,
    region: &BBox,
    size: usize,
    rng: &mut SmallRng,
    scratch: &mut FloodScratch,
) -> FloodResult {
    let mut result = FloodResult::default();
    let frontier = &mut scratch.frontier;
    frontier.clear();
    frontier.push((origin, 0u32));
    let seen = &mut scratch.seen;
    seen.clear();
    seen.insert(origin, 0);
    while let Some((relay, hop)) = frontier.pop() {
        result.transmissions += 1;
        let relay_pos = reg.pos(relay);
        reg.nodes_within_into(relay_pos, radio.range, Some(relay), &mut scratch.neighbors);
        for &n in &scratch.neighbors {
            if seen.contains_key(&n) || !region.contains(reg.pos(n)) {
                continue;
            }
            if !radio.link_succeeds_between(relay_pos, reg.pos(n), rng) {
                continue;
            }
            seen.insert(n, hop + 1);
            let delay = per_hop_total(radio, size, hop + 1, rng);
            result.deliveries.push((n, delay));
            frontier.push((n, hop + 1));
        }
        // Deterministic relay order: lowest id first.
        frontier.sort_by_key(|&(n, _)| std::cmp::Reverse(n));
    }
    result
}

/// Cumulative delay after `hops` store-and-forward hops.
fn per_hop_total(radio: &RadioConfig, size: usize, hops: u32, rng: &mut SmallRng) -> SimDuration {
    let mut d = SimDuration::ZERO;
    for _ in 0..hops {
        d += radio.hop_delay(size, rng);
    }
    d
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use vanet_mobility::VehicleId;

    fn lossless_radio() -> RadioConfig {
        RadioConfig {
            reliable_fraction: 1.0,
            edge_delivery: 1.0,
            ..Default::default()
        }
    }

    /// Vehicles every 200 m along the x axis, one stray off-road node.
    fn road_registry(n: u32) -> NodeRegistry {
        let mut reg = NodeRegistry::new(500.0);
        for i in 0..n {
            reg.add_vehicle(VehicleId(i), Point::new(i as f64 * 200.0, 0.0));
        }
        reg.add_vehicle(VehicleId(n), Point::new(400.0, 300.0)); // off the corridor
        reg
    }

    #[test]
    fn directional_reaches_along_corridor_only() {
        let reg = road_registry(8); // x = 0..1400
        let radio = lossless_radio();
        let mut rng = SmallRng::seed_from_u64(0);
        let res = directional_broadcast(
            &reg,
            &radio,
            NodeId(0),
            Point::ORIGIN,
            Vec2::new(1.0, 0.0),
            1000.0,
            50.0,
            100,
            &mut rng,
            &mut FloodScratch::default(),
        );
        // Nodes at 200..1000 are within max_dist; the off-road node is excluded.
        let reached: Vec<u32> = res.deliveries.iter().map(|&(n, _)| n.0).collect();
        for i in 1..=5u32 {
            assert!(reached.contains(&i), "node {i} missed: {reached:?}");
        }
        assert!(!res.reached(NodeId(8)), "off-corridor node reached");
        assert!(!res.reached(NodeId(7)), "beyond max_dist reached");
    }

    #[test]
    fn directional_respects_direction() {
        let mut reg = NodeRegistry::new(500.0);
        for i in 0..5u32 {
            reg.add_vehicle(VehicleId(i), Point::new(i as f64 * 200.0 - 400.0, 0.0));
        }
        // Origin is node 2 at x=0; flood east only.
        let radio = lossless_radio();
        let mut rng = SmallRng::seed_from_u64(0);
        let res = directional_broadcast(
            &reg,
            &radio,
            NodeId(2),
            Point::ORIGIN,
            Vec2::new(1.0, 0.0),
            600.0,
            60.0,
            100,
            &mut rng,
            &mut FloodScratch::default(),
        );
        assert!(res.reached(NodeId(3)));
        assert!(res.reached(NodeId(4)));
        // Nodes west of the origin are just within the lateral backstop (−60 m)?
        // They sit at −200 and −400: excluded.
        assert!(!res.reached(NodeId(0)));
        assert!(!res.reached(NodeId(1)));
    }

    #[test]
    fn directional_stops_at_connectivity_gap() {
        let mut reg = NodeRegistry::new(500.0);
        reg.add_vehicle(VehicleId(0), Point::new(0.0, 0.0));
        reg.add_vehicle(VehicleId(1), Point::new(300.0, 0.0));
        // 700 m gap: unreachable at 500 m range.
        reg.add_vehicle(VehicleId(2), Point::new(1000.0, 0.0));
        let radio = lossless_radio();
        let mut rng = SmallRng::seed_from_u64(0);
        let res = directional_broadcast(
            &reg,
            &radio,
            NodeId(0),
            Point::ORIGIN,
            Vec2::new(1.0, 0.0),
            2000.0,
            50.0,
            100,
            &mut rng,
            &mut FloodScratch::default(),
        );
        assert!(res.reached(NodeId(1)));
        assert!(!res.reached(NodeId(2)));
        assert_eq!(res.transmissions, 2); // origin + node 1's (futile) relay
    }

    #[test]
    fn delays_increase_with_hops() {
        let reg = road_registry(8);
        let radio = lossless_radio();
        let mut rng = SmallRng::seed_from_u64(0);
        let res = directional_broadcast(
            &reg,
            &radio,
            NodeId(0),
            Point::ORIGIN,
            Vec2::new(1.0, 0.0),
            1400.0,
            50.0,
            100,
            &mut rng,
            &mut FloodScratch::default(),
        );
        let d_near = res
            .deliveries
            .iter()
            .find(|(n, _)| *n == NodeId(1))
            .unwrap()
            .1;
        let d_far = res
            .deliveries
            .iter()
            .find(|(n, _)| *n == NodeId(7))
            .unwrap()
            .1;
        assert!(d_far > d_near);
    }

    #[test]
    fn region_broadcast_floods_cell() {
        let mut reg = NodeRegistry::new(500.0);
        // A 2×2 cluster inside the region, one node outside it.
        reg.add_vehicle(VehicleId(0), Point::new(50.0, 50.0));
        reg.add_vehicle(VehicleId(1), Point::new(300.0, 50.0));
        reg.add_vehicle(VehicleId(2), Point::new(50.0, 300.0));
        reg.add_vehicle(VehicleId(3), Point::new(300.0, 300.0));
        reg.add_vehicle(VehicleId(4), Point::new(900.0, 50.0)); // outside region
        let region = BBox::new(0.0, 0.0, 500.0, 500.0);
        let radio = lossless_radio();
        let mut rng = SmallRng::seed_from_u64(0);
        let res = region_broadcast(
            &reg,
            &radio,
            NodeId(0),
            &region,
            100,
            &mut rng,
            &mut FloodScratch::default(),
        );
        for i in 1..=3u32 {
            assert!(res.reached(NodeId(i)), "node {i} missed");
        }
        assert!(!res.reached(NodeId(4)));
        // Everyone reached relays once: origin + 3 recipients.
        assert_eq!(res.transmissions, 4);
    }

    #[test]
    fn region_broadcast_respects_partition_gap() {
        let mut reg = NodeRegistry::new(500.0);
        reg.add_vehicle(VehicleId(0), Point::new(0.0, 0.0));
        // In-region but 600 m away with nothing in between.
        reg.add_vehicle(VehicleId(1), Point::new(600.0, 0.0));
        let region = BBox::new(0.0, 0.0, 1000.0, 1000.0);
        let radio = lossless_radio();
        let mut rng = SmallRng::seed_from_u64(0);
        let res = region_broadcast(
            &reg,
            &radio,
            NodeId(0),
            &region,
            100,
            &mut rng,
            &mut FloodScratch::default(),
        );
        assert!(res.deliveries.is_empty());
    }

    #[test]
    fn lossy_links_can_drop_recipients() {
        // Put a node right at the very edge of range where p ≈ edge_delivery.
        let mut reg = NodeRegistry::new(500.0);
        reg.add_vehicle(VehicleId(0), Point::new(0.0, 0.0));
        reg.add_vehicle(VehicleId(1), Point::new(499.0, 0.0));
        let radio = RadioConfig {
            edge_delivery: 0.05,
            ..Default::default()
        };
        let region = BBox::new(0.0, 0.0, 1000.0, 1000.0);
        let mut rng = SmallRng::seed_from_u64(3);
        let mut hits = 0;
        for _ in 0..200 {
            let res = region_broadcast(
                &reg,
                &radio,
                NodeId(0),
                &region,
                100,
                &mut rng,
                &mut FloodScratch::default(),
            );
            if res.reached(NodeId(1)) {
                hits += 1;
            }
        }
        // Edge delivery ≈ 5 %: expect a small but nonzero hit count.
        assert!(hits > 0 && hits < 60, "hits = {hits}");
    }
}
